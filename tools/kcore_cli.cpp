// kcore — command-line front end to the library, built on the
// kcore::api facade: protocols are selected by registry key, and every
// run option (delivery mode, fault plan, hosts, ...) is the shared
// RunOptions flag set parsed by api::run_options_from_args.
//
// Subcommands:
//   decompose  --input FILE [--algo <registry key>] [run options]
//              [--output FILE] [--summary] [--progress N] [--repeat N]
//   sweep      --input FILE [--algos a,b,..] [--thread-counts 1,2,..]
//              [--scheds lifo,delta,..] [--seeds 1,2,..] [--repeat N]
//              [run options]
//   generate   --family NAME [--n N] [--seed S] [--output FILE] [...]
//   stream     --input FILE --updates FILE [--window W] [--verify]
//              [--wal DIR [--recover]] [--fsync POLICY]
//              [--checkpoint-every N] [run options] [--json]
//   stats      --input FILE
//   dot        --input FILE [--output FILE] [--max-nodes N]
//   profiles   (list the built-in paper dataset profiles)
//   protocols  (the protocol registry with capability descriptors)
//
// decompose --repeat N holds one api::Session: prepare once, run N times,
// and report min/median/max wall-ms (single-shot timing is noise). sweep
// executes a declarative api::Plan over protocols × threads × seeds.
//
// Examples:
//   kcore generate --family ba --n 10000 --m 3 --output ba.txt
//   kcore decompose --input ba.txt --algo one-to-many --hosts 16 --summary
//   kcore decompose --input ba.txt --algo one-to-many-par --threads 4 \
//         --hosts 16 --repeat 5       # real threads, amortized via Session
//   kcore decompose --input ba.txt --algo one-to-one --mode sync \
//         --max-extra-delay 2 --dup-prob 0.2
//   kcore sweep --input ba.txt --algos bz,bsp-par,bsp-async \
//         --thread-counts 1,2,4 --repeat 3
//   kcore stream --input ba.txt --updates churn.txt --window 10 \
//         --threads 4 --sched bound --verify   # live service replay
//   kcore dot --input ba.txt --output ba.dot
#include <algorithm>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "api/api.h"
#include "api/cli_options.h"
#include "api/report_json.h"
#include "api/session.h"
#include "obs/obs.h"
#include "eval/datasets.h"
#include "graph/dot_export.h"
#include "graph/edge_list.h"
#include "graph/generators.h"
#include "graph/metrics.h"
#include "graph/stats.h"
#include "live/service.h"
#include "seq/kcore_seq.h"
#include "util/args.h"
#include "util/json.h"
#include "util/stats.h"
#include "util/table.h"

namespace {

using namespace kcore;

int usage() {
  std::string algos;
  for (const auto& name : api::ProtocolRegistry::instance().names()) {
    if (!algos.empty()) algos += "|";
    algos += name;
  }
  std::cerr << "usage: kcore <subcommand> [options]\n\nsubcommands:\n"
            << "  decompose --input FILE [--algo " << algos << "]\n"
            << "            [run options] [--output FILE] [--summary] "
               "[--progress N]\n"
            << "            [--repeat N]   (prepare once, run N times, "
               "min/median/max wall-ms)\n"
            << "            [--json]       (full report as JSON on stdout)\n"
            << "            [--trace FILE] (Chrome trace-event JSON; load "
               "at ui.perfetto.dev)\n"
            << "  sweep     --input FILE [--algos a,b,..] "
               "[--thread-counts 1,2,..]\n"
            << "            [--scheds lifo,delta,bound] [--seeds 1,2,..] "
               "[--repeat N]\n"
            << "            [run options] [--json]  (NDJSON: one report "
               "per run)\n"
            << "  stream    --input FILE --updates FILE (t op u v lines, "
               "op + or -)\n"
            << "            [--window W]   (batch events into W-tick "
               "windows; 0 = per timestamp)\n"
            << "            [--verify]     (check every epoch against a "
               "from-scratch bz run)\n"
            << "            [--wal DIR]    (durable: write-ahead log + "
               "checkpoints in DIR)\n"
            << "            [--fsync every-batch|every-n|none] "
               "[--fsync-every N]\n"
            << "            [--checkpoint-every N] [--keep-checkpoints N]\n"
            << "            [--recover]    (restart from DIR's newest "
               "checkpoint + WAL tail;\n"
            << "                            --input not needed; resumes "
               "--updates where it left\n"
            << "                            off — use the SAME --window "
               "as the original run)\n"
            << "            [--provisional-deadline MS] (publish sound "
               "upper-bound snapshots\n"
            << "                            when a repair overruns MS)\n"
            << "            [run options] [--json]  (NDJSON: one object "
               "per batch)\n"
            << "  generate  --family "
               "chain|cycle|clique|star|grid|er|ba|ws|rmat|regular|worst\n"
            << "            [--n N] [--m M] [--k K] [--beta B] [--seed S] "
               "--output FILE\n"
            << "  generate  --profile <paper profile name> [--scale X] "
               "[--seed S] --output FILE\n"
            << "  stats     --input FILE [--exact-diameter]\n"
            << "  dot       --input FILE [--output FILE] [--max-nodes N]\n"
            << "  profiles\n"
            << "  protocols\n\n"
            << api::run_options_flag_help() << "\n";
  return 2;
}

graph::Graph load(const util::Args& args) {
  const auto path = args.get("input");
  KCORE_CHECK_MSG(path.has_value(), "--input FILE is required");
  return graph::read_edge_list_file(*path).graph;
}

/// Protocol-specific tail of the one-line run summary, from the report's
/// typed extras.
std::string detail_of(const api::DecomposeReport& report) {
  struct Visitor {
    const api::DecomposeReport& report;
    std::string operator()(std::monostate) const { return {}; }
    std::string operator()(const api::OneToOneExtras&) const {
      return "rounds=" + std::to_string(report.traffic.execution_time) +
             " messages=" + std::to_string(report.traffic.total_messages);
    }
    std::string operator()(const api::OneToManyExtras& extras) const {
      return "rounds=" + std::to_string(report.traffic.execution_time) +
             " estimates_shipped=" +
             std::to_string(extras.estimates_shipped_total);
    }
    std::string operator()(const api::BspExtras& extras) const {
      return "supersteps=" + std::to_string(extras.stats.supersteps) +
             " delivered=" + std::to_string(extras.stats.messages_delivered);
    }
    std::string operator()(const api::ParExtras& extras) const {
      std::string detail =
          "threads=" + std::to_string(extras.threads_used) +
          " shards=" + std::to_string(extras.shards) +
          " rounds=" + std::to_string(report.traffic.execution_time) +
          " messages=" + std::to_string(report.traffic.total_messages) +
          " run=" + util::fmt_double(extras.run_ms, 1) + "ms";
      if (extras.estimates_shipped_total > 0) {
        detail += " estimates_shipped=" +
                  std::to_string(extras.estimates_shipped_total);
      }
      return detail;
    }
    std::string operator()(const api::AsyncExtras& extras) const {
      return "threads=" + std::to_string(extras.threads_used) +
             " sched=" + std::string(api::to_string(extras.sched)) +
             " relaxations=" + std::to_string(extras.relaxations) +
             " skipped=" + std::to_string(extras.skipped_recomputes) +
             " steals=" + std::to_string(extras.steals) +
             " re_enqueues=" + std::to_string(extras.re_enqueues) +
             " detector_passes=" + std::to_string(extras.detector_passes) +
             " pop_scans=" + std::to_string(extras.pop_scans) +
             " run=" + util::fmt_double(extras.run_ms, 1) + "ms";
    }
  };
  return std::visit(Visitor{report}, report.extras);
}

int cmd_decompose(const util::Args& args) {
  const graph::Graph g = load(args);
  const std::string algo = args.get_string("algo", "bz");
  if (!api::ProtocolRegistry::instance().contains(algo)) {
    std::cerr << "unknown --algo '" << algo << "'\n";
    return usage();
  }
  auto options = api::run_options_from_args(args);
  // --trace FILE turns on span recording; the stitched Chrome trace is
  // written after the (last) run.
  const auto trace_path = args.get("trace");
  if (trace_path.has_value()) options.obs.trace = true;

  // --progress N streams one estimate-span summary every N rounds. The
  // capability descriptor says whether the protocol streams at all.
  const auto& capabilities =
      api::ProtocolRegistry::instance().entry(algo).capabilities;
  const auto progress_every = args.get_int("progress", 0);
  api::ProgressObserver observer;
  if (progress_every > 0 &&
      capabilities.observer == api::ObserverGranularity::kNone) {
    // Per-round observers have nothing to hook into this runtime; say so
    // up front instead of looking like a hung run.
    std::cerr << "note: --progress is ignored for " << algo
              << " (no per-round progress stream)\n";
  } else if (progress_every > 0) {
    observer = [&](const api::ProgressEvent& event) {
      if (event.round % static_cast<std::uint64_t>(progress_every) != 0) {
        return;
      }
      graph::NodeId lo = event.estimates.front();
      graph::NodeId hi = lo;
      for (const auto e : event.estimates) {
        lo = std::min(lo, e);
        hi = std::max(hi, e);
      }
      std::cerr << "round " << event.round << ": estimates in [" << lo
                << ", " << hi << "], " << event.messages << " messages\n";
    };
  }

  // One Session serves every repeat: the assignment/host/table derivation
  // happens once, each run() replays from it (warm-run reports are
  // bit-identical to one-shot decompose).
  const auto repeat = static_cast<int>(args.get_int("repeat", 1));
  KCORE_CHECK_MSG(repeat >= 1, "--repeat must be >= 1, got " << repeat);
  api::Session session(g, algo, options);
  std::vector<double> wall_ms;
  wall_ms.reserve(static_cast<std::size_t>(repeat));
  api::DecomposeReport report;
  for (int run = 0; run < repeat; ++run) {
    report = session.run(observer);
    KCORE_CHECK_MSG(report.traffic.converged,
                    "protocol did not converge within the round cap");
    wall_ms.push_back(report.elapsed_ms);
  }
  if (trace_path.has_value()) {
    KCORE_CHECK_MSG(report.telemetry != nullptr && report.telemetry->has_trace,
                    "run produced no trace (is this build KCORE_OBS=ON?)");
    std::ofstream trace_out(*trace_path);
    KCORE_CHECK_MSG(trace_out.good(), "cannot open " << *trace_path);
    obs::write_chrome_trace(trace_out, *report.telemetry);
    std::cerr << "wrote " << *trace_path << " ("
              << report.telemetry->trace.size() << " worker tracks, "
              << report.telemetry->trace_dropped << " events dropped)\n";
  }
  if (args.has("json")) {
    // Machine-readable path: the full report (final repeat) on stdout,
    // nothing else.
    api::write_report_json(std::cout, report);
    return 0;
  }

  const std::string detail = detail_of(report);
  const auto coreness = std::move(report.coreness);

  if (const auto out_path = args.get("output")) {
    std::ofstream out(*out_path);
    KCORE_CHECK_MSG(out.good(), "cannot open " << *out_path);
    out << "# node coreness\n";
    for (graph::NodeId u = 0; u < g.num_nodes(); ++u) {
      out << u << ' ' << coreness[u] << '\n';
    }
    std::cout << "wrote " << *out_path << "\n";
  }
  const auto summary = seq::summarize_coreness(coreness);
  std::cout << "algo=" << algo << " nodes=" << g.num_nodes()
            << " edges=" << g.num_edges() << " kmax=" << summary.k_max
            << " kavg=" << util::fmt_double(summary.k_avg);
  if (!detail.empty()) std::cout << ' ' << detail;
  std::cout << " time=" << util::fmt_double(report.elapsed_ms, 1) << "ms\n";
  if (repeat > 1) {
    // Shared aggregation with api::Plan — single-shot timing is noise.
    const auto summary_ms = util::SampleSummary::of(wall_ms);
    std::cout << "repeat=" << repeat << " wall-ms min/median/max="
              << util::fmt_double(summary_ms.min, 2) << "/"
              << util::fmt_double(summary_ms.median, 2) << "/"
              << util::fmt_double(summary_ms.max, 2)
              << " first=" << util::fmt_double(wall_ms.front(), 2)
              << " (prepare=" << util::fmt_double(session.prepare_ms(), 2)
              << "ms amortized after run 1)\n";
  }
  if (options.obs.metrics && report.telemetry != nullptr &&
      report.telemetry->has_metrics) {
    // Aggregated registry snapshot of the final repeat (counters sum
    // over all workers; histograms merge bucket-wise).
    const auto& metrics = report.telemetry->metrics;
    util::TableWriter counters({"counter", "value"});
    for (const auto& [name, value] : metrics.counters) {
      counters.add_row({name, util::fmt_grouped(value)});
    }
    counters.print(std::cout);
    if (!metrics.histograms.empty()) {
      util::TableWriter hists({"histogram", "count", "mean", "max"});
      for (const auto& hist : metrics.histograms) {
        hists.add_row({hist.name, util::fmt_grouped(hist.count),
                       util::fmt_double(hist.mean(), 1),
                       util::fmt_grouped(hist.max)});
      }
      hists.print(std::cout);
    }
  }
  if (args.has("summary")) {
    util::TableWriter table({"shell", "nodes"});
    for (std::size_t k = 0; k < summary.shell_sizes.size(); ++k) {
      if (summary.shell_sizes[k] > 0) {
        table.add_row({std::to_string(k),
                       std::to_string(summary.shell_sizes[k])});
      }
    }
    table.print(std::cout);
  }
  return 0;
}

int cmd_generate(const util::Args& args) {
  const auto out_path = args.get("output");
  KCORE_CHECK_MSG(out_path.has_value(), "--output FILE is required");
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  const auto n = static_cast<graph::NodeId>(args.get_int("n", 1000));
  graph::Graph g;
  if (const auto profile = args.get("profile")) {
    const auto& spec = eval::dataset_by_name(*profile);
    g = spec.build(args.get_double("scale", 1.0), seed);
  } else {
    const std::string family = args.get_string("family", "");
    namespace gen = graph::gen;
    if (family == "chain") {
      g = gen::chain(n);
    } else if (family == "cycle") {
      g = gen::cycle(n);
    } else if (family == "clique") {
      g = gen::clique(n);
    } else if (family == "star") {
      g = gen::star(n);
    } else if (family == "grid") {
      const auto side = static_cast<graph::NodeId>(
          args.get_int("side", static_cast<std::int64_t>(32)));
      g = gen::grid(side, side);
    } else if (family == "er") {
      g = gen::erdos_renyi_gnm(
          n, static_cast<std::uint64_t>(args.get_int("m", 4 * n)), seed);
    } else if (family == "ba") {
      g = gen::barabasi_albert(
          n, static_cast<graph::NodeId>(args.get_int("m", 3)), seed);
    } else if (family == "ws") {
      g = gen::watts_strogatz(
          n, static_cast<graph::NodeId>(args.get_int("k", 6)),
          args.get_double("beta", 0.1), seed);
    } else if (family == "rmat") {
      gen::RmatParams p;
      p.scale = static_cast<std::uint32_t>(args.get_int("scale", 14));
      p.edge_factor = args.get_double("edge-factor", 8.0);
      g = gen::rmat(p, seed);
    } else if (family == "regular") {
      g = gen::random_regular(
          n, static_cast<graph::NodeId>(args.get_int("d", 4)), seed);
    } else if (family == "worst") {
      g = gen::montresor_worst_case(n);
    } else {
      std::cerr << "unknown --family '" << family << "'\n";
      return usage();
    }
  }
  graph::write_edge_list_file(*out_path, g);
  std::cout << "wrote " << *out_path << ": " << g.num_nodes() << " nodes, "
            << g.num_edges() << " edges\n";
  return 0;
}

int cmd_stats(const util::Args& args) {
  const graph::Graph g = load(args);
  const auto degrees = graph::degree_summary(g);
  const auto components = graph::connected_components(g);
  const auto coreness = seq::coreness_bz(g);
  const auto summary = seq::summarize_coreness(coreness);
  const std::uint32_t diameter =
      args.has("exact-diameter") ? graph::exact_diameter(g)
                                 : graph::diameter_lower_bound(g, 1);
  util::TableWriter table({"metric", "value"});
  table.add_row({"nodes", util::fmt_grouped(g.num_nodes())});
  table.add_row({"edges", util::fmt_grouped(g.num_edges())});
  table.add_row({"min degree", std::to_string(degrees.min)});
  table.add_row({"max degree", std::to_string(degrees.max)});
  table.add_row({"avg degree", util::fmt_double(degrees.avg)});
  table.add_row({"components", std::to_string(components.num_components)});
  table.add_row({"largest component",
                 util::fmt_grouped(components.largest_size)});
  table.add_row({args.has("exact-diameter") ? "diameter" : "diameter (>=)",
                 std::to_string(diameter)});
  table.add_row({"kmax", std::to_string(summary.k_max)});
  table.add_row({"kavg", util::fmt_double(summary.k_avg)});
  if (args.has("metrics")) {
    // Triangle-based metrics are O(M^1.5)-ish — opt-in for big graphs.
    table.add_row({"triangles",
                   util::fmt_grouped(graph::triangle_count(g))});
    table.add_row({"avg clustering",
                   util::fmt_double(graph::average_clustering(g), 4)});
    table.add_row({"transitivity",
                   util::fmt_double(graph::transitivity(g), 4)});
    table.add_row({"assortativity",
                   util::fmt_double(graph::degree_assortativity(g), 4)});
  }
  table.print(std::cout);
  return 0;
}

int cmd_dot(const util::Args& args) {
  const graph::Graph g = load(args);
  const auto coreness = seq::coreness_bz(g);
  graph::DotOptions options;
  options.max_nodes =
      static_cast<graph::NodeId>(args.get_int("max-nodes", 2000));
  const std::string out_path = args.get_string("output", "graph.dot");
  graph::write_dot_file(out_path, g, coreness, options);
  std::cout << "wrote " << out_path << "\n";
  return 0;
}

int cmd_profiles() {
  util::TableWriter table({"profile", "substitutes", "paper t_avg",
                           "paper kmax"});
  for (const auto& spec : eval::dataset_registry()) {
    table.add_row({spec.name, spec.paper_name,
                   util::fmt_double(spec.paper.t_avg),
                   std::to_string(spec.paper.k_max)});
  }
  table.print(std::cout);
  return 0;
}

/// "mode,faults,comm" — the capability descriptor's consumed knobs as
/// one compact cell.
std::string knobs_cell(const api::Capabilities& capabilities) {
  std::string joined;
  for (const auto knob : api::consumed_knobs(capabilities)) {
    if (!joined.empty()) joined += ",";
    joined += knob;
  }
  return joined.empty() ? "-" : joined;
}

int cmd_protocols() {
  // Rendered straight from the registry's capability descriptors — the
  // same data that drives validate() and the README table.
  util::TableWriter table({"key", "paper", "execution", "consumes",
                           "progress", "extras", "description"});
  for (const auto& entry : api::ProtocolRegistry::instance().entries()) {
    const auto& caps = entry.capabilities;
    table.add_row({entry.name, entry.paper_section,
                   api::to_string(caps.execution), knobs_cell(caps),
                   api::to_string(caps.observer),
                   caps.deterministic_extras ? "deterministic"
                                             : "schedule-dep",
                   entry.summary});
  }
  table.print(std::cout);
  return 0;
}

/// Parse "1,2,4"-style comma lists for the sweep axes.
std::vector<std::string> split_csv(const std::string& value) {
  std::vector<std::string> items;
  std::size_t start = 0;
  while (start <= value.size()) {
    const auto comma = value.find(',', start);
    const auto end = comma == std::string::npos ? value.size() : comma;
    if (end > start) items.push_back(value.substr(start, end - start));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return items;
}

int cmd_sweep(const util::Args& args) {
  const graph::Graph g = load(args);
  api::PlanSpec spec;
  spec.base = api::run_options_from_args(args);
  spec.repeats = static_cast<int>(args.get_int("repeat", 3));

  if (const auto algos = args.get("algos")) {
    spec.protocols = split_csv(*algos);
  } else {
    spec.protocols = api::ProtocolRegistry::instance().names();
  }
  if (const auto threads = args.get("thread-counts")) {
    for (const auto& item : split_csv(*threads)) {
      spec.threads.push_back(
          static_cast<unsigned>(std::stoul(item)));
    }
  }
  if (const auto scheds = args.get("scheds")) {
    for (const auto& item : split_csv(*scheds)) {
      const auto parsed = core::parse_sched_policy(item);
      KCORE_CHECK_MSG(parsed.has_value(),
                      "--scheds '" << item
                                   << "' is not a scheduling policy; "
                                   << "accepted: lifo, delta, bound");
      spec.scheds.push_back(*parsed);
    }
  }
  if (const auto seeds = args.get("seeds")) {
    for (const auto& item : split_csv(*seeds)) {
      spec.seeds.push_back(std::stoull(item));
    }
  }

  api::Plan plan(g, spec);
  const auto problems = plan.validate();
  if (!problems.empty()) {
    std::cerr << "invalid sweep:\n";
    for (const auto& problem : problems) std::cerr << "  " << problem << "\n";
    return 2;
  }

  if (args.has("json")) {
    // NDJSON: one compact report object per run, tagged with the cell
    // coordinates and repeat index — `python3 -m json.tool` validates a
    // single line, jq streams the lot.
    const auto results = plan.run(
        [](const api::PlanCell& cell, int repeat,
           const api::DecomposeReport& report) {
          util::JsonWriter w(std::cout);
          w.begin_object();
          w.member("algo", cell.protocol);
          w.member("threads", static_cast<std::uint64_t>(cell.threads));
          w.member("sched", api::to_string(cell.sched));
          w.member("seed", cell.seed);
          w.member("repeat", static_cast<std::int64_t>(repeat));
          w.key("report");
          api::write_report_json(w, report);
          w.end_object();
        });
    std::cerr << results.size() << " cells x " << spec.repeats
              << " repeats\n";
    return 0;
  }

  util::TableWriter table({"algo", "threads", "sched", "seed", "reps",
                           "prepare ms", "first ms", "warm med", "min",
                           "med", "max", "rounds", "messages"});
  const auto results = plan.run();
  const auto& registry = api::ProtocolRegistry::instance();
  for (const auto& cell : results) {
    const bool has_warm = cell.warm_wall_ms.count > 0;
    // "-" where the Plan collapsed the threads/sched axis (protocol has
    // no worker pool / no schedulable pool); "0" would read as "one
    // worker per hardware thread".
    const bool threaded = registry.contains(cell.cell.protocol) &&
                          registry.entry(cell.cell.protocol)
                              .capabilities.consumes_threads;
    const bool scheduled = registry.contains(cell.cell.protocol) &&
                           registry.entry(cell.cell.protocol)
                               .capabilities.consumes_sched;
    table.add_row(
        {cell.cell.protocol,
         threaded ? std::to_string(cell.cell.threads) : "-",
         scheduled ? std::string(api::to_string(cell.cell.sched)) : "-",
         std::to_string(cell.cell.seed), std::to_string(cell.repeats),
         util::fmt_double(cell.prepare_ms, 2),
         util::fmt_double(cell.first_wall_ms, 2),
         has_warm ? util::fmt_double(cell.warm_wall_ms.median, 2) : "-",
         util::fmt_double(cell.wall_ms.min, 2),
         util::fmt_double(cell.wall_ms.median, 2),
         util::fmt_double(cell.wall_ms.max, 2),
         std::to_string(cell.last.traffic.rounds_executed),
         util::fmt_grouped(cell.last.traffic.total_messages)});
  }
  table.print(std::cout);
  std::cout << results.size() << " cells x " << spec.repeats
            << " repeats (each cell prepared once; 'first ms' pays the "
               "prepare, 'warm med' is the amortized cost)\n";
  return 0;
}

int cmd_stream(const util::Args& args) {
  const auto updates_path = args.get("updates");
  KCORE_CHECK_MSG(updates_path.has_value(), "--updates FILE is required");
  const graph::EdgeStream stream =
      graph::read_edge_stream_file(*updates_path);
  const auto window =
      static_cast<std::uint64_t>(args.get_int("window", 0));
  const live::UpdateLog log = live::UpdateLog::from_stream(stream, window);
  const bool verify = args.has("verify");
  const bool json = args.has("json");
  const bool recover = args.has("recover");

  const auto run = api::run_options_from_args(args);
  live::ServiceOptions options;
  options.threads = run.threads;
  options.sched = run.sched;
  options.targeted_send = run.targeted_send;
  options.metrics = run.obs.metrics;
  options.provisional_deadline_ms =
      static_cast<std::uint64_t>(args.get_int("provisional-deadline", 0));

  // --wal DIR turns on durability (--checkpoint-dir is a synonym).
  live::DurabilityOptions durability;
  if (const auto dir = args.get("wal")) durability.dir = *dir;
  if (const auto dir = args.get("checkpoint-dir")) durability.dir = *dir;
  durability.fsync =
      live::parse_fsync_policy(args.get_string("fsync", "every-batch"));
  durability.fsync_every =
      static_cast<unsigned>(args.get_int("fsync-every", 8));
  durability.checkpoint_every =
      static_cast<std::uint64_t>(args.get_int("checkpoint-every", 64));
  durability.keep_checkpoints =
      static_cast<unsigned>(args.get_int("keep-checkpoints", 2));
  if (recover && durability.dir.empty()) {
    throw util::IoError(
        "--recover needs --wal DIR (the state directory to recover from)");
  }

  // --recover rebuilds topology + coreness from the state directory, so
  // --input is not needed; a fresh run loads the base graph from --input.
  std::unique_ptr<live::Service> service;
  live::RecoveryInfo recovery;
  std::size_t first_batch = 0;
  if (recover) {
    service = live::Service::open(options, durability, &recovery);
    // Epochs count applies: batch i publishes epoch i+1, so the last
    // recovered epoch IS the number of stream batches already applied.
    // Resuming there (not at 0) is required for correctness: re-applying
    // an already-applied prefix would undo later inserts' removes.
    first_batch = static_cast<std::size_t>(recovery.recovered_epoch);
  } else {
    const graph::Graph g = load(args);
    service = durability.dir.empty()
                  ? std::make_unique<live::Service>(g, options)
                  : std::make_unique<live::Service>(g, options, durability);
  }
  const bool durable = service->durable();

  std::uint64_t mismatched_epochs = 0;
  if (recover && verify) {
    // Pin the recovered state itself before touching the stream again.
    const auto expected = seq::coreness_bz(service->graph().snapshot());
    if (service->query()->coreness != expected) ++mismatched_epochs;
  }

  if (!json) {
    const auto snapshot = service->query();
    std::cout << "graph: " << snapshot->num_nodes << " nodes, "
              << snapshot->num_edges << " edges; stream: "
              << stream.events.size() << " events in " << log.num_batches()
              << " batches (window "
              << (window == 0 ? std::string("per-timestamp")
                              : std::to_string(window))
              << ")\n"
              << "service: threads=" << service->workers()
              << " sched=" << api::to_string(options.sched);
    if (durable) {
      std::cout << " wal=" << durability.dir
                << " fsync=" << live::to_string(durability.fsync)
                << " checkpoint-every=" << durability.checkpoint_every;
    }
    if (recover) {
      std::cout << "\nrecovered: epoch " << recovery.recovered_epoch
                << " (checkpoint " << recovery.checkpoint_file << " @ epoch "
                << recovery.checkpoint_epoch << ", "
                << recovery.replayed_batches << " WAL batches replayed, "
                << recovery.replay_relaxations << " relaxations";
      if (recovery.skipped_duplicate_batches > 0) {
        std::cout << ", " << recovery.skipped_duplicate_batches
                  << " duplicates skipped";
      }
      if (recovery.torn_bytes_truncated > 0) {
        std::cout << ", " << recovery.torn_bytes_truncated
                  << " torn bytes truncated";
      }
      std::cout << "); resuming at batch " << first_batch << "\n";
      if (verify) {
        std::cout << "verify: recovered snapshot "
                  << (mismatched_epochs == 0 ? "matches" : "MISMATCHES")
                  << " a from-scratch bz decomposition\n";
      }
    } else {
      std::cout << "; initial convergence: "
                << service->initial_stats().relaxations << " relaxations, "
                << util::fmt_double(service->initial_stats().repair_ms, 1)
                << " ms";
    }
    std::cout << "\n\n";
    if (first_batch >= log.num_batches() && log.num_batches() > 0) {
      std::cout << "stream already fully applied (" << log.num_batches()
                << " batches <= recovered epoch); nothing to do\n";
    }
  }

  std::vector<std::string> columns = {"batch", "events", "+ins", "-rem",
                                      "ignored", "rejected", "seeded",
                                      "raised", "relax", "steals", "ms",
                                      "epoch"};
  if (durable) {
    columns.push_back("walB");
    columns.push_back("ckpt");
  }
  util::TableWriter table(columns);
  std::uint64_t total_relax = 0;
  std::uint64_t total_wal_bytes = 0;
  std::uint64_t checkpoints = 0;
  std::uint64_t checkpoint_failures = 0;
  for (std::size_t i = first_batch; i < log.num_batches(); ++i) {
    const auto batch = log.batch(i);
    const live::ApplyResult result = service->apply(batch);
    total_relax += result.repair.relaxations;
    total_wal_bytes += result.wal_bytes;
    if (result.checkpointed) ++checkpoints;
    if (result.checkpoint_failed) ++checkpoint_failures;
    bool exact = true;
    if (verify) {
      const auto expected = seq::coreness_bz(service->graph().snapshot());
      exact = service->query()->coreness == expected;
      if (!exact) ++mismatched_epochs;
    }
    if (json) {
      util::JsonWriter w(std::cout);
      w.begin_object();
      w.member("batch", static_cast<std::uint64_t>(i));
      w.member("events", static_cast<std::uint64_t>(batch.size()));
      w.member("applied_inserts", result.applied_inserts);
      w.member("applied_removes", result.applied_removes);
      w.member("ignored", result.ignored_updates);
      w.member("rejected", result.rejected_updates);
      w.member("seeded", result.repair.seeded);
      w.member("raised", result.repair.raised);
      w.member("relaxations", result.repair.relaxations);
      w.member("steals", result.repair.steals);
      w.member("repair_ms", result.repair.repair_ms, 3);
      w.member("epoch", result.epoch);
      if (durable) {
        w.member("wal_bytes", result.wal_bytes);
        w.member("checkpointed", result.checkpointed);
        if (result.checkpoint_failed) w.member("checkpoint_failed", true);
      }
      if (result.provisional_publishes > 0) {
        w.member("provisional_publishes", result.provisional_publishes);
      }
      if (verify) w.member("exact", exact);
      w.end_object();
      std::cout << "\n";
    } else {
      std::vector<std::string> row = {
          std::to_string(i), std::to_string(batch.size()),
          std::to_string(result.applied_inserts),
          std::to_string(result.applied_removes),
          std::to_string(result.ignored_updates),
          std::to_string(result.rejected_updates),
          std::to_string(result.repair.seeded),
          std::to_string(result.repair.raised),
          std::to_string(result.repair.relaxations),
          std::to_string(result.repair.steals),
          util::fmt_double(result.repair.repair_ms, 2),
          std::to_string(result.epoch)};
      if (durable) {
        row.push_back(std::to_string(result.wal_bytes));
        row.push_back(result.checkpoint_failed ? "FAIL"
                      : result.checkpointed    ? "yes"
                                               : "");
      }
      table.add_row(std::move(row));
    }
  }
  if (durable) {
    // Leave the directory recoverable at the exact final epoch: one last
    // checkpoint so a follow-up --recover replays nothing.
    service->checkpoint();
  }
  if (!json) {
    table.print(std::cout);
    const auto snapshot = service->query();
    std::cout << "\nfinal: epoch " << snapshot->epoch << ", "
              << snapshot->num_edges << " edges, kmax "
              << (snapshot->coreness.empty()
                      ? 0
                      : *std::max_element(snapshot->coreness.begin(),
                                          snapshot->coreness.end()))
              << ", " << total_relax
              << " incremental relaxations across the stream\n";
    if (durable) {
      std::cout << "durability: " << total_wal_bytes << " WAL bytes, "
                << checkpoints << " cadence checkpoints + 1 final";
      if (checkpoint_failures > 0) {
        std::cout << ", " << checkpoint_failures
                  << " checkpoint FAILURES (WAL still has the data)";
      }
      std::cout << "\n";
    }
    if (verify) {
      std::cout << (mismatched_epochs == 0
                        ? "verify: every epoch matches a from-scratch bz "
                          "decomposition\n"
                        : "verify: MISMATCH\n");
    }
  }
  return mismatched_epochs == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const util::Args args(argc, argv);
    if (args.positional().empty()) return usage();
    const std::string& cmd = args.positional().front();
    int rc = 2;
    if (cmd == "decompose") {
      rc = cmd_decompose(args);
    } else if (cmd == "sweep") {
      rc = cmd_sweep(args);
    } else if (cmd == "stream") {
      rc = cmd_stream(args);
    } else if (cmd == "generate") {
      rc = cmd_generate(args);
    } else if (cmd == "stats") {
      rc = cmd_stats(args);
    } else if (cmd == "dot") {
      rc = cmd_dot(args);
    } else if (cmd == "profiles") {
      rc = cmd_profiles();
    } else if (cmd == "protocols") {
      rc = cmd_protocols();
    } else {
      std::cerr << "unknown subcommand '" << cmd << "'\n";
      return usage();
    }
    for (const auto& name : args.unused()) {
      std::cerr << "warning: unused option --" << name << "\n";
    }
    return rc;
  } catch (const util::IoError& e) {
    // Environmental failures (unreadable input, malformed stream lines,
    // unrecoverable state directories) are the user's to fix: one
    // actionable line, no CheckError context stack.
    std::cerr << "kcore: " << e.what() << "\n";
    return 1;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
