// A live overlay under churn: peers join, make and lose links, and the
// k-core decomposition is maintained continuously instead of being
// recomputed (DynamicKCore). This is the paper's one-to-one scenario
// taken to its run-time conclusion.
#include <iostream>

#include "core/dynamic.h"
#include "graph/generators.h"
#include "util/rng.h"
#include "util/table.h"

int main() {
  using namespace kcore;
  graph::Graph g = graph::gen::barabasi_albert(20000, 3, 31);
  core::DynamicKCore overlay(g);
  const auto bootstrap = overlay.lifetime_stats();
  std::cout << "bootstrap: " << overlay.num_nodes() << " peers, "
            << overlay.num_edges() << " links, " << bootstrap.rounds
            << " rounds, " << bootstrap.messages << " messages\n\n";

  util::Xoshiro256 rng(7);
  util::TableWriter table({"epoch", "joins", "new links", "lost links",
                           "maint msgs", "maint rounds", "kmax"});
  std::uint64_t prev_messages = bootstrap.messages;
  for (int epoch = 1; epoch <= 8; ++epoch) {
    int joins = 0;
    int adds = 0;
    int removals = 0;
    std::uint64_t rounds = 0;
    for (int event = 0; event < 250; ++event) {
      const double dice = rng.next_double();
      if (dice < 0.08) {
        // A new peer joins and bootstraps with 3 random links.
        const auto fresh = overlay.add_node();
        for (int l = 0; l < 3; ++l) {
          const auto peer = static_cast<graph::NodeId>(
              rng.next_below(overlay.num_nodes() - 1));
          rounds += overlay.add_edge(fresh, peer).rounds;
        }
        ++joins;
      } else if (dice < 0.60) {
        const auto u = static_cast<graph::NodeId>(
            rng.next_below(overlay.num_nodes()));
        const auto v = static_cast<graph::NodeId>(
            rng.next_below(overlay.num_nodes()));
        if (u != v) rounds += overlay.add_edge(u, v).rounds;
        ++adds;
      } else {
        const auto u = static_cast<graph::NodeId>(
            rng.next_below(overlay.num_nodes()));
        if (overlay.degree(u) > 0) {
          // Drop one of u's links.
          const auto v = static_cast<graph::NodeId>(
              rng.next_below(overlay.num_nodes()));
          rounds += overlay.remove_edge(u, v).rounds;
          ++removals;
        }
      }
    }
    graph::NodeId kmax = 0;
    for (const auto c : overlay.coreness()) kmax = std::max(kmax, c);
    const auto lifetime = overlay.lifetime_stats();
    table.add_row({std::to_string(epoch), std::to_string(joins),
                   std::to_string(adds), std::to_string(removals),
                   std::to_string(lifetime.messages - prev_messages),
                   std::to_string(rounds), std::to_string(kmax)});
    prev_messages = lifetime.messages;
  }
  table.print(std::cout);
  std::cout << "\nEach epoch of 250 churn events costs a small fraction of "
               "the bootstrap\nconvergence — the decomposition stays exact "
               "throughout (tested in\ntests/test_dynamic.cpp).\n";
  return 0;
}
