// Graph fingerprinting via k-core shells (the paper's visualization
// application [1]): decompose a graph and emit a GraphViz DOT file with
// onion-layer coloring, plus a textual shell-size histogram.
//
// Run: build/examples/visualize_shells [out.dot]
#include <iostream>
#include <string>

#include "graph/dot_export.h"
#include "graph/generators.h"
#include "seq/kcore_seq.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace kcore;
  const std::string out_path = argc > 1 ? argv[1] : "shells.dot";

  // A graph with visible onion structure: BA skeleton + planted nucleus.
  graph::Graph g = graph::gen::barabasi_albert(600, 2, 5);
  g = graph::gen::plant_dense_core(g, 40, 12, 6);

  const auto coreness = seq::coreness_bz(g);
  const auto summary = seq::summarize_coreness(coreness);

  std::cout << "graph: " << g.num_nodes() << " nodes, " << g.num_edges()
            << " edges, k_max=" << summary.k_max << "\n\n";
  util::TableWriter table({"shell", "nodes", "bar"});
  for (std::size_t k = 0; k < summary.shell_sizes.size(); ++k) {
    if (summary.shell_sizes[k] == 0) continue;
    const auto bar_len = std::min<std::size_t>(
        60, summary.shell_sizes[k] * 60 / g.num_nodes() + 1);
    table.add_row({std::to_string(k),
                   std::to_string(summary.shell_sizes[k]),
                   std::string(bar_len, '#')});
  }
  table.print(std::cout);

  graph::write_dot_file(out_path, g, coreness);
  std::cout << "\nwrote " << out_path
            << " — render with: fdp -Tsvg " << out_path
            << " -o shells.svg\n";
  return 0;
}
