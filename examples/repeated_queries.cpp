// Serving repeated traffic: prepare-once / run-many amortization with
// api::Session, mirrored in README.md.
//
// A production deployment decomposes the same graph again and again —
// health probes, per-request recomputation after cache flushes, repeated
// benchmarking. One-shot api::decompose() re-derives the assignment,
// host/shard state and estimate tables on every call; a Session derives
// them once in prepare() and serves any number of run() calls from that
// state, each warm report bit-identical to a one-shot decompose().
//
// This example measures the difference on a scale-free graph for every
// protocol that has real setup to amortize, then shows the declarative
// sweep path (api::Plan) producing the same comparison in a few lines.
//
// Run: build/examples/repeated_queries [n]
#include <iostream>
#include <string>
#include <vector>

#include "api/session.h"
#include "graph/generators.h"
#include "util/stats.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace kcore;
  const auto n = static_cast<graph::NodeId>(
      argc > 1 ? std::stoul(argv[1]) : 20000);
  const graph::Graph g = graph::gen::barabasi_albert(n, 3, 42);
  std::cout << "graph: " << g.num_nodes() << " nodes, " << g.num_edges()
            << " edges\n\n";

  constexpr int kQueries = 8;

  // --- the Session path: one prepare, many runs --------------------------
  util::TableWriter table({"protocol", "prepare ms", "first run ms",
                           "warm median ms", "amortized saving"});
  for (const std::string protocol : {"one-to-many", "one-to-many-par",
                                     "bsp-par", "bsp-async"}) {
    api::RunOptions options;
    options.num_hosts = 16;
    // threads stays at its default (0 = one worker per hardware thread);
    // the capability pass accepts it everywhere because only non-default
    // values of unconsumed knobs are errors.
    api::Session session(g, protocol, options);

    std::vector<double> wall_ms;
    for (int query = 0; query < kQueries; ++query) {
      const auto report = session.run();  // first call prepares on demand
      wall_ms.push_back(report.elapsed_ms);
    }
    const auto warm = util::SampleSummary::of(
        std::vector<double>(wall_ms.begin() + 1, wall_ms.end()));
    const double saving = wall_ms.front() > 0.0
                              ? 100.0 * (1.0 - warm.median / wall_ms.front())
                              : 0.0;
    table.add_row({protocol, util::fmt_double(session.prepare_ms(), 2),
                   util::fmt_double(wall_ms.front(), 2),
                   util::fmt_double(warm.median, 2),
                   util::fmt_double(saving, 1) + "%"});
  }
  table.print(std::cout);
  std::cout << "\n'first run ms' pays prepare (assignment + host/shard "
               "construction + table\nallocation); every later query "
               "replays from the prepared state.\n\n";

  // --- the Plan path: the same comparison, declaratively -----------------
  api::PlanSpec spec;
  spec.protocols = {"bz", "bsp-async"};
  spec.repeats = kQueries;
  std::cout << "api::Plan over {bz, bsp-async} x " << kQueries
            << " repeats:\n";
  api::Plan plan(g, spec);
  for (const auto& cell : plan.run()) {
    std::cout << "  " << cell.cell.protocol << ": first "
              << util::fmt_double(cell.first_wall_ms, 2) << "ms, warm median "
              << util::fmt_double(cell.warm_wall_ms.median, 2)
              << "ms over " << cell.warm_wall_ms.count << " runs\n";
  }
  return 0;
}
