// Quickstart: decompose a small graph with every protocol in the
// kcore::api registry and confirm they agree.
//
// The facade makes protocols interchangeable: one RunOptions struct, one
// decompose() call, string keys to pick the runtime ("bz", "peeling",
// "one-to-one", "one-to-many", "bsp"). This file is the quickstart
// mirrored in README.md.
//
// Run: build/examples/quickstart [edge_list_file]
// With no argument, the paper's Figure 1-style sample graph is used.
#include <iostream>
#include <string>

#include "api/api.h"
#include "graph/edge_list.h"
#include "graph/generators.h"
#include "seq/kcore_seq.h"
#include "util/table.h"

namespace {

kcore::graph::Graph sample_graph() {
  // A small three-shell graph: a K5 nucleus (3-core and beyond), a ring of
  // degree-2 nodes around it (2-shell), and pendant nodes (1-shell).
  kcore::graph::GraphBuilder b(12);
  for (kcore::graph::NodeId i = 0; i < 5; ++i) {
    for (kcore::graph::NodeId j = i + 1; j < 5; ++j) b.add_edge(i, j);
  }
  b.add_edge(5, 0);
  b.add_edge(5, 6);
  b.add_edge(6, 1);
  b.add_edge(6, 7);
  b.add_edge(7, 2);
  b.add_edge(7, 5);
  b.add_edge(8, 0);   // pendants
  b.add_edge(9, 3);
  b.add_edge(10, 6);
  b.add_edge(11, 10);
  return b.build();
}

}  // namespace

int main(int argc, char** argv) {
  kcore::graph::Graph g;
  if (argc > 1) {
    std::cout << "Loading edge list from " << argv[1] << "\n";
    g = kcore::graph::read_edge_list_file(argv[1]).graph;
  } else {
    g = sample_graph();
  }
  std::cout << "Graph: " << g.num_nodes() << " nodes, " << g.num_edges()
            << " edges\n\n";

  // One options struct drives every protocol; knobs a protocol does not
  // consume are simply ignored (4 hosts only matters to one-to-many/bsp).
  kcore::api::RunOptions options;
  options.num_hosts = 4;
  options.seed = 1;

  // Ground truth from the sequential baseline, then every registered
  // protocol by name.
  const auto baseline =
      kcore::api::decompose(g, kcore::api::kProtocolBz, options).coreness;
  bool agree = true;
  for (const auto& name : kcore::api::ProtocolRegistry::instance().names()) {
    const auto report = kcore::api::decompose(g, name, options);
    agree &= report.coreness == baseline;
    std::cout << name << ": " << report.traffic.execution_time
              << " rounds, " << report.traffic.total_messages
              << " messages, "
              << kcore::util::fmt_double(report.elapsed_ms, 2) << " ms"
              << (report.coreness == baseline ? "" : "  <-- DISAGREES")
              << "\n";
  }
  std::cout << "all protocols agree: " << (agree ? "yes" : "NO") << "\n\n";

  if (g.num_nodes() <= 64) {
    kcore::util::TableWriter table({"node", "degree", "coreness"});
    for (kcore::graph::NodeId u = 0; u < g.num_nodes(); ++u) {
      table.add_row({std::to_string(u), std::to_string(g.degree(u)),
                     std::to_string(baseline[u])});
    }
    table.print(std::cout);
  }
  const auto summary = kcore::seq::summarize_coreness(baseline);
  std::cout << "\nk_max = " << summary.k_max << ", k_avg = "
            << kcore::util::fmt_double(summary.k_avg) << "\n";
  for (std::size_t k = 0; k < summary.shell_sizes.size(); ++k) {
    if (summary.shell_sizes[k] == 0) continue;
    std::cout << "  " << k << "-shell: " << summary.shell_sizes[k]
              << " node(s)\n";
  }
  return agree ? 0 : 1;
}
