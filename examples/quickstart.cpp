// Quickstart: decompose a small graph three ways and confirm they agree.
//
//   1. sequential Batagelj–Zaveršnik baseline (src/seq),
//   2. the one-to-one distributed protocol (every node is a host),
//   3. the one-to-many distributed protocol (4 hosts).
//
// Run: build/examples/quickstart [edge_list_file]
// With no argument, the paper's Figure 1-style sample graph is used.
#include <iostream>
#include <string>

#include "core/one_to_many.h"
#include "core/one_to_one.h"
#include "graph/edge_list.h"
#include "graph/generators.h"
#include "seq/kcore_seq.h"
#include "util/table.h"

namespace {

kcore::graph::Graph sample_graph() {
  // A small three-shell graph: a K5 nucleus (3-core and beyond), a ring of
  // degree-2 nodes around it (2-shell), and pendant nodes (1-shell).
  kcore::graph::GraphBuilder b(12);
  for (kcore::graph::NodeId i = 0; i < 5; ++i) {
    for (kcore::graph::NodeId j = i + 1; j < 5; ++j) b.add_edge(i, j);
  }
  b.add_edge(5, 0);
  b.add_edge(5, 6);
  b.add_edge(6, 1);
  b.add_edge(6, 7);
  b.add_edge(7, 2);
  b.add_edge(7, 5);
  b.add_edge(8, 0);   // pendants
  b.add_edge(9, 3);
  b.add_edge(10, 6);
  b.add_edge(11, 10);
  return b.build();
}

}  // namespace

int main(int argc, char** argv) {
  kcore::graph::Graph g;
  if (argc > 1) {
    std::cout << "Loading edge list from " << argv[1] << "\n";
    g = kcore::graph::read_edge_list_file(argv[1]).graph;
  } else {
    g = sample_graph();
  }
  std::cout << "Graph: " << g.num_nodes() << " nodes, " << g.num_edges()
            << " edges\n\n";

  // 1. Sequential ground truth.
  const auto baseline = kcore::seq::coreness_bz(g);

  // 2. One-to-one distributed run.
  kcore::core::OneToOneConfig one_config;
  const auto one = kcore::core::run_one_to_one(g, one_config);

  // 3. One-to-many distributed run on 4 hosts.
  kcore::core::OneToManyConfig many_config;
  many_config.num_hosts = 4;
  const auto many = kcore::core::run_one_to_many(g, many_config);

  const bool agree =
      one.coreness == baseline && many.coreness == baseline;
  std::cout << "one-to-one:  " << one.traffic.execution_time
            << " rounds, " << one.traffic.total_messages << " messages\n";
  std::cout << "one-to-many: " << many.traffic.execution_time
            << " rounds, " << many.estimates_shipped_total
            << " estimates shipped across hosts\n";
  std::cout << "all three algorithms agree: " << (agree ? "yes" : "NO")
            << "\n\n";

  if (g.num_nodes() <= 64) {
    kcore::util::TableWriter table({"node", "degree", "coreness"});
    for (kcore::graph::NodeId u = 0; u < g.num_nodes(); ++u) {
      table.add_row({std::to_string(u), std::to_string(g.degree(u)),
                     std::to_string(baseline[u])});
    }
    table.print(std::cout);
  }
  const auto summary = kcore::seq::summarize_coreness(baseline);
  std::cout << "\nk_max = " << summary.k_max << ", k_avg = "
            << kcore::util::fmt_double(summary.k_avg) << "\n";
  for (std::size_t k = 0; k < summary.shell_sizes.size(); ++k) {
    if (summary.shell_sizes[k] == 0) continue;
    std::cout << "  " << k << "-shell: " << summary.shell_sizes[k]
              << " node(s)\n";
  }
  return agree ? 0 : 1;
}
