// One-to-one scenario (§1): a live P2P overlay inspects itself at run time
// and uses coreness to pick gossip seeds.
//
// The paper motivates this with Kitsak et al. [8]: nodes in high cores are
// better epidemic spreaders than mere high-degree hubs. This example
//   1. builds a P2P-ish overlay (power-law social graph),
//   2. runs the distributed one-to-one protocol (via the kcore::api
//      facade) so every "peer" learns its own coreness,
//   3. simulates SI epidemics seeded at (a) the highest-coreness node,
//      (b) the highest-degree node, (c) a random node,
// and prints the infection coverage per round for each seeding strategy.
#include <algorithm>
#include <iostream>

#include "api/api.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "util/rng.h"
#include "util/table.h"

namespace {

using kcore::graph::Graph;
using kcore::graph::NodeId;

/// Simple synchronous SI epidemic: each round, every infected node infects
/// each susceptible neighbor independently with probability beta.
std::vector<double> si_coverage(const Graph& g, NodeId seed_node, double beta,
                                int rounds, std::uint64_t seed) {
  kcore::util::Xoshiro256 rng(seed);
  std::vector<bool> infected(g.num_nodes(), false);
  infected[seed_node] = true;
  std::size_t count = 1;
  std::vector<NodeId> frontier{seed_node};
  std::vector<double> coverage;
  std::vector<NodeId> next;
  for (int r = 0; r < rounds; ++r) {
    next.clear();
    for (const NodeId u : frontier) {
      for (const NodeId v : g.neighbors(u)) {
        if (!infected[v] && rng.next_bool(beta)) {
          infected[v] = true;
          ++count;
          next.push_back(v);
        }
      }
    }
    // Previously infected nodes keep trying, so carry the full infected
    // frontier forward (SI, not SIR).
    for (const NodeId u : frontier) next.push_back(u);
    std::swap(frontier, next);
    coverage.push_back(static_cast<double>(count) /
                       static_cast<double>(g.num_nodes()));
  }
  return coverage;
}

}  // namespace

int main() {
  // A 5000-peer overlay with a dense community core — plus the structure
  // that makes coreness interesting (Kitsak et al. [8]): a "peripheral
  // superstar", a peer with enormous degree sitting at the edge of the
  // network (think: a directory server with thousands of leaf clients and
  // a single uplink). Its degree dwarfs everyone's, its coreness is 1.
  Graph base = kcore::graph::gen::barabasi_albert(4200, 3, 11);
  base = kcore::graph::gen::plant_dense_core(base, 60, 20, 12);
  kcore::graph::GraphBuilder builder(base.num_nodes());
  for (NodeId u = 0; u < base.num_nodes(); ++u) {
    for (const NodeId v : base.neighbors(u)) {
      if (u < v) builder.add_edge(u, v);
    }
  }
  const NodeId superstar = base.num_nodes();
  for (NodeId leaf = 1; leaf <= 800; ++leaf) {
    builder.add_edge(superstar, superstar + leaf);
  }
  builder.add_edge(superstar, 17);  // one uplink into the overlay
  const Graph g = builder.build();

  std::cout << "P2P overlay: " << g.num_nodes() << " peers, "
            << g.num_edges() << " links\n";

  // Every peer runs Algorithm 1; afterwards each knows its own coreness.
  kcore::api::RunOptions options;
  options.seed = 3;
  const auto run =
      kcore::api::decompose(g, kcore::api::kProtocolOneToOne, options);
  std::cout << "distributed k-core decomposition: "
            << run.traffic.execution_time << " rounds, "
            << run.traffic.total_messages << " messages ("
            << kcore::util::fmt_double(
                   static_cast<double>(run.traffic.total_messages) /
                   g.num_nodes())
            << "/peer)\n\n";

  // Pick seeds by the three strategies.
  NodeId top_core = 0;
  NodeId top_degree = 0;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    if (run.coreness[u] > run.coreness[top_core]) top_core = u;
    if (g.degree(u) > g.degree(top_degree)) top_degree = u;
  }
  // Periphery seed: deliberately mediocre (a coreness-1 leaf).
  NodeId random_peer = 0;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    if (run.coreness[u] == 1 && g.degree(u) <= 2) {
      random_peer = u;
      break;
    }
  }

  std::cout << "seeds: top-coreness peer " << top_core << " (k="
            << run.coreness[top_core] << ", d=" << g.degree(top_core)
            << "), top-degree peer " << top_degree << " (k="
            << run.coreness[top_degree] << ", d=" << g.degree(top_degree)
            << "), periphery peer " << random_peer << " (k=1)\n\n";

  constexpr double kBeta = 0.05;
  constexpr int kRounds = 12;
  constexpr int kTrials = 40;
  kcore::util::TableWriter table(
      {"round", "top-coreness", "top-degree", "periphery"});
  std::vector<std::vector<double>> avg(3, std::vector<double>(kRounds, 0.0));
  const NodeId seeds[3] = {top_core, top_degree, random_peer};
  for (int trial = 0; trial < kTrials; ++trial) {
    for (int s = 0; s < 3; ++s) {
      const auto cov = si_coverage(g, seeds[s], kBeta, kRounds,
                                   1000 + static_cast<unsigned>(trial));
      for (int r = 0; r < kRounds; ++r) avg[s][r] += cov[r] / kTrials;
    }
  }
  for (int r = 0; r < kRounds; ++r) {
    table.add_row({std::to_string(r + 1),
                   kcore::util::fmt_double(avg[0][r] * 100, 1) + "%",
                   kcore::util::fmt_double(avg[1][r] * 100, 1) + "%",
                   kcore::util::fmt_double(avg[2][r] * 100, 1) + "%"});
  }
  table.print(std::cout);
  std::cout << "\nThe top-DEGREE peer (the peripheral superstar) floods its "
               "own leaves and\nthen bottlenecks through its single uplink; "
               "the top-CORENESS peer reaches\nthe bulk of the overlay much "
               "faster — Kitsak et al.'s observation [8], the\nrun-time "
               "use case the paper motivates with [8]/[11]. Degree is "
               "local and\nfree; coreness needs the distributed protocol "
               "above — and is worth it.\n";
  return 0;
}
