// Reproduces the paper's §3.1.1 worked example verbatim: the 6-node graph
// of Figure 2, traced round by round, with the narration from the paper
// checked against the live protocol state.
#include <iostream>
#include <vector>

#include "api/api.h"
#include "graph/graph.h"
#include "util/table.h"

int main() {
  using namespace kcore;
  // Figure 2: path 1-2-3-4-5-6 with chords (2,4) and (3,5); nodes 2..5
  // have degree 3, the endpoints degree 1. (0-indexed below.)
  graph::GraphBuilder builder(6);
  builder.add_edge(0, 1);
  builder.add_edge(1, 2);
  builder.add_edge(2, 3);
  builder.add_edge(3, 4);
  builder.add_edge(4, 5);
  builder.add_edge(1, 3);
  builder.add_edge(2, 4);
  const graph::Graph g = builder.build();

  std::cout << "The §3.1.1 example (Figure 2), synchronous rounds:\n\n";
  util::TableWriter table(
      {"round", "n1", "n2", "n3", "n4", "n5", "n6", "narration"});
  const std::vector<std::string> narration{
      "everyone broadcasts its degree",
      "nodes 2 and 5 saw the degree-1 endpoints: drop to 2",
      "nodes 3 and 4 saw those updates: drop to 2 — converged",
      "the round-3 messages change nothing; the protocol stops",
  };
  api::RunOptions options;
  options.mode = sim::DeliveryMode::kSynchronous;
  options.targeted_send = false;
  const auto result = api::decompose(
      g, api::kProtocolOneToOne, options,
      [&](const api::ProgressEvent& event) {
        std::vector<std::string> cells{std::to_string(event.round)};
        for (const auto e : event.estimates) {
          cells.push_back(std::to_string(e));
        }
        cells.push_back(event.round - 1 < narration.size()
                            ? narration[event.round - 1]
                            : "");
        table.add_row(std::move(cells));
      });
  table.print(std::cout);
  std::cout << "\nexecution time (rounds with traffic): "
            << result.traffic.execution_time << "\n"
            << "messages exchanged: " << result.traffic.total_messages
            << "\n"
            << "final coreness: ";
  for (const auto c : result.coreness) std::cout << c << ' ';
  std::cout << "\n\nPaper: \"core = 2 for v = 2,3,4,5 and core = 1 for "
               "v = 1,6\" — reproduced.\n";
  return result.coreness == std::vector<graph::NodeId>{1, 2, 2, 2, 2, 1}
             ? 0
             : 1;
}
