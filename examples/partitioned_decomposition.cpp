// One-to-many scenario (§1): a graph too large for one machine is spread
// over a cluster of hosts; each host runs Algorithm 3 on behalf of its
// node partition. This example decomposes a 100k-node social-style graph
// on 16 simulated hosts through the kcore::api facade and compares the
// two §3.2.1 communication policies plus the effect of the assignment
// policy (per-protocol metrics come from the report's typed extras).
#include <iostream>
#include <variant>

#include "api/api.h"
#include "graph/generators.h"
#include "seq/kcore_seq.h"
#include "util/table.h"

int main() {
  using namespace kcore;
  graph::Graph g = graph::gen::barabasi_albert(100000, 4, 21);
  g = graph::gen::plant_dense_core(g, 300, 40, 22);
  std::cout << "partitioned graph: " << g.num_nodes() << " nodes, "
            << g.num_edges() << " edges, 16 hosts\n\n";

  const auto truth = seq::coreness_bz(g);
  const auto summary = seq::summarize_coreness(truth);
  std::cout << "ground truth: k_max=" << summary.k_max
            << " k_avg=" << util::fmt_double(summary.k_avg) << "\n\n";

  util::TableWriter table({"comm policy", "assignment", "rounds",
                           "estimates shipped", "per node", "exact"});
  for (const auto comm :
       {api::CommPolicy::kBroadcast, api::CommPolicy::kPointToPoint}) {
    for (const auto assignment :
         {api::AssignmentPolicy::kModulo, api::AssignmentPolicy::kBlock}) {
      api::RunOptions options;
      options.num_hosts = 16;
      options.comm = comm;
      options.assignment = assignment;
      options.seed = 5;
      const auto result =
          api::decompose(g, api::kProtocolOneToMany, options);
      const auto& extras = std::get<api::OneToManyExtras>(result.extras);
      table.add_row(
          {api::to_string(comm), api::to_string(assignment),
           std::to_string(result.traffic.execution_time),
           std::to_string(extras.estimates_shipped_total),
           util::fmt_double(extras.overhead_per_node, 3),
           result.coreness == truth ? "yes" : "NO"});
    }
  }
  table.print(std::cout);

  // Host load balance for the paper's modulo policy.
  api::RunOptions options;
  options.num_hosts = 16;
  options.seed = 5;
  const auto result = api::decompose(g, api::kProtocolOneToMany, options);
  const auto& extras = std::get<api::OneToManyExtras>(result.extras);
  std::cout << "\nper-host estimates shipped (modulo, point-to-point):\n  ";
  for (const auto v : extras.estimates_shipped_by_host) std::cout << v << " ";
  std::cout << "\n\nWith a broadcast medium each changed estimate is sent "
               "once per flush —\nthe overhead per node stays tiny, which "
               "is the Figure 5 (left) story.\n";
  return 0;
}
