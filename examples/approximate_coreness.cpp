// Termination option 3 (§3.3 / §5.1): run for a fixed number of rounds and
// accept an approximate decomposition. The paper observes that "after very
// few rounds the estimate error is extremely low"; this example makes that
// trade-off concrete on a slow-converging mesh-like graph. The reference
// run goes through the kcore::api facade; the fixed-rounds sweep uses the
// §3.3 analysis helper from core/termination.h.
#include <iostream>

#include "api/api.h"
#include "core/termination.h"
#include "graph/generators.h"
#include "util/table.h"

int main() {
  using namespace kcore;
  // A mesh with shortcuts: full convergence takes ~hundred rounds, but the
  // error collapses almost immediately.
  graph::Graph g = graph::gen::grid(200, 200);
  g = graph::gen::add_random_edges(g, 200, 7);
  std::cout << "graph: " << g.num_nodes() << " nodes, " << g.num_edges()
            << " edges (grid + shortcuts)\n\n";

  api::RunOptions options;
  options.seed = 9;
  {
    // Reference: full convergence.
    const auto full = api::decompose(g, api::kProtocolOneToOne, options);
    std::cout << "full convergence: " << full.traffic.execution_time
              << " rounds\n\n";
  }

  util::TableWriter table(
      {"rounds", "avg error", "max error", "fraction exact"});
  for (const std::uint64_t rounds : {1, 2, 4, 8, 16, 32, 64, 128}) {
    const auto approx = core::approximate_coreness(g, rounds, options);
    table.add_row({std::to_string(rounds),
                   util::fmt_double(approx.avg_error, 4),
                   std::to_string(approx.max_error),
                   util::fmt_double(approx.fraction_exact * 100, 2) + "%"});
  }
  table.print(std::cout);
  std::cout << "\nEstimates are always upper bounds (Theorem 2), so an "
               "early stop yields a\nsafe approximation — good enough for "
               "spreader selection long before exact\nconvergence.\n";
  return 0;
}
