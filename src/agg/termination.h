// Decentralized termination detection via gossip max-aggregation (§3.3).
//
// After (or alongside) a k-core run, every host knows the last round in
// which it generated a new estimate. Gossiping the maximum of these values
// lets every host learn the global "last activity round"; once a host's
// view of that maximum has been stable for a confirmation window it can
// conclude the decomposition protocol has terminated and start using the
// computed coreness. This module simulates that detector on a host
// overlay and reports convergence/detection rounds and control traffic —
// the O(log |H|) behaviour is checked in tests and measured in
// bench/ablation_termination.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "sim/engine.h"

namespace kcore::agg {

/// Build the host-overlay graph induced by a node->host assignment: hosts
/// x != y are adjacent iff some graph edge joins V(x) and V(y). This is
/// exactly the neighborH() relation of §2.
[[nodiscard]] graph::Graph build_host_overlay(
    const graph::Graph& g, const std::vector<sim::HostId>& owner,
    sim::HostId num_hosts);

struct GossipTerminationConfig {
  /// Rounds a host waits without observing a larger maximum before it
  /// concludes termination.
  std::uint32_t quiet_window = 8;
  std::uint64_t seed = 1;
  std::uint64_t max_rounds = 100000;
};

struct GossipTerminationResult {
  /// First gossip round at which every host holds the true global maximum.
  std::uint64_t rounds_to_converge = 0;
  /// rounds_to_converge + quiet window: when the last host declares done.
  std::uint64_t rounds_to_detect = 0;
  std::uint64_t control_messages = 0;
  bool converged = false;
};

/// Simulate the detector: hosts start with their own last-activity round
/// and gossip the max over `overlay`.
[[nodiscard]] GossipTerminationResult gossip_termination(
    const graph::Graph& overlay,
    const std::vector<std::uint64_t>& last_active_round,
    const GossipTerminationConfig& config);

}  // namespace kcore::agg
