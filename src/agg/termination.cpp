#include "agg/termination.h"

#include <algorithm>
#include <unordered_set>

#include "agg/gossip.h"
#include "util/check.h"

namespace kcore::agg {

graph::Graph build_host_overlay(const graph::Graph& g,
                                const std::vector<sim::HostId>& owner,
                                sim::HostId num_hosts) {
  KCORE_CHECK(owner.size() == g.num_nodes());
  std::unordered_set<std::uint64_t> seen;
  graph::GraphBuilder b(num_hosts);
  for (graph::NodeId u = 0; u < g.num_nodes(); ++u) {
    const sim::HostId hu = owner[u];
    for (graph::NodeId v : g.neighbors(u)) {
      if (u >= v) continue;
      const sim::HostId hv = owner[v];
      if (hu == hv) continue;
      sim::HostId a = hu;
      sim::HostId c = hv;
      if (a > c) std::swap(a, c);
      const std::uint64_t key = (static_cast<std::uint64_t>(a) << 32) | c;
      if (seen.insert(key).second) b.add_edge(a, c);
    }
  }
  return b.build();
}

GossipTerminationResult gossip_termination(
    const graph::Graph& overlay,
    const std::vector<std::uint64_t>& last_active_round,
    const GossipTerminationConfig& config) {
  KCORE_CHECK(last_active_round.size() == overlay.num_nodes());
  KCORE_CHECK_MSG(overlay.num_nodes() >= 1, "overlay must be non-empty");

  const std::uint64_t true_max = *std::max_element(last_active_round.begin(),
                                                   last_active_round.end());

  std::vector<MaxGossipHost> hosts;
  hosts.reserve(overlay.num_nodes());
  for (sim::HostId h = 0; h < overlay.num_nodes(); ++h) {
    hosts.emplace_back(&overlay, h, last_active_round[h],
                       config.quiet_window, config.seed);
  }

  sim::EngineConfig engine_config;
  engine_config.mode = sim::DeliveryMode::kCycleRandomOrder;
  engine_config.seed = config.seed;
  engine_config.max_rounds = config.max_rounds;

  sim::Engine<MaxGossipHost> engine(std::move(hosts), engine_config);

  GossipTerminationResult result;
  std::uint64_t first_all_max = 0;
  auto observer = [&](std::uint64_t round,
                      const std::vector<MaxGossipHost>& hs) {
    if (first_all_max != 0) return;
    const bool all_max = std::all_of(
        hs.begin(), hs.end(),
        [&](const MaxGossipHost& h) { return h.value() == true_max; });
    if (all_max) first_all_max = round;
  };
  const auto traffic = engine.run(observer);

  result.control_messages = traffic.total_messages;
  result.rounds_to_converge = first_all_max;
  result.rounds_to_detect = first_all_max + config.quiet_window;
  result.converged =
      first_all_max != 0 &&
      std::all_of(engine.hosts().begin(), engine.hosts().end(),
                  [&](const MaxGossipHost& h) {
                    return h.value() == true_max;
                  });
  return result;
}

}  // namespace kcore::agg
