// Gossip-based peer sampling (view shuffling), the substrate assumed by
// the epidemic aggregation protocols of [6].
//
// Each host keeps a small partial view of (peer, age) descriptors. Every
// round it ages its view, picks the oldest-known peer, and swaps half of
// its view with it; both sides keep the freshest unique descriptors. The
// emergent communication graph is a continually-reshuffled random-ish
// overlay: degree stays bounded by the view size, yet samples drawn from
// the view over time cover the whole network — exactly the service
// random peer selection in gossip aggregation needs. (Jelasity et al.,
// "Gossip-based peer sampling", TOCS 2007 — shuffle/healer variant.)
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "sim/engine.h"
#include "util/rng.h"

namespace kcore::agg {

/// One view entry: a peer and how stale our knowledge of it is.
struct PeerDescriptor {
  sim::HostId peer = 0;
  std::uint32_t age = 0;
};

/// A host running the shuffle protocol.
class PeerSamplingHost {
 public:
  using Message = std::vector<PeerDescriptor>;

  /// `bootstrap` seeds the initial view (e.g. ring neighbors).
  PeerSamplingHost(sim::HostId self, std::size_t view_size,
                   std::vector<sim::HostId> bootstrap, std::uint64_t seed)
      : self_(self),
        view_size_(view_size),
        rng_(util::SplitMix64(seed ^ (0x2545f4914f6cdd1dULL * (self + 1)))
                 .next()) {
    KCORE_CHECK_MSG(view_size_ >= 2, "view size must be >= 2");
    for (const sim::HostId p : bootstrap) {
      if (p != self_) view_.push_back({p, 0});
    }
    truncate();
  }

  void on_message(sim::HostId from, const Message& m) {
    merge(m);
    if (!replied_to_.empty() && replied_to_.back() == from) return;
    // Reply with our half-view to complete the swap (push-pull), at most
    // once per round per partner.
    reply_pending_ = from;
  }

  void on_round(sim::Context<Message>& ctx) {
    if (reply_pending_ != sim::HostId(-1)) {
      ctx.send(reply_pending_, make_exchange());
      replied_to_.push_back(reply_pending_);
      if (replied_to_.size() > 4) replied_to_.erase(replied_to_.begin());
      reply_pending_ = sim::HostId(-1);
    }
    if (view_.empty()) return;
    for (auto& d : view_) ++d.age;
    // Contact the oldest descriptor (healer strategy).
    const auto oldest = std::max_element(
        view_.begin(), view_.end(),
        [](const PeerDescriptor& a, const PeerDescriptor& b) {
          return a.age < b.age;
        });
    const sim::HostId target = oldest->peer;
    // Drop the contacted descriptor (it is refreshed by the reply).
    view_.erase(oldest);
    ctx.send(target, make_exchange());
  }

  [[nodiscard]] const std::vector<PeerDescriptor>& view() const noexcept {
    return view_;
  }

  /// A uniform-ish random peer from the current view (the service the
  /// aggregation layer consumes); self when the view is empty.
  [[nodiscard]] sim::HostId sample_peer() {
    if (view_.empty()) return self_;
    return view_[rng_.next_below(view_.size())].peer;
  }

 private:
  /// Half of the view (randomly chosen) plus a fresh self-descriptor.
  Message make_exchange() {
    Message out;
    out.push_back({self_, 0});
    if (!view_.empty()) {
      auto copy = view_;
      util::shuffle(copy, rng_);
      const std::size_t half = std::max<std::size_t>(1, copy.size() / 2);
      for (std::size_t i = 0; i < half && i < copy.size(); ++i) {
        out.push_back(copy[i]);
      }
    }
    return out;
  }

  void merge(const Message& incoming) {
    for (const PeerDescriptor& d : incoming) {
      if (d.peer == self_) continue;
      const auto it = std::find_if(
          view_.begin(), view_.end(),
          [&](const PeerDescriptor& e) { return e.peer == d.peer; });
      if (it == view_.end()) {
        view_.push_back(d);
      } else if (d.age < it->age) {
        it->age = d.age;
      }
    }
    truncate();
  }

  /// Keep the freshest view_size_ descriptors.
  void truncate() {
    std::sort(view_.begin(), view_.end(),
              [](const PeerDescriptor& a, const PeerDescriptor& b) {
                return a.age < b.age;
              });
    if (view_.size() > view_size_) view_.resize(view_size_);
  }

  sim::HostId self_;
  std::size_t view_size_;
  std::vector<PeerDescriptor> view_;
  sim::HostId reply_pending_ = sim::HostId(-1);
  std::vector<sim::HostId> replied_to_;
  util::Xoshiro256 rng_;
};

/// Drive `rounds` rounds of shuffling over `num_hosts` hosts bootstrapped
/// from a ring, returning the final hosts for inspection.
struct PeerSamplingResult {
  std::vector<PeerSamplingHost> hosts;
  sim::TrafficStats traffic;
};

[[nodiscard]] PeerSamplingResult run_peer_sampling(sim::HostId num_hosts,
                                                   std::size_t view_size,
                                                   std::uint64_t rounds,
                                                   std::uint64_t seed);

}  // namespace kcore::agg
