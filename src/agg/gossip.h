// Epidemic (gossip) aggregation — the paper's reference [6] substrate.
//
// §3.3 proposes detecting termination with "epidemic protocols for
// aggregation [that] enable the decentralized computation of global
// properties in O(log |H|) rounds". Two protocols are provided:
//
//  * MaxGossipHost — push gossip with stale-reply: every round each host
//    pushes its current maximum to one uniformly random overlay neighbor;
//    a receiver holding a larger value pushes back. Converges to the
//    global maximum in O(log H) rounds on well-connected overlays. Hosts
//    go quiet after `quiet_window` rounds without change, so the engine's
//    quiescence detection terminates the run.
//
//  * PushSumHost — Kempe-style push-sum averaging: each host maintains a
//    (value, weight) pair, keeps half and pushes half each round. The sum
//    of values and of weights over all hosts is invariant (mass
//    conservation — property-tested), and value/weight converges to the
//    global average everywhere.
//
// Both plug into sim::Engine like the k-core protocols.
#pragma once

#include <cstdint>
#include <utility>

#include "graph/graph.h"
#include "sim/engine.h"
#include "util/rng.h"

namespace kcore::agg {

/// Push(-back) gossip maximum aggregation over an overlay graph.
class MaxGossipHost {
 public:
  using Message = std::uint64_t;

  MaxGossipHost(const graph::Graph* overlay, sim::HostId self,
                std::uint64_t initial_value, std::uint32_t quiet_window,
                std::uint64_t seed)
      : overlay_(overlay),
        self_(self),
        value_(initial_value),
        quiet_window_(quiet_window),
        rng_(util::SplitMix64(seed ^ (0x9e3779b97f4a7c15ULL * (self + 1)))
                 .next()) {
    KCORE_CHECK_MSG(quiet_window_ >= 1, "quiet window must be >= 1");
  }

  void on_message(sim::HostId from, const Message& m) {
    if (m > value_) {
      value_ = m;
      rounds_since_change_ = 0;
    } else if (m < value_) {
      // Stale sender: schedule a corrective push back (pull half).
      reply_to_ = from;
    }
  }

  void on_round(sim::Context<Message>& ctx) {
    const auto nbrs = overlay_->neighbors(self_);
    if (nbrs.empty()) return;
    if (reply_to_ != sim::HostId(-1)) {
      ctx.send(reply_to_, value_);
      reply_to_ = sim::HostId(-1);
    }
    if (rounds_since_change_ < quiet_window_) {
      const auto peer = nbrs[rng_.next_below(nbrs.size())];
      ctx.send(peer, value_);
      ++rounds_since_change_;
    }
  }

  [[nodiscard]] std::uint64_t value() const noexcept { return value_; }
  [[nodiscard]] bool quiet() const noexcept {
    return rounds_since_change_ >= quiet_window_;
  }

 private:
  const graph::Graph* overlay_;
  sim::HostId self_;
  std::uint64_t value_;
  std::uint32_t quiet_window_;
  std::uint32_t rounds_since_change_ = 0;
  sim::HostId reply_to_ = sim::HostId(-1);
  util::Xoshiro256 rng_;
};

/// Push-sum averaging (value, weight) host.
class PushSumHost {
 public:
  struct Share {
    double value = 0.0;
    double weight = 0.0;
  };
  using Message = Share;

  PushSumHost(const graph::Graph* overlay, sim::HostId self,
              double initial_value, double epsilon, std::uint32_t quiet_window,
              std::uint64_t seed)
      : overlay_(overlay),
        self_(self),
        value_(initial_value),
        weight_(1.0),
        epsilon_(epsilon),
        quiet_window_(quiet_window),
        rng_(util::SplitMix64(seed ^ (0xbf58476d1ce4e5b9ULL * (self + 1)))
                 .next()) {}

  void on_message(sim::HostId /*from*/, const Message& m) {
    value_ += m.value;
    weight_ += m.weight;
  }

  void on_round(sim::Context<Message>& ctx) {
    const auto nbrs = overlay_->neighbors(self_);
    if (nbrs.empty()) return;
    const double current = estimate();
    if (std::abs(current - last_estimate_) < epsilon_) {
      ++stable_rounds_;
    } else {
      stable_rounds_ = 0;
    }
    last_estimate_ = current;
    if (stable_rounds_ >= quiet_window_) return;  // converged locally
    // Keep half, push half.
    const Share out{value_ / 2.0, weight_ / 2.0};
    value_ /= 2.0;
    weight_ /= 2.0;
    const auto peer = nbrs[rng_.next_below(nbrs.size())];
    ctx.send(peer, out);
  }

  /// Current average estimate value/weight.
  [[nodiscard]] double estimate() const noexcept {
    return weight_ > 0.0 ? value_ / weight_ : 0.0;
  }
  [[nodiscard]] double value() const noexcept { return value_; }
  [[nodiscard]] double weight() const noexcept { return weight_; }

 private:
  const graph::Graph* overlay_;
  sim::HostId self_;
  double value_;
  double weight_;
  double epsilon_;
  std::uint32_t quiet_window_;
  std::uint32_t stable_rounds_ = 0;
  double last_estimate_ = -1.0e300;
  util::Xoshiro256 rng_;
};

}  // namespace kcore::agg
