#include "agg/peer_sampling.h"

namespace kcore::agg {

PeerSamplingResult run_peer_sampling(sim::HostId num_hosts,
                                     std::size_t view_size,
                                     std::uint64_t rounds,
                                     std::uint64_t seed) {
  KCORE_CHECK_MSG(num_hosts >= 3, "need at least 3 hosts");
  std::vector<PeerSamplingHost> hosts;
  hosts.reserve(num_hosts);
  for (sim::HostId h = 0; h < num_hosts; ++h) {
    // Ring bootstrap: successor and predecessor.
    std::vector<sim::HostId> bootstrap{
        (h + 1) % num_hosts, (h + num_hosts - 1) % num_hosts};
    hosts.emplace_back(h, view_size, std::move(bootstrap), seed);
  }
  sim::EngineConfig config;
  config.mode = sim::DeliveryMode::kCycleRandomOrder;
  config.seed = seed;
  config.max_rounds = rounds;  // shuffling never quiesces on its own
  sim::Engine<PeerSamplingHost> engine(std::move(hosts), config);
  PeerSamplingResult result;
  result.traffic = engine.run();
  result.hosts = std::move(engine.hosts());
  return result;
}

}  // namespace kcore::agg
