// Layer 2 of kcore::obs — per-worker trace rings.
//
// Each worker gets one fixed-capacity TraceRing and is its only writer;
// events are appended with monotone timestamps read from one shared
// steady-clock epoch, so a per-worker stream is sorted by construction.
// When a ring is full, further events are DROPPED and counted — never
// overwritten. Keeping the oldest events (the run's start-up, seeding
// and first relaxations) makes truncation obvious in the viewer, keeps
// per-worker timestamps monotone with no re-sort, and makes the drop
// accounting exact: events() holds exactly `capacity` events and
// dropped() says how many more there would have been. The drop counter
// is surfaced in the Chrome-trace metadata and in `kcore --json`.
//
// Post-run, obs::Recorder::harvest() copies the rings into
// WorkerTraceDumps and obs::write_chrome_trace() stitches them into one
// Chrome trace-event JSON (the "traceEvents" array format; load it at
// https://ui.perfetto.dev).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace kcore::obs {

/// One trace event. `name` must be a string with static storage duration
/// (string literals) — the hot path stores the pointer, never copies.
struct TraceEvent {
  const char* name = nullptr;
  std::uint64_t ts_us = 0;   // microseconds since the recorder's epoch
  std::uint64_t dur_us = 0;  // 0 for instants
  char ph = 'X';             // 'X' complete span, 'i' instant
};

/// Fixed-capacity single-writer event buffer (see file comment for the
/// full-ring policy). The writer thread calls record(); readers may call
/// events()/dropped() only after the writer has quiesced (workers
/// joined) — there is no concurrent-read support and none is needed.
class TraceRing {
 public:
  explicit TraceRing(std::uint32_t capacity) { events_.reserve(capacity); }

  [[nodiscard]] std::uint32_t capacity() const {
    return static_cast<std::uint32_t>(events_.capacity());
  }

  /// Append; drops (and counts) once the ring is full. Never allocates
  /// past the initial reservation.
  void record(const TraceEvent& e) {
    if (events_.size() == events_.capacity()) {
      ++dropped_;
      return;
    }
    events_.push_back(e);
  }

  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }
  [[nodiscard]] std::span<const TraceEvent> events() const { return events_; }

  /// Single-threaded reset between runs; keeps the allocation.
  void clear() {
    events_.clear();
    dropped_ = 0;
  }

 private:
  std::vector<TraceEvent> events_;
  std::uint64_t dropped_ = 0;
};

/// One worker's harvested trace: tid is the worker index.
struct WorkerTraceDump {
  unsigned tid = 0;
  std::vector<TraceEvent> events;  // monotone ts_us by construction
  std::uint64_t dropped = 0;
};

}  // namespace kcore::obs
