// kcore::obs — lock-free runtime telemetry, umbrella header.
//
// Three layers (each in its own header; this one adds the per-run glue):
//   1. Metrics  (obs/metrics.h)  — per-worker counter/histogram registry.
//   2. Tracing  (obs/trace.h)    — per-worker span/instant rings, stitched
//                                  into Chrome trace-event JSON.
//   3. Sampling (obs/sampler.h)  — background convergence sampler
//                                  (worklist depth, outstanding work,
//                                  sum-of-estimates: the Fig. 4 proxy).
//
// The glue:
//   * Recorder      — one per run; owns the registry, the rings and the
//                     sampler, hands each worker a WorkerContext.
//   * WorkerContext — what an engine threads into its hot loop; the
//                     OBS_* macros take a possibly-null pointer to one.
//   * RunTelemetry  — the harvested result, carried by DecomposeReport.
//
// Cost discipline (mirrors chk::RealSync): with KCORE_OBS=OFF every
// OBS_* macro expands to nothing and obs::kEnabled is a compile-time
// false, so engine hot loops contain zero telemetry code. With
// KCORE_OBS=ON but telemetry not requested (ObsOptions::any() false —
// the default), no Recorder is built and every macro's null check is a
// never-taken branch on a pointer that is pinned null. The kernel-bench
// exit gate pins both.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <vector>

#include "obs/metrics.h"
#include "obs/options.h"
#include "obs/sampler.h"
#include "obs/trace.h"
#include "util/clock.h"

namespace kcore::obs {

/// Everything one run recorded. DecomposeReport carries it by
/// shared_ptr; absent layers are empty vectors / false flags.
struct RunTelemetry {
  bool has_metrics = false;
  MetricsSnapshot metrics;

  bool has_trace = false;
  std::vector<WorkerTraceDump> trace;  // one dump per worker
  std::uint64_t trace_dropped = 0;     // total events lost to full rings

  std::vector<Sample> samples;  // empty when the sampler was off (or the
                                // run beat the first period)
  double sample_period_ms = 0.0;
};

/// Stitch a harvested telemetry object into Chrome trace-event JSON
/// (the `{"traceEvents": [...]}` format; loadable at ui.perfetto.dev).
/// Emits one 'M' thread_name metadata event per worker, the recorded
/// 'X'/'i' events, and the sampler series as 'C' counter tracks. The
/// per-ring drop counts land in "otherData".
void write_chrome_trace(std::ostream& os, const RunTelemetry& telemetry);

/// Per-worker telemetry handle. Engines hold one pointer per worker and
/// pass it to the OBS_* macros; a null pointer (telemetry off) makes
/// every macro a no-op. All methods must be called by the owning worker
/// thread only.
class WorkerContext {
 public:
  [[nodiscard]] bool tracing() const { return ring_ != nullptr; }
  [[nodiscard]] bool metrics() const { return metrics_; }

  /// Microseconds since the recorder's epoch (one shared steady clock,
  /// so cross-worker timestamps are comparable).
  [[nodiscard]] std::uint64_t now_us() const {
    const auto d = util::SteadyClock::now() - epoch_;
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(d).count());
  }

  void instant(const char* name) {
    if (ring_ == nullptr) return;
    ring_->record(TraceEvent{name, now_us(), 0, 'i'});
  }

  void complete(const char* name, std::uint64_t start_us,
                std::uint64_t end_us) {
    if (ring_ == nullptr) return;
    ring_->record(TraceEvent{name, start_us, end_us - start_us, 'X'});
  }

  void add(Counter c, std::uint64_t n = 1) {
    if (metrics_) registry_->add(c, worker_, n);
  }

  void observe(HistogramId h, std::uint64_t value) {
    if (metrics_) registry_->observe(h, worker_, value);
  }

  [[nodiscard]] unsigned worker() const { return worker_; }
  [[nodiscard]] util::SteadyClock::time_point epoch() const { return epoch_; }

 private:
  friend class Recorder;
  TraceRing* ring_ = nullptr;    // null: tracing off
  Registry* registry_ = nullptr;
  bool metrics_ = false;         // false: counters/histograms off
  unsigned worker_ = 0;
  util::SteadyClock::time_point epoch_{};
};

/// RAII span: records an 'X' trace event over its lifetime and, when a
/// valid histogram handle is passed, observes the duration in
/// NANOSECONDS into it. Disengages (single branch, no clock read) when
/// the context is null or neither sink wants the measurement.
class Span {
 public:
  Span(WorkerContext* ctx, const char* name)
      : Span(ctx, name, HistogramId{}) {}

  Span(WorkerContext* ctx, const char* name, HistogramId latency_ns)
      : name_(name), hist_(latency_ns) {
    // Engage only when some sink wants the measurement; otherwise skip
    // even the clock read.
    if (ctx != nullptr &&
        (ctx->tracing() || (ctx->metrics() && hist_.valid()))) {
      ctx_ = ctx;
      start_ = util::SteadyClock::now();
    }
  }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  ~Span() {
    if (ctx_ == nullptr) return;
    const auto stop = util::SteadyClock::now();
    if (ctx_->tracing()) {
      const auto us = [this](util::SteadyClock::time_point t) {
        return static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::microseconds>(
                t - ctx_->epoch())
                .count());
      };
      ctx_->complete(name_, us(start_), us(stop));
    }
    if (hist_.valid()) {
      ctx_->observe(
          hist_, static_cast<std::uint64_t>(
                     std::chrono::duration_cast<std::chrono::nanoseconds>(
                         stop - start_)
                         .count()));
    }
  }

 private:
  WorkerContext* ctx_ = nullptr;
  const char* name_;
  HistogramId hist_;
  util::SteadyClock::time_point start_{};
};

/// One run's telemetry state: registry + rings + sampler + the worker
/// contexts. Engines construct it via make() (null when telemetry is
/// off), call worker(w) per worker thread, optionally start_sampler()
/// around the pool, and harvest() after the workers join.
class Recorder {
 public:
  Recorder(unsigned workers, const ObsOptions& options);

  /// Null unless the build has telemetry AND `options.obs` asks for some
  /// — the one check engines need.
  [[nodiscard]] static std::unique_ptr<Recorder> make(
      unsigned workers, const ObsOptions& options) {
    if (!kEnabled || !options.any()) return nullptr;
    return std::make_unique<Recorder>(workers, options);
  }

  [[nodiscard]] const ObsOptions& options() const { return options_; }
  [[nodiscard]] unsigned workers() const { return workers_; }
  [[nodiscard]] Registry& registry() { return registry_; }
  [[nodiscard]] bool metrics_on() const { return options_.metrics; }

  /// Stable per-worker context pointer (valid for the Recorder's life).
  [[nodiscard]] WorkerContext* worker(unsigned w) { return &contexts_[w]; }

  /// Launch the background sampler (no-op when sample_period_ms <= 0).
  void start_sampler(Sampler::Probe probe);
  /// Join it (idempotent; harvest() also stops it).
  void stop_sampler();

  /// Stop the sampler, snapshot the registry, dump the rings. Call after
  /// the workers have joined.
  [[nodiscard]] RunTelemetry harvest();

 private:
  ObsOptions options_;
  unsigned workers_;
  Registry registry_;
  std::vector<TraceRing> rings_;  // empty unless options_.trace
  std::vector<WorkerContext> contexts_;
  std::unique_ptr<Sampler> sampler_;
  util::SteadyClock::time_point epoch_;
};

}  // namespace kcore::obs

// --- hot-path macros --------------------------------------------------------
// `ctx` is always a (possibly null) obs::WorkerContext*. With
// KCORE_OBS=OFF each macro expands to a no-op statement so instrumented
// loops compile to exactly the uninstrumented code.
#if KCORE_OBS_ENABLED

#define KCORE_OBS_CONCAT_IMPL(a, b) a##b
#define KCORE_OBS_CONCAT(a, b) KCORE_OBS_CONCAT_IMPL(a, b)

/// RAII span for the rest of the enclosing scope:
///   OBS_SPAN(ctx, "relax");              — trace only
///   OBS_SPAN(ctx, "relax", relax_ns);    — trace + latency histogram
#define OBS_SPAN(ctx, ...)                                      \
  const ::kcore::obs::Span KCORE_OBS_CONCAT(kcore_obs_span_,    \
                                            __LINE__)((ctx), __VA_ARGS__)

/// Point event in the trace.
#define OBS_INSTANT(ctx, name)                    \
  do {                                            \
    if ((ctx) != nullptr) (ctx)->instant((name)); \
  } while (0)

/// counter += n on the calling worker's slot.
#define OBS_COUNT(ctx, counter, n)                       \
  do {                                                   \
    if ((ctx) != nullptr) (ctx)->add((counter), (n));    \
  } while (0)

/// Record a value into a histogram.
#define OBS_OBSERVE(ctx, hist, value)                        \
  do {                                                       \
    if ((ctx) != nullptr) (ctx)->observe((hist), (value));   \
  } while (0)

#else  // KCORE_OBS_ENABLED

// Compiled out: `sizeof` keeps the ctx expression "used" (suppressing
// unused-variable/-capture warnings) without evaluating it — zero code.
#define OBS_SPAN(ctx, ...) static_cast<void>(sizeof((ctx)))
#define OBS_INSTANT(ctx, name) static_cast<void>(sizeof((ctx)))
#define OBS_COUNT(ctx, counter, n) static_cast<void>(sizeof((ctx)))
#define OBS_OBSERVE(ctx, hist, value) static_cast<void>(sizeof((ctx)))

#endif  // KCORE_OBS_ENABLED
