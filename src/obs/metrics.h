// Layer 1 of kcore::obs — the lock-free per-worker metric registry.
//
// Write side: each counter owns one cache-line-padded atomic slot PER
// WORKER; each histogram owns one cache-line-aligned bucket row per
// worker. A worker only ever touches its own slot/row, so the hot-path
// "increment" is a relaxed load + relaxed store on a line nobody else
// writes — no RMW, no fence, no sharing. This is the same single-writer
// tally discipline the async worklist uses, lifted into a reusable
// registry.
//
// Read side: snapshot() aggregates every worker's slot with acquire
// loads. Concurrent snapshots (e.g. the background sampler) see a
// consistent-enough view: each individual cell is atomic, and because a
// cell is written by exactly one thread the acquire load observes a
// value that worker really had. Exactness is only guaranteed once the
// workers have joined (tests pin the exactly-once property under an
// owner-vs-thieves stress).
//
// Registration (counter()/histogram()) is single-threaded and must
// happen before workers start — handles are stable indices, re-using a
// name returns the existing handle.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace kcore::obs {

/// Opaque counter handle (index into the registry). Default-constructed
/// handles are invalid; Registry::add on one is a programming error.
class Counter {
 public:
  Counter() = default;
  [[nodiscard]] bool valid() const { return index_ != UINT32_MAX; }

 private:
  friend class Registry;
  explicit Counter(std::uint32_t index) : index_(index) {}
  std::uint32_t index_ = UINT32_MAX;
};

/// Opaque histogram handle.
class HistogramId {
 public:
  HistogramId() = default;
  [[nodiscard]] bool valid() const { return index_ != UINT32_MAX; }

 private:
  friend class Registry;
  explicit HistogramId(std::uint32_t index) : index_(index) {}
  std::uint32_t index_ = UINT32_MAX;
};

/// Aggregated power-of-two histogram. Bucket 0 counts zero values;
/// bucket i (1 <= i < kBuckets-1) counts values v with bit_width(v) == i,
/// i.e. v in [2^(i-1), 2^i); the last bucket absorbs everything larger.
struct HistogramSnapshot {
  static constexpr std::uint32_t kBuckets = 33;

  std::string name;
  std::vector<std::uint64_t> buckets;  // size kBuckets
  std::uint64_t count = 0;             // total observations
  std::uint64_t sum = 0;               // sum of observed values
  std::uint64_t max = 0;               // largest observed value

  /// Inclusive lower bound of bucket i's value range.
  [[nodiscard]] static std::uint64_t bucket_floor(std::uint32_t i) {
    return i == 0 ? 0 : std::uint64_t{1} << (i - 1);
  }
  [[nodiscard]] double mean() const {
    return count == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(count);
  }
};

/// Point-in-time aggregation of a Registry.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<HistogramSnapshot> histograms;

  /// Counter value by name; 0 when absent.
  [[nodiscard]] std::uint64_t value(std::string_view name) const;
  /// Histogram by name; nullptr when absent. Lvalue-only: the pointer
  /// aims into this snapshot, so calling it on a temporary
  /// (`reg.snapshot().histogram(...)`) would dangle — bind the snapshot
  /// to a local first.
  [[nodiscard]] const HistogramSnapshot* histogram(
      std::string_view name) const&;
  const HistogramSnapshot* histogram(std::string_view name) const&& = delete;
};

/// The per-worker counter/histogram registry. See the file comment for
/// the threading contract.
class Registry {
 public:
  explicit Registry(unsigned workers);

  [[nodiscard]] unsigned workers() const { return workers_; }

  /// Register (or look up) a counter by name. Single-threaded; call
  /// before the workers start.
  Counter counter(std::string_view name);
  /// Register (or look up) a histogram by name. Single-threaded.
  HistogramId histogram(std::string_view name);

  /// Hot path: add `n` to `worker`'s slot of counter `c`. Relaxed
  /// load+store — `worker` must be the calling thread's own lane.
  void add(Counter c, unsigned worker, std::uint64_t n = 1) {
    std::atomic<std::uint64_t>& cell = counters_[c.index_]->slots[worker].v;
    cell.store(cell.load(std::memory_order_relaxed) + n,
               std::memory_order_release);
  }

  /// Hot path: record `value` into `worker`'s row of histogram `h`.
  void observe(HistogramId h, unsigned worker, std::uint64_t value);

  /// Aggregate every worker's slots (acquire loads; callable from any
  /// thread, exact once the workers have joined).
  [[nodiscard]] MetricsSnapshot snapshot() const;

  /// Aggregate a single counter (acquire loads).
  [[nodiscard]] std::uint64_t total(Counter c) const;

  /// Zero every slot. Single-threaded, between runs; keeps the
  /// registered names and handles (warm runs allocate nothing).
  void reset();

 private:
  // One atomic per worker, each on its own cache line: false sharing
  // between workers would put the "disabled-cost" story on the floor.
  struct alignas(64) PaddedCell {
    std::atomic<std::uint64_t> v{0};
  };
  struct CounterState {
    std::string name;
    std::unique_ptr<PaddedCell[]> slots;  // [workers_]
  };
  // A histogram row is one worker's buckets + count/sum/max, aligned so
  // rows of different workers never share a line (buckets within a row
  // are written only by the owner — intra-row sharing is free).
  struct alignas(64) HistRow {
    std::atomic<std::uint64_t> buckets[HistogramSnapshot::kBuckets] = {};
    std::atomic<std::uint64_t> count{0};
    std::atomic<std::uint64_t> sum{0};
    std::atomic<std::uint64_t> max{0};
  };
  struct HistogramState {
    std::string name;
    std::unique_ptr<HistRow[]> rows;  // [workers_]
  };

  unsigned workers_;
  std::vector<std::unique_ptr<CounterState>> counters_;
  std::vector<std::unique_ptr<HistogramState>> histograms_;
};

}  // namespace kcore::obs
