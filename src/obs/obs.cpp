#include "obs/obs.h"

#include <ostream>
#include <utility>

#include "util/check.h"
#include "util/json.h"

namespace kcore::obs {

Recorder::Recorder(unsigned workers, const ObsOptions& options)
    : options_(options),
      workers_(workers),
      registry_(workers),
      epoch_(util::SteadyClock::now()) {
  KCORE_CHECK_MSG(workers >= 1, "recorder needs at least one worker");
  if (options_.trace) {
    KCORE_CHECK_MSG(options_.trace_capacity >= 1,
                    "trace ring capacity must be at least 1");
    rings_.reserve(workers);
    for (unsigned w = 0; w < workers; ++w) {
      rings_.emplace_back(options_.trace_capacity);
    }
  }
  contexts_.resize(workers);
  for (unsigned w = 0; w < workers; ++w) {
    WorkerContext& ctx = contexts_[w];
    ctx.ring_ = options_.trace ? &rings_[w] : nullptr;
    ctx.registry_ = &registry_;
    ctx.metrics_ = options_.metrics;
    ctx.worker_ = w;
    ctx.epoch_ = epoch_;
  }
}

void Recorder::start_sampler(Sampler::Probe probe) {
  if (options_.sample_period_ms <= 0.0) return;
  KCORE_CHECK_MSG(sampler_ == nullptr, "sampler already started");
  sampler_ =
      std::make_unique<Sampler>(options_.sample_period_ms, std::move(probe));
  sampler_->start();
}

void Recorder::stop_sampler() {
  if (sampler_) sampler_->stop();
}

RunTelemetry Recorder::harvest() {
  RunTelemetry t;
  if (sampler_) {
    sampler_->stop();
    t.samples = sampler_->take();
  }
  t.sample_period_ms = options_.sample_period_ms;
  if (options_.metrics) {
    t.has_metrics = true;
    t.metrics = registry_.snapshot();
  }
  if (options_.trace) {
    t.has_trace = true;
    t.trace.reserve(workers_);
    for (unsigned w = 0; w < workers_; ++w) {
      WorkerTraceDump dump;
      dump.tid = w;
      const auto events = rings_[w].events();
      dump.events.assign(events.begin(), events.end());
      dump.dropped = rings_[w].dropped();
      t.trace_dropped += dump.dropped;
      t.trace.push_back(std::move(dump));
    }
  }
  return t;
}

void write_chrome_trace(std::ostream& os, const RunTelemetry& telemetry) {
  util::JsonWriter w(os);
  w.begin_object();
  w.key("traceEvents").begin_array();
  // One thread_name metadata record per worker so Perfetto labels the
  // tracks; then the recorded events, one object each.
  for (const auto& dump : telemetry.trace) {
    w.begin_object();
    w.member("ph", "M");
    w.member("pid", std::uint64_t{0});
    w.member("tid", std::uint64_t{dump.tid});
    w.member("name", "thread_name");
    w.key("args").begin_object();
    w.member("name", "worker " + std::to_string(dump.tid));
    w.end_object();
    w.end_object();
  }
  for (const auto& dump : telemetry.trace) {
    for (const TraceEvent& e : dump.events) {
      w.begin_object();
      w.member("pid", std::uint64_t{0});
      w.member("tid", std::uint64_t{dump.tid});
      w.key("ph");
      const char ph[2] = {e.ph, '\0'};
      w.value(ph);
      w.member("name", e.name);
      w.member("ts", e.ts_us);
      if (e.ph == 'X') {
        w.member("dur", e.dur_us);
      } else if (e.ph == 'i') {
        w.member("s", "t");  // instant scope: thread
      }
      w.end_object();
    }
  }
  // The sampler series as counter tracks ('C' events, one per field) so
  // convergence is visible on the same timeline as the spans.
  for (const Sample& s : telemetry.samples) {
    const auto ts = static_cast<std::uint64_t>(s.t_ms * 1000.0);
    const auto counter = [&](const char* name, double value) {
      w.begin_object();
      w.member("pid", std::uint64_t{0});
      w.member("tid", std::uint64_t{0});
      w.member("ph", "C");
      w.member("name", name);
      w.member("ts", ts);
      w.key("args").begin_object();
      w.member("value", value, 3);
      w.end_object();
      w.end_object();
    };
    counter("outstanding", static_cast<double>(s.outstanding));
    counter("worklist_depth", static_cast<double>(s.worklist_depth));
    counter("sum_estimates", s.sum_estimates);
  }
  w.end_array();
  w.member("displayTimeUnit", "ms");
  w.key("otherData").begin_object();
  w.member("dropped_events", telemetry.trace_dropped);
  w.member("sample_period_ms", telemetry.sample_period_ms, 3);
  w.end_object();
  w.end_object();
}

}  // namespace kcore::obs
