// Runtime telemetry knobs (kcore::obs).
//
// This header is deliberately tiny and dependency-free: it is included
// by core/run_options.h, so every layer sees the SAME ObsOptions struct
// whether the telemetry implementation is compiled in or not. The
// compile-time gate is the KCORE_OBS_ENABLED macro (set by the
// KCORE_OBS CMake option, default ON); when it is 0 the OBS_* macros in
// obs/obs.h expand to nothing, the engines never construct a Recorder,
// and api::validate() rejects any options that ask for telemetry — the
// knobs still parse, they just can't be turned on.
#pragma once

#include <cstdint>

#ifndef KCORE_OBS_ENABLED
#define KCORE_OBS_ENABLED 1
#endif

namespace kcore::obs {

/// True when the telemetry layer is compiled in (KCORE_OBS=ON).
inline constexpr bool kEnabled = KCORE_OBS_ENABLED != 0;

/// Per-run telemetry selection, carried inside core::RunOptions. The
/// default-constructed value means "record nothing" and is free: engines
/// only build telemetry state when any() is true.
struct ObsOptions {
  /// Record per-worker counters/histograms and return a MetricsSnapshot
  /// in DecomposeReport::telemetry.
  bool metrics = false;

  /// Record per-worker span/instant events into fixed-capacity rings
  /// (drop-and-count once full) for Chrome-trace export.
  bool trace = false;

  /// Ring capacity per worker, in events. ~48 bytes/event; the default
  /// (16384) bounds a trace at < 1 MiB per worker.
  std::uint32_t trace_capacity = 16384;

  /// Period of the background convergence sampler in milliseconds;
  /// 0 disables it. Each tick snapshots outstanding work, worklist
  /// depth and the sum of estimates (the Fig. 4 error-proxy numerator).
  /// A run that finishes before the first period elapses records zero
  /// samples.
  double sample_period_ms = 0.0;

  /// True when this run asked for any telemetry at all.
  [[nodiscard]] bool any() const {
    return metrics || trace || sample_period_ms > 0.0;
  }
};

}  // namespace kcore::obs
