// Layer 3 of kcore::obs — the background convergence sampler.
//
// A single thread that wakes every `period_ms` and invokes a probe
// closure supplied by the engine. The probe reads whatever shared state
// the engine exposes for free — the quiescence detector's outstanding
// count, the worklist's in-queue flags, the shared estimate table — and
// fills a Sample. Because the async runtime's estimate table only ever
// decreases (Theorem 2: estimates are upper bounds throughout), the
// sampled sum-of-estimates is a monotone error proxy: plotting
// (sum_estimates - sum_truth) / n against t_ms reproduces the paper's
// Fig. 4 error-evolution curves WITHOUT the per-round observer that the
// barrier-free engine cannot drive.
//
// Timing contract: the first sample is taken one full period after
// start() — a run that finishes first records zero samples (pinned by
// tests). stop() never takes a farewell sample; sample times are
// measured from start().
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace kcore::obs {

/// One sampler tick. Engines fill what they can; unset fields stay 0.
struct Sample {
  double t_ms = 0.0;               // since Sampler::start()
  std::int64_t outstanding = 0;    // quiescence detector's in-flight count
  std::uint64_t worklist_depth = 0;  // items currently flagged in-queue
  double sum_estimates = 0.0;      // Fig. 4 error-proxy numerator
  std::uint64_t round = 0;         // last completed round (0 if roundless)
};

/// Background sampling thread. start()/stop() are called by the engine
/// around its worker pool; the probe runs on the sampler thread and must
/// only touch state that is safe to read concurrently with the workers.
class Sampler {
 public:
  using Probe = std::function<void(Sample&)>;

  Sampler(double period_ms, Probe probe)
      : period_ms_(period_ms), probe_(std::move(probe)) {}
  ~Sampler() { stop(); }

  Sampler(const Sampler&) = delete;
  Sampler& operator=(const Sampler&) = delete;

  /// Launch the sampler thread. No-op when period_ms <= 0.
  void start();

  /// Signal, join, and retire the thread. Idempotent.
  void stop();

  /// The collected series; call after stop().
  [[nodiscard]] const std::vector<Sample>& samples() const { return samples_; }
  [[nodiscard]] std::vector<Sample> take() { return std::move(samples_); }

 private:
  void loop();

  double period_ms_;
  Probe probe_;
  std::vector<Sample> samples_;
  std::thread thread_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_requested_ = false;
};

}  // namespace kcore::obs
