#include "obs/sampler.h"

#include <chrono>

#include "util/clock.h"

namespace kcore::obs {

void Sampler::start() {
  if (period_ms_ <= 0.0 || thread_.joinable()) return;
  stop_requested_ = false;
  thread_ = std::thread([this] { loop(); });
}

void Sampler::stop() {
  if (!thread_.joinable()) return;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stop_requested_ = true;
  }
  cv_.notify_one();
  thread_.join();
}

void Sampler::loop() {
  const auto start = util::SteadyClock::now();
  const auto period = std::chrono::duration<double, std::milli>(period_ms_);
  auto next = start + std::chrono::duration_cast<
                          util::SteadyClock::duration>(period);
  std::unique_lock<std::mutex> lock(mutex_);
  for (std::uint64_t tick = 1;; ++tick) {
    // Absolute deadlines: a slow probe delays but never compounds drift.
    if (cv_.wait_until(lock, next, [this] { return stop_requested_; })) {
      return;  // stop() wins over a pending tick — no farewell sample
    }
    Sample s;
    s.t_ms = util::ms_between(start, util::SteadyClock::now());
    probe_(s);
    samples_.push_back(s);
    next = start + std::chrono::duration_cast<util::SteadyClock::duration>(
                       period * static_cast<double>(tick + 1));
  }
}

}  // namespace kcore::obs
