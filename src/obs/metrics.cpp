#include "obs/metrics.h"

#include <algorithm>
#include <bit>

#include "util/check.h"

namespace kcore::obs {

std::uint64_t MetricsSnapshot::value(std::string_view name) const {
  for (const auto& [n, v] : counters) {
    if (n == name) return v;
  }
  return 0;
}

const HistogramSnapshot* MetricsSnapshot::histogram(
    std::string_view name) const& {
  for (const auto& h : histograms) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

Registry::Registry(unsigned workers) : workers_(workers) {
  KCORE_CHECK_MSG(workers >= 1, "registry needs at least one worker");
}

Counter Registry::counter(std::string_view name) {
  for (std::uint32_t i = 0; i < counters_.size(); ++i) {
    if (counters_[i]->name == name) return Counter(i);
  }
  auto state = std::make_unique<CounterState>();
  state->name = std::string(name);
  state->slots = std::make_unique<PaddedCell[]>(workers_);
  counters_.push_back(std::move(state));
  return Counter(static_cast<std::uint32_t>(counters_.size() - 1));
}

HistogramId Registry::histogram(std::string_view name) {
  for (std::uint32_t i = 0; i < histograms_.size(); ++i) {
    if (histograms_[i]->name == name) return HistogramId(i);
  }
  auto state = std::make_unique<HistogramState>();
  state->name = std::string(name);
  state->rows = std::make_unique<HistRow[]>(workers_);
  histograms_.push_back(std::move(state));
  return HistogramId(static_cast<std::uint32_t>(histograms_.size() - 1));
}

void Registry::observe(HistogramId h, unsigned worker, std::uint64_t value) {
  HistRow& row = histograms_[h.index_]->rows[worker];
  // Bucket by bit width: 0 -> bucket 0, [2^(i-1), 2^i) -> bucket i,
  // everything at or above 2^(kBuckets-2) shares the last bucket.
  const auto bucket = std::min<std::uint32_t>(
      static_cast<std::uint32_t>(std::bit_width(value)),
      HistogramSnapshot::kBuckets - 1);
  // Single-writer relaxed-read + release-store, same as Counter::add.
  const auto bump = [](std::atomic<std::uint64_t>& cell, std::uint64_t delta) {
    cell.store(cell.load(std::memory_order_relaxed) + delta,
               std::memory_order_release);
  };
  bump(row.buckets[bucket], 1);
  bump(row.count, 1);
  bump(row.sum, value);
  if (value > row.max.load(std::memory_order_relaxed)) {
    row.max.store(value, std::memory_order_release);
  }
}

MetricsSnapshot Registry::snapshot() const {
  MetricsSnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& c : counters_) {
    std::uint64_t total = 0;
    for (unsigned w = 0; w < workers_; ++w) {
      total += c->slots[w].v.load(std::memory_order_acquire);
    }
    snap.counters.emplace_back(c->name, total);
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& h : histograms_) {
    HistogramSnapshot hs;
    hs.name = h->name;
    hs.buckets.assign(HistogramSnapshot::kBuckets, 0);
    for (unsigned w = 0; w < workers_; ++w) {
      const HistRow& row = h->rows[w];
      for (std::uint32_t b = 0; b < HistogramSnapshot::kBuckets; ++b) {
        hs.buckets[b] += row.buckets[b].load(std::memory_order_acquire);
      }
      hs.count += row.count.load(std::memory_order_acquire);
      hs.sum += row.sum.load(std::memory_order_acquire);
      hs.max = std::max(hs.max, row.max.load(std::memory_order_acquire));
    }
    snap.histograms.push_back(std::move(hs));
  }
  return snap;
}

std::uint64_t Registry::total(Counter c) const {
  std::uint64_t total = 0;
  for (unsigned w = 0; w < workers_; ++w) {
    total += counters_[c.index_]->slots[w].v.load(std::memory_order_acquire);
  }
  return total;
}

void Registry::reset() {
  for (const auto& c : counters_) {
    for (unsigned w = 0; w < workers_; ++w) {
      c->slots[w].v.store(0, std::memory_order_relaxed);
    }
  }
  for (const auto& h : histograms_) {
    for (unsigned w = 0; w < workers_; ++w) {
      HistRow& row = h->rows[w];
      for (auto& b : row.buckets) b.store(0, std::memory_order_relaxed);
      row.count.store(0, std::memory_order_relaxed);
      row.sum.store(0, std::memory_order_relaxed);
      row.max.store(0, std::memory_order_relaxed);
    }
  }
}

}  // namespace kcore::obs
