// ASCII table and CSV rendering for the experiment harness.
//
// Every bench binary prints its paper table through TableWriter so that the
// output format is consistent and directly comparable with the paper's
// layout. CSV export feeds external plotting.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace kcore::util {

/// Column-aligned ASCII table with a header row.
///
/// Usage:
///   TableWriter t({"name", "|V|", "t_avg"});
///   t.add_row({"CA-AstroPh", "18772", "19.55"});
///   t.print(std::cout);
class TableWriter {
 public:
  explicit TableWriter(std::vector<std::string> header);

  /// Append one row; must have exactly as many cells as the header.
  void add_row(std::vector<std::string> cells);

  /// Render with padded columns, a rule under the header, and `indent`
  /// leading spaces on every line.
  void print(std::ostream& os, int indent = 2) const;

  /// Render as RFC-4180-ish CSV (fields containing comma/quote/newline are
  /// quoted, embedded quotes doubled).
  void print_csv(std::ostream& os) const;

  [[nodiscard]] std::size_t num_rows() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format a double with `digits` digits after the decimal point.
[[nodiscard]] std::string fmt_double(double v, int digits = 2);

/// Format an integer with thousands separators: 1234567 -> "1 234 567"
/// (the paper uses thin spaces in Table 1; we use plain spaces).
[[nodiscard]] std::string fmt_grouped(std::uint64_t v);

/// Format a ratio in [0,1] as a percentage with two decimals: "14.12%".
/// Values that round to 0 render as "" (the paper leaves such cells empty).
[[nodiscard]] std::string fmt_percent_or_blank(double ratio);

}  // namespace kcore::util
