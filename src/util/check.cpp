#include "util/check.h"

namespace kcore::util::detail {

void throw_check_error(const char* expr, const char* file, int line,
                       const std::string& extra) {
  std::ostringstream oss;
  oss << "KCORE_CHECK failed: (" << expr << ") at " << file << ':' << line;
  if (!extra.empty()) {
    oss << " — " << extra;
  }
  throw CheckError(oss.str());
}

}  // namespace kcore::util::detail
