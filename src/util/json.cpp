#include "util/json.h"

#include <cmath>
#include <cstdio>
#include <limits>
#include <sstream>

#include "util/check.h"

namespace kcore::util {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

JsonWriter::JsonWriter(std::ostream& os, int indent)
    : os_(os), indent_(indent) {}

void JsonWriter::newline_indent() {
  if (indent_ <= 0) return;
  os_ << '\n';
  for (int i = 0; i < depth_ * indent_; ++i) os_ << ' ';
}

void JsonWriter::before_value() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  KCORE_CHECK_MSG(depth_ == 0 || scopes_[depth_ - 1] == Scope::kArray,
                  "JSON object members need a key() first");
  KCORE_CHECK_MSG(depth_ > 0 || !wrote_any_,
                  "only one top-level JSON value per writer");
  if (depth_ > 0) {
    if (!first_in_scope_[depth_ - 1]) os_ << ',';
    first_in_scope_[depth_ - 1] = false;
    newline_indent();
  }
  wrote_any_ = true;
}

void JsonWriter::open(Scope s, char brace) {
  before_value();
  KCORE_CHECK_MSG(depth_ < kMaxDepth, "JSON nesting too deep");
  os_ << brace;
  scopes_[depth_] = s;
  first_in_scope_[depth_] = true;
  ++depth_;
}

void JsonWriter::close(Scope s, char brace) {
  KCORE_CHECK_MSG(depth_ > 0 && scopes_[depth_ - 1] == s && !after_key_,
                  "unbalanced JSON begin/end");
  const bool empty = first_in_scope_[depth_ - 1];
  --depth_;
  if (!empty) newline_indent();
  os_ << brace;
  if (depth_ == 0) os_ << '\n';
}

JsonWriter& JsonWriter::begin_object() {
  open(Scope::kObject, '{');
  return *this;
}
JsonWriter& JsonWriter::end_object() {
  close(Scope::kObject, '}');
  return *this;
}
JsonWriter& JsonWriter::begin_array() {
  open(Scope::kArray, '[');
  return *this;
}
JsonWriter& JsonWriter::end_array() {
  close(Scope::kArray, ']');
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view k) {
  KCORE_CHECK_MSG(depth_ > 0 && scopes_[depth_ - 1] == Scope::kObject &&
                      !after_key_,
                  "key() only valid inside an object");
  if (!first_in_scope_[depth_ - 1]) os_ << ',';
  first_in_scope_[depth_ - 1] = false;
  newline_indent();
  os_ << '"' << json_escape(k) << "\":";
  if (indent_ > 0) os_ << ' ';
  after_key_ = true;
  wrote_any_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view v) {
  before_value();
  os_ << '"' << json_escape(v) << '"';
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  before_value();
  os_ << (v ? "true" : "false");
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  before_value();
  os_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  before_value();
  os_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(double v, int digits) {
  before_value();
  if (!std::isfinite(v)) {
    os_ << "null";  // JSON has no NaN/Infinity
    return *this;
  }
  std::ostringstream tmp;  // isolate formatting state from os_
  if (digits < 0) {
    tmp.precision(std::numeric_limits<double>::max_digits10);
    tmp << v;
  } else {
    tmp.setf(std::ios::fixed);
    tmp.precision(digits);
    tmp << v;
  }
  os_ << tmp.str();
  return *this;
}

JsonWriter& JsonWriter::null() {
  before_value();
  os_ << "null";
  return *this;
}

}  // namespace kcore::util
