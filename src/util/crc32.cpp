#include "util/crc32.h"

#include <array>

namespace kcore::util {
namespace {

constexpr std::uint32_t kPoly = 0xEDB88320u;

constexpr std::array<std::uint32_t, 256> make_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? (kPoly ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

constexpr std::array<std::uint32_t, 256> kTable = make_table();

}  // namespace

std::uint32_t crc32_update(std::uint32_t crc, std::string_view bytes) {
  std::uint32_t c = crc ^ 0xFFFFFFFFu;
  for (unsigned char byte : bytes) {
    c = kTable[(c ^ byte) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

std::uint32_t crc32(std::string_view bytes) { return crc32_update(0, bytes); }

}  // namespace kcore::util
