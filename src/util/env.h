// Environment-variable configuration helpers.
//
// The benchmark harness is tuned through KCORE_* environment variables
// (KCORE_RUNS, KCORE_SCALE, ...) so that the same binaries can run a quick
// smoke pass or the full paper-scale sweep without recompilation.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

namespace kcore::util {

/// Raw lookup; nullopt when the variable is unset or empty.
[[nodiscard]] std::optional<std::string> env_string(const std::string& name);

/// Parse as signed 64-bit integer; returns fallback when unset; throws
/// CheckError when set but unparsable (silently ignoring a typo'd override
/// would invalidate an experiment).
[[nodiscard]] std::int64_t env_int(const std::string& name,
                                   std::int64_t fallback);

/// Parse as double; same contract as env_int.
[[nodiscard]] double env_double(const std::string& name, double fallback);

/// Parse as bool: accepts 0/1/true/false/yes/no/on/off (case-insensitive).
[[nodiscard]] bool env_bool(const std::string& name, bool fallback);

}  // namespace kcore::util
