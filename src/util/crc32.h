// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) — the integrity
// check framing every durable artifact in this repo (WAL records,
// checkpoint files). Table-driven, incremental: feed chunks through the
// running value, compare the final against the stored footer.
#pragma once

#include <cstdint>
#include <string_view>

namespace kcore::util {

/// One-shot CRC-32 of `bytes`.
[[nodiscard]] std::uint32_t crc32(std::string_view bytes);

/// Incremental form: fold `bytes` into a running CRC (start from 0).
/// crc32(a + b) == crc32_update(crc32_update(0, a), b).
[[nodiscard]] std::uint32_t crc32_update(std::uint32_t crc,
                                         std::string_view bytes);

}  // namespace kcore::util
