// Minimal command-line argument parser for the tools/ binaries.
//
// Supports subcommand-style CLIs: positional arguments plus --key=value /
// --key value options and --flag switches. No external dependencies; the
// grammar is intentionally tiny but the error messages are real.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace kcore::util {

class Args {
 public:
  /// Parse argv[1..); throws CheckError on malformed input ("--=x").
  Args(int argc, const char* const* argv);

  /// Construct from a plain vector (tests).
  explicit Args(std::vector<std::string> tokens);

  /// Positional arguments in order (everything not starting with "--").
  [[nodiscard]] const std::vector<std::string>& positional() const noexcept {
    return positional_;
  }

  /// True if --name was given (with or without a value).
  [[nodiscard]] bool has(const std::string& name) const;

  /// Value of --name; nullopt if absent or valueless.
  [[nodiscard]] std::optional<std::string> get(const std::string& name) const;

  /// Typed getters with defaults; throw CheckError when present but
  /// unparsable (silently ignoring a typo would corrupt an experiment).
  [[nodiscard]] std::string get_string(const std::string& name,
                                       const std::string& fallback) const;
  [[nodiscard]] std::int64_t get_int(const std::string& name,
                                     std::int64_t fallback) const;
  [[nodiscard]] double get_double(const std::string& name,
                                  double fallback) const;

  /// Option names that were provided but never queried — surfacing typos.
  /// Call after all get()/has() uses.
  [[nodiscard]] std::vector<std::string> unused() const;

 private:
  void parse(const std::vector<std::string>& tokens);

  std::vector<std::string> positional_;
  std::map<std::string, std::optional<std::string>> options_;
  mutable std::map<std::string, bool> queried_;
};

}  // namespace kcore::util
