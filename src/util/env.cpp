#include "util/env.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>

#include "util/check.h"

namespace kcore::util {

std::optional<std::string> env_string(const std::string& name) {
  const char* raw = std::getenv(name.c_str());
  if (raw == nullptr || raw[0] == '\0') return std::nullopt;
  return std::string(raw);
}

std::int64_t env_int(const std::string& name, std::int64_t fallback) {
  const auto raw = env_string(name);
  if (!raw) return fallback;
  std::size_t pos = 0;
  std::int64_t value = 0;
  try {
    value = std::stoll(*raw, &pos);
  } catch (const std::exception&) {
    pos = 0;
  }
  KCORE_CHECK_MSG(pos == raw->size() && pos > 0,
                  "env var " << name << "='" << *raw << "' is not an integer");
  return value;
}

double env_double(const std::string& name, double fallback) {
  const auto raw = env_string(name);
  if (!raw) return fallback;
  std::size_t pos = 0;
  double value = 0.0;
  try {
    value = std::stod(*raw, &pos);
  } catch (const std::exception&) {
    pos = 0;
  }
  KCORE_CHECK_MSG(pos == raw->size() && pos > 0,
                  "env var " << name << "='" << *raw << "' is not a number");
  return value;
}

bool env_bool(const std::string& name, bool fallback) {
  const auto raw = env_string(name);
  if (!raw) return fallback;
  std::string s = *raw;
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char ch) { return std::tolower(ch); });
  if (s == "1" || s == "true" || s == "yes" || s == "on") return true;
  if (s == "0" || s == "false" || s == "no" || s == "off") return false;
  KCORE_CHECK_MSG(false, "env var " << name << "='" << *raw
                                    << "' is not a boolean");
  return fallback;  // unreachable
}

}  // namespace kcore::util
