#include "util/storage.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace kcore::util {
namespace {

[[noreturn]] void throw_errno(const std::string& path, const char* verb) {
  throw IoError(path + ": cannot " + verb + " (" + std::strerror(errno) + ")");
}

class FdGuard {
 public:
  explicit FdGuard(int fd) : fd_(fd) {}
  ~FdGuard() {
    if (fd_ >= 0) ::close(fd_);
  }
  FdGuard(const FdGuard&) = delete;
  FdGuard& operator=(const FdGuard&) = delete;
  int get() const { return fd_; }

 private:
  int fd_;
};

void write_all(int fd, const std::string& path, std::string_view bytes) {
  const char* p = bytes.data();
  std::size_t left = bytes.size();
  while (left > 0) {
    ssize_t n = ::write(fd, p, left);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno(path, "write");
    }
    p += n;
    left -= static_cast<std::size_t>(n);
  }
}

class RealStorage final : public Storage {
 public:
  bool exists(const std::string& path) override {
    struct stat st{};
    return ::stat(path.c_str(), &st) == 0;
  }

  std::vector<std::string> list_dir(const std::string& dir) override {
    std::vector<std::string> names;
    DIR* d = ::opendir(dir.c_str());
    if (d == nullptr) {
      if (errno == ENOENT) return names;
      throw_errno(dir, "open directory");
    }
    while (const dirent* e = ::readdir(d)) {
      std::string name = e->d_name;
      if (name != "." && name != "..") names.push_back(std::move(name));
    }
    ::closedir(d);
    return names;
  }

  std::string read_file(const std::string& path) override {
    FdGuard fd(::open(path.c_str(), O_RDONLY | O_CLOEXEC));
    if (fd.get() < 0) throw_errno(path, "open");
    std::string out;
    char buf[1 << 16];
    while (true) {
      ssize_t n = ::read(fd.get(), buf, sizeof(buf));
      if (n < 0) {
        if (errno == EINTR) continue;
        throw_errno(path, "read");
      }
      if (n == 0) break;
      out.append(buf, static_cast<std::size_t>(n));
    }
    return out;
  }

  std::uint64_t file_size(const std::string& path) override {
    struct stat st{};
    if (::stat(path.c_str(), &st) != 0) throw_errno(path, "stat");
    return static_cast<std::uint64_t>(st.st_size);
  }

  void write_file(const std::string& path, std::string_view bytes) override {
    FdGuard fd(
        ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644));
    if (fd.get() < 0) throw_errno(path, "create");
    write_all(fd.get(), path, bytes);
  }

  void append_file(const std::string& path, std::string_view bytes) override {
    FdGuard fd(
        ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC, 0644));
    if (fd.get() < 0) throw_errno(path, "open for append");
    write_all(fd.get(), path, bytes);
  }

  void sync_file(const std::string& path) override {
    FdGuard fd(::open(path.c_str(), O_RDONLY | O_CLOEXEC));
    if (fd.get() < 0) throw_errno(path, "open for sync");
    if (::fsync(fd.get()) != 0) throw_errno(path, "fsync");
  }

  void rename_file(const std::string& from, const std::string& to) override {
    if (::rename(from.c_str(), to.c_str()) != 0) throw_errno(from, "rename");
  }

  void truncate_file(const std::string& path, std::uint64_t size) override {
    if (::truncate(path.c_str(), static_cast<off_t>(size)) != 0) {
      throw_errno(path, "truncate");
    }
  }

  void remove_file(const std::string& path) override {
    if (::unlink(path.c_str()) != 0) throw_errno(path, "remove");
  }

  void make_dir(const std::string& path) override {
    // mkdir -p: create each prefix, tolerating ones that already exist.
    for (std::size_t pos = 0; pos != std::string::npos;) {
      pos = path.find('/', pos + 1);
      std::string prefix = path.substr(0, pos);
      if (prefix.empty()) continue;
      if (::mkdir(prefix.c_str(), 0755) != 0 && errno != EEXIST) {
        throw_errno(prefix, "mkdir");
      }
    }
  }
};

}  // namespace

Storage& real_storage() {
  static RealStorage storage;
  return storage;
}

// ---------------------------------------------------------------------------
// MemStorage

void MemStorage::check_fault(const std::string& path, std::string_view bytes,
                             bool is_write) {
  const std::uint64_t op = ops_++;
  if (plan_.kind == FaultPlan::Kind::kNone || op != plan_.at_op) return;
  const FaultPlan plan = plan_;
  plan_ = FaultPlan{};  // fire once, then disarm for recovery
  switch (plan.kind) {
    case FaultPlan::Kind::kNone:
      return;
    case FaultPlan::Kind::kFail:
      throw IoError(path + ": injected I/O failure (EIO)");
    case FaultPlan::Kind::kTorn:
      // A short write: the front half of the payload reached the platter
      // before the power cut, the rest never existed.
      if (is_write && !bytes.empty()) {
        FileState& f = files_[path];
        f.content.append(bytes.substr(0, bytes.size() / 2));
        f.durable_size = f.content.size();
        f.durable_entry = true;
      }
      [[fallthrough]];
    case FaultPlan::Kind::kCrashBefore:
      crashed_ = true;
      crash_locked();
      throw CrashPoint(op);
  }
}

void MemStorage::crash_locked() {
  for (auto it = files_.begin(); it != files_.end();) {
    if (!it->second.durable_entry) {
      it = files_.erase(it);
      continue;
    }
    it->second.content.resize(it->second.durable_size);
    ++it;
  }
}

void MemStorage::crash() {
  std::lock_guard<std::mutex> lock(mutex_);
  crashed_ = true;
  crash_locked();
}

bool MemStorage::exists(const std::string& path) {
  std::lock_guard<std::mutex> lock(mutex_);
  check_fault(path, {}, false);
  return files_.count(path) > 0 || dirs_.count(path) > 0;
}

std::vector<std::string> MemStorage::list_dir(const std::string& dir) {
  std::lock_guard<std::mutex> lock(mutex_);
  check_fault(dir, {}, false);
  std::vector<std::string> names;
  const std::string prefix = dir + "/";
  auto collect = [&](const std::string& path) {
    if (path.size() <= prefix.size() || path.compare(0, prefix.size(), prefix))
      return;
    std::string rest = path.substr(prefix.size());
    if (rest.find('/') == std::string::npos) names.push_back(std::move(rest));
  };
  for (const auto& [path, f] : files_) collect(path);
  for (const auto& [path, d] : dirs_) collect(path);
  return names;
}

std::string MemStorage::read_file(const std::string& path) {
  std::lock_guard<std::mutex> lock(mutex_);
  check_fault(path, {}, false);
  auto it = files_.find(path);
  if (it == files_.end()) {
    throw IoError(path + ": cannot open (No such file or directory)");
  }
  return it->second.content;
}

std::uint64_t MemStorage::file_size(const std::string& path) {
  std::lock_guard<std::mutex> lock(mutex_);
  check_fault(path, {}, false);
  auto it = files_.find(path);
  if (it == files_.end()) {
    throw IoError(path + ": cannot stat (No such file or directory)");
  }
  return it->second.content.size();
}

void MemStorage::write_file(const std::string& path, std::string_view bytes) {
  std::lock_guard<std::mutex> lock(mutex_);
  check_fault(path, bytes, true);
  FileState& f = files_[path];
  f.content.assign(bytes);
  f.durable_size = 0;  // rewritten contents are volatile until sync
}

void MemStorage::append_file(const std::string& path, std::string_view bytes) {
  std::lock_guard<std::mutex> lock(mutex_);
  check_fault(path, bytes, true);
  files_[path].content.append(bytes);
}

void MemStorage::sync_file(const std::string& path) {
  std::lock_guard<std::mutex> lock(mutex_);
  check_fault(path, {}, false);
  auto it = files_.find(path);
  if (it == files_.end()) {
    throw IoError(path + ": cannot open for sync (No such file or directory)");
  }
  it->second.durable_size = it->second.content.size();
  it->second.durable_entry = true;
}

void MemStorage::rename_file(const std::string& from, const std::string& to) {
  std::lock_guard<std::mutex> lock(mutex_);
  check_fault(from, {}, false);
  auto it = files_.find(from);
  if (it == files_.end()) {
    throw IoError(from + ": cannot rename (No such file or directory)");
  }
  FileState f = std::move(it->second);
  files_.erase(it);
  // Journalled-fs assumption: once rename returns, the new entry (with
  // the file's current contents) survives a crash.
  f.durable_size = f.content.size();
  f.durable_entry = true;
  files_[to] = std::move(f);
}

void MemStorage::truncate_file(const std::string& path, std::uint64_t size) {
  std::lock_guard<std::mutex> lock(mutex_);
  check_fault(path, {}, false);
  auto it = files_.find(path);
  if (it == files_.end()) {
    throw IoError(path + ": cannot truncate (No such file or directory)");
  }
  FileState& f = it->second;
  if (size < f.content.size()) f.content.resize(size);
  if (f.durable_size > size) f.durable_size = size;
}

void MemStorage::remove_file(const std::string& path) {
  std::lock_guard<std::mutex> lock(mutex_);
  check_fault(path, {}, false);
  if (files_.erase(path) == 0) {
    throw IoError(path + ": cannot remove (No such file or directory)");
  }
}

void MemStorage::make_dir(const std::string& path) {
  std::lock_guard<std::mutex> lock(mutex_);
  check_fault(path, {}, false);
  // Directories are durable immediately; the interesting faults are all
  // in the file data path.
  std::string prefix;
  for (std::size_t pos = 0; pos != std::string::npos;) {
    pos = path.find('/', pos + 1);
    prefix = path.substr(0, pos);
    if (!prefix.empty()) dirs_[prefix] = true;
  }
  dirs_[path] = true;
}

void MemStorage::set_fault(FaultPlan plan) {
  std::lock_guard<std::mutex> lock(mutex_);
  plan_ = plan;
}

std::uint64_t MemStorage::op_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return ops_;
}

bool MemStorage::crashed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return crashed_;
}

}  // namespace kcore::util
