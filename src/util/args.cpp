#include "util/args.h"

#include "util/check.h"

namespace kcore::util {

Args::Args(int argc, const char* const* argv) {
  std::vector<std::string> tokens;
  tokens.reserve(static_cast<std::size_t>(argc > 0 ? argc - 1 : 0));
  for (int i = 1; i < argc; ++i) tokens.emplace_back(argv[i]);
  parse(tokens);
}

Args::Args(std::vector<std::string> tokens) { parse(tokens); }

void Args::parse(const std::vector<std::string>& tokens) {
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    const std::string& tok = tokens[i];
    if (tok.rfind("--", 0) != 0) {
      positional_.push_back(tok);
      continue;
    }
    const std::string body = tok.substr(2);
    KCORE_CHECK_MSG(!body.empty() && body[0] != '=',
                    "malformed option '" << tok << "'");
    const auto eq = body.find('=');
    if (eq != std::string::npos) {
      options_[body.substr(0, eq)] = body.substr(eq + 1);
      continue;
    }
    // "--key value" when the next token is not itself an option;
    // otherwise a bare flag.
    if (i + 1 < tokens.size() && tokens[i + 1].rfind("--", 0) != 0) {
      options_[body] = tokens[i + 1];
      ++i;
    } else {
      options_[body] = std::nullopt;
    }
  }
}

bool Args::has(const std::string& name) const {
  queried_[name] = true;
  return options_.contains(name);
}

std::optional<std::string> Args::get(const std::string& name) const {
  queried_[name] = true;
  const auto it = options_.find(name);
  if (it == options_.end()) return std::nullopt;
  return it->second;
}

std::string Args::get_string(const std::string& name,
                             const std::string& fallback) const {
  const auto v = get(name);
  return v.value_or(fallback);
}

std::int64_t Args::get_int(const std::string& name,
                           std::int64_t fallback) const {
  const auto v = get(name);
  if (!v) return fallback;
  std::size_t pos = 0;
  std::int64_t value = 0;
  try {
    value = std::stoll(*v, &pos);
  } catch (const std::exception&) {
    pos = 0;
  }
  KCORE_CHECK_MSG(pos == v->size() && pos > 0,
                  "option --" << name << "='" << *v << "' is not an integer");
  return value;
}

double Args::get_double(const std::string& name, double fallback) const {
  const auto v = get(name);
  if (!v) return fallback;
  std::size_t pos = 0;
  double value = 0.0;
  try {
    value = std::stod(*v, &pos);
  } catch (const std::exception&) {
    pos = 0;
  }
  KCORE_CHECK_MSG(pos == v->size() && pos > 0,
                  "option --" << name << "='" << *v << "' is not a number");
  return value;
}

std::vector<std::string> Args::unused() const {
  std::vector<std::string> out;
  for (const auto& [name, value] : options_) {
    if (!queried_.contains(name)) out.push_back(name);
  }
  return out;
}

}  // namespace kcore::util
