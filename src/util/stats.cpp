#include "util/stats.h"

#include <algorithm>

namespace kcore::util {

SampleSummary SampleSummary::of(std::span<const double> values) {
  SampleSummary summary;
  summary.count = values.size();
  if (values.empty()) return summary;
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  summary.min = sorted.front();
  summary.max = sorted.back();
  // Nearest-rank median, matching Sample::percentile(50).
  summary.median = sorted[(sorted.size() + 1) / 2 - 1];
  double sum = 0.0;
  for (const double v : sorted) sum += v;
  summary.mean = sum / static_cast<double>(sorted.size());
  return summary;
}

std::size_t Histogram::quantile(double q) const {
  KCORE_CHECK_MSG(q > 0.0 && q <= 1.0, "q=" << q);
  KCORE_CHECK(total_ > 0);
  const auto target = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(total_)));
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    cum += buckets_[i];
    if (cum >= target) return i;
  }
  return buckets_.size() - 1;
}

void Sample::ensure_sorted() const {
  if (!sorted_) {
    std::sort(values_.begin(), values_.end());
    sorted_ = true;
  }
}

double Sample::percentile(double p) const {
  KCORE_CHECK_MSG(!values_.empty(), "percentile of empty sample");
  KCORE_CHECK_MSG(p >= 0.0 && p <= 100.0, "p=" << p);
  ensure_sorted();
  if (p == 0.0) return values_.front();
  const auto rank = static_cast<std::size_t>(
      std::ceil(p / 100.0 * static_cast<double>(values_.size())));
  return values_[std::min(rank, values_.size()) - 1];
}

double Sample::mean() const {
  KCORE_CHECK(!values_.empty());
  double sum = 0.0;
  for (double v : values_) sum += v;
  return sum / static_cast<double>(values_.size());
}

double Sample::max() const {
  KCORE_CHECK(!values_.empty());
  return *std::max_element(values_.begin(), values_.end());
}

double Sample::min() const {
  KCORE_CHECK(!values_.empty());
  return *std::min_element(values_.begin(), values_.end());
}

}  // namespace kcore::util
