#include "util/rng.h"

#include <numeric>
#include <unordered_set>

namespace kcore::util {

std::vector<std::uint32_t> random_permutation(std::size_t n, Xoshiro256& rng) {
  std::vector<std::uint32_t> perm(n);
  std::iota(perm.begin(), perm.end(), 0U);
  shuffle(perm, rng);
  return perm;
}

std::vector<std::uint32_t> sample_without_replacement(std::size_t n,
                                                      std::size_t k,
                                                      Xoshiro256& rng) {
  KCORE_CHECK_MSG(k <= n, "cannot sample " << k << " from " << n);
  if (k == 0) return {};
  // Two regimes: dense sampling shuffles a full permutation prefix; sparse
  // sampling uses rejection against a hash set.
  if (k * 3 >= n) {
    auto perm = random_permutation(n, rng);
    perm.resize(k);
    return perm;
  }
  std::unordered_set<std::uint32_t> chosen;
  chosen.reserve(k * 2);
  std::vector<std::uint32_t> out;
  out.reserve(k);
  while (out.size() < k) {
    const auto v = static_cast<std::uint32_t>(rng.next_below(n));
    if (chosen.insert(v).second) out.push_back(v);
  }
  return out;
}

}  // namespace kcore::util
