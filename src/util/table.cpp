#include "util/table.h"

#include <algorithm>
#include <cstdint>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/check.h"

namespace kcore::util {

TableWriter::TableWriter(std::vector<std::string> header)
    : header_(std::move(header)) {
  KCORE_CHECK(!header_.empty());
}

void TableWriter::add_row(std::vector<std::string> cells) {
  KCORE_CHECK_MSG(cells.size() == header_.size(),
                  "row has " << cells.size() << " cells, header has "
                             << header_.size());
  rows_.push_back(std::move(cells));
}

void TableWriter::print(std::ostream& os, int indent) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  const std::string pad(static_cast<std::size_t>(indent), ' ');
  auto print_row = [&](const std::vector<std::string>& row) {
    os << pad;
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(widths[c])) << row[c];
      if (c + 1 < row.size()) os << "  ";
    }
    os << '\n';
  };
  print_row(header_);
  std::size_t rule_len = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    rule_len += widths[c] + (c + 1 < widths.size() ? 2 : 0);
  }
  os << pad << std::string(rule_len, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

namespace {
std::string csv_escape(const std::string& field) {
  const bool needs_quotes =
      field.find_first_of(",\"\n") != std::string::npos;
  if (!needs_quotes) return field;
  std::string out = "\"";
  for (char ch : field) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}
}  // namespace

void TableWriter::print_csv(std::ostream& os) const {
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << csv_escape(row[c]);
      if (c + 1 < row.size()) os << ',';
    }
    os << '\n';
  };
  print_row(header_);
  for (const auto& row : rows_) print_row(row);
}

std::string fmt_double(double v, int digits) {
  std::ostringstream oss;
  oss << std::fixed << std::setprecision(digits) << v;
  return oss.str();
}

std::string fmt_grouped(std::uint64_t v) {
  std::string digits = std::to_string(v);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  const std::size_t first_group = digits.size() % 3 == 0 ? 3 : digits.size() % 3;
  for (std::size_t i = 0; i < digits.size(); ++i) {
    if (i != 0 && (i - first_group) % 3 == 0 && i >= first_group) out += ' ';
    out += digits[i];
  }
  return out;
}

std::string fmt_percent_or_blank(double ratio) {
  const double pct = ratio * 100.0;
  if (pct < 0.005) return "";
  return fmt_double(pct, 2) + "%";
}

}  // namespace kcore::util
