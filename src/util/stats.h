// Streaming statistics accumulators used by the experiment harness.
#pragma once

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "util/check.h"

namespace kcore::util {

/// min / median / max / mean over a small batch of observations — the
/// shared aggregation behind `kcore decompose --repeat`, `kcore sweep`
/// and api::Plan cells. Medians use nearest-rank on a sorted copy; an
/// empty batch yields count == 0 and NaN summaries.
struct SampleSummary {
  std::size_t count = 0;
  double min = std::numeric_limits<double>::quiet_NaN();
  double median = std::numeric_limits<double>::quiet_NaN();
  double max = std::numeric_limits<double>::quiet_NaN();
  double mean = std::numeric_limits<double>::quiet_NaN();

  [[nodiscard]] static SampleSummary of(std::span<const double> values);
};

/// Welford-style single-pass accumulator: count, mean, variance, min, max.
/// Numerically stable; O(1) per observation.
class RunningStats {
 public:
  void add(double x) noexcept {
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
  }

  /// Merge another accumulator (parallel Welford combination).
  void merge(const RunningStats& other) noexcept {
    if (other.count_ == 0) return;
    if (count_ == 0) {
      *this = other;
      return;
    }
    const auto na = static_cast<double>(count_);
    const auto nb = static_cast<double>(other.count_);
    const double delta = other.mean_ - mean_;
    const double total = na + nb;
    mean_ += delta * nb / total;
    m2_ += other.m2_ + delta * delta * na * nb / total;
    count_ += other.count_;
    if (other.min_ < min_) min_ = other.min_;
    if (other.max_ > max_) max_ = other.max_;
  }

  [[nodiscard]] std::size_t count() const noexcept { return count_; }
  [[nodiscard]] double mean() const noexcept { return count_ ? mean_ : 0.0; }
  [[nodiscard]] double min() const noexcept {
    return count_ ? min_ : std::numeric_limits<double>::quiet_NaN();
  }
  [[nodiscard]] double max() const noexcept {
    return count_ ? max_ : std::numeric_limits<double>::quiet_NaN();
  }
  /// Sample variance (n-1 denominator); 0 for fewer than two observations.
  [[nodiscard]] double variance() const noexcept {
    return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
  }
  [[nodiscard]] double stddev() const noexcept { return std::sqrt(variance()); }
  [[nodiscard]] double sum() const noexcept {
    return mean_ * static_cast<double>(count_);
  }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Fixed-bucket integer histogram for degree / coreness distributions.
/// Values above the configured cap are clamped into the final bucket.
class Histogram {
 public:
  explicit Histogram(std::size_t num_buckets) : buckets_(num_buckets, 0) {
    KCORE_CHECK(num_buckets > 0);
  }

  void add(std::size_t value) noexcept {
    const std::size_t idx =
        value < buckets_.size() ? value : buckets_.size() - 1;
    ++buckets_[idx];
    ++total_;
  }

  [[nodiscard]] std::uint64_t bucket(std::size_t i) const {
    KCORE_CHECK(i < buckets_.size());
    return buckets_[i];
  }
  [[nodiscard]] std::size_t num_buckets() const noexcept {
    return buckets_.size();
  }
  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }

  /// Smallest value v such that at least `q` (0..1] of the mass is <= v.
  [[nodiscard]] std::size_t quantile(double q) const;

 private:
  std::vector<std::uint64_t> buckets_;
  std::uint64_t total_ = 0;
};

/// Exact percentile over a stored sample (used for per-node message counts,
/// where the harness wants exact p50/p95/max over ~1e6 values).
class Sample {
 public:
  void add(double x) {
    values_.push_back(x);
    sorted_ = false;
  }
  void reserve(std::size_t n) { values_.reserve(n); }
  [[nodiscard]] std::size_t size() const noexcept { return values_.size(); }

  /// Percentile by nearest-rank (p in [0,100]); requires non-empty sample.
  [[nodiscard]] double percentile(double p) const;
  [[nodiscard]] double mean() const;
  [[nodiscard]] double max() const;
  [[nodiscard]] double min() const;

 private:
  mutable std::vector<double> values_;
  mutable bool sorted_ = false;
  void ensure_sorted() const;
};

}  // namespace kcore::util
