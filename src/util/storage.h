// Pluggable file backend for the durable live service.
//
// Same design as chk's sync shim: production code talks to the small
// `Storage` interface, the default `real_storage()` backend is a thin
// POSIX passthrough, and tests swap in `MemStorage` — an in-memory file
// system that models *durability* (bytes appended but not fsynced are
// lost on crash) and injects deterministic faults at any operation
// index (crash-before-op, torn write, EIO failure). That turns "does
// recovery work after a crash at every possible point?" into an
// exhaustive loop instead of a flaky kill -9 race.
//
// Durability model (MemStorage):
//   - append/write grow a file's VOLATILE bytes; sync_file promotes the
//     current contents (and the file's directory entry) to DURABLE.
//   - rename_file is atomic and durable once executed (journalled-fs
//     assumption); the crash-before-rename fault site covers the torn
//     case explicitly.
//   - crash() drops every volatile byte and every never-synced file —
//     exactly what a power cut leaves behind.
//
// Fault plans fire ONCE at a given operation index and then disarm, so
// recovery code running on the same storage afterwards sees a healthy
// (post-crash) file system.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "util/check.h"

namespace kcore::util {

/// Thrown by MemStorage when a fault plan's crash site fires. Models
/// the process dying mid-operation: the service's writer thread unwinds,
/// and the test re-opens the service on the same (now post-crash)
/// storage. Deliberately NOT an IoError — production code must not
/// catch-and-continue past a simulated power cut.
class CrashPoint : public std::exception {
 public:
  explicit CrashPoint(std::uint64_t op) : op_(op) {
    what_ = "simulated crash at storage op " + std::to_string(op);
  }
  const char* what() const noexcept override { return what_.c_str(); }
  std::uint64_t op() const { return op_; }

 private:
  std::uint64_t op_;
  std::string what_;
};

/// Minimal file-system surface the WAL and checkpoint writers need.
/// Every method throws util::IoError on environmental failure. Paths
/// are plain strings; directories are created with make_dir (mkdir -p
/// semantics).
class Storage {
 public:
  virtual ~Storage() = default;

  virtual bool exists(const std::string& path) = 0;
  /// Entry names (not full paths) directly under `dir`; empty if the
  /// directory does not exist.
  virtual std::vector<std::string> list_dir(const std::string& dir) = 0;
  virtual std::string read_file(const std::string& path) = 0;
  virtual std::uint64_t file_size(const std::string& path) = 0;

  /// Create-or-truncate `path` and write `bytes` (not yet durable).
  virtual void write_file(const std::string& path, std::string_view bytes) = 0;
  virtual void append_file(const std::string& path, std::string_view bytes) = 0;
  /// Promote the file's current contents to durable (fsync).
  virtual void sync_file(const std::string& path) = 0;
  /// Atomic replace; durable once it returns.
  virtual void rename_file(const std::string& from, const std::string& to) = 0;
  virtual void truncate_file(const std::string& path, std::uint64_t size) = 0;
  virtual void remove_file(const std::string& path) = 0;
  virtual void make_dir(const std::string& path) = 0;
};

/// Process-wide POSIX backend.
Storage& real_storage();

/// A single injected fault. `at_op` indexes the storage's monotone
/// operation counter (every Storage call on MemStorage is one op —
/// reads included, so a crash can land between any two calls).
struct FaultPlan {
  enum class Kind {
    kNone,
    /// Crash cleanly before op `at_op` executes.
    kCrashBefore,
    /// For an append/write op: persist only the first half of the
    /// bytes, then crash — a short write / torn record.
    kTorn,
    /// Op `at_op` fails with IoError (EIO); no crash, state intact.
    kFail,
  };
  Kind kind = Kind::kNone;
  std::uint64_t at_op = 0;
};

/// In-memory file system with the durability model described above.
/// Thread-safe (single mutex); intended for tests.
class MemStorage : public Storage {
 public:
  bool exists(const std::string& path) override;
  std::vector<std::string> list_dir(const std::string& dir) override;
  std::string read_file(const std::string& path) override;
  std::uint64_t file_size(const std::string& path) override;
  void write_file(const std::string& path, std::string_view bytes) override;
  void append_file(const std::string& path, std::string_view bytes) override;
  void sync_file(const std::string& path) override;
  void rename_file(const std::string& from, const std::string& to) override;
  void truncate_file(const std::string& path, std::uint64_t size) override;
  void remove_file(const std::string& path) override;
  void make_dir(const std::string& path) override;

  /// Arm a fault. Replaces any previously armed plan.
  void set_fault(FaultPlan plan);
  /// Total Storage calls so far — the crash matrix dry-runs once to
  /// learn this, then replays with a crash at every index.
  std::uint64_t op_count() const;
  /// True once an armed kCrashBefore/kTorn plan has fired.
  bool crashed() const;

  /// Drop every volatile byte and every never-synced file. Called
  /// automatically when a crash fault fires; tests may also call it
  /// directly to simulate a kill between storage operations.
  void crash();

 private:
  struct FileState {
    std::string content;
    std::uint64_t durable_size = 0;
    bool durable_entry = false;
  };

  // Bumps the op counter and fires the armed plan if due. Returns true
  // if the op should proceed normally; kTorn handling is done by the
  // caller via the torn_ outparams.
  void check_fault(const std::string& path, std::string_view bytes,
                   bool is_write);
  void crash_locked();

  mutable std::mutex mutex_;
  std::map<std::string, FileState> files_;
  std::map<std::string, bool> dirs_;  // value: durable_entry
  FaultPlan plan_;
  std::uint64_t ops_ = 0;
  bool crashed_ = false;
};

}  // namespace kcore::util
