// Shared wall-clock helpers for phase timing. One definition keeps the
// Session-vs-runner timing invariant (api.h: elapsed_ms == setup + run)
// comparing durations from a single clock convention.
#pragma once

#include <chrono>

namespace kcore::util {

using SteadyClock = std::chrono::steady_clock;

/// Milliseconds between two steady_clock points, as a double.
[[nodiscard]] inline double ms_between(SteadyClock::time_point start,
                                       SteadyClock::time_point stop) {
  return std::chrono::duration<double, std::milli>(stop - start).count();
}

}  // namespace kcore::util
