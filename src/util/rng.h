// Deterministic, cross-platform pseudo-random number generation.
//
// We deliberately avoid std::mt19937 + std::uniform_int_distribution in
// library code: distribution implementations differ across standard
// libraries, which would make experiment results non-reproducible across
// toolchains. Instead we ship SplitMix64 (seeding / cheap streams) and
// xoshiro256** (main generator), with in-house bounded-integer and unit-
// interval helpers whose outputs are fully specified by this code.
#pragma once

#include <array>
#include <cstdint>
#include <limits>
#include <utility>
#include <vector>

#include "util/check.h"

namespace kcore::util {

/// SplitMix64: tiny 64-bit generator; primarily used to expand a user seed
/// into the 256-bit state of Xoshiro256 and to derive independent
/// sub-streams (one per simulated host, per run, ...).
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  /// Next 64 pseudo-random bits.
  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256**: fast, high-quality 64-bit PRNG (Blackman & Vigna).
/// Satisfies std::uniform_random_bit_generator, so it can also feed
/// standard algorithms when exact reproducibility is not required.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  /// Seed via SplitMix64 expansion; any 64-bit seed (including 0) is fine.
  explicit Xoshiro256(std::uint64_t seed) noexcept {
    SplitMix64 sm(seed);
    for (auto& w : state_) w = sm.next();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept { return next(); }

  std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound) using Lemire's multiply-shift rejection
  /// method; bound must be positive.
  std::uint64_t next_below(std::uint64_t bound) noexcept {
    KCORE_DCHECK(bound > 0);
    // Lemire 2019: unbiased bounded generation with rare rejection.
    std::uint64_t x = next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = (0ULL - bound) % bound;
      while (lo < threshold) {
        x = next();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in the inclusive range [lo, hi].
  std::int64_t next_in_range(std::int64_t lo, std::int64_t hi) noexcept {
    KCORE_DCHECK(lo <= hi);
    const auto span =
        static_cast<std::uint64_t>(hi - lo) + 1;  // never overflows for lo<=hi
    return lo + static_cast<std::int64_t>(next_below(span));
  }

  /// Uniform double in [0, 1) with 53 bits of precision.
  double next_double() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool next_bool(double p) noexcept { return next_double() < p; }

  /// Derive an independent generator for a numbered sub-stream. Streams are
  /// decorrelated by hashing (seed-ish state, stream index) through SplitMix.
  [[nodiscard]] Xoshiro256 fork(std::uint64_t stream) noexcept {
    SplitMix64 sm(next() ^ (0x9e3779b97f4a7c15ULL + stream));
    return Xoshiro256(sm.next());
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

/// Pure stream-split: the seed of logical stream `stream` under root seed
/// `root`. Unlike Xoshiro256::fork (which advances the parent generator,
/// so the result depends on call order), this is a pure function of
/// (root, stream) — the derivation the parallel runtime needs: seed every
/// logical shard by its INDEX and the derived streams are identical no
/// matter how many threads execute the shards or in what order. Both
/// inputs are passed through SplitMix64 so adjacent roots and adjacent
/// stream indices land on decorrelated seeds.
[[nodiscard]] constexpr std::uint64_t split_stream(
    std::uint64_t root, std::uint64_t stream) noexcept {
  SplitMix64 root_mix(root);
  SplitMix64 stream_mix(root_mix.next() ^
                        (stream + 0x9e3779b97f4a7c15ULL));
  return stream_mix.next();
}

/// Ready-made generator for stream `stream` of root seed `root`.
[[nodiscard]] inline Xoshiro256 stream_rng(std::uint64_t root,
                                           std::uint64_t stream) noexcept {
  return Xoshiro256(split_stream(root, stream));
}

/// Fisher–Yates shuffle with our own generator (std::shuffle's exact output
/// is implementation-defined; this one is reproducible everywhere).
template <typename T>
void shuffle(std::vector<T>& items, Xoshiro256& rng) {
  if (items.size() < 2) return;
  for (std::size_t i = items.size() - 1; i > 0; --i) {
    const auto j = static_cast<std::size_t>(rng.next_below(i + 1));
    using std::swap;
    swap(items[i], items[j]);
  }
}

/// Identity permutation of size n, shuffled: a random processing order.
[[nodiscard]] std::vector<std::uint32_t> random_permutation(std::size_t n,
                                                            Xoshiro256& rng);

/// Sample k distinct values from [0, n) (k <= n), in random order.
[[nodiscard]] std::vector<std::uint32_t> sample_without_replacement(
    std::size_t n, std::size_t k, Xoshiro256& rng);

}  // namespace kcore::util
