// Lightweight runtime check macros.
//
// KCORE_CHECK is always active (release and debug): library invariants and
// precondition violations throw kcore::util::CheckError with a readable
// message instead of corrupting state. KCORE_DCHECK compiles out in NDEBUG
// builds and is reserved for hot-loop assertions.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace kcore::util {

/// Thrown when a KCORE_CHECK fails. Derives from std::logic_error because a
/// failed check is a programming error, not an environmental condition.
class CheckError : public std::logic_error {
 public:
  explicit CheckError(const std::string& what) : std::logic_error(what) {}
};

/// Thrown on environmental failures — unreadable files, malformed input
/// data, full disks. Unlike CheckError the message is meant for the END
/// USER, not the developer: no source locations, no expression text, one
/// actionable line ("churn.txt line 12: unknown op 'x' (expected '+' or
/// '-')"). CLIs catch it and exit with the message verbatim.
class IoError : public std::runtime_error {
 public:
  explicit IoError(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] void throw_check_error(const char* expr, const char* file,
                                    int line, const std::string& extra);
}  // namespace detail

}  // namespace kcore::util

/// Check `cond`; on failure throw CheckError identifying expression and
/// location. Extra context can be streamed: KCORE_CHECK(x > 0) with message
/// via KCORE_CHECK_MSG(x > 0, "x=" << x).
#define KCORE_CHECK(cond)                                                    \
  do {                                                                       \
    if (!(cond)) {                                                           \
      ::kcore::util::detail::throw_check_error(#cond, __FILE__, __LINE__,   \
                                               std::string{});               \
    }                                                                        \
  } while (false)

#define KCORE_CHECK_MSG(cond, stream_expr)                                  \
  do {                                                                       \
    if (!(cond)) {                                                           \
      std::ostringstream kcore_check_oss_;                                   \
      kcore_check_oss_ << stream_expr;                                       \
      ::kcore::util::detail::throw_check_error(#cond, __FILE__, __LINE__,   \
                                               kcore_check_oss_.str());      \
    }                                                                        \
  } while (false)

#ifdef NDEBUG
#define KCORE_DCHECK(cond) \
  do {                     \
  } while (false)
#else
#define KCORE_DCHECK(cond) KCORE_CHECK(cond)
#endif
