// Minimal escaping-correct JSON writer.
//
// One streaming writer class shared by every JSON emitter in the repo —
// the Chrome-trace exporter (obs/trace.cpp), `kcore --json`, and the
// bench result files (BENCH_scaling.json, BENCH_kernel.json, fig4) —
// replacing the hand-rolled string concatenation each of them used to
// carry. The writer owns the three things hand-rolled emitters get
// wrong: string escaping (control characters, quotes, backslashes),
// comma placement, and non-finite doubles (JSON has no NaN/Inf — they
// are emitted as null).
//
// Usage:
//   util::JsonWriter w(os);
//   w.begin_object();
//   w.member("name", dataset);             // key + escaped string value
//   w.member("wall_ms", wall, 3);          // fixed precision double
//   w.key("threads").value(std::uint64_t{8});
//   w.key("samples").begin_array();
//   for (double s : samples) w.value(s);
//   w.end_array();
//   w.end_object();                        // emits a trailing '\n'
//
// The writer validates nesting depth and balanced begin/end via
// KCORE_CHECK — misuse is a programming error, not a runtime condition.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>

namespace kcore::util {

/// Escape `s` for inclusion inside a JSON string literal (no surrounding
/// quotes). Handles \" \\ \b \f \n \r \t and all other control
/// characters (< 0x20) as \u00XX; everything else passes through
/// byte-for-byte (UTF-8 stays valid UTF-8).
[[nodiscard]] std::string json_escape(std::string_view s);

/// Streaming JSON writer with automatic comma placement.
class JsonWriter {
 public:
  /// `indent` > 0 pretty-prints with that many spaces per level;
  /// 0 (default) emits compact single-line JSON.
  explicit JsonWriter(std::ostream& os, int indent = 0);

  JsonWriter(const JsonWriter&) = delete;
  JsonWriter& operator=(const JsonWriter&) = delete;

  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Object key; must be followed by exactly one value (or begin_*).
  JsonWriter& key(std::string_view k);

  JsonWriter& value(std::string_view v);
  JsonWriter& value(const char* v) { return value(std::string_view(v)); }
  JsonWriter& value(bool v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(std::uint32_t v) { return value(std::uint64_t{v}); }
  JsonWriter& value(std::int32_t v) { return value(std::int64_t{v}); }
  /// Doubles: `digits` < 0 uses shortest round-trip formatting;
  /// `digits` >= 0 fixed decimals. Non-finite values become null.
  JsonWriter& value(double v, int digits = -1);
  JsonWriter& null();

  /// key + value in one call.
  template <typename T>
  JsonWriter& member(std::string_view k, const T& v) {
    return key(k).value(v);
  }
  JsonWriter& member(std::string_view k, double v, int digits) {
    return key(k).value(v, digits);
  }

  /// True once the top-level value is complete (balanced begin/end).
  [[nodiscard]] bool complete() const { return depth_ == 0 && wrote_any_; }

 private:
  enum class Scope : std::uint8_t { kObject, kArray };

  void before_value();
  void open(Scope s, char brace);
  void close(Scope s, char brace);
  void newline_indent();

  static constexpr int kMaxDepth = 64;

  std::ostream& os_;
  int indent_;
  int depth_ = 0;
  Scope scopes_[kMaxDepth] = {};
  bool first_in_scope_[kMaxDepth] = {};
  bool after_key_ = false;
  bool wrote_any_ = false;
};

}  // namespace kcore::util
