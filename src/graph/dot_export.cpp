#include "graph/dot_export.h"

#include <algorithm>
#include <fstream>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/check.h"

namespace kcore::graph {

std::string shell_color(NodeId shell, NodeId max_shell) {
  // Hue sweeps blue (periphery) to red (nucleus); saturation fixed.
  const double t = max_shell == 0
                       ? 0.0
                       : static_cast<double>(shell) /
                             static_cast<double>(max_shell);
  const double hue = (1.0 - t) * 0.66;  // 0.66 = blue, 0.0 = red
  std::ostringstream oss;
  oss << std::fixed << std::setprecision(3) << hue << " 0.6 0.95";
  return oss.str();
}

void write_dot(std::ostream& out, const Graph& g,
               const std::vector<NodeId>& coreness,
               const DotOptions& options) {
  const bool styled = !coreness.empty();
  KCORE_CHECK_MSG(!styled || coreness.size() == g.num_nodes(),
                  "coreness size mismatch");
  const NodeId limit =
      options.max_nodes == 0
          ? g.num_nodes()
          : std::min<NodeId>(options.max_nodes, g.num_nodes());

  out << "graph " << options.graph_name << " {\n"
      << "  layout=fdp;\n  outputorder=edgesfirst;\n"
      << "  node [shape=circle style=filled width=0.2 fixedsize=true "
         "label=\"\"];\n  edge [color=\"#00000030\"];\n";

  NodeId max_shell = 0;
  if (styled) {
    for (NodeId u = 0; u < limit; ++u) {
      max_shell = std::max(max_shell, coreness[u]);
    }
  }

  if (styled && options.cluster_by_shell) {
    for (NodeId shell = 0; shell <= max_shell; ++shell) {
      bool any = false;
      for (NodeId u = 0; u < limit; ++u) {
        if (coreness[u] != shell) continue;
        if (!any) {
          out << "  subgraph cluster_shell_" << shell << " {\n"
              << "    label=\"" << shell << "-shell\"; style=invis;\n";
          any = true;
        }
        out << "    n" << u << " [fillcolor=\""
            << shell_color(shell, max_shell) << "\"];\n";
      }
      if (any) out << "  }\n";
    }
  } else {
    for (NodeId u = 0; u < limit; ++u) {
      out << "  n" << u;
      if (styled) {
        out << " [fillcolor=\"" << shell_color(coreness[u], max_shell)
            << "\"]";
      }
      out << ";\n";
    }
  }

  for (NodeId u = 0; u < limit; ++u) {
    for (const NodeId v : g.neighbors(u)) {
      if (u < v && v < limit) out << "  n" << u << " -- n" << v << ";\n";
    }
  }
  out << "}\n";
}

void write_dot_file(const std::string& path, const Graph& g,
                    const std::vector<NodeId>& coreness,
                    const DotOptions& options) {
  std::ofstream out(path);
  KCORE_CHECK_MSG(out.good(), "cannot open '" << path << "' for writing");
  write_dot(out, g, coreness, options);
  out.flush();
  KCORE_CHECK_MSG(out.good(), "write to '" << path << "' failed");
}

}  // namespace kcore::graph
