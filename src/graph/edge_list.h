// Plain-text edge-list input/output (SNAP-compatible).
//
// Format: one "u v" pair per line, whitespace-separated; lines starting
// with '#' or '%' are comments. Node ids in files may be arbitrary
// non-negative integers — they are remapped to a dense [0, n) range on
// load (SNAP files routinely have gaps).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "graph/graph.h"

namespace kcore::graph {

/// Result of loading an edge list: the canonical graph plus the mapping
/// from dense ids back to the original file ids.
struct LoadedGraph {
  Graph graph;
  std::vector<std::uint64_t> original_ids;  // original_ids[dense] = file id
};

/// Parse an edge list from a stream. Throws util::CheckError on malformed
/// lines (a half-read graph would silently corrupt an experiment).
[[nodiscard]] LoadedGraph read_edge_list(std::istream& in);

/// Convenience file wrapper around read_edge_list(std::istream&).
[[nodiscard]] LoadedGraph read_edge_list_file(const std::string& path);

/// Write a graph as "u v" lines, one per undirected edge (u < v), with a
/// comment header carrying node/edge counts.
void write_edge_list(std::ostream& out, const Graph& g);

/// Convenience file wrapper around write_edge_list(std::ostream&).
void write_edge_list_file(const std::string& path, const Graph& g);

}  // namespace kcore::graph
