// Plain-text edge-list and edge-stream input/output (SNAP-compatible).
//
// Static format: one "u v" pair per line, whitespace-separated; lines
// starting with '#' or '%' are comments. Node ids in files may be
// arbitrary non-negative integers — they are remapped to a dense [0, n)
// range on load (SNAP files routinely have gaps).
//
// Stream format (timestamped churn, consumed by core/dynamic and
// src/live): one "t op u v" event per line, with t a non-decreasing
// integer timestamp, op '+' (insert) or '-' (remove), and u/v DENSE node
// ids into an already-loaded base graph. Same comment rules.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "graph/graph.h"

namespace kcore::graph {

/// Result of loading an edge list: the canonical graph plus the mapping
/// from dense ids back to the original file ids.
struct LoadedGraph {
  Graph graph;
  std::vector<std::uint64_t> original_ids;  // original_ids[dense] = file id
};

/// Parse an edge list from a stream. Throws util::IoError on malformed
/// lines (a half-read graph would silently corrupt an experiment), with
/// the offending line number and `source` (a file name, for the file
/// wrappers) in the message.
[[nodiscard]] LoadedGraph read_edge_list(std::istream& in,
                                         const std::string& source = "input");

/// Convenience file wrapper around read_edge_list(std::istream&).
[[nodiscard]] LoadedGraph read_edge_list_file(const std::string& path);

/// Write a graph as "u v" lines, one per undirected edge (u < v), with a
/// comment header carrying node/edge counts.
void write_edge_list(std::ostream& out, const Graph& g);

/// Convenience file wrapper around write_edge_list(std::ostream&).
void write_edge_list_file(const std::string& path, const Graph& g);

// --- timestamped edge streams ----------------------------------------------

enum class EdgeOp : std::uint8_t {
  kInsert,  // '+'
  kRemove,  // '-'
};

/// One churn event. The SAME type drives the synchronous maintenance
/// protocol (core::DynamicKCore::apply_batch) and the async live service
/// (live::Service::apply), so both paths replay identical streams.
struct EdgeUpdate {
  EdgeOp op = EdgeOp::kInsert;
  NodeId u = 0;
  NodeId v = 0;
  friend bool operator==(const EdgeUpdate&, const EdgeUpdate&) = default;
};

/// An EdgeUpdate with its arrival timestamp (arbitrary integer ticks).
struct TimedEdgeUpdate {
  std::uint64_t time = 0;
  EdgeUpdate update;
  friend bool operator==(const TimedEdgeUpdate&,
                         const TimedEdgeUpdate&) = default;
};

/// A parsed stream: events in file order, timestamps non-decreasing.
struct EdgeStream {
  std::vector<TimedEdgeUpdate> events;
};

/// Consecutive events grouped into one apply unit: all events with
/// timestamp in [t_begin, t_end).
struct EdgeUpdateBatch {
  std::uint64_t t_begin = 0;
  std::uint64_t t_end = 0;
  std::vector<EdgeUpdate> updates;
};

/// Parse a "t op u v" stream. Throws util::IoError (with `source` and
/// the line number) on malformed lines, unknown ops, or a timestamp that
/// goes backwards — a half-read stream would silently corrupt a replay.
[[nodiscard]] EdgeStream read_edge_stream(std::istream& in,
                                          const std::string& source = "input");

/// Convenience file wrapper around read_edge_stream(std::istream&).
[[nodiscard]] EdgeStream read_edge_stream_file(const std::string& path);

/// Write a stream as "t op u v" lines with a comment header; the output
/// round-trips through read_edge_stream.
void write_edge_stream(std::ostream& out, const EdgeStream& stream);

/// Convenience file wrapper around write_edge_stream(std::ostream&).
void write_edge_stream_file(const std::string& path, const EdgeStream& stream);

/// Group a stream into batches of `window` ticks anchored at the first
/// event's timestamp; window 0 means one batch per distinct timestamp.
/// Empty windows produce no batch.
[[nodiscard]] std::vector<EdgeUpdateBatch> batch_by_window(
    const EdgeStream& stream, std::uint64_t window);

}  // namespace kcore::graph
