// GraphViz (DOT) export with k-core shell styling.
//
// One of the paper's motivating applications is large-graph visualization
// via the k-core decomposition (Alvarez-Hamelin et al. [1]): shells give
// an onion layout. write_dot() emits a DOT file whose nodes are colored
// by shell and optionally grouped into concentric clusters, ready for
// `neato`/`fdp`.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "graph/graph.h"

namespace kcore::graph {

struct DotOptions {
  /// Group nodes of each shell into a DOT cluster subgraph.
  bool cluster_by_shell = true;
  /// Cap on emitted nodes (huge graphs make DOT useless); 0 = no cap.
  NodeId max_nodes = 2000;
  std::string graph_name = "kcore";
};

/// Write `g` as DOT, styling node u with a color derived from coreness[u]
/// (empty coreness = unstyled). Throws util::CheckError if coreness is
/// non-empty but mismatched in size.
void write_dot(std::ostream& out, const Graph& g,
               const std::vector<NodeId>& coreness,
               const DotOptions& options = {});

/// Convenience file wrapper.
void write_dot_file(const std::string& path, const Graph& g,
                    const std::vector<NodeId>& coreness,
                    const DotOptions& options = {});

/// Map a shell index to a fill color (HSV string cycling hue, darker for
/// deeper cores). Exposed for tests.
[[nodiscard]] std::string shell_color(NodeId shell, NodeId max_shell);

}  // namespace kcore::graph
