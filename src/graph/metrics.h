// Structural metrics beyond degrees: triangles, clustering, assortativity
// and the degree distribution. Used to validate that the synthetic
// dataset profiles carry the structural character of their SNAP
// originals (collaboration graphs cluster heavily, road networks do not,
// social graphs are weakly disassortative, ...).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace kcore::graph {

/// Count of triangles through each node (each triangle contributes 1 to
/// each of its three corners). O(M * sqrt(M))-ish via neighbor
/// intersection on sorted adjacency.
[[nodiscard]] std::vector<std::uint64_t> triangles_per_node(const Graph& g);

/// Total number of distinct triangles in the graph.
[[nodiscard]] std::uint64_t triangle_count(const Graph& g);

/// Local clustering coefficient per node: triangles(u) / C(deg(u), 2);
/// 0 for degree < 2.
[[nodiscard]] std::vector<double> local_clustering(const Graph& g);

/// Average of the local clustering coefficients (Watts–Strogatz C).
[[nodiscard]] double average_clustering(const Graph& g);

/// Global clustering (transitivity): 3 * triangles / #wedges.
[[nodiscard]] double transitivity(const Graph& g);

/// Pearson degree-degree correlation over edges (Newman assortativity);
/// 0 for degenerate graphs (no edges or constant degree).
[[nodiscard]] double degree_assortativity(const Graph& g);

/// histogram[d] = number of nodes of degree exactly d.
[[nodiscard]] std::vector<std::uint64_t> degree_histogram(const Graph& g);

}  // namespace kcore::graph
