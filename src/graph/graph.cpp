#include "graph/graph.h"

#include <algorithm>

namespace kcore::graph {

Graph Graph::from_edges(NodeId num_nodes, std::span<const Edge> edges) {
  GraphBuilder builder(num_nodes);
  builder.reserve(edges.size());
  for (const Edge& e : edges) {
    KCORE_CHECK_MSG(e.u < num_nodes && e.v < num_nodes,
                    "edge (" << e.u << "," << e.v << ") out of range, n="
                             << num_nodes);
    builder.add_edge(e.u, e.v);
  }
  return builder.build();
}

Graph GraphBuilder::build() {
  Graph g;
  const NodeId n = num_nodes_;
  g.offsets_.assign(static_cast<std::size_t>(n) + 1, 0);

  // Pass 1: count arc endpoints (skipping self-loops).
  for (const Edge& e : edges_) {
    if (e.u == e.v) continue;
    ++g.offsets_[e.u + 1];
    ++g.offsets_[e.v + 1];
  }
  for (std::size_t i = 1; i < g.offsets_.size(); ++i) {
    g.offsets_[i] += g.offsets_[i - 1];
  }

  // Pass 2: scatter arcs.
  g.adjacency_.resize(g.offsets_.back());
  std::vector<std::uint64_t> cursor(g.offsets_.begin(), g.offsets_.end() - 1);
  for (const Edge& e : edges_) {
    if (e.u == e.v) continue;
    g.adjacency_[cursor[e.u]++] = e.v;
    g.adjacency_[cursor[e.v]++] = e.u;
  }
  edges_.clear();
  edges_.shrink_to_fit();

  // Pass 3: sort each adjacency list and drop duplicate arcs in place.
  std::vector<std::uint64_t> new_offsets(g.offsets_.size(), 0);
  std::uint64_t write = 0;
  for (NodeId u = 0; u < n; ++u) {
    const auto begin = g.adjacency_.begin() +
                       static_cast<std::ptrdiff_t>(g.offsets_[u]);
    const auto end = g.adjacency_.begin() +
                     static_cast<std::ptrdiff_t>(g.offsets_[u + 1]);
    std::sort(begin, end);
    const auto unique_end = std::unique(begin, end);
    for (auto it = begin; it != unique_end; ++it) {
      g.adjacency_[write++] = *it;
    }
    new_offsets[u + 1] = write;
  }
  g.adjacency_.resize(write);
  g.offsets_ = std::move(new_offsets);
  return g;
}

bool Graph::has_edge(NodeId u, NodeId v) const {
  KCORE_DCHECK(u < num_nodes() && v < num_nodes());
  const auto nbrs = neighbors(u);
  return std::binary_search(nbrs.begin(), nbrs.end(), v);
}

NodeId Graph::min_degree() const noexcept {
  const NodeId n = num_nodes();
  if (n == 0) return 0;
  NodeId best = degree(0);
  for (NodeId u = 1; u < n; ++u) best = std::min(best, degree(u));
  return best;
}

NodeId Graph::max_degree() const noexcept {
  const NodeId n = num_nodes();
  NodeId best = 0;
  for (NodeId u = 0; u < n; ++u) best = std::max(best, degree(u));
  return best;
}

double Graph::average_degree() const noexcept {
  const NodeId n = num_nodes();
  if (n == 0) return 0.0;
  return static_cast<double>(num_arcs()) / static_cast<double>(n);
}

}  // namespace kcore::graph
