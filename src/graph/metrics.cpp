#include "graph/metrics.h"

#include <algorithm>
#include <cmath>

namespace kcore::graph {

std::vector<std::uint64_t> triangles_per_node(const Graph& g) {
  const NodeId n = g.num_nodes();
  std::vector<std::uint64_t> count(n, 0);
  // For each edge (u, v) with u < v, intersect the sorted adjacency lists
  // counting common neighbors w > v; each triangle (u < v < w) is found
  // exactly once and credited to all three corners.
  for (NodeId u = 0; u < n; ++u) {
    const auto nu = g.neighbors(u);
    for (const NodeId v : nu) {
      if (v <= u) continue;
      const auto nv = g.neighbors(v);
      auto iu = std::lower_bound(nu.begin(), nu.end(), v + 1);
      auto iv = std::lower_bound(nv.begin(), nv.end(), v + 1);
      while (iu != nu.end() && iv != nv.end()) {
        if (*iu < *iv) {
          ++iu;
        } else if (*iv < *iu) {
          ++iv;
        } else {
          ++count[u];
          ++count[v];
          ++count[*iu];
          ++iu;
          ++iv;
        }
      }
    }
  }
  return count;
}

std::uint64_t triangle_count(const Graph& g) {
  const auto per_node = triangles_per_node(g);
  std::uint64_t total = 0;
  for (const auto c : per_node) total += c;
  return total / 3;
}

std::vector<double> local_clustering(const Graph& g) {
  const auto tri = triangles_per_node(g);
  std::vector<double> c(g.num_nodes(), 0.0);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    const std::uint64_t d = g.degree(u);
    if (d < 2) continue;
    const double wedges = static_cast<double>(d) *
                          static_cast<double>(d - 1) / 2.0;
    c[u] = static_cast<double>(tri[u]) / wedges;
  }
  return c;
}

double average_clustering(const Graph& g) {
  if (g.num_nodes() == 0) return 0.0;
  const auto c = local_clustering(g);
  double sum = 0.0;
  for (const double v : c) sum += v;
  return sum / static_cast<double>(g.num_nodes());
}

double transitivity(const Graph& g) {
  std::uint64_t wedges = 0;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    const std::uint64_t d = g.degree(u);
    wedges += d * (d - 1) / 2;
  }
  if (wedges == 0) return 0.0;
  return 3.0 * static_cast<double>(triangle_count(g)) /
         static_cast<double>(wedges);
}

double degree_assortativity(const Graph& g) {
  // Newman (2002): Pearson correlation of (deg(u), deg(v)) over directed
  // arcs; symmetric graphs make x/y statistics identical.
  const std::uint64_t arcs = g.num_arcs();
  if (arcs == 0) return 0.0;
  double sum_xy = 0.0;
  double sum_x = 0.0;
  double sum_x2 = 0.0;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    const auto du = static_cast<double>(g.degree(u));
    for (const NodeId v : g.neighbors(u)) {
      const auto dv = static_cast<double>(g.degree(v));
      sum_xy += du * dv;
      sum_x += du;
      sum_x2 += du * du;
    }
  }
  const double m = static_cast<double>(arcs);
  const double mean = sum_x / m;
  const double var = sum_x2 / m - mean * mean;
  if (var <= 0.0) return 0.0;
  const double cov = sum_xy / m - mean * mean;
  return cov / var;
}

std::vector<std::uint64_t> degree_histogram(const Graph& g) {
  std::vector<std::uint64_t> histogram(
      static_cast<std::size_t>(g.max_degree()) + 1, 0);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    ++histogram[g.degree(u)];
  }
  return histogram;
}

}  // namespace kcore::graph
