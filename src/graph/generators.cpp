#include "graph/generators.h"

#include <algorithm>
#include <numeric>
#include <unordered_set>
#include <utility>

#include "graph/stats.h"
#include "util/rng.h"

namespace kcore::graph::gen {

using util::Xoshiro256;

namespace {

/// Pack an undirected pair into a 64-bit key with canonical order.
std::uint64_t edge_key(NodeId u, NodeId v) {
  if (u > v) std::swap(u, v);
  return (static_cast<std::uint64_t>(u) << 32) | v;
}

}  // namespace

// ---------------------------------------------------------------------------
// Deterministic families
// ---------------------------------------------------------------------------

Graph chain(NodeId n) {
  KCORE_CHECK_MSG(n >= 1, "chain needs >= 1 node");
  GraphBuilder b(n);
  for (NodeId i = 0; i + 1 < n; ++i) b.add_edge(i, i + 1);
  return b.build();
}

Graph cycle(NodeId n) {
  KCORE_CHECK_MSG(n >= 3, "cycle needs >= 3 nodes");
  GraphBuilder b(n);
  for (NodeId i = 0; i < n; ++i) b.add_edge(i, (i + 1) % n);
  return b.build();
}

Graph clique(NodeId n) {
  KCORE_CHECK_MSG(n >= 1, "clique needs >= 1 node");
  GraphBuilder b(n);
  for (NodeId i = 0; i < n; ++i) {
    for (NodeId j = i + 1; j < n; ++j) b.add_edge(i, j);
  }
  return b.build();
}

Graph star(NodeId n) {
  KCORE_CHECK_MSG(n >= 2, "star needs >= 2 nodes");
  GraphBuilder b(n);
  for (NodeId i = 1; i < n; ++i) b.add_edge(0, i);
  return b.build();
}

Graph complete_bipartite(NodeId a, NodeId b_count) {
  KCORE_CHECK_MSG(a >= 1 && b_count >= 1, "both sides must be non-empty");
  GraphBuilder b(a + b_count);
  for (NodeId i = 0; i < a; ++i) {
    for (NodeId j = 0; j < b_count; ++j) b.add_edge(i, a + j);
  }
  return b.build();
}

Graph grid(NodeId rows, NodeId cols) {
  KCORE_CHECK_MSG(rows >= 1 && cols >= 1, "grid needs positive dimensions");
  GraphBuilder b(rows * cols);
  auto id = [cols](NodeId r, NodeId c) { return r * cols + c; };
  for (NodeId r = 0; r < rows; ++r) {
    for (NodeId c = 0; c < cols; ++c) {
      if (c + 1 < cols) b.add_edge(id(r, c), id(r, c + 1));
      if (r + 1 < rows) b.add_edge(id(r, c), id(r + 1, c));
    }
  }
  return b.build();
}

Graph circulant(NodeId n, std::span<const NodeId> offsets) {
  KCORE_CHECK_MSG(n >= 3, "circulant needs >= 3 nodes");
  GraphBuilder b(n);
  for (NodeId i = 0; i < n; ++i) {
    for (NodeId o : offsets) {
      KCORE_CHECK_MSG(o >= 1 && o < n, "offset " << o << " out of range");
      b.add_edge(i, (i + o) % n);
    }
  }
  return b.build();
}

Graph ring_lattice(NodeId n, NodeId degree) {
  KCORE_CHECK_MSG(degree % 2 == 0, "ring_lattice degree must be even");
  KCORE_CHECK_MSG(degree < n, "degree must be < n");
  std::vector<NodeId> offsets(degree / 2);
  std::iota(offsets.begin(), offsets.end(), 1U);
  return circulant(n, offsets);
}

Graph disjoint_cliques(std::span<const NodeId> sizes) {
  NodeId total = 0;
  for (NodeId s : sizes) {
    KCORE_CHECK_MSG(s >= 1, "clique size must be >= 1");
    total += s;
  }
  GraphBuilder b(total);
  NodeId base = 0;
  for (NodeId s : sizes) {
    for (NodeId i = 0; i < s; ++i) {
      for (NodeId j = i + 1; j < s; ++j) b.add_edge(base + i, base + j);
    }
    base += s;
  }
  return b.build();
}

Graph montresor_worst_case(NodeId n) {
  KCORE_CHECK_MSG(n >= 5, "worst-case construction requires n >= 5");
  // Work in the paper's 1-based numbering, subtract 1 when emitting.
  GraphBuilder b(n);
  auto add = [&b](NodeId u1, NodeId v1) { b.add_edge(u1 - 1, v1 - 1); };
  // Node n is adjacent to every node except n-3.
  for (NodeId i = 1; i <= n - 1; ++i) {
    if (i != n - 3) add(n, i);
  }
  // Path 1-2-...-(n-1): node i adjacent to i+1 for i = 1..n-2.
  for (NodeId i = 1; i <= n - 2; ++i) add(i, i + 1);
  // Extra chord.
  add(n - 3, n - 1);
  return b.build();
}

// ---------------------------------------------------------------------------
// Random families
// ---------------------------------------------------------------------------

Graph erdos_renyi_gnm(NodeId n, std::uint64_t m, std::uint64_t seed) {
  KCORE_CHECK_MSG(n >= 2, "G(n,m) needs >= 2 nodes");
  const std::uint64_t max_edges =
      static_cast<std::uint64_t>(n) * (n - 1) / 2;
  KCORE_CHECK_MSG(m <= max_edges,
                  "m=" << m << " exceeds max " << max_edges);
  Xoshiro256 rng(seed);
  std::unordered_set<std::uint64_t> seen;
  seen.reserve(m * 2);
  GraphBuilder b(n);
  b.reserve(m);
  while (seen.size() < m) {
    const auto u = static_cast<NodeId>(rng.next_below(n));
    const auto v = static_cast<NodeId>(rng.next_below(n));
    if (u == v) continue;
    if (seen.insert(edge_key(u, v)).second) b.add_edge(u, v);
  }
  return b.build();
}

Graph barabasi_albert(NodeId n, NodeId edges_per_node, std::uint64_t seed) {
  KCORE_CHECK_MSG(edges_per_node >= 1, "need >= 1 edge per node");
  KCORE_CHECK_MSG(n > edges_per_node, "n must exceed edges_per_node");
  Xoshiro256 rng(seed);
  GraphBuilder b(n);
  // Seed graph: clique on edges_per_node + 1 nodes.
  const NodeId seed_nodes = edges_per_node + 1;
  std::vector<NodeId> endpoint_pool;  // one entry per arc endpoint
  endpoint_pool.reserve(static_cast<std::size_t>(n) * edges_per_node * 2);
  for (NodeId i = 0; i < seed_nodes; ++i) {
    for (NodeId j = i + 1; j < seed_nodes; ++j) {
      b.add_edge(i, j);
      endpoint_pool.push_back(i);
      endpoint_pool.push_back(j);
    }
  }
  std::vector<NodeId> targets;
  targets.reserve(edges_per_node);
  for (NodeId u = seed_nodes; u < n; ++u) {
    targets.clear();
    // Choose edges_per_node distinct targets proportional to degree.
    while (targets.size() < edges_per_node) {
      const NodeId cand =
          endpoint_pool[rng.next_below(endpoint_pool.size())];
      if (std::find(targets.begin(), targets.end(), cand) == targets.end()) {
        targets.push_back(cand);
      }
    }
    for (NodeId v : targets) {
      b.add_edge(u, v);
      endpoint_pool.push_back(u);
      endpoint_pool.push_back(v);
    }
  }
  return b.build();
}

Graph rmat(const RmatParams& p, std::uint64_t seed) {
  KCORE_CHECK_MSG(p.scale >= 1 && p.scale <= 30, "scale out of range");
  const double prob_sum = p.a + p.b + p.c + p.d;
  KCORE_CHECK_MSG(prob_sum > 0.99 && prob_sum < 1.01,
                  "quadrant probabilities must sum to 1, got " << prob_sum);
  const NodeId n = NodeId{1} << p.scale;
  const auto m = static_cast<std::uint64_t>(p.edge_factor *
                                            static_cast<double>(n));
  Xoshiro256 rng(seed);
  GraphBuilder b(n);
  b.reserve(m);
  for (std::uint64_t e = 0; e < m; ++e) {
    NodeId u = 0;
    NodeId v = 0;
    for (std::uint32_t bit = 0; bit < p.scale; ++bit) {
      const double r = rng.next_double();
      u <<= 1;
      v <<= 1;
      if (r < p.a) {
        // top-left: no bits set
      } else if (r < p.a + p.b) {
        v |= 1;
      } else if (r < p.a + p.b + p.c) {
        u |= 1;
      } else {
        u |= 1;
        v |= 1;
      }
    }
    if (u != v) b.add_edge(u, v);
  }
  // Relabel so node id carries no quadrant structure.
  return relabel_random(b.build(), seed ^ 0x5bd1e995ULL);
}

Graph watts_strogatz(NodeId n, NodeId k, double beta, std::uint64_t seed) {
  KCORE_CHECK_MSG(k % 2 == 0 && k >= 2, "k must be even and >= 2");
  KCORE_CHECK_MSG(k < n, "k must be < n");
  KCORE_CHECK_MSG(beta >= 0.0 && beta <= 1.0, "beta in [0,1]");
  Xoshiro256 rng(seed);
  // Start from ring lattice edge set, rewire the far endpoint w.p. beta.
  std::unordered_set<std::uint64_t> present;
  std::vector<Edge> edges;
  edges.reserve(static_cast<std::size_t>(n) * (k / 2));
  for (NodeId i = 0; i < n; ++i) {
    for (NodeId o = 1; o <= k / 2; ++o) {
      const NodeId j = (i + o) % n;
      edges.push_back({i, j});
      present.insert(edge_key(i, j));
    }
  }
  for (auto& e : edges) {
    if (!rng.next_bool(beta)) continue;
    // Rewire e.v to a uniform non-neighbor, keeping e.u fixed.
    for (int attempt = 0; attempt < 32; ++attempt) {
      const auto cand = static_cast<NodeId>(rng.next_below(n));
      if (cand == e.u) continue;
      if (present.contains(edge_key(e.u, cand))) continue;
      present.erase(edge_key(e.u, e.v));
      present.insert(edge_key(e.u, cand));
      e.v = cand;
      break;
    }
  }
  GraphBuilder b(n);
  for (const auto& e : edges) b.add_edge(e.u, e.v);
  return b.build();
}

Graph random_regular(NodeId n, NodeId d, std::uint64_t seed) {
  KCORE_CHECK_MSG(d >= 1 && d < n, "need 1 <= d < n");
  KCORE_CHECK_MSG((static_cast<std::uint64_t>(n) * d) % 2 == 0,
                  "n*d must be even");
  Xoshiro256 rng(seed);
  const std::size_t stubs_count = static_cast<std::size_t>(n) * d;
  std::vector<NodeId> stubs(stubs_count);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId i = 0; i < d; ++i) {
      stubs[static_cast<std::size_t>(u) * d + i] = u;
    }
  }
  // Configuration model with local repair: pair shuffled stubs, then fix
  // self-loops/duplicates by double-edge swaps ((a,b),(c,e) -> (a,c),(b,e))
  // against randomly chosen partner pairs. A plain restart strategy fails
  // with overwhelming probability beyond d ~ 5; repair converges fast for
  // any modest d.
  util::shuffle(stubs, rng);
  const std::size_t num_pairs = stubs_count / 2;
  auto pair_u = [&](std::size_t p) -> NodeId& { return stubs[2 * p]; };
  auto pair_v = [&](std::size_t p) -> NodeId& { return stubs[2 * p + 1]; };

  std::unordered_set<std::uint64_t> seen;
  std::vector<std::size_t> bad;      // conflicting pairs awaiting repair
  std::vector<bool> is_bad(num_pairs, false);
  seen.reserve(num_pairs * 2);
  for (std::size_t p = 0; p < num_pairs; ++p) {
    if (pair_u(p) == pair_v(p) ||
        !seen.insert(edge_key(pair_u(p), pair_v(p))).second) {
      bad.push_back(p);
      is_bad[p] = true;
    }
  }
  std::uint64_t attempts = 0;
  const std::uint64_t max_attempts = 200 * stubs_count + 1000;
  while (!bad.empty() && attempts < max_attempts) {
    ++attempts;
    const std::size_t p = bad.back();
    const std::size_t q = rng.next_below(num_pairs);
    // Swap only against a currently-good partner pair: its edge is in
    // `seen` and owned by it alone, so the bookkeeping stays exact.
    if (p == q || is_bad[q]) continue;
    const NodeId a = pair_u(p);
    const NodeId b = pair_v(p);
    const NodeId c = pair_u(q);
    const NodeId e = pair_v(q);
    // New edges (a,e) and (c,b) must be simple and fresh.
    if (a == e || c == b) continue;
    if (seen.contains(edge_key(a, e)) || seen.contains(edge_key(c, b))) {
      continue;
    }
    seen.erase(edge_key(c, e));
    pair_v(p) = e;
    pair_v(q) = b;
    seen.insert(edge_key(a, e));
    seen.insert(edge_key(c, b));
    is_bad[p] = false;
    bad.pop_back();
  }
  KCORE_CHECK_MSG(bad.empty(),
                  "random_regular(" << n << "," << d
                                    << ") failed to repair pairing");
  GraphBuilder builder(n);
  for (std::size_t p = 0; p < num_pairs; ++p) {
    builder.add_edge(pair_u(p), pair_v(p));
  }
  return builder.build();
}

Graph affiliation(NodeId n, NodeId num_groups, NodeId memberships,
                  std::uint64_t seed) {
  KCORE_CHECK_MSG(n >= 1 && num_groups >= 1 && memberships >= 1,
                  "affiliation parameters must be positive");
  Xoshiro256 rng(seed);
  std::vector<std::vector<NodeId>> group_members(num_groups);
  for (NodeId u = 0; u < n; ++u) {
    // Join `memberships` distinct groups.
    const auto k = std::min<std::size_t>(memberships, num_groups);
    auto groups = util::sample_without_replacement(num_groups, k, rng);
    for (NodeId g : groups) group_members[g].push_back(u);
  }
  GraphBuilder b(n);
  for (const auto& members : group_members) {
    for (std::size_t i = 0; i < members.size(); ++i) {
      for (std::size_t j = i + 1; j < members.size(); ++j) {
        b.add_edge(members[i], members[j]);
      }
    }
  }
  return b.build();
}

// ---------------------------------------------------------------------------
// Composite operations
// ---------------------------------------------------------------------------

Graph disjoint_union(std::span<const Graph> parts) {
  NodeId total = 0;
  for (const Graph& g : parts) total += g.num_nodes();
  GraphBuilder b(total);
  NodeId base = 0;
  for (const Graph& g : parts) {
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
      for (NodeId v : g.neighbors(u)) {
        if (u < v) b.add_edge(base + u, base + v);
      }
    }
    base += g.num_nodes();
  }
  return b.build();
}

Graph add_random_edges(const Graph& g, std::uint64_t count,
                       std::uint64_t seed) {
  Xoshiro256 rng(seed);
  GraphBuilder b(g.num_nodes());
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (NodeId v : g.neighbors(u)) {
      if (u < v) b.add_edge(u, v);
    }
  }
  const NodeId n = g.num_nodes();
  std::uint64_t added = 0;
  std::uint64_t attempts = 0;
  while (added < count && attempts < count * 20 + 100) {
    ++attempts;
    const auto u = static_cast<NodeId>(rng.next_below(n));
    const auto v = static_cast<NodeId>(rng.next_below(n));
    if (u == v || g.has_edge(u, v)) continue;
    b.add_edge(u, v);
    ++added;
  }
  return b.build();
}

Graph remove_random_edges(const Graph& g, std::uint64_t count,
                          std::uint64_t seed) {
  // Collect the undirected edge list, drop a random sample of it.
  std::vector<Edge> edges;
  edges.reserve(g.num_edges());
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (NodeId v : g.neighbors(u)) {
      if (u < v) edges.push_back({u, v});
    }
  }
  KCORE_CHECK_MSG(count <= edges.size(),
                  "cannot remove " << count << " of " << edges.size()
                                   << " edges");
  Xoshiro256 rng(seed);
  util::shuffle(edges, rng);
  edges.resize(edges.size() - count);
  GraphBuilder b(g.num_nodes());
  for (const Edge& e : edges) b.add_edge(e.u, e.v);
  return b.build();
}

Graph attach_paths(const Graph& g, NodeId num_paths, NodeId path_len,
                   std::uint64_t seed) {
  KCORE_CHECK_MSG(path_len >= 1, "path_len must be >= 1");
  KCORE_CHECK_MSG(g.num_nodes() >= 1, "cannot attach to empty graph");
  Xoshiro256 rng(seed);
  const NodeId base = g.num_nodes();
  GraphBuilder b(base + num_paths * path_len);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (NodeId v : g.neighbors(u)) {
      if (u < v) b.add_edge(u, v);
    }
  }
  for (NodeId p = 0; p < num_paths; ++p) {
    const auto anchor = static_cast<NodeId>(rng.next_below(g.num_nodes()));
    NodeId prev = anchor;
    for (NodeId i = 0; i < path_len; ++i) {
      const NodeId fresh = base + p * path_len + i;
      b.add_edge(prev, fresh);
      prev = fresh;
    }
  }
  return b.build();
}

Graph plant_dense_core(const Graph& g, NodeId core_size, NodeId core_degree,
                       std::uint64_t seed) {
  KCORE_CHECK_MSG(core_size <= g.num_nodes(),
                  "core_size exceeds graph size");
  KCORE_CHECK_MSG(core_degree % 2 == 0 && core_degree < core_size,
                  "core_degree must be even and < core_size");
  Xoshiro256 rng(seed);
  const auto members =
      util::sample_without_replacement(g.num_nodes(), core_size, rng);
  GraphBuilder b(g.num_nodes());
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (NodeId v : g.neighbors(u)) {
      if (u < v) b.add_edge(u, v);
    }
  }
  for (NodeId i = 0; i < core_size; ++i) {
    for (NodeId o = 1; o <= core_degree / 2; ++o) {
      b.add_edge(members[i], members[(i + o) % core_size]);
    }
  }
  return b.build();
}

Graph relabel_random(const Graph& g, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  const auto perm = util::random_permutation(g.num_nodes(), rng);
  GraphBuilder b(g.num_nodes());
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (NodeId v : g.neighbors(u)) {
      if (u < v) b.add_edge(perm[u], perm[v]);
    }
  }
  return b.build();
}

Graph connect_components(const Graph& g, std::uint64_t seed) {
  const auto comps = connected_components(g);
  if (comps.num_components <= 1) return g;
  Xoshiro256 rng(seed);
  // Pick one representative per component, bridge everything to comp 0.
  std::vector<std::vector<NodeId>> members(comps.num_components);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    members[comps.component_of[u]].push_back(u);
  }
  GraphBuilder b(g.num_nodes());
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (NodeId v : g.neighbors(u)) {
      if (u < v) b.add_edge(u, v);
    }
  }
  for (std::size_t c = 1; c < members.size(); ++c) {
    const NodeId a = members[0][rng.next_below(members[0].size())];
    const NodeId z = members[c][rng.next_below(members[c].size())];
    b.add_edge(a, z);
  }
  return b.build();
}

}  // namespace kcore::graph::gen
