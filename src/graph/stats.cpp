#include "graph/stats.h"

#include <algorithm>

#include "util/rng.h"

namespace kcore::graph {

Components connected_components(const Graph& g) {
  const NodeId n = g.num_nodes();
  Components result;
  result.component_of.assign(n, kInvalidNode);
  std::vector<NodeId> queue;
  std::vector<std::size_t> sizes;
  for (NodeId start = 0; start < n; ++start) {
    if (result.component_of[start] != kInvalidNode) continue;
    const auto label = static_cast<NodeId>(sizes.size());
    sizes.push_back(0);
    queue.clear();
    queue.push_back(start);
    result.component_of[start] = label;
    std::size_t head = 0;
    while (head < queue.size()) {
      const NodeId u = queue[head++];
      ++sizes.back();
      for (NodeId v : g.neighbors(u)) {
        if (result.component_of[v] == kInvalidNode) {
          result.component_of[v] = label;
          queue.push_back(v);
        }
      }
    }
  }
  result.num_components = sizes.size();
  result.largest_size =
      sizes.empty() ? 0 : *std::max_element(sizes.begin(), sizes.end());
  return result;
}

std::vector<std::uint32_t> bfs_distances(const Graph& g, NodeId source) {
  KCORE_CHECK_MSG(source < g.num_nodes(), "BFS source out of range");
  std::vector<std::uint32_t> dist(g.num_nodes(), kUnreachable);
  std::vector<NodeId> queue;
  queue.push_back(source);
  dist[source] = 0;
  std::size_t head = 0;
  while (head < queue.size()) {
    const NodeId u = queue[head++];
    for (NodeId v : g.neighbors(u)) {
      if (dist[v] == kUnreachable) {
        dist[v] = dist[u] + 1;
        queue.push_back(v);
      }
    }
  }
  return dist;
}

std::uint32_t eccentricity(const Graph& g, NodeId source) {
  const auto dist = bfs_distances(g, source);
  std::uint32_t ecc = 0;
  for (std::uint32_t d : dist) {
    if (d != kUnreachable) ecc = std::max(ecc, d);
  }
  return ecc;
}

std::uint32_t exact_diameter(const Graph& g) {
  const NodeId n = g.num_nodes();
  if (n == 0) return 0;
  const auto comps = connected_components(g);
  // Restrict to the largest component (paper datasets are dominated by one).
  NodeId largest_label = 0;
  {
    std::vector<std::size_t> sizes(comps.num_components, 0);
    for (NodeId u = 0; u < n; ++u) ++sizes[comps.component_of[u]];
    largest_label = static_cast<NodeId>(std::distance(
        sizes.begin(), std::max_element(sizes.begin(), sizes.end())));
  }
  std::uint32_t best = 0;
  for (NodeId u = 0; u < n; ++u) {
    if (comps.component_of[u] != largest_label) continue;
    best = std::max(best, eccentricity(g, u));
  }
  return best;
}

std::uint32_t diameter_lower_bound(const Graph& g, std::uint64_t seed,
                                   int sweeps) {
  const NodeId n = g.num_nodes();
  if (n == 0) return 0;
  util::Xoshiro256 rng(seed);
  std::uint32_t best = 0;
  for (int s = 0; s < sweeps; ++s) {
    const auto start = static_cast<NodeId>(rng.next_below(n));
    auto dist = bfs_distances(g, start);
    // Farthest reachable node from the random start...
    NodeId far = start;
    std::uint32_t far_d = 0;
    for (NodeId u = 0; u < n; ++u) {
      if (dist[u] != kUnreachable && dist[u] > far_d) {
        far_d = dist[u];
        far = u;
      }
    }
    // ...then its eccentricity is a diameter lower bound.
    best = std::max(best, eccentricity(g, far));
  }
  return best;
}

DegreeSummary degree_summary(const Graph& g) {
  DegreeSummary s;
  const NodeId n = g.num_nodes();
  if (n == 0) return s;
  s.min = g.degree(0);
  for (NodeId u = 0; u < n; ++u) {
    const NodeId d = g.degree(u);
    s.min = std::min(s.min, d);
    s.max = std::max(s.max, d);
  }
  for (NodeId u = 0; u < n; ++u) {
    if (g.degree(u) == s.min) ++s.num_min_degree_nodes;
  }
  s.avg = g.average_degree();
  return s;
}

}  // namespace kcore::graph
