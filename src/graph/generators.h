// Graph generators.
//
// Two groups:
//  * deterministic families with analytically known k-core structure,
//    used as ground truth in tests (cliques, circulants, complete
//    bipartite, grids, chains) plus the paper's §4.2 worst-case graph;
//  * random families (Erdős–Rényi, Barabási–Albert, R-MAT,
//    Watts–Strogatz, random-regular) and composite operations used by
//    src/eval to synthesize stand-ins for the paper's SNAP datasets.
//
// All random generators are pure functions of their parameters and seed.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.h"

namespace kcore::graph::gen {

// ---------------------------------------------------------------------------
// Deterministic families
// ---------------------------------------------------------------------------

/// Path 0-1-...-(n-1). Coreness 1 everywhere (n >= 2).
[[nodiscard]] Graph chain(NodeId n);

/// Cycle on n >= 3 nodes. Coreness 2 everywhere.
[[nodiscard]] Graph cycle(NodeId n);

/// Complete graph K_n. Coreness n-1 everywhere.
[[nodiscard]] Graph clique(NodeId n);

/// Star with one hub and n-1 leaves. Coreness 1 everywhere (n >= 2).
[[nodiscard]] Graph star(NodeId n);

/// Complete bipartite K_{a,b}. Coreness min(a,b) everywhere.
[[nodiscard]] Graph complete_bipartite(NodeId a, NodeId b);

/// rows x cols 4-neighbor lattice. Coreness 2 everywhere for rows,cols >= 2.
[[nodiscard]] Graph grid(NodeId rows, NodeId cols);

/// Circulant graph: i ~ i +/- o (mod n) for each offset o. With offsets
/// 1..d/2 this is the canonical d-regular graph: coreness d everywhere.
[[nodiscard]] Graph circulant(NodeId n, std::span<const NodeId> offsets);

/// Convenience: circulant with offsets 1..degree/2 (degree must be even,
/// degree < n). Exactly degree-regular.
[[nodiscard]] Graph ring_lattice(NodeId n, NodeId degree);

/// Disjoint cliques of the given sizes; node ids are assigned consecutively
/// per clique. Coreness of a node in a clique of size s is s-1. This is the
/// simplest construction with fully known, heterogeneous coreness.
[[nodiscard]] Graph disjoint_cliques(std::span<const NodeId> sizes);

/// The worst-case graph of §4.2 / Figure 3 (n >= 5): a polygon with node n
/// as hub. Under synchronous delivery the one-to-one algorithm needs
/// exactly n-1 rounds, while the diameter stays 3.
///
/// Construction (paper's 1-based numbering): node N adjacent to all nodes
/// except N-3; node i adjacent to i+1 for i = 1..N-2; node N-3 adjacent to
/// N-1. Coreness is 2 everywhere except node 1 (coreness 1)... computed by
/// the baseline in tests rather than asserted here.
[[nodiscard]] Graph montresor_worst_case(NodeId n);

// ---------------------------------------------------------------------------
// Random families
// ---------------------------------------------------------------------------

/// G(n, m): exactly m distinct edges chosen uniformly among all pairs
/// (self-loops excluded). Requires m <= n*(n-1)/2.
[[nodiscard]] Graph erdos_renyi_gnm(NodeId n, std::uint64_t m,
                                    std::uint64_t seed);

/// Barabási–Albert preferential attachment: start from a clique on
/// edges_per_node+1 nodes; each arriving node attaches to edges_per_node
/// distinct existing nodes chosen proportionally to degree.
[[nodiscard]] Graph barabasi_albert(NodeId n, NodeId edges_per_node,
                                    std::uint64_t seed);

/// R-MAT recursive-quadrant generator over n = 2^scale nodes with the
/// given quadrant probabilities (a+b+c+d must sum to ~1). Produces the
/// skewed, hub-dominated degree profile typical of web graphs. Node ids
/// are randomly relabeled so id order carries no structure.
struct RmatParams {
  std::uint32_t scale = 16;     // n = 2^scale
  double edge_factor = 8.0;     // m = edge_factor * n
  double a = 0.57, b = 0.19, c = 0.19, d = 0.05;
};
[[nodiscard]] Graph rmat(const RmatParams& params, std::uint64_t seed);

/// Watts–Strogatz small world: ring lattice of even degree k, each edge
/// rewired with probability beta.
[[nodiscard]] Graph watts_strogatz(NodeId n, NodeId k, double beta,
                                   std::uint64_t seed);

/// Random d-regular graph via the configuration model with double-edge-
/// swap repair of self-loops/duplicates (n*d must be even; d < n).
/// The result is exactly d-regular; throws if repair cannot converge
/// (only possible for adversarially dense parameters).
[[nodiscard]] Graph random_regular(NodeId n, NodeId d, std::uint64_t seed);

/// Affiliation (overlapping-groups) model for collaboration networks:
/// each of n nodes joins `memberships` of the `num_groups` groups chosen
/// uniformly; every group becomes a clique. Mirrors co-authorship
/// structure (CA-AstroPh / CA-CondMat): dense overlapping cliques and a
/// heavy clustering coefficient.
[[nodiscard]] Graph affiliation(NodeId n, NodeId num_groups,
                                NodeId memberships, std::uint64_t seed);

// ---------------------------------------------------------------------------
// Composite operations
// ---------------------------------------------------------------------------

/// Disjoint union; node ids of parts[i] are shifted past parts[0..i-1].
[[nodiscard]] Graph disjoint_union(std::span<const Graph> parts);

/// Add `count` extra uniformly random edges (duplicates ignored).
[[nodiscard]] Graph add_random_edges(const Graph& g, std::uint64_t count,
                                     std::uint64_t seed);

/// Delete `count` uniformly random edges (without isolating the graph on
/// purpose — components may split; callers wanting connectivity should
/// follow with connect_components). Used to roughen regular structures,
/// e.g. turning a grid into a road-network-like partial mesh.
[[nodiscard]] Graph remove_random_edges(const Graph& g, std::uint64_t count,
                                        std::uint64_t seed);

/// Attach `num_paths` fresh paths of `path_len` new nodes each; every path
/// is anchored at a uniformly random existing node. Models the long
/// "tendrils" that give web crawls their extreme diameter.
[[nodiscard]] Graph attach_paths(const Graph& g, NodeId num_paths,
                                 NodeId path_len, std::uint64_t seed);

/// Overlay a ring_lattice(core_degree) on `core_size` randomly chosen
/// nodes, planting a (core_degree)-core among them. Used to push kmax of a
/// synthetic dataset toward its paper counterpart.
[[nodiscard]] Graph plant_dense_core(const Graph& g, NodeId core_size,
                                     NodeId core_degree, std::uint64_t seed);

/// Randomly relabel node ids (useful to destroy generator artifacts that
/// correlate id order with structure).
[[nodiscard]] Graph relabel_random(const Graph& g, std::uint64_t seed);

/// Connect all components by adding one edge between a random node of each
/// non-first component and a random node of the first.
[[nodiscard]] Graph connect_components(const Graph& g, std::uint64_t seed);

}  // namespace kcore::graph::gen
