// Structural graph statistics: components, BFS, diameter, degree summary.
//
// These feed the left half of the paper's Table 1 (|V|, |E|, diameter,
// max degree) and are reused by tests and dataset profiling.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace kcore::graph {

/// Distance value for unreachable nodes in BFS results.
inline constexpr std::uint32_t kUnreachable = static_cast<std::uint32_t>(-1);

/// Connected-components labeling.
struct Components {
  std::vector<NodeId> component_of;  // per node, in [0, num_components)
  std::size_t num_components = 0;
  std::size_t largest_size = 0;
};

/// Label components with BFS; O(N + M).
[[nodiscard]] Components connected_components(const Graph& g);

/// Single-source BFS distances (kUnreachable where not reachable).
[[nodiscard]] std::vector<std::uint32_t> bfs_distances(const Graph& g,
                                                       NodeId source);

/// Eccentricity of `source` within its component (max BFS distance).
[[nodiscard]] std::uint32_t eccentricity(const Graph& g, NodeId source);

/// Exact diameter of the largest component by running BFS from every node
/// of that component. O(N * (N + M)) — intended for graphs up to a few
/// thousand nodes (tests, small examples).
[[nodiscard]] std::uint32_t exact_diameter(const Graph& g);

/// Double-sweep lower bound on the diameter: BFS from `sweeps` random
/// sources, then BFS again from the farthest node found. Exact on trees,
/// excellent in practice on real-world graphs; O(sweeps * (N + M)).
[[nodiscard]] std::uint32_t diameter_lower_bound(const Graph& g,
                                                 std::uint64_t seed,
                                                 int sweeps = 4);

/// Degree summary for reporting.
struct DegreeSummary {
  NodeId min = 0;
  NodeId max = 0;
  double avg = 0.0;
  std::size_t num_min_degree_nodes = 0;  // K of Corollary 1
};

[[nodiscard]] DegreeSummary degree_summary(const Graph& g);

}  // namespace kcore::graph
