// Immutable undirected graph in Compressed Sparse Row (CSR) form.
//
// This is the substrate every other module builds on. Graphs are simple
// (no self-loops, no parallel edges) and undirected; an undirected edge
// {u,v} is stored as the two directed arcs u->v and v->u, matching the
// paper's setup ("Undirected graphs have been transformed in directed
// graphs by considering both directions"). Adjacency lists are sorted,
// enabling O(log d) membership tests.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/check.h"

namespace kcore::graph {

/// Node identifier: dense indices in [0, num_nodes).
using NodeId = std::uint32_t;

/// Sentinel for "no node".
inline constexpr NodeId kInvalidNode = static_cast<NodeId>(-1);

/// An undirected edge; orientation of the pair carries no meaning.
struct Edge {
  NodeId u = 0;
  NodeId v = 0;

  friend bool operator==(const Edge&, const Edge&) = default;
};

class GraphBuilder;

/// Immutable CSR graph. Construct through GraphBuilder or from_edges().
class Graph {
 public:
  /// Empty graph (0 nodes, 0 edges).
  Graph() : offsets_(1, 0) {}

  /// Build from an edge list over nodes [0, num_nodes). Self-loops are
  /// dropped and duplicate edges collapsed; endpoints must be < num_nodes.
  [[nodiscard]] static Graph from_edges(NodeId num_nodes,
                                        std::span<const Edge> edges);

  [[nodiscard]] NodeId num_nodes() const noexcept {
    return static_cast<NodeId>(offsets_.size() - 1);
  }

  /// Number of undirected edges M.
  [[nodiscard]] std::uint64_t num_edges() const noexcept {
    return adjacency_.size() / 2;
  }

  /// Number of directed arcs (= 2M).
  [[nodiscard]] std::uint64_t num_arcs() const noexcept {
    return adjacency_.size();
  }

  /// Sorted neighbors of u.
  [[nodiscard]] std::span<const NodeId> neighbors(NodeId u) const {
    KCORE_DCHECK(u < num_nodes());
    return {adjacency_.data() + offsets_[u],
            adjacency_.data() + offsets_[u + 1]};
  }

  [[nodiscard]] NodeId degree(NodeId u) const {
    KCORE_DCHECK(u < num_nodes());
    return static_cast<NodeId>(offsets_[u + 1] - offsets_[u]);
  }

  /// O(log degree(u)) membership test.
  [[nodiscard]] bool has_edge(NodeId u, NodeId v) const;

  /// Smallest node degree (0 for the empty graph).
  [[nodiscard]] NodeId min_degree() const noexcept;

  /// Largest node degree (0 for the empty graph).
  [[nodiscard]] NodeId max_degree() const noexcept;

  /// 2M / N; 0 for the empty graph.
  [[nodiscard]] double average_degree() const noexcept;

  /// Structural equality (same node count and adjacency).
  friend bool operator==(const Graph&, const Graph&) = default;

 private:
  friend class GraphBuilder;

  std::vector<std::uint64_t> offsets_;  // size num_nodes + 1
  std::vector<NodeId> adjacency_;       // size 2M, sorted per node
};

/// Incremental edge-list accumulator producing a Graph.
///
/// The builder tolerates duplicate edges and self-loops in its input
/// (generators and file loaders both produce them naturally); build()
/// canonicalizes. Node count grows on demand via ensure_node().
class GraphBuilder {
 public:
  explicit GraphBuilder(NodeId num_nodes = 0) : num_nodes_(num_nodes) {}

  /// Make sure node ids [0, n) exist.
  void ensure_node(NodeId n) {
    if (n >= num_nodes_) num_nodes_ = n + 1;
  }

  /// Record an undirected edge; endpoints are created as needed.
  void add_edge(NodeId u, NodeId v) {
    ensure_node(u);
    ensure_node(v);
    edges_.push_back({u, v});
  }

  /// Edges recorded so far (including duplicates / self-loops).
  [[nodiscard]] std::size_t num_edges_added() const noexcept {
    return edges_.size();
  }

  [[nodiscard]] NodeId num_nodes() const noexcept { return num_nodes_; }

  /// Reserve capacity for e edges (optimization only).
  void reserve(std::size_t e) { edges_.reserve(e); }

  /// Produce the canonical immutable graph. The builder is left empty.
  [[nodiscard]] Graph build();

 private:
  NodeId num_nodes_ = 0;
  std::vector<Edge> edges_;
};

}  // namespace kcore::graph
