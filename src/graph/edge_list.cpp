#include "graph/edge_list.h"

#include <fstream>
#include <sstream>
#include <unordered_map>

#include "util/check.h"

namespace kcore::graph {
namespace {

// Environmental failures (unreadable files, malformed data) surface as
// util::IoError: one user-facing line naming the source and the
// offending line number, which CLIs print verbatim and exit — not a
// CheckError stack-of-context meant for developers.
[[noreturn]] void throw_parse_error(const std::string& source,
                                    std::size_t line_no,
                                    const std::string& message) {
  throw util::IoError(source + " line " + std::to_string(line_no) + ": " +
                      message);
}

}  // namespace

LoadedGraph read_edge_list(std::istream& in, const std::string& source) {
  std::unordered_map<std::uint64_t, NodeId> dense_of;
  std::vector<std::uint64_t> original_ids;
  GraphBuilder builder;

  auto intern = [&](std::uint64_t file_id) -> NodeId {
    auto [it, inserted] =
        dense_of.try_emplace(file_id, static_cast<NodeId>(original_ids.size()));
    if (inserted) original_ids.push_back(file_id);
    return it->second;
  };

  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    // Strip leading whitespace to classify the line.
    std::size_t start = line.find_first_not_of(" \t\r");
    if (start == std::string::npos) continue;               // blank
    if (line[start] == '#' || line[start] == '%') continue;  // comment
    std::istringstream fields(line.substr(start));
    std::uint64_t a = 0;
    std::uint64_t b = 0;
    if (!(fields >> a >> b)) {
      throw_parse_error(source, line_no,
                        "malformed edge (expected 'u v'): '" + line + "'");
    }
    // Intern in reading order (argument evaluation order is unspecified).
    const NodeId ua = intern(a);
    const NodeId ub = intern(b);
    builder.add_edge(ua, ub);
  }
  // ensure isolated trailing ids (none possible from pair format) — but the
  // builder may have fewer nodes than interned ids if the last interned id
  // had the highest number; ensure_node covers all interned ids.
  builder.ensure_node(static_cast<NodeId>(original_ids.size() == 0
                                              ? 0
                                              : original_ids.size() - 1));
  return {builder.build(), std::move(original_ids)};
}

LoadedGraph read_edge_list_file(const std::string& path) {
  std::ifstream in(path);
  if (!in.good()) {
    throw util::IoError(path + ": cannot open edge list file");
  }
  return read_edge_list(in, path);
}

void write_edge_list(std::ostream& out, const Graph& g) {
  out << "# kcore-dist edge list\n";
  out << "# nodes " << g.num_nodes() << " edges " << g.num_edges() << "\n";
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (NodeId v : g.neighbors(u)) {
      if (u < v) out << u << ' ' << v << '\n';
    }
  }
}

void write_edge_list_file(const std::string& path, const Graph& g) {
  std::ofstream out(path);
  if (!out.good()) throw util::IoError(path + ": cannot open for writing");
  write_edge_list(out, g);
  out.flush();
  if (!out.good()) throw util::IoError(path + ": write failed");
}

EdgeStream read_edge_stream(std::istream& in, const std::string& source) {
  EdgeStream stream;
  std::string line;
  std::size_t line_no = 0;
  std::uint64_t last_time = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const std::size_t start = line.find_first_not_of(" \t\r");
    if (start == std::string::npos) continue;                // blank
    if (line[start] == '#' || line[start] == '%') continue;  // comment
    std::istringstream fields(line.substr(start));
    std::uint64_t t = 0;
    std::string op;
    std::uint64_t a = 0;
    std::uint64_t b = 0;
    if (!(fields >> t >> op >> a >> b)) {
      throw_parse_error(source, line_no,
                        "malformed stream event (expected 't op u v'): '" +
                            line + "'");
    }
    if (op != "+" && op != "-") {
      throw_parse_error(source, line_no,
                        "unknown op '" + op + "' (expected '+' or '-')");
    }
    if (!stream.events.empty() && t < last_time) {
      throw_parse_error(source, line_no,
                        "timestamp goes backwards (" + std::to_string(t) +
                            " after " + std::to_string(last_time) + ")");
    }
    if (a > UINT32_MAX || b > UINT32_MAX) {
      throw_parse_error(source, line_no, "node id out of 32-bit range");
    }
    last_time = t;
    TimedEdgeUpdate event;
    event.time = t;
    event.update.op = op == "+" ? EdgeOp::kInsert : EdgeOp::kRemove;
    event.update.u = static_cast<NodeId>(a);
    event.update.v = static_cast<NodeId>(b);
    stream.events.push_back(event);
  }
  return stream;
}

EdgeStream read_edge_stream_file(const std::string& path) {
  std::ifstream in(path);
  if (!in.good()) {
    throw util::IoError(path + ": cannot open edge stream file");
  }
  return read_edge_stream(in, path);
}

void write_edge_stream(std::ostream& out, const EdgeStream& stream) {
  out << "# kcore-dist edge stream (t op u v)\n";
  out << "# events " << stream.events.size() << "\n";
  for (const TimedEdgeUpdate& event : stream.events) {
    out << event.time << ' '
        << (event.update.op == EdgeOp::kInsert ? '+' : '-') << ' '
        << event.update.u << ' ' << event.update.v << '\n';
  }
}

void write_edge_stream_file(const std::string& path, const EdgeStream& stream) {
  std::ofstream out(path);
  if (!out.good()) throw util::IoError(path + ": cannot open for writing");
  write_edge_stream(out, stream);
  out.flush();
  if (!out.good()) throw util::IoError(path + ": write failed");
}

std::vector<EdgeUpdateBatch> batch_by_window(const EdgeStream& stream,
                                             std::uint64_t window) {
  std::vector<EdgeUpdateBatch> batches;
  const std::size_t count = stream.events.size();
  std::size_t i = 0;
  while (i < count) {
    const std::uint64_t t = stream.events[i].time;
    EdgeUpdateBatch batch;
    if (window == 0) {
      batch.t_begin = t;
      batch.t_end = t + 1;
    } else {
      // Anchor windows at the FIRST event's timestamp so a stream starting
      // at t=1000 doesn't open with hundreds of empty windows.
      const std::uint64_t t0 = stream.events.front().time;
      const std::uint64_t index = (t - t0) / window;
      batch.t_begin = t0 + index * window;
      batch.t_end = batch.t_begin + window;
    }
    while (i < count && stream.events[i].time < batch.t_end) {
      batch.updates.push_back(stream.events[i].update);
      ++i;
    }
    batches.push_back(std::move(batch));
  }
  return batches;
}

}  // namespace kcore::graph
