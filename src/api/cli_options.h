// Shared command-line surface for core::RunOptions.
//
// Every binary that drives a decomposition (tools/kcore_cli, benches,
// examples) accepts the same flag vocabulary; this parser is the single
// place that maps flags onto the shared option struct, so a new knob
// lands everywhere at once:
//
//   --mode sync|cycle          delivery semantics (sim::DeliveryMode)
//   --seed S                   RNG seed
//   --max-rounds N             hard round cap (0 = automatic bound)
//   --hosts N                  hosts (one-to-many) / workers (bsp)
//   --threads N                worker threads (one-to-many-par, bsp-par,
//                              bsp-async); 0 = one per hardware thread
//   --sched lifo|delta|bound   bsp-async scheduling policy (pop order of
//                              the dirty-vertex priority pool)
//   --assignment modulo|block|random|hash   node-to-host policy (§3.2.2)
//   --comm broadcast|point-to-point         one-to-many policy (§3.2.1)
//   --max-extra-delay D        fault plan: extra delivery delay in rounds
//   --dup-prob P               fault plan: duplication probability
//   --no-targeted-send         disable the §3.1.2 optimization
//   --metrics                  per-worker counter/histogram registry (obs)
//   --sample-period MS         convergence sampler period, 0 = off
//   --trace-capacity N         per-worker trace ring capacity (events)
#pragma once

#include "core/run_options.h"
#include "util/args.h"

namespace kcore::api {

/// Parse the RunOptions flags out of `args`, starting from `defaults`.
/// Throws util::CheckError with an actionable message on an unparsable
/// value (listing the accepted names for enum flags).
[[nodiscard]] core::RunOptions run_options_from_args(
    const util::Args& args, const core::RunOptions& defaults = {});

/// The flag reference above, formatted for usage() blocks.
[[nodiscard]] const char* run_options_flag_help();

}  // namespace kcore::api
