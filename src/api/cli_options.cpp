#include "api/cli_options.h"

#include <limits>

#include "util/check.h"

namespace kcore::api {

namespace {

/// A non-negative integer flag, bounds-checked BEFORE the unsigned cast —
/// `--hosts -1` must die with a message naming the flag, not wrap to 4e9
/// and fail deep inside a protocol runner.
std::int64_t get_checked(const util::Args& args, const char* name,
                         std::int64_t fallback, std::int64_t max) {
  const std::int64_t value = args.get_int(name, fallback);
  KCORE_CHECK_MSG(value >= 0 && value <= max,
                  "--" << name << " must be in [0, " << max << "], got "
                       << value);
  return value;
}

}  // namespace

core::RunOptions run_options_from_args(const util::Args& args,
                                       const core::RunOptions& defaults) {
  core::RunOptions options = defaults;
  if (const auto mode = args.get("mode")) {
    const auto parsed = core::parse_delivery_mode(*mode);
    KCORE_CHECK_MSG(parsed.has_value(),
                    "--mode '" << *mode << "' is not a delivery mode; "
                               << "accepted: sync, cycle");
    options.mode = *parsed;
  }
  constexpr auto kMaxI64 = std::numeric_limits<std::int64_t>::max();
  options.seed = static_cast<std::uint64_t>(get_checked(
      args, "seed", static_cast<std::int64_t>(defaults.seed), kMaxI64));
  options.max_rounds = static_cast<std::uint64_t>(
      get_checked(args, "max-rounds",
                  static_cast<std::int64_t>(defaults.max_rounds), kMaxI64));
  options.num_hosts = static_cast<sim::HostId>(get_checked(
      args, "hosts", static_cast<std::int64_t>(defaults.num_hosts),
      std::numeric_limits<sim::HostId>::max()));
  options.threads = static_cast<unsigned>(get_checked(
      args, "threads", static_cast<std::int64_t>(defaults.threads), 4096));
  if (const auto assignment = args.get("assignment")) {
    const auto parsed = core::parse_assignment_policy(*assignment);
    KCORE_CHECK_MSG(parsed.has_value(),
                    "--assignment '" << *assignment
                                     << "' is not an assignment policy; "
                                     << "accepted: modulo, block, random, "
                                     << "hash");
    options.assignment = *parsed;
  }
  if (const auto sched = args.get("sched")) {
    const auto parsed = core::parse_sched_policy(*sched);
    KCORE_CHECK_MSG(parsed.has_value(),
                    "--sched '" << *sched << "' is not a scheduling policy; "
                                << "accepted: lifo, delta, bound");
    options.sched = *parsed;
  }
  if (const auto comm = args.get("comm")) {
    const auto parsed = core::parse_comm_policy(*comm);
    KCORE_CHECK_MSG(parsed.has_value(),
                    "--comm '" << *comm << "' is not a comm policy; "
                               << "accepted: broadcast, point-to-point");
    options.comm = *parsed;
  }
  options.faults.max_extra_delay = static_cast<std::uint32_t>(get_checked(
      args, "max-extra-delay",
      static_cast<std::int64_t>(defaults.faults.max_extra_delay),
      std::numeric_limits<std::uint32_t>::max()));
  options.faults.duplicate_probability =
      args.get_double("dup-prob", defaults.faults.duplicate_probability);
  if (args.has("no-targeted-send")) options.targeted_send = false;
  // Telemetry (obs/options.h). --trace itself is a tool-level flag (it
  // names an output file); the value-bearing obs knobs live here so
  // every binary shares them.
  if (args.has("metrics")) options.obs.metrics = true;
  options.obs.sample_period_ms =
      args.get_double("sample-period", defaults.obs.sample_period_ms);
  options.obs.trace_capacity = static_cast<std::uint32_t>(get_checked(
      args, "trace-capacity",
      static_cast<std::int64_t>(defaults.obs.trace_capacity),
      std::numeric_limits<std::uint32_t>::max()));
  return options;
}

const char* run_options_flag_help() {
  return R"(run options (shared by every protocol; unused knobs are ignored):
  --mode sync|cycle          delivery semantics of the SIMULATED protocols
                             (default: cycle); the *-par protocols always
                             execute barrier-synchronous real rounds, and
                             bsp-async has no rounds at all
  --seed S                   RNG seed (default: 1)
  --max-rounds N             hard round cap, 0 = automatic (default: 0)
  --hosts N                  hosts / BSP workers (default: 16)
  --threads N                worker threads for the *-par and bsp-async
                             protocols (default: 0 = one per hw thread)
  --sched lifo|delta|bound   bsp-async dirty-vertex pop order (default:
                             lifo); delta pops the most-changed
                             neighborhood first, bound the lowest current
                             estimate (the peeling frontier)
  --assignment modulo|block|random|hash   node-to-host policy (default: modulo)
  --comm broadcast|point-to-point         one-to-many comm (default: point-to-point)
  --max-extra-delay D        fault plan: extra delivery delay in rounds
  --dup-prob P               fault plan: duplication probability in [0,1]
  --no-targeted-send         disable the paper's 3.1.2 optimization
  --metrics                  collect per-worker counters + latency
                             histograms (*-par / bsp-async runtimes only)
  --sample-period MS         background convergence sampler period in ms,
                             0 = off (default: 0)
  --trace-capacity N         per-worker trace ring capacity in events
                             (default: 16384; used with --trace))";
}

}  // namespace kcore::api
