// kcore::api::Session and kcore::api::Plan — amortized, repeatable
// execution on top of the decompose facade.
//
// The paper's pitch is one problem served by interchangeable runtimes;
// the ROADMAP's is a production system serving heavy repeated traffic.
// One-shot decompose() re-derives everything per call — assignment,
// host/shard construction, estimate-table allocation — even though none
// of it depends on anything but (graph, protocol, options). Session
// splits that out:
//
//   api::Session session(g, "one-to-many-par", options);
//   session.prepare();              // assignment + hosts + tables, once
//   for (...) auto r = session.run();  // repeatable; reports bit-identical
//                                      // to one-shot decompose()
//
// run() without prepare() prepares on demand (and bills the cost to that
// run's setup time). The parity contract — warm run() == one-shot
// decompose() on every non-timing field, with schedule-dependent extras
// excepted per Capabilities::deterministic_extras — is pinned for every
// registered protocol by tests/test_session.cpp.
//
// SERVING: a prepared Session is safe to share across threads. The
// prepared state is immutable (see PreparedProtocol's thread-safety
// contract in api/api.h); every run() leases a private per-run context,
// so N threads calling session.run() concurrently each get a report
// bit-identical to a one-shot decompose() (pinned, under TSan, by
// tests/test_serving.cpp). Lazy preparation is race-safe: runs that
// arrive while another thread prepares wait for it, and only the run
// that actually performed the preparation absorbs its cost into the
// setup accounting. bench/serving_study.cpp measures this path
// (queries/sec, tail latency) on one shared prepared graph.
//
// Plan turns repeated Sessions into declarative sweeps: the cross
// product of protocols × threads × seeds, each cell prepared once and
// run `repeats` times, with min/median/max aggregation per cell —
// independent cells optionally executed concurrently
// (PlanSpec::concurrency) over the shared graph. The CLI's `sweep`
// subcommand, bench/scaling_study and the eval drivers all ride it
// instead of hand-rolled loops.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "api/api.h"
#include "util/stats.h"

namespace kcore::api {

/// A prepared, repeatable decomposition: binds (graph, protocol,
/// options) once, derives the amortizable state in prepare(), and serves
/// any number of run() calls from it — including CONCURRENT run() calls
/// from many threads over the one shared prepared state. The graph must
/// outlive the Session.
class Session {
 public:
  /// Validates eagerly: throws util::CheckError listing every problem
  /// (same contract as decompose()).
  Session(const graph::Graph& g, std::string_view protocol,
          RunOptions options = {});
  explicit Session(const DecomposeRequest& request);

  /// Movable: the shared state lives behind a stable heap allocation
  /// that never points back into the Session object, so moving a
  /// prepared Session transfers it wholesale — runs on the destination
  /// stay bit-identical, nothing dangles. The moved-from Session is
  /// empty: prepare()/run() on it throw util::CheckError (pinned by
  /// tests/test_session.cpp's use-after-move regression), the observers
  /// below report unprepared/zero. Not movable mid-run: moving while
  /// another thread executes prepare()/run() on the same object is a
  /// data race, like any std:: container.
  Session(Session&&) noexcept = default;
  Session& operator=(Session&&) noexcept = default;

  [[nodiscard]] const std::string& protocol() const noexcept {
    return request_.protocol;
  }
  [[nodiscard]] const RunOptions& options() const noexcept {
    return request_.options;
  }
  [[nodiscard]] const graph::Graph& graph() const noexcept {
    return *request_.graph;
  }
  [[nodiscard]] const Capabilities& capabilities() const noexcept;

  /// Build the amortizable state (assignment, host/shard construction,
  /// seed orders — the one-shot runner's setup phase). Idempotent and
  /// race-safe: concurrent callers (including runs preparing on demand)
  /// serialize, one performs the derivation, the rest observe it.
  void prepare();
  [[nodiscard]] bool prepared() const noexcept;
  /// Wall-clock cost of the prepare() that built the current state
  /// (0 until prepared).
  [[nodiscard]] double prepare_ms() const noexcept;

  /// Execute one run. Warm runs (state already prepared) report only
  /// their residual setup in the phase timings; the run that triggers
  /// preparation absorbs the prepare cost, so a one-shot
  /// Session(...).run() equals decompose() in accounting too. Safe to
  /// call from any number of threads concurrently; each call executes
  /// against a private per-run context.
  [[nodiscard]] DecomposeReport run(const ProgressObserver& observer = {}) const;

  [[nodiscard]] std::uint64_t runs_completed() const noexcept;

 private:
  /// Everything mutable-under-concurrency, heap-pinned so Session moves
  /// cannot invalidate references held by in-flight state: the prepared
  /// pointer + its build cost (guarded by `mutex`, with `ready` as the
  /// lock-free fast-path flag) and the run counter.
  struct State {
    std::mutex mutex;
    std::atomic<bool> ready{false};
    std::unique_ptr<const PreparedProtocol> prepared;
    double prepare_ms = 0.0;
    std::atomic<std::uint64_t> runs_completed{0};
  };

  /// Throws util::CheckError when this Session was moved from.
  [[nodiscard]] State& state() const;
  /// Returns the prepared state, building it on first need; *prepared_cost
  /// is the prepare time to bill to this caller (0 when it was already
  /// built or another thread built it).
  [[nodiscard]] const PreparedProtocol& ensure_prepared(
      double* prepared_cost) const;

  DecomposeRequest request_;
  std::unique_ptr<State> state_;
};

// --- declarative sweeps -----------------------------------------------------

/// Axes of a sweep. Cells are the cross product protocols × threads ×
/// seeds; each cell binds one Session (prepare once) and runs it
/// `repeats` times. For a protocol whose Capabilities lack
/// consumes_threads the threads axis collapses to the base value —
/// sweeping a knob the runtime ignores would just repeat the same cell
/// (and fail validation).
struct PlanSpec {
  std::vector<std::string> protocols;
  /// RunOptions::threads values to sweep; empty = {base.threads}.
  std::vector<unsigned> threads;
  /// RunOptions::sched policies to sweep; empty = {base.sched}. Collapses
  /// to the base value for protocols without consumes_sched, like the
  /// threads axis.
  std::vector<core::SchedPolicy> scheds;
  /// RunOptions::seed values to sweep; empty = {base.seed}.
  std::vector<std::uint64_t> seeds;
  /// run() calls per cell (>= 1). The first pays prepare; the rest are
  /// warm.
  int repeats = 1;
  /// Cells executed concurrently (>= 1; 1 = the serial loop). Cells are
  /// independent Sessions over the one shared graph, so any value is
  /// result-equivalent to 1 — but per-cell wall times then include
  /// cross-cell interference, so keep 1 when the cells themselves are
  /// the timing experiment. Hooks and observer factories are serialized
  /// under a mutex, and results always come back in cells() order.
  unsigned concurrency = 1;
  /// Every other knob, shared by all cells. base.obs (telemetry) is
  /// clamped off per cell for protocols without Capabilities::
  /// consumes_obs, so a sweep mixing sequential baselines with the par
  /// family can still request metrics for the runtimes that honor them.
  RunOptions base;
};

/// Coordinates of one cell.
struct PlanCell {
  std::string protocol;
  unsigned threads = 0;
  core::SchedPolicy sched = core::SchedPolicy::kLifo;
  std::uint64_t seed = 0;
};

/// Aggregated result of one cell. wall_ms aggregates
/// DecomposeReport::elapsed_ms over all repeats; warm_wall_ms drops the
/// first (prepare-bearing) run — count 0 when repeats == 1. run_ms
/// aggregates the parallel phase where the extras carry one, else the
/// whole elapsed time.
struct PlanCellResult {
  PlanCell cell;
  int repeats = 0;
  double prepare_ms = 0.0;
  double first_wall_ms = 0.0;
  util::SampleSummary wall_ms;
  util::SampleSummary warm_wall_ms;
  util::SampleSummary run_ms;
  /// Full report of the final repeat (coreness, traffic, extras).
  DecomposeReport last;
};

/// Per-report hook: called after every run with the cell coordinates,
/// the 0-based repeat index, and the full report. Experiment drivers
/// aggregate custom metrics here instead of hand-rolling the loops.
using PlanReportHook = std::function<void(
    const PlanCell&, int repeat, const DecomposeReport&)>;

/// Per-run observer factory: invoked before each run to build the
/// ProgressObserver streamed through that run (empty = no streaming).
/// Lets round-instrumented experiments (error evolution, convergence
/// checkpoints) ride a Plan instead of hand-rolling their run loops.
using PlanObserverFactory =
    std::function<ProgressObserver(const PlanCell&, int repeat)>;

/// A declarative sweep executor over one graph.
class Plan {
 public:
  /// The graph must outlive the Plan. Throws util::CheckError when the
  /// spec is structurally unusable (no protocols, repeats < 1).
  Plan(const graph::Graph& g, PlanSpec spec);

  /// The expanded cell list (collapse rules applied), in execution order.
  [[nodiscard]] std::vector<PlanCell> cells() const;

  /// Validation problems across every cell (api::validate per cell,
  /// deduplicated); empty means run() will not throw on validation.
  [[nodiscard]] std::vector<std::string> validate() const;

  /// Execute the sweep cell by cell. Throws on the first invalid cell
  /// (call validate() first to pre-flight).
  [[nodiscard]] std::vector<PlanCellResult> run(
      const PlanReportHook& on_report = {},
      const PlanObserverFactory& observer_factory = {});

 private:
  const graph::Graph* graph_;
  PlanSpec spec_;
};

}  // namespace kcore::api
