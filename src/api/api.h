// kcore::api — the protocol-agnostic decomposition facade.
//
// The paper defines ONE problem (k-core decomposition, Definition 1) and
// several interchangeable ways to compute it: the sequential
// Batagelj–Zaveršnik baseline [3], the §3.1 one-to-one protocol, the
// §3.2 one-to-many protocol, and the Pregel/BSP port proposed in the
// conclusion. This facade makes that interchangeability a first-class
// API, in the spirit of Pregel's "one vertex-program API, many runtimes":
//
//   api::DecomposeReport report =
//       api::decompose(g, "one-to-many", options);
//
// * One request type: DecomposeRequest = graph + protocol key +
//   core::RunOptions (the shared option set: delivery mode, seed, round
//   cap, fault plan, host count, assignment, comm policy, targeted send).
// * One report type: DecomposeReport = coreness + TrafficStats + a typed
//   variant of per-protocol extras + wall-clock timing.
// * One registry: ProtocolRegistry maps string keys ("bz", "peeling",
//   "one-to-one", "one-to-many", "bsp") to runners; new backends register
//   under a new key and every CLI flag, bench and experiment picks them
//   up by name.
// * One observer: core::ProgressObserver streams (round, estimates,
//   messages) from every round/superstep-based runtime.
//
// Everything outside src/core/ — tools, benches, examples, eval — goes
// through this header instead of including the protocol headers directly;
// the legacy run_* entry points remain for code that needs the raw
// protocol state machines.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "bsp/pregel.h"
#include "core/run_options.h"
#include "graph/graph.h"
#include "sim/engine.h"

namespace kcore::obs {
struct RunTelemetry;  // obs/obs.h — carried by shared_ptr, never inspected here
}

namespace kcore::api {

// The facade re-exports the shared option vocabulary so callers need only
// this header.
using core::AssignmentPolicy;
using core::CommPolicy;
using core::ProgressEvent;
using core::ProgressObserver;
using core::RunOptions;
using sim::DeliveryMode;
using sim::FaultPlan;
using core::SchedPolicy;
using core::parse_assignment_policy;
using core::parse_comm_policy;
using core::parse_delivery_mode;
using core::parse_sched_policy;
using core::to_string;

/// Registry keys of the built-in protocols (paper section in brackets).
inline constexpr std::string_view kProtocolBz = "bz";              // [3]
inline constexpr std::string_view kProtocolPeeling = "peeling";    // Def. 1
inline constexpr std::string_view kProtocolOneToOne = "one-to-one";    // §3.1
inline constexpr std::string_view kProtocolOneToMany = "one-to-many";  // §3.2
inline constexpr std::string_view kProtocolBsp = "bsp";            // §6 / [9]
// The real-execution family (src/par): the same protocols on actual
// worker threads instead of the round simulator. RunOptions::threads
// selects the pool size; coreness and traffic are thread-count invariant.
inline constexpr std::string_view kProtocolOneToManyPar =
    "one-to-many-par";                                       // §3.2, threaded
inline constexpr std::string_view kProtocolBspPar = "bsp-par";  // §6, threaded
// Chaotic relaxation on real threads: no rounds, no barriers — one shared
// atomic estimate table, work-stealing deques of dirty vertices, and the
// §3.3 centralized termination detector ported to shared memory. The
// paper's convergence-under-asynchrony claim, executed literally.
inline constexpr std::string_view kProtocolBspAsync = "bsp-async";  // §4/§3.3
// The live streaming service (src/live): a one-shot decompose through
// this key runs the service's initial convergence (the same chaotic
// relaxation as bsp-async, driven by the incremental repair engine);
// streaming updates flow through live::Service / `kcore stream` rather
// than the batch facade.
inline constexpr std::string_view kProtocolLive = "live";  // §4 (streaming)

/// A decomposition request: which graph, which protocol, which knobs.
/// `graph` must outlive the call.
struct DecomposeRequest {
  const graph::Graph* graph = nullptr;
  std::string protocol = std::string(kProtocolBz);
  RunOptions options;
};

// --- per-protocol extras ----------------------------------------------------
// Everything beyond (coreness, traffic) that a protocol reports, as a
// typed variant. Sequential baselines carry std::monostate.

/// One-to-one (§3.1) extras: the per-node activity profile feeding the
/// §3.3 termination-detection analysis.
struct OneToOneExtras {
  std::vector<std::uint64_t> last_send_round;
  std::vector<std::uint64_t> activity_transitions;
};

/// One-to-many (§3.2) extras: the Figure 5 overhead metric and per-host
/// profiles.
struct OneToManyExtras {
  std::uint64_t estimates_shipped_total = 0;
  double overhead_per_node = 0.0;
  std::vector<std::uint64_t> estimates_shipped_by_host;
  std::vector<std::uint64_t> last_send_round_by_host;
};

/// BSP (Pregel) extras: the framework's native statistics.
struct BspExtras {
  bsp::BspStats stats;
};

/// Real-execution extras (the src/par family): the run's threading
/// profile on top of whatever the underlying protocol reports.
struct ParExtras {
  /// Worker threads actually used (requested count clamped to shards).
  unsigned threads_used = 0;
  /// Shards the node set was split into: num_hosts for one-to-many-par,
  /// the worker count itself for bsp-par.
  sim::HostId shards = 0;
  /// Phase split of elapsed_ms: single-threaded setup (assignment, host /
  /// table construction) vs the parallel round loop. Scaling studies
  /// should compute speedup on run_ms — only it parallelizes.
  double setup_ms = 0.0;
  double run_ms = 0.0;
  /// one-to-many-par: the Figure 5 overhead numerator / metric.
  std::uint64_t estimates_shipped_total = 0;
  double overhead_per_node = 0.0;
  /// bsp-par: activation notifications that crossed a shard boundary.
  std::uint64_t cross_shard_messages = 0;
};

/// Async (chaotic-relaxation) extras: the schedule's execution profile.
/// Unlike every other protocol these numbers are NOT deterministic — they
/// depend on the actual interleaving — but the coreness in the report is
/// bit-identical to the sequential baseline regardless (pinned by
/// tests/test_async_property.cpp).
struct AsyncExtras {
  unsigned threads_used = 0;
  /// The scheduling policy the run executed under (RunOptions::sched) —
  /// the knob the relaxation count below is a function of.
  core::SchedPolicy sched = core::SchedPolicy::kLifo;
  /// Vertex recomputations executed (>= one per vertex).
  std::uint64_t relaxations = 0;
  /// Vertices taken from another worker's lane.
  std::uint64_t steals = 0;
  /// Re-activations of already-processed vertices (successful in-queue
  /// flag transitions after the initial all-dirty seeding).
  std::uint64_t re_enqueues = 0;
  /// Quiescence-detector confirmation passes.
  std::uint64_t detector_passes = 0;
  /// Relaxations resolved without running the counting kernel (no
  /// neighbor estimate below the vertex's own — the answer is its
  /// current estimate by monotonicity).
  std::uint64_t skipped_recomputes = 0;
  /// Deque probes during pops/steal sweeps — the priority pool's scan
  /// overhead (== pops under lifo, higher for the bucketed policies).
  std::uint64_t pop_scans = 0;
  /// Single-threaded setup (table + worklist seeding) vs the parallel
  /// relaxation phase; speedup studies should use run_ms.
  double setup_ms = 0.0;
  double run_ms = 0.0;
};

using ProtocolExtras =
    std::variant<std::monostate, OneToOneExtras, OneToManyExtras, BspExtras,
                 ParExtras, AsyncExtras>;

/// The unified result of a decomposition run.
///
/// `traffic` is the protocol's native TrafficStats where one exists
/// (one-to-one, one-to-many — bit-identical to the legacy run_*
/// results). The other runtimes map onto it: sequential baselines report
/// zero messages/rounds with converged=true; bsp reports supersteps as
/// rounds and delivered messages as total_messages (the full BspStats sit
/// in extras).
struct DecomposeReport {
  std::string protocol;
  std::vector<graph::NodeId> coreness;
  sim::TrafficStats traffic;
  ProtocolExtras extras;
  /// Wall-clock time of the protocol run itself (excludes validation and
  /// registry dispatch). Invariant: where the extras carry phase timings
  /// (ParExtras, AsyncExtras), elapsed_ms == setup_ms + run_ms exactly —
  /// the phases partition the elapsed time, nothing is double-counted
  /// (pinned by test_api.cpp). setup_ms covers the amortizable work this
  /// call actually performed: a warm Session::run() reports only its
  /// residual setup, a one-shot decompose() the full derivation.
  double elapsed_ms = 0.0;
  /// Harvested runtime telemetry (obs/obs.h): metrics snapshot, trace
  /// rings, convergence samples. Null unless options.obs requested some
  /// AND the protocol's Capabilities::consumes_obs — the sequential and
  /// simulated runtimes have no instrumented worker loops. Shared, not
  /// unique: benches keep the last report while streaming telemetry into
  /// writers.
  std::shared_ptr<const obs::RunTelemetry> telemetry;
};

// --- capabilities -----------------------------------------------------------

/// How a protocol executes — the spine of the capability descriptor,
/// rendered by `kcore protocols` and the README table.
enum class ExecutionKind {
  kSequential,      // single-threaded in-process baseline
  kSimulated,       // sim::Engine / BSP superstep rounds (PeerSim-style)
  kThreadedRounds,  // real worker threads with barrier rounds (src/par)
  kAsync,           // real threads, no barriers (chaotic relaxation)
};

/// What a protocol can stream to a ProgressObserver.
enum class ObserverGranularity {
  kNone,      // completes silently (sequential baselines, round-free async)
  kPerRound,  // one ProgressEvent per round / superstep
};

[[nodiscard]] const char* to_string(ExecutionKind kind);
[[nodiscard]] const char* to_string(ObserverGranularity granularity);
[[nodiscard]] std::optional<ExecutionKind> parse_execution_kind(
    std::string_view name);

/// Self-describing execution profile of a protocol: how it runs, which
/// RunOptions knobs it consumes, and whether its report is a pure
/// function of (graph, options). validate() derives every per-protocol
/// rule from this descriptor — registering a backend means writing ONE
/// truthful descriptor, not extending if-chains — and the CLI/README
/// protocol tables render it.
///
/// The consumes_* flags police the "silent lie" knobs: a non-default
/// delivery mode, fault plan, comm policy or thread count aimed at a
/// protocol that does not consume it is a validation error, because the
/// report would otherwise look as if the knob had been honored.
/// Value-bearing knobs whose default is indistinguishable from intent
/// (num_hosts, seed, max_rounds) are documented but not policed, and
/// targeted_send stays unpoliced because one-to-many subsumes it by
/// design (host-level batching) rather than silently dropping it.
struct Capabilities {
  ExecutionKind execution = ExecutionKind::kSequential;
  bool consumes_delivery_mode = false;  // RunOptions::mode
  bool consumes_fault_plan = false;     // RunOptions::faults
  bool consumes_comm_policy = false;    // RunOptions::comm (§3.2.1)
  bool consumes_assignment = false;     // RunOptions::assignment (§3.2.2)
  bool consumes_hosts = false;          // RunOptions::num_hosts
  bool consumes_threads = false;        // RunOptions::threads
  bool consumes_sched = false;          // RunOptions::sched (async pool)
  bool consumes_targeted_send = false;  // §3.1.2 toggle
  bool consumes_max_rounds = false;     // RunOptions::max_rounds
  /// RunOptions::obs — the runtime threads obs::WorkerContexts through
  /// its hot loops and returns DecomposeReport::telemetry. False for the
  /// sequential/simulated family: requesting telemetry there is the same
  /// "silent lie" as a fault plan with no channel to break.
  bool consumes_obs = false;
  ObserverGranularity observer = ObserverGranularity::kNone;
  /// False only for schedule-dependent profiles (bsp-async): coreness is
  /// always deterministic, but steals/relaxation counts are not. The
  /// Session parity tests key off this flag.
  bool deterministic_extras = true;
};

/// The consumed-knob flags as stable human/CLI-facing names (e.g.
/// {"mode", "faults", "comm"}); the single source for every capability
/// table.
[[nodiscard]] std::vector<std::string_view> consumed_knobs(
    const Capabilities& capabilities);

// --- registry ---------------------------------------------------------------

/// One protocol, prepared: the amortizable derivation (assignment,
/// host/shard construction, seed orders) happened at construction time;
/// run() is repeatable and every run's report is bit-identical to a
/// one-shot decompose() of the same request (timing fields and
/// schedule-dependent extras excepted).
///
/// THREAD-SAFE BY CONTRACT: the prepared state is immutable after
/// construction and run() is const — any number of threads may call
/// run() on one shared PreparedProtocol concurrently, each call
/// executing against a private per-run context (the built-ins keep a
/// pool of contexts so sequential reuse stays allocation-free).
/// Externally registered implementations must uphold the same contract —
/// api::Session serves concurrent callers through this interface.
class PreparedProtocol {
 public:
  virtual ~PreparedProtocol() = default;

  /// Execute one run. setup-phase timings in the report cover only this
  /// run's residual setup (run-context acquisition and reset); Session
  /// adds the prepare cost to the run that triggered preparation.
  [[nodiscard]] virtual DecomposeReport run(
      const DecomposeRequest& request,
      const ProgressObserver& observer) const = 0;
};

/// String-keyed protocol registry. Keys are stable CLI-facing names;
/// registration is open — experiments and future backends can add
/// runners at startup and every facade consumer picks them up by name.
class ProtocolRegistry {
 public:
  using Runner = std::function<DecomposeReport(const DecomposeRequest&,
                                               const ProgressObserver&)>;
  using Preparer = std::function<std::unique_ptr<PreparedProtocol>(
      const DecomposeRequest&)>;

  struct Entry {
    std::string name;           // registry key, e.g. "one-to-many"
    std::string paper_section;  // e.g. "§3.2" — the protocol table's spine
    std::string summary;        // one-line human description
    Capabilities capabilities;  // drives validate() and the tables
    /// One-shot runner. Optional when `prepare` is provided (the facade
    /// then routes every call through a Session); simple external
    /// protocols can register just a Runner. Because Session serves
    /// concurrent callers, a registered Runner must tolerate concurrent
    /// invocations (pure functions of the request trivially do).
    Runner run;
    /// Prepared-execution factory backing api::Session. Optional: without
    /// it, Session::prepare() is a no-op and run() calls `run` each time
    /// (still bit-identical, nothing amortized).
    Preparer prepare;
  };

  /// The process-wide registry, with the eight built-ins pre-registered.
  [[nodiscard]] static ProtocolRegistry& instance();

  /// Register a protocol. Throws util::CheckError on a duplicate key or
  /// when neither `run` nor `prepare` is provided.
  void add(Entry entry);

  [[nodiscard]] bool contains(std::string_view name) const;

  /// Lookup by key; throws util::CheckError naming the unknown key and
  /// listing every registered one.
  [[nodiscard]] const Entry& entry(std::string_view name) const;

  /// Registered keys in registration order (built-ins first).
  [[nodiscard]] std::vector<std::string> names() const;

  [[nodiscard]] const std::vector<Entry>& entries() const noexcept {
    return entries_;
  }

 private:
  ProtocolRegistry();

  std::vector<Entry> entries_;
};

// --- entry points -----------------------------------------------------------

/// Validate a request without running it: unknown protocol, null graph,
/// out-of-range options, and knobs the chosen protocol does not consume
/// per its Capabilities descriptor (e.g. a fault plan aimed at a
/// channel-less runtime). A single data-driven pass — no per-protocol
/// branching; every rule derives from the registry's descriptors.
/// Returns every problem found; empty means the request is runnable.
[[nodiscard]] std::vector<std::string> validate(const DecomposeRequest& request);

/// Run a decomposition. Throws util::CheckError with the validate()
/// problems if the request is invalid. The observer (optional) streams
/// per-round progress from runtimes whose Capabilities::observer is
/// kPerRound; the others complete without events.
///
/// This is a thin wrapper over api::Session (see api/session.h):
/// prepare + one run. The run replays from pristine prepared state (one
/// O(N+M) copy the pre-Session one-shot path did not make — deliberate:
/// the protocol run dominates it, and one execution path keeps one-shot
/// and warm reports bit-identical by construction). Callers that
/// decompose the same (graph, protocol, options) repeatedly should hold
/// a Session and amortize the prepare itself.
[[nodiscard]] DecomposeReport decompose(const DecomposeRequest& request,
                                        const ProgressObserver& observer = {});

/// Convenience overload: decompose `g` with `protocol` under `options`.
[[nodiscard]] DecomposeReport decompose(const graph::Graph& g,
                                        std::string_view protocol,
                                        const RunOptions& options = {},
                                        const ProgressObserver& observer = {});

}  // namespace kcore::api
