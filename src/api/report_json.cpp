#include "api/report_json.h"

#include <algorithm>
#include <cstdint>
#include <ostream>
#include <variant>
#include <vector>

#include "obs/obs.h"
#include "util/json.h"

namespace kcore::api {

namespace {

void write_traffic(util::JsonWriter& w, const sim::TrafficStats& traffic) {
  w.begin_object();
  w.member("total_messages", traffic.total_messages);
  w.member("execution_time", traffic.execution_time);
  w.member("rounds_executed", traffic.rounds_executed);
  w.member("converged", traffic.converged);
  w.end_object();
}

/// Coreness as a shell-size histogram: O(kmax) output, never O(N).
void write_coreness(util::JsonWriter& w,
                    const std::vector<graph::NodeId>& coreness) {
  graph::NodeId kmax = 0;
  double sum = 0.0;
  for (const graph::NodeId k : coreness) {
    kmax = std::max(kmax, k);
    sum += static_cast<double>(k);
  }
  std::vector<std::uint64_t> shells(static_cast<std::size_t>(kmax) + 1, 0);
  for (const graph::NodeId k : coreness) ++shells[k];
  w.begin_object();
  w.member("nodes", static_cast<std::uint64_t>(coreness.size()));
  w.member("kmax", static_cast<std::uint64_t>(kmax));
  w.member("kavg",
           coreness.empty() ? 0.0 : sum / static_cast<double>(coreness.size()),
           4);
  w.key("shells").begin_array();
  for (std::size_t k = 0; k < shells.size(); ++k) {
    if (shells[k] == 0) continue;
    w.begin_array();
    w.value(static_cast<std::uint64_t>(k));
    w.value(shells[k]);
    w.end_array();
  }
  w.end_array();
  w.end_object();
}

/// The typed extras variant as a tagged object ("kind" discriminates).
/// Per-node vectors (one-to-one activity profiles) are summarized, not
/// dumped; per-host vectors are small and emitted whole.
struct ExtrasVisitor {
  util::JsonWriter& w;

  void operator()(std::monostate) const {
    w.begin_object();
    w.member("kind", "none");
    w.end_object();
  }

  void operator()(const OneToOneExtras& extras) const {
    std::uint64_t last_send = 0;
    std::uint64_t transitions = 0;
    for (const auto r : extras.last_send_round) {
      last_send = std::max(last_send, r);
    }
    for (const auto t : extras.activity_transitions) transitions += t;
    w.begin_object();
    w.member("kind", "one-to-one");
    w.member("last_send_round_max", last_send);
    w.member("activity_transitions_total", transitions);
    w.end_object();
  }

  void operator()(const OneToManyExtras& extras) const {
    w.begin_object();
    w.member("kind", "one-to-many");
    w.member("estimates_shipped_total", extras.estimates_shipped_total);
    w.member("overhead_per_node", extras.overhead_per_node, 4);
    w.key("estimates_shipped_by_host").begin_array();
    for (const auto v : extras.estimates_shipped_by_host) w.value(v);
    w.end_array();
    w.end_object();
  }

  void operator()(const BspExtras& extras) const {
    w.begin_object();
    w.member("kind", "bsp");
    w.member("supersteps", extras.stats.supersteps);
    w.member("messages_emitted", extras.stats.messages_emitted);
    w.member("messages_delivered", extras.stats.messages_delivered);
    w.member("messages_cross_worker", extras.stats.messages_cross_worker);
    w.member("converged", extras.stats.converged);
    w.end_object();
  }

  void operator()(const ParExtras& extras) const {
    w.begin_object();
    w.member("kind", "par");
    w.member("threads_used", static_cast<std::uint64_t>(extras.threads_used));
    w.member("shards", static_cast<std::uint64_t>(extras.shards));
    w.member("setup_ms", extras.setup_ms, 3);
    w.member("run_ms", extras.run_ms, 3);
    w.member("estimates_shipped_total", extras.estimates_shipped_total);
    w.member("overhead_per_node", extras.overhead_per_node, 4);
    w.member("cross_shard_messages", extras.cross_shard_messages);
    w.end_object();
  }

  void operator()(const AsyncExtras& extras) const {
    w.begin_object();
    w.member("kind", "async");
    w.member("threads_used", static_cast<std::uint64_t>(extras.threads_used));
    w.member("sched", to_string(extras.sched));
    w.member("relaxations", extras.relaxations);
    w.member("steals", extras.steals);
    w.member("re_enqueues", extras.re_enqueues);
    w.member("detector_passes", extras.detector_passes);
    w.member("skipped_recomputes", extras.skipped_recomputes);
    w.member("pop_scans", extras.pop_scans);
    w.member("setup_ms", extras.setup_ms, 3);
    w.member("run_ms", extras.run_ms, 3);
    w.end_object();
  }
};

void write_telemetry(util::JsonWriter& w, const obs::RunTelemetry& telemetry) {
  w.begin_object();
  if (telemetry.has_metrics) {
    w.key("counters").begin_object();
    for (const auto& [name, value] : telemetry.metrics.counters) {
      w.member(name, value);
    }
    w.end_object();
    w.key("histograms").begin_array();
    for (const auto& hist : telemetry.metrics.histograms) {
      w.begin_object();
      w.member("name", hist.name);
      w.member("count", hist.count);
      w.member("sum", hist.sum);
      w.member("max", hist.max);
      w.member("mean", hist.mean(), 3);
      // Nonzero buckets only, as [floor, count] pairs.
      w.key("buckets").begin_array();
      for (std::size_t i = 0; i < obs::HistogramSnapshot::kBuckets; ++i) {
        if (hist.buckets[i] == 0) continue;
        w.begin_array();
        w.value(hist.bucket_floor(i));
        w.value(hist.buckets[i]);
        w.end_array();
      }
      w.end_array();
      w.end_object();
    }
    w.end_array();
  }
  if (telemetry.has_trace) {
    // The full event stream goes to the --trace file; the report carries
    // only its shape.
    std::uint64_t events = 0;
    for (const auto& dump : telemetry.trace) events += dump.events.size();
    w.key("trace").begin_object();
    w.member("workers", static_cast<std::uint64_t>(telemetry.trace.size()));
    w.member("events", events);
    w.member("dropped", telemetry.trace_dropped);
    w.end_object();
  }
  if (telemetry.sample_period_ms > 0.0) {
    w.member("sample_period_ms", telemetry.sample_period_ms, 3);
    w.key("samples").begin_array();
    for (const obs::Sample& s : telemetry.samples) {
      w.begin_object();
      w.member("t_ms", s.t_ms, 3);
      w.member("outstanding", static_cast<std::int64_t>(s.outstanding));
      w.member("worklist_depth", s.worklist_depth);
      w.member("sum_estimates", s.sum_estimates, 1);
      w.member("round", s.round);
      w.end_object();
    }
    w.end_array();
  }
  w.end_object();
}

}  // namespace

void write_report_json(util::JsonWriter& w, const DecomposeReport& report) {
  w.begin_object();
  w.member("protocol", report.protocol);
  w.member("elapsed_ms", report.elapsed_ms, 3);
  w.key("traffic");
  write_traffic(w, report.traffic);
  w.key("extras");
  std::visit(ExtrasVisitor{w}, report.extras);
  w.key("coreness");
  write_coreness(w, report.coreness);
  if (report.telemetry) {
    w.key("telemetry");
    write_telemetry(w, *report.telemetry);
  }
  w.end_object();
}

void write_report_json(std::ostream& os, const DecomposeReport& report) {
  util::JsonWriter w(os, 2);
  write_report_json(w, report);
}

}  // namespace kcore::api
