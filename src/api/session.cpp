#include "api/session.h"

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <exception>
#include <mutex>
#include <thread>
#include <utility>

#include "util/check.h"
#include "util/clock.h"

namespace kcore::api {

namespace {

using Clock = util::SteadyClock;
using util::ms_between;

void throw_on_problems(const std::vector<std::string>& problems) {
  if (problems.empty()) return;
  std::string joined;
  for (const auto& problem : problems) {
    if (!joined.empty()) joined += "; ";
    joined += problem;
  }
  throw util::CheckError("invalid decompose request: " + joined);
}

/// Fallback for protocols registered with only a one-shot Runner:
/// nothing to amortize, every run() re-executes the runner. The Runner
/// is copied, not referenced — a later ProtocolRegistry::add() may
/// reallocate the entry vector and invalidate pointers into it.
class RunnerPrepared final : public PreparedProtocol {
 public:
  explicit RunnerPrepared(ProtocolRegistry::Runner runner)
      : runner_(std::move(runner)) {}

  DecomposeReport run(const DecomposeRequest& request,
                      const ProgressObserver& observer) const override {
    return runner_(request, observer);
  }

 private:
  const ProtocolRegistry::Runner runner_;
};

/// One cell's RunOptions: the base with the swept axes applied, and the
/// telemetry request clamped off for protocols whose Capabilities lack
/// consumes_obs. A sweep mixing instrumented and uninstrumented
/// protocols (bz baseline next to bsp-async) keeps its obs request
/// where it can be honored instead of failing validation wholesale —
/// the same collapse rule the threads/sched axes already follow.
RunOptions options_for_cell(const RunOptions& base, const PlanCell& cell) {
  RunOptions options = base;
  options.threads = cell.threads;
  options.sched = cell.sched;
  options.seed = cell.seed;
  const auto& registry = ProtocolRegistry::instance();
  if (options.obs.any() && registry.contains(cell.protocol) &&
      !registry.entry(cell.protocol).capabilities.consumes_obs) {
    options.obs = obs::ObsOptions{};
  }
  return options;
}

}  // namespace

Session::Session(const graph::Graph& g, std::string_view protocol,
                 RunOptions options)
    : state_(std::make_unique<State>()) {
  request_.graph = &g;
  request_.protocol = std::string(protocol);
  request_.options = std::move(options);
  throw_on_problems(validate(request_));
}

Session::Session(const DecomposeRequest& request)
    : request_(request), state_(std::make_unique<State>()) {
  throw_on_problems(validate(request_));
}

const Capabilities& Session::capabilities() const noexcept {
  return ProtocolRegistry::instance().entry(request_.protocol).capabilities;
}

Session::State& Session::state() const {
  KCORE_CHECK_MSG(state_ != nullptr,
                  "Session used after being moved from; construct a new one");
  return *state_;
}

const PreparedProtocol& Session::ensure_prepared(double* prepared_cost) const {
  State& state = this->state();
  *prepared_cost = 0.0;
  // Fast path: the release-store below pairs with this acquire, so a
  // true `ready` publishes both the prepared pointer and prepare_ms.
  if (state.ready.load(std::memory_order_acquire)) return *state.prepared;
  std::lock_guard<std::mutex> lock(state.mutex);
  if (!state.ready.load(std::memory_order_relaxed)) {
    const auto& entry = ProtocolRegistry::instance().entry(request_.protocol);
    const auto start = Clock::now();
    if (entry.prepare) {
      state.prepared = entry.prepare(request_);
    } else {
      state.prepared = std::make_unique<RunnerPrepared>(entry.run);
    }
    state.prepare_ms = ms_between(start, Clock::now());
    state.ready.store(true, std::memory_order_release);
    // Only the caller that performed the derivation absorbs its cost;
    // racers that waited on the mutex start their clocks afterwards.
    *prepared_cost = state.prepare_ms;
  }
  return *state.prepared;
}

void Session::prepare() {
  double prepare_cost = 0.0;
  (void)ensure_prepared(&prepare_cost);
}

bool Session::prepared() const noexcept {
  return state_ != nullptr && state_->ready.load(std::memory_order_acquire);
}

double Session::prepare_ms() const noexcept {
  return prepared() ? state_->prepare_ms : 0.0;
}

std::uint64_t Session::runs_completed() const noexcept {
  return state_ != nullptr
             ? state_->runs_completed.load(std::memory_order_relaxed)
             : 0;
}

DecomposeReport Session::run(const ProgressObserver& observer) const {
  // A run that triggers preparation absorbs the prepare cost into its
  // setup accounting; warm runs report only their residual setup.
  double prepare_cost = 0.0;
  const PreparedProtocol& prepared = ensure_prepared(&prepare_cost);
  const auto start = Clock::now();
  DecomposeReport report = prepared.run(request_, observer);
  const double run_wall_ms = ms_between(start, Clock::now());
  report.protocol = request_.protocol;
  // The elapsed_ms invariant (api.h): where the extras carry phase
  // timings, elapsed is exactly their sum — the phases partition the
  // elapsed time. Elsewhere, elapsed is prepare + measured wall.
  if (auto* par = std::get_if<ParExtras>(&report.extras)) {
    par->setup_ms += prepare_cost;
    report.elapsed_ms = par->setup_ms + par->run_ms;
  } else if (auto* async = std::get_if<AsyncExtras>(&report.extras)) {
    async->setup_ms += prepare_cost;
    report.elapsed_ms = async->setup_ms + async->run_ms;
  } else {
    report.elapsed_ms = prepare_cost + run_wall_ms;
  }
  state_->runs_completed.fetch_add(1, std::memory_order_relaxed);
  return report;
}

// --- Plan -------------------------------------------------------------------

Plan::Plan(const graph::Graph& g, PlanSpec spec)
    : graph_(&g), spec_(std::move(spec)) {
  KCORE_CHECK_MSG(!spec_.protocols.empty(),
                  "a Plan needs at least one protocol");
  KCORE_CHECK_MSG(spec_.repeats >= 1,
                  "repeats must be >= 1, got " << spec_.repeats);
  KCORE_CHECK_MSG(spec_.concurrency >= 1,
                  "concurrency must be >= 1, got " << spec_.concurrency);
  if (spec_.threads.empty()) spec_.threads = {spec_.base.threads};
  if (spec_.scheds.empty()) spec_.scheds = {spec_.base.sched};
  if (spec_.seeds.empty()) spec_.seeds = {spec_.base.seed};
}

std::vector<PlanCell> Plan::cells() const {
  const auto& registry = ProtocolRegistry::instance();
  std::vector<PlanCell> cells;
  for (const auto& protocol : spec_.protocols) {
    // A protocol that does not consume worker threads (or the async
    // scheduling policy) gets one cell at the base value: sweeping an
    // ignored knob would repeat the same work under different labels
    // (and fail validation).
    std::vector<unsigned> threads = spec_.threads;
    std::vector<core::SchedPolicy> scheds = spec_.scheds;
    if (registry.contains(protocol)) {
      const Capabilities& caps = registry.entry(protocol).capabilities;
      if (!caps.consumes_threads) threads = {spec_.base.threads};
      if (!caps.consumes_sched) scheds = {spec_.base.sched};
    }
    for (const unsigned t : threads) {
      for (const core::SchedPolicy sched : scheds) {
        for (const std::uint64_t seed : spec_.seeds) {
          cells.push_back({protocol, t, sched, seed});
        }
      }
    }
  }
  return cells;
}

std::vector<std::string> Plan::validate() const {
  std::vector<std::string> problems;
  for (const auto& cell : cells()) {
    DecomposeRequest request;
    request.graph = graph_;
    request.protocol = cell.protocol;
    request.options = options_for_cell(spec_.base, cell);
    for (auto& problem : api::validate(request)) {
      if (std::find(problems.begin(), problems.end(), problem) ==
          problems.end()) {
        problems.push_back(std::move(problem));
      }
    }
  }
  return problems;
}

std::vector<PlanCellResult> Plan::run(
    const PlanReportHook& on_report,
    const PlanObserverFactory& observer_factory) {
  const std::vector<PlanCell> all = cells();
  std::vector<PlanCellResult> results(all.size());
  const std::size_t workers = std::max<std::size_t>(
      1, std::min<std::size_t>(spec_.concurrency, all.size()));
  // With more than one worker the user's hooks run under one mutex —
  // cells are independent Sessions, but the hooks see a single
  // interleaved stream, same as in the serial case.
  const bool serialize_hooks = workers > 1;
  std::mutex hook_mutex;

  auto run_cell = [&](std::size_t index) {
    const PlanCell& cell = all[index];
    Session session(*graph_, cell.protocol,
                    options_for_cell(spec_.base, cell));

    PlanCellResult result;
    result.cell = cell;
    result.repeats = spec_.repeats;
    std::vector<double> wall, warm, run_phase;
    wall.reserve(static_cast<std::size_t>(spec_.repeats));
    for (int repeat = 0; repeat < spec_.repeats; ++repeat) {
      ProgressObserver observer;
      if (observer_factory) {
        if (serialize_hooks) {
          std::lock_guard<std::mutex> lock(hook_mutex);
          observer = observer_factory(cell, repeat);
        } else {
          observer = observer_factory(cell, repeat);
        }
      }
      DecomposeReport report = session.run(observer);
      if (on_report) {
        if (serialize_hooks) {
          std::lock_guard<std::mutex> lock(hook_mutex);
          on_report(cell, repeat, report);
        } else {
          on_report(cell, repeat, report);
        }
      }
      wall.push_back(report.elapsed_ms);
      if (repeat == 0) {
        result.first_wall_ms = report.elapsed_ms;
      } else {
        warm.push_back(report.elapsed_ms);
      }
      if (const auto* par = std::get_if<ParExtras>(&report.extras)) {
        run_phase.push_back(par->run_ms);
      } else if (const auto* async =
                     std::get_if<AsyncExtras>(&report.extras)) {
        run_phase.push_back(async->run_ms);
      } else {
        run_phase.push_back(report.elapsed_ms);
      }
      if (repeat + 1 == spec_.repeats) result.last = std::move(report);
    }
    result.prepare_ms = session.prepare_ms();
    result.wall_ms = util::SampleSummary::of(wall);
    result.warm_wall_ms = util::SampleSummary::of(warm);
    result.run_ms = util::SampleSummary::of(run_phase);
    results[index] = std::move(result);
  };

  if (workers == 1) {
    for (std::size_t index = 0; index < all.size(); ++index) run_cell(index);
    return results;
  }

  // Work-stealing by atomic index: each thread claims the next
  // unclaimed cell. Results land at their cell's slot, so the returned
  // order matches cells() regardless of completion order. The first
  // exception wins; it parks the claim index past the end so the other
  // workers drain, then rethrows on the caller's thread.
  std::atomic<std::size_t> next{0};
  std::mutex error_mutex;
  std::exception_ptr first_error;
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    pool.emplace_back([&] {
      for (;;) {
        const std::size_t index = next.fetch_add(1, std::memory_order_relaxed);
        if (index >= all.size()) return;
        try {
          run_cell(index);
        } catch (...) {
          std::lock_guard<std::mutex> lock(error_mutex);
          if (!first_error) first_error = std::current_exception();
          next.store(all.size(), std::memory_order_relaxed);
          return;
        }
      }
    });
  }
  for (auto& thread : pool) thread.join();
  if (first_error) std::rethrow_exception(first_error);
  return results;
}

}  // namespace kcore::api
