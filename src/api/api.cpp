#include "api/api.h"

#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "api/session.h"
#include "core/one_to_many.h"
#include "core/one_to_one.h"
#include "core/pregel_kcore.h"
#include "live/service.h"
#include "obs/obs.h"
#include "par/async_engine.h"
#include "par/runtime.h"
#include "seq/kcore_seq.h"
#include "util/check.h"
#include "util/clock.h"

namespace kcore::api {

namespace {

// --- result -> report adapters ---------------------------------------------
// One mapping per protocol family, shared by every execution path so the
// one-shot and prepared routes cannot drift apart.

DecomposeReport report_of(core::OneToOneResult result) {
  DecomposeReport report;
  report.coreness = std::move(result.coreness);
  report.traffic = std::move(result.traffic);
  report.extras = OneToOneExtras{std::move(result.last_send_round),
                                 std::move(result.activity_transitions)};
  return report;
}

DecomposeReport report_of(core::OneToManyResult result) {
  DecomposeReport report;
  report.coreness = std::move(result.coreness);
  report.traffic = std::move(result.traffic);
  report.extras =
      OneToManyExtras{result.estimates_shipped_total,
                      result.overhead_per_node,
                      std::move(result.estimates_shipped_by_host),
                      std::move(result.last_send_round_by_host)};
  return report;
}

DecomposeReport report_of(core::PregelKCoreResult result) {
  DecomposeReport report;
  report.coreness = std::move(result.coreness);
  // Map the BSP statistics onto the shared traffic shape (full BspStats
  // remain available in extras): supersteps play the role of rounds,
  // delivered messages the role of total traffic.
  report.traffic.total_messages = result.stats.messages_delivered;
  report.traffic.execution_time = result.stats.supersteps;
  report.traffic.rounds_executed = result.stats.supersteps;
  report.traffic.converged = result.stats.converged;
  report.extras = BspExtras{result.stats};
  return report;
}

DecomposeReport report_of(par::OneToManyParResult result, sim::HostId shards) {
  DecomposeReport report;
  ParExtras extras;
  extras.threads_used = result.threads_used;
  extras.shards = shards;
  extras.setup_ms = result.setup_ms;
  extras.run_ms = result.run_ms;
  extras.estimates_shipped_total = result.estimates_shipped_total;
  extras.overhead_per_node = result.overhead_per_node;
  report.coreness = std::move(result.coreness);
  report.traffic = std::move(result.traffic);
  report.extras = extras;
  report.telemetry = std::move(result.telemetry);
  return report;
}

DecomposeReport report_of(par::BspParResult result) {
  DecomposeReport report;
  report.coreness = std::move(result.coreness);
  report.traffic.total_messages = result.stats.messages_delivered;
  report.traffic.execution_time = result.stats.supersteps;
  report.traffic.rounds_executed = result.stats.supersteps;
  report.traffic.converged = result.stats.converged;
  ParExtras extras;
  extras.threads_used = result.threads_used;
  extras.shards = result.threads_used;  // bsp-par shards = workers
  extras.setup_ms = result.setup_ms;
  extras.run_ms = result.run_ms;
  extras.cross_shard_messages = result.stats.messages_cross_worker;
  report.extras = extras;
  report.telemetry = std::move(result.telemetry);
  return report;
}

DecomposeReport report_of(par::AsyncResult result, core::SchedPolicy sched) {
  DecomposeReport report;
  report.coreness = std::move(result.coreness);
  // No rounds to map: the async run reports re-activation notifications
  // as its traffic and always terminates at the exact fixed point.
  report.traffic.total_messages = result.stats.re_enqueues;
  report.traffic.converged = true;
  AsyncExtras extras;
  extras.threads_used = result.threads_used;
  extras.sched = sched;
  extras.relaxations = result.stats.relaxations;
  extras.steals = result.stats.steals;
  extras.re_enqueues = result.stats.re_enqueues;
  extras.detector_passes = result.stats.detector_passes;
  extras.skipped_recomputes = result.stats.skipped_recomputes;
  extras.pop_scans = result.stats.pop_scans;
  extras.setup_ms = result.setup_ms;
  extras.run_ms = result.run_ms;
  report.extras = extras;
  report.telemetry = std::move(result.telemetry);
  return report;
}

// --- prepared implementations ----------------------------------------------
// One PreparedProtocol per built-in. The constructor is the amortizable
// phase (what the one-shot runners used to re-derive per call); run() is
// const and replays from immutable shared state, so any number of
// threads can execute one prepared instance concurrently. Per-run
// mutable state (estimate tables, worklists) comes from a ContextPool:
// each run leases a private context (allocating only when every pooled
// one is in use), so sequential warm runs stay allocation-free and
// concurrent runs never share a table.

/// A free-list of per-run contexts. acquire() hands out a pooled context
/// or mints a new one via the factory; the lease returns it on
/// destruction. The pool only grows to the peak concurrency ever seen.
template <typename Context>
class ContextPool {
 public:
  class Lease {
   public:
    Lease(ContextPool& pool, std::unique_ptr<Context> context)
        : pool_(&pool), context_(std::move(context)) {}
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;
    ~Lease() { pool_->release(std::move(context_)); }

    Context& operator*() const { return *context_; }

   private:
    ContextPool* pool_;
    std::unique_ptr<Context> context_;
  };

  template <typename Factory>
  [[nodiscard]] Lease acquire(Factory&& make) {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (!free_.empty()) {
        auto context = std::move(free_.back());
        free_.pop_back();
        return Lease(*this, std::move(context));
      }
    }
    return Lease(*this, make());
  }

 private:
  void release(std::unique_ptr<Context> context) {
    const std::lock_guard<std::mutex> lock(mutex_);
    free_.push_back(std::move(context));
  }

  std::mutex mutex_;
  std::vector<std::unique_ptr<Context>> free_;
};

class PreparedSequential final : public PreparedProtocol {
 public:
  using Fn = std::vector<graph::NodeId> (*)(const graph::Graph&);
  explicit PreparedSequential(Fn fn) : fn_(fn) {}

  DecomposeReport run(const DecomposeRequest& request,
                      const ProgressObserver& /*observer*/) const override {
    DecomposeReport report;
    report.coreness = fn_(*request.graph);
    report.traffic.converged = true;
    return report;
  }

 private:
  Fn fn_;
};

class PreparedOneToOne final : public PreparedProtocol {
 public:
  explicit PreparedOneToOne(const DecomposeRequest& request)
      : nodes_(core::make_one_to_one_nodes(*request.graph,
                                           request.options.targeted_send)) {}

  DecomposeReport run(const DecomposeRequest& request,
                      const ProgressObserver& observer) const override {
    // Copy the pristine nodes; the engine consumes its (private) copy.
    return report_of(core::run_one_to_one_prepared(*request.graph, nodes_,
                                                   request.options, observer));
  }

 private:
  const std::vector<core::OneToOneNode> nodes_;
};

class PreparedOneToMany final : public PreparedProtocol {
 public:
  explicit PreparedOneToMany(const DecomposeRequest& request)
      : hosts_(core::make_one_to_many_hosts(
            *request.graph,
            core::assign_nodes(request.graph->num_nodes(),
                               request.options.num_hosts,
                               request.options.assignment,
                               request.options.seed),
            request.options.num_hosts, request.options.comm)) {}

  DecomposeReport run(const DecomposeRequest& request,
                      const ProgressObserver& observer) const override {
    return report_of(core::run_one_to_many_prepared(*request.graph, hosts_,
                                                    request.options, observer));
  }

 private:
  const std::vector<core::OneToManyHost> hosts_;
};

class PreparedBsp final : public PreparedProtocol {
 public:
  explicit PreparedBsp(const DecomposeRequest& request)
      : owner_(core::assign_nodes(request.graph->num_nodes(),
                                  request.options.num_hosts,
                                  request.options.assignment,
                                  request.options.seed)) {}

  DecomposeReport run(const DecomposeRequest& request,
                      const ProgressObserver& observer) const override {
    const RunOptions& options = request.options;
    return report_of(core::run_pregel_kcore_prepared(
        *request.graph, owner_, options.num_hosts, options.targeted_send,
        observer, options.max_rounds));
  }

 private:
  const std::vector<bsp::WorkerId> owner_;
};

class PreparedOneToManyPar final : public PreparedProtocol {
 public:
  explicit PreparedOneToManyPar(const DecomposeRequest& request)
      : prepared_(par::prepare_one_to_many_par(*request.graph,
                                               request.options)) {}

  DecomposeReport run(const DecomposeRequest& request,
                      const ProgressObserver& observer) const override {
    // The runner copies the pristine hosts into a private engine; the
    // prepared struct is only read.
    return report_of(
        par::run_one_to_many_par_prepared(*request.graph, prepared_,
                                          request.options, observer),
        request.options.num_hosts);
  }

 private:
  const par::OneToManyParPrepared prepared_;
};

class PreparedBspPar final : public PreparedProtocol {
 public:
  explicit PreparedBspPar(const DecomposeRequest& request)
      : num_nodes_(request.graph->num_nodes()),
        prepared_(par::prepare_bsp_par(*request.graph, request.options)) {}

  DecomposeReport run(const DecomposeRequest& request,
                      const ProgressObserver& observer) const override {
    const auto lease = contexts_.acquire([this] {
      return std::make_unique<par::BspParRunContext>(num_nodes_);
    });
    return report_of(par::run_bsp_par_prepared(*request.graph, prepared_,
                                               *lease, request.options,
                                               observer));
  }

 private:
  graph::NodeId num_nodes_;
  const par::BspParPrepared prepared_;
  mutable ContextPool<par::BspParRunContext> contexts_;
};

class PreparedBspAsync final : public PreparedProtocol {
 public:
  explicit PreparedBspAsync(const DecomposeRequest& request)
      : num_nodes_(request.graph->num_nodes()),
        prepared_(par::prepare_bsp_async(*request.graph, request.options)) {}

  DecomposeReport run(const DecomposeRequest& request,
                      const ProgressObserver& observer) const override {
    const auto lease = contexts_.acquire([this] {
      return std::make_unique<par::AsyncRunContext>(prepared_, num_nodes_);
    });
    return report_of(par::run_bsp_async_prepared(*request.graph, prepared_,
                                                 *lease, request.options,
                                                 observer),
                     request.options.sched);
  }

 private:
  graph::NodeId num_nodes_;
  const par::AsyncPrepared prepared_;
  mutable ContextPool<par::AsyncRunContext> contexts_;
};

template <typename Prepared>
ProtocolRegistry::Preparer make_request_preparer() {
  return [](const DecomposeRequest& request) {
    return std::unique_ptr<PreparedProtocol>(new Prepared(request));
  };
}

/// "bz, peeling, ..." — the one source of the key list used by every
/// unknown-protocol diagnostic.
std::string joined_keys(const ProtocolRegistry& registry) {
  std::string joined;
  for (const auto& name : registry.names()) {
    if (!joined.empty()) joined += ", ";
    joined += name;
  }
  return joined;
}

/// "a and b" / "a, b and c" — prose list of the protocols whose
/// capabilities set `flag`, for the knob diagnostics.
std::string consumers_of(const ProtocolRegistry& registry,
                         bool Capabilities::* flag) {
  std::vector<std::string> names;
  for (const auto& entry : registry.entries()) {
    if (entry.capabilities.*flag) names.push_back(entry.name);
  }
  if (names.empty()) return "no registered protocol";
  std::string joined;
  for (std::size_t i = 0; i < names.size(); ++i) {
    if (i > 0) joined += (i + 1 == names.size()) ? " and " : ", ";
    joined += names[i];
  }
  return joined;
}

}  // namespace

const char* to_string(ExecutionKind kind) {
  switch (kind) {
    case ExecutionKind::kSequential:
      return "sequential";
    case ExecutionKind::kSimulated:
      return "simulated";
    case ExecutionKind::kThreadedRounds:
      return "threaded-rounds";
    case ExecutionKind::kAsync:
      return "async";
  }
  return "?";
}

const char* to_string(ObserverGranularity granularity) {
  switch (granularity) {
    case ObserverGranularity::kNone:
      return "none";
    case ObserverGranularity::kPerRound:
      return "per-round";
  }
  return "?";
}

std::optional<ExecutionKind> parse_execution_kind(std::string_view name) {
  if (name == "sequential") return ExecutionKind::kSequential;
  if (name == "simulated") return ExecutionKind::kSimulated;
  if (name == "threaded-rounds") return ExecutionKind::kThreadedRounds;
  if (name == "async") return ExecutionKind::kAsync;
  return std::nullopt;
}

std::vector<std::string_view> consumed_knobs(
    const Capabilities& capabilities) {
  std::vector<std::string_view> knobs;
  if (capabilities.consumes_delivery_mode) knobs.push_back("mode");
  if (capabilities.consumes_fault_plan) knobs.push_back("faults");
  if (capabilities.consumes_comm_policy) knobs.push_back("comm");
  if (capabilities.consumes_assignment) knobs.push_back("assignment");
  if (capabilities.consumes_hosts) knobs.push_back("hosts");
  if (capabilities.consumes_threads) knobs.push_back("threads");
  if (capabilities.consumes_sched) knobs.push_back("sched");
  if (capabilities.consumes_targeted_send) knobs.push_back("targeted-send");
  if (capabilities.consumes_max_rounds) knobs.push_back("max-rounds");
  if (capabilities.consumes_obs) knobs.push_back("obs");
  return knobs;
}

ProtocolRegistry::ProtocolRegistry() {
  // The eight built-ins with their capability descriptors. Every
  // validate() rule, CLI table row and README capability row derives
  // from these — there is no other per-protocol knowledge in the facade.
  Capabilities sequential;  // consumes nothing, streams nothing

  Capabilities one_to_one;
  one_to_one.execution = ExecutionKind::kSimulated;
  one_to_one.consumes_delivery_mode = true;
  one_to_one.consumes_fault_plan = true;
  one_to_one.consumes_targeted_send = true;
  one_to_one.consumes_max_rounds = true;
  one_to_one.observer = ObserverGranularity::kPerRound;

  Capabilities one_to_many;
  one_to_many.execution = ExecutionKind::kSimulated;
  one_to_many.consumes_delivery_mode = true;
  one_to_many.consumes_fault_plan = true;
  one_to_many.consumes_comm_policy = true;
  one_to_many.consumes_assignment = true;
  one_to_many.consumes_hosts = true;
  one_to_many.consumes_max_rounds = true;
  one_to_many.observer = ObserverGranularity::kPerRound;

  Capabilities bsp;
  bsp.execution = ExecutionKind::kSimulated;
  bsp.consumes_assignment = true;
  bsp.consumes_hosts = true;  // num_hosts = BSP workers
  bsp.consumes_targeted_send = true;
  bsp.consumes_max_rounds = true;
  bsp.observer = ObserverGranularity::kPerRound;

  Capabilities one_to_many_par;
  one_to_many_par.execution = ExecutionKind::kThreadedRounds;
  one_to_many_par.consumes_comm_policy = true;
  one_to_many_par.consumes_assignment = true;
  one_to_many_par.consumes_hosts = true;
  one_to_many_par.consumes_threads = true;
  one_to_many_par.consumes_max_rounds = true;
  one_to_many_par.consumes_obs = true;
  one_to_many_par.observer = ObserverGranularity::kPerRound;

  Capabilities bsp_par;
  bsp_par.execution = ExecutionKind::kThreadedRounds;
  bsp_par.consumes_assignment = true;
  bsp_par.consumes_threads = true;
  bsp_par.consumes_targeted_send = true;
  bsp_par.consumes_max_rounds = true;
  bsp_par.consumes_obs = true;
  bsp_par.observer = ObserverGranularity::kPerRound;

  Capabilities bsp_async;
  bsp_async.execution = ExecutionKind::kAsync;
  bsp_async.consumes_assignment = true;
  bsp_async.consumes_threads = true;
  bsp_async.consumes_sched = true;
  bsp_async.consumes_targeted_send = true;
  bsp_async.consumes_obs = true;
  bsp_async.observer = ObserverGranularity::kNone;
  bsp_async.deterministic_extras = false;

  Capabilities live;
  live.execution = ExecutionKind::kAsync;
  live.consumes_threads = true;
  live.consumes_sched = true;
  live.consumes_targeted_send = true;
  live.consumes_obs = true;
  live.observer = ObserverGranularity::kNone;
  live.deterministic_extras = false;

  add({std::string(kProtocolBz), "[3]",
       "sequential Batagelj–Zaveršnik bucket baseline", sequential, nullptr,
       [](const DecomposeRequest&) {
         return std::unique_ptr<PreparedProtocol>(
             new PreparedSequential(&seq::coreness_bz));
       }});
  add({std::string(kProtocolPeeling), "Def. 1",
       "naive iterated-peeling oracle (differential testing)", sequential,
       nullptr, [](const DecomposeRequest&) {
         return std::unique_ptr<PreparedProtocol>(
             new PreparedSequential(&seq::coreness_peeling));
       }});
  add({std::string(kProtocolOneToOne), "§3.1",
       "one-to-one protocol: every node is a host (Algorithms 1+2)",
       one_to_one, nullptr, make_request_preparer<PreparedOneToOne>()});
  add({std::string(kProtocolOneToMany), "§3.2",
       "one-to-many protocol: hosts own node partitions (Algorithms 3-5)",
       one_to_many, nullptr, make_request_preparer<PreparedOneToMany>()});
  add({std::string(kProtocolBsp), "§6",
       "Pregel/BSP vertex-program port with vote-to-halt termination", bsp,
       nullptr, make_request_preparer<PreparedBsp>()});
  add({std::string(kProtocolOneToManyPar), "§3.2 (par)",
       "one-to-many protocol on real worker threads (src/par engine)",
       one_to_many_par, nullptr,
       make_request_preparer<PreparedOneToManyPar>()});
  add({std::string(kProtocolBspPar), "§6 (par)",
       "shared-memory BSP port: threads over a shared atomic estimate table",
       bsp_par, nullptr, make_request_preparer<PreparedBspPar>()});
  add({std::string(kProtocolBspAsync), "§4/§3.3 (async)",
       "chaotic relaxation: work-stealing threads, no barriers, concurrent "
       "quiescence detector",
       bsp_async, nullptr, make_request_preparer<PreparedBspAsync>()});
  add({std::string(kProtocolLive), "§4 (streaming)",
       "live streaming service: incremental async repair behind epoch "
       "snapshots (one-shot run = the initial convergence)",
       live,
       [](const DecomposeRequest& request, const ProgressObserver&) {
         const auto start = util::SteadyClock::now();
         live::ServiceOptions options;
         options.threads = request.options.threads;
         options.sched = request.options.sched;
         options.targeted_send = request.options.targeted_send;
         options.metrics = request.options.obs.metrics;
         const live::Service service(*request.graph, options);
         const double total_ms =
             util::ms_between(start, util::SteadyClock::now());
         const live::RepairStats& stats = service.initial_stats();
         DecomposeReport report;
         report.coreness = service.query()->coreness;
         const graph::NodeId n = request.graph->num_nodes();
         AsyncExtras extras;
         extras.threads_used = service.workers();
         extras.sched = request.options.sched;
         extras.relaxations = stats.relaxations;
         extras.steals = stats.steals;
         extras.re_enqueues =
             stats.relaxations >= n ? stats.relaxations - n : 0;
         extras.detector_passes = stats.detector_passes;
         extras.skipped_recomputes = stats.skipped_recomputes;
         extras.pop_scans = stats.pop_scans;
         extras.run_ms = stats.repair_ms;
         extras.setup_ms =
             total_ms > stats.repair_ms ? total_ms - stats.repair_ms : 0.0;
         report.traffic.total_messages = extras.re_enqueues;
         report.traffic.converged = true;
         report.extras = extras;
         if (service.metrics_enabled()) {
           auto telemetry = std::make_shared<obs::RunTelemetry>();
           telemetry->has_metrics = true;
           telemetry->metrics = service.metrics();
           report.telemetry = std::move(telemetry);
         }
         return report;
       },
       nullptr});
}

ProtocolRegistry& ProtocolRegistry::instance() {
  static ProtocolRegistry registry;
  return registry;
}

void ProtocolRegistry::add(Entry entry) {
  KCORE_CHECK_MSG(!entry.name.empty(), "protocol key must be non-empty");
  KCORE_CHECK_MSG(!contains(entry.name),
                  "protocol '" << entry.name << "' is already registered");
  KCORE_CHECK_MSG(entry.run != nullptr || entry.prepare != nullptr,
                  "protocol '" << entry.name
                               << "' needs a runner or a preparer");
  entries_.push_back(std::move(entry));
}

bool ProtocolRegistry::contains(std::string_view name) const {
  for (const Entry& entry : entries_) {
    if (entry.name == name) return true;
  }
  return false;
}

const ProtocolRegistry::Entry& ProtocolRegistry::entry(
    std::string_view name) const {
  for (const Entry& e : entries_) {
    if (e.name == name) return e;
  }
  throw util::CheckError("unknown protocol '" + std::string(name) +
                         "'; registered: " + joined_keys(*this));
}

std::vector<std::string> ProtocolRegistry::names() const {
  std::vector<std::string> result;
  result.reserve(entries_.size());
  for (const Entry& entry : entries_) result.push_back(entry.name);
  return result;
}

std::vector<std::string> validate(const DecomposeRequest& request) {
  std::vector<std::string> problems;
  if (request.graph == nullptr) {
    problems.push_back("request.graph must be non-null");
  } else if (request.graph->num_nodes() == 0) {
    problems.push_back("graph must have at least one node");
  }
  const auto& registry = ProtocolRegistry::instance();
  if (!registry.contains(request.protocol)) {
    problems.push_back("unknown protocol '" + request.protocol +
                       "'; registered: " + joined_keys(registry));
  }
  for (auto& problem : request.options.validate()) {
    problems.push_back(std::move(problem));
  }
  if (!registry.contains(request.protocol)) return problems;

  // The capability pass: a non-default value for a knob the protocol
  // does not consume is an error, not a silent no-op — the report would
  // otherwise look as if the knob had been honored (a fault plan with no
  // channel to break, a broadcast policy with no host-to-host flushes, a
  // thread count on a single-threaded simulator). Each rule derives from
  // the descriptor; no protocol names appear here.
  const Capabilities& caps =
      registry.entry(request.protocol).capabilities;
  const RunOptions& options = request.options;
  if (options.mode != sim::DeliveryMode::kCycleRandomOrder &&
      !caps.consumes_delivery_mode) {
    problems.push_back(
        "protocol '" + request.protocol +
        "' has no simulated delivery schedule; --mode " +
        std::string(to_string(options.mode)) + " only applies to " +
        consumers_of(registry, &Capabilities::consumes_delivery_mode));
  }
  if (options.faults.enabled() && !caps.consumes_fault_plan) {
    problems.push_back(
        "protocol '" + request.protocol +
        "' has no channel-fault model; drop max_extra_delay / "
        "duplicate_probability (only " +
        consumers_of(registry, &Capabilities::consumes_fault_plan) +
        " simulate faulty channels)");
  }
  if (options.comm != CommPolicy::kPointToPoint &&
      !caps.consumes_comm_policy) {
    problems.push_back(
        "protocol '" + request.protocol +
        "' has no host-to-host comm channels; --comm " +
        std::string(to_string(options.comm)) + " only applies to " +
        consumers_of(registry, &Capabilities::consumes_comm_policy));
  }
  if (options.threads != 0 && !caps.consumes_threads) {
    problems.push_back(
        "protocol '" + request.protocol +
        "' does not run on a worker pool; --threads only applies to " +
        consumers_of(registry, &Capabilities::consumes_threads));
  }
  if (options.sched != core::SchedPolicy::kLifo && !caps.consumes_sched) {
    problems.push_back(
        "protocol '" + request.protocol +
        "' has a fixed schedule; --sched " +
        std::string(to_string(options.sched)) + " only applies to " +
        consumers_of(registry, &Capabilities::consumes_sched));
  }
  if (options.obs.any() && !caps.consumes_obs) {
    problems.push_back(
        "protocol '" + request.protocol +
        "' has no instrumented worker loops; --metrics / --trace / "
        "--sample-period only apply to " +
        consumers_of(registry, &Capabilities::consumes_obs));
  }
  return problems;
}

DecomposeReport decompose(const DecomposeRequest& request,
                          const ProgressObserver& observer) {
  // The one-shot path is a Session that lives for exactly one run:
  // validate, prepare, run — identical state derivation, identical
  // report, with the prepare cost billed to this run's setup phase.
  Session session(request);
  return session.run(observer);
}

DecomposeReport decompose(const graph::Graph& g, std::string_view protocol,
                          const RunOptions& options,
                          const ProgressObserver& observer) {
  DecomposeRequest request;
  request.graph = &g;
  request.protocol = std::string(protocol);
  request.options = options;
  return decompose(request, observer);
}

}  // namespace kcore::api
