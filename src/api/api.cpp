#include "api/api.h"

#include <chrono>
#include <utility>

#include "core/one_to_many.h"
#include "core/one_to_one.h"
#include "core/pregel_kcore.h"
#include "par/async_engine.h"
#include "par/runtime.h"
#include "seq/kcore_seq.h"
#include "util/check.h"

namespace kcore::api {

namespace {

DecomposeReport run_bz(const DecomposeRequest& request,
                       const ProgressObserver& /*observer*/) {
  DecomposeReport report;
  report.coreness = seq::coreness_bz(*request.graph);
  report.traffic.converged = true;
  return report;
}

DecomposeReport run_peeling(const DecomposeRequest& request,
                            const ProgressObserver& /*observer*/) {
  DecomposeReport report;
  report.coreness = seq::coreness_peeling(*request.graph);
  report.traffic.converged = true;
  return report;
}

DecomposeReport run_one_to_one_protocol(const DecomposeRequest& request,
                                        const ProgressObserver& observer) {
  auto result =
      core::run_one_to_one(*request.graph, request.options, observer);
  DecomposeReport report;
  report.coreness = std::move(result.coreness);
  report.traffic = std::move(result.traffic);
  report.extras = OneToOneExtras{std::move(result.last_send_round),
                                 std::move(result.activity_transitions)};
  return report;
}

DecomposeReport run_one_to_many_protocol(const DecomposeRequest& request,
                                         const ProgressObserver& observer) {
  auto result =
      core::run_one_to_many(*request.graph, request.options, observer);
  DecomposeReport report;
  report.coreness = std::move(result.coreness);
  report.traffic = std::move(result.traffic);
  report.extras =
      OneToManyExtras{result.estimates_shipped_total,
                      result.overhead_per_node,
                      std::move(result.estimates_shipped_by_host),
                      std::move(result.last_send_round_by_host)};
  return report;
}

DecomposeReport run_bsp_protocol(const DecomposeRequest& request,
                                 const ProgressObserver& observer) {
  const RunOptions& options = request.options;
  auto result = core::run_pregel_kcore(
      *request.graph, options.num_hosts, options.targeted_send,
      options.assignment, options.seed, observer, options.max_rounds);
  DecomposeReport report;
  report.coreness = std::move(result.coreness);
  // Map the BSP statistics onto the shared traffic shape (full BspStats
  // remain available in extras): supersteps play the role of rounds,
  // delivered messages the role of total traffic.
  report.traffic.total_messages = result.stats.messages_delivered;
  report.traffic.execution_time = result.stats.supersteps;
  report.traffic.rounds_executed = result.stats.supersteps;
  report.traffic.converged = result.stats.converged;
  report.extras = BspExtras{result.stats};
  return report;
}

DecomposeReport run_one_to_many_par_protocol(const DecomposeRequest& request,
                                             const ProgressObserver& observer) {
  auto result =
      par::run_one_to_many_par(*request.graph, request.options, observer);
  DecomposeReport report;
  report.coreness = std::move(result.coreness);
  report.traffic = std::move(result.traffic);
  ParExtras extras;
  extras.threads_used = result.threads_used;
  extras.shards = request.options.num_hosts;
  extras.setup_ms = result.setup_ms;
  extras.run_ms = result.run_ms;
  extras.estimates_shipped_total = result.estimates_shipped_total;
  extras.overhead_per_node = result.overhead_per_node;
  report.extras = extras;
  return report;
}

DecomposeReport run_bsp_par_protocol(const DecomposeRequest& request,
                                     const ProgressObserver& observer) {
  auto result = par::run_bsp_par(*request.graph, request.options, observer);
  DecomposeReport report;
  report.coreness = std::move(result.coreness);
  report.traffic.total_messages = result.stats.messages_delivered;
  report.traffic.execution_time = result.stats.supersteps;
  report.traffic.rounds_executed = result.stats.supersteps;
  report.traffic.converged = result.stats.converged;
  ParExtras extras;
  extras.threads_used = result.threads_used;
  extras.shards = result.threads_used;  // bsp-par shards = workers
  extras.setup_ms = result.setup_ms;
  extras.run_ms = result.run_ms;
  extras.cross_shard_messages = result.stats.messages_cross_worker;
  report.extras = extras;
  return report;
}

DecomposeReport run_bsp_async_protocol(const DecomposeRequest& request,
                                       const ProgressObserver& observer) {
  auto result = par::run_bsp_async(*request.graph, request.options, observer);
  DecomposeReport report;
  report.coreness = std::move(result.coreness);
  // No rounds to map: the async run reports re-activation notifications
  // as its traffic and always terminates at the exact fixed point.
  report.traffic.total_messages = result.stats.re_enqueues;
  report.traffic.converged = true;
  AsyncExtras extras;
  extras.threads_used = result.threads_used;
  extras.relaxations = result.stats.relaxations;
  extras.steals = result.stats.steals;
  extras.re_enqueues = result.stats.re_enqueues;
  extras.detector_passes = result.stats.detector_passes;
  extras.setup_ms = result.setup_ms;
  extras.run_ms = result.run_ms;
  report.extras = extras;
  return report;
}

/// "bz, peeling, ..." — the one source of the key list used by every
/// unknown-protocol diagnostic.
std::string joined_keys(const ProtocolRegistry& registry) {
  std::string joined;
  for (const auto& name : registry.names()) {
    if (!joined.empty()) joined += ", ";
    joined += name;
  }
  return joined;
}

}  // namespace

ProtocolRegistry::ProtocolRegistry() {
  add({std::string(kProtocolBz), "[3]",
       "sequential Batagelj–Zaveršnik bucket baseline", run_bz});
  add({std::string(kProtocolPeeling), "Def. 1",
       "naive iterated-peeling oracle (differential testing)", run_peeling});
  add({std::string(kProtocolOneToOne), "§3.1",
       "one-to-one protocol: every node is a host (Algorithms 1+2)",
       run_one_to_one_protocol});
  add({std::string(kProtocolOneToMany), "§3.2",
       "one-to-many protocol: hosts own node partitions (Algorithms 3-5)",
       run_one_to_many_protocol});
  add({std::string(kProtocolBsp), "§6",
       "Pregel/BSP vertex-program port with vote-to-halt termination",
       run_bsp_protocol});
  add({std::string(kProtocolOneToManyPar), "§3.2 (par)",
       "one-to-many protocol on real worker threads (src/par engine)",
       run_one_to_many_par_protocol});
  add({std::string(kProtocolBspPar), "§6 (par)",
       "shared-memory BSP port: threads over a shared atomic estimate table",
       run_bsp_par_protocol});
  add({std::string(kProtocolBspAsync), "§4/§3.3 (async)",
       "chaotic relaxation: work-stealing threads, no barriers, concurrent "
       "quiescence detector",
       run_bsp_async_protocol});
}

ProtocolRegistry& ProtocolRegistry::instance() {
  static ProtocolRegistry registry;
  return registry;
}

void ProtocolRegistry::add(Entry entry) {
  KCORE_CHECK_MSG(!entry.name.empty(), "protocol key must be non-empty");
  KCORE_CHECK_MSG(!contains(entry.name),
                  "protocol '" << entry.name << "' is already registered");
  KCORE_CHECK_MSG(entry.run != nullptr,
                  "protocol '" << entry.name << "' needs a runner");
  entries_.push_back(std::move(entry));
}

bool ProtocolRegistry::contains(std::string_view name) const {
  for (const Entry& entry : entries_) {
    if (entry.name == name) return true;
  }
  return false;
}

const ProtocolRegistry::Entry& ProtocolRegistry::entry(
    std::string_view name) const {
  for (const Entry& e : entries_) {
    if (e.name == name) return e;
  }
  throw util::CheckError("unknown protocol '" + std::string(name) +
                         "'; registered: " + joined_keys(*this));
}

std::vector<std::string> ProtocolRegistry::names() const {
  std::vector<std::string> result;
  result.reserve(entries_.size());
  for (const Entry& entry : entries_) result.push_back(entry.name);
  return result;
}

std::vector<std::string> validate(const DecomposeRequest& request) {
  std::vector<std::string> problems;
  if (request.graph == nullptr) {
    problems.push_back("request.graph must be non-null");
  } else if (request.graph->num_nodes() == 0) {
    problems.push_back("graph must have at least one node");
  }
  const auto& registry = ProtocolRegistry::instance();
  if (!registry.contains(request.protocol)) {
    problems.push_back("unknown protocol '" + request.protocol +
                       "'; registered: " + joined_keys(registry));
  }
  for (auto& problem : request.options.validate()) {
    problems.push_back(std::move(problem));
  }
  // Knobs a protocol cannot honor are errors, not silent no-ops: a fault
  // plan aimed at a runtime with no channel model would otherwise report
  // fault-free results as if injection had happened. The real-thread
  // protocols run over reliable shared memory — there is no channel to
  // break — so they reject fault plans too.
  if (request.options.faults.enabled() &&
      (request.protocol == kProtocolBz ||
       request.protocol == kProtocolPeeling ||
       request.protocol == kProtocolBsp ||
       request.protocol == kProtocolOneToManyPar ||
       request.protocol == kProtocolBspPar ||
       request.protocol == kProtocolBspAsync)) {
    problems.push_back(
        "protocol '" + request.protocol +
        "' has no channel-fault model; drop max_extra_delay / "
        "duplicate_probability (only one-to-one and one-to-many simulate "
        "faulty channels)");
  }
  // The §3.2.1 comm policy shapes how one-to-many hosts flush estimates
  // to each other; every other runtime has no such channel (sequential
  // baselines, the BSP ports' shared tables, the async runtime's single
  // estimate table). A non-default policy there would be a silent no-op —
  // reject it instead of reporting results as if broadcast had happened.
  if (request.options.comm != CommPolicy::kPointToPoint &&
      (request.protocol == kProtocolBz ||
       request.protocol == kProtocolPeeling ||
       request.protocol == kProtocolOneToOne ||
       request.protocol == kProtocolBsp ||
       request.protocol == kProtocolBspPar ||
       request.protocol == kProtocolBspAsync)) {
    problems.push_back(
        "protocol '" + request.protocol +
        "' has no host-to-host comm channels; --comm " +
        std::string(to_string(request.options.comm)) +
        " only applies to one-to-many and one-to-many-par");
  }
  return problems;
}

DecomposeReport decompose(const DecomposeRequest& request,
                          const ProgressObserver& observer) {
  const auto problems = validate(request);
  if (!problems.empty()) {
    std::string joined;
    for (const auto& problem : problems) {
      if (!joined.empty()) joined += "; ";
      joined += problem;
    }
    throw util::CheckError("invalid decompose request: " + joined);
  }
  const auto& entry = ProtocolRegistry::instance().entry(request.protocol);
  const auto start = std::chrono::steady_clock::now();
  DecomposeReport report = entry.run(request, observer);
  const auto stop = std::chrono::steady_clock::now();
  report.protocol = request.protocol;
  report.elapsed_ms =
      std::chrono::duration<double, std::milli>(stop - start).count();
  return report;
}

DecomposeReport decompose(const graph::Graph& g, std::string_view protocol,
                          const RunOptions& options,
                          const ProgressObserver& observer) {
  DecomposeRequest request;
  request.graph = &g;
  request.protocol = std::string(protocol);
  request.options = options;
  return decompose(request, observer);
}

}  // namespace kcore::api
