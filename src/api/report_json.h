// JSON rendering of api::DecomposeReport — the machine-readable face of
// the facade, shared by `kcore decompose --json`, `kcore sweep --json`
// and any bench that records full reports. One renderer keeps the field
// names stable across every consumer; the schema is:
//
//   {
//     "protocol": "bsp-async",
//     "elapsed_ms": 12.3,
//     "traffic": { "total_messages", "execution_time",
//                  "rounds_executed", "converged" },
//     "extras": { "kind": "async", ...variant fields... },
//     "coreness": { "nodes", "kmax", "kavg",
//                   "shells": [[k, count], ...] },   // nonzero shells only
//     "telemetry": { "counters": {...}, "histograms": [...],
//                    "samples": [...], ... }          // when harvested
//   }
//
// The coreness vector itself is summarized as a shell-size histogram, not
// dumped: reports stay O(kmax) regardless of graph size (use `decompose
// --output` for the per-node values).
#pragma once

#include <iosfwd>

#include "api/api.h"

namespace kcore::util {
class JsonWriter;
}

namespace kcore::api {

/// Write `report` as one JSON object through `w` (which must be
/// positioned where a value is expected: top level, after a key, or
/// inside an array).
void write_report_json(util::JsonWriter& w, const DecomposeReport& report);

/// Convenience: one report as a complete JSON document on `os`
/// (pretty-printed, trailing newline).
void write_report_json(std::ostream& os, const DecomposeReport& report);

}  // namespace kcore::api
