// Table 1 runner: per-profile graph statistics + one-to-one performance.
// The per-profile repetition rides api::Plan (one cell per seed) instead
// of a hand-rolled run loop; metrics aggregate in the per-report hook.
#include <algorithm>
#include <ostream>
#include <sstream>

#include "api/session.h"
#include "eval/experiments.h"
#include "graph/stats.h"
#include "seq/kcore_seq.h"
#include "util/stats.h"
#include "util/table.h"

namespace kcore::eval {

std::vector<Table1Row> run_table1(const ExperimentOptions& options) {
  std::vector<Table1Row> rows;
  for (const DatasetSpec& spec : dataset_registry()) {
    const graph::Graph g = spec.build(options.scale, options.base_seed);

    Table1Row row;
    row.name = spec.name;
    row.paper_name = spec.paper_name;
    row.paper = spec.paper;
    row.nodes = g.num_nodes();
    row.edges = g.num_edges();
    row.max_degree = g.max_degree();
    row.diameter_lb = graph::diameter_lower_bound(g, options.base_seed);
    const auto truth = seq::coreness_bz(g);
    const auto summary = seq::summarize_coreness(truth);
    row.k_max = summary.k_max;
    row.k_avg = summary.k_avg;

    util::RunningStats t_stats;
    util::RunningStats m_avg_stats;
    util::RunningStats m_max_stats;
    api::PlanSpec plan_spec;
    plan_spec.protocols = {std::string(api::kProtocolOneToOne)};
    plan_spec.base.mode = sim::DeliveryMode::kCycleRandomOrder;
    plan_spec.base.targeted_send = true;  // the deployed protocol, §3.1.2
    for (int run = 0; run < options.runs; ++run) {
      plan_spec.seeds.push_back(options.base_seed + 1000 +
                                static_cast<unsigned>(run));
    }
    api::Plan plan(g, plan_spec);
    (void)plan.run([&](const api::PlanCell& cell, int /*repeat*/,
                       const api::DecomposeReport& result) {
      KCORE_CHECK_MSG(result.traffic.converged,
                      spec.name << " seed " << cell.seed
                                << " did not converge");
      t_stats.add(static_cast<double>(result.traffic.execution_time));
      m_avg_stats.add(static_cast<double>(result.traffic.total_messages) /
                      static_cast<double>(g.num_nodes()));
      const auto max_by_node =
          *std::max_element(result.traffic.sent_by_host.begin(),
                            result.traffic.sent_by_host.end());
      m_max_stats.add(static_cast<double>(max_by_node));
    });
    row.t_avg = t_stats.mean();
    row.t_min = static_cast<std::uint64_t>(t_stats.min());
    row.t_max = static_cast<std::uint64_t>(t_stats.max());
    row.m_avg = m_avg_stats.mean();
    row.m_max = m_max_stats.mean();
    rows.push_back(std::move(row));
  }
  return rows;
}

void print_table1(std::span<const Table1Row> rows, std::ostream& os) {
  os << "Table 1 — one-to-one algorithm (ours, synthetic profiles)\n";
  util::TableWriter ours({"profile", "|V|", "|E|", "diam>=", "dmax", "kmax",
                          "kavg", "t_avg", "t_min", "t_max", "m_avg",
                          "m_max"});
  for (const auto& r : rows) {
    ours.add_row({r.name, util::fmt_grouped(r.nodes),
                  util::fmt_grouped(r.edges), std::to_string(r.diameter_lb),
                  std::to_string(r.max_degree), std::to_string(r.k_max),
                  util::fmt_double(r.k_avg), util::fmt_double(r.t_avg),
                  std::to_string(r.t_min), std::to_string(r.t_max),
                  util::fmt_double(r.m_avg), util::fmt_double(r.m_max)});
  }
  ours.print(os);

  os << "\nTable 1 — paper's reported values (SNAP datasets, for shape "
        "comparison)\n";
  util::TableWriter paper({"dataset", "|V|", "|E|", "diam", "dmax", "kmax",
                           "kavg", "t_avg", "t_min", "t_max", "m_avg",
                           "m_max"});
  for (const auto& r : rows) {
    const auto& p = r.paper;
    paper.add_row({r.paper_name, util::fmt_grouped(p.nodes),
                   util::fmt_grouped(p.edges), std::to_string(p.diameter),
                   std::to_string(p.max_degree), std::to_string(p.k_max),
                   util::fmt_double(p.k_avg), util::fmt_double(p.t_avg),
                   std::to_string(p.t_min), std::to_string(p.t_max),
                   util::fmt_double(p.m_avg), util::fmt_double(p.m_max)});
  }
  paper.print(os);

  std::ostringstream csv;
  ours.print_csv(csv);
  const auto path = write_results_file("table1.csv", csv.str());
  if (!path.empty()) os << "\n[csv] " << path << "\n";
}

}  // namespace kcore::eval
