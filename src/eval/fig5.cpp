// Figure 5 runner: one-to-many overhead per node vs number of hosts,
// with (left) and without (right) a broadcast medium. Each
// (profile, hosts, comm) point rides one api::Plan over the run seeds.
#include <ostream>
#include <sstream>

#include "api/session.h"
#include "eval/experiments.h"
#include "seq/kcore_seq.h"
#include "util/stats.h"
#include "util/table.h"

namespace kcore::eval {

std::vector<Fig5Point> run_fig5(const ExperimentOptions& options,
                                std::span<const std::string> profiles,
                                std::span<const std::uint32_t> host_counts) {
  std::vector<Fig5Point> points;
  for (const auto& profile : profiles) {
    const DatasetSpec& spec = dataset_by_name(profile);
    const graph::Graph g = spec.build(options.scale, options.base_seed);
    const auto truth = seq::coreness_bz(g);

    for (const std::uint32_t hosts : host_counts) {
      Fig5Point point;
      point.dataset = spec.name;
      point.hosts = hosts;
      util::RunningStats broadcast_stats;
      util::RunningStats p2p_stats;
      for (const auto comm :
           {api::CommPolicy::kBroadcast, api::CommPolicy::kPointToPoint}) {
        api::PlanSpec plan_spec;
        plan_spec.protocols = {std::string(api::kProtocolOneToMany)};
        plan_spec.base.num_hosts = hosts;
        plan_spec.base.comm = comm;
        plan_spec.base.assignment = api::AssignmentPolicy::kModulo;  // §3.2.2
        for (int run = 0; run < options.runs; ++run) {
          plan_spec.seeds.push_back(options.base_seed + 4000 +
                                    static_cast<unsigned>(run));
        }
        api::Plan plan(g, plan_spec);
        auto& comm_stats = comm == api::CommPolicy::kBroadcast
                               ? broadcast_stats
                               : p2p_stats;
        (void)plan.run([&](const api::PlanCell&, int /*repeat*/,
                           const api::DecomposeReport& result) {
          KCORE_CHECK_MSG(result.traffic.converged,
                          profile << "/" << hosts << " did not converge");
          KCORE_CHECK_MSG(result.coreness == truth,
                          profile << "/" << hosts
                                  << " produced wrong coreness");
          comm_stats.add(
              std::get<api::OneToManyExtras>(result.extras)
                  .overhead_per_node);
        });
      }
      point.overhead_broadcast = broadcast_stats.mean();
      point.overhead_broadcast_max = broadcast_stats.max();
      point.overhead_p2p = p2p_stats.mean();
      point.overhead_p2p_max = p2p_stats.max();
      points.push_back(point);
    }
  }
  return points;
}

void print_fig5(std::span<const Fig5Point> points, std::ostream& os) {
  os << "Figure 5 — one-to-many overhead (estimates sent per node)\n"
     << "left: broadcast medium; right: point-to-point (Algorithm 5)\n";
  util::TableWriter table({"profile", "hosts", "bcast_avg", "bcast_max",
                           "p2p_avg", "p2p_max"});
  for (const auto& p : points) {
    table.add_row({p.dataset, std::to_string(p.hosts),
                   util::fmt_double(p.overhead_broadcast, 3),
                   util::fmt_double(p.overhead_broadcast_max, 3),
                   util::fmt_double(p.overhead_p2p, 3),
                   util::fmt_double(p.overhead_p2p_max, 3)});
  }
  table.print(os);

  std::ostringstream csv;
  table.print_csv(csv);
  const auto path = write_results_file("fig5.csv", csv.str());
  if (!path.empty()) os << "\n[csv] " << path << "\n";
}

}  // namespace kcore::eval
