// Experiment runners regenerating every table and figure of §5, plus the
// §4.2 worst-case study and the ablations listed in DESIGN.md §3.
//
// Each runner is a pure function of (options, seeds); bench/ binaries are
// thin wrappers that call a runner and print its rows (ASCII + CSV).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "api/api.h"
#include "eval/datasets.h"
#include "graph/graph.h"

namespace kcore::eval {

/// Global experiment knobs, overridable via environment:
///   KCORE_SCALE (double, default 1.0) — multiplies profile node counts;
///   KCORE_RUNS  (int, default 10)     — repetitions per data point
///                                       (paper: 50 for Table 1 / Fig 4,
///                                        20 for Fig 5);
///   KCORE_SEED  (int, default 42)     — base seed;
///   KCORE_QUICK (bool, default off)   — cut profiles/sweeps for smoke
///                                       runs in CI.
struct ExperimentOptions {
  double scale = 1.0;
  int runs = 10;
  std::uint64_t base_seed = 42;
  bool quick = false;

  [[nodiscard]] static ExperimentOptions from_env();
};

// ---------------------------------------------------------------------------
// Table 1 — one-to-one protocol on all nine profiles
// ---------------------------------------------------------------------------

struct Table1Row {
  std::string name;
  std::string paper_name;
  PaperStats paper;
  // left half: the synthetic graph's own statistics
  std::uint64_t nodes = 0;
  std::uint64_t edges = 0;
  std::uint32_t diameter_lb = 0;  // double-sweep lower bound
  std::uint32_t max_degree = 0;
  std::uint32_t k_max = 0;
  double k_avg = 0.0;
  // right half: one-to-one performance over `runs` seeds
  double t_avg = 0.0;
  std::uint64_t t_min = 0;
  std::uint64_t t_max = 0;
  double m_avg = 0.0;  // mean over runs of (messages / node)
  double m_max = 0.0;  // mean over runs of max messages by one node
};

[[nodiscard]] std::vector<Table1Row> run_table1(
    const ExperimentOptions& options);
void print_table1(std::span<const Table1Row> rows, std::ostream& os);

// ---------------------------------------------------------------------------
// Table 2 — per-core convergence lag on the berkstan-like profile
// ---------------------------------------------------------------------------

struct Table2Result {
  std::string dataset;
  std::vector<std::uint64_t> checkpoints;  // rounds sampled
  struct ShellRow {
    graph::NodeId k = 0;        // coreness value
    std::size_t size = 0;       // shell cardinality
    std::vector<double> wrong;  // fraction wrong at each checkpoint
  };
  /// Shells still erroneous at the first checkpoint, ordered by k;
  /// everything else has converged by then (the paper's "All other
  /// coreness are correctly computed at round 25").
  std::vector<ShellRow> rows;
  double execution_time_avg = 0.0;
};

[[nodiscard]] Table2Result run_table2(const std::string& profile,
                                      const ExperimentOptions& options);
void print_table2(const Table2Result& result, std::ostream& os);

// ---------------------------------------------------------------------------
// Figure 4 — error evolution over rounds (left: average, right: maximum)
// ---------------------------------------------------------------------------

struct ErrorSeries {
  std::string name;
  /// avg_error[r-1] = mean over runs and nodes of (estimate - coreness)
  /// at round r; zero-padded after each run converges.
  std::vector<double> avg_error;
  /// max_error[r-1] = max over runs and nodes at round r.
  std::vector<double> max_error;
  double execution_time_avg = 0.0;
};

[[nodiscard]] std::vector<ErrorSeries> run_fig4(
    const ExperimentOptions& options);
void print_fig4(std::span<const ErrorSeries> series, std::ostream& os);

// ---------------------------------------------------------------------------
// Figure 4, asynchronous edition — error vs TIME via the obs sampler
// ---------------------------------------------------------------------------
//
// bsp-async has no rounds, so the round-observer series above cannot be
// produced for it. Instead the telemetry sampler (RunOptions::obs.
// sample_period_ms) snapshots the engine's shared estimate table while
// it runs: by Theorem 2 every estimate is a non-increasing upper bound
// on the coreness, so sum(estimates) - sum(coreness) is a monotone
// non-increasing error proxy — the Fig. 4 curve with wall-clock time on
// the x axis. Requires KCORE_OBS=ON; returns an empty vector otherwise.

struct AsyncErrorPoint {
  double t_ms = 0.0;        // since the sampler started
  double sum_error = 0.0;   // sum(estimates) - sum(coreness), >= 0
  std::int64_t outstanding = 0;
  std::uint64_t worklist_depth = 0;
};

struct AsyncErrorSeries {
  std::string name;
  unsigned threads = 0;
  double sample_period_ms = 0.0;
  double truth_sum = 0.0;  // sum of the exact coreness values
  double run_ms = 0.0;     // whole-run wall clock
  /// Empty when the run finished before the first sampler tick — the
  /// curve converged faster than one period, which is itself a result.
  std::vector<AsyncErrorPoint> points;
};

[[nodiscard]] std::vector<AsyncErrorSeries> run_fig4_async(
    const ExperimentOptions& options);
void print_fig4_async(std::span<const AsyncErrorSeries> series,
                      std::ostream& os);

// ---------------------------------------------------------------------------
// Figure 5 — one-to-many overhead per node vs number of hosts
// ---------------------------------------------------------------------------

struct Fig5Point {
  std::string dataset;
  std::uint32_t hosts = 0;
  double overhead_broadcast = 0.0;  // avg over runs
  double overhead_broadcast_max = 0.0;
  double overhead_p2p = 0.0;
  double overhead_p2p_max = 0.0;
};

[[nodiscard]] std::vector<Fig5Point> run_fig5(
    const ExperimentOptions& options,
    std::span<const std::string> profiles,
    std::span<const std::uint32_t> host_counts);
void print_fig5(std::span<const Fig5Point> points, std::ostream& os);

// ---------------------------------------------------------------------------
// §4.2 — worst-case construction and bound checks
// ---------------------------------------------------------------------------

struct WorstCaseRow {
  graph::NodeId n = 0;
  std::uint64_t rounds_worst_case = 0;  // montresor graph, synchronous
  std::uint64_t expected_worst = 0;     // n - 1
  std::uint64_t rounds_chain = 0;       // chain graph, synchronous
  std::uint64_t expected_chain = 0;     // ceil(n / 2)
  std::uint32_t worst_diameter = 0;     // stays 3 regardless of n
  std::uint64_t theorem5_bound = 0;
  std::uint64_t corollary1_bound = 0;
};

[[nodiscard]] std::vector<WorstCaseRow> run_worstcase(
    std::span<const graph::NodeId> sizes);
void print_worstcase(std::span<const WorstCaseRow> rows, std::ostream& os);

// ---------------------------------------------------------------------------
// CSV export
// ---------------------------------------------------------------------------

/// Write `content` to results/<name> (directory created on demand);
/// returns the path written, or an empty string on failure (non-fatal:
/// benches still print to stdout).
std::string write_results_file(const std::string& name,
                               const std::string& content);

}  // namespace kcore::eval
