#include "eval/datasets.h"

#include <algorithm>
#include <cmath>

#include "graph/generators.h"
#include "util/check.h"

namespace kcore::eval {

namespace {

using graph::Graph;
using graph::NodeId;
namespace gen = graph::gen;

/// Scaled node count with a sane floor so tiny scales stay meaningful.
NodeId scaled(double base, double scale, double floor_nodes = 256) {
  return static_cast<NodeId>(std::max(floor_nodes, base * scale));
}

/// Largest power-of-two exponent with 2^e <= n.
std::uint32_t log2_floor(NodeId n) {
  std::uint32_t e = 0;
  while ((NodeId{1} << (e + 1)) <= n) ++e;
  return e;
}

std::vector<DatasetSpec> make_registry() {
  std::vector<DatasetSpec> specs;

  // 1) CA-AstroPh: dense collaboration cliques. Affiliation model with few
  //    large groups => heavy overlapping cliques, plus a planted 40-core
  //    echoing the paper's kmax=56 regime.
  specs.push_back(DatasetSpec{
      "astroph-like",
      "CA-AstroPh",
      {18772, 198110, 14, 504, 56, 12.62, 19.55, 18, 21, 47.21, 807.05},
      [](double scale, std::uint64_t seed) {
        const NodeId n = scaled(6000, scale);
        Graph g = gen::affiliation(n, std::max<NodeId>(8, n / 4), 2, seed);
        g = gen::plant_dense_core(g, std::min<NodeId>(n / 4, 64), 40, seed + 1);
        return gen::connect_components(g, seed + 2);
      }});

  // 2) CA-CondMat: sparser collaboration graph, smaller cliques/core.
  specs.push_back(DatasetSpec{
      "condmat-like",
      "CA-CondMat",
      {23133, 93497, 15, 280, 25, 4.90, 15.65, 14, 17, 13.97, 410.25},
      [](double scale, std::uint64_t seed) {
        const NodeId n = scaled(8000, scale);
        Graph g = gen::affiliation(n, std::max<NodeId>(8, n / 2), 2, seed);
        g = gen::plant_dense_core(g, std::min<NodeId>(n / 4, 64), 18, seed + 1);
        return gen::connect_components(g, seed + 2);
      }});

  // 3) p2p-Gnutella31: quasi-random sparse overlay; ER matches its flat
  //    low-coreness profile (paper kmax = 6).
  specs.push_back(DatasetSpec{
      "gnutella-like",
      "p2p-Gnutella31",
      {62590, 147895, 11, 95, 6, 2.52, 27.45, 25, 30, 9.30, 131.25},
      [](double scale, std::uint64_t seed) {
        const NodeId n = scaled(20000, scale);
        const auto m = static_cast<std::uint64_t>(2.36 * n);
        Graph g = gen::erdos_renyi_gnm(n, m, seed);
        // Real Gnutella snapshots have a sparse chain-like periphery that
        // stretches convergence into the tens of rounds; a light sprinkle
        // of short tendrils reproduces that.
        g = gen::attach_paths(g, std::max<NodeId>(4, n / 400), 14, seed + 2);
        return gen::connect_components(g, seed + 1);
      }});

  // 4) soc-sign-Slashdot090221: power-law social graph with a dense core.
  specs.push_back(DatasetSpec{
      "slashdot-sign-like",
      "soc-sign-Slashdot090221",
      {82145, 500485, 11, 2553, 54, 6.22, 25.10, 24, 26, 29.32, 3192.40},
      [](double scale, std::uint64_t seed) {
        const NodeId n = scaled(22000, scale);
        Graph g = gen::barabasi_albert(n, 6, seed);
        return gen::plant_dense_core(g, std::min<NodeId>(n / 4, 192), 40,
                                     seed + 1);
      }});

  // 5) soc-Slashdot0902: like (4) but denser.
  specs.push_back(DatasetSpec{
      "slashdot-like",
      "soc-Slashdot0902",
      {82173, 582537, 12, 2548, 56, 7.22, 21.15, 20, 22, 31.35, 3319.95},
      [](double scale, std::uint64_t seed) {
        const NodeId n = scaled(22000, scale);
        Graph g = gen::barabasi_albert(n, 7, seed);
        return gen::plant_dense_core(g, std::min<NodeId>(n / 4, 192), 44,
                                     seed + 1);
      }});

  // 6) Amazon0601: co-purchase network — community lattice with moderate
  //    degree, small kmax, mid-size diameter (paper t_avg ~ 56).
  specs.push_back(DatasetSpec{
      "amazon-like",
      "Amazon0601",
      {403399, 2443412, 21, 2752, 10, 7.22, 55.65, 53, 59, 24.91, 2900.30},
      [](double scale, std::uint64_t seed) {
        const NodeId n = scaled(36000, scale);
        Graph g = gen::watts_strogatz(n, 10, 0.02, seed);
        return gen::plant_dense_core(g, std::min<NodeId>(n / 4, 128), 8,
                                     seed + 1);
      }});

  // 7) web-BerkStan: hub-dominated web crawl whose defining features are a
  //    deep dense core (kmax=201) AND an extreme diameter (669) from page
  //    chains — R-MAT core + planted 48-core + long tendrils. Slowest
  //    profile, reproducing the Table 2 "deep 1-core lags the 55-core"
  //    behaviour.
  specs.push_back(DatasetSpec{
      "berkstan-like",
      "web-BerkStan",
      {685235, 6649474, 669, 84230, 201, 11.11, 306.15, 294, 322, 29.04,
       86293.20},
      [](double scale, std::uint64_t seed) {
        const NodeId target = scaled(22000, scale);
        gen::RmatParams p;
        p.scale = log2_floor(target);
        p.edge_factor = 9.0;
        Graph g = gen::rmat(p, seed);
        g = gen::plant_dense_core(g, std::min<NodeId>(g.num_nodes() / 4, 320),
                                  48, seed + 1);
        // web-BerkStan's 306-round convergence is driven by page chains
        // hundreds of hops deep (diameter 669); scale the tendril depth so
        // the profile stays the slowest-converging one, as in the paper.
        const NodeId tendril_len = std::max<NodeId>(
            24, static_cast<NodeId>(
                    200.0 * std::sqrt(std::max(scale, 0.01))));
        g = gen::attach_paths(g, 24, tendril_len, seed + 2);
        return gen::connect_components(g, seed + 3);
      }});

  // 8) roadNet-TX: near-planar mesh, kmax=3, huge diameter => convergence
  //    dominated by propagation distance, the second-slowest profile.
  specs.push_back(DatasetSpec{
      "roadnet-like",
      "roadNet-TX",
      {1379922, 1921664, 1049, 12, 3, 1.79, 98.60, 94, 103, 4.45, 19.30},
      [](double scale, std::uint64_t seed) {
        const auto side = static_cast<NodeId>(
            std::max(24.0, std::sqrt(57600.0 * scale)));
        Graph g = gen::grid(side, side);
        // Real road networks are partial meshes (avg degree ~2.8, not the
        // grid's 4) with long dead-end corridors (rural roads). Deleting a
        // quarter of the edges reproduces the degree profile; the
        // corridors are what stretch convergence to ~100 rounds, since
        // coreness-1 must propagate hop by hop along each one.
        g = gen::remove_random_edges(g, g.num_edges() / 4, seed);
        g = gen::connect_components(g, seed + 2);
        const NodeId corridor = std::max<NodeId>(
            16, static_cast<NodeId>(
                    100.0 * std::sqrt(std::max(scale, 0.01))));
        g = gen::attach_paths(g, 12, corridor, seed + 3);
        return gen::relabel_random(g, seed + 1);
      }});

  // 9) wiki-Talk: extreme-hub star forest (kavg < 2) over a modest dense
  //    core of very active users.
  specs.push_back(DatasetSpec{
      "wikitalk-like",
      "wiki-Talk",
      {2394390, 4659569, 9, 100029, 131, 1.96, 31.60, 30, 33, 5.89,
       103895.35},
      [](double scale, std::uint64_t seed) {
        const NodeId n = scaled(40000, scale);
        Graph g = gen::barabasi_albert(n, 1, seed);  // star-heavy tree
        g = gen::add_random_edges(g, static_cast<std::uint64_t>(0.12 * n),
                                  seed + 1);
        return gen::plant_dense_core(g, std::min<NodeId>(n / 4, 160), 56,
                                     seed + 2);
      }});

  return specs;
}

}  // namespace

const std::vector<DatasetSpec>& dataset_registry() {
  static const std::vector<DatasetSpec> registry = make_registry();
  return registry;
}

const DatasetSpec& dataset_by_name(std::string_view name) {
  for (const auto& spec : dataset_registry()) {
    if (spec.name == name) return spec;
  }
  KCORE_CHECK_MSG(false, "unknown dataset profile '" << name << "'");
  // Unreachable; silences compiler.
  return dataset_registry().front();
}

}  // namespace kcore::eval
