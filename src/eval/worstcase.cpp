// §4.2 runner: the Figure 3 worst-case graph takes exactly N-1 synchronous
// rounds while its diameter stays 3; a chain takes ~N/2 rounds; and every
// measured run respects the Theorem 4/5 and Corollary 1/2 bounds.
#include <ostream>
#include <sstream>

#include "core/bounds.h"
#include "eval/experiments.h"
#include "graph/generators.h"
#include "graph/stats.h"
#include "seq/kcore_seq.h"
#include "util/table.h"

namespace kcore::eval {

std::vector<WorstCaseRow> run_worstcase(
    std::span<const graph::NodeId> sizes) {
  std::vector<WorstCaseRow> rows;
  for (const graph::NodeId n : sizes) {
    WorstCaseRow row;
    row.n = n;
    row.expected_worst = n - 1;
    row.expected_chain = (n + 1) / 2;

    const auto worst = graph::gen::montresor_worst_case(n);
    row.worst_diameter = graph::exact_diameter(worst);
    // The analysis model of §4: synchronous rounds, no §3.1.2 opt.
    api::RunOptions analysis_options;
    analysis_options.mode = sim::DeliveryMode::kSynchronous;
    analysis_options.targeted_send = false;
    {
      const auto result =
          api::decompose(worst, api::kProtocolOneToOne, analysis_options);
      KCORE_CHECK(result.traffic.converged);
      // §4's execution time includes the final no-effect delivery round.
      row.rounds_worst_case = result.traffic.rounds_executed;
      const auto bounds = core::compute_bounds(worst, result.coreness);
      row.theorem5_bound = bounds.theorem5_rounds;
      row.corollary1_bound = bounds.corollary1_rounds;
    }
    {
      const auto chain_graph = graph::gen::chain(n);
      const auto result = api::decompose(chain_graph, api::kProtocolOneToOne,
                                         analysis_options);
      KCORE_CHECK(result.traffic.converged);
      row.rounds_chain = result.traffic.execution_time;
    }
    rows.push_back(row);
  }
  return rows;
}

void print_worstcase(std::span<const WorstCaseRow> rows, std::ostream& os) {
  os << "§4.2 — worst-case execution time (synchronous rounds)\n"
     << "worst-case graph (Fig. 3): expected exactly N-1 rounds, diameter 3\n"
     << "chain of N nodes: expected ~ceil(N/2) rounds\n";
  util::TableWriter table({"N", "worst_rounds", "N-1", "diam", "chain_rounds",
                           "ceil(N/2)", "Thm5", "Cor1"});
  for (const auto& r : rows) {
    table.add_row({std::to_string(r.n), std::to_string(r.rounds_worst_case),
                   std::to_string(r.expected_worst),
                   std::to_string(r.worst_diameter),
                   std::to_string(r.rounds_chain),
                   std::to_string(r.expected_chain),
                   std::to_string(r.theorem5_bound),
                   std::to_string(r.corollary1_bound)});
  }
  table.print(os);

  std::ostringstream csv;
  table.print_csv(csv);
  const auto path = write_results_file("worstcase.csv", csv.str());
  if (!path.empty()) os << "\n[csv] " << path << "\n";
}

}  // namespace kcore::eval
