// Table 2 runner: which k-shells delay convergence, and for how long.
//
// The paper instruments web-BerkStan and reports, per coreness value k and
// checkpoint round t, the percentage of the k-shell still holding a wrong
// estimate at t. Checkpoints here are derived from the measured execution
// time (the synthetic profile converges faster than the 685k-node
// original) but keep the paper's 12-column layout.
#include <algorithm>
#include <memory>
#include <ostream>
#include <sstream>

#include "api/session.h"
#include "eval/experiments.h"
#include "seq/kcore_seq.h"
#include "util/table.h"

namespace kcore::eval {

Table2Result run_table2(const std::string& profile,
                        const ExperimentOptions& options) {
  const DatasetSpec& spec = dataset_by_name(profile);
  const graph::Graph g = spec.build(options.scale, options.base_seed);
  const auto truth = seq::coreness_bz(g);
  const auto summary = seq::summarize_coreness(truth);

  // Pilot run to size the checkpoint grid.
  api::RunOptions pilot_options;
  pilot_options.seed = options.base_seed + 7;
  const auto pilot = api::decompose(g, api::kProtocolOneToOne, pilot_options);
  const std::uint64_t horizon = std::max<std::uint64_t>(
      pilot.traffic.execution_time, 12);
  // 12 evenly spaced checkpoints, multiples of at least 1 round.
  const std::uint64_t step = std::max<std::uint64_t>(1, horizon / 12);

  Table2Result result;
  result.dataset = spec.name;
  for (std::uint64_t t = step; result.checkpoints.size() < 12; t += step) {
    result.checkpoints.push_back(t);
  }

  // wrong_counts[shell][checkpoint] accumulated over runs.
  const std::size_t num_shells = summary.shell_sizes.size();
  std::vector<std::vector<std::uint64_t>> wrong_counts(
      num_shells,
      std::vector<std::uint64_t>(result.checkpoints.size(), 0));

  double execution_total = 0.0;
  // One Plan over the run seeds. The observer factory hands every run a
  // fresh checkpoint cursor; the wrong-estimate tallies accumulate across
  // runs. Checkpoints past convergence have zero wrong nodes — nothing
  // to add for them.
  api::PlanSpec plan_spec;
  plan_spec.protocols = {std::string(api::kProtocolOneToOne)};
  for (int run = 0; run < options.runs; ++run) {
    plan_spec.seeds.push_back(options.base_seed + 2000 +
                              static_cast<unsigned>(run));
  }
  api::Plan plan(g, plan_spec);
  (void)plan.run(
      [&](const api::PlanCell&, int /*repeat*/,
          const api::DecomposeReport& run_result) {
        execution_total +=
            static_cast<double>(run_result.traffic.execution_time);
      },
      [&](const api::PlanCell&, int /*repeat*/) {
        auto next_checkpoint = std::make_shared<std::size_t>(0);
        return api::ProgressObserver([&, next_checkpoint](
                                         const api::ProgressEvent& event) {
          while (*next_checkpoint < result.checkpoints.size() &&
                 result.checkpoints[*next_checkpoint] == event.round) {
            for (graph::NodeId u = 0; u < g.num_nodes(); ++u) {
              if (event.estimates[u] != truth[u]) {
                ++wrong_counts[truth[u]][*next_checkpoint];
              }
            }
            ++*next_checkpoint;
          }
        });
      });
  result.execution_time_avg = execution_total / options.runs;

  for (std::size_t k = 0; k < num_shells; ++k) {
    if (summary.shell_sizes[k] == 0) continue;
    const bool problematic = wrong_counts[k][0] > 0;
    if (!problematic) continue;
    Table2Result::ShellRow row;
    row.k = static_cast<graph::NodeId>(k);
    row.size = summary.shell_sizes[k];
    row.wrong.reserve(result.checkpoints.size());
    for (std::size_t c = 0; c < result.checkpoints.size(); ++c) {
      row.wrong.push_back(static_cast<double>(wrong_counts[k][c]) /
                          (static_cast<double>(row.size) * options.runs));
    }
    result.rows.push_back(std::move(row));
  }
  return result;
}

void print_table2(const Table2Result& result, std::ostream& os) {
  os << "Table 2 — convergence lag per k-shell on " << result.dataset
     << " (avg execution time " << util::fmt_double(result.execution_time_avg)
     << " rounds)\n"
     << "Cells: fraction of the shell still wrong at round t; blank = 0.\n"
     << "Shells absent from the table were already correct at the first "
        "checkpoint.\n";
  std::vector<std::string> header{"k", "#"};
  for (const auto t : result.checkpoints) header.push_back(std::to_string(t));
  util::TableWriter table(header);
  for (const auto& row : result.rows) {
    std::vector<std::string> cells{std::to_string(row.k),
                                   util::fmt_grouped(row.size)};
    for (const double w : row.wrong) {
      cells.push_back(util::fmt_percent_or_blank(w));
    }
    table.add_row(std::move(cells));
  }
  table.print(os);

  std::ostringstream csv;
  table.print_csv(csv);
  const auto path = write_results_file("table2.csv", csv.str());
  if (!path.empty()) os << "\n[csv] " << path << "\n";
}

}  // namespace kcore::eval
