// Figure 4 runner: evolution of the estimate error over rounds.
//
// Left plot: average over all nodes and runs of (estimate - coreness).
// Right plot: maximum over all nodes and runs. The paper's headline
// observation — maximum error <= 1 by round ~22 on every dataset — is the
// shape check recorded in EXPERIMENTS.md.
#include <algorithm>
#include <ostream>
#include <sstream>

#include "api/session.h"
#include "eval/experiments.h"
#include "seq/kcore_seq.h"
#include "util/table.h"

namespace kcore::eval {

std::vector<ErrorSeries> run_fig4(const ExperimentOptions& options) {
  std::vector<ErrorSeries> all_series;
  for (const DatasetSpec& spec : dataset_registry()) {
    const graph::Graph g = spec.build(options.scale, options.base_seed);
    const auto truth = seq::coreness_bz(g);

    ErrorSeries series;
    series.name = spec.name;
    std::vector<double> sum_error;   // per round, summed over runs & nodes
    std::vector<double> max_error;   // per round, max over runs & nodes
    double execution_total = 0.0;

    // One Plan over the run seeds; the per-round error accumulation hangs
    // off the Plan's observer factory, the convergence tally off the
    // per-report hook.
    api::PlanSpec plan_spec;
    plan_spec.protocols = {std::string(api::kProtocolOneToOne)};
    for (int run = 0; run < options.runs; ++run) {
      plan_spec.seeds.push_back(options.base_seed + 3000 +
                                static_cast<unsigned>(run));
    }
    api::Plan plan(g, plan_spec);
    (void)plan.run(
        [&](const api::PlanCell&, int /*repeat*/,
            const api::DecomposeReport& result) {
          execution_total +=
              static_cast<double>(result.traffic.execution_time);
        },
        [&](const api::PlanCell&, int /*repeat*/) {
          return api::ProgressObserver([&](const api::ProgressEvent& event) {
            const std::size_t idx = event.round - 1;
            if (idx >= sum_error.size()) {
              sum_error.resize(idx + 1, 0.0);
              max_error.resize(idx + 1, 0.0);
            }
            double sum = 0.0;
            double mx = 0.0;
            for (graph::NodeId u = 0; u < g.num_nodes(); ++u) {
              const auto err = static_cast<double>(event.estimates[u]) -
                               static_cast<double>(truth[u]);
              sum += err;
              mx = std::max(mx, err);
            }
            sum_error[idx] += sum;
            max_error[idx] = std::max(max_error[idx], mx);
          });
        });
    series.execution_time_avg = execution_total / options.runs;
    series.avg_error.reserve(sum_error.size());
    for (const double s : sum_error) {
      series.avg_error.push_back(
          s / (static_cast<double>(g.num_nodes()) * options.runs));
    }
    series.max_error = std::move(max_error);
    all_series.push_back(std::move(series));
  }
  return all_series;
}

namespace {

void print_error_table(std::span<const ErrorSeries> series, bool use_max,
                       std::ostream& os) {
  std::size_t horizon = 0;
  for (const auto& s : series) {
    horizon = std::max(horizon,
                       use_max ? s.max_error.size() : s.avg_error.size());
  }
  // Sample rounds on a coarse grid to keep the terminal table readable.
  std::vector<std::size_t> sampled;
  for (std::size_t r = 1; r <= horizon;
       r += (r < 32 ? 2 : (r < 128 ? 8 : 32))) {
    sampled.push_back(r);
  }
  std::vector<std::string> header{"round"};
  for (const auto& s : series) header.push_back(s.name);
  util::TableWriter table(header);
  for (const std::size_t r : sampled) {
    std::vector<std::string> cells{std::to_string(r)};
    for (const auto& s : series) {
      const auto& data = use_max ? s.max_error : s.avg_error;
      if (r - 1 < data.size()) {
        cells.push_back(util::fmt_double(data[r - 1], use_max ? 0 : 4));
      } else {
        cells.push_back("0");  // converged
      }
    }
    table.add_row(std::move(cells));
  }
  table.print(os);

  std::ostringstream csv;
  table.print_csv(csv);
  const auto path = write_results_file(
      use_max ? "fig4_max_error.csv" : "fig4_avg_error.csv", csv.str());
  if (!path.empty()) os << "[csv] " << path << "\n";
}

}  // namespace

void print_fig4(std::span<const ErrorSeries> series, std::ostream& os) {
  os << "Figure 4 (left) — average estimate error per round\n";
  print_error_table(series, /*use_max=*/false, os);
  os << "\nFigure 4 (right) — maximum estimate error per round\n";
  print_error_table(series, /*use_max=*/true, os);
  os << "\nConvergence (execution time, avg rounds):\n";
  util::TableWriter t({"profile", "t_avg"});
  for (const auto& s : series) {
    t.add_row({s.name, util::fmt_double(s.execution_time_avg)});
  }
  t.print(os);
}

}  // namespace kcore::eval
