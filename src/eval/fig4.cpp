// Figure 4 runner: evolution of the estimate error over rounds.
//
// Left plot: average over all nodes and runs of (estimate - coreness).
// Right plot: maximum over all nodes and runs. The paper's headline
// observation — maximum error <= 1 by round ~22 on every dataset — is the
// shape check recorded in EXPERIMENTS.md.
#include <algorithm>
#include <ostream>
#include <sstream>
#include <thread>

#include "api/session.h"
#include "eval/experiments.h"
#include "obs/obs.h"
#include "seq/kcore_seq.h"
#include "util/json.h"
#include "util/table.h"

namespace kcore::eval {

std::vector<ErrorSeries> run_fig4(const ExperimentOptions& options) {
  std::vector<ErrorSeries> all_series;
  for (const DatasetSpec& spec : dataset_registry()) {
    const graph::Graph g = spec.build(options.scale, options.base_seed);
    const auto truth = seq::coreness_bz(g);

    ErrorSeries series;
    series.name = spec.name;
    std::vector<double> sum_error;   // per round, summed over runs & nodes
    std::vector<double> max_error;   // per round, max over runs & nodes
    double execution_total = 0.0;

    // One Plan over the run seeds; the per-round error accumulation hangs
    // off the Plan's observer factory, the convergence tally off the
    // per-report hook.
    api::PlanSpec plan_spec;
    plan_spec.protocols = {std::string(api::kProtocolOneToOne)};
    for (int run = 0; run < options.runs; ++run) {
      plan_spec.seeds.push_back(options.base_seed + 3000 +
                                static_cast<unsigned>(run));
    }
    api::Plan plan(g, plan_spec);
    (void)plan.run(
        [&](const api::PlanCell&, int /*repeat*/,
            const api::DecomposeReport& result) {
          execution_total +=
              static_cast<double>(result.traffic.execution_time);
        },
        [&](const api::PlanCell&, int /*repeat*/) {
          return api::ProgressObserver([&](const api::ProgressEvent& event) {
            const std::size_t idx = event.round - 1;
            if (idx >= sum_error.size()) {
              sum_error.resize(idx + 1, 0.0);
              max_error.resize(idx + 1, 0.0);
            }
            double sum = 0.0;
            double mx = 0.0;
            for (graph::NodeId u = 0; u < g.num_nodes(); ++u) {
              const auto err = static_cast<double>(event.estimates[u]) -
                               static_cast<double>(truth[u]);
              sum += err;
              mx = std::max(mx, err);
            }
            sum_error[idx] += sum;
            max_error[idx] = std::max(max_error[idx], mx);
          });
        });
    series.execution_time_avg = execution_total / options.runs;
    series.avg_error.reserve(sum_error.size());
    for (const double s : sum_error) {
      series.avg_error.push_back(
          s / (static_cast<double>(g.num_nodes()) * options.runs));
    }
    series.max_error = std::move(max_error);
    all_series.push_back(std::move(series));
  }
  return all_series;
}

namespace {

void print_error_table(std::span<const ErrorSeries> series, bool use_max,
                       std::ostream& os) {
  std::size_t horizon = 0;
  for (const auto& s : series) {
    horizon = std::max(horizon,
                       use_max ? s.max_error.size() : s.avg_error.size());
  }
  // Sample rounds on a coarse grid to keep the terminal table readable.
  std::vector<std::size_t> sampled;
  for (std::size_t r = 1; r <= horizon;
       r += (r < 32 ? 2 : (r < 128 ? 8 : 32))) {
    sampled.push_back(r);
  }
  std::vector<std::string> header{"round"};
  for (const auto& s : series) header.push_back(s.name);
  util::TableWriter table(header);
  for (const std::size_t r : sampled) {
    std::vector<std::string> cells{std::to_string(r)};
    for (const auto& s : series) {
      const auto& data = use_max ? s.max_error : s.avg_error;
      if (r - 1 < data.size()) {
        cells.push_back(util::fmt_double(data[r - 1], use_max ? 0 : 4));
      } else {
        cells.push_back("0");  // converged
      }
    }
    table.add_row(std::move(cells));
  }
  table.print(os);

  std::ostringstream csv;
  table.print_csv(csv);
  const auto path = write_results_file(
      use_max ? "fig4_max_error.csv" : "fig4_avg_error.csv", csv.str());
  if (!path.empty()) os << "[csv] " << path << "\n";
}

}  // namespace

std::vector<AsyncErrorSeries> run_fig4_async(const ExperimentOptions& options) {
  std::vector<AsyncErrorSeries> all;
  if (!obs::kEnabled) return all;

  // One seeded run per profile. The period is a compromise: fine enough
  // to catch a handful of points on the small CI-scale profiles, coarse
  // enough that the sampler thread stays invisible next to the workers.
  const double period_ms = options.quick ? 0.2 : 0.1;
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  const unsigned threads = std::min(4u, hw);

  for (const DatasetSpec& spec : dataset_registry()) {
    const graph::Graph g = spec.build(options.scale, options.base_seed);
    const auto truth = seq::coreness_bz(g);
    double truth_sum = 0.0;
    for (const auto k : truth) truth_sum += static_cast<double>(k);

    api::RunOptions run_options;
    run_options.threads = threads;
    run_options.seed = options.base_seed + 77;
    run_options.obs.sample_period_ms = period_ms;
    const auto report =
        api::decompose(g, api::kProtocolBspAsync, run_options);

    AsyncErrorSeries series;
    series.name = spec.name;
    series.threads = threads;
    series.sample_period_ms = period_ms;
    series.truth_sum = truth_sum;
    series.run_ms = report.elapsed_ms;
    if (report.telemetry) {
      series.points.reserve(report.telemetry->samples.size());
      for (const obs::Sample& s : report.telemetry->samples) {
        series.points.push_back({s.t_ms, s.sum_estimates - truth_sum,
                                 s.outstanding, s.worklist_depth});
      }
    }
    all.push_back(std::move(series));
  }
  return all;
}

namespace {

std::string fig4_async_json(std::span<const AsyncErrorSeries> series) {
  std::ostringstream out;
  util::JsonWriter w(out, 2);
  w.begin_object();
  w.member("bench", "fig4_async_error");
  w.key("series").begin_array();
  for (const auto& s : series) {
    w.begin_object();
    w.member("dataset", s.name);
    w.member("threads", std::uint64_t{s.threads});
    w.member("sample_period_ms", s.sample_period_ms, 3);
    w.member("truth_sum", s.truth_sum, 1);
    w.member("run_ms", s.run_ms, 3);
    w.key("points").begin_array();
    for (const auto& p : s.points) {
      w.begin_object();
      w.member("t_ms", p.t_ms, 3);
      w.member("sum_error", p.sum_error, 1);
      w.member("outstanding", p.outstanding);
      w.member("worklist_depth", p.worklist_depth);
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return out.str();
}

}  // namespace

void print_fig4_async(std::span<const AsyncErrorSeries> series,
                      std::ostream& os) {
  if (series.empty()) {
    os << "(KCORE_OBS=OFF build: the sampler-based async error curve "
          "needs the telemetry layer)\n";
    return;
  }
  util::TableWriter table({"profile", "threads", "samples", "run ms",
                           "first err", "last err", "monotone"});
  for (const auto& s : series) {
    const double first = s.points.empty() ? 0.0 : s.points.front().sum_error;
    const double last = s.points.empty() ? 0.0 : s.points.back().sum_error;
    bool monotone = true;
    for (std::size_t i = 1; i < s.points.size(); ++i) {
      if (s.points[i].sum_error > s.points[i - 1].sum_error) monotone = false;
    }
    table.add_row({s.name, std::to_string(s.threads),
                   std::to_string(s.points.size()),
                   util::fmt_double(s.run_ms, 2), util::fmt_double(first, 0),
                   util::fmt_double(last, 0),
                   s.points.empty() ? "-" : (monotone ? "yes" : "NO")});
  }
  table.print(os);
  os << "\nReading: sum(estimates) - sum(coreness) sampled while the "
        "chaotic\nrelaxation runs — Theorem 2 makes it a monotone "
        "non-increasing upper\nbound, the Fig. 4 error curve with time "
        "instead of rounds on the x axis.\nProfiles with 0 samples "
        "converged before the first sampler period.\n";
  const auto path =
      write_results_file("fig4_async_error.json", fig4_async_json(series));
  if (!path.empty()) os << "[json] " << path << "\n";
}

void print_fig4(std::span<const ErrorSeries> series, std::ostream& os) {
  os << "Figure 4 (left) — average estimate error per round\n";
  print_error_table(series, /*use_max=*/false, os);
  os << "\nFigure 4 (right) — maximum estimate error per round\n";
  print_error_table(series, /*use_max=*/true, os);
  os << "\nConvergence (execution time, avg rounds):\n";
  util::TableWriter t({"profile", "t_avg"});
  for (const auto& s : series) {
    t.add_row({s.name, util::fmt_double(s.execution_time_avg)});
  }
  t.print(os);
}

}  // namespace kcore::eval
