#include <filesystem>
#include <fstream>

#include "eval/experiments.h"
#include "util/env.h"

namespace kcore::eval {

ExperimentOptions ExperimentOptions::from_env() {
  ExperimentOptions options;
  options.scale = util::env_double("KCORE_SCALE", options.scale);
  options.runs = static_cast<int>(util::env_int("KCORE_RUNS", options.runs));
  options.base_seed = static_cast<std::uint64_t>(
      util::env_int("KCORE_SEED", static_cast<std::int64_t>(options.base_seed)));
  options.quick = util::env_bool("KCORE_QUICK", options.quick);
  KCORE_CHECK_MSG(options.scale > 0.0, "KCORE_SCALE must be positive");
  KCORE_CHECK_MSG(options.runs >= 1, "KCORE_RUNS must be >= 1");
  if (options.quick) {
    options.runs = std::min(options.runs, 2);
    options.scale = std::min(options.scale, 0.05);
  }
  return options;
}

std::string write_results_file(const std::string& name,
                               const std::string& content) {
  namespace fs = std::filesystem;
  std::error_code ec;
  fs::create_directories("results", ec);
  if (ec) return {};
  const std::string path = "results/" + name;
  std::ofstream out(path);
  if (!out.good()) return {};
  out << content;
  out.flush();
  return out.good() ? path : std::string{};
}

}  // namespace kcore::eval
