// Synthetic stand-ins for the paper's nine SNAP datasets.
//
// The SNAP files are not available offline, so each dataset is replaced by
// a generator tuned to reproduce the structural character that drives the
// paper's results (degree-distribution shape, coreness profile, diameter
// regime) at a tractable scale. The full mapping and its rationale live in
// DESIGN.md §2; the paper's measured numbers are embedded here so every
// bench binary can print paper-vs-ours side by side.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "graph/graph.h"

namespace kcore::eval {

/// The row the paper reports for this dataset (Table 1).
struct PaperStats {
  std::uint64_t nodes = 0;
  std::uint64_t edges = 0;
  std::uint32_t diameter = 0;
  std::uint32_t max_degree = 0;
  std::uint32_t k_max = 0;
  double k_avg = 0.0;
  double t_avg = 0.0;
  std::uint32_t t_min = 0;
  std::uint32_t t_max = 0;
  double m_avg = 0.0;
  double m_max = 0.0;
};

struct DatasetSpec {
  std::string name;        // our profile name, e.g. "astroph-like"
  std::string paper_name;  // the SNAP dataset it substitutes
  PaperStats paper;
  /// Build the synthetic graph. `scale` multiplies node counts (1.0 =
  /// default laptop scale, documented per profile); `seed` controls all
  /// randomness.
  std::function<graph::Graph(double scale, std::uint64_t seed)> build;
};

/// All nine profiles, in the paper's Table 1 order.
[[nodiscard]] const std::vector<DatasetSpec>& dataset_registry();

/// Lookup by profile name; throws util::CheckError if unknown.
[[nodiscard]] const DatasetSpec& dataset_by_name(std::string_view name);

}  // namespace kcore::eval
