// Stock vertex programs for the mini-Pregel engine.
//
// Besides validating the framework against independently-implemented
// answers (graph/stats BFS and components), these are the programs used
// by bench/ablation_bsp to demonstrate what combiners buy: label
// propagation and hop-distance both admit a MIN combiner, so all messages
// from one worker to one target vertex collapse into a single delivery.
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <span>

#include "bsp/pregel.h"

namespace kcore::bsp {

/// Connected components by minimum-label flooding: every vertex adopts
/// the smallest vertex id seen in its component; converges in O(diameter)
/// supersteps. MIN-combinable.
struct MinLabelProgram {
  using Message = NodeId;
  struct Value {
    NodeId label = 0;
  };

  static Message combine(const Message& a, const Message& b) {
    return std::min(a, b);
  }

  void init(VertexContext<Message>& ctx, Value& value) {
    value.label = ctx.vertex();
    ctx.send_to_neighbors(value.label);
    ctx.vote_to_halt();
  }

  void compute(VertexContext<Message>& ctx, Value& value,
               std::span<const Message> messages) {
    NodeId best = value.label;
    for (const Message& m : messages) best = std::min(best, m);
    if (best < value.label) {
      value.label = best;
      ctx.send_to_neighbors(best);
    }
    ctx.vote_to_halt();
  }
};

/// Single-source hop distances (BFS via message waves). MIN-combinable.
struct HopDistanceProgram {
  using Message = std::uint32_t;
  struct Value {
    std::uint32_t distance = std::numeric_limits<std::uint32_t>::max();
  };

  NodeId source = 0;

  static Message combine(const Message& a, const Message& b) {
    return std::min(a, b);
  }

  void init(VertexContext<Message>& ctx, Value& value) {
    if (ctx.vertex() == source) {
      value.distance = 0;
      ctx.send_to_neighbors(1);
    }
    ctx.vote_to_halt();
  }

  void compute(VertexContext<Message>& ctx, Value& value,
               std::span<const Message> messages) {
    Message best = std::numeric_limits<std::uint32_t>::max();
    for (const Message& m : messages) best = std::min(best, m);
    if (best < value.distance) {
      value.distance = best;
      ctx.send_to_neighbors(best + 1);
    }
    ctx.vote_to_halt();
  }
};

/// Degree-sum sanity program (one superstep of neighbor degree exchange);
/// exists mainly to exercise programs WITHOUT a combiner in tests.
struct NeighborDegreeSumProgram {
  using Message = std::uint64_t;
  struct Value {
    std::uint64_t sum = 0;
  };

  void init(VertexContext<Message>& ctx, Value&) {
    ctx.send_to_neighbors(ctx.degree());
    ctx.vote_to_halt();
  }

  void compute(VertexContext<Message>& ctx, Value& value,
               std::span<const Message> messages) {
    for (const Message& m : messages) value.sum += m;
    ctx.vote_to_halt();
  }
};

}  // namespace kcore::bsp
