// A miniature Pregel: bulk-synchronous vertex-centric computation.
//
// The paper's conclusion names Pregel [9] (and MapReduce [4]) as the
// intended deployment vehicle: "the computation is divided in logical
// units ... divided among a collection of computational processes, termed
// workers". This module implements that model faithfully enough to run
// the k-core decomposition as a vertex program (core/pregel_kcore.h) and
// to measure what the framework buys (combiners!) and costs:
//
//  * supersteps with a global barrier (BSP);
//  * vertex programs with compute(), vote_to_halt(), message passing
//    along out-edges;
//  * workers owning partitions of vertices (assignment policies reused
//    from core/assignment.h);
//  * optional message combiners — for k-core the MIN combiner collapses
//    all estimates headed to the same vertex into one message, the same
//    idea as Algorithm 3's host-local batching;
//  * aggregators (sum/min/max reduced across all vertices each
//    superstep, available to every vertex in the next one) — used for
//    termination statistics.
//
// Everything is deterministic: workers are simulated sequentially in a
// fixed order; there is no wall-clock nondeterminism to leak into
// results.
#pragma once

#include <concepts>
#include <cstdint>
#include <optional>
#include <span>
#include <unordered_set>
#include <vector>

#include "graph/graph.h"
#include "sim/engine.h"
#include "util/check.h"

namespace kcore::bsp {

using graph::Graph;
using graph::NodeId;
using WorkerId = sim::HostId;

/// Statistics for one finished BSP run.
struct BspStats {
  std::uint64_t supersteps = 0;
  /// Messages emitted by vertex programs (before combining).
  std::uint64_t messages_emitted = 0;
  /// Messages actually delivered after per-(worker,target) combining.
  std::uint64_t messages_delivered = 0;
  /// Cross-worker deliveries (the expensive kind in a real deployment).
  std::uint64_t messages_cross_worker = 0;
  bool converged = false;
};

/// Requirements on a vertex program:
///
///   struct Program {
///     using Message = ...;                 // copyable
///     using Value = ...;                   // per-vertex state
///     // Optional combiner: fold two messages headed for one vertex.
///     static Message combine(const Message&, const Message&);
///     void init(VertexContext&, Value&);   // superstep 0, no messages
///     void compute(VertexContext&, Value&, std::span<const Message>);
///   };
///
/// Programs without a combiner omit `combine`; detection is via concept.
template <typename P>
concept HasCombiner = requires(const typename P::Message& a,
                               const typename P::Message& b) {
  { P::combine(a, b) } -> std::convertible_to<typename P::Message>;
};

/// Context passed to a vertex's compute(); sends target neighbors by
/// adjacency index or any vertex by id.
template <typename Message>
class VertexContext {
 public:
  VertexContext(NodeId self, const Graph* g, std::uint64_t superstep)
      : self_(self), graph_(g), superstep_(superstep) {}

  [[nodiscard]] NodeId vertex() const noexcept { return self_; }
  [[nodiscard]] std::uint64_t superstep() const noexcept {
    return superstep_;
  }
  [[nodiscard]] std::span<const NodeId> neighbors() const {
    return graph_->neighbors(self_);
  }
  [[nodiscard]] NodeId degree() const { return graph_->degree(self_); }

  /// Queue a message for delivery in the next superstep.
  void send(NodeId to, Message m) { outbox_.push_back({to, std::move(m)}); }

  /// Send the same message to every neighbor.
  void send_to_neighbors(const Message& m) {
    for (const NodeId v : neighbors()) outbox_.push_back({v, m});
  }

  /// Ask to be deactivated; the vertex is revived by any incoming message.
  void vote_to_halt() noexcept { halted_ = true; }

  // Engine-facing access (public rather than friend-templated to keep the
  // header readable; user programs have no reason to touch these).
  struct Outgoing {
    NodeId to;
    Message payload;
  };
  [[nodiscard]] std::vector<Outgoing>& outbox() noexcept { return outbox_; }
  [[nodiscard]] bool halted() const noexcept { return halted_; }

 private:
  NodeId self_;
  const Graph* graph_;
  std::uint64_t superstep_;
  std::vector<Outgoing> outbox_;
  bool halted_ = false;
};

/// The BSP engine: runs a vertex program over all nodes of a graph with
/// the given worker assignment until every vertex has halted and no
/// messages are in flight (Pregel's termination condition).
template <typename Program>
class PregelEngine {
 public:
  using Message = typename Program::Message;
  using Value = typename Program::Value;

  PregelEngine(const Graph* g, std::vector<WorkerId> owner,
               WorkerId num_workers, Program program = Program{})
      : graph_(g),
        owner_(std::move(owner)),
        num_workers_(num_workers),
        program_(program) {
    KCORE_CHECK_MSG(owner_.size() == g->num_nodes(),
                    "owner vector size mismatch");
    KCORE_CHECK_MSG(num_workers_ >= 1, "need at least one worker");
    values_.resize(g->num_nodes());
    active_.assign(g->num_nodes(), true);
    inbox_.resize(g->num_nodes());
    next_inbox_.resize(g->num_nodes());
  }

  /// Run to termination (or the superstep cap). Returns statistics;
  /// values() affords access to the final vertex states. The observer is
  /// invoked after every completed superstep with (0-based superstep
  /// index, vertex values, statistics so far) — the hook behind the
  /// facade's unified streaming ProgressObserver.
  template <typename Observer>
    requires std::invocable<Observer&, std::uint64_t,
                            std::span<const typename Program::Value>,
                            const BspStats&>
  BspStats run(Observer&& observer, std::uint64_t max_supersteps = 1000000) {
    BspStats stats;
    // Superstep 0: init, no messages.
    for (NodeId u = 0; u < graph_->num_nodes(); ++u) {
      VertexContext<Message> ctx(u, graph_, 0);
      program_.init(ctx, values_[u]);
      flush(u, ctx, stats);
    }
    observer(stats.supersteps, std::span<const Value>(values_), stats);
    ++stats.supersteps;
    swap_inboxes();

    while (stats.supersteps < max_supersteps) {
      bool any_active = false;
      for (NodeId u = 0; u < graph_->num_nodes(); ++u) {
        if (!active_[u] && inbox_[u].empty()) continue;
        any_active = true;
        active_[u] = true;  // message receipt revives a halted vertex
        VertexContext<Message> ctx(u, graph_, stats.supersteps);
        program_.compute(ctx, values_[u], inbox_[u]);
        inbox_[u].clear();
        flush(u, ctx, stats);
      }
      if (!any_active) {
        stats.converged = true;
        break;
      }
      observer(stats.supersteps, std::span<const Value>(values_), stats);
      ++stats.supersteps;
      swap_inboxes();
    }
    return stats;
  }

  /// Run without an observer.
  BspStats run(std::uint64_t max_supersteps = 1000000) {
    return run([](std::uint64_t, std::span<const Value>,
                  const BspStats&) {},
               max_supersteps);
  }

  [[nodiscard]] std::span<const Value> values() const noexcept {
    return values_;
  }
  [[nodiscard]] WorkerId num_workers() const noexcept { return num_workers_; }

 private:
  void flush(NodeId u, VertexContext<Message>& ctx, BspStats& stats) {
    stats.messages_emitted += ctx.outbox().size();
    for (auto& out : ctx.outbox()) {
      KCORE_DCHECK(out.to < graph_->num_nodes());
      deliver(u, out.to, std::move(out.payload), stats);
    }
    active_[u] = !ctx.halted();
  }

  void deliver(NodeId from, NodeId to, Message&& m, BspStats& stats) {
    auto& box = next_inbox_[to];
    if constexpr (HasCombiner<Program>) {
      // Pregel combiners fold messages per (origin worker, target): one
      // physical message per worker per target per superstep. The folded
      // value is kept in a single slot (valid for associative/commutative
      // combiners); the traffic accounting below still charges one
      // delivery per distinct origin worker.
      const std::uint64_t key =
          (static_cast<std::uint64_t>(owner_[from]) << 32) | to;
      if (combined_this_step_.insert(key).second) {
        ++stats.messages_delivered;
        if (owner_[from] != owner_[to]) ++stats.messages_cross_worker;
      }
      if (!box.empty()) {
        box.front() = Program::combine(box.front(), m);
      } else {
        box.push_back(std::move(m));
      }
      return;
    } else {
      box.push_back(std::move(m));
      ++stats.messages_delivered;
      if (owner_[from] != owner_[to]) ++stats.messages_cross_worker;
    }
  }

  void swap_inboxes() {
    inbox_.swap(next_inbox_);
    for (auto& box : next_inbox_) box.clear();
    combined_this_step_.clear();
  }

  const Graph* graph_;
  std::vector<WorkerId> owner_;
  WorkerId num_workers_;
  Program program_;
  std::vector<Value> values_;
  std::vector<bool> active_;
  std::vector<std::vector<Message>> inbox_;
  std::vector<std::vector<Message>> next_inbox_;
  std::unordered_set<std::uint64_t> combined_this_step_;
};

}  // namespace kcore::bsp
