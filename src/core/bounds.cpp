#include "core/bounds.h"

#include <cstdint>
#include <vector>

#include "graph/stats.h"
#include "util/check.h"

namespace kcore::core {

TheoryBounds compute_bounds(const graph::Graph& g,
                            const std::vector<graph::NodeId>& coreness) {
  KCORE_CHECK_MSG(coreness.size() == g.num_nodes(),
                  "coreness vector size mismatch");
  TheoryBounds b;

  // Theorem 4: 1 + Σ (d(u) - k(u)).
  std::uint64_t initial_error = 0;
  for (graph::NodeId u = 0; u < g.num_nodes(); ++u) {
    KCORE_CHECK_MSG(coreness[u] <= g.degree(u),
                    "coreness " << coreness[u] << " exceeds degree "
                                << g.degree(u) << " at node " << u);
    initial_error += g.degree(u) - coreness[u];
  }
  b.theorem4_rounds = 1 + initial_error;

  // Theorem 5: N.
  b.theorem5_rounds = g.num_nodes();

  // Corollary 1: N - K + 1.
  const auto degrees = graph::degree_summary(g);
  b.corollary1_rounds =
      g.num_nodes() - degrees.num_min_degree_nodes + 1;

  // Corollary 2: Σ d(u)^2 - 2M.
  std::uint64_t sum_sq = 0;
  for (graph::NodeId u = 0; u < g.num_nodes(); ++u) {
    const std::uint64_t d = g.degree(u);
    sum_sq += d * d;
  }
  b.corollary2_messages = sum_sq - g.num_arcs();
  return b;
}

}  // namespace kcore::core
