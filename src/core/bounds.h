// Complexity bounds from §4.2/§4.3, as executable checks.
//
// These are used by tests and by bench/worstcase_bounds to verify that
// every measured run respects:
//   Theorem 4   — execution time <= 1 + Σ_u (d(u) - k(u)),
//   Theorem 5   — execution time <= N,
//   Corollary 1 — execution time <= N - K + 1 (K = # min-degree nodes),
//   Corollary 2 — #messages      <= Σ_u d(u)^2 - 2M.
// The bounds are stated for the synchronous, unoptimized one-to-one
// protocol; they hold a fortiori for the optimized variant.
//
// Metric note. The paper defines execution time as T+1, where T is the
// first round with every estimate correct, "includ[ing] also the last
// round, in which updates are sent but they have no further effect"
// (footnote to Theorem 5). Empirically (star graphs, cliques) the paper's
// own statements of Theorem 4 and Corollary 1 are tight only for T — the
// number of traffic-carrying rounds, our TrafficStats::execution_time —
// while Theorem 5's N covers T+1, our TrafficStats::rounds_executed
// (the Figure 3 worst case achieves rounds_executed == N-1 exactly).
// tests/test_bounds.cpp checks each bound against the metric for which it
// actually holds.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace kcore::core {

struct TheoryBounds {
  std::uint64_t theorem4_rounds = 0;
  std::uint64_t theorem5_rounds = 0;
  std::uint64_t corollary1_rounds = 0;
  std::uint64_t corollary2_messages = 0;
  /// min over the round bounds — the strongest guarantee available.
  [[nodiscard]] std::uint64_t best_round_bound() const noexcept {
    std::uint64_t best = theorem4_rounds;
    if (theorem5_rounds < best) best = theorem5_rounds;
    if (corollary1_rounds < best) best = corollary1_rounds;
    return best;
  }
};

/// Evaluate all §4 bounds for graph `g` with known true `coreness`.
[[nodiscard]] TheoryBounds compute_bounds(
    const graph::Graph& g, const std::vector<graph::NodeId>& coreness);

}  // namespace kcore::core
