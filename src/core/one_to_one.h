// The one-to-one distributed k-core protocol (§3.1, Algorithms 1 + 2).
//
// Every graph node is its own host. Each node keeps
//   core     — its coreness estimate, initialized to its degree,
//   est[v]   — the freshest estimate received from each neighbor v
//              (+infinity until heard from),
//   changed  — dirty flag controlling the periodic flush.
// On receiving <v, k> with k < est[v] it lowers est[v] and recomputes its
// own estimate with computeIndex; every δ (= one simulator round) it
// broadcasts its estimate to its neighbors if changed.
//
// Implementation note: Algorithm 1 recomputes computeIndex after every
// message. We instead mark a dirty flag on receipt and recompute once per
// round before flushing. Because computeIndex with cap k equals
// min(k, I(est)) where I is monotone non-increasing in est, folding the
// per-message recomputations into one per round yields the identical
// estimate at every flush point — and therefore identical messages,
// rounds, and results — while avoiding O(degree) work per message on hubs.
//
// The §3.1.2 optimization ("targeted send": transmit to v only when
// core < est[v], i.e. when the update can possibly affect v) is switched
// by OneToOneConfig::targeted_send and is reproduced as the ~50% message
// saving in bench/ablation_optimizations.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "core/compute_index.h"
#include "core/run_options.h"
#include "graph/graph.h"
#include "sim/engine.h"

namespace kcore::core {

/// Estimate update message <node, estimate> of Algorithm 1.
struct NodeEstimate {
  graph::NodeId node = 0;
  graph::NodeId estimate = 0;

  friend bool operator==(const NodeEstimate&, const NodeEstimate&) = default;
};

/// Protocol state machine for a single node; plugs into sim::Engine.
class OneToOneNode {
 public:
  using Message = NodeEstimate;

  /// `graph` must outlive the node. `self` is both the node and host id.
  OneToOneNode(const graph::Graph* graph, graph::NodeId self,
               bool targeted_send)
      : graph_(graph),
        self_(self),
        targeted_send_(targeted_send),
        core_(graph->degree(self)),
        est_(graph->degree(self), kEstimateInfinity) {}

  void on_message(sim::HostId from, const Message& m);

  void on_round(sim::Context<Message>& ctx);

  /// Current coreness estimate (== true coreness after convergence).
  [[nodiscard]] graph::NodeId core() const noexcept { return core_; }

  /// Last round in which this node sent messages (0 = never); used by the
  /// termination-detection experiments.
  [[nodiscard]] std::uint64_t last_send_round() const noexcept {
    return last_send_round_;
  }

  /// Number of active<->quiet status flips over the run (feeds the
  /// centralized termination-detector cost model, §3.3).
  [[nodiscard]] std::uint64_t activity_transitions() const noexcept {
    return transitions_;
  }

 private:
  /// Index of `v` within this node's sorted neighbor list.
  [[nodiscard]] std::size_t slot_of(graph::NodeId v) const;

  const graph::Graph* graph_;
  graph::NodeId self_;
  bool targeted_send_;
  graph::NodeId core_;
  bool changed_ = true;      // "on initialization ... send" => dirty start
  bool recompute_ = false;   // estimates dirtied since last computeIndex
  bool prev_active_ = false;
  std::uint64_t transitions_ = 0;
  std::uint64_t last_send_round_ = 0;
  std::vector<graph::NodeId> est_;  // aligned with graph_->neighbors(self_)
  std::vector<graph::NodeId> scratch_;
};

/// Configuration for a one-to-one run: the shared option set. Consumed
/// fields: mode, targeted_send, seed, max_rounds (0 = a Theorem-5-derived
/// bound plus slack), faults. num_hosts/assignment/comm are ignored —
/// every node is its own host here.
using OneToOneConfig = RunOptions;

/// Legacy per-round observer: round index plus the current estimate of
/// every node. Estimates are monotone non-increasing over rounds.
/// Subsumed by core::ProgressObserver (which adds message counts); kept
/// for call sites that only need the estimate stream.
using EstimateObserver =
    std::function<void(std::uint64_t round,
                       std::span<const graph::NodeId> estimates)>;

struct OneToOneResult {
  std::vector<graph::NodeId> coreness;  // final estimates
  sim::TrafficStats traffic;
  /// Per-node round of last send (activity profile used by the
  /// termination-detection analysis).
  std::vector<std::uint64_t> last_send_round;
  /// Per-node active<->quiet flips (control-message cost of §3.3's
  /// centralized detector).
  std::vector<std::uint64_t> activity_transitions;
};

/// Build the per-node protocol state machines — the amortizable setup of
/// a run (one OneToOneNode per node, estimate slots sized to the
/// degrees). A prepared vector is pristine: copy it and hand the copy to
/// run_one_to_one_prepared to execute the same request repeatedly.
[[nodiscard]] std::vector<OneToOneNode> make_one_to_one_nodes(
    const graph::Graph& g, bool targeted_send);

/// Drive pre-built nodes to quiescence. `nodes` is consumed (the engine
/// mutates it in place); config.targeted_send is ignored here — it was
/// baked into the nodes by make_one_to_one_nodes. run_one_to_one is
/// exactly make_one_to_one_nodes + this, bit for bit.
[[nodiscard]] OneToOneResult run_one_to_one_prepared(
    const graph::Graph& g, std::vector<OneToOneNode> nodes,
    const OneToOneConfig& config, const ProgressObserver& observer = {});

/// Run Algorithm 1 on every node of `g` until quiescence (or the round
/// cap). The result's coreness equals the true decomposition whenever
/// traffic.converged is true (Theorems 2+3). The observer overloads
/// stream per-round progress; a lambda taking (round, span) binds to the
/// EstimateObserver form, one taking (const ProgressEvent&) to the
/// unified form.
[[nodiscard]] OneToOneResult run_one_to_one(const graph::Graph& g,
                                            const OneToOneConfig& config);
[[nodiscard]] OneToOneResult run_one_to_one(const graph::Graph& g,
                                            const OneToOneConfig& config,
                                            const EstimateObserver& observer);
[[nodiscard]] OneToOneResult run_one_to_one(const graph::Graph& g,
                                            const OneToOneConfig& config,
                                            const ProgressObserver& observer);

}  // namespace kcore::core
