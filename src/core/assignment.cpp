#include "core/assignment.h"

#include <cstdint>
#include <vector>

#include "util/check.h"
#include "util/rng.h"

namespace kcore::core {

const char* to_string(AssignmentPolicy policy) {
  switch (policy) {
    case AssignmentPolicy::kModulo:
      return "modulo";
    case AssignmentPolicy::kBlock:
      return "block";
    case AssignmentPolicy::kRandom:
      return "random";
    case AssignmentPolicy::kHash:
      return "hash";
  }
  return "?";
}

std::vector<sim::HostId> assign_nodes(graph::NodeId num_nodes,
                                      sim::HostId num_hosts,
                                      AssignmentPolicy policy,
                                      std::uint64_t seed) {
  KCORE_CHECK_MSG(num_hosts >= 1, "need at least one host");
  std::vector<sim::HostId> owner(num_nodes);
  switch (policy) {
    case AssignmentPolicy::kModulo:
      for (graph::NodeId u = 0; u < num_nodes; ++u) {
        owner[u] = u % num_hosts;
      }
      break;
    case AssignmentPolicy::kBlock: {
      // Evenly sized contiguous ranges (first `rem` blocks one node larger).
      const graph::NodeId base = num_nodes / num_hosts;
      const graph::NodeId rem = num_nodes % num_hosts;
      graph::NodeId u = 0;
      for (sim::HostId h = 0; h < num_hosts && u < num_nodes; ++h) {
        const graph::NodeId size = base + (h < rem ? 1 : 0);
        for (graph::NodeId i = 0; i < size; ++i) owner[u++] = h;
      }
      break;
    }
    case AssignmentPolicy::kRandom: {
      util::Xoshiro256 rng(seed);
      for (graph::NodeId u = 0; u < num_nodes; ++u) {
        owner[u] = static_cast<sim::HostId>(rng.next_below(num_hosts));
      }
      break;
    }
    case AssignmentPolicy::kHash:
      for (graph::NodeId u = 0; u < num_nodes; ++u) {
        util::SplitMix64 sm(seed ^ u);
        owner[u] = static_cast<sim::HostId>(sm.next() % num_hosts);
      }
      break;
  }
  return owner;
}

}  // namespace kcore::core
