#include "core/termination.h"

#include <cstddef>
#include <cstdint>
#include <vector>

#include "seq/kcore_seq.h"
#include "util/check.h"

namespace kcore::core {

ApproximateResult approximate_coreness(const graph::Graph& g,
                                       std::uint64_t rounds,
                                       const OneToOneConfig& config) {
  KCORE_CHECK_MSG(rounds >= 1, "need at least one round");
  OneToOneConfig capped = config;
  capped.max_rounds = rounds;
  const auto run = run_one_to_one(g, capped);

  ApproximateResult result;
  result.estimates = run.coreness;
  const auto truth = seq::coreness_bz(g);
  double total_error = 0.0;
  std::size_t exact = 0;
  for (graph::NodeId u = 0; u < g.num_nodes(); ++u) {
    KCORE_CHECK_MSG(run.coreness[u] >= truth[u],
                    "safety violated at node " << u);
    const graph::NodeId err = run.coreness[u] - truth[u];
    total_error += static_cast<double>(err);
    if (err == 0) ++exact;
    if (err > result.max_error) result.max_error = err;
  }
  result.avg_error = total_error / static_cast<double>(g.num_nodes());
  result.fraction_exact =
      static_cast<double>(exact) / static_cast<double>(g.num_nodes());
  return result;
}

CentralizedTermination centralized_termination(
    std::uint64_t execution_time,
    const std::vector<std::uint64_t>& activity_transitions) {
  CentralizedTermination out;
  // The final traffic-bearing round is execution_time; the quiet reports
  // triggered by it reach the master in the following round.
  out.detection_round = execution_time + 1;
  for (const std::uint64_t t : activity_transitions) {
    out.control_messages += t;
  }
  return out;
}

}  // namespace kcore::core
