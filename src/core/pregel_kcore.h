// k-core decomposition as a Pregel vertex program.
//
// The paper's conclusion proposes porting the algorithm to Pregel-style
// frameworks; this is that port, running Algorithm 1 inside the BSP model
// of src/bsp. Each vertex keeps its estimate and the freshest estimates
// of its neighbors; compute() applies computeIndex and re-broadcasts on
// change; vote_to_halt() makes Pregel's own termination detection play
// the role of §3.3 (a vertex is revived by any incoming message, and the
// job ends when every vertex has halted with no messages in flight —
// exactly the centralized master/slaves scheme, which a BSP barrier gives
// for free).
//
// Estimate messages cannot be combined into one value per target (the
// receiver needs per-neighbor estimates to evaluate computeIndex), so
// this program deliberately has no combiner; bench/ablation_bsp contrasts
// it with MIN-combinable programs to show the difference.
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "bsp/pregel.h"
#include "core/assignment.h"
#include "core/compute_index.h"
#include "core/one_to_one.h"
#include "core/run_options.h"

namespace kcore::core {

struct PregelKCoreProgram {
  using Message = NodeEstimate;
  struct Value {
    graph::NodeId core = 0;
    /// est[i] for neighbors()[i], kEstimateInfinity until heard from.
    std::vector<graph::NodeId> est;
  };

  /// §3.1.2 targeted-send optimization toggle.
  bool targeted_send = true;

  void init(bsp::VertexContext<Message>& ctx, Value& value) {
    value.core = ctx.degree();
    value.est.assign(ctx.degree(), kEstimateInfinity);
    ctx.send_to_neighbors({ctx.vertex(), value.core});
    ctx.vote_to_halt();
  }

  void compute(bsp::VertexContext<Message>& ctx, Value& value,
               std::span<const Message> messages) {
    const auto nbrs = ctx.neighbors();
    bool lowered = false;
    for (const Message& m : messages) {
      const auto it = std::lower_bound(nbrs.begin(), nbrs.end(), m.node);
      KCORE_DCHECK(it != nbrs.end() && *it == m.node);
      const auto slot = static_cast<std::size_t>(it - nbrs.begin());
      if (m.estimate < value.est[slot]) {
        value.est[slot] = m.estimate;
        lowered = true;
      }
    }
    if (lowered) {
      std::vector<graph::NodeId> scratch;
      const graph::NodeId t = compute_index(value.est, value.core, scratch);
      if (t < value.core) {
        value.core = t;
        for (std::size_t i = 0; i < nbrs.size(); ++i) {
          if (targeted_send && value.core >= value.est[i]) continue;
          ctx.send(nbrs[i], {ctx.vertex(), value.core});
        }
      }
    }
    ctx.vote_to_halt();
  }
};

/// Convenience driver: run the Pregel port over `g` with `num_workers`
/// workers, returning the coreness and BSP statistics.
struct PregelKCoreResult {
  std::vector<graph::NodeId> coreness;
  bsp::BspStats stats;
};

/// `assignment` partitions vertices over workers (the paper's default is
/// modulo); `seed` only matters for AssignmentPolicy::kRandom. The
/// observer streams one ProgressEvent per superstep (round = 1-based
/// superstep, messages = deliveries so far). `max_supersteps` caps the
/// run (0 = the engine's generous default); a capped run reports
/// stats.converged == false.
[[nodiscard]] PregelKCoreResult run_pregel_kcore(
    const graph::Graph& g, bsp::WorkerId num_workers,
    bool targeted_send = true,
    AssignmentPolicy assignment = AssignmentPolicy::kModulo,
    std::uint64_t seed = 0, const ProgressObserver& observer = {},
    std::uint64_t max_supersteps = 0);

/// Prepared variant: the caller computed the vertex→worker assignment
/// once (core::assign_nodes) and replays it across runs. `owner` is
/// consumed by the engine; pass a copy per run. run_pregel_kcore is
/// exactly assign_nodes + this, bit for bit.
[[nodiscard]] PregelKCoreResult run_pregel_kcore_prepared(
    const graph::Graph& g, std::vector<bsp::WorkerId> owner,
    bsp::WorkerId num_workers, bool targeted_send,
    const ProgressObserver& observer = {}, std::uint64_t max_supersteps = 0);

}  // namespace kcore::core
