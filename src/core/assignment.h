// Node-to-host assignment policies for the one-to-many scenario (§3.2.2).
//
// The paper adopts "node u is assigned to host (u mod |H|)" and notes that
// efficient general heuristics are hard. We ship that policy plus three
// alternatives used by the assignment ablation benchmark:
//   kBlock  — contiguous ranges (preserves generator locality),
//   kRandom — a seeded uniform permutation,
//   kHash   — SplitMix64 of the node id (modulo with id-structure broken).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "sim/engine.h"

namespace kcore::core {

enum class AssignmentPolicy {
  kModulo,  // the paper's policy
  kBlock,
  kRandom,
  kHash,
};

[[nodiscard]] const char* to_string(AssignmentPolicy policy);

/// Compute owner[u] for every node. `seed` only affects kRandom.
[[nodiscard]] std::vector<sim::HostId> assign_nodes(graph::NodeId num_nodes,
                                                    sim::HostId num_hosts,
                                                    AssignmentPolicy policy,
                                                    std::uint64_t seed = 0);

}  // namespace kcore::core
