// computeIndex — Algorithm 2 of the paper.
//
// Given the current estimates of a node's neighbors and the node's own
// current estimate k, return the largest value i <= k such that at least i
// neighbors have estimate >= i. This is the local operator whose repeated
// application drives both distributed algorithms; by Theorem 1 its fixed
// point is exactly the coreness.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.h"

namespace kcore::core {

using graph::NodeId;

/// "+infinity" estimate for neighbors not heard from yet. Any real
/// estimate (bounded by degree) is below this.
inline constexpr NodeId kEstimateInfinity = graph::kInvalidNode;

/// Algorithm 2. `neighbor_estimates` are the est[] entries for every
/// neighbor of u (order irrelevant); `k` is u's current estimate (the cap).
/// Runs in O(|neighbors| + k); the `counts` scratch buffer is caller-
/// provided so hot loops can reuse it across calls.
///
/// Returns 0 when k == 0 (isolated node); otherwise a value in [1, k].
[[nodiscard]] inline NodeId compute_index(
    std::span<const NodeId> neighbor_estimates, NodeId k,
    std::vector<NodeId>& counts) {
  if (k == 0) return 0;
  counts.assign(static_cast<std::size_t>(k) + 1, 0);
  // count[j] = number of neighbors whose (clamped) estimate is exactly j.
  for (const NodeId est : neighbor_estimates) {
    const NodeId j = std::min(k, est);
    ++counts[j];
  }
  // Suffix-sum so count[i] = number of neighbors with estimate >= i.
  for (NodeId i = k; i >= 2; --i) {
    counts[i - 1] = static_cast<NodeId>(counts[i - 1] + counts[i]);
  }
  // Largest i with count[i] >= i.
  NodeId i = k;
  while (i > 1 && counts[i] < i) --i;
  return i;
}

/// Convenience overload allocating its own scratch (tests, cold paths).
[[nodiscard]] inline NodeId compute_index(
    std::span<const NodeId> neighbor_estimates, NodeId k) {
  std::vector<NodeId> scratch;
  return compute_index(neighbor_estimates, k, scratch);
}

// --- epoch-stamped hot-path variant -----------------------------------------
// The vector-scratch kernel above pays an O(k) counts.assign on EVERY
// call, plus two more O(k) passes (suffix sum + answer scan) — three
// sweeps over the slot array even when the estimate barely moves.
// IndexScratch replaces the clear with lazy epoch validation — each slot
// packs (stamp, count) into one 64-bit word and is live only when its
// stamp matches the current call's epoch — and fuses the suffix sum with
// the answer scan into one downward walk that STOPS at the answer. Cost
// drops from O(|neighbors| + 3k) to O(|neighbors| + (k - answer)); at
// the fixed point (answer == k, the common case once the run converges)
// the walk is O(1), and no clear pass ever runs.

/// Reusable epoch-stamped scratch for the hot-path compute_index
/// overloads. One instance per worker thread; grows to the largest k
/// ever seen and never shrinks, so steady-state calls are allocation-free.
class IndexScratch {
 public:
  /// Algorithm 2 with the estimates streamed from a callable:
  /// `estimate_of(i)` returns the estimate of the i-th neighbor. Lets hot
  /// loops read a shared atomic table directly — no gather buffer.
  template <typename EstimateOf>
  [[nodiscard]] NodeId compute_index_stream(std::size_t num_neighbors,
                                            NodeId k,
                                            EstimateOf&& estimate_of) {
    if (k == 0) return 0;
    ensure(static_cast<std::size_t>(k) + 1);
    if (++epoch_ == 0) {
      // One amortized re-zero every 2^32 calls keeps the stamps 32-bit
      // (and the slot a single cache-friendly word).
      std::fill(slot_.begin(), slot_.end(), 0);
      epoch_ = 1;
    }
    const std::uint64_t stamped = static_cast<std::uint64_t>(epoch_) << 32;
    // Low word: neighbors whose clamped estimate is exactly j; valid only
    // when the high word matches this call's epoch (stale slots read as
    // implicitly zero — no clear pass).
    for (std::size_t i = 0; i < num_neighbors; ++i) {
      const NodeId j = std::min(k, estimate_of(i));
      const std::uint64_t slot = slot_[j];
      slot_[j] = (slot >> 32) == epoch_ ? slot + 1 : stamped | 1;
    }
    // Downward walk: cum = #neighbors with estimate >= i. The largest
    // i >= 2 with cum >= i is the answer (floor 1, matching the vector
    // kernel's contract); the walk exits there instead of sweeping to 1.
    NodeId cum = live_count(slot_[k]);
    NodeId i = k;
    while (i >= 2) {
      if (cum >= i) return i;
      --i;
      cum = static_cast<NodeId>(cum + live_count(slot_[i]));
    }
    return 1;
  }

  /// Algorithm 2 over a materialized estimate span (kernel benches and
  /// callers that already hold a buffer).
  [[nodiscard]] NodeId compute_index(std::span<const NodeId> neighbor_estimates,
                                     NodeId k) {
    return compute_index_stream(
        neighbor_estimates.size(), k,
        [neighbor_estimates](std::size_t i) { return neighbor_estimates[i]; });
  }

  /// The relaxation step both hot loops (bsp-par, bsp-async) share:
  /// skip-scan, then count. computeIndex is monotone and k never exceeds
  /// the degree (estimates start there and only decrease), so if no
  /// neighbor estimate sits below k then count_ge(k) == degree >= k and
  /// the answer is exactly k — the counting kernel is a no-op and is
  /// skipped (`skipped` reports which path ran). The early-exit scan is
  /// cheap in the hot case too: a woken vertex usually has the lowered
  /// neighbor near the front.
  template <typename EstimateOf>
  [[nodiscard]] NodeId refine(std::size_t num_neighbors, NodeId k,
                              EstimateOf&& estimate_of, bool& skipped) {
    skipped = false;
    if (k == 0) return 0;
    for (std::size_t i = 0; i < num_neighbors; ++i) {
      if (estimate_of(i) < k) {
        return compute_index_stream(num_neighbors, k, estimate_of);
      }
    }
    skipped = true;
    return k;
  }

  /// Current slot capacity (tests/benches: verifies steady state stops
  /// growing).
  [[nodiscard]] std::size_t capacity() const noexcept { return slot_.size(); }

 private:
  [[nodiscard]] NodeId live_count(std::uint64_t slot) const noexcept {
    return (slot >> 32) == epoch_ ? static_cast<NodeId>(slot) : 0;
  }

  void ensure(std::size_t size) {
    if (slot_.size() < size) {
      // Geometric growth so alternating small/large k settles after one
      // warm-up pass; fresh slots carry stamp 0 and epoch_ is
      // pre-incremented to >= 1 before first use, so they read as stale.
      std::size_t grown = slot_.empty() ? 64 : slot_.size();
      while (grown < size) grown *= 2;
      slot_.resize(grown, 0);
    }
  }

  std::vector<std::uint64_t> slot_;
  std::uint32_t epoch_ = 0;
};

}  // namespace kcore::core
