// computeIndex — Algorithm 2 of the paper.
//
// Given the current estimates of a node's neighbors and the node's own
// current estimate k, return the largest value i <= k such that at least i
// neighbors have estimate >= i. This is the local operator whose repeated
// application drives both distributed algorithms; by Theorem 1 its fixed
// point is exactly the coreness.
#pragma once

#include <algorithm>
#include <span>
#include <vector>

#include "graph/graph.h"

namespace kcore::core {

using graph::NodeId;

/// "+infinity" estimate for neighbors not heard from yet. Any real
/// estimate (bounded by degree) is below this.
inline constexpr NodeId kEstimateInfinity = graph::kInvalidNode;

/// Algorithm 2. `neighbor_estimates` are the est[] entries for every
/// neighbor of u (order irrelevant); `k` is u's current estimate (the cap).
/// Runs in O(|neighbors| + k); the `counts` scratch buffer is caller-
/// provided so hot loops can reuse it across calls.
///
/// Returns 0 when k == 0 (isolated node); otherwise a value in [1, k].
[[nodiscard]] inline NodeId compute_index(
    std::span<const NodeId> neighbor_estimates, NodeId k,
    std::vector<NodeId>& counts) {
  if (k == 0) return 0;
  counts.assign(static_cast<std::size_t>(k) + 1, 0);
  // count[j] = number of neighbors whose (clamped) estimate is exactly j.
  for (const NodeId est : neighbor_estimates) {
    const NodeId j = std::min(k, est);
    ++counts[j];
  }
  // Suffix-sum so count[i] = number of neighbors with estimate >= i.
  for (NodeId i = k; i >= 2; --i) {
    counts[i - 1] = static_cast<NodeId>(counts[i - 1] + counts[i]);
  }
  // Largest i with count[i] >= i.
  NodeId i = k;
  while (i > 1 && counts[i] < i) --i;
  return i;
}

/// Convenience overload allocating its own scratch (tests, cold paths).
[[nodiscard]] inline NodeId compute_index(
    std::span<const NodeId> neighbor_estimates, NodeId k) {
  std::vector<NodeId> scratch;
  return compute_index(neighbor_estimates, k, scratch);
}

}  // namespace kcore::core
