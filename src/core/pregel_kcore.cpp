#include "core/pregel_kcore.h"

#include "core/assignment.h"

namespace kcore::core {

PregelKCoreResult run_pregel_kcore(const graph::Graph& g,
                                   bsp::WorkerId num_workers,
                                   bool targeted_send) {
  auto owner =
      assign_nodes(g.num_nodes(), num_workers, AssignmentPolicy::kModulo);
  PregelKCoreProgram program;
  program.targeted_send = targeted_send;
  bsp::PregelEngine<PregelKCoreProgram> engine(&g, std::move(owner),
                                               num_workers, program);
  PregelKCoreResult result;
  result.stats = engine.run();
  result.coreness.reserve(g.num_nodes());
  for (const auto& value : engine.values()) {
    result.coreness.push_back(value.core);
  }
  return result;
}

}  // namespace kcore::core
