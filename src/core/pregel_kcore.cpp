#include "core/pregel_kcore.h"

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

namespace kcore::core {

PregelKCoreResult run_pregel_kcore(const graph::Graph& g,
                                   bsp::WorkerId num_workers,
                                   bool targeted_send,
                                   AssignmentPolicy assignment,
                                   std::uint64_t seed,
                                   const ProgressObserver& observer,
                                   std::uint64_t max_supersteps) {
  auto owner = assign_nodes(g.num_nodes(), num_workers, assignment, seed);
  return run_pregel_kcore_prepared(g, std::move(owner), num_workers,
                                   targeted_send, observer, max_supersteps);
}

PregelKCoreResult run_pregel_kcore_prepared(const graph::Graph& g,
                                            std::vector<bsp::WorkerId> owner,
                                            bsp::WorkerId num_workers,
                                            bool targeted_send,
                                            const ProgressObserver& observer,
                                            std::uint64_t max_supersteps) {
  PregelKCoreProgram program;
  program.targeted_send = targeted_send;
  bsp::PregelEngine<PregelKCoreProgram> engine(&g, std::move(owner),
                                               num_workers, program);
  const std::uint64_t cap = max_supersteps > 0 ? max_supersteps : 1000000;
  PregelKCoreResult result;
  if (observer) {
    std::vector<graph::NodeId> snapshot(g.num_nodes());
    result.stats = engine.run(
        [&](std::uint64_t superstep,
            std::span<const PregelKCoreProgram::Value> values,
            const bsp::BspStats& stats) {
          for (graph::NodeId u = 0; u < g.num_nodes(); ++u) {
            snapshot[u] = values[u].core;
          }
          observer(ProgressEvent{superstep + 1, snapshot,
                                 stats.messages_delivered});
        },
        cap);
  } else {
    result.stats = engine.run(cap);
  }
  result.coreness.reserve(g.num_nodes());
  for (const auto& value : engine.values()) {
    result.coreness.push_back(value.core);
  }
  return result;
}

}  // namespace kcore::core
