// The one-to-many distributed k-core protocol (§3.2, Algorithms 3, 4, 5).
//
// A host x is responsible for a set of nodes V(x). It keeps estimates for
// V(x) and for every external neighbor of V(x) (one combined est[] array,
// exactly as the paper prescribes). Whenever new information arrives, the
// host "internally emulates" the one-to-one protocol to a local fixed
// point (improveEstimate, Algorithm 4) before any communication happens;
// only then are changed estimates shipped to neighboring hosts.
//
// Implementation note: Algorithm 4 is written as repeated full sweeps over
// V(x). We run the identical fixed-point computation with a worklist
// seeded by the nodes whose neighborhood actually changed. The operator
// est[u] <- computeIndex(est, u, est[u]) is monotone non-increasing with a
// unique fixed point given the external inputs, so sweep order and
// worklist order converge to the same estimates; the worklist simply skips
// provably unchanged nodes (important when one host owns 10^5 nodes).
//
// Two communication policies (§3.2.1):
//  * kBroadcast    — one message per flush carrying every changed owned
//    estimate, delivered to all neighboring hosts (models a broadcast
//    medium; each changed estimate is counted ONCE in the overhead
//    metric, which is what makes the left plot of Figure 5 flat).
//  * kPointToPoint — Algorithm 5: a per-destination message containing
//    only the estimates relevant to that host (each changed estimate is
//    counted once PER destination host).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/assignment.h"
#include "core/compute_index.h"
#include "core/one_to_one.h"
#include "core/run_options.h"
#include "graph/graph.h"
#include "sim/engine.h"

namespace kcore::core {

// CommPolicy (§3.2.1) and its to_string live in core/run_options.h, next
// to the shared RunOptions struct that names it.

/// Protocol state machine for one host owning many nodes.
class OneToManyHost {
 public:
  /// A batch of estimate updates (the paper's set S).
  using Message = std::vector<NodeEstimate>;

  /// `graph` and `owner` must outlive the host; owner[u] gives the host
  /// responsible for node u and must be consistent across all hosts.
  OneToManyHost(const graph::Graph* graph,
                const std::vector<sim::HostId>* owner, sim::HostId self,
                CommPolicy policy);

  void on_message(sim::HostId from, const Message& m);

  void on_round(sim::Context<Message>& ctx);

  /// Write the current estimate of every owned node u into out[u]
  /// (entries of non-owned nodes are left untouched).
  void snapshot_into(std::span<graph::NodeId> out) const;

  /// Overhead numerator for Figure 5: number of (node, estimate) pairs this
  /// host has shipped, counted per the active policy's convention.
  [[nodiscard]] std::uint64_t estimates_shipped() const noexcept {
    return estimates_shipped_;
  }

  [[nodiscard]] std::uint64_t last_send_round() const noexcept {
    return last_send_round_;
  }

  [[nodiscard]] std::span<const graph::NodeId> owned_nodes() const noexcept {
    return owned_;
  }

 private:
  /// Local index of a global node id, or SIZE_MAX when unknown here.
  [[nodiscard]] std::size_t local_index(graph::NodeId global) const;

  /// Enqueue every owned node adjacent to local node `l`.
  void wake_owned_neighbors(std::size_t l);

  /// Algorithm 4: run local estimates to their fixed point.
  void improve_estimates();

  const graph::Graph* graph_;
  CommPolicy policy_;

  // --- static topology view (built once in the constructor) ---
  std::vector<graph::NodeId> owned_;        // sorted global ids of V(x)
  std::vector<graph::NodeId> local_nodes_;  // sorted: V(x) ∪ neighborV(x)
  std::vector<std::uint32_t> owned_local_;  // owned index -> local index
  // adjacency of owned nodes in local indices (CSR over owned index)
  std::vector<std::uint64_t> own_adj_offsets_;
  std::vector<std::uint32_t> own_adj_;
  // reverse: local node -> owned indices that are its neighbors (CSR)
  std::vector<std::uint64_t> rev_offsets_;
  std::vector<std::uint32_t> rev_;
  std::vector<sim::HostId> neighbor_hosts_;  // sorted, excludes self
  // p2p: owned index -> indices into neighbor_hosts_ needing its updates
  std::vector<std::uint64_t> dest_offsets_;
  std::vector<std::uint32_t> dest_;

  // --- dynamic state ---
  std::vector<graph::NodeId> est_;  // per local node
  std::vector<bool> changed_;       // per owned index
  std::vector<std::uint32_t> worklist_;
  std::vector<bool> in_worklist_;   // per owned index
  std::vector<graph::NodeId> gather_;   // scratch: neighbor estimates
  std::vector<graph::NodeId> scratch_;  // scratch: computeIndex counts
  std::uint64_t estimates_shipped_ = 0;
  std::uint64_t last_send_round_ = 0;
};

/// Configuration for a one-to-many run: the shared option set. Consumed
/// fields: num_hosts, comm, assignment, mode, seed, max_rounds
/// (0 = automatic), faults. targeted_send is ignored — the host-level
/// batching of Algorithm 3 subsumes the §3.1.2 per-edge filter.
using OneToManyConfig = RunOptions;

struct OneToManyResult {
  std::vector<graph::NodeId> coreness;
  sim::TrafficStats traffic;
  /// Total (node, estimate) pairs shipped across host boundaries.
  std::uint64_t estimates_shipped_total = 0;
  /// Figure 5 metric: estimates_shipped_total / num_nodes.
  double overhead_per_node = 0.0;
  std::vector<std::uint64_t> estimates_shipped_by_host;
  /// Per-host round of last send (0 = never sent); the input to the §3.3
  /// decentralized termination detector.
  std::vector<std::uint64_t> last_send_round_by_host;
};

/// Build the host state machines for a run: one OneToManyHost per host id
/// in [0, num_hosts). Shared by the simulated runner and par's real-thread
/// runner so both drive identical protocol state.
[[nodiscard]] std::vector<OneToManyHost> make_one_to_many_hosts(
    const graph::Graph& g, const std::vector<sim::HostId>& owner,
    sim::HostId num_hosts, CommPolicy policy);

/// Harvest everything except `traffic` out of finished hosts (coreness,
/// shipped-estimate profile, overhead metric, last-send rounds). One
/// implementation keeps the simulated and real-thread runners from
/// drifting apart — their results must stay bit-identical.
[[nodiscard]] OneToManyResult harvest_one_to_many_result(
    const std::vector<OneToManyHost>& hosts, graph::NodeId num_nodes);

/// Drive pre-built hosts to quiescence. `hosts` is consumed (the engine
/// mutates it in place); callers that want to run the same request again
/// keep a pristine vector from make_one_to_many_hosts and pass a copy
/// each time. config.num_hosts/assignment/comm are ignored here — they
/// were baked into the hosts. run_one_to_many is exactly assignment +
/// make_one_to_many_hosts + this, bit for bit.
[[nodiscard]] OneToManyResult run_one_to_many_prepared(
    const graph::Graph& g, std::vector<OneToManyHost> hosts,
    const OneToManyConfig& config, const ProgressObserver& observer = {});

/// Run Algorithms 3–5 with `config.num_hosts` hosts over `g`. Observer
/// overloads as in run_one_to_one: (round, span) lambdas bind to the
/// EstimateObserver form, (const ProgressEvent&) to the unified form.
[[nodiscard]] OneToManyResult run_one_to_many(const graph::Graph& g,
                                              const OneToManyConfig& config);
[[nodiscard]] OneToManyResult run_one_to_many(
    const graph::Graph& g, const OneToManyConfig& config,
    const EstimateObserver& observer);
[[nodiscard]] OneToManyResult run_one_to_many(
    const graph::Graph& g, const OneToManyConfig& config,
    const ProgressObserver& observer);

}  // namespace kcore::core
