#include "core/dynamic.h"

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "core/compute_index.h"
#include "util/check.h"

namespace kcore::core {

using graph::NodeId;

DynamicKCore::DynamicKCore(const graph::Graph& initial)
    : adjacency_(initial.num_nodes()), estimate_(initial.num_nodes()) {
  for (NodeId u = 0; u < initial.num_nodes(); ++u) {
    const auto nbrs = initial.neighbors(u);
    adjacency_[u].assign(nbrs.begin(), nbrs.end());
    estimate_[u] = initial.degree(u);
  }
  num_edges_ = initial.num_edges();
  // Initial convergence: everyone starts active with estimate = degree,
  // exactly Algorithm 1's initialization.
  std::vector<NodeId> all(initial.num_nodes());
  for (NodeId u = 0; u < initial.num_nodes(); ++u) all[u] = u;
  const auto stats = reconverge(std::move(all));
  lifetime_.rounds += stats.rounds;
  lifetime_.messages += stats.messages;
  lifetime_.nodes_activated += stats.nodes_activated;
}

bool DynamicKCore::has_edge(NodeId u, NodeId v) const {
  const auto& a = adjacency_[u];
  return std::binary_search(a.begin(), a.end(), v);
}

NodeId DynamicKCore::add_node() {
  adjacency_.emplace_back();
  estimate_.push_back(0);
  return static_cast<NodeId>(adjacency_.size() - 1);
}

std::vector<NodeId> DynamicKCore::subcore_region(std::vector<NodeId> roots,
                                                 NodeId K) const {
  // Candidate collection with purecore-style pruning. A node w can rise
  // to K+1 only if it has at least K+1 neighbors whose NEW coreness could
  // be >= K+1; since coreness rises by at most 1, those neighbors have
  // OLD coreness >= K. So cd(w) = #{x ~ w : k(x) >= K} >= K+1 is a
  // necessary condition, and the set of rising nodes is connected to the
  // endpoints through rising nodes — the BFS only continues through nodes
  // satisfying the condition.
  auto can_rise = [&](NodeId w) {
    if (estimate_[w] != K) return false;
    NodeId cd = 0;
    for (const NodeId x : adjacency_[w]) {
      if (estimate_[x] >= K && ++cd > K) return true;
    }
    return false;  // cd <= K
  };

  std::vector<NodeId> region;
  std::vector<NodeId> stack;
  std::vector<bool> in_region(adjacency_.size(), false);
  for (const NodeId r : roots) {
    if (!in_region[r] && can_rise(r)) {
      in_region[r] = true;
      stack.push_back(r);
    }
  }
  while (!stack.empty()) {
    const NodeId u = stack.back();
    stack.pop_back();
    region.push_back(u);
    for (const NodeId v : adjacency_[u]) {
      if (!in_region[v] && can_rise(v)) {
        in_region[v] = true;
        stack.push_back(v);
      }
    }
  }

  // Iterative peel within the region: w needs K+1 supporters among
  // (neighbors with old coreness >= K+1) ∪ (neighbors still in region).
  // Nodes failing the condition cannot rise, and removing them can only
  // invalidate others — standard peeling to the unique maximal fixpoint,
  // a safe superset of the truly-rising set.
  bool changed = true;
  while (changed) {
    changed = false;
    std::size_t keep = 0;
    for (std::size_t i = 0; i < region.size(); ++i) {
      const NodeId w = region[i];
      NodeId support = 0;
      for (const NodeId x : adjacency_[w]) {
        if (estimate_[x] >= K + 1 || in_region[x]) ++support;
      }
      if (support >= K + 1) {
        region[keep++] = w;
      } else {
        in_region[w] = false;
        changed = true;
      }
    }
    region.resize(keep);
  }
  return region;
}

MaintenanceStats DynamicKCore::add_edge(NodeId u, NodeId v) {
  KCORE_CHECK_MSG(u < num_nodes() && v < num_nodes(), "node out of range");
  KCORE_CHECK_MSG(u != v, "self-loops are not allowed");
  if (has_edge(u, v)) return {};
  auto insert_sorted = [](std::vector<NodeId>& a, NodeId x) {
    a.insert(std::upper_bound(a.begin(), a.end(), x), x);
  };
  insert_sorted(adjacency_[u], v);
  insert_sorted(adjacency_[v], u);
  ++num_edges_;

  // Coreness can rise by at most one, and only inside the K-subcore
  // region reachable from the endpoint(s) of coreness K.
  const NodeId K = std::min(estimate_[u], estimate_[v]);
  auto region = subcore_region({u, v}, K);
  // Distributed cost accounting: the endpoints exchange the edge event
  // (2 messages); the candidate traversal visits each region node once
  // (probe + its reply per incident edge, ~2·degree); each raised node
  // re-broadcasts its raised estimate (degree messages).
  std::uint64_t extra_messages = 2;
  // Raise candidates to the provable upper bound min(K+1, degree); this
  // restores Theorem 2 safety, after which plain downward convergence
  // recomputes the exact values.
  for (const NodeId w : region) {
    estimate_[w] =
        std::min<NodeId>(K + 1, static_cast<NodeId>(adjacency_[w].size()));
    extra_messages += 3 * adjacency_[w].size();
  }
  // Endpoints always re-examine (their degree changed even if estimates
  // did not).
  region.push_back(u);
  region.push_back(v);
  auto stats = reconverge(std::move(region));
  stats.messages += extra_messages;
  lifetime_.rounds += stats.rounds;
  lifetime_.messages += stats.messages;
  lifetime_.nodes_activated += stats.nodes_activated;
  return stats;
}

MaintenanceStats DynamicKCore::remove_edge(NodeId u, NodeId v) {
  KCORE_CHECK_MSG(u < num_nodes() && v < num_nodes(), "node out of range");
  if (u == v || !has_edge(u, v)) return {};
  auto erase_sorted = [](std::vector<NodeId>& a, NodeId x) {
    a.erase(std::lower_bound(a.begin(), a.end(), x));
  };
  erase_sorted(adjacency_[u], v);
  erase_sorted(adjacency_[v], u);
  --num_edges_;

  // Deletion only lowers coreness, so current estimates stay safe upper
  // bounds: warm-start with just the endpoints active. The endpoints
  // learn of the drop with one message each.
  auto stats = reconverge({u, v});
  stats.messages += 2;
  lifetime_.rounds += stats.rounds;
  lifetime_.messages += stats.messages;
  lifetime_.nodes_activated += stats.nodes_activated;
  return stats;
}

MaintenanceStats DynamicKCore::apply_batch(
    std::span<const graph::EdgeUpdate> updates) {
  // Net topology effect: the LAST op per edge decides its final presence;
  // edges whose final presence matches the current topology are dropped
  // (a transient insert+remove inside the batch cannot change the final
  // coreness). Self-loops are ignored, matching add_edge/GraphBuilder.
  std::map<std::pair<NodeId, NodeId>, bool> final_present;
  for (const graph::EdgeUpdate& update : updates) {
    NodeId u = update.u;
    NodeId v = update.v;
    KCORE_CHECK_MSG(u < num_nodes() && v < num_nodes(), "node out of range");
    if (u == v) continue;
    if (u > v) std::swap(u, v);
    final_present[{u, v}] = update.op == graph::EdgeOp::kInsert;
  }
  std::vector<std::pair<NodeId, NodeId>> inserts;
  std::vector<std::pair<NodeId, NodeId>> removes;
  for (const auto& [edge, present] : final_present) {
    const bool now = has_edge(edge.first, edge.second);
    if (present && !now) {
      inserts.push_back(edge);
    } else if (!present && now) {
      removes.push_back(edge);
    }
  }
  if (inserts.empty() && removes.empty()) return {};

  auto insert_sorted = [](std::vector<NodeId>& a, NodeId x) {
    a.insert(std::upper_bound(a.begin(), a.end(), x), x);
  };
  auto erase_sorted = [](std::vector<NodeId>& a, NodeId x) {
    a.erase(std::lower_bound(a.begin(), a.end(), x));
  };

  std::vector<NodeId> frontier;
  std::uint64_t extra_messages = 0;
  // Insertions first, one raise at a time: each raise runs against exact
  // estimates of the graph-so-far (see the header comment), so the table
  // stays exact through the whole insertion pass.
  for (const auto& [u, v] : inserts) {
    insert_sorted(adjacency_[u], v);
    insert_sorted(adjacency_[v], u);
    ++num_edges_;
    const NodeId K = std::min(estimate_[u], estimate_[v]);
    const auto region = subcore_region({u, v}, K);
    extra_messages += 2;  // the endpoints exchange the edge event
    for (const NodeId w : region) {
      estimate_[w] =
          std::min<NodeId>(K + 1, static_cast<NodeId>(adjacency_[w].size()));
      extra_messages += 3 * adjacency_[w].size();
    }
    frontier.insert(frontier.end(), region.begin(), region.end());
    frontier.push_back(u);
    frontier.push_back(v);
  }
  // Deletions second: estimates become safe upper bounds, and the single
  // downward reconvergence below restores exactness for the whole batch.
  for (const auto& [u, v] : removes) {
    erase_sorted(adjacency_[u], v);
    erase_sorted(adjacency_[v], u);
    --num_edges_;
    extra_messages += 2;
    frontier.push_back(u);
    frontier.push_back(v);
  }

  auto stats = reconverge(std::move(frontier));
  stats.messages += extra_messages;
  lifetime_.rounds += stats.rounds;
  lifetime_.messages += stats.messages;
  lifetime_.nodes_activated += stats.nodes_activated;
  return stats;
}

MaintenanceStats DynamicKCore::reconverge(std::vector<NodeId> frontier) {
  MaintenanceStats stats;
  // Deduplicate the initial frontier.
  std::sort(frontier.begin(), frontier.end());
  frontier.erase(std::unique(frontier.begin(), frontier.end()),
                 frontier.end());
  stats.nodes_activated = frontier.size();

  // Synchronous rounds over "published" estimates: a node recomputes from
  // the values its neighbors last broadcast — the same information flow
  // as Algorithm 1, with a broadcast costing degree() point-to-point
  // messages. `estimate_` doubles as the published value because in the
  // synchronous schedule every change is published in the same round.
  std::vector<NodeId> gather;
  std::vector<NodeId> scratch;
  std::vector<bool> queued(adjacency_.size(), false);
  std::vector<NodeId> next;
  for (const NodeId u : frontier) queued[u] = true;

  while (!frontier.empty()) {
    ++stats.rounds;
    next.clear();
    // Snapshot semantics: compute all updates against the current
    // published values, then apply and broadcast together.
    std::vector<std::pair<NodeId, NodeId>> updates;  // (node, new value)
    for (const NodeId w : frontier) {
      queued[w] = false;
      const NodeId current = estimate_[w];
      if (current == 0) continue;
      gather.clear();
      for (const NodeId x : adjacency_[w]) gather.push_back(estimate_[x]);
      const NodeId t = compute_index(gather, current, scratch);
      if (t < current) updates.emplace_back(w, t);
    }
    for (const auto& [w, value] : updates) {
      estimate_[w] = value;
      stats.messages += adjacency_[w].size();  // broadcast to neighbors
      for (const NodeId x : adjacency_[w]) {
        if (!queued[x]) {
          queued[x] = true;
          next.push_back(x);
        }
      }
    }
    frontier.swap(next);
  }
  return stats;
}

graph::Graph DynamicKCore::snapshot() const {
  graph::GraphBuilder b(num_nodes());
  for (NodeId u = 0; u < num_nodes(); ++u) {
    for (const NodeId v : adjacency_[u]) {
      if (u < v) b.add_edge(u, v);
    }
  }
  return b.build();
}

}  // namespace kcore::core
