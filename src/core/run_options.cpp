#include "core/run_options.h"

#include <optional>
#include <string>
#include <vector>

namespace kcore::core {

std::vector<std::string> RunOptions::validate() const {
  std::vector<std::string> problems;
  if (num_hosts < 1) {
    problems.push_back("num_hosts must be >= 1, got " +
                       std::to_string(num_hosts) +
                       " (one-to-many and bsp need at least one host)");
  }
  if (threads > 4096) {
    problems.push_back("threads must be <= 4096, got " +
                       std::to_string(threads) +
                       " (0 means one worker per hardware thread)");
  }
  if (faults.duplicate_probability < 0.0 ||
      faults.duplicate_probability > 1.0) {
    problems.push_back("faults.duplicate_probability must be in [0, 1], got " +
                       std::to_string(faults.duplicate_probability));
  }
  if (obs.sample_period_ms < 0.0) {
    problems.push_back("obs.sample_period_ms must be >= 0, got " +
                       std::to_string(obs.sample_period_ms) +
                       " (0 disables the sampler)");
  }
  if (obs.trace && obs.trace_capacity < 1) {
    problems.push_back(
        "obs.trace_capacity must be >= 1 when tracing is on "
        "(events per worker ring)");
  }
  if (!obs::kEnabled && obs.any()) {
    problems.push_back(
        "this build has KCORE_OBS=OFF: telemetry (obs.metrics / obs.trace / "
        "obs.sample_period_ms) cannot be enabled; rebuild with -DKCORE_OBS=ON");
  }
  return problems;
}

const char* to_string(sim::DeliveryMode mode) {
  switch (mode) {
    case sim::DeliveryMode::kSynchronous:
      return "sync";
    case sim::DeliveryMode::kCycleRandomOrder:
      return "cycle";
  }
  return "?";
}

const char* to_string(CommPolicy policy) {
  switch (policy) {
    case CommPolicy::kBroadcast:
      return "broadcast";
    case CommPolicy::kPointToPoint:
      return "point-to-point";
  }
  return "?";
}

const char* to_string(SchedPolicy policy) {
  switch (policy) {
    case SchedPolicy::kLifo:
      return "lifo";
    case SchedPolicy::kDelta:
      return "delta";
    case SchedPolicy::kBound:
      return "bound";
  }
  return "?";
}

std::optional<sim::DeliveryMode> parse_delivery_mode(std::string_view name) {
  if (name == "sync" || name == "synchronous") {
    return sim::DeliveryMode::kSynchronous;
  }
  if (name == "cycle" || name == "cycle-random-order") {
    return sim::DeliveryMode::kCycleRandomOrder;
  }
  return std::nullopt;
}

std::optional<CommPolicy> parse_comm_policy(std::string_view name) {
  if (name == "broadcast" || name == "bcast") return CommPolicy::kBroadcast;
  if (name == "point-to-point" || name == "p2p") {
    return CommPolicy::kPointToPoint;
  }
  return std::nullopt;
}

std::optional<AssignmentPolicy> parse_assignment_policy(
    std::string_view name) {
  if (name == "modulo") return AssignmentPolicy::kModulo;
  if (name == "block") return AssignmentPolicy::kBlock;
  if (name == "random") return AssignmentPolicy::kRandom;
  if (name == "hash") return AssignmentPolicy::kHash;
  return std::nullopt;
}

std::optional<SchedPolicy> parse_sched_policy(std::string_view name) {
  if (name == "lifo") return SchedPolicy::kLifo;
  if (name == "delta") return SchedPolicy::kDelta;
  if (name == "bound") return SchedPolicy::kBound;
  return std::nullopt;
}

}  // namespace kcore::core
