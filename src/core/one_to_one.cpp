#include "core/one_to_one.h"

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "util/check.h"

namespace kcore::core {

std::size_t OneToOneNode::slot_of(graph::NodeId v) const {
  const auto nbrs = graph_->neighbors(self_);
  const auto it = std::lower_bound(nbrs.begin(), nbrs.end(), v);
  KCORE_DCHECK(it != nbrs.end() && *it == v);
  return static_cast<std::size_t>(it - nbrs.begin());
}

void OneToOneNode::on_message(sim::HostId /*from*/, const Message& m) {
  const std::size_t slot = slot_of(m.node);
  if (m.estimate < est_[slot]) {
    est_[slot] = m.estimate;
    recompute_ = true;
  }
}

void OneToOneNode::on_round(sim::Context<Message>& ctx) {
  if (recompute_) {
    recompute_ = false;
    const graph::NodeId t = compute_index(est_, core_, scratch_);
    if (t < core_) {
      core_ = t;
      changed_ = true;
    }
  }
  bool sent = false;
  if (changed_) {
    changed_ = false;
    const auto nbrs = graph_->neighbors(self_);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      // §3.1.2: skip neighbors whose (locally known) estimate is already at
      // or below ours — our update cannot affect their computeIndex.
      if (targeted_send_ && core_ >= est_[i]) continue;
      ctx.send(nbrs[i], Message{self_, core_});
      sent = true;
    }
    if (sent) last_send_round_ = ctx.round();
  }
  if (sent != prev_active_) {
    ++transitions_;
    prev_active_ = sent;
  }
}

OneToOneResult run_one_to_one(const graph::Graph& g,
                              const OneToOneConfig& config) {
  return run_one_to_one(g, config, ProgressObserver{});
}

OneToOneResult run_one_to_one(const graph::Graph& g,
                              const OneToOneConfig& config,
                              const EstimateObserver& observer) {
  if (!observer) return run_one_to_one(g, config);
  return run_one_to_one(g, config,
                        ProgressObserver([&](const ProgressEvent& event) {
                          observer(event.round, event.estimates);
                        }));
}

std::vector<OneToOneNode> make_one_to_one_nodes(const graph::Graph& g,
                                                bool targeted_send) {
  KCORE_CHECK_MSG(g.num_nodes() > 0, "graph must be non-empty");
  std::vector<OneToOneNode> nodes;
  nodes.reserve(g.num_nodes());
  for (graph::NodeId u = 0; u < g.num_nodes(); ++u) {
    nodes.emplace_back(&g, u, targeted_send);
  }
  return nodes;
}

OneToOneResult run_one_to_one(const graph::Graph& g,
                              const OneToOneConfig& config,
                              const ProgressObserver& observer) {
  return run_one_to_one_prepared(
      g, make_one_to_one_nodes(g, config.targeted_send), config, observer);
}

OneToOneResult run_one_to_one_prepared(const graph::Graph& g,
                                       std::vector<OneToOneNode> nodes,
                                       const OneToOneConfig& config,
                                       const ProgressObserver& observer) {
  KCORE_CHECK_MSG(nodes.size() == g.num_nodes(),
                  "prepared nodes must cover every graph node");

  // The engine reads exactly the base-class slice of the options; only
  // the automatic round cap is protocol-specific. Theorem 5: execution
  // time <= N rounds; leave slack for fault-injected runs where
  // duplicated/delayed traffic stretches the schedule.
  sim::EngineConfig engine_config = config;
  if (engine_config.max_rounds == 0) {
    engine_config.max_rounds =
        static_cast<std::uint64_t>(g.num_nodes()) * 2 + 64;
  }

  sim::Engine<OneToOneNode> engine(std::move(nodes), engine_config);

  OneToOneResult result;
  std::vector<graph::NodeId> snapshot;
  auto engine_observer = [&](std::uint64_t round,
                             const std::vector<OneToOneNode>& hosts) {
    if (!observer) return;
    snapshot.resize(hosts.size());
    for (std::size_t u = 0; u < hosts.size(); ++u) {
      snapshot[u] = hosts[u].core();
    }
    observer(ProgressEvent{round, snapshot,
                           engine.stats().total_messages});
  };
  result.traffic = engine.run(engine_observer);

  result.coreness.resize(g.num_nodes());
  result.last_send_round.resize(g.num_nodes());
  result.activity_transitions.resize(g.num_nodes());
  for (graph::NodeId u = 0; u < g.num_nodes(); ++u) {
    result.coreness[u] = engine.hosts()[u].core();
    result.last_send_round[u] = engine.hosts()[u].last_send_round();
    result.activity_transitions[u] = engine.hosts()[u].activity_transitions();
  }
  return result;
}

}  // namespace kcore::core
