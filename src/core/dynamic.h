// Dynamic k-core maintenance for "live" graphs.
//
// The paper's one-to-one scenario is a running P2P system that inspects
// itself; real overlays churn. This module extends the protocol to edge
// insertions and deletions without restarting from scratch, using two
// classical structural facts (Li/Yu, Sariyüce et al.):
//
//  * inserting one edge can increase coreness by at most 1, and only for
//    nodes in the K-subcore reachable from the endpoints through nodes of
//    coreness exactly K, where K = min(k(u), k(v));
//  * deleting one edge can decrease coreness by at most 1, again only
//    within that region.
//
// Consequently:
//  * after a DELETION the old coreness values are still safe upper bounds
//    (coreness only went down), so the protocol warm-starts from them
//    with just the two endpoints re-activated — Theorems 2/3 apply
//    verbatim and convergence is local and fast;
//  * after an INSERTION old values may under-estimate, so safety is
//    restored by raising the estimate of every candidate (the K-subcore
//    region) to min(K+1, degree) before re-activating them. Everything
//    outside the region is provably unaffected.
//
// The maintenance protocol is simulated in synchronous rounds on a
// mutable adjacency structure; per-update round and message costs are
// returned so the savings over a full §3.1 re-run can be measured
// (bench/ablation_dynamic).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/edge_list.h"
#include "graph/graph.h"

namespace kcore::core {

/// Cost of one update or of the initial convergence.
struct MaintenanceStats {
  std::uint64_t rounds = 0;
  std::uint64_t messages = 0;
  /// Nodes whose estimate was re-activated (the candidate region).
  std::uint64_t nodes_activated = 0;
};

/// A living k-core decomposition over a mutable undirected graph.
///
/// All operations keep `coreness()` exact (equal to a from-scratch
/// decomposition of the current graph) — verified exhaustively in
/// tests/test_dynamic.cpp against the sequential baseline.
class DynamicKCore {
 public:
  /// Start from an initial graph; runs the protocol to convergence.
  explicit DynamicKCore(const graph::Graph& initial);

  /// Insert edge {u,v} (no-op if present; self-loops rejected).
  MaintenanceStats add_edge(graph::NodeId u, graph::NodeId v);

  /// Remove edge {u,v} (no-op if absent).
  MaintenanceStats remove_edge(graph::NodeId u, graph::NodeId v);

  /// Apply a whole batch of updates with ONE reconvergence instead of one
  /// per edge. Self-loops and updates that do not change the topology
  /// (duplicate inserts, absent removes, insert+remove churn within the
  /// batch) are coalesced away — only the batch's NET topology effect is
  /// applied, since transient edges cannot affect the final coreness.
  ///
  /// Soundness of the single reconvergence: net insertions are applied
  /// one at a time, each raising its K-subcore candidate region to
  /// min(K+1, degree). Because a raise computed from EXACT estimates is
  /// itself exact (the peeled region is precisely the rising set), the
  /// estimates remain exact after every insertion step by induction. Net
  /// deletions then only lower coreness, so the table is a safe upper
  /// bound and one downward reconvergence from all touched nodes restores
  /// exactness (Theorem 2).
  MaintenanceStats apply_batch(std::span<const graph::EdgeUpdate> updates);

  /// Append a fresh isolated node; returns its id.
  graph::NodeId add_node();

  /// Current exact coreness of every node.
  [[nodiscard]] const std::vector<graph::NodeId>& coreness() const noexcept {
    return estimate_;
  }

  [[nodiscard]] graph::NodeId num_nodes() const noexcept {
    return static_cast<graph::NodeId>(adjacency_.size());
  }
  [[nodiscard]] std::uint64_t num_edges() const noexcept {
    return num_edges_;
  }
  [[nodiscard]] graph::NodeId degree(graph::NodeId u) const {
    return static_cast<graph::NodeId>(adjacency_[u].size());
  }

  /// Snapshot the current topology as an immutable Graph (O(N+M)); used
  /// by tests to cross-check against the sequential baseline.
  [[nodiscard]] graph::Graph snapshot() const;

  /// Total cost since construction (sum over all reconvergences).
  [[nodiscard]] const MaintenanceStats& lifetime_stats() const noexcept {
    return lifetime_;
  }

 private:
  /// Synchronous reconvergence from the current (safe) estimates with the
  /// given initially-active frontier.
  MaintenanceStats reconverge(std::vector<graph::NodeId> frontier);

  /// Collect the insertion candidate region: nodes with coreness == K
  /// reachable from `roots` through nodes of coreness == K.
  [[nodiscard]] std::vector<graph::NodeId> subcore_region(
      std::vector<graph::NodeId> roots, graph::NodeId K) const;

  [[nodiscard]] bool has_edge(graph::NodeId u, graph::NodeId v) const;

  std::vector<std::vector<graph::NodeId>> adjacency_;  // sorted per node
  std::vector<graph::NodeId> estimate_;  // == coreness between updates
  std::uint64_t num_edges_ = 0;
  MaintenanceStats lifetime_;
};

}  // namespace kcore::core
