// The shared run surface of every protocol in the repo.
//
// Before this header existed, OneToOneConfig, OneToManyConfig and
// sim::EngineConfig each re-declared the delivery mode, seed, round cap
// and fault plan. RunOptions folds all of them into one struct layered on
// sim::EngineConfig, so a single options object can drive any protocol:
// the round-engine protocols read everything, the BSP port reads
// num_hosts/assignment/targeted_send, the sequential baselines read
// nothing. Knobs a protocol does not consume are ignored by the runner
// and policed by api::validate().
//
// Also here:
//  * CommPolicy (§3.2.1), previously declared in one_to_many.h — moved so
//    RunOptions can name it without dragging in the host state machine;
//  * to_string / parse round-trips for every enum knob, so CLIs, benches
//    and config files can select policies by name;
//  * ProgressEvent / ProgressObserver — the unified streaming observer
//    (round, estimate span, cumulative messages) that subsumes the older
//    EstimateObserver and works across all round-based runtimes.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "core/assignment.h"
#include "graph/graph.h"
#include "obs/options.h"
#include "sim/engine.h"

namespace kcore::core {

/// Host-to-host communication policies of the one-to-many protocol
/// (§3.2.1): one broadcast message per flush vs Algorithm 5's
/// per-destination messages.
enum class CommPolicy {
  kBroadcast,
  kPointToPoint,
};

/// Scheduling policy of the async (chaotic-relaxation) runtime. The §4
/// convergence argument holds for ANY schedule, so the order dirty
/// vertices are popped is a pure performance lever:
///  * kLifo  — freshest activation first (Chase–Lev deque order); the
///    original bsp-async behavior and the fallback fast path.
///  * kDelta — pop the vertex whose neighborhood changed most since it
///    was last relaxed (largest accumulated estimate drop first).
///  * kBound — pop the vertex whose current estimate is lowest, i.e. the
///    one closest to its final value: the global peeling frontier, the
///    chaotic-relaxation analogue of Batagelj–Zaveršnik's bucket order.
/// Every policy converges to the exact decomposition; they differ only in
/// how many relaxations the run needs (pinned by tests).
enum class SchedPolicy {
  kLifo,
  kDelta,
  kBound,
};

/// Every knob shared by the protocol runners, layered on the simulator's
/// EngineConfig (mode, seed, max_rounds, faults). Defaults reproduce the
/// paper's deployed configuration: cycle-driven delivery, targeted send,
/// 16 hosts under modulo assignment with point-to-point communication.
struct RunOptions : sim::EngineConfig {
  /// Hosts (one-to-many) or workers (bsp). Ignored by one-to-one, where
  /// every node is its own host.
  sim::HostId num_hosts = 16;
  AssignmentPolicy assignment = AssignmentPolicy::kModulo;  // §3.2.2
  CommPolicy comm = CommPolicy::kPointToPoint;              // §3.2.1
  bool targeted_send = true;                                // §3.1.2
  /// Worker threads for the real-execution protocols (src/par):
  /// one-to-many-par, bsp-par and bsp-async. 0 = one worker per hardware
  /// thread. Simulated protocols ignore it. Coreness is thread-count
  /// invariant for all of them; the barrier protocols' traffic stats are
  /// too, while bsp-async's schedule profile (steals, re-enqueues) is
  /// interleaving-dependent by nature.
  unsigned threads = 0;
  /// Pop order of the async runtime's dirty-vertex pool. Only bsp-async
  /// consumes it (policed by api::validate); coreness is policy-invariant,
  /// the relaxation count is not.
  SchedPolicy sched = SchedPolicy::kLifo;
  /// Runtime telemetry selection (obs/options.h): per-worker metrics,
  /// Chrome-trace span rings, background convergence sampler. Default:
  /// record nothing. Only the real-execution protocols consume it
  /// (policed by api::validate); requires a KCORE_OBS=ON build to turn
  /// on. The harvested telemetry rides back in
  /// api::DecomposeReport::telemetry.
  obs::ObsOptions obs;

  /// Returns every problem found, empty when the options are usable.
  /// Messages are actionable ("num_hosts must be >= 1, got 0"), meant to
  /// be surfaced verbatim by CLIs and the api facade.
  [[nodiscard]] std::vector<std::string> validate() const;
};

// --- enum <-> string round-trips -------------------------------------------
// parse_*(to_string(x)) == x for every enumerator; parse also accepts the
// common abbreviations used by the CLI (sync, p2p, ...). nullopt on
// unknown input — callers own the error message (CLIs list valid names).

[[nodiscard]] const char* to_string(sim::DeliveryMode mode);
[[nodiscard]] const char* to_string(CommPolicy policy);
[[nodiscard]] const char* to_string(SchedPolicy policy);
// to_string(AssignmentPolicy) lives in core/assignment.h.

[[nodiscard]] std::optional<sim::DeliveryMode> parse_delivery_mode(
    std::string_view name);
[[nodiscard]] std::optional<CommPolicy> parse_comm_policy(
    std::string_view name);
[[nodiscard]] std::optional<AssignmentPolicy> parse_assignment_policy(
    std::string_view name);
[[nodiscard]] std::optional<SchedPolicy> parse_sched_policy(
    std::string_view name);

// --- streaming progress -----------------------------------------------------

/// One per-round progress sample. `estimates` is valid only for the
/// duration of the callback (it aliases a scratch snapshot).
struct ProgressEvent {
  /// 1-based round (one-to-one / one-to-many) or superstep (bsp).
  std::uint64_t round = 0;
  /// Current coreness estimate of every node; monotone non-increasing
  /// over rounds (Theorem 2 keeps them >= the true coreness throughout).
  std::span<const graph::NodeId> estimates;
  /// Cumulative messages sent up to and including this round.
  std::uint64_t messages = 0;
};

/// Unified per-round observer. Invoked after every executed round with
/// the freshest estimates; an empty function is never called.
///
/// Thread-safety contract (holds for EVERY runtime, including the real-
/// thread protocols in src/par): events are delivered serially — at most
/// one invocation in flight, rounds strictly increasing, and a
/// happens-before edge between consecutive invocations. Observers may
/// therefore mutate plain state without locks; they must not assume the
/// events all arrive on the thread that called decompose (the parallel
/// engines fire them from whichever worker completes the round barrier).
using ProgressObserver = std::function<void(const ProgressEvent&)>;

}  // namespace kcore::core
