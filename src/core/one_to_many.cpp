#include "core/one_to_many.h"

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "util/check.h"

namespace kcore::core {

OneToManyHost::OneToManyHost(const graph::Graph* graph,
                             const std::vector<sim::HostId>* owner,
                             sim::HostId self, CommPolicy policy)
    : graph_(graph), policy_(policy) {
  KCORE_CHECK(owner->size() == graph->num_nodes());

  // Collect owned nodes (sorted, since node ids ascend).
  for (graph::NodeId u = 0; u < graph->num_nodes(); ++u) {
    if ((*owner)[u] == self) owned_.push_back(u);
  }

  // Local node universe: owned nodes plus their external neighbors.
  local_nodes_ = owned_;
  for (graph::NodeId u : owned_) {
    for (graph::NodeId v : graph->neighbors(u)) {
      local_nodes_.push_back(v);
    }
  }
  std::sort(local_nodes_.begin(), local_nodes_.end());
  local_nodes_.erase(std::unique(local_nodes_.begin(), local_nodes_.end()),
                     local_nodes_.end());

  owned_local_.resize(owned_.size());
  for (std::size_t o = 0; o < owned_.size(); ++o) {
    owned_local_[o] = static_cast<std::uint32_t>(local_index(owned_[o]));
  }

  // Owned adjacency in local indices (CSR over owned index).
  own_adj_offsets_.assign(owned_.size() + 1, 0);
  for (std::size_t o = 0; o < owned_.size(); ++o) {
    own_adj_offsets_[o + 1] =
        own_adj_offsets_[o] + graph->degree(owned_[o]);
  }
  own_adj_.resize(own_adj_offsets_.back());
  {
    std::size_t w = 0;
    for (graph::NodeId u : owned_) {
      for (graph::NodeId v : graph->neighbors(u)) {
        own_adj_[w++] = static_cast<std::uint32_t>(local_index(v));
      }
    }
  }

  // Reverse map: local node -> owned indices adjacent to it.
  rev_offsets_.assign(local_nodes_.size() + 1, 0);
  for (std::size_t o = 0; o < owned_.size(); ++o) {
    for (std::uint64_t i = own_adj_offsets_[o]; i < own_adj_offsets_[o + 1];
         ++i) {
      ++rev_offsets_[own_adj_[i] + 1];
    }
  }
  for (std::size_t l = 1; l < rev_offsets_.size(); ++l) {
    rev_offsets_[l] += rev_offsets_[l - 1];
  }
  rev_.resize(rev_offsets_.back());
  {
    std::vector<std::uint64_t> cursor(rev_offsets_.begin(),
                                      rev_offsets_.end() - 1);
    for (std::size_t o = 0; o < owned_.size(); ++o) {
      for (std::uint64_t i = own_adj_offsets_[o];
           i < own_adj_offsets_[o + 1]; ++i) {
        rev_[cursor[own_adj_[i]]++] = static_cast<std::uint32_t>(o);
      }
    }
  }

  // Neighbor hosts and, for point-to-point, per-owned destination sets.
  dest_offsets_.assign(owned_.size() + 1, 0);
  std::vector<std::vector<sim::HostId>> dests_per_owned(owned_.size());
  for (std::size_t o = 0; o < owned_.size(); ++o) {
    auto& dests = dests_per_owned[o];
    for (graph::NodeId v : graph->neighbors(owned_[o])) {
      const sim::HostId h = (*owner)[v];
      if (h != self) dests.push_back(h);
    }
    std::sort(dests.begin(), dests.end());
    dests.erase(std::unique(dests.begin(), dests.end()), dests.end());
    for (sim::HostId h : dests) neighbor_hosts_.push_back(h);
  }
  std::sort(neighbor_hosts_.begin(), neighbor_hosts_.end());
  neighbor_hosts_.erase(
      std::unique(neighbor_hosts_.begin(), neighbor_hosts_.end()),
      neighbor_hosts_.end());
  for (std::size_t o = 0; o < owned_.size(); ++o) {
    dest_offsets_[o + 1] = dest_offsets_[o] + dests_per_owned[o].size();
  }
  dest_.resize(dest_offsets_.back());
  {
    std::size_t w = 0;
    for (std::size_t o = 0; o < owned_.size(); ++o) {
      for (sim::HostId h : dests_per_owned[o]) {
        const auto it = std::lower_bound(neighbor_hosts_.begin(),
                                         neighbor_hosts_.end(), h);
        dest_[w++] =
            static_cast<std::uint32_t>(it - neighbor_hosts_.begin());
      }
    }
  }

  // Dynamic state: owned start at their degree, externals at +infinity;
  // every owned node is dirty (the paper ships the full initial S) and on
  // the worklist (the constructor runs the first improveEstimate).
  est_.assign(local_nodes_.size(), kEstimateInfinity);
  for (std::size_t o = 0; o < owned_.size(); ++o) {
    est_[owned_local_[o]] = graph->degree(owned_[o]);
  }
  changed_.assign(owned_.size(), true);
  in_worklist_.assign(owned_.size(), true);
  worklist_.resize(owned_.size());
  for (std::size_t o = 0; o < owned_.size(); ++o) {
    worklist_[o] = static_cast<std::uint32_t>(o);
  }
  improve_estimates();
}

std::size_t OneToManyHost::local_index(graph::NodeId global) const {
  const auto it =
      std::lower_bound(local_nodes_.begin(), local_nodes_.end(), global);
  if (it == local_nodes_.end() || *it != global) {
    return static_cast<std::size_t>(-1);
  }
  return static_cast<std::size_t>(it - local_nodes_.begin());
}

void OneToManyHost::wake_owned_neighbors(std::size_t l) {
  for (std::uint64_t i = rev_offsets_[l]; i < rev_offsets_[l + 1]; ++i) {
    const std::uint32_t o = rev_[i];
    if (!in_worklist_[o]) {
      in_worklist_[o] = true;
      worklist_.push_back(o);
    }
  }
}

void OneToManyHost::improve_estimates() {
  while (!worklist_.empty()) {
    const std::uint32_t o = worklist_.back();
    worklist_.pop_back();
    in_worklist_[o] = false;
    const std::uint32_t l = owned_local_[o];
    const graph::NodeId current = est_[l];
    if (current == 0) continue;
    gather_.clear();
    for (std::uint64_t i = own_adj_offsets_[o]; i < own_adj_offsets_[o + 1];
         ++i) {
      gather_.push_back(est_[own_adj_[i]]);
    }
    const graph::NodeId k = compute_index(gather_, current, scratch_);
    if (k < current) {
      est_[l] = k;
      changed_[o] = true;
      wake_owned_neighbors(l);
    }
  }
}

void OneToManyHost::on_message(sim::HostId /*from*/, const Message& m) {
  bool any = false;
  for (const NodeEstimate& upd : m) {
    const std::size_t l = local_index(upd.node);
    // Broadcast batches may mention nodes this host has no edge to; the
    // paper's est[] simply has no entry for them — skip.
    if (l == static_cast<std::size_t>(-1)) continue;
    if (upd.estimate < est_[l]) {
      est_[l] = upd.estimate;
      wake_owned_neighbors(l);
      any = true;
    }
  }
  if (any) improve_estimates();
}

void OneToManyHost::on_round(sim::Context<Message>& ctx) {
  if (neighbor_hosts_.empty()) {
    // Single host (or an isolated partition): nothing to ship, ever.
    std::fill(changed_.begin(), changed_.end(), false);
    return;
  }
  if (policy_ == CommPolicy::kBroadcast) {
    Message batch;
    for (std::size_t o = 0; o < owned_.size(); ++o) {
      if (!changed_[o]) continue;
      changed_[o] = false;
      batch.push_back({owned_[o], est_[owned_local_[o]]});
    }
    if (batch.empty()) return;
    // One physical broadcast: each estimate counts once (Figure 5, left).
    estimates_shipped_ += batch.size();
    last_send_round_ = ctx.round();
    for (sim::HostId h : neighbor_hosts_) {
      ctx.send(h, batch);
    }
    return;
  }
  // Point-to-point (Algorithm 5): per-destination relevant subsets.
  std::vector<Message> batches(neighbor_hosts_.size());
  for (std::size_t o = 0; o < owned_.size(); ++o) {
    if (!changed_[o]) continue;
    changed_[o] = false;
    const NodeEstimate upd{owned_[o], est_[owned_local_[o]]};
    for (std::uint64_t i = dest_offsets_[o]; i < dest_offsets_[o + 1]; ++i) {
      batches[dest_[i]].push_back(upd);
    }
  }
  bool sent = false;
  for (std::size_t j = 0; j < batches.size(); ++j) {
    if (batches[j].empty()) continue;
    estimates_shipped_ += batches[j].size();
    ctx.send(neighbor_hosts_[j], std::move(batches[j]));
    sent = true;
  }
  if (sent) last_send_round_ = ctx.round();
}

void OneToManyHost::snapshot_into(std::span<graph::NodeId> out) const {
  for (std::size_t o = 0; o < owned_.size(); ++o) {
    out[owned_[o]] = est_[owned_local_[o]];
  }
}

std::vector<OneToManyHost> make_one_to_many_hosts(
    const graph::Graph& g, const std::vector<sim::HostId>& owner,
    sim::HostId num_hosts, CommPolicy policy) {
  std::vector<OneToManyHost> hosts;
  hosts.reserve(num_hosts);
  for (sim::HostId h = 0; h < num_hosts; ++h) {
    hosts.emplace_back(&g, &owner, h, policy);
  }
  return hosts;
}

OneToManyResult harvest_one_to_many_result(
    const std::vector<OneToManyHost>& hosts, graph::NodeId num_nodes) {
  OneToManyResult result;
  result.coreness.assign(num_nodes, 0);
  result.estimates_shipped_by_host.reserve(hosts.size());
  result.last_send_round_by_host.reserve(hosts.size());
  for (const auto& h : hosts) {
    h.snapshot_into(result.coreness);
    result.estimates_shipped_by_host.push_back(h.estimates_shipped());
    result.estimates_shipped_total += h.estimates_shipped();
    result.last_send_round_by_host.push_back(h.last_send_round());
  }
  result.overhead_per_node =
      static_cast<double>(result.estimates_shipped_total) /
      static_cast<double>(num_nodes);
  return result;
}

OneToManyResult run_one_to_many(const graph::Graph& g,
                                const OneToManyConfig& config) {
  return run_one_to_many(g, config, ProgressObserver{});
}

OneToManyResult run_one_to_many(const graph::Graph& g,
                                const OneToManyConfig& config,
                                const EstimateObserver& observer) {
  if (!observer) return run_one_to_many(g, config);
  return run_one_to_many(g, config,
                         ProgressObserver([&](const ProgressEvent& event) {
                           observer(event.round, event.estimates);
                         }));
}

OneToManyResult run_one_to_many(const graph::Graph& g,
                                const OneToManyConfig& config,
                                const ProgressObserver& observer) {
  KCORE_CHECK_MSG(g.num_nodes() > 0, "graph must be non-empty");
  KCORE_CHECK_MSG(config.num_hosts >= 1, "need at least one host");
  const auto owner = assign_nodes(g.num_nodes(), config.num_hosts,
                                  config.assignment, config.seed);
  auto hosts =
      make_one_to_many_hosts(g, owner, config.num_hosts, config.comm);
  return run_one_to_many_prepared(g, std::move(hosts), config, observer);
}

OneToManyResult run_one_to_many_prepared(const graph::Graph& g,
                                         std::vector<OneToManyHost> hosts,
                                         const OneToManyConfig& config,
                                         const ProgressObserver& observer) {
  KCORE_CHECK_MSG(!hosts.empty(), "need at least one prepared host");

  // Base-class slice of the shared options, with the engine seed
  // decorrelated from the assignment seed and the automatic round cap.
  sim::EngineConfig engine_config = config;
  engine_config.seed = config.seed ^ 0x9e3779b97f4a7c15ULL;
  if (engine_config.max_rounds == 0) {
    engine_config.max_rounds =
        static_cast<std::uint64_t>(g.num_nodes()) * 2 + 64;
  }

  sim::Engine<OneToManyHost> engine(std::move(hosts), engine_config);

  std::vector<graph::NodeId> snapshot(g.num_nodes(), 0);
  auto engine_observer = [&](std::uint64_t round,
                             const std::vector<OneToManyHost>& hs) {
    if (!observer) return;
    for (const auto& h : hs) h.snapshot_into(snapshot);
    observer(ProgressEvent{round, snapshot,
                           engine.stats().total_messages});
  };

  const auto traffic = engine.run(engine_observer);
  OneToManyResult result =
      harvest_one_to_many_result(engine.hosts(), g.num_nodes());
  result.traffic = traffic;
  return result;
}

}  // namespace kcore::core
