// Termination detection (§3.3).
//
// The paper sketches three mechanisms; all three are implemented:
//
//  1. Fixed number of rounds — approximate_coreness() runs Algorithm 1 for
//     a caller-chosen number of rounds and reports the residual error
//     against ground truth (§5.1 shows both error curves collapse within
//     ~20 rounds; Figure 4).
//
//  2. Centralized (master/slaves) — each host notifies a coordinator when
//     its activity status changes ("generated a new estimate this round"
//     vs not); the master declares termination one round after every host
//     has reported quiet and no message is in flight.
//     centralized_termination() evaluates detection round and control
//     traffic from a finished run's activity profile.
//
//  3. Decentralized epidemic aggregation [6] — see src/agg: hosts gossip
//     the maximum "last round anyone generated an estimate" and conclude
//     termination when that maximum stays unchanged for a confirmation
//     window. gossip_termination() in agg/termination.h.
#pragma once

#include <cstdint>
#include <vector>

#include "core/one_to_one.h"
#include "graph/graph.h"

namespace kcore::core {

/// Fixed-rounds termination: run the one-to-one protocol for exactly
/// `rounds` rounds (no quiescence detection) and return the estimates at
/// that point. Estimates are upper bounds on the true coreness (Theorem 2).
struct ApproximateResult {
  std::vector<graph::NodeId> estimates;
  /// Estimation error vs the exact decomposition, computed with the
  /// sequential baseline: avg and max of (estimate - coreness).
  double avg_error = 0.0;
  graph::NodeId max_error = 0;
  /// Fraction of nodes whose estimate is already exact.
  double fraction_exact = 0.0;
};

[[nodiscard]] ApproximateResult approximate_coreness(
    const graph::Graph& g, std::uint64_t rounds, const OneToOneConfig& config);

/// Centralized detector analysis over a finished run.
struct CentralizedTermination {
  /// Round at which the master can declare global termination (one round
  /// after the last traffic-bearing round, when the final quiet reports
  /// arrive).
  std::uint64_t detection_round = 0;
  /// Host -> master status-change notifications (2 per activity burst).
  std::uint64_t control_messages = 0;
};

/// `activity_transitions[h]` = number of active<->quiet flips host h went
/// through; `execution_time` = rounds with protocol traffic.
[[nodiscard]] CentralizedTermination centralized_termination(
    std::uint64_t execution_time,
    const std::vector<std::uint64_t>& activity_transitions);

}  // namespace kcore::core
