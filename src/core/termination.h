// Termination detection (§3.3).
//
// The paper sketches three mechanisms; all three are implemented:
//
//  1. Fixed number of rounds — approximate_coreness() runs Algorithm 1 for
//     a caller-chosen number of rounds and reports the residual error
//     against ground truth (§5.1 shows both error curves collapse within
//     ~20 rounds; Figure 4).
//
//  2. Centralized (master/slaves) — each host notifies a coordinator when
//     its activity status changes ("generated a new estimate this round"
//     vs not); the master declares termination one round after every host
//     has reported quiet and no message is in flight.
//     centralized_termination() evaluates detection round and control
//     traffic from a finished run's activity profile.
//
//  3. Decentralized epidemic aggregation [6] — see src/agg: hosts gossip
//     the maximum "last round anyone generated an estimate" and conclude
//     termination when that maximum stays unchanged for a confirmation
//     window. gossip_termination() in agg/termination.h.
//
// QuiescenceDetector below is mechanism 2 ported to SHARED MEMORY for the
// async runtime (par/async_engine.h): the master's per-host activity
// reports become one global outstanding-work counter, and "declare
// termination one round after every host has reported quiet" becomes a
// confirmation pass — a second seq_cst read of the counter across a full
// fence before the done flag is raised.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "chk/sync.h"
#include "core/one_to_one.h"
#include "graph/graph.h"

namespace kcore::core {

/// Fixed-rounds termination: run the one-to-one protocol for exactly
/// `rounds` rounds (no quiescence detection) and return the estimates at
/// that point. Estimates are upper bounds on the true coreness (Theorem 2).
struct ApproximateResult {
  std::vector<graph::NodeId> estimates;
  /// Estimation error vs the exact decomposition, computed with the
  /// sequential baseline: avg and max of (estimate - coreness).
  double avg_error = 0.0;
  graph::NodeId max_error = 0;
  /// Fraction of nodes whose estimate is already exact.
  double fraction_exact = 0.0;
};

[[nodiscard]] ApproximateResult approximate_coreness(
    const graph::Graph& g, std::uint64_t rounds, const OneToOneConfig& config);

/// Centralized detector analysis over a finished run.
struct CentralizedTermination {
  /// Round at which the master can declare global termination (one round
  /// after the last traffic-bearing round, when the final quiet reports
  /// arrive).
  std::uint64_t detection_round = 0;
  /// Host -> master status-change notifications (2 per activity burst).
  std::uint64_t control_messages = 0;
};

/// `activity_transitions[h]` = number of active<->quiet flips host h went
/// through; `execution_time` = rounds with protocol traffic.
[[nodiscard]] CentralizedTermination centralized_termination(
    std::uint64_t execution_time,
    const std::vector<std::uint64_t>& activity_transitions);

/// Concurrent quiescence detector — the §3.3 centralized detector ported
/// to shared memory, used by the async (chaotic-relaxation) runtime.
///
/// Accounting contract (the caller's side of the §4 safety argument):
///  * add() BEFORE the work unit becomes discoverable by other workers
///    (e.g. before the vertex is pushed onto a steal deque);
///  * finish() AFTER the unit is fully processed, INCLUDING any add()
///    calls for follow-on work it spawned.
/// Under that discipline outstanding() == 0 implies no unit is queued,
/// none is being processed, and none can appear (only processing spawns
/// work) — true global quiescence, not a transient dip.
///
/// try_confirm() is the detection step: a first seq_cst read finding zero
/// is the "every host reports quiet" event; the confirmation pass — a
/// second read across a full fence — is the master's extra round before it
/// declares termination. Once confirmed, done() stays true forever (the
/// protocol guarantees no spontaneous work). Any worker may call
/// try_confirm() concurrently; confirmation is idempotent.
///
/// The Sync parameter is the chk shim (chk/sync.h): production uses the
/// zero-overhead RealSync passthrough; the model checker instantiates
/// the detector over chk::ModelSync and explores its orderings under
/// controlled schedules (the done-flag release publication is one of the
/// seeded mutants in tests/test_chk_mutants.cpp).
template <typename Sync = chk::RealSync>
class BasicQuiescenceDetector {
  static constexpr bool kNothrow = !Sync::kInstrumented;

 public:
  /// Work units created (flag transitions 0 -> 1 in the async engine).
  void add(std::uint64_t n = 1) noexcept(kNothrow) {
    outstanding_.fetch_add(static_cast<std::int64_t>(n),
                           std::memory_order_acq_rel, "qd.add");
  }

  /// One previously-added unit retired (processed to completion).
  void finish() noexcept(kNothrow) {
    outstanding_.fetch_sub(1, std::memory_order_acq_rel, "qd.finish");
  }

  [[nodiscard]] std::int64_t outstanding() const noexcept(kNothrow) {
    return outstanding_.load(std::memory_order_acquire,
                             "qd.read_outstanding");
  }

  /// Attempt termination detection; true once the run is quiescent.
  [[nodiscard]] bool try_confirm() noexcept(kNothrow) {
    if (done_.load(std::memory_order_acquire, "qd.read_done")) return true;
    if (outstanding_.load(std::memory_order_seq_cst, "qd.confirm.read1") !=
        0) {
      return false;
    }
    passes_.fetch_add(1, std::memory_order_relaxed, "qd.confirm.count_pass");
    // Confirmation pass: the fence orders this re-read after every
    // add/finish that preceded the first read in the seq_cst order — a
    // counter that is still (or again) nonzero cancels the declaration.
    Sync::fence(std::memory_order_seq_cst, "qd.confirm.fence");
    if (outstanding_.load(std::memory_order_seq_cst, "qd.confirm.read2") !=
        0) {
      return false;
    }
    done_.store(true, std::memory_order_release, "qd.confirm.store_done");
    return true;
  }

  /// Sticky: set only by a successful try_confirm().
  [[nodiscard]] bool done() const noexcept(kNothrow) {
    return done_.load(std::memory_order_acquire, "qd.read_done");
  }

  /// Confirmation passes started (first read saw zero) — the async
  /// analogue of the detector's control-message count.
  [[nodiscard]] std::uint64_t passes() const noexcept(kNothrow) {
    return passes_.load(std::memory_order_relaxed, "qd.read_passes");
  }

  /// Single-threaded reset between runs (the prepared async engine reuses
  /// one detector per worklist). Must not race with add/finish/try_confirm
  /// — callers quiesce the workers first.
  void reset() noexcept(kNothrow) {
    outstanding_.store(0, std::memory_order_relaxed, "qd.reset.outstanding");
    passes_.store(0, std::memory_order_relaxed, "qd.reset.passes");
    done_.store(false, std::memory_order_relaxed, "qd.reset.done");
  }

 private:
  template <typename T>
  using Atomic = typename Sync::template Atomic<T>;

  alignas(64) Atomic<std::int64_t> outstanding_{0};
  Atomic<std::uint64_t> passes_{0};
  Atomic<bool> done_{false};
};

/// The production instantiation (zero-overhead std::atomic passthrough).
using QuiescenceDetector = BasicQuiescenceDetector<>;

}  // namespace kcore::core
