// Round-based message-passing simulation engine (PeerSim-equivalent).
//
// The paper evaluates its protocols with PeerSim's cycle-driven model [7]:
// time advances in rounds of δ units; in each round every host gets one
// opportunity to process incoming messages and send updates. This engine
// reproduces that model with two delivery semantics:
//
//  * kSynchronous — strict barriers: a message sent in round r becomes
//    visible in round r+1. This is the model used by the §4 proofs and is
//    what makes the Figure-3 worst case take exactly N-1 rounds.
//
//  * kCycleRandomOrder — PeerSim cycle-driven semantics: hosts are
//    processed in a fresh random permutation each round, and a message
//    sent by a host is immediately visible to receivers processed later
//    in the same round. The permutation is the only source of randomness;
//    it is why the paper's t_min/t_max differ across its 50 runs.
//
// Channels are reliable and FIFO per (sender, receiver) pair, matching
// §2 ("Hosts communicate through reliable channels"). Optional fault
// injection (bounded extra delay, duplication) exercises the protocol's
// tolerance to asynchrony; it never drops messages.
//
// The engine is deliberately protocol-agnostic: a Host type supplies
//   using Message = ...;                    // copyable payload
//   void on_message(HostId from, const Message&);
//   void on_round(Context<Message>&);       // once per round, after drain
// State initialization (e.g. Algorithm 1's "on initialization") belongs in
// the Host constructor; the initial broadcast happens in the first
// on_round when the host notices its dirty flag.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "util/check.h"
#include "util/rng.h"

namespace kcore::par {
// The real-thread engine (par/engine.h) drives the same Host protocols
// through the same Context type; forward-declared here so Context can
// befriend it without this header knowing anything else about threads.
template <typename Host>
class Engine;
}  // namespace kcore::par

namespace kcore::sim {

/// Host identifier: dense indices in [0, num_hosts).
using HostId = std::uint32_t;

enum class DeliveryMode {
  kSynchronous,
  kCycleRandomOrder,
};

/// Optional channel-fault model. Delays are measured in whole rounds and
/// added on top of the mode's base latency; duplicates are delivered with
/// an independent random delay. Messages are never lost or reordered
/// beyond what the delays imply.
struct FaultPlan {
  std::uint32_t max_extra_delay = 0;  // uniform in [0, max_extra_delay]
  double duplicate_probability = 0.0;
  [[nodiscard]] bool enabled() const noexcept {
    return max_extra_delay > 0 || duplicate_probability > 0.0;
  }
};

struct EngineConfig {
  DeliveryMode mode = DeliveryMode::kCycleRandomOrder;
  std::uint64_t seed = 1;
  /// Hard stop; 0 means "choose automatically" (callers should set a bound
  /// derived from Theorem 5 when they can).
  std::uint64_t max_rounds = 0;
  FaultPlan faults;
};

/// Aggregate traffic statistics for one run.
struct TrafficStats {
  std::uint64_t total_messages = 0;
  /// The paper's §5 *measured* execution time: number of rounds in which
  /// >= 1 message was sent (Table 1's t columns).
  std::uint64_t execution_time = 0;
  /// Total rounds stepped through. For a converged run this is the paper's
  /// §4 *theoretical* execution time T+1: the last traffic round plus the
  /// final round in which its messages arrive without effect (the round
  /// the Theorem 5 / Corollary 1 bounds and the Figure 3 "exactly N-1"
  /// result refer to).
  std::uint64_t rounds_executed = 0;
  bool converged = false;
  std::vector<std::uint64_t> sent_by_host;
};

template <typename Message>
class Context;

/// Requirements on a simulated host protocol.
template <typename H>
concept SimHost = requires(H h, HostId from, const typename H::Message& m,
                           Context<typename H::Message>& ctx) {
  typename H::Message;
  h.on_message(from, m);
  h.on_round(ctx);
};

template <SimHost Host>
class Engine;

/// Per-host send interface handed to on_round.
template <typename Message>
class Context {
 public:
  /// Queue a message to `to`. Delivery round depends on the engine mode.
  void send(HostId to, Message m) {
    KCORE_DCHECK(to < num_hosts_);
    outbox_->push_back({to, std::move(m)});
  }

  [[nodiscard]] HostId self() const noexcept { return self_; }
  [[nodiscard]] std::uint64_t round() const noexcept { return round_; }

 private:
  template <SimHost H>
  friend class Engine;
  template <typename H>
  friend class kcore::par::Engine;

  struct Outgoing {
    HostId to;
    Message payload;
  };

  Context(HostId self, std::uint64_t round, HostId num_hosts,
          std::vector<Outgoing>* outbox)
      : self_(self), round_(round), num_hosts_(num_hosts), outbox_(outbox) {}

  HostId self_;
  std::uint64_t round_;
  HostId num_hosts_;
  std::vector<Outgoing>* outbox_;
};

/// The simulation engine. Owns the host objects; drives rounds until
/// quiescence (a full round with no sends and nothing in flight) or until
/// max_rounds. An observer callable with signature
///   void(std::uint64_t round, const std::vector<Host>&)
/// is invoked after every executed round.
template <SimHost Host>
class Engine {
 public:
  using Message = typename Host::Message;

  Engine(std::vector<Host> hosts, const EngineConfig& config)
      : hosts_(std::move(hosts)),
        config_(config),
        rng_(config.seed),
        inboxes_(hosts_.size()) {
    KCORE_CHECK_MSG(!hosts_.empty(), "engine needs at least one host");
    stats_.sent_by_host.assign(hosts_.size(), 0);
  }

  /// Run to quiescence. Returns traffic statistics; host final states are
  /// available through hosts() afterwards.
  template <typename Observer>
  TrafficStats run(Observer&& observer) {
    const std::uint64_t limit = config_.max_rounds > 0
                                    ? config_.max_rounds
                                    : default_round_limit();
    const auto n = static_cast<HostId>(hosts_.size());
    std::vector<HostId> order(n);
    for (HostId i = 0; i < n; ++i) order[i] = i;

    for (std::uint64_t round = 1; round <= limit; ++round) {
      if (config_.mode == DeliveryMode::kCycleRandomOrder) {
        util::shuffle(order, rng_);
      }
      std::uint64_t sends_this_round = 0;
      for (HostId idx = 0; idx < n; ++idx) {
        const HostId h = order[idx];
        drain_inbox(h, round);
        outbox_.clear();
        Context<Message> ctx(h, round, n, &outbox_);
        hosts_[h].on_round(ctx);
        sends_this_round += outbox_.size();
        stats_.sent_by_host[h] += outbox_.size();
        for (auto& out : outbox_) {
          enqueue(h, out.to, std::move(out.payload), round);
        }
      }
      ++stats_.rounds_executed;
      if (sends_this_round > 0) ++stats_.execution_time;
      stats_.total_messages += sends_this_round;
      observer(round, hosts_);
      if (sends_this_round == 0 && in_flight_ == 0) {
        stats_.converged = true;
        break;
      }
    }
    return stats_;
  }

  /// Run without an observer.
  TrafficStats run() {
    return run([](std::uint64_t, const std::vector<Host>&) {});
  }

  [[nodiscard]] const std::vector<Host>& hosts() const noexcept {
    return hosts_;
  }
  [[nodiscard]] std::vector<Host>& hosts() noexcept { return hosts_; }

  /// Statistics accumulated so far. Inside an observer callback this
  /// already includes the round being observed (streaming progress
  /// reporting reads cumulative message counts from here).
  [[nodiscard]] const TrafficStats& stats() const noexcept { return stats_; }

 private:
  struct Pending {
    std::uint64_t deliver_round;
    HostId from;
    Message payload;
  };

  [[nodiscard]] std::uint64_t default_round_limit() const {
    // Theorem 5 bounds the execution time by N for the one-to-one case;
    // other protocols converge far sooner. 4N + 64 leaves generous slack
    // for fault-injected runs without risking unbounded loops.
    return 4 * static_cast<std::uint64_t>(hosts_.size()) + 64;
  }

  void enqueue(HostId from, HostId to, Message&& payload,
               std::uint64_t sent_round) {
    // Base latency: synchronous mode delivers next round; cycle mode makes
    // the message immediately available (hosts later in this round's order
    // will drain it; earlier hosts see it next round).
    std::uint64_t deliver =
        config_.mode == DeliveryMode::kSynchronous ? sent_round + 1
                                                   : sent_round;
    if (config_.faults.enabled()) {
      deliver += rng_.next_below(
          static_cast<std::uint64_t>(config_.faults.max_extra_delay) + 1);
      if (config_.faults.duplicate_probability > 0.0 &&
          rng_.next_bool(config_.faults.duplicate_probability)) {
        const std::uint64_t dup_deliver =
            deliver + rng_.next_below(
                          static_cast<std::uint64_t>(
                              config_.faults.max_extra_delay) +
                          2);
        inboxes_[to].push_back({dup_deliver, from, payload});
        ++in_flight_;
      }
    }
    inboxes_[to].push_back({deliver, from, std::move(payload)});
    ++in_flight_;
  }

  void drain_inbox(HostId h, std::uint64_t round) {
    auto& inbox = inboxes_[h];
    std::size_t kept = 0;
    for (std::size_t i = 0; i < inbox.size(); ++i) {
      if (inbox[i].deliver_round <= round) {
        hosts_[h].on_message(inbox[i].from, inbox[i].payload);
        --in_flight_;
      } else {
        if (kept != i) inbox[kept] = std::move(inbox[i]);
        ++kept;
      }
    }
    inbox.resize(kept);
  }

  std::vector<Host> hosts_;
  EngineConfig config_;
  util::Xoshiro256 rng_;
  std::vector<std::vector<Pending>> inboxes_;
  std::vector<typename Context<Message>::Outgoing> outbox_;
  std::uint64_t in_flight_ = 0;
  TrafficStats stats_;
};

}  // namespace kcore::sim
