// Memory-order mutation harness — the "executable specification" half of
// the chk layer.
//
// Every synchronization operation in the Sync-parameterized primitives
// carries a site tag ("sd.pop.fence_seq", "wl.begin.xchg_flag", ...). A
// Mutation names one site and rewrites what the instrumented backend does
// there: weaken the memory order (seq_cst -> acquire/release -> relaxed)
// or drop a fence entirely. The checker then explores schedules and
// stale-read choices; a mutation is CAUGHT when some explored execution
// violates a protocol invariant (exactly-once handout, no lost wakeup,
// wrong published value, ...). tests/test_chk_mutants.cpp seeds one
// mutant per load-bearing ordering and pins that each is caught — so a
// future edit that weakens a real ordering fails the same way the mutant
// does, instead of passing TSan on the one schedule CI happens to run.
//
// Mutations that fire zero times are reported through
// Outcome::mutation_hits so a renamed site cannot silently turn a
// mutation test into a no-op.
#pragma once

#include <atomic>
#include <string>
#include <vector>

namespace kcore::chk {

struct Mutation {
  enum class Kind {
    kWeakenOrder,  // replace the order of every op at `site` with `to`
    kDropFence,    // elide the fence at `site` entirely
  };

  std::string site;
  Kind kind = Kind::kWeakenOrder;
  std::memory_order to = std::memory_order_relaxed;

  static Mutation weaken(std::string site_tag,
                         std::memory_order order = std::memory_order_relaxed) {
    return {std::move(site_tag), Kind::kWeakenOrder, order};
  }
  static Mutation drop_fence(std::string site_tag) {
    return {std::move(site_tag), Kind::kDropFence,
            std::memory_order_relaxed};
  }
};

using MutationSet = std::vector<Mutation>;

}  // namespace kcore::chk
