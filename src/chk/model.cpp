// Model transitions for the chk checker. See chk/model.h for the memory
// model these implement and chk/runtime.h for the execution token that
// serializes every call.

#include "chk/model.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "chk/runtime.h"

namespace kcore::chk {

namespace detail {

namespace {

bool is_acquire(std::memory_order mo) {
  return mo == std::memory_order_acquire || mo == std::memory_order_consume ||
         mo == std::memory_order_acq_rel || mo == std::memory_order_seq_cst;
}

bool is_release(std::memory_order mo) {
  return mo == std::memory_order_release || mo == std::memory_order_acq_rel ||
         mo == std::memory_order_seq_cst;
}

const char* order_name(std::memory_order mo) {
  switch (mo) {
    case std::memory_order_relaxed: return "rlx";
    case std::memory_order_consume: return "csm";
    case std::memory_order_acquire: return "acq";
    case std::memory_order_release: return "rel";
    case std::memory_order_acq_rel: return "a/r";
    case std::memory_order_seq_cst: return "sc";
  }
  return "?";
}

Runtime& runtime() {
  Runtime* rt = Runtime::current();
  if (rt == nullptr) {
    throw std::logic_error(
        "chk model operation outside explore() — ModelSync-backed objects "
        "must be built and used inside an explored program");
  }
  return *rt;
}

/// Oldest store this thread may still read: nothing it has already
/// observed there, nothing overwritten by a store that happens-before the
/// reader, and for seq_cst reads nothing older than the newest seq_cst
/// store.
int visibility_floor(const Location& loc, const ThreadMem& mem, int thread,
                     bool sc_read) {
  int floor = loc.seen[static_cast<unsigned>(thread)];
  for (int i = static_cast<int>(loc.stores.size()) - 1; i > floor; --i) {
    if (loc.stores[static_cast<unsigned>(i)].hb.leq(mem.vc)) {
      floor = i;
      break;
    }
  }
  if (sc_read && loc.last_sc_store > floor) floor = loc.last_sc_store;
  return floor;
}

/// Acquire side of a read that observed `store` under effective order
/// `mo`: synchronize now, or park the store's release clock for a later
/// acquire fence.
void absorb_read(ThreadMem& mem, const Store& store, std::memory_order mo) {
  if (is_acquire(mo)) {
    mem.vc.join(store.release);
  } else {
    mem.pending_acq.join(store.release);
  }
}

/// Release clock a new store under effective order `mo` carries: the
/// thread's clock for release stores, its last release fence for relaxed
/// ones.
VectorClock release_clock(const ThreadMem& mem, std::memory_order mo) {
  return is_release(mo) ? mem.vc : mem.fence_rel;
}

void couple_sc(Model& model, ThreadMem& mem) {
  // Both-ways join with the global SC clock: the documented
  // over-approximation that turns SC's total order into happens-before.
  mem.vc.join(model.sc_clock);
  model.sc_clock.join(mem.vc);
}

void append_store(Model& model, Location& loc, ThreadMem& mem, int thread,
                  std::uint64_t value, std::memory_order mo,
                  VectorClock extra_release) {
  Store store;
  store.value = value;
  store.release = release_clock(mem, mo);
  store.release.join(extra_release);
  store.hb = mem.vc;
  store.thread = thread;
  store.seq_cst = mo == std::memory_order_seq_cst;
  loc.stores.push_back(store);
  const int idx = static_cast<int>(loc.stores.size()) - 1;
  loc.seen[static_cast<unsigned>(thread)] = idx;
  if (store.seq_cst) {
    loc.last_sc_store = idx;
    couple_sc(model, mem);
  }
}

[[noreturn]] void race(Model& model, const Location& loc, const char* kind,
                       const char* prior_site, const char* site) {
  std::ostringstream os;
  os << "data race (" << kind << ") on plain location '" << loc.name
     << "': access at '" << (site != nullptr ? site : "?")
     << "' is unordered with prior access at '"
     << (prior_site != nullptr ? prior_site : "?") << "'";
  (void)model;  // the trampoline appends the event log when it catches this
  throw Violation{os.str()};
}

}  // namespace

Location* register_location(std::uint64_t init, const char* name, bool plain) {
  Runtime& rt = runtime();
  return rt.model().make_location(init, name, plain);
}

std::uint64_t atomic_load(Location* loc, std::memory_order mo,
                          const char* site) {
  Runtime& rt = runtime();
  Model& model = rt.model();
  const std::memory_order eff = model.effective(site, mo, false).order;
  rt.schedule_point(false);
  const int t = Runtime::current_thread();
  ThreadMem& mem = model.mem(t);
  ++mem.vc.c[static_cast<unsigned>(t)];

  const bool sc = eff == std::memory_order_seq_cst;
  if (sc) couple_sc(model, mem);
  const int floor = visibility_floor(*loc, mem, t, sc);
  const int newest = static_cast<int>(loc->stores.size()) - 1;
  const std::size_t span = static_cast<std::size_t>(newest - floor) + 1;
  const int idx = newest - static_cast<int>(rt.choose_value(span));
  const Store& store = loc->stores[static_cast<unsigned>(idx)];
  absorb_read(mem, store, eff);
  if (idx > loc->seen[static_cast<unsigned>(t)]) {
    loc->seen[static_cast<unsigned>(t)] = idx;
  }
  model.log({t, 'L', site, loc->name.c_str(), eff, store.value});
  return store.value;
}

void atomic_store(Location* loc, std::uint64_t value, std::memory_order mo,
                  const char* site) {
  Runtime& rt = runtime();
  Model& model = rt.model();
  const std::memory_order eff = model.effective(site, mo, false).order;
  rt.schedule_point(false);
  const int t = Runtime::current_thread();
  ThreadMem& mem = model.mem(t);
  ++mem.vc.c[static_cast<unsigned>(t)];
  append_store(model, *loc, mem, t, value, eff, VectorClock{});
  model.log({t, 'S', site, loc->name.c_str(), eff, value});
}

std::uint64_t atomic_rmw(Location* loc, std::uint64_t add,
                         const std::uint64_t* exchange_value,
                         std::memory_order mo, const char* site) {
  Runtime& rt = runtime();
  Model& model = rt.model();
  const std::memory_order eff = model.effective(site, mo, false).order;
  rt.schedule_point(false);
  const int t = Runtime::current_thread();
  ThreadMem& mem = model.mem(t);
  ++mem.vc.c[static_cast<unsigned>(t)];

  // RMW atomicity: always reads the newest store in modification order.
  const Store read = loc->stores.back();
  absorb_read(mem, read, eff);
  const std::uint64_t old = read.value;
  const std::uint64_t next =
      exchange_value != nullptr ? *exchange_value : old + add;
  // Release-sequence continuation: the RMW's store also carries the clock
  // of the store it read, so acquire readers downstream of a chain of
  // RMWs still synchronize with the original release — the rule the
  // all-RMW in-queue-flag handshake leans on.
  append_store(model, *loc, mem, t, next, eff, read.release);
  model.log({t, 'M', site, loc->name.c_str(), eff, next});
  return old;
}

bool atomic_cas(Location* loc, std::uint64_t& expected, std::uint64_t desired,
                std::memory_order success, std::memory_order failure,
                const char* site) {
  Runtime& rt = runtime();
  Model& model = rt.model();
  const std::memory_order eff_ok = model.effective(site, success, false).order;
  const std::memory_order eff_fail =
      model.effective(site, failure, false).order;
  rt.schedule_point(false);
  const int t = Runtime::current_thread();
  ThreadMem& mem = model.mem(t);
  ++mem.vc.c[static_cast<unsigned>(t)];

  // Reads the newest store either way; a failed CAS is a load of the
  // latest value (an allowed — if maximally fresh — outcome).
  const Store read = loc->stores.back();
  if (read.value == expected) {
    absorb_read(mem, read, eff_ok);
    append_store(model, *loc, mem, t, desired, eff_ok, read.release);
    model.log({t, 'C', site, loc->name.c_str(), eff_ok, desired});
    return true;
  }
  absorb_read(mem, read, eff_fail);
  const int newest = static_cast<int>(loc->stores.size()) - 1;
  if (newest > loc->seen[static_cast<unsigned>(t)]) {
    loc->seen[static_cast<unsigned>(t)] = newest;
  }
  expected = read.value;
  model.log({t, 'C', site, loc->name.c_str(), eff_fail, read.value});
  return false;
}

void thread_fence(std::memory_order mo, const char* site) {
  Runtime& rt = runtime();
  Model& model = rt.model();
  const Model::Applied applied = model.effective(site, mo, true);
  rt.schedule_point(false);
  const int t = Runtime::current_thread();
  ThreadMem& mem = model.mem(t);
  ++mem.vc.c[static_cast<unsigned>(t)];
  if (applied.drop) {
    model.log({t, 'F', site, "(dropped)", applied.order, 0});
    return;
  }
  const std::memory_order eff = applied.order;
  if (is_acquire(eff)) {
    // Claim the release clocks of every store this thread read relaxed.
    mem.vc.join(mem.pending_acq);
    mem.pending_acq = VectorClock{};
  }
  if (is_release(eff)) mem.fence_rel = mem.vc;
  if (eff == std::memory_order_seq_cst) couple_sc(model, mem);
  model.log({t, 'F', site, "-", eff, 0});
}

void plain_access(Location* loc, bool is_write, const char* site) {
  Runtime& rt = runtime();
  Model& model = rt.model();
  rt.schedule_point(false);
  const int t = Runtime::current_thread();
  ThreadMem& mem = model.mem(t);
  ++mem.vc.c[static_cast<unsigned>(t)];

  const unsigned ut = static_cast<unsigned>(t);
  if (loc->has_write && loc->write_thread != t &&
      loc->write_tick > mem.vc.c[static_cast<unsigned>(loc->write_thread)]) {
    race(model, *loc, is_write ? "write after write" : "read after write",
         loc->write_site, site);
  }
  if (is_write) {
    for (unsigned u = 0; u < kMaxThreads; ++u) {
      if (u == ut || loc->read_ticks[u] == 0) continue;
      if (loc->read_ticks[u] > mem.vc.c[u]) {
        race(model, *loc, "write after read", loc->last_read_site, site);
      }
    }
    loc->has_write = true;
    loc->write_thread = t;
    loc->write_tick = mem.vc.c[ut];
    loc->write_site = site;
    loc->read_ticks.fill(0);
  } else {
    loc->read_ticks[ut] = mem.vc.c[ut];
    loc->last_read_site = site;
  }
  model.log({t, is_write ? 'w' : 'r', site, loc->name.c_str(),
             std::memory_order_relaxed, 0});
}

std::uint64_t peek_latest(const Location* loc) {
  return loc->stores.back().value;
}

bool model_active() { return Runtime::current() != nullptr; }

}  // namespace detail

// --- Model -----------------------------------------------------------------

namespace {
constexpr std::size_t kLogCap = 256;
}  // namespace

Model::Model(MutationSet mutations)
    : mutations_(std::move(mutations)), hits_(mutations_.size(), 0) {
  log_.reserve(kLogCap);
}

detail::Location* Model::make_location(std::uint64_t init, const char* name,
                                       bool plain) {
  detail::Location& loc = locations_.emplace_back();
  loc.name = name != nullptr ? name : "?";
  loc.plain = plain;
  // The initializing store: visible to everyone downstream of the
  // constructor (thread spawn inherits the constructor's clock, exactly
  // like real construct-then-share publication).
  const int t = detail::Runtime::current_thread();
  detail::ThreadMem& mem = mem_[static_cast<unsigned>(t)];
  ++mem.vc.c[static_cast<unsigned>(t)];
  detail::Store store;
  store.value = init;
  store.release = mem.vc;
  store.hb = mem.vc;
  store.thread = t;
  loc.stores.push_back(store);
  loc.seen[static_cast<unsigned>(t)] = 0;
  return &loc;
}

Model::Applied Model::effective(const char* site, std::memory_order mo,
                                bool is_fence) {
  Applied applied{mo, false};
  if (site == nullptr) return applied;
  for (std::size_t i = 0; i < mutations_.size(); ++i) {
    const Mutation& m = mutations_[i];
    if (m.site != site) continue;
    ++hits_[i];
    if (m.kind == Mutation::Kind::kDropFence) {
      applied.drop = is_fence;  // only a fence can be dropped
      applied.order = std::memory_order_relaxed;
    } else {
      applied.order = m.to;
    }
  }
  return applied;
}

void Model::log(const detail::Event& e) {
  if (log_.size() < kLogCap) {
    log_.push_back(e);
  } else {
    log_[log_next_] = e;
    log_next_ = (log_next_ + 1) % kLogCap;
  }
}

std::string Model::dump_log(std::size_t tail) const {
  std::ostringstream os;
  os << "--- event log (oldest first, last " << std::min(tail, log_.size())
     << " of " << log_.size() << " buffered) ---";
  const std::size_t n = log_.size();
  const std::size_t shown = std::min(tail, n);
  for (std::size_t k = n - shown; k < n; ++k) {
    const detail::Event& e = log_[(log_next_ + k) % n];
    os << "\n  t" << e.thread << ' ' << e.op << ' '
       << (e.site != nullptr ? e.site : "-") << " @"
       << (e.loc != nullptr ? e.loc : "-") << ' '
       << detail::order_name(e.order) << " val=" << e.value;
  }
  return os.str();
}

}  // namespace kcore::chk
