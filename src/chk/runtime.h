// Internal: the per-execution runtime behind chk::explore().
//
// One Runtime lives for exactly one explored execution. The program's
// virtual threads run as real OS threads serialized by a single execution
// token (mutex + condvar + `active_`): only the token holder executes, and
// every model operation (chk/model.h) calls schedule_point() first, where
// the strategy may hand the token to another runnable thread. The init
// context (the program factory and the `finally` check) is virtual thread
// 0 and runs while no worker vthread holds the token, so its schedule
// points are no-ops and its loads are single-threaded-deterministic.
//
// Not part of the public chk API — include chk/sched.h instead.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "chk/model.h"
#include "chk/sched.h"

namespace kcore::chk::detail {

/// Schedule/value decisions, implemented by the PCT and DFS strategies in
/// sched.cpp. All calls are serialized by the execution token.
class Strategy {
 public:
  virtual ~Strategy() = default;
  /// Reset for execution `index` (PCT reseeds; DFS rewinds its cursor).
  virtual void begin_execution(std::uint64_t index) = 0;
  /// Pick the next token holder. `runnable` is ascending and non-empty;
  /// `current` is -1 when the previous holder just finished. `yielding`
  /// means the current thread declared itself unable to progress.
  virtual int pick_next(const std::vector<int>& runnable, int current,
                        bool yielding) = 0;
  /// Pick a load's store among `n` coherence-allowed choices; 0 = newest.
  virtual std::size_t pick_value(std::size_t n) = 0;
  /// DFS: step to the next unexplored execution; false when exhausted.
  /// PCT: always true.
  virtual bool advance() = 0;
  /// Human-readable decision trace of the last execution.
  [[nodiscard]] virtual std::string trace() const = 0;
};

class Runtime {
 public:
  Runtime(const Options& options, Strategy& strategy);
  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;
  ~Runtime();

  /// Run one execution of the program; returns true on violation and
  /// leaves the diagnosis in violation_what(). Joins every OS thread
  /// before returning.
  bool run(const std::function<Program()>& make_program);

  [[nodiscard]] const std::string& violation_what() const { return what_; }
  [[nodiscard]] bool hit_step_bound() const { return bounded_; }
  [[nodiscard]] Model& model() { return *model_; }

  /// The Runtime the calling OS thread is executing under, or nullptr.
  static Runtime* current();
  /// Virtual thread id of the caller (0 = init context).
  static int current_thread();

  // --- called by model operations (token holder only) ---
  void schedule_point(bool yielding);
  std::size_t choose_value(std::size_t n);

 private:
  void trampoline(int id, const std::function<void()>& body);
  void record_violation(std::string what);
  [[nodiscard]] std::vector<int> runnable_ids() const;

  const Options& options_;
  Strategy& strategy_;
  std::optional<Model> model_;

  std::mutex mu_;
  std::condition_variable cv_;
  int active_ = 0;  // vthread id holding the execution token
  unsigned steps_ = 0;
  bool unwinding_ = false;
  bool violated_ = false;
  bool bounded_ = false;
  std::string what_;
  std::vector<bool> finished_;  // indexed by vthread id, [0] unused
  unsigned finished_count_ = 0;
  unsigned nthreads_ = 0;
};

}  // namespace kcore::chk::detail
