// The synchronization shim the lock-free core is parameterized over.
//
// Every hand-rolled lock-free structure in this repo (par::StealDeque,
// par::PriorityPool, par::BasicAsyncWorklist, par::MailboxMatrix,
// core::BasicQuiescenceDetector) takes a `Sync` template parameter whose
// default is the `RealSync` passthrough below. RealSync::Atomic<T> IS a
// std::atomic<T> (same size, same layout, inherited operations), so
// release builds compile to exactly the code they compiled to before the
// parameterization — the only additions are overloads that accept and
// discard a SITE TAG, a string literal naming the call site
// ("sd.pop.fence_seq", "qd.confirm.store_done", ...).
//
// The tags are the executable form of the memory-ordering comments: the
// instrumented backend (chk::ModelSync in chk/chk.h) logs every
// load/store/RMW/fence with its site and order, lets the model checker
// explore which store each load reads, and lets the mutation harness
// weaken a single named ordering (seq_cst -> acquire/release -> relaxed,
// or drop a named fence) to prove the checker would catch the bug that
// ordering prevents. Production code never links the model backend; the
// static_asserts at the bottom pin the passthrough's zero-cost contract.
#pragma once

#include <atomic>
#include <cstdint>

namespace kcore::chk {

/// Zero-overhead default backend: std::atomic + std::atomic_thread_fence,
/// site tags discarded at compile time.
struct RealSync {
  static constexpr bool kInstrumented = false;

  template <typename T>
  struct Atomic : std::atomic<T> {
    using std::atomic<T>::atomic;
    constexpr Atomic(T v, const char* /*name*/) noexcept
        : std::atomic<T>(v) {}

    using std::atomic<T>::load;
    using std::atomic<T>::store;
    using std::atomic<T>::exchange;
    using std::atomic<T>::compare_exchange_strong;
    using std::atomic<T>::compare_exchange_weak;

    T load(std::memory_order mo, const char* /*site*/) const noexcept {
      return std::atomic<T>::load(mo);
    }
    void store(T v, std::memory_order mo, const char* /*site*/) noexcept {
      std::atomic<T>::store(v, mo);
    }
    T exchange(T v, std::memory_order mo, const char* /*site*/) noexcept {
      return std::atomic<T>::exchange(v, mo);
    }
    bool compare_exchange_strong(T& expected, T desired,
                                 std::memory_order success,
                                 std::memory_order failure,
                                 const char* /*site*/) noexcept {
      return std::atomic<T>::compare_exchange_strong(expected, desired,
                                                     success, failure);
    }
    bool compare_exchange_weak(T& expected, T desired,
                               std::memory_order success,
                               std::memory_order failure,
                               const char* /*site*/) noexcept {
      return std::atomic<T>::compare_exchange_weak(expected, desired, success,
                                                   failure);
    }
    T fetch_add(T v, std::memory_order mo, const char* /*site*/) noexcept {
      return std::atomic<T>::fetch_add(v, mo);
    }
    T fetch_sub(T v, std::memory_order mo, const char* /*site*/) noexcept {
      return std::atomic<T>::fetch_sub(v, mo);
    }
  };

  static void fence(std::memory_order mo, const char* /*site*/ = nullptr) noexcept {
    std::atomic_thread_fence(mo);
  }

  /// Marker for PLAIN (non-atomic) shared data whose synchronization is
  /// external (e.g. the mailbox matrix, ordered by the round barrier).
  /// The passthrough marker is empty; the instrumented one runs a
  /// vector-clock race check on every note_read/note_write, so an
  /// unordered conflicting access is flagged even on schedules where the
  /// torn value never surfaces.
  struct PlainGuard {
    void note_read(const char* /*site*/ = nullptr) noexcept {}
    void note_write(const char* /*site*/ = nullptr) noexcept {}
  };

  /// Spin-wait hint (cooperative yield point under the model scheduler;
  /// a no-op on real hardware — callers pair it with their own backoff).
  static void spin_hint() noexcept {}
};

// The passthrough's zero-cost contract: an Atomic<T> is layout-identical
// to the std::atomic<T> it replaces, and the guard adds no state.
static_assert(sizeof(RealSync::Atomic<std::uint8_t>) ==
              sizeof(std::atomic<std::uint8_t>));
static_assert(sizeof(RealSync::Atomic<std::uint32_t>) ==
              sizeof(std::atomic<std::uint32_t>));
static_assert(sizeof(RealSync::Atomic<std::int64_t>) ==
              sizeof(std::atomic<std::int64_t>));
static_assert(sizeof(RealSync::Atomic<std::uint64_t>) ==
              sizeof(std::atomic<std::uint64_t>));
static_assert(sizeof(RealSync::Atomic<void*>) == sizeof(std::atomic<void*>));
static_assert(alignof(RealSync::Atomic<std::int64_t>) ==
              alignof(std::atomic<std::int64_t>));
static_assert(std::is_empty_v<RealSync::PlainGuard>);

}  // namespace kcore::chk
