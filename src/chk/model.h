// The chk execution model: an operational approximation of the C++11
// memory model precise enough to make every ordering annotation in the
// lock-free core falsifiable.
//
// Per atomic location the model keeps the full MODIFICATION ORDER — every
// store ever made, each stamped with the storing thread's vector clock
// (`hb`, for visibility pruning) and the clock an acquire reader inherits
// (`release`: the thread's clock for release/seq_cst stores, the clock of
// its last release fence for relaxed stores, joined with the clock of the
// store an RMW read — the release-sequence rule that makes the all-RMW
// in-queue-flag protocol sound). A LOAD does not simply return the newest
// value: the scheduler picks among every store the C++ coherence rules
// still allow —
//   * nothing older than what this thread already read or wrote there,
//   * nothing overwritten by a store that happens-before the load,
//   * for seq_cst loads, nothing older than the latest seq_cst store
//     (the SC-order restriction),
// so a weakened ordering widens the stale-read menu and the explorer
// walks straight into the executions the original ordering excluded.
// RMWs always read the newest store (RMW atomicity) and extend its
// release sequence. seq_cst operations and fences join the global SC
// clock both ways — a deliberate over-approximation (C++ gives SC a total
// order, not happens-before edges between unrelated locations); the model
// is therefore slightly STRONGER than the standard: every behavior it
// exhibits is allowed, a few allowed behaviors it cannot exhibit. For
// catching dropped/weakened orderings that is the safe direction, and the
// mutation suite (tests/test_chk_mutants.cpp) pins that the bugs we care
// about are still reachable.
//
// PLAIN (non-atomic) shared accesses go through PlainGuard markers and a
// FastTrack-style vector-clock race check: a conflicting pair with no
// happens-before edge is reported on the schedule that exposes it even
// when the values happen to come out right.
//
// Every operation is appended to a bounded event log (thread, op, site,
// order, value) that is dumped when an invariant trips — the failure
// report shows the exact interleaving prefix, not just the assertion.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "chk/mutate.h"
#include "chk/vclock.h"

namespace kcore::chk {

namespace detail {

struct Store {
  std::uint64_t value = 0;
  VectorClock release;  // what an acquire reader joins
  VectorClock hb;       // storer's clock at the store (visibility pruning)
  int thread = -1;
  bool seq_cst = false;
};

struct Location {
  std::string name;
  bool plain = false;

  // Atomic state: the modification order.
  std::vector<Store> stores;
  int last_sc_store = 0;  // index of the newest seq_cst store (0 = none)
  std::array<int, kMaxThreads> seen{};  // per-thread coherence floor

  // Plain state: FastTrack-style epochs for the race checker.
  bool has_write = false;
  int write_thread = -1;
  std::uint32_t write_tick = 0;
  const char* write_site = nullptr;
  std::array<std::uint32_t, kMaxThreads> read_ticks{};
  const char* last_read_site = nullptr;
};

struct ThreadMem {
  VectorClock vc;           // the thread's happens-before clock
  VectorClock fence_rel;    // clock at the last release/seq_cst fence
  VectorClock pending_acq;  // release clocks of relaxed-read stores,
                            // claimed by the next acquire fence
};

struct Event {
  int thread = 0;
  char op = '?';  // L load, S store, M rmw, C cas, F fence, r/w plain
  const char* site = nullptr;
  const char* loc = nullptr;
  std::memory_order order = std::memory_order_relaxed;
  std::uint64_t value = 0;
};

/// Model-operation entry points used by ModelSync (chk/chk.h). All of
/// them run under the scheduler's single execution token; each one is a
/// schedule point first, then a model transition. They throw
/// chk::Violation on a detected race and chk::ExecutionAborted while an
/// execution is being unwound — which is why the Sync-parameterized
/// primitives declare noexcept(!Sync::kInstrumented).
Location* register_location(std::uint64_t init, const char* name, bool plain);
std::uint64_t atomic_load(Location* loc, std::memory_order mo,
                          const char* site);
void atomic_store(Location* loc, std::uint64_t value, std::memory_order mo,
                  const char* site);
/// RMW: new_value = old + add (wrapping) unless `exchange_value` is set,
/// in which case new_value = *exchange_value. Returns the old value.
std::uint64_t atomic_rmw(Location* loc, std::uint64_t add,
                         const std::uint64_t* exchange_value,
                         std::memory_order mo, const char* site);
bool atomic_cas(Location* loc, std::uint64_t& expected, std::uint64_t desired,
                std::memory_order success, std::memory_order failure,
                const char* site);
void thread_fence(std::memory_order mo, const char* site);
void plain_access(Location* loc, bool is_write, const char* site);

/// Ground-truth peek: the newest value in modification order, with no
/// clock effects, no schedule point, no coherence update. For invariant
/// oracles only (e.g. "the detector confirmed while the true outstanding
/// count was nonzero").
std::uint64_t peek_latest(const Location* loc);

/// True while the calling OS thread is inside an explore() execution
/// (init context or a virtual thread).
bool model_active();

}  // namespace detail

/// The per-execution model state. Owned and reset by the explorer; test
/// code never touches it directly.
class Model {
 public:
  explicit Model(MutationSet mutations);

  detail::Location* make_location(std::uint64_t init, const char* name,
                                  bool plain);
  detail::ThreadMem& mem(int thread) { return mem_[thread]; }

  /// Mutation lookup: the effective order for an op at `site` (counts the
  /// hit), or "drop" for an elided fence.
  struct Applied {
    std::memory_order order;
    bool drop = false;
  };
  Applied effective(const char* site, std::memory_order mo, bool is_fence);

  void log(const detail::Event& e);
  [[nodiscard]] std::string dump_log(std::size_t tail = 48) const;

  [[nodiscard]] const std::vector<std::uint64_t>& mutation_hits() const {
    return hits_;
  }
  [[nodiscard]] const MutationSet& mutations() const { return mutations_; }

  VectorClock sc_clock;

 private:
  std::deque<detail::Location> locations_;  // stable addresses
  std::array<detail::ThreadMem, kMaxThreads> mem_{};
  MutationSet mutations_;
  std::vector<std::uint64_t> hits_;
  std::vector<detail::Event> log_;
  std::size_t log_next_ = 0;  // ring cursor once full
};

}  // namespace kcore::chk
