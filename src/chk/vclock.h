// Vector clocks for the chk model checker (chk/model.h).
//
// One component per virtual thread (slot 0 is the init/driver context).
// Clocks order the events of an explored execution: event A happens-before
// event B iff A's clock is component-wise <= B's thread's clock when B
// executes. The model uses them three ways — acquire/release publication
// (a store carries the clock an acquire reader joins), coherence pruning
// (a load may not read a store that is happens-before-overwritten), and
// the plain-access race checker (conflicting accesses must be ordered).
#pragma once

#include <array>
#include <cstdint>

namespace kcore::chk {

/// Hard cap on virtual threads per explored program (init context + up to
/// 7 workers — the controlled-schedule configurations are deliberately
/// small; exploration cost grows exponentially with thread count).
inline constexpr unsigned kMaxThreads = 8;

struct VectorClock {
  std::array<std::uint32_t, kMaxThreads> c{};

  void join(const VectorClock& other) noexcept {
    for (unsigned i = 0; i < kMaxThreads; ++i) {
      if (other.c[i] > c[i]) c[i] = other.c[i];
    }
  }

  /// True iff this clock is component-wise <= other: the event stamped
  /// with *this happens-before (or is) the point where `other` was taken.
  [[nodiscard]] bool leq(const VectorClock& other) const noexcept {
    for (unsigned i = 0; i < kMaxThreads; ++i) {
      if (c[i] > other.c[i]) return false;
    }
    return true;
  }
};

}  // namespace kcore::chk
