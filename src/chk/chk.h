// Umbrella header for the chk layer.
//
//   chk/sync.h   — RealSync: the zero-overhead production backend.
//   chk/model.h  — the operational C++11 memory model.
//   chk/sched.h  — explore()/replay(), ModelSync, require(), yield().
//   chk/mutate.h — the memory-order mutation harness.
//
// Production code includes only chk/sync.h (and pays nothing for it);
// checker tests include this.
#pragma once

#include "chk/model.h"   // IWYU pragma: export
#include "chk/mutate.h"  // IWYU pragma: export
#include "chk/sched.h"   // IWYU pragma: export
#include "chk/sync.h"    // IWYU pragma: export
