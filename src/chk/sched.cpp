// The controlled-schedule explorer: execution token, PCT and exhaustive
// strategies, and the explore() driver. See chk/sched.h for the public
// contract and chk/runtime.h for the runtime structure.

#include "chk/sched.h"

#include <algorithm>
#include <array>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <utility>

#include "chk/runtime.h"

namespace kcore::chk {

namespace detail {

namespace {

thread_local Runtime* tl_runtime = nullptr;
thread_local int tl_thread = 0;

/// splitmix64: tiny, platform-stable, and good enough for schedule
/// sampling — the same seed replays the same execution on any host.
std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// --- PCT -------------------------------------------------------------------

class PctStrategy final : public Strategy {
 public:
  explicit PctStrategy(const Options& options) : options_(options) {}

  void begin_execution(std::uint64_t index) override {
    seed_ = options_.seed + index;
    rng_ = seed_;
    step_ = 0;
    low_ = -1;
    // Random distinct starting priorities via a Fisher–Yates shuffle of
    // 1..kMaxThreads-1 (higher value = runs first).
    for (unsigned i = 0; i < kMaxThreads; ++i) {
      prio_[i] = static_cast<int>(i) + 1;
    }
    for (unsigned i = kMaxThreads - 1; i > 1; --i) {
      const unsigned j = 1 + static_cast<unsigned>(splitmix64(rng_) % i);
      std::swap(prio_[i], prio_[j]);
    }
    // d-1 priority-change points sampled over the step horizon.
    change_.clear();
    const unsigned d = std::max(1U, options_.pct_depth);
    for (unsigned k = 0; k + 1 < d; ++k) {
      change_.push_back(static_cast<unsigned>(
          splitmix64(rng_) % std::max(1U, options_.pct_horizon)));
    }
  }

  int pick_next(const std::vector<int>& runnable, int current,
                bool yielding) override {
    ++step_;
    if (current > 0) {
      // A change point demotes the running thread below everyone — the
      // PCT move that buys the depth-d detection guarantee. A yield is
      // treated the same way: the thread told us it cannot progress.
      const bool at_change_point =
          std::find(change_.begin(), change_.end(), step_) != change_.end();
      if (yielding || at_change_point) prio_[current] = low_--;
    }
    int best = runnable.front();
    for (const int id : runnable) {
      if (prio_[static_cast<unsigned>(id)] >
          prio_[static_cast<unsigned>(best)]) {
        best = id;
      }
    }
    return best;
  }

  std::size_t pick_value(std::size_t n) override {
    return static_cast<std::size_t>(splitmix64(rng_) % n);
  }

  bool advance() override { return true; }

  [[nodiscard]] std::string trace() const override {
    std::ostringstream os;
    os << "pct seed=" << seed_ << " depth=" << options_.pct_depth
       << " (replay: explore with seed=" << seed_ << ", executions=1)";
    return os.str();
  }

 private:
  const Options& options_;
  std::uint64_t seed_ = 0;
  std::uint64_t rng_ = 0;
  unsigned step_ = 0;
  int low_ = -1;
  std::array<int, kMaxThreads> prio_{};
  std::vector<unsigned> change_;
};

// --- Exhaustive DFS --------------------------------------------------------

class DfsStrategy final : public Strategy {
 public:
  explicit DfsStrategy(const Options& options) : options_(options) {}

  void begin_execution(std::uint64_t /*index*/) override {
    cursor_ = 0;
    preemptions_ = 0;
  }

  int pick_next(const std::vector<int>& runnable, int current,
                bool yielding) override {
    // Candidate order decides the DFS default path (choice 0). The
    // current thread runs on unless it yielded; switching away from a
    // still-runnable, non-yielding thread is a preemption and is only
    // offered while the preemption budget lasts. Yield-switches are
    // voluntary — free — which keeps spin loops from exploding the tree.
    candidates_.clear();
    const bool current_runnable =
        current > 0 &&
        std::find(runnable.begin(), runnable.end(), current) != runnable.end();
    if (current_runnable && !yielding) {
      candidates_.push_back(current);
      if (preemptions_ < options_.preemption_bound) {
        for (const int id : runnable) {
          if (id != current) candidates_.push_back(id);
        }
      }
    } else {
      for (const int id : runnable) {
        if (yielding && id == current && runnable.size() > 1) continue;
        candidates_.push_back(id);
      }
    }
    const int pick =
        candidates_[decide(candidates_.size())];
    if (current_runnable && !yielding && pick != current) ++preemptions_;
    return pick;
  }

  std::size_t pick_value(std::size_t n) override { return decide(n); }

  bool advance() override {
    // Backtrack: drop exhausted trailing decisions, bump the deepest one
    // that still has an unexplored branch.
    while (!stack_.empty() && stack_.back().chosen + 1 >= stack_.back().n) {
      stack_.pop_back();
    }
    if (stack_.empty()) return false;
    ++stack_.back().chosen;
    return true;
  }

  [[nodiscard]] std::string trace() const override {
    std::ostringstream os;
    os << "dfs decisions=[";
    for (std::size_t i = 0; i < cursor_ && i < stack_.size(); ++i) {
      if (i != 0) os << ' ';
      os << stack_[i].chosen << '/' << stack_[i].n;
    }
    os << ']';
    return os.str();
  }

 private:
  struct Decision {
    std::size_t n = 0;
    std::size_t chosen = 0;
  };

  std::size_t decide(std::size_t n) {
    if (n <= 1) return 0;  // forced move: not a branch point, keep it off
                           // the stack so backtracking skips straight past
    if (cursor_ < stack_.size()) return stack_[cursor_++].chosen;
    stack_.push_back({n, 0});
    ++cursor_;
    return 0;
  }

  const Options& options_;
  std::vector<Decision> stack_;
  std::size_t cursor_ = 0;
  unsigned preemptions_ = 0;
  std::vector<int> candidates_;
};

}  // namespace

// --- Runtime ---------------------------------------------------------------

Runtime::Runtime(const Options& options, Strategy& strategy)
    : options_(options), strategy_(strategy) {}

Runtime::~Runtime() = default;

Runtime* Runtime::current() { return tl_runtime; }
int Runtime::current_thread() { return tl_thread; }

std::vector<int> Runtime::runnable_ids() const {
  std::vector<int> ids;
  for (unsigned id = 1; id <= nthreads_; ++id) {
    if (!finished_[id]) ids.push_back(static_cast<int>(id));
  }
  return ids;
}

void Runtime::record_violation(std::string what) {
  const std::lock_guard<std::mutex> lock(mu_);
  if (!violated_) {
    violated_ = true;
    what_ = std::move(what);
  }
  unwinding_ = true;
  cv_.notify_all();
}

void Runtime::schedule_point(bool yielding) {
  const int cur = tl_thread;
  std::unique_lock<std::mutex> lk(mu_);
  if (unwinding_) throw ExecutionAborted{};
  if (cur == 0) return;  // init / finally: single-threaded, nothing to pick
  if (++steps_ > options_.max_steps) {
    bounded_ = true;
    unwinding_ = true;
    cv_.notify_all();
    throw ExecutionAborted{};
  }
  const std::vector<int> runnable = runnable_ids();
  if (runnable.size() == 1 && runnable.front() == cur) return;
  const int next = strategy_.pick_next(runnable, cur, yielding);
  if (next == cur) return;
  active_ = next;
  cv_.notify_all();
  cv_.wait(lk, [&] { return active_ == cur || unwinding_; });
  if (unwinding_) throw ExecutionAborted{};
}

std::size_t Runtime::choose_value(std::size_t n) {
  // Token holder only; no lock needed. Init/finally never see a choice:
  // after the join (or before the spawn) the visibility floor is the
  // newest store, so n == 1 there by construction.
  if (n <= 1) return 0;
  return strategy_.pick_value(n);
}

void Runtime::trampoline(int id, const std::function<void()>& body) {
  tl_runtime = this;
  tl_thread = id;
  bool aborted = false;
  {
    std::unique_lock<std::mutex> lk(mu_);
    cv_.wait(lk, [&] { return active_ == id || unwinding_; });
    aborted = unwinding_;
  }
  try {
    if (!aborted) body();
  } catch (const Violation& v) {
    record_violation(v.what + "\n" + model_->dump_log());
  } catch (const ExecutionAborted&) {
  } catch (const std::exception& e) {
    record_violation(std::string("uncaught exception in virtual thread: ") +
                     e.what());
  } catch (...) {
    record_violation("uncaught non-std exception in virtual thread");
  }
  std::unique_lock<std::mutex> lk(mu_);
  finished_[static_cast<unsigned>(id)] = true;
  ++finished_count_;
  const std::vector<int> runnable = runnable_ids();
  if (!unwinding_ && !runnable.empty()) {
    active_ = strategy_.pick_next(runnable, /*current=*/-1, false);
  } else {
    active_ = 0;  // hand back to the driver
  }
  cv_.notify_all();
  tl_runtime = nullptr;
  tl_thread = 0;
}

bool Runtime::run(const std::function<Program()>& make_program) {
  model_.emplace(options_.mutations);
  tl_runtime = this;
  tl_thread = 0;

  {
    Program program;
    try {
      program = make_program();
      nthreads_ = static_cast<unsigned>(program.threads.size());
      if (nthreads_ + 1 > kMaxThreads) {
        throw std::invalid_argument("chk: program exceeds kMaxThreads - 1");
      }
    } catch (const Violation& v) {
      record_violation(v.what + "\n" + model_->dump_log());
      nthreads_ = 0;
    }

    if (nthreads_ > 0 && !violated_) {
      finished_.assign(nthreads_ + 1, false);
      // Thread creation is a release edge: every vthread starts
      // downstream of everything the factory did.
      for (unsigned id = 1; id <= nthreads_; ++id) {
        model_->mem(static_cast<int>(id)).vc = model_->mem(0).vc;
      }
      std::vector<std::thread> os_threads;
      os_threads.reserve(nthreads_);
      {
        const std::lock_guard<std::mutex> lock(mu_);
        active_ = -1;  // nobody runs until the first pick below
      }
      for (unsigned id = 1; id <= nthreads_; ++id) {
        os_threads.emplace_back(
            [this, id, body = program.threads[id - 1]]() mutable {
              trampoline(static_cast<int>(id), body);
            });
      }
      {
        std::unique_lock<std::mutex> lk(mu_);
        active_ = strategy_.pick_next(runnable_ids(), /*current=*/-1, false);
        cv_.notify_all();
        cv_.wait(lk, [&] { return finished_count_ == nthreads_; });
      }
      for (std::thread& t : os_threads) t.join();
      tl_runtime = this;  // the trampolines cleared their own copies
      tl_thread = 0;

      if (!violated_ && !bounded_ && program.finally) {
        // Join every vthread's clock: finally observes the whole
        // execution, like a caller after thread::join.
        for (unsigned id = 1; id <= nthreads_; ++id) {
          model_->mem(0).vc.join(model_->mem(static_cast<int>(id)).vc);
        }
        try {
          program.finally();
        } catch (const Violation& v) {
          record_violation(v.what + "\n" + model_->dump_log());
        } catch (const std::exception& e) {
          record_violation(std::string("uncaught exception in finally: ") +
                           e.what());
        }
      }
    }
    // `program` (and every ModelSync-backed structure its closures own)
    // dies here, before the model it points into.
  }

  tl_runtime = nullptr;
  tl_thread = 0;
  return violated_;
}

}  // namespace detail

// --- public API ------------------------------------------------------------

void require(bool condition, const char* message) {
  if (condition) return;
  throw Violation{std::string("invariant violated: ") +
                  (message != nullptr ? message : "(unnamed)")};
}

void yield() {
  detail::Runtime* rt = detail::Runtime::current();
  if (rt != nullptr) rt->schedule_point(true);
}

Outcome explore(const Options& options,
                const std::function<Program()>& make_program) {
  Outcome out;
  for (const Mutation& m : options.mutations) out.mutation_hits[m.site] = 0;

  std::unique_ptr<detail::Strategy> strategy;
  if (options.mode == Mode::kPct) {
    strategy = std::make_unique<detail::PctStrategy>(options);
  } else {
    strategy = std::make_unique<detail::DfsStrategy>(options);
  }
  const std::uint64_t limit = options.mode == Mode::kPct
                                  ? options.executions
                                  : options.max_executions;

  for (std::uint64_t exec = 0; exec < limit; ++exec) {
    strategy->begin_execution(exec);
    detail::Runtime runtime(options, *strategy);
    const bool violated = runtime.run(make_program);
    ++out.executions;
    if (runtime.hit_step_bound()) ++out.bounded;
    const std::vector<std::uint64_t>& hits = runtime.model().mutation_hits();
    for (std::size_t i = 0; i < options.mutations.size(); ++i) {
      out.mutation_hits[options.mutations[i].site] += hits[i];
    }
    if (violated) {
      out.violation = true;
      out.what = runtime.violation_what();
      out.trace = strategy->trace();
      out.replay_seed =
          options.mode == Mode::kPct ? options.seed + exec : options.seed;
      break;
    }
    if (options.mode == Mode::kExhaustive && !strategy->advance()) {
      out.exhausted = true;
      break;
    }
  }
  return out;
}

Outcome replay(Options options, std::uint64_t replay_seed,
               const std::function<Program()>& make_program) {
  options.mode = Mode::kPct;
  options.seed = replay_seed;
  options.executions = 1;
  return explore(options, make_program);
}

}  // namespace kcore::chk
