// The chk controlled-schedule explorer.
//
// explore() runs a small multi-threaded PROGRAM — built fresh for every
// execution by the caller's factory — under a deterministic cooperative
// scheduler: the program's threads run as real OS threads, but a single
// execution token serializes them, and every instrumented synchronization
// operation (see chk/model.h) is a schedule point where a STRATEGY
// decides who runs next and which coherence-allowed store a load reads.
// Two strategies:
//
//  * PCT (probabilistic concurrency testing): seeded random priorities
//    with `pct_depth - 1` priority-change points — O(1) per step, finds
//    depth-d bugs with known probability, and a failing execution is
//    fully reproduced by its seed (Outcome::replay_seed + replay()).
//  * Exhaustive: depth-first enumeration of every schedule (and every
//    allowed stale read) up to a preemption bound, for 2–3 thread litmus
//    configurations. Deterministic — re-running the same options replays
//    the same failing execution.
//
// Invariants are asserted with chk::require() inside thread bodies or the
// final check; the model's own vector-clock race checker fires on
// unordered conflicting plain accesses regardless of values. A violation
// aborts the execution, unwinds every virtual thread, and is returned in
// Outcome together with the tail of the event log and the decision trace.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstring>
#include <functional>
#include <map>
#include <string>
#include <type_traits>
#include <vector>

#include "chk/model.h"
#include "chk/mutate.h"

namespace kcore::chk {

/// Thrown by chk::require (and the model's race checker) to abort the
/// current execution with a diagnosis.
struct Violation {
  std::string what;
};

/// Thrown by schedule points while an execution unwinds (after a
/// violation, a step-bound overrun, or exploration shutdown). Virtual
/// thread bodies must let it propagate.
struct ExecutionAborted {};

/// One explored program: thread bodies plus an optional final check that
/// runs single-threaded after every body finished (it observes the joined
/// state, like a caller after thread::join).
struct Program {
  std::vector<std::function<void()>> threads;
  std::function<void()> finally;
};

enum class Mode {
  kPct,
  kExhaustive,
};

struct Options {
  Mode mode = Mode::kPct;

  // PCT: `executions` runs with per-execution seed = seed + index.
  std::uint64_t seed = 1;
  std::uint64_t executions = 400;
  unsigned pct_depth = 3;
  /// Range the priority-change points are sampled from; roughly the
  /// expected step count of one execution.
  unsigned pct_horizon = 256;

  // Exhaustive: DFS over schedule + stale-read choices.
  unsigned preemption_bound = 2;
  std::uint64_t max_executions = 50000;

  /// Per-execution step budget (schedule points). Overruns mark the
  /// execution `bounded`, never a violation — spin loops that the chosen
  /// schedule starves are expected under controlled scheduling.
  unsigned max_steps = 3000;

  MutationSet mutations;
};

struct Outcome {
  bool violation = false;
  std::string what;    // first violation + event-log tail
  std::string trace;   // decision trace of the failing execution
  std::uint64_t executions = 0;
  std::uint64_t bounded = 0;  // executions cut off by max_steps
  /// True when exhaustive mode enumerated the whole (bounded) space
  /// before max_executions ran out.
  bool exhausted = false;
  /// Seed that reproduces the failing execution in PCT mode: re-run with
  /// seed = replay_seed, executions = 1.
  std::uint64_t replay_seed = 0;
  /// site -> times the mutation at that site actually rewrote an op. A
  /// zero here means the mutation never fired (e.g. renamed site) — the
  /// mutation tests assert every seeded mutant was exercised.
  std::map<std::string, std::uint64_t> mutation_hits;
};

/// Explore the program under the options; stops at the first violation.
/// The factory runs once per execution, in the init context — everything
/// it builds (ModelAtomic-backed structures included) is torn down after
/// the execution ends.
Outcome explore(const Options& options,
                const std::function<Program()>& make_program);

/// One-line repro for a PCT failure: explore with executions=1 and
/// seed=replay_seed (all other options as in the original run).
Outcome replay(Options options, std::uint64_t replay_seed,
               const std::function<Program()>& make_program);

/// Assert a protocol invariant inside a thread body or final check.
void require(bool condition, const char* message);

/// Cooperative spin-wait hint: a schedule point that tells the strategy
/// this thread cannot make progress until someone else runs.
void yield();

// ---------------------------------------------------------------------------
// ModelSync — the instrumented backend the primitives are instantiated
// over in chk tests. Same surface as chk::RealSync (chk/sync.h).
// ---------------------------------------------------------------------------

template <typename T>
class ModelAtomic {
  static_assert(std::is_trivially_copyable_v<T> && sizeof(T) <= 8,
                "the model packs values into 64 bits");

 public:
  ModelAtomic() : ModelAtomic(T{}) {}
  explicit ModelAtomic(T v, const char* name = "atomic")
      : loc_(detail::register_location(to_u(v), name, /*plain=*/false)) {}

  ModelAtomic(const ModelAtomic&) = delete;
  ModelAtomic& operator=(const ModelAtomic&) = delete;

  T load(std::memory_order mo, const char* site = nullptr) const {
    return from_u(detail::atomic_load(loc_, mo, site));
  }
  void store(T v, std::memory_order mo, const char* site = nullptr) {
    detail::atomic_store(loc_, to_u(v), mo, site);
  }
  T exchange(T v, std::memory_order mo, const char* site = nullptr) {
    const std::uint64_t desired = to_u(v);
    return from_u(detail::atomic_rmw(loc_, 0, &desired, mo, site));
  }
  bool compare_exchange_strong(T& expected, T desired,
                               std::memory_order success,
                               std::memory_order failure,
                               const char* site = nullptr) {
    std::uint64_t exp = to_u(expected);
    const bool ok =
        detail::atomic_cas(loc_, exp, to_u(desired), success, failure, site);
    expected = from_u(exp);
    return ok;
  }
  bool compare_exchange_weak(T& expected, T desired, std::memory_order success,
                             std::memory_order failure,
                             const char* site = nullptr) {
    // Modeled as strong: spurious failure adds schedules without adding
    // reachable states (the retry loop re-executes the same transition).
    return compare_exchange_strong(expected, desired, success, failure, site);
  }
  T fetch_add(T v, std::memory_order mo, const char* site = nullptr) {
    return from_u(detail::atomic_rmw(loc_, to_u(v), nullptr, mo, site));
  }
  T fetch_sub(T v, std::memory_order mo, const char* site = nullptr) {
    return from_u(
        detail::atomic_rmw(loc_, ~to_u(v) + 1, nullptr, mo, site));
  }

  /// Ground-truth oracle: newest value in modification order, no clock
  /// effects, no schedule point. Invariant checks only.
  [[nodiscard]] T debug_latest() const {
    return from_u(detail::peek_latest(loc_));
  }

 private:
  static std::uint64_t to_u(T v) {
    std::uint64_t u = 0;
    std::memcpy(&u, &v, sizeof(T));
    return u;
  }
  static T from_u(std::uint64_t u) {
    T v;
    std::memcpy(&v, &u, sizeof(T));
    return v;
  }

  detail::Location* loc_;
};

struct ModelSync {
  static constexpr bool kInstrumented = true;

  template <typename T>
  using Atomic = ModelAtomic<T>;

  static void fence(std::memory_order mo, const char* site = nullptr) {
    detail::thread_fence(mo, site);
  }

  struct PlainGuard {
    PlainGuard()
        : loc_(detail::register_location(0, "plain", /*plain=*/true)) {}
    // Containers of guarded slots (e.g. MailboxMatrix) copy/move elements
    // while being BUILT, before any guarded access: a copy guards a new
    // object, so it registers a fresh location instead of aliasing.
    PlainGuard(const PlainGuard&) : PlainGuard() {}
    PlainGuard& operator=(const PlainGuard&) { return *this; }
    void note_read(const char* site = nullptr) {
      detail::plain_access(loc_, /*is_write=*/false, site);
    }
    void note_write(const char* site = nullptr) {
      detail::plain_access(loc_, /*is_write=*/true, site);
    }

   private:
    detail::Location* loc_;
  };

  static void spin_hint() { yield(); }
};

}  // namespace kcore::chk
