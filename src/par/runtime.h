// kcore::par — real shared-memory parallel execution of the paper's
// protocols.
//
// Everything under src/par/ exists to turn the repo's *simulated* speedup
// into *measured* speedup: the paper's central claim is that k-core
// decomposition parallelizes cleanly under the one-to-many host model,
// and these runners execute that model with actual worker threads.
//
//  * run_one_to_many_par — Algorithms 3–5 verbatim: the node set is
//    sharded into `num_hosts` OneToManyHost state machines by the
//    core::assignment policies, and par::Engine drives them with
//    `threads` workers, double-buffered SPSC mailboxes and barrier
//    rounds. Coreness AND traffic are bit-identical to the simulator in
//    synchronous mode — the same protocol, now on real cores.
//
//  * run_bsp_par — the Pregel-style port on shared memory: vertices are
//    sharded across workers, every superstep recomputes dirty vertices
//    with computeIndex against a SHARED ATOMIC estimate table (two
//    epochs, prev/next, swapped at the barrier), and changed vertices
//    activate their neighbors through atomic dirty flags instead of
//    materialized messages. Supersteps and message counts are a pure
//    function of the graph — independent of thread count and shard
//    assignment.
//
// Seed stability: any randomness (the kRandom assignment policy, future
// fault injection) is derived with util::split_stream from the root seed
// and a LOGICAL stream index (shard id, not thread id), so results never
// depend on how many threads happened to run the shards.
//
// Both runners handle the degenerate graphs the facade never forwards
// (empty graph, single node) so they can also be driven directly.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "bsp/pregel.h"
#include "core/one_to_many.h"
#include "core/run_options.h"
#include "graph/graph.h"
#include "obs/obs.h"

namespace kcore::par {

/// One-to-many result plus the execution profile of the real run.
struct OneToManyParResult : core::OneToManyResult {
  /// Worker threads actually used (after clamping to the shard count).
  unsigned threads_used = 0;
  /// Single-threaded setup (assignment + host construction) vs the
  /// parallel round loop, separated so scaling studies can apply Amdahl
  /// honestly: only run_ms is expected to shrink with threads.
  double setup_ms = 0.0;
  double run_ms = 0.0;
  /// Harvested telemetry; null unless options.obs asked for some. The
  /// convergence sampler is not wired for this runtime (host state has
  /// no concurrency-safe estimate table) — metrics and round traces are.
  std::shared_ptr<const obs::RunTelemetry> telemetry;
};

/// BSP result: coreness plus the framework statistics (messages_* count
/// activation notifications; with the shared estimate table every
/// delivery is "combined" by construction, so emitted == delivered).
struct BspParResult {
  std::vector<graph::NodeId> coreness;
  bsp::BspStats stats;
  unsigned threads_used = 0;
  double setup_ms = 0.0;  // table allocation + shard assignment
  double run_ms = 0.0;    // the parallel superstep loop
  /// Harvested telemetry; null unless options.obs asked for some.
  std::shared_ptr<const obs::RunTelemetry> telemetry;
};

/// Run the §3.2 one-to-many protocol on real threads. Consumed options:
/// threads (0 = hardware concurrency), num_hosts, assignment, comm, seed,
/// max_rounds (0 = automatic). mode is ignored — real barrier rounds ARE
/// the synchronous model; faults are rejected by api::validate upstream.
[[nodiscard]] OneToManyParResult run_one_to_many_par(
    const graph::Graph& g, const core::RunOptions& options,
    const core::ProgressObserver& observer = {});

/// Run the Pregel-style shared-memory port. Consumed options: threads,
/// assignment, targeted_send (skip notifying neighbors the new estimate
/// cannot affect), seed, max_rounds. num_hosts is ignored — workers own
/// vertex shards directly.
[[nodiscard]] BspParResult run_bsp_par(
    const graph::Graph& g, const core::RunOptions& options,
    const core::ProgressObserver& observer = {});

// --- prepared (amortized) execution ----------------------------------------
// The one-shot runners above re-derive everything per call. The prepared
// split serves api::Session's prepare-once / run-many contract, and —
// since the serving redesign — its CONCURRENT serving contract: prepare_*
// performs the graph-dependent derivation (assignment, host construction,
// seed orders) once into a struct that is IMMUTABLE after prepare, and
// run_*_prepared executes repeatably from it — every run bit-identical to
// the one-shot runner under the same options. All per-run mutable state
// (estimate tables, activation flags, worklists) lives in a separate
// *RunContext that each run owns privately, so N threads may execute
// run_*_prepared over ONE shared prepared struct concurrently, each with
// its own context. A context is reset in place at the start of every run
// (O(N) stores, zero reallocation), so reusing one across sequential runs
// is both safe and allocation-free.

/// one-to-many-par: the §3.2.2 assignment plus pristine host state
/// machines. Immutable after prepare; each run copies the hosts into a
/// fresh engine — copying CSR state is much cheaper than re-deriving it
/// from the graph — so this runtime needs no separate run context.
struct OneToManyParPrepared {
  std::vector<sim::HostId> owner;
  std::vector<core::OneToManyHost> hosts;
};

[[nodiscard]] OneToManyParPrepared prepare_one_to_many_par(
    const graph::Graph& g, const core::RunOptions& options);

/// Execute one run from prepared state. result.setup_ms covers only this
/// run's residual setup (host copy + engine construction); the caller
/// accounts the prepare cost separately.
[[nodiscard]] OneToManyParResult run_one_to_many_par_prepared(
    const graph::Graph& g, const OneToManyParPrepared& prepared,
    const core::RunOptions& options,
    const core::ProgressObserver& observer = {});

/// bsp-par, shareable half: the vertex→worker shards. Immutable after
/// prepare — safe to read from any number of concurrent runs.
struct BspParPrepared {
  unsigned workers = 0;
  std::vector<sim::HostId> owner;
  std::vector<std::vector<graph::NodeId>> owned;
};

/// bsp-par, per-run half: the two shared atomic tables (estimate epochs,
/// activation flags). Each concurrent run needs its own context; a
/// context is reset in place per run, so sequential reuse never
/// reallocates.
struct BspParRunContext {
  explicit BspParRunContext(graph::NodeId n)
      : est_a(n), est_b(n), act_a(n), act_b(n) {}

  std::vector<std::atomic<graph::NodeId>> est_a, est_b;
  std::vector<std::atomic<std::uint8_t>> act_a, act_b;
};

[[nodiscard]] BspParPrepared prepare_bsp_par(const graph::Graph& g,
                                             const core::RunOptions& options);

[[nodiscard]] BspParResult run_bsp_par_prepared(
    const graph::Graph& g, const BspParPrepared& prepared,
    BspParRunContext& context, const core::RunOptions& options,
    const core::ProgressObserver& observer = {});

}  // namespace kcore::par
