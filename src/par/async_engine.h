// Async chaotic-relaxation runtime — the paper's protocol with the round
// structure removed entirely.
//
// The §4 proofs never rely on synchrony: estimates are upper bounds that
// only decrease (Theorem 2), computeIndex is monotone in its inputs, and
// the true coreness is the unique fixed point (Theorem 1). Any schedule
// that (a) applies computeIndex with SOME previously-published estimates
// and (b) re-examines a vertex whenever a neighbor's estimate drops,
// converges to the exact decomposition — that is chaotic relaxation, and
// it is exactly the asynchrony tolerance the paper claims for deployed
// (non-lockstep) hosts. run_bsp_async executes it on shared memory:
//
//  * ONE shared atomic estimate table — no epochs, no double buffering,
//    no barriers. Readers may observe half-propagated states; the lattice
//    argument above makes every such state safe.
//  * A pluggable SCHEDULING POLICY (core::SchedPolicy): because any
//    schedule converges, pop order is a pure performance lever. The
//    dirty-vertex pool is a bucketed priority pool (par/priority_pool.h)
//    of Chase–Lev deques — policy lifo uses one bucket per worker (the
//    classic LIFO/steal path), policy bound buckets by current estimate
//    and pops lowest first (the peeling frontier), policy delta buckets
//    by accumulated neighborhood change and pops largest first.
//  * A lost-wakeup-safe re-enqueue protocol: one atomic in-queue flag per
//    vertex. schedule() enqueues only on the flag's 0->1 exchange (a
//    vertex sits in at most one bucket); a worker clears the flag — also
//    with an exchange, so every flag write is an RMW and the release
//    sequence never breaks — BEFORE reading its inputs. An estimate that
//    drops after the clear re-flags and re-enqueues the vertex; one that
//    dropped before is visible to the read (the clearing exchange
//    synchronizes with every earlier flag RMW). Either way the update is
//    never lost. The protocol is identical under every policy — the pool
//    only changes which flagged vertex is popped next.
//  * Concurrent quiescence detection: core::QuiescenceDetector counts
//    outstanding work (add on every enqueue, finish after a vertex is
//    fully processed, including the wakes it issued), and an idle worker
//    that finds the counter at zero runs the confirmation pass — the §3.3
//    centralized detector ported to shared memory.
//
// AsyncWorklist is the scheduling core (flags + priority pool + detector)
// factored out of the engine — into par/async_worklist.h, as a template
// over the chk synchronization shim — so tests/test_async_runtime.cpp and
// tests/test_priority_pool.cpp can hammer the protocol directly, without
// a graph in the loop, and tests/test_chk.cpp can model-check it under
// controlled schedules.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "core/run_options.h"
#include "graph/graph.h"
#include "obs/obs.h"
#include "par/async_worklist.h"

namespace kcore::par {

/// Execution profile of an async run (the AsyncExtras payload).
struct AsyncStats {
  /// Vertex recomputations executed (>= n: every vertex is processed at
  /// least once, re-activations add more). The scheduling policy's whole
  /// job is to shrink this number.
  std::uint64_t relaxations = 0;
  /// Vertices obtained from another worker's lane.
  std::uint64_t steals = 0;
  /// Successful 0->1 flag transitions AFTER the initial seeding — the
  /// activation notifications that actually materialized.
  std::uint64_t re_enqueues = 0;
  /// Quiescence-detector confirmation passes started.
  std::uint64_t detector_passes = 0;
  /// Relaxations resolved by the fast path: no neighbor estimate was
  /// below the vertex's own, so computeIndex cannot lower it and the
  /// counting kernel is skipped entirely.
  std::uint64_t skipped_recomputes = 0;
  /// Deque probes performed while popping/stealing — the priority pool's
  /// scan overhead (== successful pops for lifo, higher for the bucketed
  /// policies and for dry steal sweeps).
  std::uint64_t pop_scans = 0;

  /// Build the stats as a VIEW over an obs metrics snapshot (the
  /// "async.*" counters the engine registers when options.obs.metrics is
  /// on) — the registry is then the single source of truth and this
  /// struct is a projection of it. `seeded` is the initial enqueue count
  /// (n), subtracted to recover re_enqueues.
  [[nodiscard]] static AsyncStats from_metrics(const obs::MetricsSnapshot& m,
                                               std::uint64_t seeded);
};

/// Coreness plus the run profile.
struct AsyncResult {
  std::vector<graph::NodeId> coreness;
  AsyncStats stats;
  unsigned threads_used = 0;
  double setup_ms = 0.0;  // table/worklist reset + seeding
  double run_ms = 0.0;    // the chaotic-relaxation phase
  /// Harvested telemetry; null unless options.obs asked for some.
  std::shared_ptr<const obs::RunTelemetry> telemetry;
};

/// Run the async chaotic-relaxation decomposition. Consumed options:
/// threads (0 = hardware concurrency), sched (pop-order policy — pure
/// performance, coreness is policy-invariant), assignment + seed (initial
/// distribution of vertices over worker lanes — a pure function of the
/// options, never of the schedule), targeted_send (§3.1.2 wake filter,
/// safe under asynchrony because estimates only decrease). mode,
/// max_rounds, num_hosts and comm are round-/simulator-shaped and are
/// ignored (api::validate polices the ones that would silently lie).
///
/// The observer is accepted for signature parity but never invoked: the
/// ProgressObserver contract is per-round, and this runtime has no rounds.
[[nodiscard]] AsyncResult run_bsp_async(
    const graph::Graph& g, const core::RunOptions& options,
    const core::ProgressObserver& observer = {});

/// Amortizable, SHAREABLE state of an async run, for api::Session's
/// prepare-once / run-many (and serve-many-concurrently) contract —
/// everything that is a pure function of (graph, options) and is
/// immutable after prepare:
///  * the per-worker SEED ORDER (the §3.2.2 assignment materialized as
///    one vertex list per lane, so warm runs never re-walk the owner
///    array),
///  * the resolved worker count and scheduling policy.
/// Any number of concurrent runs may read one AsyncPrepared; each run
/// brings its own AsyncRunContext for the mutable tables.
struct AsyncPrepared {
  unsigned workers = 0;
  core::SchedPolicy sched = core::SchedPolicy::kLifo;
  std::vector<std::vector<std::uint32_t>> seeds;
};

/// Per-run mutable state, owned privately by one run at a time:
///  * the shared atomic estimate table (reset to the degrees per run),
///  * the per-vertex pending-change accumulators (sched=delta only),
///  * the worklist (flags + pool + detector), reset in place per run so
///    sequential reuse re-allocates nothing.
struct AsyncRunContext {
  AsyncRunContext(const AsyncPrepared& prepared, graph::NodeId n)
      : est(n),
        worklist(std::make_unique<AsyncWorklist>(n, prepared.workers,
                                                 prepared.sched)) {
    if (prepared.sched == core::SchedPolicy::kDelta) {
      delta = std::vector<std::atomic<std::uint32_t>>(n);
    }
  }

  std::vector<std::atomic<graph::NodeId>> est;
  std::vector<std::atomic<std::uint32_t>> delta;
  std::unique_ptr<AsyncWorklist> worklist;
};

[[nodiscard]] AsyncPrepared prepare_bsp_async(const graph::Graph& g,
                                              const core::RunOptions& options);

/// Execute one run from shared prepared state and a private context.
/// Coreness is bit-identical to the one-shot runner (and to the
/// sequential baseline); the schedule profile in stats is
/// interleaving-dependent as always. result.setup_ms covers only this
/// run's residual setup (table + worklist reset + seeding).
/// `options.sched` and `options.threads` must match the prepared state.
[[nodiscard]] AsyncResult run_bsp_async_prepared(
    const graph::Graph& g, const AsyncPrepared& prepared,
    AsyncRunContext& context, const core::RunOptions& options,
    const core::ProgressObserver& observer = {});

}  // namespace kcore::par
