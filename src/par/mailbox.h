// Double-buffered SPSC mailboxes for barrier-synchronized rounds.
//
// The parallel engine's communication fabric is a workers × workers matrix
// of slots; slot (s, r) carries the messages worker s sends to worker r.
// Each slot holds TWO buffers and the round parity selects which one is
// the write side: in round t senders append to bufs[t & 1] while receivers
// drain what round t-1 wrote into bufs[(t & 1) ^ 1]. Compute-on-A while
// neighbors-enqueue-into-B, with the roles swapping every round.
//
// Why this needs no locks and no atomics: each slot has exactly ONE
// writer (worker s, during its round phase) and ONE reader (worker r,
// during its round phase), and within any single round they touch
// DIFFERENT buffers. The engine's round barrier orders round t's writes
// before round t+1's reads, so the buffer handoff is race-free — a
// single-producer/single-consumer queue whose synchronization is the
// barrier itself. This is deliberately simpler (and faster) than an MPMC
// queue: under bulk-synchronous rounds, per-pair SPSC is all the paper's
// host model needs.
//
// That claim is a PLAIN-ACCESS discipline, not an atomic protocol, so it
// is exactly what the chk layer's vector-clock race checker verifies:
// each buffer carries a Sync::PlainGuard, and write_side/read_side mark
// every access. Under chk::ModelSync a conflicting pair of marks with no
// happens-before edge between them is flagged on ANY explored schedule —
// even one where the racy values come out right (tests/test_chk.cpp runs
// the matrix under a modeled barrier, then breaks the round protocol and
// asserts the race is caught). The default RealSync guard is empty.
//
// Slots are cache-line aligned so two workers appending to adjacent slots
// never false-share.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "chk/sync.h"
#include "util/check.h"

namespace kcore::par {

template <typename Item, typename Sync = chk::RealSync>
class MailboxMatrix {
 public:
  explicit MailboxMatrix(unsigned workers) : workers_(workers) {
    KCORE_CHECK_MSG(workers >= 1, "mailbox matrix needs >= 1 worker");
    slots_.resize(static_cast<std::size_t>(workers) * workers);
  }

  /// Buffer worker `from` appends to in round `round`, addressed to `to`.
  [[nodiscard]] std::vector<Item>& write_side(unsigned from, unsigned to,
                                              std::uint64_t round) {
    Slot& s = slot(from, to);
    s.guards[round & 1].note_write("mb.write_side");
    return s.bufs[round & 1];
  }

  /// Buffer worker `to` drains in round `round`: what `from` wrote in
  /// round - 1. The receiver clears it after draining; by the time the
  /// sender reuses it as a write side (round + 1), the barrier has
  /// ordered the clear before the reuse. Draining mutates the buffer, so
  /// this counts as a WRITE access for the race checker too.
  [[nodiscard]] std::vector<Item>& read_side(unsigned from, unsigned to,
                                             std::uint64_t round) {
    Slot& s = slot(from, to);
    s.guards[(round & 1) ^ 1].note_write("mb.read_side");
    return s.bufs[(round & 1) ^ 1];
  }

  [[nodiscard]] unsigned workers() const noexcept { return workers_; }

 private:
  struct alignas(64) Slot {
    std::vector<Item> bufs[2];
    [[no_unique_address]] typename Sync::PlainGuard guards[2];
  };

  [[nodiscard]] Slot& slot(unsigned from, unsigned to) {
    KCORE_DCHECK(from < workers_ && to < workers_);
    return slots_[static_cast<std::size_t>(from) * workers_ + to];
  }

  unsigned workers_;
  std::vector<Slot> slots_;
};

}  // namespace kcore::par
