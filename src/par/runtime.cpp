#include "par/runtime.h"

#include <algorithm>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "core/assignment.h"
#include "par/engine.h"
#include "util/check.h"
#include "util/clock.h"
#include "util/rng.h"

namespace kcore::par {

namespace {

using Clock = util::SteadyClock;
using util::ms_between;

}  // namespace

OneToManyParPrepared prepare_one_to_many_par(const graph::Graph& g,
                                             const core::RunOptions& options) {
  KCORE_CHECK_MSG(g.num_nodes() > 0, "graph must be non-empty");
  KCORE_CHECK_MSG(options.num_hosts >= 1, "need at least one host");
  OneToManyParPrepared prepared;
  // Same assignment call and host construction as the simulator runner
  // (core/one_to_many.cpp) — this is what makes the par run's traffic
  // bit-identical to sim::Engine in synchronous mode.
  prepared.owner = core::assign_nodes(g.num_nodes(), options.num_hosts,
                                      options.assignment, options.seed);
  prepared.hosts = core::make_one_to_many_hosts(
      g, prepared.owner, options.num_hosts, options.comm);
  return prepared;
}

OneToManyParResult run_one_to_many_par(const graph::Graph& g,
                                       const core::RunOptions& options,
                                       const core::ProgressObserver& observer) {
  if (g.num_nodes() == 0) {
    // The facade rejects empty graphs, but direct callers (and the
    // edge-case tests) get the sensible answer instead of a crash.
    OneToManyParResult result;
    result.traffic.converged = true;
    result.threads_used = resolve_threads(options.threads);
    return result;
  }
  const auto setup_start = Clock::now();
  const auto prepared = prepare_one_to_many_par(g, options);
  const auto setup_stop = Clock::now();
  auto result = run_one_to_many_par_prepared(g, prepared, options, observer);
  result.setup_ms += ms_between(setup_start, setup_stop);
  return result;
}

OneToManyParResult run_one_to_many_par_prepared(
    const graph::Graph& g, const OneToManyParPrepared& prepared,
    const core::RunOptions& options, const core::ProgressObserver& observer) {
  OneToManyParResult result;
  const auto setup_start = Clock::now();

  EngineConfig engine_config;
  engine_config.threads = options.threads;
  engine_config.max_rounds =
      options.max_rounds > 0
          ? options.max_rounds
          : static_cast<std::uint64_t>(g.num_nodes()) * 2 + 64;

  // Telemetry: sized to the engine's CLAMPED worker count (the recorder
  // hands out one context per worker). No sampler for this runtime —
  // host state machines expose no concurrency-safe estimate table.
  const unsigned clamped_workers = std::min<unsigned>(
      resolve_threads(options.threads),
      static_cast<unsigned>(prepared.hosts.size()));
  auto recorder = obs::Recorder::make(clamped_workers, options.obs);
  engine_config.recorder = recorder.get();

  // Copy the pristine hosts: each run starts from the exact post-prepare
  // protocol state, so repeated runs are bit-identical.
  Engine<core::OneToManyHost> engine(prepared.hosts, engine_config);

  std::vector<graph::NodeId> snapshot(g.num_nodes(), 0);
  auto engine_observer = [&](std::uint64_t round,
                             const std::vector<core::OneToManyHost>& hs) {
    if (!observer) return;
    // Runs inside the barrier completion step: every worker is parked, so
    // reading host state here is race-free and the event stream is
    // serialized in round order.
    for (const auto& h : hs) h.snapshot_into(snapshot);
    observer(core::ProgressEvent{round, snapshot,
                                 engine.stats().total_messages});
  };

  const auto run_start = Clock::now();
  const auto traffic = engine.run(engine_observer);
  const auto run_stop = Clock::now();

  static_cast<core::OneToManyResult&>(result) =
      core::harvest_one_to_many_result(engine.hosts(), g.num_nodes());
  result.traffic = traffic;
  result.threads_used = engine.threads_used();
  result.setup_ms = ms_between(setup_start, run_start);
  result.run_ms = ms_between(run_start, run_stop);
  if (recorder) {
    if (recorder->metrics_on()) {
      // Deterministic protocol totals, folded in post-run (the traffic
      // stats are already exact; the registry view just makes them
      // machine-readable alongside the other runtimes' counters).
      obs::Registry& reg = recorder->registry();
      reg.add(reg.counter("par.rounds"), 0, traffic.rounds_executed);
      reg.add(reg.counter("par.messages"), 0, traffic.total_messages);
    }
    result.telemetry =
        std::make_shared<obs::RunTelemetry>(recorder->harvest());
  }
  return result;
}

}  // namespace kcore::par
