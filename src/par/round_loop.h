// Fork-join round loop — the thread-pool backbone of kcore::par.
//
// Every parallel runtime in this subsystem (the one-to-many host engine in
// par/engine.h, the vertex-centric BSP runtime in par/bsp_par.cpp) has the
// same skeleton: a fixed pool of worker threads executes synchronized
// rounds, with a barrier between consecutive rounds and a single-threaded
// completion step at each barrier (aggregate counters, decide termination,
// deliver progress events). run_round_loop() is that skeleton, factored
// out once so the runtimes only supply the per-round work.
//
// Semantics:
//  * `workers` threads are spawned once and live for the whole loop (a
//    fixed pool, not per-round thread churn); worker 0 runs on the calling
//    thread.
//  * In round r (1-based) every worker runs body(worker, r) exactly once.
//  * When all workers have finished round r, completion(r) runs exactly
//    once, on an unspecified worker thread, while every other worker is
//    parked at the barrier — it therefore has exclusive access to all
//    shared state, no locks needed.
//  * completion returning false ends the loop; the decision is visible to
//    every worker through the barrier's release ordering.
//  * std::barrier guarantees completion(r) happens-before any body(*, r+1)
//    and body(*, r) happens-before completion(r): plain (non-atomic)
//    shared state handed from the round phase to the completion phase and
//    back is race-free.
//
// Exception safety: an exception thrown by body or completion is captured,
// the loop winds down at the next barrier (remaining workers still arrive,
// so nobody deadlocks), and the first captured exception is rethrown on
// the calling thread after all workers have joined.
#pragma once

#include <cstdint>
#include <functional>

namespace kcore::obs {
class Recorder;
}  // namespace kcore::obs

namespace kcore::par {

/// Per-round worker job: (worker index in [0, workers), 1-based round).
using RoundBody = std::function<void(unsigned worker, std::uint64_t round)>;

/// Barrier completion step: runs single-threaded after each round; return
/// true to run another round, false to stop.
using RoundCompletion = std::function<bool(std::uint64_t round)>;

/// Run the loop. `workers` must be >= 1; workers == 1 degenerates to a
/// plain sequential loop on the calling thread (no threads, no barrier),
/// so single-threaded runs carry zero synchronization overhead.
///
/// `recorder` (optional, obs/obs.h): when non-null and tracing is on,
/// every body(w, r) is wrapped in a per-worker "round" trace span and
/// every completion(r) in a "round.completion" span. The completion span
/// is recorded into worker 0's ring from whichever thread runs the
/// barrier phase — race-free, because the barrier sequences it against
/// worker 0's own body spans. Null recorder adds zero overhead.
void run_round_loop(unsigned workers, const RoundBody& body,
                    const RoundCompletion& completion,
                    obs::Recorder* recorder = nullptr);

}  // namespace kcore::par
