#include "par/round_loop.h"

#include <barrier>
#include <cstdint>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/obs.h"
#include "util/check.h"

namespace kcore::par {

namespace {

/// Shared control block: the stop flag is plain (the barrier's phase
/// ordering publishes it), the error slot is mutex-guarded because any
/// worker may fault at any point within a round.
struct LoopState {
  const RoundBody* body = nullptr;
  const RoundCompletion* completion = nullptr;
  bool stop = false;
  std::mutex error_mutex;
  std::exception_ptr first_error;

  void capture_error() noexcept {
    const std::lock_guard<std::mutex> lock(error_mutex);
    if (!first_error) first_error = std::current_exception();
  }

  [[nodiscard]] bool failed() noexcept {
    const std::lock_guard<std::mutex> lock(error_mutex);
    return static_cast<bool>(first_error);
  }
};

}  // namespace

void run_round_loop(unsigned workers, const RoundBody& body,
                    const RoundCompletion& completion,
                    obs::Recorder* recorder) {
  KCORE_CHECK_MSG(workers >= 1, "round loop needs at least one worker");
  KCORE_CHECK_MSG(body != nullptr && completion != nullptr,
                  "round loop needs a body and a completion step");

  // Tracing decorator: per-worker "round" spans plus a worker-0
  // "round.completion" span per barrier phase (see round_loop.h for why
  // that cross-thread record is race-free), then recurse without the
  // recorder so the loop logic below stays single-copy.
  if (obs::kEnabled && recorder != nullptr) {
    const RoundBody traced_body = [&recorder, &body](unsigned w,
                                                     std::uint64_t round) {
      OBS_SPAN(recorder->worker(w), "round");
      body(w, round);
    };
    const RoundCompletion traced_completion =
        [&recorder, &completion](std::uint64_t round) {
          OBS_SPAN(recorder->worker(0), "round.completion");
          return completion(round);
        };
    run_round_loop(workers, traced_body, traced_completion, nullptr);
    return;
  }

  if (workers == 1) {
    for (std::uint64_t round = 1;; ++round) {
      body(0, round);
      if (!completion(round)) return;
    }
  }

  LoopState state;
  state.body = &body;
  state.completion = &completion;

  std::uint64_t round_counter = 0;  // owned by the completion phase
  auto on_phase_complete = [&state, &round_counter]() noexcept {
    if (state.stop) return;  // winding down after a failure
    ++round_counter;
    if (state.failed()) {
      state.stop = true;
      return;
    }
    try {
      if (!(*state.completion)(round_counter)) state.stop = true;
    } catch (...) {
      state.capture_error();
      state.stop = true;
    }
  };
  std::barrier barrier(static_cast<std::ptrdiff_t>(workers),
                       on_phase_complete);

  auto worker_loop = [&state, &barrier](unsigned worker) {
    for (std::uint64_t round = 1;; ++round) {
      try {
        (*state.body)(worker, round);
      } catch (...) {
        state.capture_error();
      }
      barrier.arrive_and_wait();
      // `stop` was written by the completion step of this very phase;
      // the barrier sequences that write before this read.
      if (state.stop) return;
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(workers - 1);
  for (unsigned w = 1; w < workers; ++w) {
    pool.emplace_back(worker_loop, w);
  }
  worker_loop(0);
  for (auto& thread : pool) thread.join();

  if (state.first_error) std::rethrow_exception(state.first_error);
}

}  // namespace kcore::par
