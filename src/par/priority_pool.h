// Concurrent bucketed priority pool — the scheduling-policy backbone of
// the async chaotic-relaxation engine (par/async_engine.h).
//
// A MultiQueue-style relaxed priority pool: W worker lanes × B priority
// buckets, each bucket an independent Chase–Lev deque (par/steal_deque.h).
// The owner of a lane pushes into the bucket chosen by the caller's
// priority metric and pops its own lane in bucket-priority order (LIFO
// within a bucket — freshly woken work is hot in cache); a dry owner
// steals bucket-major across all other lanes (highest-priority bucket of
// ANY victim before lower buckets anywhere), so thieves drain the
// globally most urgent work first.
//
// Priorities are RELAXED, not exact: an item keeps the bucket it was
// pushed with even if its priority metric moves afterwards, and
// concurrent pops may disagree transiently about the best bucket. That is
// the MultiQueue trade — the §4 convergence argument of the paper holds
// for any schedule, so staleness costs at most extra relaxations, never
// correctness. Exactly-once hand-off is inherited per bucket from the
// Chase–Lev deque.
//
// Occupancy hints. A full dry sweep probes W×B deques, and every probe of
// an empty deque still pays the Chase–Lev seq_cst fence. Each lane keeps
// an atomic bitmap of possibly-non-empty buckets (hence B <= 64):
//  * the OWNER sets a bucket's bit before pushing into it, and clears it
//    only after one of its own pops finds that bucket empty — since only
//    the owner adds items, the bucket stays empty until its next push
//    re-sets the bit, so a set bitmap is always a SUPERSET of occupancy;
//  * THIEVES read the bitmap as a probe filter and never write it. A
//    stale set bit costs one wasted probe until the owner's next dry
//    scan; a clear bit is a guarantee, so no item can be overlooked
//    forever (the no-lost-work property the quiescence detector needs).
//
// Both claims — exactly-once hand-off and the superset invariant — are
// model-checked under controlled schedules in tests/test_chk.cpp via the
// Sync parameter (default: the zero-overhead chk::RealSync passthrough).
#pragma once

#include <atomic>
#include <bit>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <vector>

#include "chk/sync.h"
#include "par/steal_deque.h"
#include "util/check.h"

namespace kcore::par {

/// Which bucket index holds the MOST urgent work: kAscending pops bucket
/// 0 first (e.g. lowest-estimate-first peeling order), kDescending pops
/// bucket B-1 first (e.g. largest-accumulated-delta first).
enum class PopOrder {
  kAscending,
  kDescending,
};

template <typename T, typename Sync = chk::RealSync>
class PriorityPool {
  static_assert(std::is_trivially_copyable_v<T>,
                "bucket slots are atomic<T>: T must be trivially "
                "copyable");

 public:
  /// Hard cap on buckets — one occupancy-bitmap bit per bucket.
  static constexpr std::uint32_t kMaxBuckets = 64;

  PriorityPool(unsigned workers, std::uint32_t buckets, PopOrder order)
      : buckets_(buckets), order_(order) {
    KCORE_CHECK_MSG(workers >= 1, "priority pool needs at least one lane");
    KCORE_CHECK_MSG(buckets >= 1 && buckets <= kMaxBuckets,
                    "buckets must be in [1, " << kMaxBuckets << "], got "
                                              << buckets);
    lanes_.reserve(workers);
    for (unsigned w = 0; w < workers; ++w) {
      lanes_.push_back(std::make_unique<Lane>(buckets, workers));
    }
  }

  [[nodiscard]] unsigned workers() const noexcept {
    return static_cast<unsigned>(lanes_.size());
  }
  [[nodiscard]] std::uint32_t buckets() const noexcept { return buckets_; }
  [[nodiscard]] PopOrder order() const noexcept { return order_; }

  /// Lane owner only: push `value` with priority `bucket` into the
  /// caller's own lane. Priorities at or past the pool width share the
  /// last bucket (the one clamp — callers pass raw priorities). The
  /// occupancy bit is set first so the bitmap superset invariant never
  /// has a window.
  void push(T value, std::uint32_t bucket, unsigned worker) {
    if (bucket >= buckets_) bucket = buckets_ - 1;
    Lane& lane = *lanes_[worker];
    const std::uint64_t bit = 1ULL << bucket;
    // Single writer per lane bitmap: plain load + store. The hint is a
    // probe FILTER, not a publication channel — a thief that sees the
    // bit before the push below lands just probes an empty deque and
    // moves on; actual element hand-off is synchronized entirely by the
    // Chase–Lev orderings inside the deque.
    const std::uint64_t hint =
        lane.hint.load(std::memory_order_relaxed, "pp.push.read_hint");
    if ((hint & bit) == 0) {
      lane.hint.store(hint | bit, std::memory_order_release,
                      "pp.push.store_hint");
    }
    lane.deque(bucket).push(value);
  }

  /// Lane owner only: pop the caller's own most-urgent work. `probes`
  /// counts deque probe operations (the policy's scan overhead metric).
  [[nodiscard]] bool pop_own(T& out, unsigned worker, std::uint64_t& probes) {
    Lane& lane = *lanes_[worker];
    std::uint64_t hint =
        lane.hint.load(std::memory_order_relaxed, "pp.pop.read_hint");
    while (hint != 0) {
      const std::uint32_t bucket = best_bucket(hint);
      ++probes;
      if (lane.deque(bucket).pop(out)) return true;
      // Empty from the owner's side: nothing can reappear in this bucket
      // until our own next push, so the bit can be retired.
      const std::uint64_t bit = 1ULL << bucket;
      hint &= ~bit;
      lane.hint.store(hint, std::memory_order_relaxed, "pp.pop.store_hint");
    }
    return false;
  }

  /// Any worker: one bucket-major sweep over the other lanes — the
  /// most-urgent bucket of ANY victim is drained before less urgent
  /// buckets anywhere. Each victim's hint bitmap is snapshotted ONCE per
  /// sweep (into the caller's own lane scratch — no allocation, no
  /// re-reads per bucket); the snapshot may be stale in either direction,
  /// which the relaxed-priority contract already tolerates. False when
  /// the sweep found nothing (NOT termination; the caller consults the
  /// quiescence detector).
  [[nodiscard]] bool steal(T& out, unsigned worker, std::uint64_t& probes) {
    const auto n = static_cast<unsigned>(lanes_.size());
    std::uint64_t* snapshot = lanes_[worker]->steal_snapshot.get();
    std::uint64_t any = 0;
    for (unsigned offset = 1; offset < n; ++offset) {
      const unsigned victim = (worker + offset) % n;
      snapshot[offset] = lanes_[victim]->hint.load(std::memory_order_acquire,
                                                   "pp.steal.read_hint");
      any |= snapshot[offset];
    }
    for (std::uint32_t step = 0; step < buckets_ && any != 0; ++step) {
      const std::uint32_t bucket =
          order_ == PopOrder::kAscending ? step : buckets_ - 1 - step;
      const std::uint64_t bit = 1ULL << bucket;
      if ((any & bit) == 0) continue;
      for (unsigned offset = 1; offset < n; ++offset) {
        if ((snapshot[offset] & bit) == 0) continue;
        const unsigned victim = (worker + offset) % n;
        ++probes;
        if (lanes_[victim]->deque(bucket).steal(out)) return true;
      }
    }
    return false;
  }

  /// Single-threaded reset between runs: forget all content, keep every
  /// ring allocation (warm re-runs never re-allocate). Must not race with
  /// push/pop/steal.
  void clear() noexcept(!Sync::kInstrumented) {
    for (auto& lane : lanes_) {
      lane->hint.store(0, std::memory_order_relaxed, "pp.clear.store_hint");
      for (std::uint32_t b = 0; b < buckets_; ++b) lane->deque(b).clear();
    }
  }

  /// Tests/monitoring only (single-threaded or owner-side use): the
  /// lane's current hint bitmap and a racy per-bucket size estimate, for
  /// checking the superset invariant at quiescent points.
  [[nodiscard]] std::uint64_t hint_bitmap(unsigned worker) const {
    return lanes_[worker]->hint.load(std::memory_order_relaxed,
                                     "pp.monitor.read_hint");
  }
  [[nodiscard]] std::int64_t bucket_size_estimate(unsigned worker,
                                                  std::uint32_t bucket) const {
    return lanes_[worker]->deque(bucket).size_estimate();
  }

  /// Racy whole-pool size estimate: sums the per-deque estimates of
  /// every hinted bucket (relaxed loads only — safe concurrently with
  /// the workers, but the value is a snapshot of a moving target). Used
  /// by the obs sampler for worklist-depth time series; never a
  /// correctness signal.
  [[nodiscard]] std::uint64_t size_estimate() const {
    std::uint64_t total = 0;
    for (unsigned w = 0; w < lanes_.size(); ++w) {
      std::uint64_t hint = hint_bitmap(w);
      while (hint != 0) {
        const auto bucket =
            static_cast<std::uint32_t>(std::countr_zero(hint));
        hint &= hint - 1;
        const std::int64_t size = bucket_size_estimate(w, bucket);
        if (size > 0) total += static_cast<std::uint64_t>(size);
      }
    }
    return total;
  }

 private:
  struct alignas(64) Lane {
    Lane(std::uint32_t buckets, unsigned workers)
        : deques(new StealDeque<T, Sync>[buckets]),
          steal_snapshot(new std::uint64_t[workers]) {}
    [[nodiscard]] StealDeque<T, Sync>& deque(std::uint32_t bucket) {
      return deques[bucket];
    }
    typename Sync::template Atomic<std::uint64_t> hint{0};
    std::unique_ptr<StealDeque<T, Sync>[]> deques;
    /// Owner-only scratch for steal()'s once-per-sweep hint snapshot.
    std::unique_ptr<std::uint64_t[]> steal_snapshot;
  };

  [[nodiscard]] std::uint32_t best_bucket(std::uint64_t hint) const noexcept {
    // hint != 0. Most urgent set bit under the pool's order.
    return order_ == PopOrder::kAscending
               ? static_cast<std::uint32_t>(std::countr_zero(hint))
               : static_cast<std::uint32_t>(63 - std::countl_zero(hint));
  }

  std::uint32_t buckets_;
  PopOrder order_;
  std::vector<std::unique_ptr<Lane>> lanes_;
};

}  // namespace kcore::par
