// par::Engine — sim::Engine's host protocol contract on real threads.
//
// The simulator (sim/engine.h) proves the paper's protocols correct under
// round-based delivery; this engine executes the SAME Host state machines
// (anything satisfying sim::SimHost — OneToManyHost in particular) with a
// fixed pool of worker threads, which is what the paper's "the one-to-many
// model maps directly onto a cluster of computational processes" claim
// actually requires. The execution model is the synchronous one the §4
// proofs use:
//
//  * hosts are block-partitioned across workers (host h belongs to worker
//    h * workers / num_hosts — contiguous ranges keep a worker's hosts
//    adjacent in memory);
//  * in round t each worker drains its incoming mailboxes (messages sent
//    in round t-1), then runs on_round for every owned host, routing sends
//    into the double-buffered SPSC mailbox matrix (par/mailbox.h);
//  * a barrier ends the round; the completion step aggregates traffic
//    counters, streams the observer event, and detects quiescence exactly
//    like sim::Engine: a round with zero sends means nothing is in flight
//    (everything sent in t-1 was drained at the start of t), so the run
//    has converged — the round-barrier rendition of the §3.3 centralized
//    termination detector ("declare termination one round after every
//    host has reported quiet").
//
// Determinism: delivery is a pure function of the round structure, and the
// paper's hosts are monotone estimate mergers, so coreness, rounds,
// message counts and per-host traffic are all INDEPENDENT of the worker
// count — run(threads=1) and run(threads=16) produce bit-identical
// TrafficStats, equal to sim::Engine under DeliveryMode::kSynchronous.
// tests/test_par_runtime.cpp pins that equality.
//
// Observer delivery is thread-safe: events fire inside the barrier
// completion step (single-threaded by construction, serialized by a mutex
// for belt-and-braces), in strictly increasing round order, with a
// happens-before edge between consecutive events.
#pragma once

#include <cstdint>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "par/mailbox.h"
#include "par/round_loop.h"
#include "sim/engine.h"
#include "util/check.h"

namespace kcore::par {

/// Resolve a requested thread count: 0 means "one worker per available
/// hardware thread" (never less than 1 — hardware_concurrency may report
/// 0 on exotic platforms).
[[nodiscard]] inline unsigned resolve_threads(unsigned requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

struct EngineConfig {
  /// Worker threads; 0 = hardware concurrency. Clamped to the host count
  /// (a worker with no hosts would only burn a core on the barrier).
  unsigned threads = 0;
  /// Hard round cap; 0 picks the simulator's default (4N + 64).
  std::uint64_t max_rounds = 0;
  /// Optional telemetry recorder (obs/obs.h) for per-round trace spans;
  /// borrowed, must outlive run(). Null: no tracing.
  obs::Recorder* recorder = nullptr;
};

// Unconstrained template parameter to match the friend forward
// declaration in sim/engine.h; the concept is enforced just inside.
template <typename Host>
class Engine {
  static_assert(sim::SimHost<Host>,
                "par::Engine drives the same Host contract as sim::Engine");

 public:
  using Message = typename Host::Message;

  Engine(std::vector<Host> hosts, const EngineConfig& config)
      : hosts_(std::move(hosts)), config_(config) {
    KCORE_CHECK_MSG(!hosts_.empty(), "engine needs at least one host");
    workers_ = resolve_threads(config.threads);
    if (workers_ > hosts_.size()) {
      workers_ = static_cast<unsigned>(hosts_.size());
    }
    stats_.sent_by_host.assign(hosts_.size(), 0);
    worker_of_.resize(hosts_.size());
    host_begin_.resize(workers_ + 1);
    const std::size_t n = hosts_.size();
    for (unsigned w = 0; w <= workers_; ++w) {
      host_begin_[w] = static_cast<sim::HostId>(n * w / workers_);
    }
    for (unsigned w = 0; w < workers_; ++w) {
      for (sim::HostId h = host_begin_[w]; h < host_begin_[w + 1]; ++h) {
        worker_of_[h] = w;
      }
    }
  }

  /// Run to quiescence (or the round cap). The observer has the same
  /// shape as sim::Engine's: void(round, const std::vector<Host>&),
  /// invoked after every executed round from the barrier completion step.
  template <typename Observer>
  sim::TrafficStats run(Observer&& observer) {
    const std::uint64_t limit =
        config_.max_rounds > 0
            ? config_.max_rounds
            : 4 * static_cast<std::uint64_t>(hosts_.size()) + 64;
    const auto n = static_cast<sim::HostId>(hosts_.size());

    MailboxMatrix<Envelope> mail(workers_);
    // Per-worker send tallies, cache-line padded; summed single-threaded
    // at the barrier (cheaper and tidier than a contended atomic).
    std::vector<PaddedCount> sends(workers_);

    auto body = [&](unsigned w, std::uint64_t round) {
      // Drain: everything any worker sent to us in round - 1.
      for (unsigned s = 0; s < workers_; ++s) {
        auto& box = mail.read_side(s, w, round);
        for (Envelope& env : box) {
          hosts_[env.to].on_message(env.from, env.payload);
        }
        box.clear();
      }
      // Compute + enqueue into the write side for round + 1.
      std::uint64_t sent = 0;
      auto& outbox = outboxes_[w];
      for (sim::HostId h = host_begin_[w]; h < host_begin_[w + 1]; ++h) {
        outbox.clear();
        sim::Context<Message> ctx(h, round, n, &outbox);
        hosts_[h].on_round(ctx);
        sent += outbox.size();
        stats_.sent_by_host[h] += outbox.size();
        for (auto& out : outbox) {
          mail.write_side(w, worker_of_[out.to], round)
              .push_back({out.to, h, std::move(out.payload)});
        }
      }
      sends[w].value = sent;
    };

    auto completion = [&](std::uint64_t round) -> bool {
      // All workers are parked at the barrier: exclusive access to
      // hosts_, stats_ and the tallies, no locks required.
      std::uint64_t sends_this_round = 0;
      for (auto& tally : sends) {
        sends_this_round += tally.value;
        tally.value = 0;
      }
      ++stats_.rounds_executed;
      stats_.total_messages += sends_this_round;
      if (sends_this_round > 0) ++stats_.execution_time;
      {
        const std::lock_guard<std::mutex> lock(observer_mutex_);
        observer(round, hosts_);
      }
      if (sends_this_round == 0) {
        stats_.converged = true;
        return false;
      }
      return round < limit;
    };

    outboxes_.assign(workers_, {});
    run_round_loop(workers_, body, completion, config_.recorder);
    outboxes_.clear();
    return stats_;
  }

  sim::TrafficStats run() {
    return run([](std::uint64_t, const std::vector<Host>&) {});
  }

  [[nodiscard]] const std::vector<Host>& hosts() const noexcept {
    return hosts_;
  }
  [[nodiscard]] std::vector<Host>& hosts() noexcept { return hosts_; }
  [[nodiscard]] const sim::TrafficStats& stats() const noexcept {
    return stats_;
  }
  /// Effective worker count after clamping (what ParExtras reports).
  [[nodiscard]] unsigned threads_used() const noexcept { return workers_; }

 private:
  struct Envelope {
    sim::HostId to;
    sim::HostId from;
    Message payload;
  };
  struct alignas(64) PaddedCount {
    std::uint64_t value = 0;
  };

  std::vector<Host> hosts_;
  EngineConfig config_;
  unsigned workers_ = 1;
  std::vector<unsigned> worker_of_;       // host -> owning worker
  std::vector<sim::HostId> host_begin_;   // worker -> first owned host
  // Per-worker outboxes reused across rounds (avoids per-round allocs);
  // indexed by worker, so no two threads ever share one.
  std::vector<std::vector<typename sim::Context<Message>::Outgoing>>
      outboxes_;
  std::mutex observer_mutex_;
  sim::TrafficStats stats_;
};

}  // namespace kcore::par
