// run_bsp_par — the Pregel port on shared memory (see par/runtime.h).
//
// Instead of materializing messages, workers communicate through a shared
// atomic coreness-estimate table with two epochs: every superstep reads
// neighbor estimates from the PREV epoch and publishes recomputed values
// into the NEXT epoch; the barrier completion step swaps the epochs. That
// is Pregel's superstep semantics with the MIN-combiner folded away: a
// vertex reading est_prev[v] sees exactly the value the combined message
// from v would have carried. Changed vertices activate their neighbors
// through a shared atomic dirty-flag table (the MPMC side of the design —
// many writers may flag the same vertex; a relaxed store of 1 is a
// natural idempotent merge).
//
// All table traffic uses relaxed atomics: the barrier between supersteps
// already provides the happens-before ordering; the atomics exist so the
// table is also safely sampled live (observers, future async monitors)
// and so ThreadSanitizer can vouch for the whole runtime.
#include <atomic>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "core/assignment.h"
#include "core/compute_index.h"
#include "par/engine.h"
#include "par/round_loop.h"
#include "par/runtime.h"
#include "util/check.h"
#include "util/clock.h"
#include "util/rng.h"

namespace kcore::par {

namespace {

struct alignas(64) WorkerTally {
  std::uint64_t changed = 0;
  std::uint64_t emitted = 0;
  std::uint64_t cross_worker = 0;
};

}  // namespace

BspParPrepared prepare_bsp_par(const graph::Graph& g,
                               const core::RunOptions& options) {
  const graph::NodeId n = g.num_nodes();
  KCORE_CHECK_MSG(n > 0, "graph must be non-empty");
  BspParPrepared prepared;
  prepared.workers = resolve_threads(options.threads);
  if (prepared.workers > n) prepared.workers = n;

  // Vertex -> worker shard via the §3.2.2 policies; the kRandom policy's
  // seed is a pure stream split of the root seed, so re-running with a
  // different thread count never silently reshuffles unrelated streams.
  prepared.owner = core::assign_nodes(n, prepared.workers, options.assignment,
                                      util::split_stream(options.seed, 0));
  prepared.owned.assign(prepared.workers, {});
  for (graph::NodeId u = 0; u < n; ++u) {
    prepared.owned[prepared.owner[u]].push_back(u);
  }
  return prepared;
}

BspParResult run_bsp_par(const graph::Graph& g,
                         const core::RunOptions& options,
                         const core::ProgressObserver& observer) {
  const graph::NodeId n = g.num_nodes();
  if (n == 0) {
    BspParResult result;
    result.stats.converged = true;
    result.threads_used = resolve_threads(options.threads);
    return result;
  }
  const auto setup_start = util::SteadyClock::now();
  const auto prepared = prepare_bsp_par(g, options);
  BspParRunContext context(n);
  const auto setup_stop = util::SteadyClock::now();
  auto result = run_bsp_par_prepared(g, prepared, context, options, observer);
  result.setup_ms += util::ms_between(setup_start, setup_stop);
  return result;
}

BspParResult run_bsp_par_prepared(const graph::Graph& g,
                                  const BspParPrepared& prepared,
                                  BspParRunContext& context,
                                  const core::RunOptions& options,
                                  const core::ProgressObserver& observer) {
  BspParResult result;
  const graph::NodeId n = g.num_nodes();
  KCORE_CHECK_MSG(prepared.owner.size() == n,
                  "prepared state does not match this graph");
  KCORE_CHECK_MSG(context.est_a.size() == n,
                  "run context does not match this graph");
  const unsigned workers = prepared.workers;
  result.threads_used = workers;
  const auto setup_start = util::SteadyClock::now();

  const auto& owner = prepared.owner;
  const auto& owned = prepared.owned;

  // Reset the context tables to the run's initial state: estimates at
  // the degrees (Algorithm 1's starting estimate), every vertex dirty.
  std::vector<std::atomic<graph::NodeId>>& est_a = context.est_a;
  std::vector<std::atomic<graph::NodeId>>& est_b = context.est_b;
  for (graph::NodeId u = 0; u < n; ++u) {
    est_a[u].store(g.degree(u), std::memory_order_relaxed);
  }
  auto* est_prev = &est_a;
  auto* est_next = &est_b;

  // Dirty flags: cur is consumed by owners this superstep, next
  // accumulates activations for the following one.
  std::vector<std::atomic<std::uint8_t>>& act_a = context.act_a;
  std::vector<std::atomic<std::uint8_t>>& act_b = context.act_b;
  for (graph::NodeId u = 0; u < n; ++u) {
    act_a[u].store(1, std::memory_order_relaxed);
    act_b[u].store(0, std::memory_order_relaxed);
  }
  auto* act_cur = &act_a;
  auto* act_next = &act_b;

  const std::uint64_t limit =
      options.max_rounds > 0 ? options.max_rounds
                             : static_cast<std::uint64_t>(n) * 2 + 64;
  const bool targeted = options.targeted_send;

  // Telemetry (obs/obs.h): per-worker counters + superstep latency
  // histogram when metrics are on; per-round trace spans come from
  // run_round_loop's decorator. The sampler reads the tables through the
  // atomic `live` view published by the completion step below — the
  // epoch POINTERS are plain and swap at the barrier, so the sampler
  // must never chase them directly.
  auto recorder = obs::Recorder::make(workers, options.obs);
  obs::Counter c_relaxed;
  obs::Counter c_emitted;
  obs::Counter c_cross;
  obs::HistogramId h_superstep_ns;
  if (recorder && recorder->metrics_on()) {
    obs::Registry& reg = recorder->registry();
    c_relaxed = reg.counter("bsp.changed");
    c_emitted = reg.counter("bsp.emitted");
    c_cross = reg.counter("bsp.cross_worker");
    h_superstep_ns = reg.histogram("bsp.superstep_ns");
  }
  struct LiveView {
    std::atomic<const std::vector<std::atomic<graph::NodeId>>*> est{nullptr};
    std::atomic<const std::vector<std::atomic<std::uint8_t>>*> act{nullptr};
    std::atomic<std::uint64_t> round{0};
  };
  LiveView live;
  live.est.store(est_prev, std::memory_order_release);
  live.act.store(act_cur, std::memory_order_release);

  std::vector<WorkerTally> tallies(workers);
  // Cache-line-aligned like WorkerTally: the scratch's epoch counter is
  // written on every relaxation, so adjacent workers must not share a
  // line.
  struct alignas(64) WorkerScratch {
    core::IndexScratch index;
  };
  std::vector<WorkerScratch> scratch(workers);

  auto body = [&](unsigned w, std::uint64_t /*round*/) {
    obs::WorkerContext* const octx = recorder ? recorder->worker(w) : nullptr;
    OBS_SPAN(octx, "superstep", h_superstep_ns);
    auto& prev = *est_prev;
    auto& next = *est_next;
    auto& cur_flags = *act_cur;
    auto& next_flags = *act_next;
    auto& my = scratch[w];
    WorkerTally tally;
    for (const graph::NodeId u : owned[w]) {
      const graph::NodeId k = prev[u].load(std::memory_order_relaxed);
      if (cur_flags[u].load(std::memory_order_relaxed) == 0) {
        next[u].store(k, std::memory_order_relaxed);
        continue;
      }
      cur_flags[u].store(0, std::memory_order_relaxed);
      const auto nbrs = g.neighbors(u);
      // Skip-scan + allocation-free streamed count over the prev epoch,
      // shared with bsp-async (core::IndexScratch::refine).
      // Deterministic: the skip writes the same `refined` the kernel
      // would have.
      bool fast_path = false;
      const graph::NodeId refined = my.index.refine(
          nbrs.size(), k,
          [&](std::size_t i) {
            return prev[nbrs[i]].load(std::memory_order_relaxed);
          },
          fast_path);
      next[u].store(refined, std::memory_order_relaxed);
      if (refined < k) {
        ++tally.changed;
        for (const graph::NodeId v : g.neighbors(u)) {
          // §3.1.2 targeted send: an estimate >= the neighbor's own
          // current value cannot lower its computeIndex — skip the wake.
          if (targeted &&
              prev[v].load(std::memory_order_relaxed) <= refined) {
            continue;
          }
          ++tally.emitted;
          if (owner[v] != w) ++tally.cross_worker;
          next_flags[v].store(1, std::memory_order_relaxed);
        }
      }
    }
    if (obs::kEnabled && octx != nullptr && octx->metrics()) {
      octx->add(c_relaxed, tally.changed);
      octx->add(c_emitted, tally.emitted);
      octx->add(c_cross, tally.cross_worker);
    }
    tallies[w] = tally;
  };

  std::vector<graph::NodeId> snapshot;
  auto completion = [&](std::uint64_t round) -> bool {
    // Single-threaded: all workers are parked at the barrier.
    std::uint64_t changed = 0;
    for (auto& tally : tallies) {
      changed += tally.changed;
      result.stats.messages_emitted += tally.emitted;
      result.stats.messages_cross_worker += tally.cross_worker;
      tally = WorkerTally{};
    }
    // Shared-table deliveries are combined by construction.
    result.stats.messages_delivered = result.stats.messages_emitted;
    result.stats.supersteps = round;
    if (observer) {
      snapshot.resize(n);
      for (graph::NodeId u = 0; u < n; ++u) {
        snapshot[u] = (*est_next)[u].load(std::memory_order_relaxed);
      }
      observer(core::ProgressEvent{round, snapshot,
                                   result.stats.messages_delivered});
    }
    std::swap(est_prev, est_next);
    std::swap(act_cur, act_next);
    // Publish the freshest epoch for the sampler (release pairs with its
    // acquire; the tables themselves are atomic, so sampling mid-round
    // is safe — just a snapshot of a moving target).
    live.est.store(est_prev, std::memory_order_release);
    live.act.store(act_cur, std::memory_order_release);
    live.round.store(round, std::memory_order_release);
    if (changed == 0) {
      result.stats.converged = true;
      return false;
    }
    return round < limit;
  };

  if (recorder) {
    recorder->start_sampler([&live, n](obs::Sample& s) {
      const auto* est = live.est.load(std::memory_order_acquire);
      const auto* act = live.act.load(std::memory_order_acquire);
      s.round = live.round.load(std::memory_order_acquire);
      double sum = 0.0;
      for (graph::NodeId u = 0; u < n; ++u) {
        sum += static_cast<double>((*est)[u].load(std::memory_order_relaxed));
      }
      s.sum_estimates = sum;
      std::uint64_t depth = 0;
      for (graph::NodeId u = 0; u < n; ++u) {
        depth += (*act)[u].load(std::memory_order_relaxed) != 0 ? 1 : 0;
      }
      s.worklist_depth = depth;  // dirty vertices awaiting recomputation
    });
  }

  const auto run_start = util::SteadyClock::now();
  run_round_loop(workers, body, completion, recorder.get());
  const auto run_stop = util::SteadyClock::now();
  if (recorder) recorder->stop_sampler();
  result.setup_ms = util::ms_between(setup_start, run_start);
  result.run_ms =
      util::ms_between(run_start, run_stop);

  if (recorder) {
    result.telemetry =
        std::make_shared<obs::RunTelemetry>(recorder->harvest());
  }

  // After the final swap the freshest epoch is est_prev.
  result.coreness.resize(n);
  for (graph::NodeId u = 0; u < n; ++u) {
    result.coreness[u] = (*est_prev)[u].load(std::memory_order_relaxed);
  }
  return result;
}

}  // namespace kcore::par
