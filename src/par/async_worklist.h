// The async runtime's scheduling core — per-item in-queue flags, the
// bucketed priority pool of per-worker steal deques, and the shared
// quiescence detector — factored out of par/async_engine.{h,cpp} as a
// template over the chk synchronization shim (chk/sync.h).
//
// Production code uses the `AsyncWorklist` alias (RealSync passthrough —
// bit-identical to the pre-template implementation); the model checker
// instantiates BasicAsyncWorklist<chk::ModelSync> and drives the
// in-queue-flag re-enqueue protocol under controlled schedules, including
// the seeded memory-order mutants of tests/test_chk_mutants.cpp (weaken
// the schedule()/begin() exchanges and the lost-wakeup guarantee becomes
// a reproducible failure instead of a comment).
//
// The protocol (see the block comment in par/async_engine.h for the
// engine-level picture):
//  * schedule() enqueues only on the flag's 0->1 exchange — a vertex sits
//    in at most one bucket, and every enqueue is matched by exactly one
//    acquire()+finish();
//  * begin() clears the flag — also with an exchange, so every flag write
//    is an RMW and the release sequence never breaks — BEFORE the caller
//    reads the item's inputs. An input write that lands after the clear
//    re-flags the item; one that landed before is visible to the read,
//    because the clearing exchange synchronizes with every earlier
//    schedule()'s flag RMW. Either way no wakeup is lost;
//  * the quiescence detector counts outstanding work: add() BEFORE the
//    item becomes stealable (push), finish() AFTER it is fully processed
//    including the wakes it issued — so a confirmed zero is true global
//    quiescence, never a transient dip.
#pragma once

#include <algorithm>
#include <atomic>
#include <bit>
#include <cstdint>
#include <vector>

#include "chk/sync.h"
#include "core/run_options.h"
#include "core/termination.h"
#include "par/priority_pool.h"
#include "util/check.h"

namespace kcore::par {

/// The scheduling core: per-item in-queue flags, the bucketed priority
/// pool of per-worker steal deques, and the shared quiescence detector.
/// Items are dense ids in [0, size).
///
/// Thread contract: worker w is the only caller of acquire(w) and the only
/// owner of lane w; schedule(item, w, bucket) may be called by any worker
/// (it pushes into the CALLER's lane, which it owns). seed() and reset()
/// are single-threaded, before the workers start.
template <typename Sync = chk::RealSync>
class BasicAsyncWorklist {
  static constexpr bool kNothrow = !Sync::kInstrumented;

 public:
  static constexpr std::uint32_t kNone = UINT32_MAX;
  /// Priority buckets of the non-lifo policies (== the pool's bitmap
  /// width). Priorities at or above the cap share the last bucket.
  static constexpr std::uint32_t kBuckets =
      PriorityPool<std::uint32_t, Sync>::kMaxBuckets;

  BasicAsyncWorklist(std::uint32_t size, unsigned workers,
                     core::SchedPolicy policy = core::SchedPolicy::kLifo)
      : policy_(policy),
        in_queue_(size),
        pool_(make_pool(workers, policy)),
        tallies_(workers) {
    KCORE_CHECK_MSG(workers >= 1, "worklist needs at least one worker");
    for (std::uint32_t i = 0; i < size; ++i) {
      in_queue_[i].store(0, std::memory_order_relaxed, "wl.init.store_flag");
    }
  }

  [[nodiscard]] unsigned workers() const noexcept { return pool_.workers(); }
  [[nodiscard]] core::SchedPolicy policy() const noexcept { return policy_; }

  /// Pre-run seeding: flag `item` and enqueue it into `worker`'s lane at
  /// `bucket`. Must not race with acquire/schedule.
  void seed(std::uint32_t item, unsigned worker, std::uint32_t bucket = 0) {
    in_queue_[item].store(1, std::memory_order_relaxed, "wl.seed.store_flag");
    detector_.add();
    pool_.push(item, bucket, worker);
    ++tallies_[worker].enqueues;
  }

  /// Activation: flag `item` and, if this call won the 0->1 transition,
  /// enqueue it into the calling worker's lane at priority `bucket`
  /// (clamped to the pool width; ignored under lifo). Returns true when
  /// this call enqueued (false: the item was already scheduled elsewhere
  /// — its bucket keeps the priority it was enqueued with, the MultiQueue
  /// staleness trade).
  bool schedule(std::uint32_t item, unsigned worker,
                std::uint32_t bucket = 0) {
    // Only the 0->1 winner enqueues: a vertex is in at most one bucket,
    // and each enqueue is matched by exactly one acquire+finish.
    if (in_queue_[item].exchange(1, std::memory_order_acq_rel,
                                 "wl.schedule.xchg_flag") != 0) {
      return false;
    }
    // add() BEFORE the push: the moment the item is stealable it is
    // already counted, so the detector can never observe a transient
    // zero.
    detector_.add();
    pool_.push(item, bucket, worker);
    ++tallies_[worker].enqueues;
    return true;
  }

  /// Next item for worker w: own lane in bucket-priority order first,
  /// then a bucket-major steal sweep over the other lanes. kNone when
  /// nothing was found (the caller should try_confirm()/back off and
  /// retry — kNone is NOT termination).
  [[nodiscard]] std::uint32_t acquire(unsigned worker) {
    auto& tally = tallies_[worker];
    std::uint32_t item = kNone;
    if (pool_.pop_own(item, worker, tally.pop_scans)) return item;
    if (pool_.steal(item, worker, tally.pop_scans)) {
      ++tally.steals;
      return item;
    }
    return kNone;
  }

  /// Clear the acquired item's in-queue flag. MUST be called before
  /// reading the item's inputs: the exchange synchronizes with every
  /// earlier schedule()'s flag RMW, so inputs written before those
  /// schedules are visible after this call — and any write that lands
  /// after it re-flags the item. This ordering is the no-lost-wakeup
  /// guarantee.
  void begin(std::uint32_t item) {
    // Exchange, not store: every flag write stays an RMW, so this clear
    // synchronizes with each preceding schedule()'s 1-exchange and the
    // inputs written before those schedules are visible to the caller.
    (void)in_queue_[item].exchange(0, std::memory_order_acq_rel,
                                   "wl.begin.xchg_flag");
  }

  /// Retire the acquired item after processing it — including every
  /// schedule() it issued (the detector's accounting contract).
  void finish() noexcept(kNothrow) { detector_.finish(); }

  /// Idle worker's termination attempt (counter zero + confirmation
  /// pass); sticky once true.
  [[nodiscard]] bool try_confirm() noexcept(kNothrow) {
    return detector_.try_confirm();
  }
  [[nodiscard]] bool done() const noexcept(kNothrow) {
    return detector_.done();
  }

  [[nodiscard]] const core::BasicQuiescenceDetector<Sync>& detector()
      const noexcept {
    return detector_;
  }

  /// True iff `item`'s in-queue flag is currently set (tests/monitoring).
  [[nodiscard]] bool flagged(std::uint32_t item) const {
    return in_queue_[item].load(std::memory_order_acquire,
                                "wl.read_flag") != 0;
  }

  /// The underlying pool (tests/monitoring — e.g. the chk suite's
  /// hint-bitmap superset checks).
  [[nodiscard]] const PriorityPool<std::uint32_t, Sync>& pool()
      const noexcept {
    return pool_;
  }

  /// Single-threaded reset between runs: clear every flag and tally,
  /// empty the pool (keeping its ring allocations) and re-arm the
  /// detector. Lets api::Session reuse one worklist across warm runs
  /// instead of re-allocating it.
  void reset() {
    for (auto& flag : in_queue_) {
      flag.store(0, std::memory_order_relaxed, "wl.reset.store_flag");
    }
    for (auto& tally : tallies_) tally = WorkerTally{};
    pool_.clear();
    detector_.reset();
  }

  /// One worker's scheduling tallies (obs/metrics bridge). Safe for the
  /// OWNING worker during the run (it is the only writer) and for anyone
  /// after the workers join.
  struct WorkerTallyView {
    std::uint64_t steals = 0;
    std::uint64_t enqueues = 0;
    std::uint64_t pop_scans = 0;
  };
  [[nodiscard]] WorkerTallyView tally(unsigned worker) const {
    const WorkerTally& t = tallies_[worker];
    return {t.steals, t.enqueues, t.pop_scans};
  }

  /// Racy estimate of items currently enqueued across all lanes
  /// (sampler/monitoring only — never a correctness signal).
  [[nodiscard]] std::uint64_t size_estimate() const {
    return pool_.size_estimate();
  }

  /// Post-run tallies, summed over workers (call after the workers join).
  [[nodiscard]] std::uint64_t total_steals() const {
    std::uint64_t total = 0;
    for (const auto& tally : tallies_) total += tally.steals;
    return total;
  }
  [[nodiscard]] std::uint64_t total_enqueues() const {
    std::uint64_t total = 0;
    for (const auto& tally : tallies_) total += tally.enqueues;
    return total;
  }
  [[nodiscard]] std::uint64_t total_pop_scans() const {
    std::uint64_t total = 0;
    for (const auto& tally : tallies_) total += tally.pop_scans;
    return total;
  }

 private:
  struct alignas(64) WorkerTally {
    std::uint64_t steals = 0;     // written only by the owning worker
    std::uint64_t enqueues = 0;   // successful seed/schedule calls
    std::uint64_t pop_scans = 0;  // deque probes during acquire
  };

  static PriorityPool<std::uint32_t, Sync> make_pool(
      unsigned workers, core::SchedPolicy policy) {
    switch (policy) {
      case core::SchedPolicy::kLifo:
        // One bucket per lane: push/pop degenerate to the classic
        // Chase–Lev LIFO/steal path with a single-probe scan.
        return {workers, 1, PopOrder::kAscending};
      case core::SchedPolicy::kBound:
        // Bucket = current estimate: the lowest estimate is the closest
        // to final (the peeling frontier), so ascending pop order.
        return {workers, kBuckets, PopOrder::kAscending};
      case core::SchedPolicy::kDelta:
        // Bucket = log2 of the accumulated estimate drop since the
        // vertex was last relaxed: the most-changed neighborhood pops
        // first.
        return {workers, kBuckets, PopOrder::kDescending};
    }
    return {workers, 1, PopOrder::kAscending};
  }

  core::SchedPolicy policy_;
  std::vector<typename Sync::template Atomic<std::uint8_t>> in_queue_;
  PriorityPool<std::uint32_t, Sync> pool_;
  std::vector<WorkerTally> tallies_;
  core::BasicQuiescenceDetector<Sync> detector_;
};

/// The production instantiation (zero-overhead std::atomic passthrough).
using AsyncWorklist = BasicAsyncWorklist<>;

// --- bucket maps ------------------------------------------------------------
// The priority each scheduling policy seeds/wakes with, shared by every
// worklist client (the batch engine in par/async_engine.cpp and the
// incremental repair engine in live/repair.cpp) so the policies cannot
// drift between the full and the incremental paths.

/// bound: clamp the estimate into the bitmap width — ascending pop order
/// makes the lowest still-live estimate the peeling frontier.
[[nodiscard]] inline std::uint32_t bound_bucket(std::uint32_t estimate) {
  return std::min<std::uint32_t>(estimate, AsyncWorklist::kBuckets - 1);
}

/// delta: log-scaled so the buckets cover any drop magnitude; an
/// accumulated value >= 1 keeps seeded work (bucket 0) behind every real
/// change under descending pop order.
[[nodiscard]] inline std::uint32_t delta_bucket(std::uint32_t accumulated) {
  return std::min<std::uint32_t>(
      static_cast<std::uint32_t>(std::bit_width(accumulated)),
      AsyncWorklist::kBuckets - 1);
}

}  // namespace kcore::par
