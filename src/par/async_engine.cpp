#include "par/async_engine.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <exception>
#include <memory>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

#include "core/assignment.h"
#include "core/compute_index.h"
#include "par/engine.h"
#include "util/check.h"
#include "util/clock.h"
#include "util/rng.h"

namespace kcore::par {

AsyncStats AsyncStats::from_metrics(const obs::MetricsSnapshot& m,
                                    std::uint64_t seeded) {
  AsyncStats s;
  s.relaxations = m.value("async.relaxations");
  s.steals = m.value("async.steals");
  s.re_enqueues = s.relaxations >= seeded ? s.relaxations - seeded : 0;
  s.detector_passes = m.value("async.detector_passes");
  s.skipped_recomputes = m.value("async.skipped_recomputes");
  s.pop_scans = m.value("async.pop_scans");
  return s;
}

namespace {

using core::SchedPolicy;

}  // namespace

// AsyncWorklist lives in par/async_worklist.h (a template over the chk
// synchronization shim; this engine uses the RealSync instantiation),
// along with the per-policy bucket maps (bound_bucket / delta_bucket)
// shared with the incremental repair engine in live/repair.cpp.

// --- run_bsp_async ----------------------------------------------------------

namespace {

using Clock = util::SteadyClock;

}  // namespace

AsyncPrepared prepare_bsp_async(const graph::Graph& g,
                                const core::RunOptions& options) {
  const graph::NodeId n = g.num_nodes();
  KCORE_CHECK_MSG(n > 0, "graph must be non-empty");
  AsyncPrepared prepared;
  prepared.workers = resolve_threads(options.threads);
  if (prepared.workers > n) prepared.workers = n;
  prepared.sched = options.sched;
  // Initial distribution of the all-dirty vertex set over the worker
  // lanes via the §3.2.2 policies — a pure function of the options (the
  // kRandom policy splits the root seed), never of the schedule. Only
  // the materialized per-worker seed ORDER is kept; warm runs replay it
  // without re-walking an owner array.
  const auto owner = core::assign_nodes(n, prepared.workers,
                                        options.assignment,
                                        util::split_stream(options.seed, 0));
  prepared.seeds.assign(prepared.workers, {});
  for (graph::NodeId u = 0; u < n; ++u) {
    prepared.seeds[owner[u]].push_back(u);
  }
  return prepared;
}

AsyncResult run_bsp_async(const graph::Graph& g,
                          const core::RunOptions& options,
                          const core::ProgressObserver& observer) {
  const graph::NodeId n = g.num_nodes();
  if (n == 0) {
    AsyncResult result;
    result.threads_used = resolve_threads(options.threads);
    return result;
  }
  const auto setup_start = Clock::now();
  const auto prepared = prepare_bsp_async(g, options);
  AsyncRunContext context(prepared, n);
  const auto setup_stop = Clock::now();
  auto result =
      run_bsp_async_prepared(g, prepared, context, options, observer);
  result.setup_ms +=
      util::ms_between(setup_start, setup_stop);
  return result;
}

AsyncResult run_bsp_async_prepared(const graph::Graph& g,
                                   const AsyncPrepared& prepared,
                                   AsyncRunContext& context,
                                   const core::RunOptions& options,
                                   const core::ProgressObserver& /*observer*/) {
  AsyncResult result;
  const graph::NodeId n = g.num_nodes();
  KCORE_CHECK_MSG(context.est.size() == n,
                  "run context does not match this graph");
  KCORE_CHECK_MSG(prepared.sched == options.sched,
                  "prepared state was built for --sched "
                      << core::to_string(prepared.sched)
                      << ", this run asks for "
                      << core::to_string(options.sched));
  KCORE_CHECK_MSG(
      prepared.workers == std::min<unsigned>(resolve_threads(options.threads),
                                             n),
      "prepared state was built for " << prepared.workers
                                      << " workers, this run asks for "
                                      << options.threads << " threads");
  const unsigned workers = prepared.workers;
  const SchedPolicy sched = prepared.sched;
  result.threads_used = workers;
  const auto setup_start = Clock::now();

  // Reset the context's estimate table to the degrees (Algorithm 1's
  // starting estimate) and the pending-change accumulators to zero.
  std::vector<std::atomic<graph::NodeId>>& est = context.est;
  for (graph::NodeId u = 0; u < n; ++u) {
    est[u].store(g.degree(u), std::memory_order_relaxed);
  }
  std::vector<std::atomic<std::uint32_t>>& delta = context.delta;
  if (sched == SchedPolicy::kDelta) {
    for (graph::NodeId u = 0; u < n; ++u) {
      delta[u].store(0, std::memory_order_relaxed);
    }
  }

  // Reset-in-place, then replay the cached per-worker seed order: a
  // reused context allocates nothing here (the pool keeps its grown
  // rings).
  AsyncWorklist& worklist = *context.worklist;
  worklist.reset();
  for (unsigned w = 0; w < workers; ++w) {
    for (const std::uint32_t u : prepared.seeds[w]) {
      const std::uint32_t bucket =
          sched == SchedPolicy::kBound ? bound_bucket(g.degree(u)) : 0;
      worklist.seed(u, w, bucket);
    }
  }

  const bool targeted = options.targeted_send;
  std::atomic<bool> abort{false};
  std::atomic<std::uint64_t> skipped_total{0};
  std::mutex error_mutex;
  std::exception_ptr first_error;

  // Telemetry (obs/obs.h): null recorder unless this run asked for some
  // AND the build has KCORE_OBS=ON — every hot-path hook below is an
  // OBS_* macro (empty when compiled out) or a branch on a condition
  // that constant-folds to false, so the uninstrumented run is unchanged.
  auto recorder = obs::Recorder::make(workers, options.obs);
  obs::Counter c_relax;
  obs::Counter c_steals;
  obs::Counter c_pop_scans;
  obs::Counter c_skipped;
  obs::Counter c_detector;
  obs::Counter c_wakes;
  obs::HistogramId h_relax_ns;
  obs::HistogramId h_scan_len;
  obs::HistogramId h_wake_fanout;
  if (recorder && recorder->metrics_on()) {
    obs::Registry& reg = recorder->registry();
    c_relax = reg.counter("async.relaxations");
    c_steals = reg.counter("async.steals");
    c_pop_scans = reg.counter("async.pop_scans");
    c_skipped = reg.counter("async.skipped_recomputes");
    c_detector = reg.counter("async.detector_passes");
    c_wakes = reg.counter("async.wakes");
    h_relax_ns = reg.histogram("async.relax_ns");
    h_scan_len = reg.histogram("async.acquire_scan_len");
    h_wake_fanout = reg.histogram("async.wake_fanout");
  }

  auto worker_fn = [&](unsigned w) {
    try {
      core::IndexScratch scratch;
      obs::WorkerContext* const octx =
          recorder ? recorder->worker(w) : nullptr;
      // obs::kEnabled folds the whole metrics path away at compile time
      // when the telemetry layer is off.
      const bool metrics_on =
          obs::kEnabled && octx != nullptr && octx->metrics();
      std::uint64_t prev_scans = 0;
      std::uint64_t skipped = 0;
      unsigned idle_sweeps = 0;
      while (!worklist.done() && !abort.load(std::memory_order_relaxed)) {
        const std::uint32_t u = worklist.acquire(w);
        if (u == AsyncWorklist::kNone) {
          // Nothing runnable HERE is not termination: another worker may
          // still be relaxing (its wakes will repopulate the lanes).
          // Only the detector's confirmed zero ends the run.
          if (worklist.try_confirm()) {
            OBS_INSTANT(octx, "quiescence.confirmed");
            break;
          }
          // Back off while dry: a long sequential dependency chain can
          // idle most of the pool, and a tight retry loop would ping-pong
          // the detector counter's cache line against the one worker
          // whose add/finish RMWs are the critical path.
          if (++idle_sweeps < 64) {
            std::this_thread::yield();
          } else {
            std::this_thread::sleep_for(std::chrono::microseconds(50));
          }
          continue;
        }
        idle_sweeps = 0;
        if (metrics_on) {
          // Probes accumulated since the previous successful acquire —
          // this acquire's bucket scan plus any dry sweeps in between.
          const std::uint64_t scans = worklist.tally(w).pop_scans;
          octx->observe(h_scan_len, scans - prev_scans);
          prev_scans = scans;
        }
        // Spans the whole relaxation of u (through the wakes and the
        // finish below — the destructor fires at the end of the
        // iteration); also feeds the latency histogram, in ns.
        OBS_SPAN(octx, "relax", h_relax_ns);
        worklist.begin(u);  // clear-before-read: the wakeup handshake
        if (sched == SchedPolicy::kDelta) {
          // Consume the pending-change accumulator: priority restarts
          // from zero for the NEXT activation of u (hint only — a racing
          // accumulate merely inflates a later priority).
          delta[u].store(0, std::memory_order_relaxed);
        }
        const graph::NodeId k = est[u].load(std::memory_order_acquire);
        const std::span<const graph::NodeId> nbrs = g.neighbors(u);
        // Skip-scan + allocation-free streamed count, shared with
        // bsp-par (core::IndexScratch::refine): the estimates stream
        // straight from the shared table into the epoch-stamped kernel.
        bool fast_path = false;
        const graph::NodeId refined = scratch.refine(
            nbrs.size(), k,
            [&](std::size_t i) {
              return est[nbrs[i]].load(std::memory_order_acquire);
            },
            fast_path);
        if (fast_path) {
          ++skipped;
          OBS_COUNT(octx, c_skipped, 1);
        }
        if (refined < k) {
          // Publish via CAS-min: est only decreases, and a concurrent
          // relaxation of u may already have gone lower.
          graph::NodeId cur = est[u].load(std::memory_order_relaxed);
          bool lowered = false;
          while (cur > refined) {
            if (est[u].compare_exchange_weak(cur, refined,
                                             std::memory_order_acq_rel,
                                             std::memory_order_relaxed)) {
              lowered = true;
              break;
            }
          }
          // Wake only if WE published new information; a racing lowerer
          // that beat us to <= refined already woke the neighborhood for
          // its (stronger) value.
          if (lowered) {
            const std::uint32_t drop = k - refined;
            std::uint32_t woken = 0;
            // est[v] feeds the targeted filter and the bound bucket; a
            // lifo run with the filter off needs neither load.
            const bool need_neighbor_estimate =
                targeted || sched == SchedPolicy::kBound;
            for (const graph::NodeId v : g.neighbors(u)) {
              const graph::NodeId ev =
                  need_neighbor_estimate
                      ? est[v].load(std::memory_order_acquire)
                      : 0;
              // §3.1.2 targeted wake, still safe under asynchrony: est[v]
              // never rises, so est[v] <= refined stays true forever and
              // v's computeIndex can never be lowered by this estimate.
              if (targeted && ev <= refined) continue;
              std::uint32_t bucket = 0;
              switch (sched) {
                case SchedPolicy::kLifo:
                  break;
                case SchedPolicy::kBound:
                  bucket = bound_bucket(ev);
                  break;
                case SchedPolicy::kDelta:
                  bucket = delta_bucket(
                      delta[v].fetch_add(drop, std::memory_order_relaxed) +
                      drop);
                  break;
              }
              if (worklist.schedule(v, w, bucket)) ++woken;
            }
            if (metrics_on) {
              octx->add(c_wakes, woken);
              octx->observe(h_wake_fanout, woken);
            }
          }
        }
        // Retire AFTER the wakes: the detector counts our follow-on work
        // before this unit stops being outstanding.
        worklist.finish();
      }
      skipped_total.fetch_add(skipped, std::memory_order_relaxed);
    } catch (...) {
      {
        const std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
      abort.store(true, std::memory_order_relaxed);
    }
  };

  // The convergence sampler reads only concurrency-safe state: the
  // detector's outstanding counter, the pool's racy size estimate, and
  // acquire loads of the shared estimate table. Because estimates only
  // decrease (Theorem 2), the sampled sum is a monotone Fig.-4 error
  // proxy — no round observer needed.
  if (recorder) {
    recorder->start_sampler([&worklist, &est, n](obs::Sample& s) {
      s.outstanding = worklist.detector().outstanding();
      s.worklist_depth = worklist.size_estimate();
      double sum = 0.0;
      for (graph::NodeId u = 0; u < n; ++u) {
        sum += static_cast<double>(est[u].load(std::memory_order_acquire));
      }
      s.sum_estimates = sum;
    });
  }

  const auto run_start = Clock::now();
  std::vector<std::thread> pool;
  pool.reserve(workers - 1);
  for (unsigned w = 1; w < workers; ++w) pool.emplace_back(worker_fn, w);
  worker_fn(0);
  for (auto& thread : pool) thread.join();
  const auto run_stop = Clock::now();
  if (recorder) recorder->stop_sampler();
  if (first_error) std::rethrow_exception(first_error);

  result.setup_ms =
      util::ms_between(setup_start, run_start);
  result.run_ms =
      util::ms_between(run_start, run_stop);
  // Exactly-once scheduling (begins == enqueues, pinned by the worklist
  // stress test) means the relaxation count IS the enqueue count.
  result.stats.relaxations = worklist.total_enqueues();
  result.stats.steals = worklist.total_steals();
  result.stats.re_enqueues = worklist.total_enqueues() - n;
  result.stats.detector_passes = worklist.detector().passes();
  result.stats.skipped_recomputes =
      skipped_total.load(std::memory_order_relaxed);
  result.stats.pop_scans = worklist.total_pop_scans();

  if (recorder) {
    if (recorder->metrics_on()) {
      // Fold the worklist's per-worker scheduling tallies into the
      // registry (single-threaded here — the workers have joined), then
      // rebuild the stats AS A VIEW over the snapshot: the registry is
      // the single source of truth for every "async.*" number.
      obs::Registry& reg = recorder->registry();
      for (unsigned w = 0; w < workers; ++w) {
        const auto tally = worklist.tally(w);
        reg.add(c_relax, w, tally.enqueues);
        reg.add(c_steals, w, tally.steals);
        reg.add(c_pop_scans, w, tally.pop_scans);
      }
      reg.add(c_detector, 0, worklist.detector().passes());
    }
    auto telemetry =
        std::make_shared<obs::RunTelemetry>(recorder->harvest());
    if (telemetry->has_metrics) {
      result.stats = AsyncStats::from_metrics(telemetry->metrics, n);
    }
    result.telemetry = std::move(telemetry);
  }

  // The workers' join happens-before these loads: the table is final.
  result.coreness.resize(n);
  for (graph::NodeId u = 0; u < n; ++u) {
    result.coreness[u] = est[u].load(std::memory_order_relaxed);
  }
  return result;
}

}  // namespace kcore::par
