#include "par/async_engine.h"

#include <chrono>
#include <exception>
#include <mutex>
#include <thread>

#include "core/assignment.h"
#include "core/compute_index.h"
#include "par/engine.h"
#include "util/check.h"
#include "util/clock.h"
#include "util/rng.h"

namespace kcore::par {

// --- AsyncWorklist ----------------------------------------------------------

AsyncWorklist::AsyncWorklist(std::uint32_t size, unsigned workers)
    : in_queue_(size) {
  KCORE_CHECK_MSG(workers >= 1, "worklist needs at least one worker");
  for (std::uint32_t i = 0; i < size; ++i) {
    in_queue_[i].store(0, std::memory_order_relaxed);
  }
  deques_.reserve(workers);
  for (unsigned w = 0; w < workers; ++w) {
    deques_.push_back(std::make_unique<WorkerState>());
  }
}

void AsyncWorklist::seed(std::uint32_t item, unsigned worker) {
  in_queue_[item].store(1, std::memory_order_relaxed);
  detector_.add();
  deques_[worker]->deque.push(item);
  ++deques_[worker]->enqueues;
}

bool AsyncWorklist::schedule(std::uint32_t item, unsigned worker) {
  // Only the 0->1 winner enqueues: a vertex is in at most one deque, and
  // each enqueue is matched by exactly one acquire+finish.
  if (in_queue_[item].exchange(1, std::memory_order_acq_rel) != 0) {
    return false;
  }
  // add() BEFORE the push: the moment the item is stealable it is already
  // counted, so the detector can never observe a transient zero.
  detector_.add();
  auto& mine = *deques_[worker];
  mine.deque.push(item);
  ++mine.enqueues;
  return true;
}

std::uint32_t AsyncWorklist::acquire(unsigned worker) {
  auto& mine = *deques_[worker];
  std::uint32_t item = kNone;
  if (mine.deque.pop(item)) return item;
  const auto n = static_cast<unsigned>(deques_.size());
  for (unsigned offset = 1; offset < n; ++offset) {
    const unsigned victim = (worker + offset) % n;
    if (deques_[victim]->deque.steal(item)) {
      ++mine.steals;
      return item;
    }
  }
  return kNone;
}

void AsyncWorklist::begin(std::uint32_t item) {
  // Exchange, not store: every flag write stays an RMW, so this clear
  // synchronizes with each preceding schedule()'s 1-exchange and the
  // inputs written before those schedules are visible to the caller.
  (void)in_queue_[item].exchange(0, std::memory_order_acq_rel);
}

std::uint64_t AsyncWorklist::total_steals() const {
  std::uint64_t total = 0;
  for (const auto& state : deques_) total += state->steals;
  return total;
}

std::uint64_t AsyncWorklist::total_enqueues() const {
  std::uint64_t total = 0;
  for (const auto& state : deques_) total += state->enqueues;
  return total;
}

// --- run_bsp_async ----------------------------------------------------------

namespace {

using Clock = util::SteadyClock;

}  // namespace

AsyncPrepared prepare_bsp_async(const graph::Graph& g,
                                const core::RunOptions& options) {
  const graph::NodeId n = g.num_nodes();
  KCORE_CHECK_MSG(n > 0, "graph must be non-empty");
  AsyncPrepared prepared;
  prepared.workers = resolve_threads(options.threads);
  if (prepared.workers > n) prepared.workers = n;
  // Initial distribution of the all-dirty vertex set over the worker
  // deques via the §3.2.2 policies — a pure function of the options (the
  // kRandom policy splits the root seed), never of the schedule.
  prepared.owner = core::assign_nodes(n, prepared.workers, options.assignment,
                                      util::split_stream(options.seed, 0));
  // The one shared estimate table. All traffic goes through it — no
  // epochs; run_bsp_async_prepared re-initializes it per run.
  prepared.est = std::vector<std::atomic<graph::NodeId>>(n);
  return prepared;
}

AsyncResult run_bsp_async(const graph::Graph& g,
                          const core::RunOptions& options,
                          const core::ProgressObserver& observer) {
  const graph::NodeId n = g.num_nodes();
  if (n == 0) {
    AsyncResult result;
    result.threads_used = resolve_threads(options.threads);
    return result;
  }
  const auto setup_start = Clock::now();
  auto prepared = prepare_bsp_async(g, options);
  const auto setup_stop = Clock::now();
  auto result = run_bsp_async_prepared(g, prepared, options, observer);
  result.setup_ms +=
      util::ms_between(setup_start, setup_stop);
  return result;
}

AsyncResult run_bsp_async_prepared(const graph::Graph& g,
                                   AsyncPrepared& prepared,
                                   const core::RunOptions& options,
                                   const core::ProgressObserver& /*observer*/) {
  AsyncResult result;
  const graph::NodeId n = g.num_nodes();
  KCORE_CHECK_MSG(prepared.owner.size() == n,
                  "prepared state does not match this graph");
  const unsigned workers = prepared.workers;
  result.threads_used = workers;
  const auto setup_start = Clock::now();

  // Reset the shared estimate table to the degrees (Algorithm 1's
  // starting estimate).
  std::vector<std::atomic<graph::NodeId>>& est = prepared.est;
  for (graph::NodeId u = 0; u < n; ++u) {
    est[u].store(g.degree(u), std::memory_order_relaxed);
  }

  AsyncWorklist worklist(n, workers);
  for (graph::NodeId u = 0; u < n; ++u) {
    worklist.seed(u, prepared.owner[u]);
  }

  const bool targeted = options.targeted_send;
  std::atomic<bool> abort{false};
  std::mutex error_mutex;
  std::exception_ptr first_error;

  auto worker_fn = [&](unsigned w) {
    try {
      std::vector<graph::NodeId> gather;
      std::vector<graph::NodeId> counts;
      unsigned idle_sweeps = 0;
      while (!worklist.done() && !abort.load(std::memory_order_relaxed)) {
        const std::uint32_t u = worklist.acquire(w);
        if (u == AsyncWorklist::kNone) {
          // Nothing runnable HERE is not termination: another worker may
          // still be relaxing (its wakes will repopulate the deques).
          // Only the detector's confirmed zero ends the run.
          if (worklist.try_confirm()) break;
          // Back off while dry: a long sequential dependency chain can
          // idle most of the pool, and a tight retry loop would ping-pong
          // the detector counter's cache line against the one worker
          // whose add/finish RMWs are the critical path.
          if (++idle_sweeps < 64) {
            std::this_thread::yield();
          } else {
            std::this_thread::sleep_for(std::chrono::microseconds(50));
          }
          continue;
        }
        idle_sweeps = 0;
        worklist.begin(u);  // clear-before-read: the wakeup handshake
        const graph::NodeId k = est[u].load(std::memory_order_acquire);
        graph::NodeId refined = k;
        if (k > 0) {
          gather.clear();
          for (const graph::NodeId v : g.neighbors(u)) {
            gather.push_back(est[v].load(std::memory_order_acquire));
          }
          refined = core::compute_index(gather, k, counts);
        }
        if (refined < k) {
          // Publish via CAS-min: est only decreases, and a concurrent
          // relaxation of u may already have gone lower.
          graph::NodeId cur = est[u].load(std::memory_order_relaxed);
          bool lowered = false;
          while (cur > refined) {
            if (est[u].compare_exchange_weak(cur, refined,
                                             std::memory_order_acq_rel,
                                             std::memory_order_relaxed)) {
              lowered = true;
              break;
            }
          }
          // Wake only if WE published new information; a racing lowerer
          // that beat us to <= refined already woke the neighborhood for
          // its (stronger) value.
          if (lowered) {
            for (const graph::NodeId v : g.neighbors(u)) {
              // §3.1.2 targeted wake, still safe under asynchrony: est[v]
              // never rises, so est[v] <= refined stays true forever and
              // v's computeIndex can never be lowered by this estimate.
              if (targeted &&
                  est[v].load(std::memory_order_acquire) <= refined) {
                continue;
              }
              worklist.schedule(v, w);
            }
          }
        }
        // Retire AFTER the wakes: the detector counts our follow-on work
        // before this unit stops being outstanding.
        worklist.finish();
      }
    } catch (...) {
      {
        const std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
      abort.store(true, std::memory_order_relaxed);
    }
  };

  const auto run_start = Clock::now();
  std::vector<std::thread> pool;
  pool.reserve(workers - 1);
  for (unsigned w = 1; w < workers; ++w) pool.emplace_back(worker_fn, w);
  worker_fn(0);
  for (auto& thread : pool) thread.join();
  const auto run_stop = Clock::now();
  if (first_error) std::rethrow_exception(first_error);

  result.setup_ms =
      util::ms_between(setup_start, run_start);
  result.run_ms =
      util::ms_between(run_start, run_stop);
  // Exactly-once scheduling (begins == enqueues, pinned by the worklist
  // stress test) means the relaxation count IS the enqueue count.
  result.stats.relaxations = worklist.total_enqueues();
  result.stats.steals = worklist.total_steals();
  result.stats.re_enqueues = worklist.total_enqueues() - n;
  result.stats.detector_passes = worklist.detector().passes();

  // The workers' join happens-before these loads: the table is final.
  result.coreness.resize(n);
  for (graph::NodeId u = 0; u < n; ++u) {
    result.coreness[u] = est[u].load(std::memory_order_relaxed);
  }
  return result;
}

}  // namespace kcore::par
