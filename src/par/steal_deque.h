// Chase–Lev work-stealing deque (the scheduling backbone of the async
// chaotic-relaxation engine in par/async_engine.h).
//
// One OWNER thread pushes and pops at the bottom (LIFO — freshly woken
// vertices are hot in cache); any number of THIEF threads steal from the
// top (FIFO — thieves drain the oldest work, which minimizes owner/thief
// contention to the single element where top meets bottom). This is the
// classic dynamic circular deque of Chase & Lev (SPAA'05) with the C11
// memory orderings of Lê, Pop, Cohen & Zappa Nardelli (PPoPP'13):
//
//  * push: store the element, release-fence, bump bottom (relaxed) — a
//    thief that acquires top and sees the new bottom also sees the slot;
//  * pop: decrement bottom, seq_cst fence, read top; the fence totally
//    orders the owner's bottom write against concurrent steals' top reads,
//    so the last element is handed out exactly once (pop and a racing
//    steal arbitrate through a CAS on top);
//  * steal: acquire top, seq_cst fence, acquire bottom, read the slot,
//    then CAS top — a lost CAS means another thief (or the owner's pop)
//    won that element.
//
// Every ordering above carries a SITE TAG ("sd.pop.fence_seq", ...) for
// the chk layer: under chk::ModelSync the model checker explores thread
// interleavings and stale-read choices, and the mutation harness weakens
// one named site at a time to prove each ordering is load-bearing (see
// tests/test_chk_mutants.cpp — the PPoPP'13 comments as executable
// specifications). The default Sync is the zero-overhead passthrough.
//
// Growth: the ring doubles when full. Only the owner grows; thieves may
// still be reading the OLD ring, so retired rings are kept alive until the
// deque is destroyed (a handful of geometrically-growing arrays — bounded
// memory, zero hazard-pointer machinery).
//
// Element type T must be trivially copyable (slots are Sync::Atomic<T>).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <vector>

#include "chk/sync.h"

namespace kcore::par {

template <typename T, typename Sync = chk::RealSync>
class StealDeque {
  static_assert(std::is_trivially_copyable_v<T>,
                "slots are atomic<T>: T must be trivially copyable");
  template <typename U>
  using Atomic = typename Sync::template Atomic<U>;

 public:
  /// `capacity_hint` is rounded up to a power of two (minimum 2).
  explicit StealDeque(std::uint64_t capacity_hint = 64) {
    std::uint64_t capacity = 2;
    while (capacity < capacity_hint) capacity *= 2;
    rings_.push_back(std::make_unique<Ring>(capacity));
    ring_.store(rings_.back().get(), std::memory_order_relaxed,
                "sd.init.store_ring");
  }

  StealDeque(const StealDeque&) = delete;
  StealDeque& operator=(const StealDeque&) = delete;

  /// Owner only: push at the bottom. Grows the ring when full.
  void push(T value) {
    const std::int64_t b =
        bottom_.load(std::memory_order_relaxed, "sd.push.read_bottom");
    const std::int64_t t =
        top_.load(std::memory_order_acquire, "sd.push.read_top");
    Ring* ring = ring_.load(std::memory_order_relaxed, "sd.push.read_ring");
    if (b - t > static_cast<std::int64_t>(ring->capacity) - 1) {
      ring = grow(ring, t, b);
    }
    ring->slot(b).store(value, std::memory_order_relaxed,
                        "sd.push.store_slot");
    Sync::fence(std::memory_order_release, "sd.push.fence_release");
    bottom_.store(b + 1, std::memory_order_relaxed, "sd.push.store_bottom");
  }

  /// Owner only: pop at the bottom. False when empty.
  bool pop(T& out) {
    const std::int64_t b =
        bottom_.load(std::memory_order_relaxed, "sd.pop.read_bottom") - 1;
    Ring* ring = ring_.load(std::memory_order_relaxed, "sd.pop.read_ring");
    bottom_.store(b, std::memory_order_relaxed, "sd.pop.store_bottom");
    Sync::fence(std::memory_order_seq_cst, "sd.pop.fence_seq");
    std::int64_t t = top_.load(std::memory_order_relaxed, "sd.pop.read_top");
    if (t > b) {
      // Already empty — undo the reservation.
      bottom_.store(b + 1, std::memory_order_relaxed,
                    "sd.pop.store_bottom_restore");
      return false;
    }
    out = ring->slot(b).load(std::memory_order_relaxed, "sd.pop.read_slot");
    if (t == b) {
      // Last element: race the thieves for it through top.
      const bool won = top_.compare_exchange_strong(
          t, t + 1, std::memory_order_seq_cst, std::memory_order_relaxed,
          "sd.pop.cas_top");
      bottom_.store(b + 1, std::memory_order_relaxed,
                    "sd.pop.store_bottom_restore");
      return won;
    }
    return true;
  }

  /// Thieves (any thread): steal from the top. False when empty or when
  /// the race for the element was lost (callers just try elsewhere).
  bool steal(T& out) {
    std::int64_t t =
        top_.load(std::memory_order_acquire, "sd.steal.read_top");
    Sync::fence(std::memory_order_seq_cst, "sd.steal.fence_seq");
    const std::int64_t b =
        bottom_.load(std::memory_order_acquire, "sd.steal.read_bottom");
    if (t >= b) return false;
    Ring* ring = ring_.load(std::memory_order_acquire, "sd.steal.read_ring");
    out = ring->slot(t).load(std::memory_order_relaxed, "sd.steal.read_slot");
    return top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                        std::memory_order_relaxed,
                                        "sd.steal.cas_top");
  }

  /// Single-threaded reset between runs: forget any content, KEEP the
  /// grown rings (so a warm re-run never re-allocates). Must not race
  /// with push/pop/steal — callers quiesce the workers first.
  void clear() noexcept(!Sync::kInstrumented) {
    const std::int64_t b =
        bottom_.load(std::memory_order_relaxed, "sd.clear.read_bottom");
    top_.store(b, std::memory_order_relaxed, "sd.clear.store_top");
  }

  /// Racy size estimate (monitoring/tests only — never a correctness
  /// signal; emptiness is decided by pop/steal themselves).
  [[nodiscard]] std::int64_t size_estimate() const {
    const std::int64_t b =
        bottom_.load(std::memory_order_relaxed, "sd.size.read_bottom");
    const std::int64_t t =
        top_.load(std::memory_order_relaxed, "sd.size.read_top");
    return b > t ? b - t : 0;
  }

  [[nodiscard]] std::uint64_t capacity() const {
    return ring_.load(std::memory_order_relaxed, "sd.capacity.read_ring")
        ->capacity;
  }

 private:
  struct Ring {
    explicit Ring(std::uint64_t cap)
        : capacity(cap), slots(new Atomic<T>[cap]) {}
    [[nodiscard]] Atomic<T>& slot(std::int64_t i) {
      return slots[static_cast<std::uint64_t>(i) & (capacity - 1)];
    }
    std::uint64_t capacity;  // power of two
    std::unique_ptr<Atomic<T>[]> slots;
  };

  Ring* grow(Ring* old, std::int64_t t, std::int64_t b) {
    rings_.push_back(std::make_unique<Ring>(old->capacity * 2));
    Ring* bigger = rings_.back().get();
    for (std::int64_t i = t; i < b; ++i) {
      bigger->slot(i).store(
          old->slot(i).load(std::memory_order_relaxed, "sd.grow.read_slot"),
          std::memory_order_relaxed, "sd.grow.store_slot");
    }
    // Thieves acquire this pointer; the slot copies above are published by
    // the release store together with everything the owner wrote.
    ring_.store(bigger, std::memory_order_release, "sd.grow.publish_ring");
    return bigger;
  }

  alignas(64) Atomic<std::int64_t> top_{0};
  alignas(64) Atomic<std::int64_t> bottom_{0};
  Atomic<Ring*> ring_{nullptr};
  // All rings ever allocated; retired ones stay alive for in-flight
  // thieves (owner-only mutation, only through push's grow path).
  std::vector<std::unique_ptr<Ring>> rings_;
};

}  // namespace kcore::par
