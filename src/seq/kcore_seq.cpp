#include "seq/kcore_seq.h"

#include <algorithm>
#include <numeric>

#include "util/check.h"

namespace kcore::seq {

std::vector<NodeId> coreness_bz(const Graph& g) {
  const NodeId n = g.num_nodes();
  std::vector<NodeId> degree(n);
  NodeId max_degree = 0;
  for (NodeId u = 0; u < n; ++u) {
    degree[u] = g.degree(u);
    max_degree = std::max(max_degree, degree[u]);
  }

  // Bucket sort nodes by degree: pos[u] is u's index in `order`, which is
  // sorted by current degree; bucket_start[d] is the first index of bucket d.
  std::vector<std::uint64_t> bucket_start(
      static_cast<std::size_t>(max_degree) + 2, 0);
  for (NodeId u = 0; u < n; ++u) ++bucket_start[degree[u] + 1];
  for (std::size_t d = 1; d < bucket_start.size(); ++d) {
    bucket_start[d] += bucket_start[d - 1];
  }
  std::vector<NodeId> order(n);
  std::vector<std::uint64_t> pos(n);
  {
    std::vector<std::uint64_t> cursor(bucket_start.begin(),
                                      bucket_start.end() - 1);
    for (NodeId u = 0; u < n; ++u) {
      pos[u] = cursor[degree[u]]++;
      order[pos[u]] = u;
    }
  }

  // Peel in non-decreasing degree order. When u is peeled its current
  // degree is its coreness; each unpeeled neighbor with larger current
  // degree is swapped down into the next-lower bucket.
  for (std::uint64_t i = 0; i < n; ++i) {
    const NodeId u = order[i];
    for (NodeId v : g.neighbors(u)) {
      if (degree[v] <= degree[u]) continue;
      // Swap v with the first element of its bucket, then shrink bucket.
      const std::uint64_t v_pos = pos[v];
      const std::uint64_t head_pos = bucket_start[degree[v]];
      const NodeId head = order[head_pos];
      if (head != v) {
        order[v_pos] = head;
        order[head_pos] = v;
        pos[head] = v_pos;
        pos[v] = head_pos;
      }
      ++bucket_start[degree[v]];
      --degree[v];
    }
  }
  return degree;  // degree[u] at peel time == coreness
}

std::vector<NodeId> coreness_peeling(const Graph& g) {
  const NodeId n = g.num_nodes();
  std::vector<NodeId> coreness(n, 0);
  std::vector<NodeId> degree(n);
  std::vector<bool> removed(n, false);
  for (NodeId u = 0; u < n; ++u) degree[u] = g.degree(u);

  NodeId remaining = n;
  NodeId k = 0;
  std::vector<NodeId> worklist;
  while (remaining > 0) {
    // Remove every node of degree < k until none remains, assigning
    // coreness k-1... we instead assign coreness = current k level when a
    // node survives all removals below k. Classic formulation: for
    // increasing k, cascade-delete nodes with degree < k+1? Clearer: a node
    // removed while threshold is k has coreness k.
    worklist.clear();
    for (NodeId u = 0; u < n; ++u) {
      if (!removed[u] && degree[u] <= k) worklist.push_back(u);
    }
    if (worklist.empty()) {
      ++k;
      continue;
    }
    while (!worklist.empty()) {
      const NodeId u = worklist.back();
      worklist.pop_back();
      if (removed[u]) continue;
      removed[u] = true;
      coreness[u] = k;
      --remaining;
      for (NodeId v : g.neighbors(u)) {
        if (removed[v]) continue;
        if (degree[v] > 0) --degree[v];
        if (degree[v] <= k) worklist.push_back(v);
      }
    }
  }
  return coreness;
}

CorenessSummary summarize_coreness(const std::vector<NodeId>& coreness) {
  CorenessSummary s;
  if (coreness.empty()) return s;
  s.k_max = *std::max_element(coreness.begin(), coreness.end());
  s.shell_sizes.assign(static_cast<std::size_t>(s.k_max) + 1, 0);
  double sum = 0.0;
  for (NodeId c : coreness) {
    ++s.shell_sizes[c];
    sum += static_cast<double>(c);
  }
  s.k_avg = sum / static_cast<double>(coreness.size());
  return s;
}

std::vector<bool> kcore_membership(const std::vector<NodeId>& coreness,
                                   NodeId k) {
  std::vector<bool> member(coreness.size());
  for (std::size_t u = 0; u < coreness.size(); ++u) {
    member[u] = coreness[u] >= k;
  }
  return member;
}

CoreSubgraph kcore_subgraph(const Graph& g,
                            const std::vector<NodeId>& coreness, NodeId k) {
  KCORE_CHECK_MSG(coreness.size() == g.num_nodes(),
                  "coreness vector size mismatch");
  CoreSubgraph out;
  out.dense_of_original.assign(g.num_nodes(), graph::kInvalidNode);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    if (coreness[u] >= k) {
      out.dense_of_original[u] =
          static_cast<NodeId>(out.original_of_dense.size());
      out.original_of_dense.push_back(u);
    }
  }
  graph::GraphBuilder b(static_cast<NodeId>(out.original_of_dense.size()));
  for (NodeId dense = 0;
       dense < static_cast<NodeId>(out.original_of_dense.size()); ++dense) {
    const NodeId u = out.original_of_dense[dense];
    for (NodeId v : g.neighbors(u)) {
      if (u < v && coreness[v] >= k) {
        b.add_edge(dense, out.dense_of_original[v]);
      }
    }
  }
  out.graph = b.build();
  return out;
}

std::vector<NodeId> degeneracy_order(const Graph& g) {
  // Re-run the bucket peel, recording removal order.
  const NodeId n = g.num_nodes();
  std::vector<NodeId> degree(n);
  NodeId max_degree = 0;
  for (NodeId u = 0; u < n; ++u) {
    degree[u] = g.degree(u);
    max_degree = std::max(max_degree, degree[u]);
  }
  std::vector<std::uint64_t> bucket_start(
      static_cast<std::size_t>(max_degree) + 2, 0);
  for (NodeId u = 0; u < n; ++u) ++bucket_start[degree[u] + 1];
  for (std::size_t d = 1; d < bucket_start.size(); ++d) {
    bucket_start[d] += bucket_start[d - 1];
  }
  std::vector<NodeId> order(n);
  std::vector<std::uint64_t> pos(n);
  {
    std::vector<std::uint64_t> cursor(bucket_start.begin(),
                                      bucket_start.end() - 1);
    for (NodeId u = 0; u < n; ++u) {
      pos[u] = cursor[degree[u]]++;
      order[pos[u]] = u;
    }
  }
  for (std::uint64_t i = 0; i < n; ++i) {
    const NodeId u = order[i];
    for (NodeId v : g.neighbors(u)) {
      if (degree[v] <= degree[u]) continue;
      const std::uint64_t v_pos = pos[v];
      const std::uint64_t head_pos = bucket_start[degree[v]];
      const NodeId head = order[head_pos];
      if (head != v) {
        order[v_pos] = head;
        order[head_pos] = v;
        pos[head] = v_pos;
        pos[v] = head_pos;
      }
      ++bucket_start[degree[v]];
      --degree[v];
    }
  }
  return order;
}

std::vector<NodeId> degeneracy_coloring(const Graph& g) {
  const auto order = degeneracy_order(g);
  std::vector<NodeId> color(g.num_nodes(), graph::kInvalidNode);
  std::vector<bool> used;  // scratch: colors taken by colored neighbors
  // Color in REVERSE peel order: when u is colored, its already-colored
  // neighbors are exactly those later in the peel, and there are at most
  // coreness(u) <= degeneracy of them — so some color in
  // [0, degeneracy] is always free.
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const NodeId u = *it;
    used.assign(g.degree(u) + 1, false);
    for (const NodeId v : g.neighbors(u)) {
      if (color[v] != graph::kInvalidNode && color[v] <= g.degree(u)) {
        used[color[v]] = true;
      }
    }
    NodeId c = 0;
    while (c < used.size() && used[c]) ++c;
    color[u] = c;
  }
  return color;
}

bool satisfies_locality(const Graph& g,
                        const std::vector<NodeId>& coreness) {
  if (coreness.size() != g.num_nodes()) return false;
  std::vector<NodeId> count;  // reused scratch
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    const NodeId k = coreness[u];
    if (k > g.degree(u)) return false;  // coreness cannot exceed degree
    // (i) at least k neighbors with coreness >= k
    NodeId at_least_k = 0;
    NodeId at_least_k1 = 0;
    for (NodeId v : g.neighbors(u)) {
      if (coreness[v] >= k) ++at_least_k;
      if (coreness[v] >= k + 1) ++at_least_k1;
    }
    if (k > 0 && at_least_k < k) return false;
    // (ii) no k+1 neighbors with coreness >= k+1
    if (at_least_k1 >= k + 1) return false;
  }
  return true;
}

}  // namespace kcore::seq
