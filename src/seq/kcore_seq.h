// Sequential (centralized) k-core decomposition.
//
// Two independent implementations:
//  * coreness_bz    — the Batagelj–Zaveršnik O(m) bucket algorithm, the
//                     paper's reference [3] and our performance baseline;
//  * coreness_peeling — naive iterated removal straight from Definition 1,
//                     O(N*M) worst case, kept as an oracle to cross-check
//                     the optimized implementation in tests.
//
// Plus utilities built on a coreness vector: shell sizes, k-core
// membership/subgraph extraction, degeneracy order, and a verifier for the
// paper's Theorem 1 (locality).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace kcore::seq {

using graph::Graph;
using graph::NodeId;

/// Batagelj–Zaveršnik bucket algorithm; O(N + M) time, O(N) extra space.
/// Returns coreness[u] for every node.
[[nodiscard]] std::vector<NodeId> coreness_bz(const Graph& g);

/// Naive peeling oracle: repeatedly delete all nodes of degree < k.
/// Exponentially simpler to audit than BZ; used for differential testing.
[[nodiscard]] std::vector<NodeId> coreness_peeling(const Graph& g);

/// Summary statistics of a coreness vector (Table 1's kmax / kavg columns).
struct CorenessSummary {
  NodeId k_max = 0;
  double k_avg = 0.0;
  /// shell_sizes[k] = number of nodes with coreness exactly k.
  std::vector<std::size_t> shell_sizes;
};

[[nodiscard]] CorenessSummary summarize_coreness(
    const std::vector<NodeId>& coreness);

/// membership[u] = true iff u belongs to the k-core (coreness >= k).
[[nodiscard]] std::vector<bool> kcore_membership(
    const std::vector<NodeId>& coreness, NodeId k);

/// Induced subgraph of the k-core. `dense_of_original[u]` maps an original
/// node to its id in the subgraph (kInvalidNode if outside the core).
struct CoreSubgraph {
  Graph graph;
  std::vector<NodeId> original_of_dense;
  std::vector<NodeId> dense_of_original;
};

[[nodiscard]] CoreSubgraph kcore_subgraph(const Graph& g,
                                          const std::vector<NodeId>& coreness,
                                          NodeId k);

/// Degeneracy order: the node removal order of the bucket algorithm
/// (non-decreasing coreness). The graph's degeneracy equals max coreness.
[[nodiscard]] std::vector<NodeId> degeneracy_order(const Graph& g);

/// Verify the paper's Theorem 1 for every node: k(u) is the largest k such
/// that u has >= k neighbors of coreness >= k. Returns true iff the given
/// vector is a fixed point of that recurrence AND matches on degree caps;
/// used to validate both baselines and distributed outputs.
[[nodiscard]] bool satisfies_locality(const Graph& g,
                                      const std::vector<NodeId>& coreness);

/// Greedy graph coloring along the reverse degeneracy order — the classic
/// application of the decomposition: uses at most (degeneracy + 1) =
/// (max coreness + 1) colors. Returns color[u] in [0, max_coreness].
[[nodiscard]] std::vector<NodeId> degeneracy_coloring(const Graph& g);

}  // namespace kcore::seq
