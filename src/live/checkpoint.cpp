#include "live/checkpoint.h"

#include <algorithm>
#include <cstdio>
#include <utility>

#include "live/wire.h"
#include "util/crc32.h"

namespace kcore::live {
namespace {

constexpr std::uint32_t kMagic = 0x6B636B70;  // "kckp"
constexpr char kPrefix[] = "checkpoint-";
constexpr char kSuffix[] = ".ckpt";
constexpr char kTempName[] = "checkpoint.tmp";

std::string checkpoint_name(std::uint64_t epoch) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%s%010llu%s", kPrefix,
                static_cast<unsigned long long>(epoch), kSuffix);
  return buf;
}

/// Parse "checkpoint-<epoch>.ckpt"; returns false for anything else.
bool parse_checkpoint_name(const std::string& name, std::uint64_t& epoch) {
  const std::size_t prefix_len = sizeof(kPrefix) - 1;
  const std::size_t suffix_len = sizeof(kSuffix) - 1;
  if (name.size() <= prefix_len + suffix_len) return false;
  if (name.compare(0, prefix_len, kPrefix) != 0) return false;
  if (name.compare(name.size() - suffix_len, suffix_len, kSuffix) != 0) {
    return false;
  }
  epoch = 0;
  for (std::size_t i = prefix_len; i < name.size() - suffix_len; ++i) {
    if (name[i] < '0' || name[i] > '9') return false;
    epoch = epoch * 10 + static_cast<std::uint64_t>(name[i] - '0');
  }
  return true;
}

std::string encode(const CheckpointData& data) {
  std::string payload;
  payload.reserve(28 + data.edges.size() * 8 + data.coreness.size() * 4);
  wire::put_u64(payload, data.epoch);
  wire::put_u64(payload, data.wal_offset);
  wire::put_u32(payload, data.num_nodes);
  wire::put_u64(payload, data.edges.size());
  for (const graph::Edge& e : data.edges) {
    wire::put_u32(payload, e.u);
    wire::put_u32(payload, e.v);
  }
  for (graph::NodeId c : data.coreness) wire::put_u32(payload, c);

  std::string file;
  file.reserve(8 + payload.size());
  wire::put_u32(file, kMagic);
  wire::put_u32(file, util::crc32(payload));
  file.append(payload);
  return file;
}

/// Decode + validate; returns a one-line reason on failure.
std::optional<CheckpointData> decode(const std::string& bytes,
                                     std::string& reason) {
  wire::Reader header(bytes);
  std::uint32_t magic = 0;
  std::uint32_t crc = 0;
  if (!header.get_u32(magic) || magic != kMagic) {
    reason = "bad magic (not a checkpoint file)";
    return std::nullopt;
  }
  if (!header.get_u32(crc)) {
    reason = "truncated header";
    return std::nullopt;
  }
  const std::string_view payload = std::string_view(bytes).substr(8);
  if (util::crc32(payload) != crc) {
    reason = "CRC mismatch (torn or corrupt write)";
    return std::nullopt;
  }

  CheckpointData data;
  wire::Reader body(payload);
  std::uint64_t num_edges = 0;
  if (!body.get_u64(data.epoch) || !body.get_u64(data.wal_offset) ||
      !body.get_u32(data.num_nodes) || !body.get_u64(num_edges)) {
    reason = "truncated payload header";
    return std::nullopt;
  }
  data.edges.reserve(num_edges);
  for (std::uint64_t i = 0; i < num_edges; ++i) {
    graph::Edge e;
    if (!body.get_u32(e.u) || !body.get_u32(e.v)) {
      reason = "truncated edge list";
      return std::nullopt;
    }
    if (e.u >= data.num_nodes || e.v >= data.num_nodes) {
      reason = "edge endpoint out of range";
      return std::nullopt;
    }
    data.edges.push_back(e);
  }
  data.coreness.resize(data.num_nodes);
  for (graph::NodeId u = 0; u < data.num_nodes; ++u) {
    if (!body.get_u32(data.coreness[u])) {
      reason = "truncated coreness table";
      return std::nullopt;
    }
  }
  if (body.remaining() != 0) {
    reason = "trailing bytes after coreness table";
    return std::nullopt;
  }
  return data;
}

}  // namespace

std::string write_checkpoint(util::Storage& storage, const std::string& dir,
                             const CheckpointData& data, unsigned keep) {
  const std::string tmp = dir + "/" + kTempName;
  const std::string final_path = dir + "/" + checkpoint_name(data.epoch);
  storage.write_file(tmp, encode(data));
  storage.sync_file(tmp);
  storage.rename_file(tmp, final_path);

  // Prune: keep the newest `keep` checkpoints (never fewer than the one
  // just written). Pruning failures are non-fatal by design — the next
  // checkpoint retries — but we let IoError propagate from list_dir since
  // an unlistable state dir is a real problem.
  std::vector<std::uint64_t> epochs;
  for (const std::string& name : storage.list_dir(dir)) {
    std::uint64_t epoch = 0;
    if (parse_checkpoint_name(name, epoch)) epochs.push_back(epoch);
  }
  std::sort(epochs.begin(), epochs.end());
  if (keep == 0) keep = 1;
  while (epochs.size() > keep) {
    storage.remove_file(dir + "/" + checkpoint_name(epochs.front()));
    epochs.erase(epochs.begin());
  }
  return final_path;
}

CheckpointLoadResult load_latest_checkpoint(util::Storage& storage,
                                            const std::string& dir) {
  CheckpointLoadResult result;
  std::vector<std::uint64_t> epochs;
  for (const std::string& name : storage.list_dir(dir)) {
    std::uint64_t epoch = 0;
    if (parse_checkpoint_name(name, epoch)) epochs.push_back(epoch);
  }
  std::sort(epochs.begin(), epochs.end(), std::greater<>());
  for (std::uint64_t epoch : epochs) {
    const std::string path = dir + "/" + checkpoint_name(epoch);
    std::string reason;
    std::optional<CheckpointData> data = decode(storage.read_file(path), reason);
    if (data) {
      result.data = std::move(data);
      result.file = path;
      return result;
    }
    result.rejected.push_back(path + ": " + reason);
  }
  return result;
}

}  // namespace kcore::live
