// Incremental coreness repair on the async runtime.
//
// The paper's locality claim, executed as a service primitive: the
// engine keeps a persistent shared atomic estimate table over a
// LiveGraph and, after each topology change, re-establishes the exact
// fixed point by chaotic relaxation seeded ONLY with the perturbed
// region — not the whole graph. The machinery is exactly the bsp-async
// batch engine's (par/async_worklist.h: in-queue flags, bucketed
// work-stealing pool, quiescence detector, the same bound/delta bucket
// maps), re-pointed at a mutable adjacency and a warm estimate table.
//
// Why warm-starting is exact (core/dynamic.h has the full argument):
//  * a DELETION only lowers coreness, so the converged table is still a
//    safe upper bound — re-activating the two endpoints and relaxing
//    downward restores exactness (Theorem 2 applies verbatim);
//  * an INSERTION may under-estimate, so before seeding, the K-subcore
//    candidate region around the endpoints (K = min(est(u), est(v))) is
//    raised to min(K+1, degree) — the provable upper bound — after which
//    downward relaxation is again exact. Raises are computed one edge at
//    a time against exact estimates, which keeps them exact in turn.
//
// Thread contract: initialize(), note_insert(), note_remove() and
// repair() are called by ONE writer thread; repair() spawns and joins
// the worker pool internally, so the estimate table is never mutated
// concurrently with the notes. Readers of the published coreness never
// touch this class (live::Service hands them immutable snapshots).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "core/run_options.h"
#include "graph/graph.h"
#include "live/live_graph.h"
#include "par/async_worklist.h"

namespace kcore::live {

struct RepairOptions {
  unsigned threads = 0;  // 0 = hardware concurrency
  core::SchedPolicy sched = core::SchedPolicy::kBound;
  bool targeted_send = true;
};

/// Cost of one repair run (or of initialize()'s full convergence).
struct RepairStats {
  /// Nodes seeded into the worklist (endpoints + raised candidate
  /// regions) — the localized dirty set the run started from.
  std::uint64_t seeded = 0;
  /// Estimates lifted by the insertion safety rule (candidate-region
  /// size summed over the batch's insertions).
  std::uint64_t raised = 0;
  std::uint64_t relaxations = 0;
  std::uint64_t steals = 0;
  std::uint64_t pop_scans = 0;
  std::uint64_t detector_passes = 0;
  std::uint64_t skipped_recomputes = 0;
  double repair_ms = 0.0;
};

class RepairEngine {
 public:
  /// The graph reference must outlive the engine; the node count is
  /// fixed at construction (live updates rewire edges, never add nodes).
  RepairEngine(const LiveGraph& graph, const RepairOptions& options);

  /// Full from-scratch convergence: estimate = degree, every node
  /// seeded — Algorithm 1's initialization on the async runtime.
  RepairStats initialize();

  /// Adopt `coreness` as the already-converged table without relaxing
  /// anything — the recovery path. The caller vouches the table is exact
  /// for the CURRENT topology (a CRC-validated checkpoint); Theorems 1–2
  /// make every subsequent note_*/repair() cycle exact from here, so a
  /// restart pays zero relaxations instead of a full recompute. Size
  /// must match the node count.
  void warm_start(const std::vector<graph::NodeId>& coreness);

  /// Record an insertion of {u,v} that was ALREADY applied to the graph:
  /// raises the K-subcore candidate region and marks it dirty. Must run
  /// between repairs (the table is exact when it executes).
  void note_insert(graph::NodeId u, graph::NodeId v);

  /// Record a deletion of {u,v} already applied to the graph: the table
  /// is now a safe upper bound; only the endpoints need re-activation.
  void note_remove(graph::NodeId u, graph::NodeId v);

  /// Relax the pending dirty set to quiescence; returns the run's cost
  /// and clears the pending set. A no-op (all-zero stats) when nothing
  /// is pending.
  RepairStats repair();

  [[nodiscard]] unsigned workers() const noexcept { return workers_; }
  [[nodiscard]] core::SchedPolicy sched() const noexcept {
    return options_.sched;
  }
  /// Current exact estimate of one node (between repairs).
  [[nodiscard]] graph::NodeId estimate(graph::NodeId u) const {
    return est_[u].load(std::memory_order_relaxed);
  }
  /// Copy the converged table (between repairs).
  void copy_coreness(std::vector<graph::NodeId>& out) const;

 private:
  /// Collect the insertion candidate region around {u,v}: nodes of
  /// estimate exactly K reachable through such nodes, peeled to those
  /// with enough support to actually rise (mirrors
  /// core::DynamicKCore::subcore_region over the live adjacency).
  [[nodiscard]] std::vector<graph::NodeId> subcore_region(graph::NodeId u,
                                                          graph::NodeId v,
                                                          graph::NodeId K);

  void mark_pending(graph::NodeId u);

  const LiveGraph& graph_;
  RepairOptions options_;
  unsigned workers_ = 1;
  std::vector<std::atomic<graph::NodeId>> est_;
  std::vector<std::atomic<std::uint32_t>> delta_;  // kDelta accumulators
  std::unique_ptr<par::AsyncWorklist> worklist_;
  std::vector<graph::NodeId> pending_;   // dirty set for the next repair
  std::vector<std::uint8_t> in_pending_;
  std::uint64_t raised_pending_ = 0;
  // subcore_region scratch (kept across calls: zero steady-state allocs)
  std::vector<graph::NodeId> region_stack_;
  std::vector<std::uint8_t> in_region_;
};

}  // namespace kcore::live
