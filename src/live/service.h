// live::Service — the live graph service: streaming edge churn with
// incremental async repair, consistent-snapshot queries, and (opt-in)
// crash-safe durability.
//
// Consistency contract:
//  * One writer thread calls apply(); any number of reader threads call
//    query() concurrently with it and with each other.
//  * query() returns the last PUBLISHED snapshot: an immutable coreness
//    table + topology version. A FINAL snapshot (provisional == false)
//    is detector-confirmed exact for its topology. When a provisional
//    deadline is set, a long repair additionally publishes PROVISIONAL
//    snapshots mid-run: same (pending) epoch number, provisional ==
//    true, and a coreness table that is a sound UPPER BOUND (Theorem 1 —
//    estimates only move downward during relaxation), finalized by the
//    exact publish of that same epoch. Readers that need exactness skip
//    provisional snapshots; readers that need freshness use them.
//  * Every apply() publishes exactly ONE new final epoch (even for an
//    empty or fully-ignored batch), so epoch numbers count apply()
//    calls and the `live.epoch_publishes` counter equals applies + 1
//    (the initial convergence publishes epoch 0).
//
// Durability contract (when DurabilityOptions::dir is set):
//  * WRITE-AHEAD: apply() appends the raw batch to `dir`/wal.log
//    (CRC-framed, fsync per FsyncPolicy) BEFORE touching the topology.
//    A crash at any point loses at most the unsynced WAL suffix; an
//    acknowledged apply under FsyncPolicy::kEveryBatch is never lost.
//  * CHECKPOINTS: every checkpoint_every batches the full state
//    (topology + exact coreness + epoch + WAL offset) is written
//    atomically (temp -> fsync -> rename); the WAL is synced first so a
//    checkpoint never references bytes the disk does not have.
//  * RECOVERY: Service::open() loads the newest valid checkpoint,
//    warm-starts the repair engine from its coreness table (exact by
//    construction, zero relaxations — the paper's re-convergence
//    theorems make this sound), truncates any torn WAL tail, and
//    replays the remaining records through the normal apply() path.
//    Replay is idempotent by epoch: duplicate records are skipped, a
//    gap is refused with an actionable error.
//  * A failed checkpoint write degrades gracefully: the error is
//    counted (live.checkpoint_failures), the result flags it, and the
//    WAL still carries the data; a failed WAL append propagates as
//    util::IoError BEFORE any mutation, leaving the service consistent.
//
// Update semantics per batch (identical to DynamicKCore::apply_batch, so
// the simulator and async paths replay identical streams):
//  * out-of-range node ids are REJECTED (counted, not applied — a live
//    feed's garbage must not take the service down);
//  * self-loops, duplicate inserts, absent removes and insert+remove
//    churn within one batch are IGNORED (only the net topology effect is
//    applied);
//  * net insertions are applied before net deletions, each insertion
//    raising its K-subcore candidate region (see live/repair.h), then
//    one relaxation run re-converges the whole batch.
//
// Metric glossary (enabled via ServiceOptions::metrics in KCORE_OBS
// builds; all counters are exposed through metrics() and must equal the
// sums over the returned ApplyResults — the parity test pins this):
//   live.repairs               repair runs that actually relaxed something
//   live.epoch_publishes       final snapshots published (applies + 1)
//   live.relaxations           vertex recomputations across all repairs
//   live.seeded_nodes          nodes seeded dirty (localized region size)
//   live.raised_nodes          estimates raised by the insertion rule
//   live.rejected_updates      out-of-range updates dropped
//   live.wal_batches           batch records appended to the WAL
//   live.wal_bytes             bytes appended to the WAL
//   live.checkpoints           checkpoints written (incl. the initial one)
//   live.checkpoint_failures   checkpoint writes that failed (degraded)
//   live.provisional_publishes provisional snapshots the watchdog pushed
//   live.overload_rejects      batches a bounded ingest queue turned away
#pragma once

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/run_options.h"
#include "graph/edge_list.h"
#include "graph/graph.h"
#include "live/checkpoint.h"
#include "live/live_graph.h"
#include "live/repair.h"
#include "live/update_log.h"
#include "live/wal.h"
#include "obs/metrics.h"
#include "util/storage.h"

namespace kcore::live {

struct ServiceOptions {
  unsigned threads = 0;  // repair width; 0 = hardware concurrency
  core::SchedPolicy sched = core::SchedPolicy::kBound;
  bool targeted_send = true;
  /// Keep a live.* metric registry (no-op unless the build has
  /// KCORE_OBS=ON; see metrics_enabled()).
  bool metrics = false;
  /// When > 0, a repair running longer than this publishes a provisional
  /// upper-bound snapshot every deadline interval (graceful degradation:
  /// readers keep getting fresh sound tables instead of a stale epoch).
  /// 0 disables the watchdog entirely.
  std::uint64_t provisional_deadline_ms = 0;
};

/// Where and how the service persists itself. An empty `dir` means no
/// durability (the PR-9 in-memory behavior, bit-identical).
struct DurabilityOptions {
  std::string dir;  // state directory: wal.log + checkpoint-*.ckpt
  FsyncPolicy fsync = FsyncPolicy::kEveryBatch;
  unsigned fsync_every = 8;             // period for FsyncPolicy::kEveryN
  std::uint64_t checkpoint_every = 64;  // batches per checkpoint; 0 = never
  unsigned keep_checkpoints = 2;
  /// Test seam: inject util::MemStorage; null means util::real_storage().
  util::Storage* storage = nullptr;
};

/// What Service::open() reports about a recovery.
struct RecoveryInfo {
  std::string checkpoint_file;
  std::uint64_t checkpoint_epoch = 0;
  std::uint64_t recovered_epoch = 0;  // last epoch published after replay
  std::uint64_t replayed_batches = 0;
  std::uint64_t skipped_duplicate_batches = 0;
  std::uint64_t replay_relaxations = 0;  // the warm-restart cost
  std::uint64_t torn_bytes_truncated = 0;
  std::vector<std::string> rejected_checkpoints;  // diagnostics
};

/// What query() hands out: immutable, shared. Final snapshots
/// (provisional == false) are detector-confirmed exact; provisional ones
/// are sound upper bounds published mid-repair (see the file comment).
struct Snapshot {
  std::uint64_t epoch = 0;             // publish count (0 = initial)
  std::uint64_t topology_version = 0;  // LiveGraph mutations folded in
  graph::NodeId num_nodes = 0;
  std::uint64_t num_edges = 0;
  bool provisional = false;
  std::vector<graph::NodeId> coreness;
};

/// One apply() call's outcome (the live path's "extras").
struct ApplyResult {
  std::uint64_t epoch = 0;  // the epoch this batch published
  std::uint64_t applied_inserts = 0;   // net edges added
  std::uint64_t applied_removes = 0;   // net edges removed
  std::uint64_t ignored_updates = 0;   // self-loops + net no-ops
  std::uint64_t rejected_updates = 0;  // out-of-range node ids
  std::uint64_t wal_bytes = 0;         // 0 when durability is off / replaying
  std::uint64_t provisional_publishes = 0;  // watchdog pushes this apply
  bool checkpointed = false;
  bool checkpoint_failed = false;  // degraded: WAL still has the data
  RepairStats repair;
};

class Service {
 public:
  explicit Service(const graph::Graph& initial,
                   const ServiceOptions& options = {});

  /// Fresh DURABLE service: converges `initial`, then creates the WAL
  /// and writes the initial checkpoint into durability.dir. Refuses
  /// (util::IoError) a directory that already holds service state —
  /// recovering over it silently would discard a history; use open().
  Service(const graph::Graph& initial, const ServiceOptions& options,
          const DurabilityOptions& durability);

  /// Recover a durable service from durability.dir (see the durability
  /// contract above). Throws util::IoError with an actionable one-line
  /// message when the directory holds nothing recoverable.
  [[nodiscard]] static std::unique_ptr<Service> open(
      const ServiceOptions& options, const DurabilityOptions& durability,
      RecoveryInfo* info = nullptr);

  ~Service();

  /// The last published snapshot (never null). Thread-safe; concurrent
  /// with apply().
  [[nodiscard]] std::shared_ptr<const Snapshot> query() const;

  /// Apply one batch: WAL-append (durable mode), mutate topology, repair
  /// incrementally, publish a new epoch. Single-writer.
  ApplyResult apply(std::span<const graph::EdgeUpdate> batch);

  /// Apply every batch of a log in order; returns one result per batch.
  std::vector<ApplyResult> replay(const UpdateLog& log);

  /// Force a checkpoint now (also syncs the WAL). Durable mode only.
  void checkpoint();

  /// Count a batch turned away by a bounded ingest queue (see
  /// live/ingest.h). Callers must serialize (the Ingestor's queue mutex
  /// does) — the counter lane is single-writer.
  void note_overload_reject(std::uint64_t n = 1);

  /// Writer-side view of the current topology (do not call concurrently
  /// with apply()).
  [[nodiscard]] const LiveGraph& graph() const noexcept { return graph_; }

  [[nodiscard]] unsigned workers() const noexcept { return engine_.workers(); }
  [[nodiscard]] std::uint64_t epoch() const;
  [[nodiscard]] bool durable() const noexcept { return wal_.has_value(); }

  /// True when the build compiled the obs layer in AND options.metrics
  /// asked for the registry.
  [[nodiscard]] bool metrics_enabled() const noexcept {
    return registry_ != nullptr;
  }
  /// Snapshot of the live.* counters; empty when metrics are off.
  [[nodiscard]] obs::MetricsSnapshot metrics() const;

  /// Cost of the constructor's from-scratch convergence (epoch 0); the
  /// baseline the per-batch repair costs are compared against, and part
  /// of the counters' parity equation (live.relaxations ==
  /// initial_stats().relaxations + sum of ApplyResult relaxations).
  /// All-zero after open(): a warm restart pays no up-front relaxation.
  [[nodiscard]] const RepairStats& initial_stats() const noexcept {
    return initial_stats_;
  }

 private:
  struct RecoveryTag {};
  Service(RecoveryTag, CheckpointData&& ckpt, const ServiceOptions& options,
          const DurabilityOptions& durability);

  // Registry lanes: every slot is single-writer (obs::Registry::add is a
  // plain load+store). Writer thread owns 0; the (one-at-a-time,
  // spawn/joined) watchdog owns 1; ingest producers own 2, serialized by
  // the Ingestor's queue mutex.
  static constexpr unsigned kWriterSlot = 0;
  static constexpr unsigned kWatchdogSlot = 1;
  static constexpr unsigned kIngressSlot = 2;

  void setup_metrics();
  void publish();
  /// Watchdog body: publish the current (mid-repair) estimate table as a
  /// provisional snapshot for the pending epoch.
  void publish_provisional();
  /// Run engine_.repair() under the provisional watchdog; returns the
  /// stats and fills `provisional_publishes`.
  RepairStats repair_with_watchdog(std::uint64_t& provisional_publishes);
  /// Current topology as a canonical sorted edge list (u < v).
  [[nodiscard]] std::vector<graph::Edge> collect_edges() const;
  /// Sync the WAL and write a checkpoint for the last published epoch.
  void write_checkpoint_now();

  ServiceOptions options_;
  DurabilityOptions durability_;
  LiveGraph graph_;
  RepairEngine engine_;
  RepairStats initial_stats_;

  mutable std::mutex snapshot_mutex_;
  std::shared_ptr<const Snapshot> snapshot_;  // guarded by snapshot_mutex_
  std::uint64_t epoch_ = 0;  // written only by the writer thread

  // Durability (writer-thread only)
  util::Storage* storage_ = nullptr;  // set iff durable
  std::optional<Wal> wal_;
  std::uint64_t batches_since_checkpoint_ = 0;
  bool replaying_ = false;  // recovery replay: no re-append, no checkpoints

  // Watchdog handshake (writer spawns/joins one watchdog per apply)
  std::mutex watchdog_mutex_;
  std::condition_variable watchdog_cv_;
  bool repair_done_ = false;  // guarded by watchdog_mutex_

  // live.* telemetry (lanes: see slot constants above)
  std::unique_ptr<obs::Registry> registry_;
  obs::Counter c_repairs_;
  obs::Counter c_epochs_;
  obs::Counter c_relaxations_;
  obs::Counter c_seeded_;
  obs::Counter c_raised_;
  obs::Counter c_rejected_;
  obs::Counter c_wal_batches_;
  obs::Counter c_wal_bytes_;
  obs::Counter c_checkpoints_;
  obs::Counter c_checkpoint_failures_;
  obs::Counter c_provisional_;
  obs::Counter c_overload_;
};

}  // namespace kcore::live
