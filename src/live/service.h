// live::Service — the live graph service: streaming edge churn with
// incremental async repair and consistent-snapshot queries.
//
// Consistency contract:
//  * One writer thread calls apply(); any number of reader threads call
//    query() concurrently with it and with each other.
//  * query() returns the last PUBLISHED snapshot: an immutable coreness
//    table + topology version that the quiescence detector confirmed
//    exact for that topology. Publication happens only after repair()
//    returns (detector-confirmed fixed point), so no query ever observes
//    a half-repaired table — readers see epoch e's exact coreness or
//    epoch e+1's exact coreness, never a mix.
//  * Every apply() publishes exactly ONE new epoch (even for an empty or
//    fully-ignored batch), so epoch numbers count apply() calls and the
//    `live.epoch_publishes` counter equals applies + 1 (the initial
//    convergence publishes epoch 0).
//
// Update semantics per batch (identical to DynamicKCore::apply_batch, so
// the simulator and async paths replay identical streams):
//  * out-of-range node ids are REJECTED (counted, not applied — a live
//    feed's garbage must not take the service down);
//  * self-loops, duplicate inserts, absent removes and insert+remove
//    churn within one batch are IGNORED (only the net topology effect is
//    applied);
//  * net insertions are applied before net deletions, each insertion
//    raising its K-subcore candidate region (see live/repair.h), then
//    one relaxation run re-converges the whole batch.
//
// Metric glossary (enabled via ServiceOptions::metrics in KCORE_OBS
// builds; all counters are exposed through metrics() and must equal the
// sums over the returned ApplyResults — the parity test pins this):
//   live.repairs          repair runs that actually relaxed something
//   live.epoch_publishes  snapshots published (applies + 1)
//   live.relaxations      vertex recomputations across all repairs
//   live.seeded_nodes     nodes seeded dirty (localized region size)
//   live.raised_nodes     estimates raised by the insertion rule
//   live.rejected_updates out-of-range updates dropped
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "core/run_options.h"
#include "graph/edge_list.h"
#include "graph/graph.h"
#include "live/live_graph.h"
#include "live/repair.h"
#include "live/update_log.h"
#include "obs/metrics.h"

namespace kcore::live {

struct ServiceOptions {
  unsigned threads = 0;  // repair width; 0 = hardware concurrency
  core::SchedPolicy sched = core::SchedPolicy::kBound;
  bool targeted_send = true;
  /// Keep a live.* metric registry (no-op unless the build has
  /// KCORE_OBS=ON; see metrics_enabled()).
  bool metrics = false;
};

/// What query() hands out: immutable, shared, detector-confirmed exact.
struct Snapshot {
  std::uint64_t epoch = 0;             // publish count (0 = initial)
  std::uint64_t topology_version = 0;  // LiveGraph mutations folded in
  graph::NodeId num_nodes = 0;
  std::uint64_t num_edges = 0;
  std::vector<graph::NodeId> coreness;
};

/// One apply() call's outcome (the live path's "extras").
struct ApplyResult {
  std::uint64_t epoch = 0;  // the epoch this batch published
  std::uint64_t applied_inserts = 0;   // net edges added
  std::uint64_t applied_removes = 0;   // net edges removed
  std::uint64_t ignored_updates = 0;   // self-loops + net no-ops
  std::uint64_t rejected_updates = 0;  // out-of-range node ids
  RepairStats repair;
};

class Service {
 public:
  explicit Service(const graph::Graph& initial,
                   const ServiceOptions& options = {});

  /// The last quiescent snapshot (never null). Thread-safe; concurrent
  /// with apply().
  [[nodiscard]] std::shared_ptr<const Snapshot> query() const;

  /// Apply one batch: mutate topology, repair incrementally, publish a
  /// new epoch. Single-writer.
  ApplyResult apply(std::span<const graph::EdgeUpdate> batch);

  /// Apply every batch of a log in order; returns one result per batch.
  std::vector<ApplyResult> replay(const UpdateLog& log);

  /// Writer-side view of the current topology (do not call concurrently
  /// with apply()).
  [[nodiscard]] const LiveGraph& graph() const noexcept { return graph_; }

  [[nodiscard]] unsigned workers() const noexcept { return engine_.workers(); }
  [[nodiscard]] std::uint64_t epoch() const;

  /// True when the build compiled the obs layer in AND options.metrics
  /// asked for the registry.
  [[nodiscard]] bool metrics_enabled() const noexcept {
    return registry_ != nullptr;
  }
  /// Snapshot of the live.* counters; empty when metrics are off.
  [[nodiscard]] obs::MetricsSnapshot metrics() const;

  /// Cost of the constructor's from-scratch convergence (epoch 0); the
  /// baseline the per-batch repair costs are compared against, and part
  /// of the counters' parity equation (live.relaxations ==
  /// initial_stats().relaxations + sum of ApplyResult relaxations).
  [[nodiscard]] const RepairStats& initial_stats() const noexcept {
    return initial_stats_;
  }

 private:
  void publish();

  ServiceOptions options_;
  LiveGraph graph_;
  RepairEngine engine_;
  RepairStats initial_stats_;

  mutable std::mutex snapshot_mutex_;
  std::shared_ptr<const Snapshot> snapshot_;  // guarded by snapshot_mutex_
  std::uint64_t epoch_ = 0;  // written only by the writer thread

  // live.* telemetry (writer-thread only; registry worker slot 0)
  std::unique_ptr<obs::Registry> registry_;
  obs::Counter c_repairs_;
  obs::Counter c_epochs_;
  obs::Counter c_relaxations_;
  obs::Counter c_seeded_;
  obs::Counter c_raised_;
  obs::Counter c_rejected_;
};

}  // namespace kcore::live
