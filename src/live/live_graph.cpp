#include "live/live_graph.h"

#include <algorithm>

namespace kcore::live {

using graph::NodeId;

LiveGraph::LiveGraph(const graph::Graph& initial)
    : adjacency_(initial.num_nodes()), num_edges_(initial.num_edges()) {
  for (NodeId u = 0; u < initial.num_nodes(); ++u) {
    const auto nbrs = initial.neighbors(u);
    adjacency_[u].assign(nbrs.begin(), nbrs.end());
  }
}

bool LiveGraph::has_edge(NodeId u, NodeId v) const {
  const auto& a = adjacency_[u];
  return std::binary_search(a.begin(), a.end(), v);
}

bool LiveGraph::apply(const graph::EdgeUpdate& update) {
  const NodeId u = update.u;
  const NodeId v = update.v;
  if (u == v) return false;
  const bool present = has_edge(u, v);
  if (update.op == graph::EdgeOp::kInsert) {
    if (present) return false;
    auto insert_sorted = [](std::vector<NodeId>& a, NodeId x) {
      a.insert(std::upper_bound(a.begin(), a.end(), x), x);
    };
    insert_sorted(adjacency_[u], v);
    insert_sorted(adjacency_[v], u);
    ++num_edges_;
  } else {
    if (!present) return false;
    auto erase_sorted = [](std::vector<NodeId>& a, NodeId x) {
      a.erase(std::lower_bound(a.begin(), a.end(), x));
    };
    erase_sorted(adjacency_[u], v);
    erase_sorted(adjacency_[v], u);
    --num_edges_;
  }
  ++version_;
  return true;
}

graph::Graph LiveGraph::snapshot() const {
  graph::GraphBuilder b(num_nodes());
  for (NodeId u = 0; u < num_nodes(); ++u) {
    for (const NodeId v : adjacency_[u]) {
      if (u < v) b.add_edge(u, v);
    }
  }
  return b.build();
}

}  // namespace kcore::live
