// The live service's mutable topology: per-node sorted adjacency with
// O(log d) membership and O(d) insert/remove, built from an immutable
// graph::Graph and mutated in place by the single writer.
//
// Thread contract: apply() is single-writer. The repair workers
// (live/repair.cpp) read neighbors() concurrently with EACH OTHER but
// never concurrently with apply() — the service's apply cycle is
// strictly "mutate topology, then run repair workers, then publish", and
// the writer's thread spawn/join gives the needed happens-before edges.
// Snapshot readers never touch this structure at all (they read the
// published immutable live::Snapshot).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/edge_list.h"
#include "graph/graph.h"

namespace kcore::live {

class LiveGraph {
 public:
  explicit LiveGraph(const graph::Graph& initial);

  [[nodiscard]] graph::NodeId num_nodes() const noexcept {
    return static_cast<graph::NodeId>(adjacency_.size());
  }
  [[nodiscard]] std::uint64_t num_edges() const noexcept { return num_edges_; }
  [[nodiscard]] graph::NodeId degree(graph::NodeId u) const {
    return static_cast<graph::NodeId>(adjacency_[u].size());
  }
  [[nodiscard]] std::span<const graph::NodeId> neighbors(
      graph::NodeId u) const {
    return adjacency_[u];
  }
  [[nodiscard]] bool has_edge(graph::NodeId u, graph::NodeId v) const;

  /// Apply one update; returns whether the topology changed (false for a
  /// duplicate insert, an absent remove, or a self-loop). Out-of-range
  /// node ids are the caller's job to reject (live::Service counts them
  /// as rejected before they reach this point).
  bool apply(const graph::EdgeUpdate& update);

  /// Count of topology-changing apply() calls since construction; folded
  /// into every published Snapshot as its topology_version.
  [[nodiscard]] std::uint64_t version() const noexcept { return version_; }

  /// Materialize the current topology as an immutable Graph (O(N+M));
  /// used by tests and the bench to cross-check against from-scratch
  /// decompositions.
  [[nodiscard]] graph::Graph snapshot() const;

 private:
  std::vector<std::vector<graph::NodeId>> adjacency_;  // sorted per node
  std::uint64_t num_edges_ = 0;
  std::uint64_t version_ = 0;
};

}  // namespace kcore::live
