// The live service's replayable input: an append-only log of edge
// updates grouped into batches, each batch the unit of one apply/repair/
// publish cycle. Built either programmatically (append + seal) or from a
// timestamped edge stream (graph::read_edge_stream + batch_by_window),
// and consumed identically by the async path (live::Service::replay) and
// the synchronous simulator path (core::DynamicKCore::apply_batch) — the
// shared graph::EdgeUpdate type is what keeps the two replays identical.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "graph/edge_list.h"

namespace kcore::live {

class UpdateLog {
 public:
  /// Append one update to the open (unsealed) batch.
  void append(const graph::EdgeUpdate& update) { open_.push_back(update); }

  /// Close the open batch; a no-op when it is empty.
  void seal();

  /// Append a whole batch (seals any open updates first so ordering is
  /// preserved).
  void append_batch(std::vector<graph::EdgeUpdate> batch);

  /// Build a log from a timestamped stream, one batch per `window` ticks
  /// (window 0: one batch per distinct timestamp — see
  /// graph::batch_by_window).
  [[nodiscard]] static UpdateLog from_stream(const graph::EdgeStream& stream,
                                             std::uint64_t window);

  [[nodiscard]] std::size_t num_batches() const noexcept {
    return batches_.size();
  }
  [[nodiscard]] std::span<const graph::EdgeUpdate> batch(std::size_t i) const {
    return batches_[i];
  }
  /// Total updates across sealed batches.
  [[nodiscard]] std::uint64_t num_updates() const noexcept;

 private:
  std::vector<std::vector<graph::EdgeUpdate>> batches_;
  std::vector<graph::EdgeUpdate> open_;
};

}  // namespace kcore::live
