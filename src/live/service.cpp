#include "live/service.h"

#include <algorithm>
#include <chrono>
#include <map>
#include <thread>
#include <utility>

#include "obs/options.h"

namespace kcore::live {

using graph::NodeId;

namespace {

util::Storage& resolve_storage(const DurabilityOptions& durability) {
  return durability.storage != nullptr ? *durability.storage
                                       : util::real_storage();
}

std::string wal_path_of(const std::string& dir) { return dir + "/wal.log"; }

WalOptions wal_options_of(const DurabilityOptions& durability) {
  return WalOptions{durability.fsync, durability.fsync_every};
}

}  // namespace

Service::Service(const graph::Graph& initial, const ServiceOptions& options)
    : options_(options),
      graph_(initial),
      engine_(graph_, RepairOptions{options.threads, options.sched,
                                    options.targeted_send}) {
  setup_metrics();
  initial_stats_ = engine_.initialize();
  if (registry_) {
    registry_->add(c_repairs_, kWriterSlot, 1);
    registry_->add(c_relaxations_, kWriterSlot, initial_stats_.relaxations);
    registry_->add(c_seeded_, kWriterSlot, initial_stats_.seeded);
  }
  publish();  // epoch 0: the initial converged table
}

Service::Service(const graph::Graph& initial, const ServiceOptions& options,
                 const DurabilityOptions& durability)
    : options_(options),
      durability_(durability),
      graph_(initial),
      engine_(graph_, RepairOptions{options.threads, options.sched,
                                    options.targeted_send}) {
  KCORE_CHECK_MSG(!durability.dir.empty(),
                  "DurabilityOptions::dir must be set for a durable Service");
  storage_ = &resolve_storage(durability);
  storage_->make_dir(durability_.dir);
  // Refuse to start fresh over existing state: silently re-initializing
  // would orphan a recoverable history. The operator either recovers
  // (Service::open / --recover) or points at an empty directory.
  for (const std::string& name : storage_->list_dir(durability_.dir)) {
    if (name == "wal.log" || name.find("checkpoint") == 0) {
      throw util::IoError(durability_.dir + ": already contains service state (" +
                          name +
                          ") — recover it with --recover, or use an empty "
                          "directory for a fresh service");
    }
  }

  setup_metrics();
  initial_stats_ = engine_.initialize();
  if (registry_) {
    registry_->add(c_repairs_, kWriterSlot, 1);
    registry_->add(c_relaxations_, kWriterSlot, initial_stats_.relaxations);
    registry_->add(c_seeded_, kWriterSlot, initial_stats_.seeded);
  }
  publish();  // epoch 0
  // WAL first (its epoch mark pins the base), then the initial
  // checkpoint pointing at the WAL's durable end. A crash between the
  // two leaves wal.log without a checkpoint, which open() reports as
  // unrecoverable-with-reason — the operator re-creates the fresh dir.
  wal_.emplace(Wal::create(*storage_, wal_path_of(durability_.dir),
                           /*epoch=*/0, wal_options_of(durability_)));
  write_checkpoint_now();
}

Service::Service(RecoveryTag, CheckpointData&& ckpt,
                 const ServiceOptions& options,
                 const DurabilityOptions& durability)
    : options_(options),
      durability_(durability),
      graph_(graph::Graph::from_edges(ckpt.num_nodes, ckpt.edges)),
      engine_(graph_, RepairOptions{options.threads, options.sched,
                                    options.targeted_send}) {
  storage_ = &resolve_storage(durability);
  setup_metrics();
  // The checkpointed table is exact for the checkpointed topology, so
  // recovery pays ZERO up-front relaxations (vs initialize()'s full
  // convergence) — the paper's warm-restart argument, in one call.
  engine_.warm_start(ckpt.coreness);
  initial_stats_ = RepairStats{};
  epoch_ = ckpt.epoch;
  publish();  // re-publish the checkpointed epoch verbatim
}

Service::~Service() = default;

std::unique_ptr<Service> Service::open(const ServiceOptions& options,
                                       const DurabilityOptions& durability,
                                       RecoveryInfo* info) {
  if (durability.dir.empty()) {
    throw util::IoError(
        "recovery requires a state directory (DurabilityOptions::dir)");
  }
  util::Storage& storage = resolve_storage(durability);
  const std::string& dir = durability.dir;
  if (!storage.exists(dir)) {
    throw util::IoError(dir + ": state directory does not exist");
  }

  RecoveryInfo local_info;
  RecoveryInfo& ri = info != nullptr ? *info : local_info;

  CheckpointLoadResult loaded = load_latest_checkpoint(storage, dir);
  ri.rejected_checkpoints = loaded.rejected;
  const std::string wal_path = wal_path_of(dir);
  if (!loaded.data.has_value()) {
    std::string msg = dir + ": no valid checkpoint to recover from";
    for (const std::string& r : loaded.rejected) msg += "; " + r;
    if (storage.exists(wal_path)) {
      msg += "; wal.log is present but a WAL alone has no base topology";
    }
    msg += " — start a fresh durable service to create one";
    throw util::IoError(msg);
  }
  CheckpointData ckpt = std::move(*loaded.data);
  ri.checkpoint_file = loaded.file;
  ri.checkpoint_epoch = ckpt.epoch;

  // Scan the WAL (from 0: validates the epoch mark, so a foreign or
  // mismatched log is refused instead of replayed onto the wrong base).
  std::vector<WalBatch> tail;
  const bool have_wal = storage.exists(wal_path);
  if (have_wal) {
    WalReadResult scan = Wal::read(storage, wal_path, 0);
    if (!scan.has_start_mark) {
      throw util::IoError(wal_path +
                          ": missing epoch mark at offset 0 — not a WAL this "
                          "service wrote (or its head is corrupt)");
    }
    if (scan.start_epoch > ckpt.epoch) {
      throw util::IoError(
          wal_path + ": WAL base epoch " + std::to_string(scan.start_epoch) +
          " is newer than checkpoint epoch " + std::to_string(ckpt.epoch) +
          " — mismatched state files in " + dir);
    }
    if (ckpt.wal_offset > scan.valid_end) {
      throw util::IoError(
          wal_path + ": checkpoint references WAL offset " +
          std::to_string(ckpt.wal_offset) + " but only " +
          std::to_string(scan.valid_end) +
          " bytes are valid — the WAL lost synced data (state inconsistent)");
    }
    ri.torn_bytes_truncated = scan.torn_bytes;
    for (WalBatch& b : scan.batches) {
      if (b.epoch > ckpt.epoch) tail.push_back(std::move(b));
    }
  }

  std::unique_ptr<Service> service(
      new Service(RecoveryTag{}, std::move(ckpt), options, durability));

  if (have_wal) {
    service->wal_.emplace(Wal::open(storage, wal_path,
                                    wal_options_of(durability), nullptr));
  } else {
    // Checkpoint-only directory (WAL lost or deleted): the checkpoint is
    // a complete state, so recover from it and start a fresh log.
    service->wal_.emplace(Wal::create(storage, wal_path, ri.checkpoint_epoch,
                                      wal_options_of(durability)));
  }

  // Replay the tail through the normal apply() path — idempotent by
  // epoch: duplicates (a retried append after a transient I/O error)
  // are skipped, gaps are refused.
  service->replaying_ = true;
  for (const WalBatch& b : tail) {
    if (b.epoch < service->epoch_) {
      ++ri.skipped_duplicate_batches;
      continue;
    }
    if (b.epoch > service->epoch_) {
      service->replaying_ = false;
      throw util::IoError(wal_path + ": WAL epoch gap — expected a record for epoch " +
                          std::to_string(service->epoch_) + ", found epoch " +
                          std::to_string(b.epoch) +
                          " (records lost between checkpoints?)");
    }
    ApplyResult r = service->apply(b.updates);
    ++ri.replayed_batches;
    ri.replay_relaxations += r.repair.relaxations;
  }
  service->replaying_ = false;
  service->batches_since_checkpoint_ = ri.replayed_batches;
  if (durability.checkpoint_every > 0 &&
      service->batches_since_checkpoint_ >= durability.checkpoint_every) {
    service->write_checkpoint_now();
  }
  ri.recovered_epoch = service->epoch_ - 1;
  return service;
}

void Service::setup_metrics() {
  if (!(obs::kEnabled && options_.metrics)) return;
  // Three single-writer lanes — see the slot constants in service.h.
  registry_ = std::make_unique<obs::Registry>(3);
  c_repairs_ = registry_->counter("live.repairs");
  c_epochs_ = registry_->counter("live.epoch_publishes");
  c_relaxations_ = registry_->counter("live.relaxations");
  c_seeded_ = registry_->counter("live.seeded_nodes");
  c_raised_ = registry_->counter("live.raised_nodes");
  c_rejected_ = registry_->counter("live.rejected_updates");
  c_wal_batches_ = registry_->counter("live.wal_batches");
  c_wal_bytes_ = registry_->counter("live.wal_bytes");
  c_checkpoints_ = registry_->counter("live.checkpoints");
  c_checkpoint_failures_ = registry_->counter("live.checkpoint_failures");
  c_provisional_ = registry_->counter("live.provisional_publishes");
  c_overload_ = registry_->counter("live.overload_rejects");
}

std::shared_ptr<const Snapshot> Service::query() const {
  const std::lock_guard<std::mutex> lock(snapshot_mutex_);
  return snapshot_;
}

std::uint64_t Service::epoch() const { return query()->epoch; }

void Service::publish() {
  auto snapshot = std::make_shared<Snapshot>();
  snapshot->epoch = epoch_;
  snapshot->topology_version = graph_.version();
  snapshot->num_nodes = graph_.num_nodes();
  snapshot->num_edges = graph_.num_edges();
  engine_.copy_coreness(snapshot->coreness);
  {
    const std::lock_guard<std::mutex> lock(snapshot_mutex_);
    snapshot_ = std::move(snapshot);
  }
  ++epoch_;
  if (registry_) registry_->add(c_epochs_, kWriterSlot, 1);
}

void Service::publish_provisional() {
  // Mid-repair: the estimate table is a sound upper bound (raises are
  // done before workers start; relaxation only moves estimates DOWN), so
  // handing it out keeps readers fresh without breaking Theorem 1.
  auto snapshot = std::make_shared<Snapshot>();
  snapshot->epoch = epoch_;  // the PENDING epoch; finalized by publish()
  snapshot->topology_version = graph_.version();
  snapshot->num_nodes = graph_.num_nodes();
  snapshot->num_edges = graph_.num_edges();
  snapshot->provisional = true;
  engine_.copy_coreness(snapshot->coreness);
  {
    const std::lock_guard<std::mutex> lock(snapshot_mutex_);
    snapshot_ = std::move(snapshot);
  }
  if (registry_) registry_->add(c_provisional_, kWatchdogSlot, 1);
}

RepairStats Service::repair_with_watchdog(
    std::uint64_t& provisional_publishes) {
  provisional_publishes = 0;
  if (options_.provisional_deadline_ms == 0) return engine_.repair();

  repair_done_ = false;
  std::uint64_t published = 0;
  std::thread watchdog([this, &published] {
    const auto deadline =
        std::chrono::milliseconds(options_.provisional_deadline_ms);
    std::unique_lock<std::mutex> lock(watchdog_mutex_);
    while (!repair_done_) {
      if (watchdog_cv_.wait_for(lock, deadline,
                                [this] { return repair_done_; })) {
        break;
      }
      // Still repairing past the deadline: push a provisional snapshot.
      // Holding watchdog_mutex_ here means the writer cannot set
      // repair_done_ (let alone publish the final epoch) while a
      // provisional publish is in flight — the final publish always
      // lands last.
      publish_provisional();
      ++published;
    }
  });
  RepairStats stats = engine_.repair();
  {
    const std::lock_guard<std::mutex> lock(watchdog_mutex_);
    repair_done_ = true;
  }
  watchdog_cv_.notify_one();
  watchdog.join();
  provisional_publishes = published;
  return stats;
}

ApplyResult Service::apply(std::span<const graph::EdgeUpdate> batch) {
  ApplyResult result;

  // WRITE-AHEAD: durable mode appends the raw batch (under the epoch it
  // will publish) before any mutation. An IoError here leaves the
  // service fully consistent at the previous epoch. Recovery replay
  // skips this — the records are already in the log.
  if (wal_ && !replaying_) {
    result.wal_bytes = wal_->append(
        WalBatch{epoch_, std::vector<graph::EdgeUpdate>(batch.begin(),
                                                        batch.end())});
  }

  // Net topology effect (same coalescing as DynamicKCore::apply_batch):
  // the LAST op per edge decides; transient churn inside the batch is
  // ignored. Out-of-range ids are rejected instead of KCORE_CHECK-ing —
  // a service survives garbage input.
  const NodeId n = graph_.num_nodes();
  std::map<std::pair<NodeId, NodeId>, bool> final_present;
  std::uint64_t valid = 0;
  for (const graph::EdgeUpdate& update : batch) {
    NodeId u = update.u;
    NodeId v = update.v;
    if (u >= n || v >= n) {
      ++result.rejected_updates;
      continue;
    }
    if (u == v) {
      ++result.ignored_updates;
      continue;
    }
    if (u > v) std::swap(u, v);
    final_present[{u, v}] = update.op == graph::EdgeOp::kInsert;
    ++valid;
  }

  // Insertions first: each raise runs against a table that is exact for
  // the graph-so-far, which keeps the raises (and therefore the single
  // repair below) exact — see live/repair.h.
  for (const auto& [edge, present] : final_present) {
    if (!present || graph_.has_edge(edge.first, edge.second)) continue;
    graph_.apply({graph::EdgeOp::kInsert, edge.first, edge.second});
    engine_.note_insert(edge.first, edge.second);
    ++result.applied_inserts;
  }
  for (const auto& [edge, present] : final_present) {
    if (present || !graph_.has_edge(edge.first, edge.second)) continue;
    graph_.apply({graph::EdgeOp::kRemove, edge.first, edge.second});
    engine_.note_remove(edge.first, edge.second);
    ++result.applied_removes;
  }
  result.ignored_updates +=
      valid - result.applied_inserts - result.applied_removes;

  result.repair = repair_with_watchdog(result.provisional_publishes);
  publish();
  result.epoch = epoch_ - 1;

  // Checkpoint cadence. A failed checkpoint degrades instead of
  // killing the apply: the WAL has the batch, the counter records the
  // failure, and the next apply retries (batches_since_checkpoint_ is
  // only reset on success). A CrashPoint (simulated power cut in
  // tests) is NOT caught — it must unwind like the real thing.
  if (wal_ && !replaying_) {
    ++batches_since_checkpoint_;
    if (durability_.checkpoint_every > 0 &&
        batches_since_checkpoint_ >= durability_.checkpoint_every) {
      try {
        write_checkpoint_now();
        result.checkpointed = true;
      } catch (const util::IoError&) {
        result.checkpoint_failed = true;
        if (registry_) registry_->add(c_checkpoint_failures_, kWriterSlot, 1);
      }
    }
  }

  if (registry_) {
    if (result.repair.seeded > 0) registry_->add(c_repairs_, kWriterSlot, 1);
    registry_->add(c_relaxations_, kWriterSlot, result.repair.relaxations);
    registry_->add(c_seeded_, kWriterSlot, result.repair.seeded);
    registry_->add(c_raised_, kWriterSlot, result.repair.raised);
    registry_->add(c_rejected_, kWriterSlot, result.rejected_updates);
    if (result.wal_bytes > 0) {
      registry_->add(c_wal_batches_, kWriterSlot, 1);
      registry_->add(c_wal_bytes_, kWriterSlot, result.wal_bytes);
    }
  }
  return result;
}

std::vector<ApplyResult> Service::replay(const UpdateLog& log) {
  std::vector<ApplyResult> results;
  results.reserve(log.num_batches());
  for (std::size_t i = 0; i < log.num_batches(); ++i) {
    results.push_back(apply(log.batch(i)));
  }
  return results;
}

std::vector<graph::Edge> Service::collect_edges() const {
  std::vector<graph::Edge> edges;
  edges.reserve(graph_.num_edges());
  const NodeId n = graph_.num_nodes();
  for (NodeId u = 0; u < n; ++u) {
    for (const NodeId v : graph_.neighbors(u)) {
      if (u < v) edges.push_back({u, v});
    }
  }
  return edges;
}

void Service::write_checkpoint_now() {
  KCORE_CHECK(wal_.has_value());
  // Barrier: the WAL must be durable up to the offset the checkpoint
  // records, or a crash could leave a checkpoint pointing past the log.
  wal_->sync();
  CheckpointData data;
  data.epoch = epoch_ - 1;  // last PUBLISHED epoch
  data.wal_offset = wal_->end_offset();
  data.num_nodes = graph_.num_nodes();
  data.edges = collect_edges();
  engine_.copy_coreness(data.coreness);
  write_checkpoint(*storage_, durability_.dir, data,
                   durability_.keep_checkpoints);
  batches_since_checkpoint_ = 0;
  if (registry_) registry_->add(c_checkpoints_, kWriterSlot, 1);
}

void Service::checkpoint() {
  KCORE_CHECK_MSG(wal_.has_value(),
                  "checkpoint() requires a durable Service (set "
                  "DurabilityOptions::dir)");
  write_checkpoint_now();
}

void Service::note_overload_reject(std::uint64_t n) {
  if (registry_) registry_->add(c_overload_, kIngressSlot, n);
}

obs::MetricsSnapshot Service::metrics() const {
  if (!registry_) return {};
  return registry_->snapshot();
}

}  // namespace kcore::live
