#include "live/service.h"

#include <algorithm>
#include <map>
#include <utility>

#include "obs/options.h"

namespace kcore::live {

using graph::NodeId;

Service::Service(const graph::Graph& initial, const ServiceOptions& options)
    : options_(options),
      graph_(initial),
      engine_(graph_, RepairOptions{options.threads, options.sched,
                                    options.targeted_send}) {
  if (obs::kEnabled && options_.metrics) {
    // One registry slot: every live.* add happens on the writer thread
    // (the repair workers' hot-path costs surface through RepairStats,
    // folded in after each run — same single-source-of-truth convention
    // as the async engine's post-run tally fold).
    registry_ = std::make_unique<obs::Registry>(1);
    c_repairs_ = registry_->counter("live.repairs");
    c_epochs_ = registry_->counter("live.epoch_publishes");
    c_relaxations_ = registry_->counter("live.relaxations");
    c_seeded_ = registry_->counter("live.seeded_nodes");
    c_raised_ = registry_->counter("live.raised_nodes");
    c_rejected_ = registry_->counter("live.rejected_updates");
  }
  initial_stats_ = engine_.initialize();
  if (registry_) {
    registry_->add(c_repairs_, 0, 1);
    registry_->add(c_relaxations_, 0, initial_stats_.relaxations);
    registry_->add(c_seeded_, 0, initial_stats_.seeded);
  }
  publish();  // epoch 0: the initial converged table
}

std::shared_ptr<const Snapshot> Service::query() const {
  const std::lock_guard<std::mutex> lock(snapshot_mutex_);
  return snapshot_;
}

std::uint64_t Service::epoch() const { return query()->epoch; }

void Service::publish() {
  auto snapshot = std::make_shared<Snapshot>();
  snapshot->epoch = epoch_;
  snapshot->topology_version = graph_.version();
  snapshot->num_nodes = graph_.num_nodes();
  snapshot->num_edges = graph_.num_edges();
  engine_.copy_coreness(snapshot->coreness);
  {
    const std::lock_guard<std::mutex> lock(snapshot_mutex_);
    snapshot_ = std::move(snapshot);
  }
  ++epoch_;
  if (registry_) registry_->add(c_epochs_, 0, 1);
}

ApplyResult Service::apply(std::span<const graph::EdgeUpdate> batch) {
  ApplyResult result;

  // Net topology effect (same coalescing as DynamicKCore::apply_batch):
  // the LAST op per edge decides; transient churn inside the batch is
  // ignored. Out-of-range ids are rejected instead of KCORE_CHECK-ing —
  // a service survives garbage input.
  const NodeId n = graph_.num_nodes();
  std::map<std::pair<NodeId, NodeId>, bool> final_present;
  std::uint64_t valid = 0;
  for (const graph::EdgeUpdate& update : batch) {
    NodeId u = update.u;
    NodeId v = update.v;
    if (u >= n || v >= n) {
      ++result.rejected_updates;
      continue;
    }
    if (u == v) {
      ++result.ignored_updates;
      continue;
    }
    if (u > v) std::swap(u, v);
    final_present[{u, v}] = update.op == graph::EdgeOp::kInsert;
    ++valid;
  }

  // Insertions first: each raise runs against a table that is exact for
  // the graph-so-far, which keeps the raises (and therefore the single
  // repair below) exact — see live/repair.h.
  for (const auto& [edge, present] : final_present) {
    if (!present || graph_.has_edge(edge.first, edge.second)) continue;
    graph_.apply({graph::EdgeOp::kInsert, edge.first, edge.second});
    engine_.note_insert(edge.first, edge.second);
    ++result.applied_inserts;
  }
  for (const auto& [edge, present] : final_present) {
    if (present || !graph_.has_edge(edge.first, edge.second)) continue;
    graph_.apply({graph::EdgeOp::kRemove, edge.first, edge.second});
    engine_.note_remove(edge.first, edge.second);
    ++result.applied_removes;
  }
  result.ignored_updates +=
      valid - result.applied_inserts - result.applied_removes;

  result.repair = engine_.repair();
  publish();
  result.epoch = epoch_ - 1;

  if (registry_) {
    if (result.repair.seeded > 0) registry_->add(c_repairs_, 0, 1);
    registry_->add(c_relaxations_, 0, result.repair.relaxations);
    registry_->add(c_seeded_, 0, result.repair.seeded);
    registry_->add(c_raised_, 0, result.repair.raised);
    registry_->add(c_rejected_, 0, result.rejected_updates);
  }
  return result;
}

std::vector<ApplyResult> Service::replay(const UpdateLog& log) {
  std::vector<ApplyResult> results;
  results.reserve(log.num_batches());
  for (std::size_t i = 0; i < log.num_batches(); ++i) {
    results.push_back(apply(log.batch(i)));
  }
  return results;
}

obs::MetricsSnapshot Service::metrics() const {
  if (!registry_) return {};
  return registry_->snapshot();
}

}  // namespace kcore::live
