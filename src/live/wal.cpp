#include "live/wal.h"

#include <utility>

#include "live/wire.h"
#include "util/check.h"
#include "util/crc32.h"

namespace kcore::live {
namespace {

constexpr std::uint8_t kTypeBatch = 1;
constexpr std::uint8_t kTypeEpochMark = 2;

// A record claiming a payload larger than this is corruption, not a big
// batch — refuse to allocate for it.
constexpr std::uint32_t kMaxPayload = 1u << 30;

std::string encode_frame(const std::string& payload) {
  std::string frame;
  frame.reserve(8 + payload.size());
  wire::put_u32(frame, static_cast<std::uint32_t>(payload.size()));
  wire::put_u32(frame, util::crc32(payload));
  frame.append(payload);
  return frame;
}

std::string encode_batch(const WalBatch& batch) {
  std::string payload;
  payload.reserve(1 + 8 + 4 + batch.updates.size() * 9);
  wire::put_u8(payload, kTypeBatch);
  wire::put_u64(payload, batch.epoch);
  wire::put_u32(payload, static_cast<std::uint32_t>(batch.updates.size()));
  for (const graph::EdgeUpdate& u : batch.updates) {
    wire::put_u8(payload, static_cast<std::uint8_t>(u.op));
    wire::put_u32(payload, u.u);
    wire::put_u32(payload, u.v);
  }
  return encode_frame(payload);
}

std::string encode_epoch_mark(std::uint64_t epoch) {
  std::string payload;
  wire::put_u8(payload, kTypeEpochMark);
  wire::put_u64(payload, epoch);
  return encode_frame(payload);
}

}  // namespace

const char* to_string(FsyncPolicy policy) noexcept {
  switch (policy) {
    case FsyncPolicy::kEveryBatch: return "every-batch";
    case FsyncPolicy::kEveryN: return "every-n";
    case FsyncPolicy::kNone: return "none";
  }
  return "every-batch";
}

FsyncPolicy parse_fsync_policy(const std::string& text) {
  if (text == "every-batch") return FsyncPolicy::kEveryBatch;
  if (text == "every-n") return FsyncPolicy::kEveryN;
  if (text == "none") return FsyncPolicy::kNone;
  throw util::IoError("unknown fsync policy '" + text +
                      "' (expected every-batch, every-n, or none)");
}

Wal::Wal(util::Storage& storage, std::string path, const WalOptions& options,
         std::uint64_t end)
    : storage_(&storage), path_(std::move(path)), options_(options),
      end_(end) {}

Wal Wal::create(util::Storage& storage, const std::string& path,
                std::uint64_t epoch, const WalOptions& options) {
  const std::string frame = encode_epoch_mark(epoch);
  storage.write_file(path, frame);
  storage.sync_file(path);
  return Wal(storage, path, options, frame.size());
}

Wal Wal::open(util::Storage& storage, const std::string& path,
              const WalOptions& options, std::uint64_t* torn_bytes_out) {
  WalReadResult scan = read(storage, path, 0);
  if (scan.torn_bytes > 0) {
    storage.truncate_file(path, scan.valid_end);
    storage.sync_file(path);
  }
  if (torn_bytes_out != nullptr) *torn_bytes_out = scan.torn_bytes;
  return Wal(storage, path, options, scan.valid_end);
}

WalReadResult Wal::read(util::Storage& storage, const std::string& path,
                        std::uint64_t offset) {
  const std::string content = storage.read_file(path);
  if (offset > content.size()) {
    throw util::IoError(path + ": checkpoint references WAL offset " +
                        std::to_string(offset) + " but the log is only " +
                        std::to_string(content.size()) +
                        " bytes — the state directory is inconsistent");
  }

  WalReadResult result;
  result.valid_end = offset;
  wire::Reader reader(
      std::string_view(content).substr(static_cast<std::size_t>(offset)));
  while (reader.remaining() > 0) {
    std::uint32_t len = 0;
    std::uint32_t crc = 0;
    std::string_view payload;
    if (!reader.get_u32(len) || len > kMaxPayload || !reader.get_u32(crc) ||
        !reader.get_bytes(len, payload) || util::crc32(payload) != crc) {
      break;  // torn tail: everything from valid_end on is discarded
    }
    wire::Reader body(payload);
    std::uint8_t type = 0;
    if (!body.get_u8(type)) break;
    if (type == kTypeEpochMark) {
      std::uint64_t epoch = 0;
      if (!body.get_u64(epoch)) break;
      if (result.valid_end == offset && offset == 0) {
        result.start_epoch = epoch;
        result.has_start_mark = true;
      }
    } else if (type == kTypeBatch) {
      WalBatch batch;
      std::uint32_t count = 0;
      if (!body.get_u64(batch.epoch) || !body.get_u32(count)) break;
      batch.updates.reserve(count);
      bool ok = true;
      for (std::uint32_t i = 0; i < count; ++i) {
        std::uint8_t op = 0;
        graph::EdgeUpdate u;
        if (!body.get_u8(op) || !body.get_u32(u.u) || !body.get_u32(u.v)) {
          ok = false;
          break;
        }
        u.op = static_cast<graph::EdgeOp>(op);
        batch.updates.push_back(u);
      }
      if (!ok) break;
      result.batches.push_back(std::move(batch));
    } else {
      break;  // unknown record type: treat as corruption, stop here
    }
    result.valid_end = offset + reader.pos();
  }
  result.torn_bytes = content.size() - result.valid_end;
  return result;
}

std::uint64_t Wal::append(const WalBatch& batch) {
  const std::string frame = encode_batch(batch);
  storage_->append_file(path_, frame);
  end_ += frame.size();
  switch (options_.fsync) {
    case FsyncPolicy::kEveryBatch:
      sync();
      break;
    case FsyncPolicy::kEveryN:
      if (++unsynced_appends_ >= options_.fsync_every) sync();
      break;
    case FsyncPolicy::kNone:
      break;
  }
  return frame.size();
}

void Wal::sync() {
  storage_->sync_file(path_);
  unsynced_appends_ = 0;
}

}  // namespace kcore::live
