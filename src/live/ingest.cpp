#include "live/ingest.h"

#include <utility>

namespace kcore::live {

Ingestor::Ingestor(Service& service, const IngestOptions& options)
    : service_(service), options_(options) {
  KCORE_CHECK_MSG(options_.queue_capacity > 0,
                  "IngestOptions::queue_capacity must be > 0");
  consumer_ = std::thread([this] { consume(); });
}

Ingestor::~Ingestor() {
  close();
  if (consumer_.joinable()) consumer_.join();
}

bool Ingestor::submit(std::vector<graph::EdgeUpdate> batch) {
  std::unique_lock<std::mutex> lock(mutex_);
  ++stats_.submitted;
  if (closed_) {
    ++stats_.rejected;
    service_.note_overload_reject();  // single-writer lane: serialized here
    return false;
  }
  if (queue_.size() >= options_.queue_capacity) {
    if (options_.policy == OverloadPolicy::kReject) {
      ++stats_.rejected;
      service_.note_overload_reject();
      return false;
    }
    not_full_.wait(lock, [this] {
      return closed_ || queue_.size() < options_.queue_capacity;
    });
    if (closed_) {
      ++stats_.rejected;
      service_.note_overload_reject();
      return false;
    }
  }
  queue_.push_back(std::move(batch));
  ++stats_.accepted;
  lock.unlock();
  not_empty_.notify_one();
  return true;
}

void Ingestor::close() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
  }
  not_empty_.notify_all();
  not_full_.notify_all();
}

void Ingestor::drain() {
  std::unique_lock<std::mutex> lock(mutex_);
  drained_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

IngestStats Ingestor::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

std::string Ingestor::last_error() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return last_error_;
}

void Ingestor::consume() {
  while (true) {
    std::vector<graph::EdgeUpdate> batch;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      not_empty_.wait(lock, [this] { return closed_ || !queue_.empty(); });
      if (queue_.empty()) return;  // closed and drained
      batch = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    not_full_.notify_one();
    // Apply OUTSIDE the lock: repair can be long, and producers must be
    // able to fill the freed slot (or get rejected) meanwhile. A WAL
    // IoError fails this batch only (the service stayed consistent —
    // see Service::apply) and the queue keeps draining; anything else
    // (CrashPoint included) is allowed to take the thread down.
    try {
      ApplyResult result = service_.apply(batch);
      const std::lock_guard<std::mutex> lock(mutex_);
      results_.push_back(result);
      ++stats_.applied;
      --in_flight_;
    } catch (const util::IoError& e) {
      const std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.io_errors;
      last_error_ = e.what();
      --in_flight_;
    }
    drained_.notify_all();
  }
}

}  // namespace kcore::live
