// Bounded, rate-controlled ingestion in front of live::Service.
//
// The service's apply() is single-writer and synchronous: a repair that
// takes longer than the arrival gap would make callers queue unboundedly
// (and an unbounded queue is just an out-of-memory crash on a delay).
// The Ingestor makes the overload policy EXPLICIT: producers submit()
// batches into a bounded queue; one consumer thread (the service's
// single writer) drains it through Service::apply(). When the queue is
// full the policy decides:
//   kBlock  — submit() waits for space (backpressure; nothing is lost);
//   kReject — submit() returns false immediately, and the drop is
//             counted (IngestStats::rejected and, when metrics are on,
//             live.overload_rejects) — load shedding you can alert on,
//             instead of latency creep you can't.
//
// Thread contract: any number of producer threads may call submit()
// concurrently; stats() and close()/drain() are thread-safe. ApplyResults
// are collected in submission order and readable via results() once the
// consumer is quiescent (after drain() or close()).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <thread>
#include <vector>

#include "graph/edge_list.h"
#include "live/service.h"

namespace kcore::live {

enum class OverloadPolicy : std::uint8_t {
  kBlock,   // backpressure: submit() waits for queue space
  kReject,  // load shedding: submit() fails fast, counted
};

struct IngestOptions {
  std::size_t queue_capacity = 64;  // max batches waiting; must be > 0
  OverloadPolicy policy = OverloadPolicy::kBlock;
};

struct IngestStats {
  std::uint64_t submitted = 0;  // submit() calls
  std::uint64_t accepted = 0;   // entered the queue
  std::uint64_t rejected = 0;   // turned away (kReject, queue full)
  std::uint64_t applied = 0;    // batches the consumer has applied
  /// Accepted batches whose apply() failed with util::IoError (WAL
  /// write failure). The service stayed consistent; the batch is gone.
  std::uint64_t io_errors = 0;
};

class Ingestor {
 public:
  /// The service must outlive the Ingestor. Spawns the consumer thread.
  Ingestor(Service& service, const IngestOptions& options = {});

  /// Joins the consumer (drains what was accepted first).
  ~Ingestor();

  Ingestor(const Ingestor&) = delete;
  Ingestor& operator=(const Ingestor&) = delete;

  /// Enqueue one batch. Returns false iff the batch was rejected
  /// (kReject policy, queue full) or the Ingestor is closed.
  bool submit(std::vector<graph::EdgeUpdate> batch);

  /// Stop accepting; the consumer finishes the accepted backlog.
  void close();

  /// Block until every accepted batch has been applied.
  void drain();

  [[nodiscard]] IngestStats stats() const;

  /// Message of the most recent apply() IoError ("" when none).
  [[nodiscard]] std::string last_error() const;

  /// ApplyResults in submission order. Only call when the consumer is
  /// quiescent (after drain() or close()+destruction ordering).
  [[nodiscard]] const std::vector<ApplyResult>& results() const {
    return results_;
  }

 private:
  void consume();

  Service& service_;
  IngestOptions options_;

  mutable std::mutex mutex_;
  std::condition_variable not_full_;   // producers wait (kBlock)
  std::condition_variable not_empty_;  // consumer waits
  std::condition_variable drained_;    // drain() waits
  std::deque<std::vector<graph::EdgeUpdate>> queue_;
  IngestStats stats_;
  bool closed_ = false;
  std::size_t in_flight_ = 0;  // popped but not yet applied

  std::string last_error_;  // guarded by mutex_

  std::vector<ApplyResult> results_;  // consumer-written; read when idle
  std::thread consumer_;
};

}  // namespace kcore::live
