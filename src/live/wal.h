// Append-only write-ahead log of update batches.
//
// The durability half of the live service's crash story: every batch is
// framed, checksummed, and appended to `wal.log` BEFORE the topology is
// mutated, so a crash at any point leaves either (a) no trace of the
// batch, or (b) a complete durable record that recovery replays through
// the exact same apply() semantics. A torn tail — the half-written
// record a power cut leaves behind — is detected by the length/CRC frame
// and truncated on open; everything before it is intact by construction.
//
// Record frame:   u32 payload_len | u32 crc32(payload) | payload
// Payload:        u8 type | type-specific body (all little-endian)
//   kEpochMark:   u64 epoch — written once at WAL creation, pinning the
//                 epoch the following batches build on. Recovery checks
//                 it against the checkpoint so a WAL can never be
//                 replayed onto the wrong base state.
//   kBatch:       u64 epoch | u32 count | count × (u8 op, u32 u, u32 v)
//                 — the RAW batch as submitted (coalescing happens in
//                 apply(), identically on live and replay paths).
//
// Fsync policy trades durability for throughput: kEveryBatch survives
// any crash with zero acknowledged loss; kEveryN bounds loss to the last
// N batches; kNone leaves flushing to the kernel (checkpoint barriers
// still sync, so checkpoints are never ahead of the durable WAL).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/edge_list.h"
#include "util/storage.h"

namespace kcore::live {

enum class FsyncPolicy : std::uint8_t {
  kEveryBatch,  // sync after every append — no acknowledged batch is lost
  kEveryN,      // sync every fsync_every appends — bounded loss window
  kNone,        // never sync on append — kernel decides; fastest
};

/// CLI spelling of a policy: "every-batch", "every-n", "none".
[[nodiscard]] const char* to_string(FsyncPolicy policy) noexcept;

/// Inverse of to_string. Throws util::IoError naming the bad value and
/// the accepted spellings (a CLI prints it verbatim).
[[nodiscard]] FsyncPolicy parse_fsync_policy(const std::string& text);

struct WalOptions {
  FsyncPolicy fsync = FsyncPolicy::kEveryBatch;
  unsigned fsync_every = 8;  // period for kEveryN
};

/// One durable batch record.
struct WalBatch {
  std::uint64_t epoch = 0;  // the epoch this batch publishes
  std::vector<graph::EdgeUpdate> updates;
};

/// Result of scanning a WAL file.
struct WalReadResult {
  std::vector<WalBatch> batches;
  /// Byte offset one past the last valid record.
  std::uint64_t valid_end = 0;
  /// Bytes after valid_end that failed framing/CRC — the torn tail.
  std::uint64_t torn_bytes = 0;
  /// Epoch of the leading kEpochMark (only meaningful when scanning
  /// from offset 0 of a well-formed WAL).
  std::uint64_t start_epoch = 0;
  bool has_start_mark = false;
};

class Wal {
 public:
  /// Create a fresh WAL at `path` holding a single epoch mark; synced
  /// before returning (creation is a durability barrier).
  static Wal create(util::Storage& storage, const std::string& path,
                    std::uint64_t epoch, const WalOptions& options);

  /// Open an existing WAL for append. Scans the whole file, truncates a
  /// torn tail (syncing the truncation), and positions appends after the
  /// last valid record. `torn_bytes_out`, if non-null, receives the
  /// number of bytes discarded.
  static Wal open(util::Storage& storage, const std::string& path,
                  const WalOptions& options,
                  std::uint64_t* torn_bytes_out = nullptr);

  /// Parse records starting at byte `offset`. Stops cleanly at the first
  /// torn/corrupt record (reported via torn_bytes). Throws util::IoError
  /// if `offset` lies beyond the end of the file — a checkpoint pointing
  /// past the durable WAL means the directory is inconsistent.
  static WalReadResult read(util::Storage& storage, const std::string& path,
                            std::uint64_t offset);

  Wal(Wal&&) = default;
  Wal& operator=(Wal&&) = default;

  /// Append one batch record and apply the fsync policy. Returns the
  /// record's encoded size in bytes.
  std::uint64_t append(const WalBatch& batch);

  /// Force a sync regardless of policy (checkpoint barrier).
  void sync();

  /// Logical end of the log — the offset the next record lands at, and
  /// what a checkpoint stores as its wal_offset (call sync() first).
  [[nodiscard]] std::uint64_t end_offset() const noexcept { return end_; }

  [[nodiscard]] const std::string& path() const noexcept { return path_; }

 private:
  Wal(util::Storage& storage, std::string path, const WalOptions& options,
      std::uint64_t end);

  util::Storage* storage_;
  std::string path_;
  WalOptions options_;
  std::uint64_t end_ = 0;
  unsigned unsynced_appends_ = 0;
};

}  // namespace kcore::live
