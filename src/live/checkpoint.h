// Atomic checkpoints of the live service's full state.
//
// A checkpoint is the recovery base: topology + coreness table + the
// epoch they are exact for + the WAL offset replay resumes from. The
// write is crash-atomic by construction — encode, write to
// `checkpoint.tmp`, fsync, rename to `checkpoint-<epoch>.ckpt` — so a
// crash mid-checkpoint leaves at worst a stale temp file and the
// previous checkpoint intact. Loading picks the NEWEST checkpoint whose
// CRC and structure validate, falling back per-file so one corrupt
// checkpoint never blocks recovery while an older good one exists.
//
// File format: u32 magic | u32 crc32(payload) | payload, with payload =
// u64 epoch | u64 wal_offset | u32 num_nodes | u64 num_edges |
// num_edges × (u32 u, u32 v) | num_nodes × (u32 coreness).
//
// Why persisting coreness is sound: the table is detector-confirmed
// EXACT for the checkpointed topology, and the paper's Theorems 1–2 let
// repair re-converge from any sound upper bound — so recovery warm-
// starts from this table and only pays relaxation for the WAL tail,
// never a from-scratch recompute.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "util/storage.h"

namespace kcore::live {

/// The state a checkpoint round-trips.
struct CheckpointData {
  std::uint64_t epoch = 0;       // last epoch published before the write
  std::uint64_t wal_offset = 0;  // durable WAL end at checkpoint time
  graph::NodeId num_nodes = 0;
  std::vector<graph::Edge> edges;        // canonical u < v, sorted
  std::vector<graph::NodeId> coreness;   // exact for this topology
};

/// Outcome of scanning a state directory for checkpoints.
struct CheckpointLoadResult {
  std::optional<CheckpointData> data;
  std::string file;  // the checkpoint that loaded (empty if none)
  /// One line per checkpoint file that existed but failed validation —
  /// surfaced in recovery diagnostics so silent corruption is visible.
  std::vector<std::string> rejected;
};

/// Write `data` atomically into `dir`, pruning all but the newest `keep`
/// checkpoints afterwards. Returns the final file path.
std::string write_checkpoint(util::Storage& storage, const std::string& dir,
                             const CheckpointData& data, unsigned keep);

/// Load the newest valid checkpoint in `dir` (empty result when the
/// directory holds none).
CheckpointLoadResult load_latest_checkpoint(util::Storage& storage,
                                            const std::string& dir);

}  // namespace kcore::live
