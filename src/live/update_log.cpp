#include "live/update_log.h"

#include <utility>

namespace kcore::live {

void UpdateLog::seal() {
  if (open_.empty()) return;
  batches_.push_back(std::move(open_));
  open_.clear();
}

void UpdateLog::append_batch(std::vector<graph::EdgeUpdate> batch) {
  seal();
  batches_.push_back(std::move(batch));
}

UpdateLog UpdateLog::from_stream(const graph::EdgeStream& stream,
                                 std::uint64_t window) {
  UpdateLog log;
  for (auto& batch : graph::batch_by_window(stream, window)) {
    log.append_batch(std::move(batch.updates));
  }
  return log;
}

std::uint64_t UpdateLog::num_updates() const noexcept {
  std::uint64_t total = 0;
  for (const auto& batch : batches_) total += batch.size();
  return total;
}

}  // namespace kcore::live
