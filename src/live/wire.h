// Little-endian wire encoding shared by the WAL and checkpoint formats.
//
// Explicit byte-at-a-time encoding (not memcpy-of-struct): durable files
// must mean the same thing regardless of host padding or endianness, and
// the decoder must treat every field read as potentially truncated — a
// torn tail is a NORMAL state for these readers, surfaced as a clean
// "out of bytes" signal rather than UB.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace kcore::live::wire {

inline void put_u8(std::string& out, std::uint8_t v) {
  out.push_back(static_cast<char>(v));
}

inline void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

inline void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

/// Bounds-checked cursor over an encoded buffer. Every get_* returns
/// false when the remaining bytes are too short — the caller decides
/// whether that is a torn tail (stop cleanly) or corruption (refuse).
class Reader {
 public:
  explicit Reader(std::string_view bytes) : bytes_(bytes) {}

  [[nodiscard]] bool get_u8(std::uint8_t& v) {
    if (pos_ + 1 > bytes_.size()) return false;
    v = static_cast<std::uint8_t>(bytes_[pos_++]);
    return true;
  }

  [[nodiscard]] bool get_u32(std::uint32_t& v) {
    if (pos_ + 4 > bytes_.size()) return false;
    v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(
               static_cast<unsigned char>(bytes_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 4;
    return true;
  }

  [[nodiscard]] bool get_u64(std::uint64_t& v) {
    if (pos_ + 8 > bytes_.size()) return false;
    v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(
               static_cast<unsigned char>(bytes_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 8;
    return true;
  }

  [[nodiscard]] bool get_bytes(std::size_t len, std::string_view& out) {
    if (pos_ + len > bytes_.size()) return false;
    out = bytes_.substr(pos_, len);
    pos_ += len;
    return true;
  }

  [[nodiscard]] std::size_t pos() const { return pos_; }
  [[nodiscard]] std::size_t remaining() const { return bytes_.size() - pos_; }

 private:
  std::string_view bytes_;
  std::size_t pos_ = 0;
};

}  // namespace kcore::live::wire
