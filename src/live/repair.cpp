#include "live/repair.h"

#include <algorithm>
#include <chrono>
#include <exception>
#include <mutex>
#include <thread>

#include "core/compute_index.h"
#include "par/engine.h"
#include "util/clock.h"

namespace kcore::live {

using core::SchedPolicy;
using graph::NodeId;
using Clock = util::SteadyClock;

RepairEngine::RepairEngine(const LiveGraph& graph,
                           const RepairOptions& options)
    : graph_(graph), options_(options) {
  const NodeId n = graph.num_nodes();
  workers_ = par::resolve_threads(options.threads);
  if (n > 0 && workers_ > n) workers_ = n;
  est_ = std::vector<std::atomic<NodeId>>(n);
  for (NodeId u = 0; u < n; ++u) {
    est_[u].store(graph.degree(u), std::memory_order_relaxed);
  }
  if (options_.sched == SchedPolicy::kDelta) {
    delta_ = std::vector<std::atomic<std::uint32_t>>(n);
    for (NodeId u = 0; u < n; ++u) {
      delta_[u].store(0, std::memory_order_relaxed);
    }
  }
  worklist_ = std::make_unique<par::AsyncWorklist>(n, workers_,
                                                   options_.sched);
  in_pending_.assign(n, 0);
  in_region_.assign(n, 0);
}

void RepairEngine::mark_pending(NodeId u) {
  if (in_pending_[u]) return;
  in_pending_[u] = 1;
  pending_.push_back(u);
}

RepairStats RepairEngine::initialize() {
  const NodeId n = graph_.num_nodes();
  for (NodeId u = 0; u < n; ++u) {
    est_[u].store(graph_.degree(u), std::memory_order_relaxed);
    mark_pending(u);
  }
  return repair();
}

void RepairEngine::warm_start(const std::vector<NodeId>& coreness) {
  KCORE_CHECK_MSG(coreness.size() == est_.size(),
                  "warm_start table size " << coreness.size()
                                           << " != node count " << est_.size());
  const NodeId n = graph_.num_nodes();
  for (NodeId u = 0; u < n; ++u) {
    est_[u].store(coreness[u], std::memory_order_relaxed);
  }
}

std::vector<NodeId> RepairEngine::subcore_region(NodeId u, NodeId v,
                                                 NodeId K) {
  // Mirrors core::DynamicKCore::subcore_region over the live adjacency
  // and the (currently exact, single-threaded) atomic table; see the
  // purecore-pruning argument there.
  auto est_of = [&](NodeId w) {
    return est_[w].load(std::memory_order_relaxed);
  };
  auto can_rise = [&](NodeId w) {
    if (est_of(w) != K) return false;
    NodeId cd = 0;
    for (const NodeId x : graph_.neighbors(w)) {
      if (est_of(x) >= K && ++cd > K) return true;
    }
    return false;
  };

  std::vector<NodeId> region;
  region_stack_.clear();
  for (const NodeId r : {u, v}) {
    if (!in_region_[r] && can_rise(r)) {
      in_region_[r] = 1;
      region_stack_.push_back(r);
    }
  }
  while (!region_stack_.empty()) {
    const NodeId w = region_stack_.back();
    region_stack_.pop_back();
    region.push_back(w);
    for (const NodeId x : graph_.neighbors(w)) {
      if (!in_region_[x] && can_rise(x)) {
        in_region_[x] = 1;
        region_stack_.push_back(x);
      }
    }
  }

  // Peel candidates lacking K+1 supporters among (estimate >= K+1) ∪
  // (still in region) down to the maximal fixpoint.
  bool changed = true;
  while (changed) {
    changed = false;
    std::size_t keep = 0;
    for (std::size_t i = 0; i < region.size(); ++i) {
      const NodeId w = region[i];
      NodeId support = 0;
      for (const NodeId x : graph_.neighbors(w)) {
        if (est_of(x) >= K + 1 || in_region_[x]) ++support;
      }
      if (support >= K + 1) {
        region[keep++] = w;
      } else {
        in_region_[w] = 0;
        changed = true;
      }
    }
    region.resize(keep);
  }
  for (const NodeId w : region) in_region_[w] = 0;
  return region;
}

void RepairEngine::note_insert(NodeId u, NodeId v) {
  const NodeId K = std::min(est_[u].load(std::memory_order_relaxed),
                            est_[v].load(std::memory_order_relaxed));
  const auto region = subcore_region(u, v, K);
  for (const NodeId w : region) {
    // The provable post-insertion upper bound; restores Theorem 2 safety
    // so the downward relaxation below is exact again.
    est_[w].store(std::min<NodeId>(K + 1, graph_.degree(w)),
                  std::memory_order_relaxed);
    mark_pending(w);
  }
  raised_pending_ += region.size();
  mark_pending(u);
  mark_pending(v);
}

void RepairEngine::note_remove(NodeId u, NodeId v) {
  mark_pending(u);
  mark_pending(v);
}

RepairStats RepairEngine::repair() {
  RepairStats stats;
  if (pending_.empty()) return stats;
  const auto start = Clock::now();

  par::AsyncWorklist& worklist = *worklist_;
  worklist.reset();
  for (std::size_t i = 0; i < pending_.size(); ++i) {
    const NodeId u = pending_[i];
    in_pending_[u] = 0;
    const std::uint32_t bucket =
        options_.sched == SchedPolicy::kBound
            ? par::bound_bucket(est_[u].load(std::memory_order_relaxed))
            : 0;
    worklist.seed(u, static_cast<unsigned>(i) % workers_, bucket);
  }
  stats.seeded = pending_.size();
  stats.raised = raised_pending_;
  pending_.clear();
  raised_pending_ = 0;

  const bool targeted = options_.targeted_send;
  const SchedPolicy sched = options_.sched;
  std::atomic<std::uint64_t> skipped_total{0};
  std::atomic<bool> abort{false};
  std::mutex error_mutex;
  std::exception_ptr first_error;

  // The bsp-async worker loop (par/async_engine.cpp) over the live
  // adjacency: acquire -> begin (clear-before-read) -> streamed refine ->
  // CAS-min publish -> targeted wakes -> finish-after-wakes. Identical
  // protocol, so every ordering claim pinned by the chk/TSan suites
  // carries over.
  auto worker_fn = [&](unsigned w) {
    try {
      core::IndexScratch scratch;
      std::uint64_t skipped = 0;
      unsigned idle_sweeps = 0;
      while (!worklist.done() && !abort.load(std::memory_order_relaxed)) {
        const std::uint32_t u = worklist.acquire(w);
        if (u == par::AsyncWorklist::kNone) {
          if (worklist.try_confirm()) break;
          if (++idle_sweeps < 64) {
            std::this_thread::yield();
          } else {
            std::this_thread::sleep_for(std::chrono::microseconds(50));
          }
          continue;
        }
        idle_sweeps = 0;
        worklist.begin(u);
        if (sched == SchedPolicy::kDelta) {
          delta_[u].store(0, std::memory_order_relaxed);
        }
        const NodeId stored = est_[u].load(std::memory_order_acquire);
        const std::span<const NodeId> nbrs = graph_.neighbors(u);
        // Deletions can leave the stored estimate ABOVE the live degree —
        // the one place the static-graph invariant behind refine()'s
        // skip-scan ("k never exceeds the degree") breaks. Clamp first:
        // coreness <= degree always, so min(stored, degree) is still a
        // safe upper bound and refine()'s contract holds again.
        const NodeId k = std::min<NodeId>(
            stored, static_cast<NodeId>(nbrs.size()));
        bool fast_path = false;
        const NodeId refined = scratch.refine(
            nbrs.size(), k,
            [&](std::size_t i) {
              return est_[nbrs[i]].load(std::memory_order_acquire);
            },
            fast_path);
        if (fast_path) ++skipped;
        if (refined < stored) {
          NodeId cur = est_[u].load(std::memory_order_relaxed);
          bool lowered = false;
          while (cur > refined) {
            if (est_[u].compare_exchange_weak(cur, refined,
                                              std::memory_order_acq_rel,
                                              std::memory_order_relaxed)) {
              lowered = true;
              break;
            }
          }
          if (lowered) {
            const std::uint32_t drop = stored - refined;
            const bool need_neighbor_estimate =
                targeted || sched == SchedPolicy::kBound;
            for (const NodeId v : graph_.neighbors(u)) {
              const NodeId ev = need_neighbor_estimate
                                    ? est_[v].load(std::memory_order_acquire)
                                    : 0;
              if (targeted && ev <= refined) continue;
              std::uint32_t bucket = 0;
              switch (sched) {
                case SchedPolicy::kLifo:
                  break;
                case SchedPolicy::kBound:
                  bucket = par::bound_bucket(ev);
                  break;
                case SchedPolicy::kDelta:
                  bucket = par::delta_bucket(
                      delta_[v].fetch_add(drop, std::memory_order_relaxed) +
                      drop);
                  break;
              }
              worklist.schedule(v, w, bucket);
            }
          }
        }
        worklist.finish();
      }
      skipped_total.fetch_add(skipped, std::memory_order_relaxed);
    } catch (...) {
      {
        const std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
      abort.store(true, std::memory_order_relaxed);
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(workers_ - 1);
  for (unsigned w = 1; w < workers_; ++w) pool.emplace_back(worker_fn, w);
  worker_fn(0);
  for (auto& thread : pool) thread.join();
  if (first_error) std::rethrow_exception(first_error);

  stats.relaxations = worklist.total_enqueues();
  stats.steals = worklist.total_steals();
  stats.pop_scans = worklist.total_pop_scans();
  stats.detector_passes = worklist.detector().passes();
  stats.skipped_recomputes = skipped_total.load(std::memory_order_relaxed);
  stats.repair_ms = util::ms_between(start, Clock::now());
  return stats;
}

void RepairEngine::copy_coreness(std::vector<NodeId>& out) const {
  const NodeId n = graph_.num_nodes();
  out.resize(n);
  for (NodeId u = 0; u < n; ++u) {
    out[u] = est_[u].load(std::memory_order_relaxed);
  }
}

}  // namespace kcore::live
