#include "graph/metrics.h"

#include <gtest/gtest.h>

#include "graph/generators.h"

namespace kcore::graph {
namespace {

namespace gen = kcore::graph::gen;

TEST(Triangles, KnownCounts) {
  EXPECT_EQ(triangle_count(gen::clique(3)), 1U);
  EXPECT_EQ(triangle_count(gen::clique(4)), 4U);
  EXPECT_EQ(triangle_count(gen::clique(6)), 20U);  // C(6,3)
  EXPECT_EQ(triangle_count(gen::chain(10)), 0U);
  EXPECT_EQ(triangle_count(gen::cycle(5)), 0U);
  EXPECT_EQ(triangle_count(gen::star(10)), 0U);
  EXPECT_EQ(triangle_count(gen::complete_bipartite(3, 4)), 0U);
  EXPECT_EQ(triangle_count(gen::grid(5, 5)), 0U);
}

TEST(Triangles, PerNodeInClique) {
  const auto tri = triangles_per_node(gen::clique(5));
  for (const auto t : tri) EXPECT_EQ(t, 6U);  // C(4,2)
}

TEST(Triangles, PerNodeSumsToThreeTimesTotal) {
  const Graph g = gen::erdos_renyi_gnm(150, 800, 3);
  const auto per_node = triangles_per_node(g);
  std::uint64_t sum = 0;
  for (const auto t : per_node) sum += t;
  EXPECT_EQ(sum, 3 * triangle_count(g));
}

TEST(Clustering, CliqueIsOne) {
  EXPECT_DOUBLE_EQ(average_clustering(gen::clique(8)), 1.0);
  EXPECT_DOUBLE_EQ(transitivity(gen::clique(8)), 1.0);
}

TEST(Clustering, TriangleFreeIsZero) {
  EXPECT_DOUBLE_EQ(average_clustering(gen::grid(6, 6)), 0.0);
  EXPECT_DOUBLE_EQ(transitivity(gen::complete_bipartite(4, 5)), 0.0);
}

TEST(Clustering, KiteValue) {
  // Triangle with one pendant: pendant has c=0, its attachment has
  // c = 1 / C(3,2) = 1/3, other corners have c = 1.
  GraphBuilder b(4);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(2, 0);
  b.add_edge(2, 3);
  const auto c = local_clustering(b.build());
  EXPECT_DOUBLE_EQ(c[0], 1.0);
  EXPECT_DOUBLE_EQ(c[1], 1.0);
  EXPECT_DOUBLE_EQ(c[2], 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(c[3], 0.0);
}

TEST(Clustering, AffiliationBeatsER) {
  // Collaboration models must cluster far more than ER at equal density —
  // this is the structural property the astroph profile relies on.
  const Graph social = gen::affiliation(400, 100, 2, 5);
  const Graph random_graph =
      gen::erdos_renyi_gnm(400, social.num_edges(), 5);
  EXPECT_GT(average_clustering(social),
            5.0 * average_clustering(random_graph));
}

TEST(Assortativity, RegularGraphDegenerate) {
  EXPECT_DOUBLE_EQ(degree_assortativity(gen::ring_lattice(30, 4)), 0.0);
}

TEST(Assortativity, StarIsMaximallyDisassortative) {
  EXPECT_NEAR(degree_assortativity(gen::star(20)), -1.0, 1e-9);
}

TEST(Assortativity, InMinusOneToOne) {
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    const double r =
        degree_assortativity(gen::barabasi_albert(300, 3, seed));
    EXPECT_GE(r, -1.0);
    EXPECT_LE(r, 1.0);
  }
}

TEST(DegreeHistogram, CountsMatch) {
  const auto histogram = degree_histogram(gen::star(6));
  ASSERT_EQ(histogram.size(), 6U);
  EXPECT_EQ(histogram[1], 5U);
  EXPECT_EQ(histogram[5], 1U);
  std::uint64_t total = 0;
  for (const auto c : histogram) total += c;
  EXPECT_EQ(total, 6U);
}

TEST(DegreeHistogram, EmptyGraph) {
  const auto histogram = degree_histogram(Graph{});
  ASSERT_EQ(histogram.size(), 1U);
  EXPECT_EQ(histogram[0], 0U);
}

}  // namespace
}  // namespace kcore::graph
