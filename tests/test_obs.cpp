// kcore::obs — the lock-free telemetry layer: exactly-once counter
// aggregation under concurrent writers, power-of-two histogram bucket
// boundaries, trace-ring drop accounting, Chrome-trace well-formedness,
// sampler timing semantics, and the end-to-end plumbing through
// RunOptions -> api::decompose -> DecomposeReport::telemetry.
//
// The engine-level tests are guarded on KCORE_OBS_ENABLED so the same
// file compiles (and the structural tests still run) in the
// -DKCORE_OBS=OFF CI leg.
#include <gtest/gtest.h>

#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdint>
#include <limits>
#include <numeric>
#include <sstream>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "api/api.h"
#include "api/report_json.h"
#include "api/session.h"
#include "graph/generators.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "obs/sampler.h"
#include "obs/trace.h"
#include "par/async_engine.h"
#include "seq/kcore_seq.h"

namespace kcore {
namespace {

// --- minimal JSON well-formedness checker ----------------------------------
// Enough of a parser to catch what hand-rolled emitters get wrong:
// unbalanced braces, bad commas, unescaped control characters / quotes.
// Returns true iff `s` is one valid JSON value.

class JsonChecker {
 public:
  explicit JsonChecker(std::string_view s) : s_(s) {}

  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{':
        return object();
      case '[':
        return array();
      case '"':
        return string();
      case 't':
        return literal("true");
      case 'f':
        return literal("false");
      case 'n':
        return literal("null");
      default:
        return number();
    }
  }

  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == '}') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == ']') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size()) {
      const char c = s_[pos_];
      if (static_cast<unsigned char>(c) < 0x20) return false;  // raw control
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) return false;
        const char e = s_[pos_];
        if (e == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (pos_ >= s_.size() || !std::isxdigit(
                    static_cast<unsigned char>(s_[pos_]))) {
              return false;
            }
          }
        } else if (std::string_view("\"\\/bfnrt").find(e) ==
                   std::string_view::npos) {
          return false;
        }
      }
      ++pos_;
    }
    return false;  // unterminated
  }

  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }

  bool literal(std::string_view lit) {
    if (s_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\n' || s_[pos_] == '\t' ||
            s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  [[nodiscard]] char peek() const {
    return pos_ < s_.size() ? s_[pos_] : '\0';
  }

  std::string_view s_;
  std::size_t pos_ = 0;
};

bool is_valid_json(std::string_view s) { return JsonChecker(s).valid(); }

TEST(JsonChecker, SelfTest) {
  EXPECT_TRUE(is_valid_json(R"({"a":[1,2.5,-3e4],"b":"x\n","c":null})"));
  EXPECT_FALSE(is_valid_json("{"));
  EXPECT_FALSE(is_valid_json("[1,]"));
  EXPECT_FALSE(is_valid_json("{\"a\" 1}"));
  EXPECT_FALSE(is_valid_json("\"raw\ncontrol\""));
}

// --- metrics: exactly-once aggregation --------------------------------------

TEST(ObsRegistry, ExactlyOnceAggregationUnderConcurrentWriters) {
  // Owner-vs-thieves shape: W writers hammer their own slots while a
  // "monitor" thread snapshots concurrently (the sampler's read path).
  // After the join the aggregate must be exact; the concurrent snapshots
  // must never exceed the final total (counters only grow).
  constexpr unsigned kWorkers = 4;
  constexpr std::uint64_t kPerWorker = 200000;
  obs::Registry registry(kWorkers);
  const obs::Counter counter = registry.counter("stress.ops");
  const obs::HistogramId hist = registry.histogram("stress.values");

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> max_seen{0};
  std::thread monitor([&] {
    while (!stop.load(std::memory_order_acquire)) {
      const auto snap = registry.snapshot();
      const std::uint64_t total = snap.value("stress.ops");
      std::uint64_t prev = max_seen.load(std::memory_order_relaxed);
      while (total > prev &&
             !max_seen.compare_exchange_weak(prev, total)) {
      }
    }
  });

  std::vector<std::thread> workers;
  for (unsigned w = 0; w < kWorkers; ++w) {
    workers.emplace_back([&, w] {
      for (std::uint64_t i = 0; i < kPerWorker; ++i) {
        registry.add(counter, w, 1);
        registry.observe(hist, w, i & 0xff);
      }
    });
  }
  for (auto& t : workers) t.join();
  stop.store(true, std::memory_order_release);
  monitor.join();

  const auto snap = registry.snapshot();
  EXPECT_EQ(snap.value("stress.ops"), kWorkers * kPerWorker);
  EXPECT_EQ(registry.total(counter), kWorkers * kPerWorker);
  EXPECT_LE(max_seen.load(), kWorkers * kPerWorker);
  const auto* h = snap.histogram("stress.values");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, kWorkers * kPerWorker);
  EXPECT_EQ(h->max, 0xffu);

  // reset() zeroes values but keeps names and handles.
  registry.reset();
  const auto zeroed = registry.snapshot();
  EXPECT_EQ(zeroed.value("stress.ops"), 0u);
  ASSERT_NE(zeroed.histogram("stress.values"), nullptr);
  EXPECT_EQ(zeroed.histogram("stress.values")->count, 0u);
}

TEST(ObsRegistry, NameRegistrationIsIdempotent) {
  obs::Registry registry(1);
  const obs::Counter a = registry.counter("same");
  const obs::Counter b = registry.counter("same");
  registry.add(a, 0, 3);
  registry.add(b, 0, 4);
  EXPECT_EQ(registry.snapshot().value("same"), 7u);
  EXPECT_EQ(registry.snapshot().counters.size(), 1u);
}

// --- histogram bucket boundaries --------------------------------------------

TEST(ObsHistogram, PowerOfTwoBucketBoundaries) {
  obs::Registry registry(1);
  const obs::HistogramId h = registry.histogram("h");
  // Bucket 0: zeros. Bucket i (i >= 1): bit_width(v) == i, i.e.
  // v in [2^(i-1), 2^i). Probe each boundary from both sides.
  registry.observe(h, 0, 0);  // bucket 0
  registry.observe(h, 0, 1);  // bucket 1: [1, 2)
  registry.observe(h, 0, 2);  // bucket 2: [2, 4)
  registry.observe(h, 0, 3);  // bucket 2
  registry.observe(h, 0, 4);  // bucket 3: [4, 8)
  registry.observe(h, 0, 7);  // bucket 3
  registry.observe(h, 0, 8);  // bucket 4: [8, 16)

  const obs::MetricsSnapshot metrics = registry.snapshot();
  const auto* snap = metrics.histogram("h");
  ASSERT_NE(snap, nullptr);
  EXPECT_EQ(snap->buckets[0], 1u);
  EXPECT_EQ(snap->buckets[1], 1u);
  EXPECT_EQ(snap->buckets[2], 2u);
  EXPECT_EQ(snap->buckets[3], 2u);
  EXPECT_EQ(snap->buckets[4], 1u);
  EXPECT_EQ(snap->count, 7u);
  EXPECT_EQ(snap->sum, 0u + 1 + 2 + 3 + 4 + 7 + 8);
  EXPECT_EQ(snap->max, 8u);
  EXPECT_EQ(obs::HistogramSnapshot::bucket_floor(0), 0u);
  EXPECT_EQ(obs::HistogramSnapshot::bucket_floor(1), 1u);
  EXPECT_EQ(obs::HistogramSnapshot::bucket_floor(4), 8u);
}

TEST(ObsHistogram, HugeValuesLandInOverflowBucket) {
  obs::Registry registry(1);
  const obs::HistogramId h = registry.histogram("h");
  registry.observe(h, 0, UINT64_MAX);
  registry.observe(h, 0, std::uint64_t{1} << 40);
  const obs::MetricsSnapshot metrics = registry.snapshot();
  const auto* snap = metrics.histogram("h");
  ASSERT_NE(snap, nullptr);
  EXPECT_EQ(snap->buckets[obs::HistogramSnapshot::kBuckets - 1], 2u);
  EXPECT_EQ(snap->max, UINT64_MAX);
}

// --- trace ring -------------------------------------------------------------

TEST(ObsTraceRing, DropsNewestAndCountsExactly) {
  obs::TraceRing ring(4);
  for (std::uint64_t i = 0; i < 10; ++i) {
    ring.record(obs::TraceEvent{"e", i, 0, 'i'});
  }
  ASSERT_EQ(ring.events().size(), 4u);
  EXPECT_EQ(ring.dropped(), 6u);
  // Drop-newest keeps the OLDEST events — timestamps 0..3, monotone.
  for (std::uint64_t i = 0; i < 4; ++i) {
    EXPECT_EQ(ring.events()[i].ts_us, i);
  }
  ring.clear();
  EXPECT_EQ(ring.events().size(), 0u);
  EXPECT_EQ(ring.dropped(), 0u);
  EXPECT_GE(ring.capacity(), 4u);
}

// --- chrome trace output ----------------------------------------------------

TEST(ObsTrace, ChromeTraceJsonIsWellFormed) {
  obs::RunTelemetry telemetry;
  telemetry.has_trace = true;
  telemetry.trace.resize(2);
  telemetry.trace[0].tid = 0;
  telemetry.trace[0].events = {
      {"relax \"quoted\"\n", 10, 5, 'X'},  // name needing escapes
      {"quiescence.confirmed", 20, 0, 'i'},
  };
  telemetry.trace[1].tid = 1;
  telemetry.trace[1].events = {{"relax", 12, 3, 'X'}};
  telemetry.trace[1].dropped = 7;
  telemetry.trace_dropped = 7;
  telemetry.sample_period_ms = 1.0;
  telemetry.samples = {{0.5, 3, 2, 100.0, 0}, {1.0, 0, 0, 90.0, 0}};

  std::ostringstream os;
  obs::write_chrome_trace(os, telemetry);
  const std::string json = os.str();
  EXPECT_TRUE(is_valid_json(json)) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);  // sampler tracks
  EXPECT_NE(json.find("\"dropped_events\":7"), std::string::npos);
}

// --- sampler ----------------------------------------------------------------

TEST(ObsSampler, InstantStopRecordsZeroSamples) {
  // The first sample is due one full period after start(); stopping
  // before that must record nothing (the "run beat the sampler" case).
  obs::Sampler sampler(1000.0, [](obs::Sample& s) { s.outstanding = 1; });
  sampler.start();
  sampler.stop();
  EXPECT_TRUE(sampler.samples().empty());
}

TEST(ObsSampler, ZeroPeriodNeverStarts) {
  bool probed = false;
  obs::Sampler sampler(0.0, [&](obs::Sample&) { probed = true; });
  sampler.start();
  sampler.stop();
  EXPECT_FALSE(probed);
  EXPECT_TRUE(sampler.samples().empty());
}

TEST(ObsSampler, CollectsMonotoneTimestamps) {
  obs::Sampler sampler(1.0, [](obs::Sample& s) { s.worklist_depth = 42; });
  sampler.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  sampler.stop();
  const auto& samples = sampler.samples();
  ASSERT_FALSE(samples.empty());
  double prev = 0.0;
  for (const auto& s : samples) {
    EXPECT_GT(s.t_ms, prev);
    EXPECT_EQ(s.worklist_depth, 42u);
    prev = s.t_ms;
  }
}

// --- options / gating -------------------------------------------------------

TEST(ObsOptions, AnyReflectsRequestedLayers) {
  obs::ObsOptions options;
  EXPECT_FALSE(options.any());
  options.metrics = true;
  EXPECT_TRUE(options.any());
  options = {};
  options.trace = true;
  EXPECT_TRUE(options.any());
  options = {};
  options.sample_period_ms = 1.0;
  EXPECT_TRUE(options.any());
}

TEST(ObsRecorder, MakeReturnsNullWhenNothingRequested) {
  EXPECT_EQ(obs::Recorder::make(4, obs::ObsOptions{}), nullptr);
}

TEST(ObsValidate, ObsKnobsRejectedForUninstrumentedProtocols) {
  const graph::Graph g = graph::gen::clique(8);
  api::DecomposeRequest request;
  request.graph = &g;
  request.protocol = "bz";
  request.options.obs.metrics = true;
  const auto problems = api::validate(request);
  ASSERT_FALSE(problems.empty());
  // In an OBS=OFF build a "rebuild with -DKCORE_OBS=ON" problem is also
  // reported (first); the protocol-capability one must be there in both
  // modes.
  bool names_protocol = false;
  for (const auto& p : problems) {
    if (p.find("'bz'") != std::string::npos) names_protocol = true;
  }
  EXPECT_TRUE(names_protocol);
}

TEST(ObsValidate, NegativeSamplePeriodRejected) {
  core::RunOptions options;
  options.obs.sample_period_ms = -1.0;
  EXPECT_FALSE(options.validate().empty());
}

#if KCORE_OBS_ENABLED

// --- end-to-end through the facade ------------------------------------------

TEST(ObsEndToEnd, AsyncMetricsMatchStatsView) {
  // With metrics on, AsyncStats is rebuilt FROM the registry snapshot —
  // the two views must agree exactly, and the counters must satisfy the
  // engine's own invariants (relaxations = seeded + re-enqueues).
  const graph::Graph g = graph::gen::barabasi_albert(4000, 3, 7);
  api::RunOptions options;
  options.threads = 4;
  options.obs.metrics = true;
  const auto report = api::decompose(g, "bsp-async", options);
  ASSERT_NE(report.telemetry, nullptr);
  ASSERT_TRUE(report.telemetry->has_metrics);
  const auto& metrics = report.telemetry->metrics;
  const auto& extras = std::get<api::AsyncExtras>(report.extras);
  EXPECT_EQ(extras.relaxations, metrics.value("async.relaxations"));
  EXPECT_EQ(extras.steals, metrics.value("async.steals"));
  EXPECT_EQ(extras.pop_scans, metrics.value("async.pop_scans"));
  EXPECT_EQ(extras.skipped_recomputes,
            metrics.value("async.skipped_recomputes"));
  EXPECT_EQ(extras.detector_passes, metrics.value("async.detector_passes"));
  EXPECT_EQ(extras.re_enqueues,
            metrics.value("async.relaxations") - g.num_nodes());
  EXPECT_GE(extras.relaxations, g.num_nodes());
  // The latency histogram saw every relaxation the span wrapped.
  const auto* relax_ns = metrics.histogram("async.relax_ns");
  ASSERT_NE(relax_ns, nullptr);
  EXPECT_EQ(relax_ns->count, extras.relaxations);
  // Coreness unaffected by instrumentation.
  EXPECT_EQ(report.coreness, seq::coreness_bz(g));
}

TEST(ObsEndToEnd, WarmRunTelemetryNeverAccumulatesAcrossRuns) {
  // Regression pin for the serving path: the obs Recorder (and the
  // worklist tallies feeding it) is created/reset per run, so the THIRD
  // warm run over one prepared Session must still satisfy the exact
  // metrics == extras parity a one-shot does — any cross-run leak of
  // counters, tallies or detector state shows up here as a doubled or
  // drifting value.
  const graph::Graph g = graph::gen::barabasi_albert(4000, 3, 7);
  api::RunOptions options;
  options.threads = 4;
  options.obs.metrics = true;
  api::Session session(g, "bsp-async", options);
  api::DecomposeReport report;
  for (int run = 0; run < 3; ++run) report = session.run();
  ASSERT_NE(report.telemetry, nullptr);
  ASSERT_TRUE(report.telemetry->has_metrics);
  const auto& metrics = report.telemetry->metrics;
  const auto& extras = std::get<api::AsyncExtras>(report.extras);
  EXPECT_EQ(extras.relaxations, metrics.value("async.relaxations"));
  EXPECT_EQ(extras.steals, metrics.value("async.steals"));
  EXPECT_EQ(extras.pop_scans, metrics.value("async.pop_scans"));
  EXPECT_EQ(extras.skipped_recomputes,
            metrics.value("async.skipped_recomputes"));
  EXPECT_EQ(extras.detector_passes, metrics.value("async.detector_passes"));
  // Every node still relaxes at least once per run — a registry that
  // leaked from the previous runs would report ~3x this floor against
  // an extras view of ~1x and fail the equalities above.
  EXPECT_EQ(extras.re_enqueues,
            metrics.value("async.relaxations") - g.num_nodes());
  EXPECT_GE(extras.relaxations, g.num_nodes());
  const auto* relax_ns = metrics.histogram("async.relax_ns");
  ASSERT_NE(relax_ns, nullptr);
  EXPECT_EQ(relax_ns->count, extras.relaxations);
  EXPECT_EQ(report.coreness, seq::coreness_bz(g));
}

TEST(ObsEndToEnd, AsyncTraceIsStructurallySound) {
  const graph::Graph g = graph::gen::barabasi_albert(2000, 3, 3);
  api::RunOptions options;
  options.threads = 3;
  options.obs.trace = true;
  options.obs.trace_capacity = 512;  // small ring: exercise dropping too
  const auto report = api::decompose(g, "bsp-async", options);
  ASSERT_NE(report.telemetry, nullptr);
  ASSERT_TRUE(report.telemetry->has_trace);
  const auto& telemetry = *report.telemetry;
  ASSERT_EQ(telemetry.trace.size(), 3u);
  std::size_t total_events = 0;
  for (const auto& dump : telemetry.trace) {
    total_events += dump.events.size();
    EXPECT_LE(dump.events.size(), 512u);
    // Per-worker timestamps monotone non-decreasing; spans well-formed.
    std::uint64_t prev_ts = 0;
    for (const auto& event : dump.events) {
      EXPECT_GE(event.ts_us, prev_ts);
      prev_ts = event.ts_us;
      EXPECT_TRUE(event.ph == 'X' || event.ph == 'i');
      EXPECT_NE(event.name, nullptr);
    }
  }
  EXPECT_GT(total_events, 0u);

  // The stitched Chrome trace parses and contains one thread_name
  // metadata record per worker.
  std::ostringstream os;
  obs::write_chrome_trace(os, telemetry);
  const std::string json = os.str();
  EXPECT_TRUE(is_valid_json(json));
  std::size_t name_records = 0;
  for (std::size_t at = json.find("\"thread_name\""); at != std::string::npos;
       at = json.find("\"thread_name\"", at + 1)) {
    ++name_records;
  }
  EXPECT_EQ(name_records, 3u);
}

TEST(ObsEndToEnd, AsyncSamplerSumEstimatesAreMonotoneUpperBounds) {
  // Theorem 2: estimates only decrease and never drop below the true
  // coreness, so every sampled sum is >= the truth sum and the series
  // is non-increasing — the Fig. 4 error proxy, without round barriers.
  const graph::Graph g = graph::gen::barabasi_albert(30000, 4, 11);
  const auto truth = seq::coreness_bz(g);
  const double truth_sum = std::accumulate(
      truth.begin(), truth.end(), 0.0,
      [](double acc, graph::NodeId k) { return acc + k; });
  api::RunOptions options;
  options.threads = 2;
  options.obs.sample_period_ms = 0.2;
  const auto report = api::decompose(g, "bsp-async", options);
  ASSERT_NE(report.telemetry, nullptr);
  EXPECT_EQ(report.telemetry->sample_period_ms, 0.2);
  // The run may legitimately beat the first period — assert structure
  // over whatever samples exist, not a count.
  double prev = std::numeric_limits<double>::infinity();
  for (const auto& sample : report.telemetry->samples) {
    EXPECT_LE(sample.sum_estimates, prev);
    EXPECT_GE(sample.sum_estimates, truth_sum);
    EXPECT_GE(sample.outstanding, 0);
    prev = sample.sum_estimates;
  }
}

TEST(ObsEndToEnd, BspParRoundTraceAndMetrics) {
  const graph::Graph g = graph::gen::barabasi_albert(3000, 3, 5);
  api::RunOptions options;
  options.threads = 2;
  options.obs.metrics = true;
  options.obs.trace = true;
  const auto report = api::decompose(g, "bsp-par", options);
  ASSERT_NE(report.telemetry, nullptr);
  ASSERT_TRUE(report.telemetry->has_metrics);
  ASSERT_TRUE(report.telemetry->has_trace);
  const auto& metrics = report.telemetry->metrics;
  // bsp.emitted aggregates exactly the traffic the engine reported.
  EXPECT_EQ(metrics.value("bsp.emitted"), report.traffic.total_messages);
  // One superstep span per (worker, round) lands in the histogram.
  const auto* superstep = metrics.histogram("bsp.superstep_ns");
  ASSERT_NE(superstep, nullptr);
  EXPECT_EQ(superstep->count,
            2 * report.traffic.rounds_executed);
  // The round decorator emits "round" spans on every worker.
  bool saw_round_span = false;
  for (const auto& dump : report.telemetry->trace) {
    for (const auto& event : dump.events) {
      if (std::string_view(event.name) == "round") saw_round_span = true;
    }
  }
  EXPECT_TRUE(saw_round_span);
}

TEST(ObsEndToEnd, OneToManyParMetricsMirrorTraffic) {
  const graph::Graph g = graph::gen::barabasi_albert(2000, 3, 9);
  api::RunOptions options;
  options.threads = 2;
  options.num_hosts = 8;
  options.obs.metrics = true;
  const auto report = api::decompose(g, "one-to-many-par", options);
  ASSERT_NE(report.telemetry, nullptr);
  ASSERT_TRUE(report.telemetry->has_metrics);
  EXPECT_EQ(report.telemetry->metrics.value("par.rounds"),
            report.traffic.rounds_executed);
  EXPECT_EQ(report.telemetry->metrics.value("par.messages"),
            report.traffic.total_messages);
}

TEST(ObsEndToEnd, TelemetryAbsentWhenNotRequested) {
  const graph::Graph g = graph::gen::clique(32);
  api::RunOptions options;
  options.threads = 2;
  const auto report = api::decompose(g, "bsp-async", options);
  EXPECT_EQ(report.telemetry, nullptr);
}

TEST(ObsEndToEnd, PlanClampsObsForUninstrumentedProtocols) {
  // A sweep mixing bz with bsp-async keeps the metrics request only
  // where it can be honored — the bz cells run clean instead of the
  // whole Plan failing validation.
  const graph::Graph g = graph::gen::clique(24);
  api::PlanSpec spec;
  spec.protocols = {"bz", "bsp-async"};
  spec.threads = {2};
  spec.base.obs.metrics = true;
  api::Plan plan(g, spec);
  EXPECT_TRUE(plan.validate().empty());
  const auto results = plan.run();
  ASSERT_EQ(results.size(), 2u);
  for (const auto& cell : results) {
    if (cell.cell.protocol == "bz") {
      EXPECT_EQ(cell.last.telemetry, nullptr);
    } else {
      ASSERT_NE(cell.last.telemetry, nullptr);
      EXPECT_TRUE(cell.last.telemetry->has_metrics);
    }
  }
}

TEST(ObsEndToEnd, ReportJsonIsWellFormed) {
  const graph::Graph g = graph::gen::barabasi_albert(1000, 3, 13);
  api::RunOptions options;
  options.threads = 2;
  options.obs.metrics = true;
  options.obs.trace = true;
  options.obs.sample_period_ms = 0.5;
  const auto report = api::decompose(g, "bsp-async", options);
  std::ostringstream os;
  api::write_report_json(os, report);
  EXPECT_TRUE(is_valid_json(os.str())) << os.str();
  EXPECT_NE(os.str().find("\"telemetry\""), std::string::npos);
}

#else  // KCORE_OBS_ENABLED

TEST(ObsDisabled, RequestingTelemetryFailsValidation) {
  // The OFF build must refuse loudly, not silently return empty
  // telemetry.
  core::RunOptions options;
  options.obs.metrics = true;
  EXPECT_FALSE(options.validate().empty());
  EXPECT_EQ(obs::Recorder::make(4, options.obs), nullptr);
}

TEST(ObsDisabled, MacrosExpandToNothing) {
  // Compiles with a null context and no Recorder — the macros must not
  // evaluate their arguments.
  obs::WorkerContext* ctx = nullptr;
  OBS_SPAN(ctx, "noop");
  OBS_INSTANT(ctx, "noop");
  OBS_COUNT(ctx, obs::Counter{}, 1);
  OBS_OBSERVE(ctx, obs::HistogramId{}, 1);
  SUCCEED();
}

#endif  // KCORE_OBS_ENABLED

}  // namespace
}  // namespace kcore
