#include "core/dynamic.h"

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "seq/kcore_seq.h"
#include "util/rng.h"

namespace kcore::core {
namespace {

namespace gen = kcore::graph::gen;
using graph::Graph;
using graph::NodeId;

void expect_exact(const DynamicKCore& dyn, const char* context) {
  const auto truth = seq::coreness_bz(dyn.snapshot());
  ASSERT_EQ(dyn.coreness(), truth) << context;
}

TEST(DynamicKCore, InitialConvergenceMatchesBaseline) {
  const Graph g = gen::barabasi_albert(200, 3, 5);
  DynamicKCore dyn(g);
  expect_exact(dyn, "initial");
  EXPECT_EQ(dyn.num_nodes(), g.num_nodes());
  EXPECT_EQ(dyn.num_edges(), g.num_edges());
}

TEST(DynamicKCore, SingleInsertionRaisesCoreness) {
  // Cycle of 4 + chord: the chorded pair stays coreness 2 but a second
  // chord creates K4 => everyone rises to 3.
  DynamicKCore dyn(gen::cycle(4));
  EXPECT_EQ(dyn.coreness(), (std::vector<NodeId>{2, 2, 2, 2}));
  dyn.add_edge(0, 2);
  expect_exact(dyn, "first chord");
  dyn.add_edge(1, 3);
  expect_exact(dyn, "second chord");
  EXPECT_EQ(dyn.coreness(), (std::vector<NodeId>{3, 3, 3, 3}));
}

TEST(DynamicKCore, SingleDeletionLowersCoreness) {
  DynamicKCore dyn(gen::clique(5));
  EXPECT_EQ(dyn.coreness(), (std::vector<NodeId>(5, 4)));
  dyn.remove_edge(0, 1);
  expect_exact(dyn, "after deletion");
  EXPECT_EQ(dyn.coreness(), (std::vector<NodeId>(5, 3)));
}

TEST(DynamicKCore, InsertDeleteRoundtripRestoresCoreness) {
  const Graph g = gen::erdos_renyi_gnm(100, 250, 7);
  DynamicKCore dyn(g);
  const auto before = dyn.coreness();
  dyn.add_edge(3, 97);
  dyn.remove_edge(3, 97);
  EXPECT_EQ(dyn.coreness(), before);
  expect_exact(dyn, "roundtrip");
}

TEST(DynamicKCore, NoOpUpdatesCostNothing) {
  DynamicKCore dyn(gen::clique(4));
  const auto add = dyn.add_edge(0, 1);  // already present
  EXPECT_EQ(add.rounds, 0U);
  EXPECT_EQ(add.messages, 0U);
  const auto del = dyn.remove_edge(0, 3);
  EXPECT_GT(del.rounds, 0U);
  const auto del2 = dyn.remove_edge(0, 3);  // already gone
  EXPECT_EQ(del2.rounds, 0U);
}

TEST(DynamicKCore, RejectsSelfLoopAndRange) {
  DynamicKCore dyn(gen::clique(4));
  EXPECT_THROW(dyn.add_edge(1, 1), util::CheckError);
  EXPECT_THROW(dyn.add_edge(0, 9), util::CheckError);
}

TEST(DynamicKCore, AddNodeStartsIsolated) {
  DynamicKCore dyn(gen::clique(3));
  const NodeId fresh = dyn.add_node();
  EXPECT_EQ(fresh, 3U);
  EXPECT_EQ(dyn.coreness()[fresh], 0U);
  dyn.add_edge(fresh, 0);
  expect_exact(dyn, "attach fresh node");
  EXPECT_EQ(dyn.coreness()[fresh], 1U);
}

// ---------------------------------------------------------------------------
// Batched updates: one reconvergence per batch
// ---------------------------------------------------------------------------

using graph::EdgeOp;
using graph::EdgeUpdate;

TEST(DynamicKCoreBatch, MatchesPerEdgeApplication) {
  const Graph g = gen::erdos_renyi_gnm(150, 400, 11);
  DynamicKCore batched(g);
  DynamicKCore single(g);
  util::Xoshiro256 rng(23);
  for (int round = 0; round < 10; ++round) {
    std::vector<EdgeUpdate> batch;
    for (int i = 0; i < 12; ++i) {
      const auto u = static_cast<NodeId>(rng.next_below(g.num_nodes()));
      const auto v = static_cast<NodeId>(rng.next_below(g.num_nodes()));
      if (u == v) continue;
      batch.push_back(
          {rng.next_bool(0.55) ? EdgeOp::kInsert : EdgeOp::kRemove, u, v});
    }
    batched.apply_batch(batch);
    for (const EdgeUpdate& update : batch) {
      if (update.op == EdgeOp::kInsert) {
        single.add_edge(update.u, update.v);
      } else {
        single.remove_edge(update.u, update.v);
      }
    }
    ASSERT_EQ(batched.coreness(), single.coreness()) << "round " << round;
    ASSERT_EQ(batched.num_edges(), single.num_edges()) << "round " << round;
    expect_exact(batched, "batched round");
  }
}

TEST(DynamicKCoreBatch, CoalescesTransientChurnToNoOp) {
  DynamicKCore dyn(gen::cycle(6));
  const auto before = dyn.coreness();
  // Insert+remove of the same edge inside one batch has no net effect —
  // and must cost nothing (no reconvergence at all).
  const std::vector<EdgeUpdate> batch{{EdgeOp::kInsert, 0, 3},
                                      {EdgeOp::kRemove, 0, 3}};
  const auto stats = dyn.apply_batch(batch);
  EXPECT_EQ(stats.rounds, 0U);
  EXPECT_EQ(stats.messages, 0U);
  EXPECT_EQ(dyn.coreness(), before);
  expect_exact(dyn, "transient churn");
}

TEST(DynamicKCoreBatch, LastOpPerEdgeWins) {
  DynamicKCore dyn(gen::clique(5));
  // remove, re-insert, remove again: the edge must end up absent.
  const std::vector<EdgeUpdate> batch{{EdgeOp::kRemove, 0, 1},
                                      {EdgeOp::kInsert, 0, 1},
                                      {EdgeOp::kRemove, 0, 1}};
  dyn.apply_batch(batch);
  EXPECT_EQ(dyn.num_edges(), 9U);
  expect_exact(dyn, "last op wins");
  EXPECT_EQ(dyn.coreness(), (std::vector<NodeId>(5, 3)));
}

TEST(DynamicKCoreBatch, MixedInsertRaiseAndDeleteStaysExact) {
  // Cycle of 4: the batch adds both chords (K4, coreness 3 — a two-level
  // rise pipeline through sequential raises) while cutting a far edge.
  DynamicKCore dyn(gen::cycle(8));
  const std::vector<EdgeUpdate> batch{{EdgeOp::kInsert, 0, 2},
                                      {EdgeOp::kInsert, 1, 3},
                                      {EdgeOp::kInsert, 0, 3},
                                      {EdgeOp::kRemove, 5, 6}};
  dyn.apply_batch(batch);
  expect_exact(dyn, "mixed batch");
  EXPECT_EQ(dyn.coreness()[0], 3U);
  EXPECT_EQ(dyn.coreness()[5], 1U);
}

TEST(DynamicKCoreBatch, IgnoresSelfLoopsAndDuplicates) {
  DynamicKCore dyn(gen::clique(4));
  const std::vector<EdgeUpdate> batch{{EdgeOp::kInsert, 2, 2},
                                      {EdgeOp::kInsert, 0, 1},
                                      {EdgeOp::kInsert, 1, 0}};
  const auto stats = dyn.apply_batch(batch);
  EXPECT_EQ(stats.rounds, 0U);
  EXPECT_EQ(dyn.num_edges(), 6U);
  expect_exact(dyn, "degenerate batch");
  EXPECT_THROW(dyn.apply_batch(std::vector<EdgeUpdate>{
                   {EdgeOp::kInsert, 0, 99}}),
               util::CheckError);
}

TEST(DynamicKCoreBatch, OneReconvergenceCostsLessThanPerEdge) {
  const Graph g = gen::barabasi_albert(300, 3, 29);
  DynamicKCore batched(g);
  DynamicKCore single(g);
  util::Xoshiro256 rng(31);
  std::vector<EdgeUpdate> batch;
  for (int i = 0; i < 40; ++i) {
    const auto u = static_cast<NodeId>(rng.next_below(g.num_nodes()));
    const auto v = static_cast<NodeId>(rng.next_below(g.num_nodes()));
    if (u == v) continue;
    batch.push_back(
        {rng.next_bool(0.5) ? EdgeOp::kInsert : EdgeOp::kRemove, u, v});
  }
  const auto stats = batched.apply_batch(batch);
  std::uint64_t single_rounds = 0;
  for (const EdgeUpdate& update : batch) {
    const auto s = update.op == EdgeOp::kInsert
                       ? single.add_edge(update.u, update.v)
                       : single.remove_edge(update.u, update.v);
    single_rounds += s.rounds;
  }
  ASSERT_EQ(batched.coreness(), single.coreness());
  // One coalesced reconvergence vs 40 separate ones.
  EXPECT_LT(stats.rounds, single_rounds);
}

// ---------------------------------------------------------------------------
// Differential testing over random update sequences
// ---------------------------------------------------------------------------

struct ChurnCase {
  const char* name;
  Graph (*make)(std::uint64_t seed);
};

Graph churn_er(std::uint64_t s) { return gen::erdos_renyi_gnm(120, 300, s); }
Graph churn_ba(std::uint64_t s) { return gen::barabasi_albert(100, 3, s); }
Graph churn_grid(std::uint64_t) { return gen::grid(8, 10); }
Graph churn_cliques(std::uint64_t) {
  const std::array<NodeId, 3> sizes{5, 8, 12};
  return gen::disjoint_cliques(sizes);
}

class DynamicChurn : public ::testing::TestWithParam<ChurnCase> {};

TEST_P(DynamicChurn, StaysExactUnderRandomUpdates) {
  for (std::uint64_t seed = 1; seed <= 2; ++seed) {
    const Graph g = GetParam().make(seed);
    DynamicKCore dyn(g);
    util::Xoshiro256 rng(seed * 101);
    for (int step = 0; step < 60; ++step) {
      const auto u = static_cast<NodeId>(rng.next_below(dyn.num_nodes()));
      const auto v = static_cast<NodeId>(rng.next_below(dyn.num_nodes()));
      if (u == v) continue;
      if (rng.next_bool(0.55)) {
        dyn.add_edge(u, v);
      } else {
        dyn.remove_edge(u, v);
      }
      const auto truth = seq::coreness_bz(dyn.snapshot());
      ASSERT_EQ(dyn.coreness(), truth)
          << GetParam().name << " seed " << seed << " step " << step;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Graphs, DynamicChurn,
    ::testing::Values(ChurnCase{"er", churn_er}, ChurnCase{"ba", churn_ba},
                      ChurnCase{"grid", churn_grid},
                      ChurnCase{"cliques", churn_cliques}),
    [](const auto& suite_info) { return std::string(suite_info.param.name); });

// ---------------------------------------------------------------------------
// Locality: updates must not touch the whole graph
// ---------------------------------------------------------------------------

TEST(DynamicKCoreCost, DeletionIsLocal) {
  // Two far-apart cliques joined by a long chain: deleting a chain edge
  // must not reactivate the cliques.
  const std::array<NodeId, 2> sizes{30, 30};
  Graph g = gen::disjoint_cliques(sizes);
  g = gen::attach_paths(g, 1, 50, 3);  // a tendril off one clique
  DynamicKCore dyn(g);
  const auto stats = dyn.remove_edge(60, 61);  // first tendril link
  EXPECT_GT(stats.rounds, 0U);
  // Far fewer nodes activated than the graph holds.
  EXPECT_LT(stats.nodes_activated + stats.messages, 200U);
  expect_exact(dyn, "tendril cut");
}

TEST(DynamicKCoreCost, InsertionActivatesOnlyTheSubcore) {
  // A big 1-shell (chain) around a K5: inserting inside the chain leaves
  // the K5 untouched.
  Graph g = gen::chain(500);
  DynamicKCore dyn(g);
  const auto stats = dyn.add_edge(10, 400);
  expect_exact(dyn, "chain chord");
  // The 1-subcore is the whole chain, so activation can be large — but
  // messages must stay bounded by a couple of traversals of it.
  EXPECT_LT(stats.messages, 4000U);
}

TEST(DynamicKCoreCost, MaintenanceBeatsRestartOnChurn) {
  const Graph g = gen::barabasi_albert(400, 3, 13);
  DynamicKCore dyn(g);
  const auto initial = dyn.lifetime_stats();
  util::Xoshiro256 rng(17);
  std::uint64_t update_messages = 0;
  for (int step = 0; step < 20; ++step) {
    const auto u = static_cast<NodeId>(rng.next_below(dyn.num_nodes()));
    const auto v = static_cast<NodeId>(rng.next_below(dyn.num_nodes()));
    if (u == v) continue;
    const auto stats =
        rng.next_bool(0.5) ? dyn.add_edge(u, v) : dyn.remove_edge(u, v);
    update_messages += stats.messages;
  }
  // 20 updates must cost far less than 20 full restarts (initial run).
  EXPECT_LT(update_messages, initial.messages * 4);
  expect_exact(dyn, "after churn");
}

}  // namespace
}  // namespace kcore::core
