#include "core/dynamic.h"

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "seq/kcore_seq.h"
#include "util/rng.h"

namespace kcore::core {
namespace {

namespace gen = kcore::graph::gen;
using graph::Graph;
using graph::NodeId;

void expect_exact(const DynamicKCore& dyn, const char* context) {
  const auto truth = seq::coreness_bz(dyn.snapshot());
  ASSERT_EQ(dyn.coreness(), truth) << context;
}

TEST(DynamicKCore, InitialConvergenceMatchesBaseline) {
  const Graph g = gen::barabasi_albert(200, 3, 5);
  DynamicKCore dyn(g);
  expect_exact(dyn, "initial");
  EXPECT_EQ(dyn.num_nodes(), g.num_nodes());
  EXPECT_EQ(dyn.num_edges(), g.num_edges());
}

TEST(DynamicKCore, SingleInsertionRaisesCoreness) {
  // Cycle of 4 + chord: the chorded pair stays coreness 2 but a second
  // chord creates K4 => everyone rises to 3.
  DynamicKCore dyn(gen::cycle(4));
  EXPECT_EQ(dyn.coreness(), (std::vector<NodeId>{2, 2, 2, 2}));
  dyn.add_edge(0, 2);
  expect_exact(dyn, "first chord");
  dyn.add_edge(1, 3);
  expect_exact(dyn, "second chord");
  EXPECT_EQ(dyn.coreness(), (std::vector<NodeId>{3, 3, 3, 3}));
}

TEST(DynamicKCore, SingleDeletionLowersCoreness) {
  DynamicKCore dyn(gen::clique(5));
  EXPECT_EQ(dyn.coreness(), (std::vector<NodeId>(5, 4)));
  dyn.remove_edge(0, 1);
  expect_exact(dyn, "after deletion");
  EXPECT_EQ(dyn.coreness(), (std::vector<NodeId>(5, 3)));
}

TEST(DynamicKCore, InsertDeleteRoundtripRestoresCoreness) {
  const Graph g = gen::erdos_renyi_gnm(100, 250, 7);
  DynamicKCore dyn(g);
  const auto before = dyn.coreness();
  dyn.add_edge(3, 97);
  dyn.remove_edge(3, 97);
  EXPECT_EQ(dyn.coreness(), before);
  expect_exact(dyn, "roundtrip");
}

TEST(DynamicKCore, NoOpUpdatesCostNothing) {
  DynamicKCore dyn(gen::clique(4));
  const auto add = dyn.add_edge(0, 1);  // already present
  EXPECT_EQ(add.rounds, 0U);
  EXPECT_EQ(add.messages, 0U);
  const auto del = dyn.remove_edge(0, 3);
  EXPECT_GT(del.rounds, 0U);
  const auto del2 = dyn.remove_edge(0, 3);  // already gone
  EXPECT_EQ(del2.rounds, 0U);
}

TEST(DynamicKCore, RejectsSelfLoopAndRange) {
  DynamicKCore dyn(gen::clique(4));
  EXPECT_THROW(dyn.add_edge(1, 1), util::CheckError);
  EXPECT_THROW(dyn.add_edge(0, 9), util::CheckError);
}

TEST(DynamicKCore, AddNodeStartsIsolated) {
  DynamicKCore dyn(gen::clique(3));
  const NodeId fresh = dyn.add_node();
  EXPECT_EQ(fresh, 3U);
  EXPECT_EQ(dyn.coreness()[fresh], 0U);
  dyn.add_edge(fresh, 0);
  expect_exact(dyn, "attach fresh node");
  EXPECT_EQ(dyn.coreness()[fresh], 1U);
}

// ---------------------------------------------------------------------------
// Differential testing over random update sequences
// ---------------------------------------------------------------------------

struct ChurnCase {
  const char* name;
  Graph (*make)(std::uint64_t seed);
};

Graph churn_er(std::uint64_t s) { return gen::erdos_renyi_gnm(120, 300, s); }
Graph churn_ba(std::uint64_t s) { return gen::barabasi_albert(100, 3, s); }
Graph churn_grid(std::uint64_t) { return gen::grid(8, 10); }
Graph churn_cliques(std::uint64_t) {
  const std::array<NodeId, 3> sizes{5, 8, 12};
  return gen::disjoint_cliques(sizes);
}

class DynamicChurn : public ::testing::TestWithParam<ChurnCase> {};

TEST_P(DynamicChurn, StaysExactUnderRandomUpdates) {
  for (std::uint64_t seed = 1; seed <= 2; ++seed) {
    const Graph g = GetParam().make(seed);
    DynamicKCore dyn(g);
    util::Xoshiro256 rng(seed * 101);
    for (int step = 0; step < 60; ++step) {
      const auto u = static_cast<NodeId>(rng.next_below(dyn.num_nodes()));
      const auto v = static_cast<NodeId>(rng.next_below(dyn.num_nodes()));
      if (u == v) continue;
      if (rng.next_bool(0.55)) {
        dyn.add_edge(u, v);
      } else {
        dyn.remove_edge(u, v);
      }
      const auto truth = seq::coreness_bz(dyn.snapshot());
      ASSERT_EQ(dyn.coreness(), truth)
          << GetParam().name << " seed " << seed << " step " << step;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Graphs, DynamicChurn,
    ::testing::Values(ChurnCase{"er", churn_er}, ChurnCase{"ba", churn_ba},
                      ChurnCase{"grid", churn_grid},
                      ChurnCase{"cliques", churn_cliques}),
    [](const auto& suite_info) { return std::string(suite_info.param.name); });

// ---------------------------------------------------------------------------
// Locality: updates must not touch the whole graph
// ---------------------------------------------------------------------------

TEST(DynamicKCoreCost, DeletionIsLocal) {
  // Two far-apart cliques joined by a long chain: deleting a chain edge
  // must not reactivate the cliques.
  const std::array<NodeId, 2> sizes{30, 30};
  Graph g = gen::disjoint_cliques(sizes);
  g = gen::attach_paths(g, 1, 50, 3);  // a tendril off one clique
  DynamicKCore dyn(g);
  const auto stats = dyn.remove_edge(60, 61);  // first tendril link
  EXPECT_GT(stats.rounds, 0U);
  // Far fewer nodes activated than the graph holds.
  EXPECT_LT(stats.nodes_activated + stats.messages, 200U);
  expect_exact(dyn, "tendril cut");
}

TEST(DynamicKCoreCost, InsertionActivatesOnlyTheSubcore) {
  // A big 1-shell (chain) around a K5: inserting inside the chain leaves
  // the K5 untouched.
  Graph g = gen::chain(500);
  DynamicKCore dyn(g);
  const auto stats = dyn.add_edge(10, 400);
  expect_exact(dyn, "chain chord");
  // The 1-subcore is the whole chain, so activation can be large — but
  // messages must stay bounded by a couple of traversals of it.
  EXPECT_LT(stats.messages, 4000U);
}

TEST(DynamicKCoreCost, MaintenanceBeatsRestartOnChurn) {
  const Graph g = gen::barabasi_albert(400, 3, 13);
  DynamicKCore dyn(g);
  const auto initial = dyn.lifetime_stats();
  util::Xoshiro256 rng(17);
  std::uint64_t update_messages = 0;
  for (int step = 0; step < 20; ++step) {
    const auto u = static_cast<NodeId>(rng.next_below(dyn.num_nodes()));
    const auto v = static_cast<NodeId>(rng.next_below(dyn.num_nodes()));
    if (u == v) continue;
    const auto stats =
        rng.next_bool(0.5) ? dyn.add_edge(u, v) : dyn.remove_edge(u, v);
    update_messages += stats.messages;
  }
  // 20 updates must cost far less than 20 full restarts (initial run).
  EXPECT_LT(update_messages, initial.messages * 4);
  expect_exact(dyn, "after churn");
}

}  // namespace
}  // namespace kcore::core
