#include "graph/dot_export.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "graph/generators.h"
#include "seq/kcore_seq.h"
#include "util/check.h"

namespace kcore::graph {
namespace {

namespace gen = kcore::graph::gen;

TEST(DotExport, EmitsValidSkeleton) {
  const Graph g = gen::clique(4);
  std::ostringstream out;
  write_dot(out, g, seq::coreness_bz(g));
  const std::string dot = out.str();
  EXPECT_EQ(dot.find("graph kcore {"), 0U);
  EXPECT_NE(dot.find("n0 -- n1;"), std::string::npos);
  EXPECT_EQ(dot.back(), '\n');
  EXPECT_NE(dot.find("}"), std::string::npos);
}

TEST(DotExport, EdgeCountMatches) {
  const Graph g = gen::grid(4, 4);
  std::ostringstream out;
  write_dot(out, g, {});
  std::size_t edges = 0;
  std::size_t pos = 0;
  const std::string dot = out.str();
  while ((pos = dot.find(" -- ", pos)) != std::string::npos) {
    ++edges;
    pos += 4;
  }
  EXPECT_EQ(edges, g.num_edges());
}

TEST(DotExport, ShellClustersAppear) {
  // K4 + tail: shells 1 and 3 exist.
  GraphBuilder b(6);
  for (NodeId i = 0; i < 4; ++i) {
    for (NodeId j = i + 1; j < 4; ++j) b.add_edge(i, j);
  }
  b.add_edge(3, 4);
  b.add_edge(4, 5);
  const Graph g = b.build();
  std::ostringstream out;
  write_dot(out, g, seq::coreness_bz(g));
  const std::string dot = out.str();
  EXPECT_NE(dot.find("cluster_shell_1"), std::string::npos);
  EXPECT_NE(dot.find("cluster_shell_3"), std::string::npos);
  EXPECT_EQ(dot.find("cluster_shell_2"), std::string::npos);
}

TEST(DotExport, MaxNodesCapsOutput) {
  const Graph g = gen::chain(100);
  DotOptions options;
  options.max_nodes = 10;
  std::ostringstream out;
  write_dot(out, g, {}, options);
  EXPECT_EQ(out.str().find("n50"), std::string::npos);
  EXPECT_NE(out.str().find("n9"), std::string::npos);
}

TEST(DotExport, RejectsMismatchedCoreness) {
  const Graph g = gen::clique(4);
  std::ostringstream out;
  EXPECT_THROW(write_dot(out, g, std::vector<NodeId>{1, 2}),
               util::CheckError);
}

TEST(DotExport, ShellColorsSpanHueRange) {
  EXPECT_EQ(shell_color(0, 0), "0.660 0.6 0.95");  // degenerate: all blue
  EXPECT_EQ(shell_color(0, 10), "0.660 0.6 0.95");
  EXPECT_EQ(shell_color(10, 10), "0.000 0.6 0.95");
  EXPECT_NE(shell_color(5, 10), shell_color(6, 10));
}

TEST(DotExport, FileWrapperWrites) {
  const Graph g = gen::cycle(5);
  const std::string path = ::testing::TempDir() + "/kcore_dot_test.dot";
  write_dot_file(path, g, seq::coreness_bz(g));
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string first;
  std::getline(in, first);
  EXPECT_EQ(first, "graph kcore {");
}

}  // namespace
}  // namespace kcore::graph
