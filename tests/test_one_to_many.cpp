#include "core/one_to_many.h"

#include <gtest/gtest.h>

#include <array>

#include "graph/generators.h"
#include "seq/kcore_seq.h"

namespace kcore::core {
namespace {

namespace gen = kcore::graph::gen;
using graph::Graph;
using graph::NodeId;

// ---------------------------------------------------------------------------
// Correctness across host counts, policies, and assignments
// ---------------------------------------------------------------------------

struct OneToManyCase {
  const char* name;
  sim::HostId hosts;
  CommPolicy comm;
  AssignmentPolicy assignment;
};

class OneToManyCorrectness
    : public ::testing::TestWithParam<OneToManyCase> {
 protected:
  void expect_correct(const Graph& g, std::uint64_t seed = 1) {
    OneToManyConfig config;
    config.num_hosts = GetParam().hosts;
    config.comm = GetParam().comm;
    config.assignment = GetParam().assignment;
    config.seed = seed;
    const auto result = run_one_to_many(g, config);
    ASSERT_TRUE(result.traffic.converged);
    EXPECT_EQ(result.coreness, seq::coreness_bz(g)) << GetParam().name;
  }
};

TEST_P(OneToManyCorrectness, DeterministicFamilies) {
  expect_correct(gen::chain(40));
  expect_correct(gen::clique(15));
  expect_correct(gen::grid(9, 11));
  expect_correct(gen::montresor_worst_case(25));
  expect_correct(gen::complete_bipartite(5, 12));
}

TEST_P(OneToManyCorrectness, RandomGraphs) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    expect_correct(gen::erdos_renyi_gnm(250, 600, seed), seed);
    expect_correct(gen::barabasi_albert(180, 3, seed), seed);
  }
}

TEST_P(OneToManyCorrectness, GraphWithIsolatedNodes) {
  expect_correct(
      Graph::from_edges(12, std::vector<graph::Edge>{{0, 1}, {5, 9}}));
}

INSTANTIATE_TEST_SUITE_P(
    Configs, OneToManyCorrectness,
    ::testing::Values(
        OneToManyCase{"h1_bcast_mod", 1, CommPolicy::kBroadcast,
                      AssignmentPolicy::kModulo},
        OneToManyCase{"h2_p2p_mod", 2, CommPolicy::kPointToPoint,
                      AssignmentPolicy::kModulo},
        OneToManyCase{"h4_bcast_mod", 4, CommPolicy::kBroadcast,
                      AssignmentPolicy::kModulo},
        OneToManyCase{"h4_p2p_block", 4, CommPolicy::kPointToPoint,
                      AssignmentPolicy::kBlock},
        OneToManyCase{"h8_p2p_rand", 8, CommPolicy::kPointToPoint,
                      AssignmentPolicy::kRandom},
        OneToManyCase{"h8_bcast_hash", 8, CommPolicy::kBroadcast,
                      AssignmentPolicy::kHash},
        OneToManyCase{"h16_p2p_mod", 16, CommPolicy::kPointToPoint,
                      AssignmentPolicy::kModulo},
        OneToManyCase{"h64_p2p_mod", 64, CommPolicy::kPointToPoint,
                      AssignmentPolicy::kModulo}),
    [](const auto& suite_info) { return std::string(suite_info.param.name); });

// ---------------------------------------------------------------------------
// The one-to-one protocol is the |H| = N special case (§1)
// ---------------------------------------------------------------------------

TEST(OneToManySpecialCases, OneHostPerNodeMatchesOneToOne) {
  const Graph g = gen::erdos_renyi_gnm(120, 300, 9);
  OneToManyConfig config;
  config.num_hosts = g.num_nodes();
  config.comm = CommPolicy::kPointToPoint;
  const auto many = run_one_to_many(g, config);
  ASSERT_TRUE(many.traffic.converged);
  EXPECT_EQ(many.coreness, seq::coreness_bz(g));
}

TEST(OneToManySpecialCases, SingleHostComputesLocallyWithZeroTraffic) {
  const Graph g = gen::barabasi_albert(200, 3, 11);
  OneToManyConfig config;
  config.num_hosts = 1;
  const auto result = run_one_to_many(g, config);
  ASSERT_TRUE(result.traffic.converged);
  EXPECT_EQ(result.coreness, seq::coreness_bz(g));
  // improveEstimate reaches the global fixed point in the constructor;
  // there is nobody to talk to.
  EXPECT_EQ(result.traffic.total_messages, 0U);
  EXPECT_EQ(result.estimates_shipped_total, 0U);
  EXPECT_EQ(result.overhead_per_node, 0.0);
}

// ---------------------------------------------------------------------------
// Overhead accounting (the Figure 5 metric)
// ---------------------------------------------------------------------------

TEST(OneToManyOverhead, BroadcastShipsFewerEstimatesThanP2P) {
  const Graph g = gen::barabasi_albert(300, 4, 13);
  for (const sim::HostId hosts : {4U, 16U, 64U}) {
    OneToManyConfig bcast;
    bcast.num_hosts = hosts;
    bcast.comm = CommPolicy::kBroadcast;
    OneToManyConfig p2p = bcast;
    p2p.comm = CommPolicy::kPointToPoint;
    const auto rb = run_one_to_many(g, bcast);
    const auto rp = run_one_to_many(g, p2p);
    EXPECT_LE(rb.estimates_shipped_total, rp.estimates_shipped_total)
        << hosts << " hosts";
  }
}

TEST(OneToManyOverhead, P2POverheadGrowsWithHosts) {
  // Figure 5 (right): more hosts => each update fans out to more
  // destinations => overhead per node increases.
  const Graph g = gen::erdos_renyi_gnm(400, 1200, 15);
  double prev = 0.0;
  for (const sim::HostId hosts : {2U, 8U, 64U}) {
    OneToManyConfig config;
    config.num_hosts = hosts;
    config.comm = CommPolicy::kPointToPoint;
    const auto r = run_one_to_many(g, config);
    EXPECT_GE(r.overhead_per_node, prev) << hosts << " hosts";
    prev = r.overhead_per_node;
  }
}

TEST(OneToManyOverhead, PerHostCountsSumToTotal) {
  const Graph g = gen::barabasi_albert(150, 3, 17);
  OneToManyConfig config;
  config.num_hosts = 8;
  const auto r = run_one_to_many(g, config);
  std::uint64_t sum = 0;
  for (const auto v : r.estimates_shipped_by_host) sum += v;
  EXPECT_EQ(sum, r.estimates_shipped_total);
  EXPECT_DOUBLE_EQ(
      r.overhead_per_node,
      static_cast<double>(sum) / static_cast<double>(g.num_nodes()));
}

// ---------------------------------------------------------------------------
// Observer and snapshots
// ---------------------------------------------------------------------------

TEST(OneToManyObserver, SnapshotsAreSafeAndMonotone) {
  const Graph g = gen::erdos_renyi_gnm(150, 400, 19);
  const auto truth = seq::coreness_bz(g);
  OneToManyConfig config;
  config.num_hosts = 8;
  std::vector<NodeId> previous(g.num_nodes(), kEstimateInfinity);
  const auto result = run_one_to_many(
      g, config, [&](std::uint64_t round, std::span<const NodeId> est) {
        for (NodeId u = 0; u < g.num_nodes(); ++u) {
          ASSERT_GE(est[u], truth[u]) << "round " << round;
          ASSERT_LE(est[u], previous[u]) << "round " << round;
          previous[u] = est[u];
        }
      });
  ASSERT_TRUE(result.traffic.converged);
}

TEST(OneToManyHostState, OwnedNodesPartitionTheGraph) {
  const Graph g = gen::erdos_renyi_gnm(100, 250, 21);
  const auto owner = assign_nodes(g.num_nodes(), 4,
                                  AssignmentPolicy::kModulo);
  std::vector<OneToManyHost> hosts;
  for (sim::HostId h = 0; h < 4; ++h) {
    hosts.emplace_back(&g, &owner, h, CommPolicy::kBroadcast);
  }
  std::vector<int> seen(g.num_nodes(), 0);
  for (const auto& h : hosts) {
    for (const auto u : h.owned_nodes()) ++seen[u];
  }
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    EXPECT_EQ(seen[u], 1) << "node " << u;
  }
}

TEST(OneToManyDeterminism, SameSeedSameResult) {
  const Graph g = gen::barabasi_albert(120, 3, 23);
  OneToManyConfig config;
  config.num_hosts = 8;
  config.seed = 5;
  const auto a = run_one_to_many(g, config);
  const auto b = run_one_to_many(g, config);
  EXPECT_EQ(a.coreness, b.coreness);
  EXPECT_EQ(a.traffic.total_messages, b.traffic.total_messages);
  EXPECT_EQ(a.estimates_shipped_total, b.estimates_shipped_total);
}

TEST(OneToManyRounds, ComparableToOneToOne) {
  // §5.2: "the number of rounds needed to complete the protocol was
  // equivalent to that of the one-to-one version". Hosts only help, so
  // one-to-many should never need more rounds.
  const Graph g = gen::erdos_renyi_gnm(300, 700, 25);
  OneToOneConfig one_config;
  one_config.mode = sim::DeliveryMode::kSynchronous;
  one_config.targeted_send = false;
  const auto one = run_one_to_one(g, one_config);
  OneToManyConfig many_config;
  many_config.num_hosts = 16;
  many_config.mode = sim::DeliveryMode::kSynchronous;
  const auto many = run_one_to_many(g, many_config);
  EXPECT_LE(many.traffic.execution_time, one.traffic.execution_time);
}

}  // namespace
}  // namespace kcore::core
