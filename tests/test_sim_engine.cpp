#include "sim/engine.h"

#include <gtest/gtest.h>

#include <vector>

namespace kcore::sim {
namespace {

/// Sends nothing, ever.
struct SilentHost {
  using Message = int;
  void on_message(HostId, const Message&) {}
  void on_round(Context<Message>&) {}
};

/// Host 0 sends a single token to host 1 in round 1; every host records
/// the round at which it first received a message. The engine drains a
/// host's inbox immediately before its on_round in the same round, so
/// stamping the pending receive with ctx.round() gives the drain round.
struct PingHost {
  using Message = int;
  HostId self = 0;
  std::uint64_t received_round = 0;
  int received_count = 0;
  bool pending_receive = false;
  bool sent = false;

  void on_message(HostId, const Message&) {
    ++received_count;
    pending_receive = true;
  }
  void on_round(Context<Message>& ctx) {
    if (pending_receive && received_round == 0) {
      received_round = ctx.round();
    }
    if (ctx.self() == 0 && !sent) {
      sent = true;
      ctx.send(1, 42);
    }
  }
};

/// Relays a token down the line 0 -> 1 -> ... -> n-1.
struct RelayHost {
  using Message = int;
  HostId self = 0;
  HostId num_hosts = 0;
  bool have_token = false;
  bool forwarded = false;

  void on_message(HostId, const Message&) { have_token = true; }
  void on_round(Context<Message>& ctx) {
    if (ctx.self() == 0 && !forwarded) {
      forwarded = true;
      ctx.send(1, 7);
      return;
    }
    if (have_token && !forwarded && ctx.self() + 1 < num_hosts) {
      forwarded = true;
      ctx.send(ctx.self() + 1, 7);
    }
  }
};

TEST(Engine, QuiescentFromStart) {
  EngineConfig config;
  config.mode = DeliveryMode::kSynchronous;
  Engine<SilentHost> engine(std::vector<SilentHost>(4), config);
  const auto stats = engine.run();
  EXPECT_TRUE(stats.converged);
  EXPECT_EQ(stats.execution_time, 0U);
  EXPECT_EQ(stats.rounds_executed, 1U);
  EXPECT_EQ(stats.total_messages, 0U);
}

TEST(Engine, SynchronousDeliversNextRound) {
  EngineConfig config;
  config.mode = DeliveryMode::kSynchronous;
  std::vector<PingHost> hosts(3);
  for (HostId i = 0; i < 3; ++i) hosts[i].self = i;
  Engine<PingHost> engine(std::move(hosts), config);
  const auto stats = engine.run();
  EXPECT_TRUE(stats.converged);
  // Sent in round 1, drained when host 1 is processed in round 2.
  EXPECT_EQ(engine.hosts()[1].received_round, 2U);
  EXPECT_EQ(engine.hosts()[1].received_count, 1);
  EXPECT_EQ(engine.hosts()[2].received_count, 0);
  EXPECT_EQ(stats.execution_time, 1U);
  EXPECT_EQ(stats.total_messages, 1U);
  EXPECT_EQ(stats.sent_by_host[0], 1U);
  EXPECT_EQ(stats.sent_by_host[1], 0U);
}

TEST(Engine, CycleModeCanDeliverSameRound) {
  // Over many seeds, host 1 sometimes receives in round 1 (processed after
  // host 0) and sometimes in round 2 (processed before) — both must occur.
  bool same_round = false;
  bool next_round = false;
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    EngineConfig config;
    config.mode = DeliveryMode::kCycleRandomOrder;
    config.seed = seed;
    std::vector<PingHost> hosts(2);
    for (HostId i = 0; i < 2; ++i) hosts[i].self = i;
    Engine<PingHost> engine(std::move(hosts), config);
    engine.run();
    const auto r = engine.hosts()[1].received_round;
    ASSERT_TRUE(r == 1 || r == 2) << "round " << r;
    same_round |= r == 1;
    next_round |= r == 2;
  }
  EXPECT_TRUE(same_round);
  EXPECT_TRUE(next_round);
}

TEST(Engine, RelayChainExecutionTime) {
  constexpr HostId kN = 10;
  EngineConfig config;
  config.mode = DeliveryMode::kSynchronous;
  std::vector<RelayHost> hosts(kN);
  for (HostId i = 0; i < kN; ++i) {
    hosts[i].self = i;
    hosts[i].num_hosts = kN;
  }
  Engine<RelayHost> engine(std::move(hosts), config);
  const auto stats = engine.run();
  EXPECT_TRUE(stats.converged);
  // One send per round for kN-1 rounds (last host does not forward).
  EXPECT_EQ(stats.total_messages, kN - 1);
  EXPECT_EQ(stats.execution_time, kN - 1);
  EXPECT_TRUE(engine.hosts()[kN - 1].have_token);
}

TEST(Engine, DeterministicForSeed) {
  auto run_once = [](std::uint64_t seed) {
    EngineConfig config;
    config.mode = DeliveryMode::kCycleRandomOrder;
    config.seed = seed;
    std::vector<RelayHost> hosts(20);
    for (HostId i = 0; i < 20; ++i) {
      hosts[i].self = i;
      hosts[i].num_hosts = 20;
    }
    Engine<RelayHost> engine(std::move(hosts), config);
    const auto stats = engine.run();
    return std::pair{stats.execution_time, stats.total_messages};
  };
  EXPECT_EQ(run_once(5), run_once(5));
}

TEST(Engine, ObserverSeesEveryRound) {
  EngineConfig config;
  config.mode = DeliveryMode::kSynchronous;
  std::vector<RelayHost> hosts(5);
  for (HostId i = 0; i < 5; ++i) {
    hosts[i].self = i;
    hosts[i].num_hosts = 5;
  }
  Engine<RelayHost> engine(std::move(hosts), config);
  std::vector<std::uint64_t> rounds_seen;
  const auto stats = engine.run(
      [&](std::uint64_t round, const std::vector<RelayHost>&) {
        rounds_seen.push_back(round);
      });
  ASSERT_EQ(rounds_seen.size(), stats.rounds_executed);
  for (std::size_t i = 0; i < rounds_seen.size(); ++i) {
    EXPECT_EQ(rounds_seen[i], i + 1);
  }
}

TEST(Engine, MaxRoundsCapStopsRunaway) {
  // A host that sends to itself forever can never quiesce.
  struct LoopHost {
    using Message = int;
    void on_message(HostId, const Message&) {}
    void on_round(Context<Message>& ctx) { ctx.send(ctx.self(), 1); }
  };
  EngineConfig config;
  config.max_rounds = 17;
  Engine<LoopHost> engine(std::vector<LoopHost>(2), config);
  const auto stats = engine.run();
  EXPECT_FALSE(stats.converged);
  EXPECT_EQ(stats.rounds_executed, 17U);
}

TEST(Engine, DelayInjectionLosesNothing) {
  EngineConfig config;
  config.mode = DeliveryMode::kSynchronous;
  config.faults.max_extra_delay = 3;
  config.seed = 11;
  std::vector<PingHost> hosts(2);
  for (HostId i = 0; i < 2; ++i) hosts[i].self = i;
  Engine<PingHost> engine(std::move(hosts), config);
  const auto stats = engine.run();
  EXPECT_TRUE(stats.converged);
  EXPECT_EQ(engine.hosts()[1].received_count, 1);
  EXPECT_GE(engine.hosts()[1].received_round, 2U);
  EXPECT_LE(engine.hosts()[1].received_round, 5U);
}

TEST(Engine, DuplicationDeliversAtLeastOnce) {
  int extra = 0;
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    EngineConfig config;
    config.mode = DeliveryMode::kSynchronous;
    config.faults.duplicate_probability = 0.5;
    config.seed = seed;
    std::vector<PingHost> hosts(2);
    for (HostId i = 0; i < 2; ++i) hosts[i].self = i;
    Engine<PingHost> engine(std::move(hosts), config);
    engine.run();
    const int received = engine.hosts()[1].received_count;
    ASSERT_GE(received, 1);
    ASSERT_LE(received, 2);
    if (received == 2) ++extra;
  }
  EXPECT_GT(extra, 0);  // ~50% duplication must fire at least once in 30
}

TEST(Engine, RejectsEmptyHostSet) {
  EngineConfig config;
  EXPECT_THROW(Engine<SilentHost>(std::vector<SilentHost>{}, config),
               util::CheckError);
}

}  // namespace
}  // namespace kcore::sim
