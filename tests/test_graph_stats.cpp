#include "graph/stats.h"

#include <gtest/gtest.h>

#include <array>

#include "graph/generators.h"

namespace kcore::graph {
namespace {

namespace gen = kcore::graph::gen;

TEST(Components, SingleComponent) {
  const auto c = connected_components(gen::cycle(10));
  EXPECT_EQ(c.num_components, 1U);
  EXPECT_EQ(c.largest_size, 10U);
}

TEST(Components, MultipleComponents) {
  const std::array<NodeId, 3> sizes{4, 6, 2};
  const auto c = connected_components(gen::disjoint_cliques(sizes));
  EXPECT_EQ(c.num_components, 3U);
  EXPECT_EQ(c.largest_size, 6U);
  // Nodes of the same clique share a label; different cliques differ.
  EXPECT_EQ(c.component_of[0], c.component_of[3]);
  EXPECT_NE(c.component_of[0], c.component_of[4]);
}

TEST(Components, IsolatedNodesAreOwnComponents) {
  const Graph g = Graph::from_edges(4, std::vector<Edge>{{0, 1}});
  const auto c = connected_components(g);
  EXPECT_EQ(c.num_components, 3U);
}

TEST(Bfs, DistancesOnChain) {
  const auto d = bfs_distances(gen::chain(6), 0);
  for (NodeId u = 0; u < 6; ++u) EXPECT_EQ(d[u], u);
}

TEST(Bfs, UnreachableMarked) {
  const Graph g = Graph::from_edges(4, std::vector<Edge>{{0, 1}, {2, 3}});
  const auto d = bfs_distances(g, 0);
  EXPECT_EQ(d[1], 1U);
  EXPECT_EQ(d[2], kUnreachable);
  EXPECT_EQ(d[3], kUnreachable);
}

TEST(Eccentricity, CenterVsEndOfChain) {
  const Graph g = gen::chain(9);
  EXPECT_EQ(eccentricity(g, 0), 8U);
  EXPECT_EQ(eccentricity(g, 4), 4U);
}

TEST(ExactDiameter, KnownGraphs) {
  EXPECT_EQ(exact_diameter(gen::chain(10)), 9U);
  EXPECT_EQ(exact_diameter(gen::cycle(10)), 5U);
  EXPECT_EQ(exact_diameter(gen::clique(8)), 1U);
  EXPECT_EQ(exact_diameter(gen::star(20)), 2U);
  EXPECT_EQ(exact_diameter(gen::grid(4, 7)), 9U);
}

TEST(ExactDiameter, UsesLargestComponent) {
  // chain(20) ∪ K3: largest component is the chain (diameter 19).
  const std::array<Graph, 2> parts{gen::chain(20), gen::clique(3)};
  EXPECT_EQ(exact_diameter(gen::disjoint_union(parts)), 19U);
}

TEST(DiameterLowerBound, ExactOnTreesAndTightOnChains) {
  // Double sweep is exact on trees; a chain is a tree.
  EXPECT_EQ(diameter_lower_bound(gen::chain(50), 3), 49U);
}

TEST(DiameterLowerBound, NeverExceedsExact) {
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const Graph g = gen::erdos_renyi_gnm(120, 300, seed);
    EXPECT_LE(diameter_lower_bound(g, seed), exact_diameter(g));
  }
}

TEST(DegreeSummary, CountsMinDegreeNodes) {
  const auto s = degree_summary(gen::star(6));
  EXPECT_EQ(s.min, 1U);
  EXPECT_EQ(s.max, 5U);
  EXPECT_EQ(s.num_min_degree_nodes, 5U);  // K of Corollary 1
  EXPECT_NEAR(s.avg, 10.0 / 6.0, 1e-12);
}

TEST(DegreeSummary, RegularGraph) {
  const auto s = degree_summary(gen::ring_lattice(30, 4));
  EXPECT_EQ(s.min, 4U);
  EXPECT_EQ(s.max, 4U);
  EXPECT_EQ(s.num_min_degree_nodes, 30U);
}

}  // namespace
}  // namespace kcore::graph
