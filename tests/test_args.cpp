#include "util/args.h"

#include <gtest/gtest.h>

#include "util/check.h"

namespace kcore::util {
namespace {

Args make(std::initializer_list<const char*> tokens) {
  std::vector<std::string> v;
  for (const char* t : tokens) v.emplace_back(t);
  return Args(std::move(v));
}

TEST(Args, PositionalArguments) {
  const auto args = make({"decompose", "extra"});
  ASSERT_EQ(args.positional().size(), 2U);
  EXPECT_EQ(args.positional()[0], "decompose");
  EXPECT_EQ(args.positional()[1], "extra");
}

TEST(Args, EqualsSyntax) {
  const auto args = make({"--n=100", "--name=web"});
  EXPECT_EQ(args.get("n").value(), "100");
  EXPECT_EQ(args.get("name").value(), "web");
}

TEST(Args, SpaceSyntax) {
  const auto args = make({"--input", "graph.txt", "--hosts", "16"});
  EXPECT_EQ(args.get("input").value(), "graph.txt");
  EXPECT_EQ(args.get_int("hosts", 0), 16);
}

TEST(Args, BareFlags) {
  const auto args = make({"--summary", "--exact-diameter"});
  EXPECT_TRUE(args.has("summary"));
  EXPECT_TRUE(args.has("exact-diameter"));
  EXPECT_FALSE(args.get("summary").has_value());
  EXPECT_FALSE(args.has("missing"));
}

TEST(Args, FlagFollowedByOption) {
  // "--summary --algo bz": summary must remain a bare flag.
  const auto args = make({"--summary", "--algo", "bz"});
  EXPECT_TRUE(args.has("summary"));
  EXPECT_FALSE(args.get("summary").has_value());
  EXPECT_EQ(args.get("algo").value(), "bz");
}

TEST(Args, TypedGettersWithDefaults) {
  const auto args = make({"--n", "42", "--scale", "0.5"});
  EXPECT_EQ(args.get_int("n", 7), 42);
  EXPECT_EQ(args.get_int("missing", 7), 7);
  EXPECT_EQ(args.get_double("scale", 1.0), 0.5);
  EXPECT_EQ(args.get_string("missing", "x"), "x");
}

TEST(Args, TypedGettersRejectGarbage) {
  const auto args = make({"--n", "12x", "--d", "1.2.3"});
  EXPECT_THROW((void)args.get_int("n", 0), CheckError);
  EXPECT_THROW((void)args.get_double("d", 0.0), CheckError);
}

TEST(Args, MalformedOptionThrows) {
  EXPECT_THROW(make({"--=x"}), CheckError);
  EXPECT_THROW(make({"--"}), CheckError);
}

TEST(Args, UnusedTracksUnqueriedOptions) {
  const auto args = make({"--used", "1", "--typo", "2"});
  EXPECT_EQ(args.get_int("used", 0), 1);
  const auto unused = args.unused();
  ASSERT_EQ(unused.size(), 1U);
  EXPECT_EQ(unused[0], "typo");
}

TEST(Args, MixedEverything) {
  const auto args = make(
      {"generate", "trailing", "--family=ba", "--n", "500", "--verbose"});
  EXPECT_EQ(args.positional(),
            (std::vector<std::string>{"generate", "trailing"}));
  EXPECT_EQ(args.get_string("family", ""), "ba");
  EXPECT_EQ(args.get_int("n", 0), 500);
  EXPECT_TRUE(args.has("verbose"));
}

TEST(Args, ValuelessOptionConsumesNextPositionalByDesign) {
  // Documented grammar: "--key value" binds greedily; a trailing
  // positional after a flag must come before it or use --key=value.
  const auto args = make({"--verbose", "trailing"});
  EXPECT_EQ(args.get("verbose").value(), "trailing");
  EXPECT_TRUE(args.positional().empty());
}

TEST(Args, ArgcArgvConstructor) {
  const char* argv[] = {"prog", "stats", "--input", "g.txt"};
  const Args args(4, argv);
  EXPECT_EQ(args.positional(), (std::vector<std::string>{"stats"}));
  EXPECT_EQ(args.get("input").value(), "g.txt");
}

}  // namespace
}  // namespace kcore::util
