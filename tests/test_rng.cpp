#include "util/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <set>

namespace kcore::util {
namespace {

TEST(SplitMix64, DeterministicForSeed) {
  SplitMix64 a(123);
  SplitMix64 b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiffer) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  EXPECT_NE(a.next(), b.next());
}

TEST(SplitMix64, KnownVector) {
  // Reference value from the public-domain splitmix64 reference code.
  SplitMix64 sm(0);
  EXPECT_EQ(sm.next(), 0xe220a8397b1dcdafULL);
}

TEST(Xoshiro256, DeterministicForSeed) {
  Xoshiro256 a(999);
  Xoshiro256 b(999);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Xoshiro256, NextBelowRespectsBound) {
  Xoshiro256 rng(7);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.next_below(bound), bound);
    }
  }
}

TEST(Xoshiro256, NextBelowOneIsAlwaysZero) {
  Xoshiro256 rng(5);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.next_below(1), 0U);
}

TEST(Xoshiro256, NextInRangeInclusive) {
  Xoshiro256 rng(11);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.next_in_range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Xoshiro256, NextDoubleInUnitInterval) {
  Xoshiro256 rng(13);
  double sum = 0.0;
  constexpr int kSamples = 10000;
  for (int i = 0; i < kSamples; ++i) {
    const double d = rng.next_double();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  // Mean of U[0,1) should be close to 0.5.
  EXPECT_NEAR(sum / kSamples, 0.5, 0.02);
}

TEST(Xoshiro256, BernoulliFrequency) {
  Xoshiro256 rng(17);
  int hits = 0;
  constexpr int kSamples = 20000;
  for (int i = 0; i < kSamples; ++i) hits += rng.next_bool(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / kSamples, 0.3, 0.02);
}

TEST(Xoshiro256, ForkedStreamsDecorrelated) {
  Xoshiro256 parent(23);
  auto s1 = parent.fork(0);
  auto s2 = parent.fork(1);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (s1.next() == s2.next()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(Shuffle, ProducesPermutation) {
  Xoshiro256 rng(29);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  auto shuffled = v;
  shuffle(shuffled, rng);
  auto sorted = shuffled;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, v);
  EXPECT_NE(shuffled, v);  // astronomically unlikely to be identity
}

TEST(Shuffle, HandlesTinyInputs) {
  Xoshiro256 rng(31);
  std::vector<int> empty;
  shuffle(empty, rng);
  EXPECT_TRUE(empty.empty());
  std::vector<int> one{42};
  shuffle(one, rng);
  EXPECT_EQ(one, std::vector<int>{42});
}

TEST(RandomPermutation, IsPermutationAndSeeded) {
  Xoshiro256 rng1(37);
  Xoshiro256 rng2(37);
  const auto p1 = random_permutation(50, rng1);
  const auto p2 = random_permutation(50, rng2);
  EXPECT_EQ(p1, p2);
  std::set<std::uint32_t> unique(p1.begin(), p1.end());
  EXPECT_EQ(unique.size(), 50U);
  EXPECT_EQ(*unique.begin(), 0U);
  EXPECT_EQ(*unique.rbegin(), 49U);
}

TEST(SampleWithoutReplacement, DistinctAndInRange) {
  Xoshiro256 rng(41);
  for (std::size_t n : {10UL, 100UL, 1000UL}) {
    for (std::size_t k : {0UL, 1UL, 5UL, n / 2, n}) {
      Xoshiro256 local = rng.fork(n * 1000 + k);
      const auto sample = sample_without_replacement(n, k, local);
      EXPECT_EQ(sample.size(), k);
      std::set<std::uint32_t> unique(sample.begin(), sample.end());
      EXPECT_EQ(unique.size(), k);
      for (const auto v : sample) EXPECT_LT(v, n);
    }
  }
}

TEST(SampleWithoutReplacement, RejectsOversample) {
  Xoshiro256 rng(43);
  EXPECT_THROW(sample_without_replacement(5, 6, rng), CheckError);
}

TEST(SplitStream, PureFunctionOfRootAndStream) {
  // The whole point vs Xoshiro256::fork: no hidden state, so the same
  // (root, stream) pair lands on the same seed no matter how many other
  // streams were derived before, on how many threads, in what order.
  constexpr std::uint64_t kRoot = 42;
  const std::uint64_t first = split_stream(kRoot, 7);
  for (std::uint64_t other = 0; other < 100; ++other) {
    (void)split_stream(kRoot, other);  // derivations never interfere
  }
  EXPECT_EQ(split_stream(kRoot, 7), first);
  // And it is constexpr — usable for compile-time seed tables.
  static_assert(split_stream(1, 0) == split_stream(1, 0));
}

TEST(SplitStream, StreamsAreDecorrelated) {
  // Distinct (root, stream) pairs must land on distinct seeds, including
  // the adversarial near-collisions: adjacent streams, adjacent roots,
  // and swapped (root, stream) roles.
  std::set<std::uint64_t> seeds;
  for (std::uint64_t root : {0ULL, 1ULL, 2ULL, 42ULL, ~0ULL}) {
    for (std::uint64_t stream = 0; stream < 64; ++stream) {
      seeds.insert(split_stream(root, stream));
    }
  }
  EXPECT_EQ(seeds.size(), 5u * 64u);
  EXPECT_NE(split_stream(1, 2), split_stream(2, 1));
  // A stream seed never trivially equals the root it came from.
  EXPECT_NE(split_stream(7, 0), 7u);
}

TEST(SplitStream, StreamRngMatchesSeedDerivation) {
  Xoshiro256 direct(split_stream(99, 3));
  Xoshiro256 named = stream_rng(99, 3);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(named.next(), direct.next());
}

}  // namespace
}  // namespace kcore::util
