// util::MemStorage is the foundation the crash-matrix tests stand on:
// if its durability model is wrong (bytes surviving a crash that a real
// disk would lose, or vice versa), every recovery test above it proves
// nothing. So the model itself is pinned here: volatile-until-sync,
// crash() semantics, the three fault kinds (crash-before, torn write,
// EIO), fire-once disarm — plus a RealStorage smoke test over the same
// interface in a temp directory.
#include "util/storage.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

namespace kcore::util {
namespace {

// --- durability model -------------------------------------------------------

TEST(MemStorage, WriteIsVolatileUntilSync) {
  MemStorage fs;
  fs.write_file("a", "hello");
  EXPECT_EQ(fs.read_file("a"), "hello");
  fs.crash();
  // Never synced: the file's very directory entry is gone.
  EXPECT_FALSE(fs.exists("a"));

  fs.write_file("b", "world");
  fs.sync_file("b");
  fs.crash();
  EXPECT_EQ(fs.read_file("b"), "world");
}

TEST(MemStorage, CrashDropsUnsyncedAppendTail) {
  MemStorage fs;
  fs.write_file("log", "AAAA");
  fs.sync_file("log");
  fs.append_file("log", "BBBB");
  EXPECT_EQ(fs.read_file("log"), "AAAABBBB");
  fs.crash();
  // Only the synced prefix survives — exactly what the WAL's torn-tail
  // scan has to cope with.
  EXPECT_EQ(fs.read_file("log"), "AAAA");
}

TEST(MemStorage, RewriteMakesContentsVolatileAgain) {
  MemStorage fs;
  fs.write_file("f", "old");
  fs.sync_file("f");
  fs.write_file("f", "new-longer");
  fs.crash();
  // The entry was durable but the rewritten bytes were not: an empty
  // file remains (durable_size reset by the truncating write).
  EXPECT_TRUE(fs.exists("f"));
  EXPECT_EQ(fs.read_file("f"), "");
}

TEST(MemStorage, RenameIsAtomicAndDurable) {
  MemStorage fs;
  fs.write_file("ckpt.tmp", "state");
  fs.sync_file("ckpt.tmp");
  fs.rename_file("ckpt.tmp", "ckpt");
  fs.crash();
  EXPECT_FALSE(fs.exists("ckpt.tmp"));
  EXPECT_EQ(fs.read_file("ckpt"), "state");
}

TEST(MemStorage, TruncateClampsDurableSize) {
  MemStorage fs;
  fs.write_file("f", "0123456789");
  fs.sync_file("f");
  fs.truncate_file("f", 4);
  fs.crash();
  EXPECT_EQ(fs.read_file("f"), "0123");
}

TEST(MemStorage, ListDirSeesFilesAndSubdirsOneLevelDeep) {
  MemStorage fs;
  fs.make_dir("state");
  fs.write_file("state/wal.log", "x");
  fs.write_file("state/checkpoint-1.ckpt", "y");
  fs.write_file("state/sub/nested", "z");
  fs.make_dir("state/sub");
  auto names = fs.list_dir("state");
  std::sort(names.begin(), names.end());
  EXPECT_EQ(names, (std::vector<std::string>{"checkpoint-1.ckpt", "sub",
                                             "wal.log"}));
  EXPECT_TRUE(fs.list_dir("nonexistent").empty());
}

TEST(MemStorage, MissingFileOperationsThrowIoError) {
  MemStorage fs;
  EXPECT_THROW(fs.read_file("nope"), IoError);
  EXPECT_THROW(fs.file_size("nope"), IoError);
  EXPECT_THROW(fs.sync_file("nope"), IoError);
  EXPECT_THROW(fs.rename_file("nope", "x"), IoError);
  EXPECT_THROW(fs.truncate_file("nope", 0), IoError);
  EXPECT_THROW(fs.remove_file("nope"), IoError);
}

// --- fault plans ------------------------------------------------------------

TEST(MemStorage, CrashBeforeFaultFiresOnceThenDisarms) {
  MemStorage fs;
  fs.write_file("a", "1");  // op 0
  const std::uint64_t next = fs.op_count();
  fs.set_fault({FaultPlan::Kind::kCrashBefore, next});
  EXPECT_THROW(fs.write_file("b", "2"), CrashPoint);
  EXPECT_TRUE(fs.crashed());
  // "b" never happened; "a" was volatile, so it is gone too.
  EXPECT_FALSE(fs.exists("b"));
  EXPECT_FALSE(fs.exists("a"));
  // Disarmed: recovery code running on the same storage is healthy.
  fs.write_file("c", "3");
  fs.sync_file("c");
  EXPECT_EQ(fs.read_file("c"), "3");
}

TEST(MemStorage, TornWritePersistsTheFrontHalfDurably) {
  MemStorage fs;
  fs.set_fault({FaultPlan::Kind::kTorn, fs.op_count()});
  EXPECT_THROW(fs.append_file("log", "ABCDEFGH"), CrashPoint);
  // Half the payload reached the platter before the power cut — the
  // case the WAL's CRC frame exists to catch.
  EXPECT_EQ(fs.read_file("log"), "ABCD");
  fs.crash();
  EXPECT_EQ(fs.read_file("log"), "ABCD");
}

TEST(MemStorage, TornFaultOnAReadOpIsAPlainCrash) {
  MemStorage fs;
  fs.write_file("f", "x");
  fs.sync_file("f");
  fs.set_fault({FaultPlan::Kind::kTorn, fs.op_count()});
  EXPECT_THROW(fs.exists("f"), CrashPoint);
  EXPECT_TRUE(fs.crashed());
  EXPECT_EQ(fs.read_file("f"), "x");
}

TEST(MemStorage, FailFaultThrowsIoErrorWithoutCrashing) {
  MemStorage fs;
  fs.write_file("f", "data");
  fs.sync_file("f");
  fs.set_fault({FaultPlan::Kind::kFail, fs.op_count()});
  EXPECT_THROW(fs.append_file("f", "more"), IoError);
  EXPECT_FALSE(fs.crashed());
  // EIO failed the op before it did anything; state is intact and the
  // plan has disarmed.
  EXPECT_EQ(fs.read_file("f"), "data");
  fs.append_file("f", "more");
  EXPECT_EQ(fs.read_file("f"), "datamore");
}

TEST(MemStorage, EveryCallCountsOneOp) {
  MemStorage fs;
  const std::uint64_t start = fs.op_count();
  fs.write_file("f", "x");  // 1
  fs.sync_file("f");        // 2
  fs.exists("f");           // 3 — reads count too: a crash can land
  fs.read_file("f");        // 4   between ANY two calls
  EXPECT_EQ(fs.op_count(), start + 4);
}

// --- RealStorage smoke (same interface, real files) -------------------------

TEST(RealStorage, RoundTripsThroughATempDir) {
  Storage& fs = real_storage();
  const std::string dir = ::testing::TempDir() + "/kcore_storage_smoke";
  fs.make_dir(dir + "/nested");
  EXPECT_TRUE(fs.exists(dir + "/nested"));

  const std::string path = dir + "/file.bin";
  fs.write_file(path, "hello ");
  fs.append_file(path, "world");
  fs.sync_file(path);
  EXPECT_EQ(fs.read_file(path), "hello world");
  EXPECT_EQ(fs.file_size(path), 11U);

  fs.truncate_file(path, 5);
  EXPECT_EQ(fs.read_file(path), "hello");

  const std::string renamed = dir + "/renamed.bin";
  fs.rename_file(path, renamed);
  EXPECT_FALSE(fs.exists(path));
  EXPECT_TRUE(fs.exists(renamed));

  auto names = fs.list_dir(dir);
  std::sort(names.begin(), names.end());
  EXPECT_EQ(names, (std::vector<std::string>{"nested", "renamed.bin"}));

  fs.remove_file(renamed);
  EXPECT_FALSE(fs.exists(renamed));
  EXPECT_THROW(fs.read_file(renamed), IoError);
}

}  // namespace
}  // namespace kcore::util
