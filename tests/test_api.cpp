// The facade contract: api::decompose must be a zero-cost veneer over the
// legacy entry points — bit-identical coreness and traffic at fixed seeds
// for every registry protocol — plus the registry/options machinery
// itself: string round-trips for every enum, unknown-protocol and
// invalid-options error paths, and the unified ProgressObserver stream.
//
// These are the only tests allowed to include the core protocol headers
// alongside api/api.h: the whole point is comparing the two layers.
#include <gtest/gtest.h>

#include <algorithm>
#include <thread>
#include <variant>
#include <vector>

#include "api/api.h"
#include "api/cli_options.h"
#include "core/one_to_many.h"
#include "core/one_to_one.h"
#include "core/pregel_kcore.h"
#include "graph/generators.h"
#include "seq/kcore_seq.h"
#include "util/check.h"

namespace kcore {
namespace {

using graph::Graph;
using graph::NodeId;
namespace gen = graph::gen;

void expect_traffic_eq(const sim::TrafficStats& a, const sim::TrafficStats& b,
                       const std::string& label) {
  EXPECT_EQ(a.total_messages, b.total_messages) << label;
  EXPECT_EQ(a.execution_time, b.execution_time) << label;
  EXPECT_EQ(a.rounds_executed, b.rounds_executed) << label;
  EXPECT_EQ(a.converged, b.converged) << label;
  EXPECT_EQ(a.sent_by_host, b.sent_by_host) << label;
}

// ---------------------------------------------------------------------------
// Parity with the legacy entry points
// ---------------------------------------------------------------------------

TEST(ApiParity, OneToOneMatchesLegacyRunner) {
  const Graph g = gen::barabasi_albert(300, 3, 7);
  for (const auto mode :
       {sim::DeliveryMode::kSynchronous, sim::DeliveryMode::kCycleRandomOrder}) {
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
      api::RunOptions options;
      options.mode = mode;
      options.seed = seed;
      const auto facade =
          api::decompose(g, api::kProtocolOneToOne, options);
      const auto legacy = core::run_one_to_one(g, options);
      const std::string label =
          std::string("mode=") + api::to_string(mode) + " seed=" +
          std::to_string(seed);
      EXPECT_EQ(facade.coreness, legacy.coreness) << label;
      expect_traffic_eq(facade.traffic, legacy.traffic, label);
      const auto& extras = std::get<api::OneToOneExtras>(facade.extras);
      EXPECT_EQ(extras.last_send_round, legacy.last_send_round) << label;
      EXPECT_EQ(extras.activity_transitions, legacy.activity_transitions)
          << label;
    }
  }
}

TEST(ApiParity, OneToOneMatchesLegacyUnderFaults) {
  const Graph g = gen::erdos_renyi_gnm(200, 600, 11);
  api::RunOptions options;
  options.seed = 5;
  options.faults.max_extra_delay = 2;
  options.faults.duplicate_probability = 0.2;
  const auto facade = api::decompose(g, api::kProtocolOneToOne, options);
  const auto legacy = core::run_one_to_one(g, options);
  EXPECT_EQ(facade.coreness, legacy.coreness);
  expect_traffic_eq(facade.traffic, legacy.traffic, "faulty");
}

TEST(ApiParity, OneToManyMatchesLegacyRunner) {
  const Graph g = gen::watts_strogatz(400, 6, 0.1, 13);
  for (const sim::HostId hosts : {1U, 5U, 16U}) {
    for (const auto comm :
         {api::CommPolicy::kBroadcast, api::CommPolicy::kPointToPoint}) {
      api::RunOptions options;
      options.num_hosts = hosts;
      options.comm = comm;
      options.assignment = api::AssignmentPolicy::kBlock;
      options.seed = 17;
      const auto facade =
          api::decompose(g, api::kProtocolOneToMany, options);
      const auto legacy = core::run_one_to_many(g, options);
      const std::string label = std::string("hosts=") +
                                std::to_string(hosts) + " comm=" +
                                api::to_string(comm);
      EXPECT_EQ(facade.coreness, legacy.coreness) << label;
      expect_traffic_eq(facade.traffic, legacy.traffic, label);
      const auto& extras = std::get<api::OneToManyExtras>(facade.extras);
      EXPECT_EQ(extras.estimates_shipped_total,
                legacy.estimates_shipped_total)
          << label;
      EXPECT_DOUBLE_EQ(extras.overhead_per_node, legacy.overhead_per_node)
          << label;
      EXPECT_EQ(extras.estimates_shipped_by_host,
                legacy.estimates_shipped_by_host)
          << label;
      EXPECT_EQ(extras.last_send_round_by_host,
                legacy.last_send_round_by_host)
          << label;
    }
  }
}

TEST(ApiParity, BspMatchesLegacyRunner) {
  const Graph g = gen::barabasi_albert(250, 4, 3);
  api::RunOptions options;
  options.num_hosts = 8;
  const auto facade = api::decompose(g, api::kProtocolBsp, options);
  const auto legacy = core::run_pregel_kcore(g, 8);
  EXPECT_EQ(facade.coreness, legacy.coreness);
  const auto& stats = std::get<api::BspExtras>(facade.extras).stats;
  EXPECT_EQ(stats.supersteps, legacy.stats.supersteps);
  EXPECT_EQ(stats.messages_emitted, legacy.stats.messages_emitted);
  EXPECT_EQ(stats.messages_delivered, legacy.stats.messages_delivered);
  EXPECT_EQ(stats.messages_cross_worker, legacy.stats.messages_cross_worker);
  EXPECT_EQ(stats.converged, legacy.stats.converged);
  // The traffic mapping documented in api.h.
  EXPECT_EQ(facade.traffic.total_messages, stats.messages_delivered);
  EXPECT_EQ(facade.traffic.rounds_executed, stats.supersteps);
  EXPECT_TRUE(facade.traffic.converged);
}

TEST(ApiParity, BspHonorsMaxRounds) {
  const Graph g = gen::barabasi_albert(250, 4, 3);
  api::RunOptions options;
  options.num_hosts = 8;
  options.max_rounds = 1;
  const auto capped = api::decompose(g, api::kProtocolBsp, options);
  EXPECT_FALSE(capped.traffic.converged);
  EXPECT_EQ(capped.traffic.rounds_executed, 1U);
}

TEST(ApiParity, SequentialBaselinesMatchSeq) {
  const Graph g = gen::plant_dense_core(gen::barabasi_albert(200, 3, 5), 30,
                                        8, 6);
  const auto bz = api::decompose(g, api::kProtocolBz);
  EXPECT_EQ(bz.coreness, seq::coreness_bz(g));
  EXPECT_TRUE(bz.traffic.converged);
  EXPECT_EQ(bz.traffic.total_messages, 0U);
  EXPECT_TRUE(std::holds_alternative<std::monostate>(bz.extras));

  const auto peeling = api::decompose(g, api::kProtocolPeeling);
  EXPECT_EQ(peeling.coreness, seq::coreness_peeling(g));
}

TEST(ApiParity, AllBuiltinProtocolsAgreeThroughTheFacade) {
  const Graph g = gen::montresor_worst_case(40);
  const auto truth = seq::coreness_bz(g);
  api::RunOptions options;
  options.num_hosts = 4;
  // The five built-ins by key, not names(): another test registers an
  // extra (deliberately wrong) protocol in this process.
  for (const auto key :
       {api::kProtocolBz, api::kProtocolPeeling, api::kProtocolOneToOne,
        api::kProtocolOneToMany, api::kProtocolBsp}) {
    const std::string name(key);
    const auto report = api::decompose(g, name, options);
    EXPECT_EQ(report.coreness, truth) << name;
    EXPECT_TRUE(report.traffic.converged) << name;
    EXPECT_EQ(report.protocol, name);
    EXPECT_GE(report.elapsed_ms, 0.0) << name;
  }
}

// ---------------------------------------------------------------------------
// Registry behavior
// ---------------------------------------------------------------------------

TEST(ApiRegistry, BuiltinsAreRegisteredInOrder) {
  const auto names = api::ProtocolRegistry::instance().names();
  const std::vector<std::string> expected{"bz", "peeling", "one-to-one",
                                          "one-to-many", "bsp"};
  // Prefix check, not equality: registration is append-only and another
  // test in this process may have added a custom protocol after the
  // built-ins.
  ASSERT_GE(names.size(), expected.size());
  EXPECT_TRUE(std::equal(expected.begin(), expected.end(), names.begin()));
  for (const auto& name : expected) {
    EXPECT_TRUE(api::ProtocolRegistry::instance().contains(name));
  }
  EXPECT_FALSE(api::ProtocolRegistry::instance().contains("mapreduce"));
}

TEST(ApiRegistry, UnknownProtocolErrorListsRegisteredKeys) {
  try {
    (void)api::ProtocolRegistry::instance().entry("gossip");
    FAIL() << "expected CheckError";
  } catch (const util::CheckError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("gossip"), std::string::npos) << what;
    EXPECT_NE(what.find("one-to-many"), std::string::npos) << what;
  }
}

TEST(ApiRegistry, DuplicateRegistrationThrows) {
  EXPECT_THROW(api::ProtocolRegistry::instance().add(
                   {"bz", "x", "duplicate", api::Capabilities{},
                    [](const api::DecomposeRequest&,
                       const api::ProgressObserver&) {
                      return api::DecomposeReport{};
                    },
                    nullptr}),
               util::CheckError);
}

TEST(ApiRegistry, RegistrationNeedsRunnerOrPreparer) {
  EXPECT_THROW(api::ProtocolRegistry::instance().add(
                   {"test-inert", "n/a", "neither runner nor preparer",
                    api::Capabilities{}, nullptr, nullptr}),
               util::CheckError);
}

TEST(ApiRegistry, CustomProtocolIsDispatchable) {
  auto& registry = api::ProtocolRegistry::instance();
  if (!registry.contains("test-constant")) {
    // Runner-only registration: no preparer, default (consume-nothing)
    // capabilities — the facade must still dispatch it, via the Session
    // fallback that re-runs the runner each time.
    registry.add({"test-constant", "n/a", "returns all-zero coreness",
                  api::Capabilities{},
                  [](const api::DecomposeRequest& request,
                     const api::ProgressObserver&) {
                    api::DecomposeReport report;
                    report.coreness.assign(request.graph->num_nodes(), 0);
                    report.traffic.converged = true;
                    return report;
                  },
                  nullptr});
  }
  const Graph g = gen::clique(5);
  const auto report = api::decompose(g, "test-constant");
  EXPECT_EQ(report.protocol, "test-constant");
  EXPECT_EQ(report.coreness, std::vector<NodeId>(5, 0));
}

// ---------------------------------------------------------------------------
// Capability descriptors
// ---------------------------------------------------------------------------

TEST(ApiCapabilities, ExecutionKindRoundTrips) {
  for (const auto kind :
       {api::ExecutionKind::kSequential, api::ExecutionKind::kSimulated,
        api::ExecutionKind::kThreadedRounds, api::ExecutionKind::kAsync}) {
    const auto parsed = api::parse_execution_kind(api::to_string(kind));
    ASSERT_TRUE(parsed.has_value()) << api::to_string(kind);
    EXPECT_EQ(*parsed, kind);
  }
  EXPECT_FALSE(api::parse_execution_kind("quantum").has_value());
  EXPECT_STREQ(api::to_string(api::ObserverGranularity::kNone), "none");
  EXPECT_STREQ(api::to_string(api::ObserverGranularity::kPerRound),
               "per-round");
}

TEST(ApiCapabilities, ConsumedKnobNamesAreStableAndOrdered) {
  api::Capabilities caps;
  EXPECT_TRUE(api::consumed_knobs(caps).empty());
  caps.consumes_fault_plan = true;
  caps.consumes_threads = true;
  caps.consumes_delivery_mode = true;
  const std::vector<std::string_view> expected{"mode", "faults", "threads"};
  EXPECT_EQ(api::consumed_knobs(caps), expected);
}

TEST(ApiCapabilities, BuiltinDescriptorsAreTruthful) {
  const auto& registry = api::ProtocolRegistry::instance();
  const auto caps = [&](std::string_view name) -> const api::Capabilities& {
    return registry.entry(name).capabilities;
  };
  // The eight built-ins by key, not entries(): other tests register
  // custom protocols with arbitrary descriptors in this process.
  const std::vector<std::string_view> builtins{
      api::kProtocolBz,        api::kProtocolPeeling,
      api::kProtocolOneToOne,  api::kProtocolOneToMany,
      api::kProtocolBsp,       api::kProtocolOneToManyPar,
      api::kProtocolBspPar,    api::kProtocolBspAsync};
  // Sequential baselines: consume nothing, stream nothing.
  for (const auto key : {api::kProtocolBz, api::kProtocolPeeling}) {
    EXPECT_EQ(caps(key).execution, api::ExecutionKind::kSequential) << key;
    EXPECT_TRUE(api::consumed_knobs(caps(key)).empty()) << key;
    EXPECT_EQ(caps(key).observer, api::ObserverGranularity::kNone) << key;
    EXPECT_TRUE(caps(key).deterministic_extras) << key;
  }
  // The channel protocols are the only fault-plan consumers.
  for (const auto key : builtins) {
    const bool is_channel = key == api::kProtocolOneToOne ||
                            key == api::kProtocolOneToMany;
    EXPECT_EQ(caps(key).consumes_fault_plan, is_channel) << key;
  }
  // §3.2.1 comm policy: exactly the one-to-many family.
  for (const auto key : builtins) {
    const bool flushes_hosts = key == api::kProtocolOneToMany ||
                               key == api::kProtocolOneToManyPar;
    EXPECT_EQ(caps(key).consumes_comm_policy, flushes_hosts) << key;
  }
  // Real-thread family: consumes threads, executes on real workers.
  for (const auto key : {api::kProtocolOneToManyPar, api::kProtocolBspPar}) {
    EXPECT_EQ(caps(key).execution, api::ExecutionKind::kThreadedRounds)
        << key;
    EXPECT_TRUE(caps(key).consumes_threads) << key;
    EXPECT_TRUE(caps(key).deterministic_extras) << key;
  }
  // The async runtime: round-free (no observer stream), the only
  // built-in with a schedule-dependent profile, and the only consumer of
  // the scheduling-policy knob.
  EXPECT_EQ(caps(api::kProtocolBspAsync).execution,
            api::ExecutionKind::kAsync);
  EXPECT_EQ(caps(api::kProtocolBspAsync).observer,
            api::ObserverGranularity::kNone);
  EXPECT_FALSE(caps(api::kProtocolBspAsync).deterministic_extras);
  for (const auto key : builtins) {
    EXPECT_EQ(caps(key).consumes_sched, key == api::kProtocolBspAsync)
        << key;
  }
  for (const auto key : builtins) {
    if (key != api::kProtocolBspAsync) {
      EXPECT_TRUE(caps(key).deterministic_extras) << key;
    }
  }
  // Every simulated / threaded-rounds runtime streams per-round events.
  for (const auto key :
       {api::kProtocolOneToOne, api::kProtocolOneToMany, api::kProtocolBsp,
        api::kProtocolOneToManyPar, api::kProtocolBspPar}) {
    EXPECT_EQ(caps(key).observer, api::ObserverGranularity::kPerRound)
        << key;
  }
}

// ---------------------------------------------------------------------------
// Report timing invariant
// ---------------------------------------------------------------------------

TEST(ApiReport, ElapsedEqualsSetupPlusRunWherePhaseTimingsExist) {
  // The satellite fix for the old double-counting ambiguity: where the
  // extras carry phase timings, elapsed_ms is EXACTLY their sum (the
  // phases partition the elapsed time), for one-shot and warm runs alike.
  const Graph g = gen::barabasi_albert(300, 3, 9);
  api::RunOptions options;
  options.threads = 2;
  options.num_hosts = 4;
  for (const auto protocol :
       {api::kProtocolOneToManyPar, api::kProtocolBspPar,
        api::kProtocolBspAsync}) {
    const auto report = api::decompose(g, protocol, options);
    if (const auto* par = std::get_if<api::ParExtras>(&report.extras)) {
      EXPECT_EQ(report.elapsed_ms, par->setup_ms + par->run_ms) << protocol;
      EXPECT_GT(par->setup_ms, 0.0) << protocol;
    } else {
      const auto& async = std::get<api::AsyncExtras>(report.extras);
      EXPECT_EQ(report.elapsed_ms, async.setup_ms + async.run_ms)
          << protocol;
      EXPECT_GT(async.setup_ms, 0.0) << protocol;
    }
  }
}

TEST(ApiReport, ElapsedInvariantHoldsUnderConcurrentOneShots) {
  // The phase-timing partition must survive concurrency: one-shot
  // decompose() calls racing on separate threads still each report
  // elapsed_ms == setup_ms + run_ms (each call derives and times its
  // own state; nothing timing-related is shared).
  const Graph g = gen::barabasi_albert(250, 3, 15);
  api::RunOptions options;
  options.threads = 2;
  options.num_hosts = 4;
  for (const auto protocol :
       {api::kProtocolOneToManyPar, api::kProtocolBspPar,
        api::kProtocolBspAsync}) {
    constexpr unsigned kCallers = 3;
    std::vector<api::DecomposeReport> reports(kCallers);
    std::vector<std::thread> pool;
    pool.reserve(kCallers);
    for (unsigned c = 0; c < kCallers; ++c) {
      pool.emplace_back([&, c] {
        reports[c] = api::decompose(g, protocol, options);
      });
    }
    for (auto& t : pool) t.join();
    for (const auto& report : reports) {
      if (const auto* par = std::get_if<api::ParExtras>(&report.extras)) {
        EXPECT_EQ(report.elapsed_ms, par->setup_ms + par->run_ms) << protocol;
      } else {
        const auto& async = std::get<api::AsyncExtras>(report.extras);
        EXPECT_EQ(report.elapsed_ms, async.setup_ms + async.run_ms)
            << protocol;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Enum string round-trips
// ---------------------------------------------------------------------------

TEST(ApiEnums, DeliveryModeRoundTrips) {
  for (const auto mode : {sim::DeliveryMode::kSynchronous,
                          sim::DeliveryMode::kCycleRandomOrder}) {
    const auto parsed = api::parse_delivery_mode(api::to_string(mode));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, mode);
  }
  EXPECT_EQ(api::parse_delivery_mode("synchronous"),
            sim::DeliveryMode::kSynchronous);
  EXPECT_FALSE(api::parse_delivery_mode("async").has_value());
}

TEST(ApiEnums, CommPolicyRoundTrips) {
  for (const auto policy :
       {api::CommPolicy::kBroadcast, api::CommPolicy::kPointToPoint}) {
    const auto parsed = api::parse_comm_policy(api::to_string(policy));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, policy);
  }
  EXPECT_EQ(api::parse_comm_policy("p2p"), api::CommPolicy::kPointToPoint);
  EXPECT_FALSE(api::parse_comm_policy("carrier-pigeon").has_value());
}

TEST(ApiEnums, SchedPolicyRoundTrips) {
  for (const auto policy :
       {api::SchedPolicy::kLifo, api::SchedPolicy::kDelta,
        api::SchedPolicy::kBound}) {
    const auto parsed = api::parse_sched_policy(api::to_string(policy));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, policy);
  }
  EXPECT_FALSE(api::parse_sched_policy("fifo").has_value());
}

TEST(ApiEnums, AssignmentPolicyRoundTrips) {
  for (const auto policy :
       {api::AssignmentPolicy::kModulo, api::AssignmentPolicy::kBlock,
        api::AssignmentPolicy::kRandom, api::AssignmentPolicy::kHash}) {
    const auto parsed = api::parse_assignment_policy(api::to_string(policy));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, policy);
  }
  EXPECT_FALSE(api::parse_assignment_policy("metis").has_value());
}

// ---------------------------------------------------------------------------
// Validation error paths
// ---------------------------------------------------------------------------

TEST(ApiValidate, ReportsEveryProblem) {
  api::DecomposeRequest request;  // null graph, default protocol "bz"
  request.protocol = "quantum";
  request.options.num_hosts = 0;
  request.options.faults.duplicate_probability = 1.5;
  const auto problems = api::validate(request);
  ASSERT_EQ(problems.size(), 4U);  // graph, protocol, hosts, dup-prob
  EXPECT_NE(problems[0].find("graph"), std::string::npos);
  EXPECT_NE(problems[1].find("quantum"), std::string::npos);
  EXPECT_NE(problems[2].find("num_hosts"), std::string::npos);
  EXPECT_NE(problems[3].find("duplicate_probability"), std::string::npos);
}

TEST(ApiValidate, FaultPlanRejectedForFaultFreeRuntimes) {
  const Graph g = gen::clique(4);
  api::RunOptions options;
  options.faults.max_extra_delay = 2;
  for (const auto protocol :
       {api::kProtocolBz, api::kProtocolPeeling, api::kProtocolBsp,
        api::kProtocolBspAsync}) {
    api::DecomposeRequest request;
    request.graph = &g;
    request.protocol = std::string(protocol);
    request.options = options;
    const auto problems = api::validate(request);
    ASSERT_EQ(problems.size(), 1U) << protocol;
    EXPECT_NE(problems[0].find("fault"), std::string::npos) << protocol;
    EXPECT_THROW((void)api::decompose(request), util::CheckError)
        << protocol;
  }
  // The round-engine protocols accept the same plan.
  for (const auto protocol :
       {api::kProtocolOneToOne, api::kProtocolOneToMany}) {
    const auto report = api::decompose(g, protocol, options);
    EXPECT_TRUE(report.traffic.converged) << protocol;
  }
}

TEST(ApiValidate, ChannellessProtocolsRejectCommPolicy) {
  // The §3.2.1 comm policy shapes host-to-host flushes; for a runtime
  // with no such channels (sequential baselines, the BSP ports' shared
  // tables, the async estimate table) a broadcast policy would be a
  // silent no-op, so validate() must refuse it with a pointer to the
  // protocols that do consume it.
  const Graph g = gen::clique(4);
  api::DecomposeRequest request;
  request.graph = &g;
  request.options.comm = api::CommPolicy::kBroadcast;
  for (const auto protocol :
       {api::kProtocolBz, api::kProtocolPeeling, api::kProtocolOneToOne,
        api::kProtocolBsp, api::kProtocolBspPar, api::kProtocolBspAsync}) {
    request.protocol = std::string(protocol);
    const auto problems = api::validate(request);
    ASSERT_EQ(problems.size(), 1U) << protocol;
    EXPECT_NE(problems[0].find("broadcast"), std::string::npos) << protocol;
    EXPECT_NE(problems[0].find("one-to-many"), std::string::npos)
        << protocol;
    EXPECT_THROW((void)api::decompose(request), util::CheckError)
        << protocol;
  }
  // The protocols that flush host-to-host keep accepting it.
  for (const auto protocol :
       {api::kProtocolOneToMany, api::kProtocolOneToManyPar}) {
    request.protocol = std::string(protocol);
    EXPECT_TRUE(api::validate(request).empty()) << protocol;
  }
  // And the default (point-to-point) stays valid everywhere.
  request.protocol = std::string(api::kProtocolBspAsync);
  request.options.comm = api::CommPolicy::kPointToPoint;
  EXPECT_TRUE(api::validate(request).empty());
}

TEST(ApiValidate, AsyncFaultAndCommProblemsAccumulate) {
  const Graph g = gen::clique(4);
  api::DecomposeRequest request;
  request.graph = &g;
  request.protocol = std::string(api::kProtocolBspAsync);
  request.options.faults.duplicate_probability = 0.5;
  request.options.comm = api::CommPolicy::kBroadcast;
  const auto problems = api::validate(request);
  ASSERT_EQ(problems.size(), 2U);
  EXPECT_NE(problems[0].find("channel-fault"), std::string::npos);
  EXPECT_NE(problems[1].find("broadcast"), std::string::npos);
}

TEST(ApiValidate, ThreadsRejectedForPoollessRuntimes) {
  // --threads on a runtime with no worker pool would silently report
  // single-threaded results as if a pool had run; the capability pass
  // turns that into an actionable error naming the consumers.
  const Graph g = gen::clique(4);
  api::DecomposeRequest request;
  request.graph = &g;
  request.options.threads = 4;
  for (const auto protocol :
       {api::kProtocolBz, api::kProtocolPeeling, api::kProtocolOneToOne,
        api::kProtocolOneToMany, api::kProtocolBsp}) {
    request.protocol = std::string(protocol);
    const auto problems = api::validate(request);
    ASSERT_EQ(problems.size(), 1U) << protocol;
    EXPECT_NE(problems[0].find("--threads"), std::string::npos) << protocol;
    EXPECT_NE(problems[0].find("bsp-par"), std::string::npos) << protocol;
  }
  for (const auto protocol :
       {api::kProtocolOneToManyPar, api::kProtocolBspPar,
        api::kProtocolBspAsync}) {
    request.protocol = std::string(protocol);
    EXPECT_TRUE(api::validate(request).empty()) << protocol;
  }
}

TEST(ApiValidate, SchedRejectedForFixedScheduleRuntimes) {
  // --sched picks the async pool's pop order; aimed at any other runtime
  // it would silently report results as if the policy had been honored.
  const Graph g = gen::clique(4);
  api::DecomposeRequest request;
  request.graph = &g;
  request.options.sched = api::SchedPolicy::kBound;
  for (const auto protocol :
       {api::kProtocolBz, api::kProtocolPeeling, api::kProtocolOneToOne,
        api::kProtocolOneToMany, api::kProtocolBsp,
        api::kProtocolOneToManyPar, api::kProtocolBspPar}) {
    request.protocol = std::string(protocol);
    const auto problems = api::validate(request);
    ASSERT_EQ(problems.size(), 1U) << protocol;
    EXPECT_NE(problems[0].find("--sched"), std::string::npos) << protocol;
    EXPECT_NE(problems[0].find("bsp-async"), std::string::npos) << protocol;
  }
  for (const auto sched : {api::SchedPolicy::kLifo, api::SchedPolicy::kDelta,
                           api::SchedPolicy::kBound}) {
    request.protocol = std::string(api::kProtocolBspAsync);
    request.options.sched = sched;
    EXPECT_TRUE(api::validate(request).empty())
        << api::to_string(sched);
  }
}

TEST(ApiValidate, DeliveryModeRejectedForScheduleFreeRuntimes) {
  // --mode shapes the round simulator's delivery schedule; aimed at a
  // runtime with no such schedule it would silently report results as if
  // synchronous delivery had been simulated.
  const Graph g = gen::clique(4);
  api::DecomposeRequest request;
  request.graph = &g;
  request.options.mode = sim::DeliveryMode::kSynchronous;
  for (const auto protocol :
       {api::kProtocolBz, api::kProtocolPeeling, api::kProtocolBsp,
        api::kProtocolBspPar, api::kProtocolBspAsync}) {
    request.protocol = std::string(protocol);
    if (protocol == api::kProtocolBspPar ||
        protocol == api::kProtocolBspAsync) {
      request.options.threads = 2;  // keep the cell otherwise valid
    } else {
      request.options.threads = 0;
    }
    const auto problems = api::validate(request);
    ASSERT_EQ(problems.size(), 1U) << protocol;
    EXPECT_NE(problems[0].find("--mode"), std::string::npos) << protocol;
    EXPECT_NE(problems[0].find("one-to-one"), std::string::npos) << protocol;
  }
  // The simulated channel protocols keep accepting it.
  request.options.threads = 0;
  for (const auto protocol :
       {api::kProtocolOneToOne, api::kProtocolOneToMany}) {
    request.protocol = std::string(protocol);
    EXPECT_TRUE(api::validate(request).empty()) << protocol;
  }
}

TEST(ApiValidate, CustomProtocolRulesDeriveFromItsCapabilities) {
  // validate() has never heard of this protocol by name — every rule it
  // applies must come from the registered descriptor. A consume-nothing
  // descriptor rejects all three exclusive knobs at once; a descriptor
  // that claims them accepts the same request.
  auto& registry = api::ProtocolRegistry::instance();
  const auto noop_runner = [](const api::DecomposeRequest& request,
                              const api::ProgressObserver&) {
    api::DecomposeReport report;
    report.coreness.assign(request.graph->num_nodes(), 0);
    report.traffic.converged = true;
    return report;
  };
  if (!registry.contains("test-consumes-nothing")) {
    registry.add({"test-consumes-nothing", "n/a", "capability negative",
                  api::Capabilities{}, noop_runner, nullptr});
  }
  if (!registry.contains("test-consumes-all")) {
    api::Capabilities caps;
    caps.consumes_fault_plan = true;
    caps.consumes_comm_policy = true;
    caps.consumes_threads = true;
    registry.add({"test-consumes-all", "n/a", "capability positive", caps,
                  noop_runner, nullptr});
  }
  const Graph g = gen::clique(4);
  api::DecomposeRequest request;
  request.graph = &g;
  request.options.faults.max_extra_delay = 1;
  request.options.comm = api::CommPolicy::kBroadcast;
  request.options.threads = 2;
  request.protocol = "test-consumes-nothing";
  EXPECT_EQ(api::validate(request).size(), 3U);
  request.protocol = "test-consumes-all";
  EXPECT_TRUE(api::validate(request).empty());
}

TEST(ApiValidate, DecomposeThrowsOnUnknownProtocol) {
  const Graph g = gen::clique(4);
  EXPECT_THROW((void)api::decompose(g, "simulated-annealing"),
               util::CheckError);
}

TEST(ApiValidate, ValidRequestHasNoProblems) {
  const Graph g = gen::clique(4);
  api::DecomposeRequest request;
  request.graph = &g;
  request.protocol = "one-to-many";
  EXPECT_TRUE(api::validate(request).empty());
}

// ---------------------------------------------------------------------------
// Unified progress stream
// ---------------------------------------------------------------------------

TEST(ApiProgress, StreamsRoundsEstimatesAndMessages) {
  const Graph g = gen::barabasi_albert(150, 3, 21);
  const auto truth = seq::coreness_bz(g);
  for (const auto protocol :
       {api::kProtocolOneToOne, api::kProtocolOneToMany, api::kProtocolBsp}) {
    std::uint64_t last_round = 0;
    std::uint64_t last_messages = 0;
    std::size_t events = 0;
    const auto report = api::decompose(
        g, protocol, {}, [&](const api::ProgressEvent& event) {
          EXPECT_EQ(event.round, last_round + 1) << protocol;
          EXPECT_EQ(event.estimates.size(), g.num_nodes()) << protocol;
          EXPECT_GE(event.messages, last_messages) << protocol;
          for (NodeId u = 0; u < g.num_nodes(); ++u) {
            EXPECT_GE(event.estimates[u], truth[u])
                << protocol << " node " << u;
          }
          last_round = event.round;
          last_messages = event.messages;
          ++events;
        });
    EXPECT_GT(events, 0U) << protocol;
    EXPECT_EQ(last_messages, report.traffic.total_messages) << protocol;
  }
}

TEST(ApiProgress, SequentialBaselinesEmitNoEvents) {
  const Graph g = gen::clique(6);
  std::size_t events = 0;
  const auto report = api::decompose(
      g, api::kProtocolBz, {},
      [&](const api::ProgressEvent&) { ++events; });
  EXPECT_EQ(events, 0U);
  EXPECT_EQ(report.coreness, std::vector<NodeId>(6, 5));
}

// ---------------------------------------------------------------------------
// CLI option parsing
// ---------------------------------------------------------------------------

TEST(ApiCliOptions, ParsesTheSharedFlagSet) {
  const util::Args args({"decompose", "--mode", "sync", "--seed", "9",
                         "--max-rounds", "77", "--hosts", "32",
                         "--assignment", "hash", "--comm", "broadcast",
                         "--sched", "bound", "--max-extra-delay", "3",
                         "--dup-prob", "0.25", "--no-targeted-send"});
  const auto options = api::run_options_from_args(args);
  EXPECT_EQ(options.mode, sim::DeliveryMode::kSynchronous);
  EXPECT_EQ(options.seed, 9U);
  EXPECT_EQ(options.max_rounds, 77U);
  EXPECT_EQ(options.num_hosts, 32U);
  EXPECT_EQ(options.assignment, api::AssignmentPolicy::kHash);
  EXPECT_EQ(options.comm, api::CommPolicy::kBroadcast);
  EXPECT_EQ(options.sched, api::SchedPolicy::kBound);
  EXPECT_EQ(options.faults.max_extra_delay, 3U);
  EXPECT_DOUBLE_EQ(options.faults.duplicate_probability, 0.25);
  EXPECT_FALSE(options.targeted_send);
}

TEST(ApiCliOptions, DefaultsSurviveWhenFlagsAbsent) {
  const util::Args args({"decompose"});
  const auto options = api::run_options_from_args(args);
  EXPECT_EQ(options.mode, sim::DeliveryMode::kCycleRandomOrder);
  EXPECT_EQ(options.seed, 1U);
  EXPECT_EQ(options.num_hosts, 16U);
  EXPECT_EQ(options.sched, api::SchedPolicy::kLifo);
  EXPECT_TRUE(options.targeted_send);
}

TEST(ApiCliOptions, BadEnumValueThrowsActionably) {
  const util::Args args({"decompose", "--mode", "warp"});
  try {
    (void)api::run_options_from_args(args);
    FAIL() << "expected CheckError";
  } catch (const util::CheckError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("warp"), std::string::npos) << what;
    EXPECT_NE(what.find("cycle"), std::string::npos) << what;
  }
}

}  // namespace
}  // namespace kcore
