// Serving: concurrent session.run() over one shared prepared Session
// (api/session.h). The contract under test — the tentpole of the
// single-caller-hazard fix:
//
//  * K threads × R runs over ONE prepared Session each yield reports
//    bit-identical to a one-shot api::decompose(), for every registered
//    built-in protocol, keyed on Capabilities::deterministic_extras
//    exactly like the sequential parity pin in test_session.cpp. Runs
//    share the immutable prepared state but never a run context.
//  * Lazy preparation races safely: K threads calling run() on an
//    unprepared Session serialize the derivation, every run succeeds,
//    and the phase-timing invariant elapsed == setup + run holds on
//    every concurrently-produced report.
//  * Plan executes independent cells concurrently
//    (PlanSpec::concurrency) with results equal to the serial sweep,
//    in cells() order, hooks serialized.
//
// This file runs under the TSan CI job: the assertions prove parity,
// the sanitizer proves the absence of data races on the shared state.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <utility>
#include <variant>
#include <vector>

#include "api/session.h"
#include "graph/generators.h"
#include "seq/kcore_seq.h"
#include "util/check.h"

namespace kcore {
namespace {

using graph::Graph;
using graph::NodeId;
namespace gen = graph::gen;

constexpr unsigned kClients = 4;
constexpr int kRunsPerClient = 2;

/// The eight built-ins by key (other tests may register extras).
std::vector<std::string> builtin_protocols() {
  return {std::string(api::kProtocolBz),
          std::string(api::kProtocolPeeling),
          std::string(api::kProtocolOneToOne),
          std::string(api::kProtocolOneToMany),
          std::string(api::kProtocolBsp),
          std::string(api::kProtocolOneToManyPar),
          std::string(api::kProtocolBspPar),
          std::string(api::kProtocolBspAsync)};
}

/// Non-timing parity against the one-shot reference, honoring the
/// protocol's determinism contract (same keying as test_session.cpp):
/// deterministic protocols must match bit for bit, schedule-dependent
/// ones on coreness and convergence.
void expect_serving_parity(const api::DecomposeReport& actual,
                           const api::DecomposeReport& expected,
                           const api::Capabilities& caps,
                           const std::string& label) {
  EXPECT_EQ(actual.protocol, expected.protocol) << label;
  EXPECT_EQ(actual.coreness, expected.coreness) << label;
  EXPECT_EQ(actual.traffic.converged, expected.traffic.converged) << label;
  if (!caps.deterministic_extras) return;
  EXPECT_EQ(actual.traffic.total_messages, expected.traffic.total_messages)
      << label;
  EXPECT_EQ(actual.traffic.execution_time, expected.traffic.execution_time)
      << label;
  EXPECT_EQ(actual.traffic.rounds_executed, expected.traffic.rounds_executed)
      << label;
  EXPECT_EQ(actual.traffic.sent_by_host, expected.traffic.sent_by_host)
      << label;
  ASSERT_EQ(actual.extras.index(), expected.extras.index()) << label;
  if (const auto* a = std::get_if<api::ParExtras>(&actual.extras)) {
    const auto& e = std::get<api::ParExtras>(expected.extras);
    EXPECT_EQ(a->threads_used, e.threads_used) << label;
    EXPECT_EQ(a->shards, e.shards) << label;
    EXPECT_EQ(a->estimates_shipped_total, e.estimates_shipped_total) << label;
    EXPECT_EQ(a->cross_shard_messages, e.cross_shard_messages) << label;
  }
}

/// Launch `clients` threads against `fn(client_index)`, joined before
/// returning; a start flag keeps the bodies overlapping.
template <typename Fn>
void run_clients(unsigned clients, Fn&& fn) {
  std::atomic<bool> go{false};
  std::vector<std::thread> pool;
  pool.reserve(clients);
  for (unsigned c = 0; c < clients; ++c) {
    pool.emplace_back([&, c] {
      while (!go.load(std::memory_order_acquire)) {
      }
      fn(c);
    });
  }
  go.store(true, std::memory_order_release);
  for (auto& t : pool) t.join();
}

// ---------------------------------------------------------------------------
// Concurrent serving parity — the acceptance pin of this redesign
// ---------------------------------------------------------------------------

TEST(ServingParity, ConcurrentRunsMatchOneShotOnEveryProtocol) {
  const Graph g = gen::barabasi_albert(300, 3, 11);
  const auto truth = seq::coreness_bz(g);
  const auto& registry = api::ProtocolRegistry::instance();
  for (const auto& protocol : builtin_protocols()) {
    const auto& caps = registry.entry(protocol).capabilities;
    api::RunOptions options;
    options.seed = 23;
    options.num_hosts = 4;
    if (caps.consumes_threads) options.threads = 2;

    const auto one_shot = api::decompose(g, protocol, options);
    ASSERT_EQ(one_shot.coreness, truth) << protocol;

    api::Session session(g, protocol, options);
    session.prepare();
    std::vector<std::vector<api::DecomposeReport>> reports(kClients);
    run_clients(kClients, [&](unsigned c) {
      for (int r = 0; r < kRunsPerClient; ++r) {
        reports[c].push_back(session.run());
      }
    });

    EXPECT_EQ(session.runs_completed(),
              std::uint64_t{kClients} * kRunsPerClient)
        << protocol;
    for (unsigned c = 0; c < kClients; ++c) {
      for (int r = 0; r < kRunsPerClient; ++r) {
        expect_serving_parity(reports[c][r], one_shot, caps,
                              protocol + " client " + std::to_string(c) +
                                  " run " + std::to_string(r));
      }
    }
  }
}

TEST(ServingParity, LazyPrepareRaceIsSafe) {
  const Graph g = gen::barabasi_albert(300, 3, 29);
  const auto truth = seq::coreness_bz(g);
  for (const auto protocol :
       {api::kProtocolOneToManyPar, api::kProtocolBspPar,
        api::kProtocolBspAsync}) {
    api::RunOptions options;
    options.threads = 2;
    api::Session session(g, protocol, options);
    ASSERT_FALSE(session.prepared()) << protocol;

    // Nobody prepares up front: the run() calls race for the lazy
    // preparation. Exactly one derivation happens (prepare_ms is fixed
    // afterwards), every run succeeds against the shared result.
    std::vector<api::DecomposeReport> reports(kClients);
    run_clients(kClients, [&](unsigned c) { reports[c] = session.run(); });

    EXPECT_TRUE(session.prepared()) << protocol;
    EXPECT_GT(session.prepare_ms(), 0.0) << protocol;
    EXPECT_EQ(session.runs_completed(), std::uint64_t{kClients}) << protocol;
    for (const auto& report : reports) {
      EXPECT_EQ(report.coreness, truth) << protocol;
    }
  }
}

TEST(ServingParity, ConcurrentPrepareIsIdempotent) {
  const Graph g = gen::barabasi_albert(200, 3, 31);
  api::Session session(g, api::kProtocolBspAsync);
  run_clients(kClients, [&](unsigned) { session.prepare(); });
  ASSERT_TRUE(session.prepared());
  const double prepare_ms = session.prepare_ms();
  EXPECT_GT(prepare_ms, 0.0);
  session.prepare();
  EXPECT_EQ(session.prepare_ms(), prepare_ms);
  EXPECT_EQ(session.run().coreness, seq::coreness_bz(g));
}

// ---------------------------------------------------------------------------
// Phase timing under concurrency
// ---------------------------------------------------------------------------

TEST(ServingTiming, ElapsedEqualsSetupPlusRunOnEveryConcurrentReport) {
  const Graph g = gen::barabasi_albert(300, 3, 37);
  for (const auto protocol :
       {api::kProtocolOneToManyPar, api::kProtocolBspPar,
        api::kProtocolBspAsync}) {
    api::RunOptions options;
    options.threads = 2;
    api::Session session(g, protocol, options);
    // No prepare() up front: one of the concurrent runs absorbs the
    // prepare cost into its setup, and the invariant must hold on that
    // report too, not only on warm ones.
    std::vector<std::vector<api::DecomposeReport>> reports(kClients);
    run_clients(kClients, [&](unsigned c) {
      for (int r = 0; r < kRunsPerClient; ++r) {
        reports[c].push_back(session.run());
      }
    });
    for (const auto& mine : reports) {
      for (const auto& report : mine) {
        if (const auto* par = std::get_if<api::ParExtras>(&report.extras)) {
          EXPECT_EQ(report.elapsed_ms, par->setup_ms + par->run_ms)
              << protocol;
        } else {
          const auto& async = std::get<api::AsyncExtras>(report.extras);
          EXPECT_EQ(report.elapsed_ms, async.setup_ms + async.run_ms)
              << protocol;
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Concurrent Plan cells
// ---------------------------------------------------------------------------

TEST(PlanConcurrency, ConcurrentCellsMatchTheSerialSweep) {
  const Graph g = gen::barabasi_albert(250, 3, 41);
  const auto truth = seq::coreness_bz(g);
  api::PlanSpec spec;
  spec.protocols = {std::string(api::kProtocolOneToMany),
                    std::string(api::kProtocolBspPar)};
  spec.threads = {1, 2};
  spec.seeds = {5, 9};
  spec.repeats = 2;
  spec.base.num_hosts = 4;

  api::Plan serial(g, spec);
  const auto expected = serial.run();

  spec.concurrency = 4;
  api::Plan concurrent(g, spec);
  int hook_calls = 0;  // hooks are mutex-serialized by the Plan
  const auto results = concurrent.run(
      [&](const api::PlanCell&, int, const api::DecomposeReport& report) {
        EXPECT_EQ(report.coreness, truth);
        ++hook_calls;
      });

  ASSERT_EQ(results.size(), expected.size());
  EXPECT_EQ(hook_calls,
            static_cast<int>(results.size()) * spec.repeats);
  for (std::size_t i = 0; i < results.size(); ++i) {
    // Results land in cells() order regardless of completion order.
    EXPECT_EQ(results[i].cell.protocol, expected[i].cell.protocol) << i;
    EXPECT_EQ(results[i].cell.threads, expected[i].cell.threads) << i;
    EXPECT_EQ(results[i].cell.seed, expected[i].cell.seed) << i;
    EXPECT_EQ(results[i].repeats, expected[i].repeats) << i;
    EXPECT_EQ(results[i].last.coreness, expected[i].last.coreness) << i;
    EXPECT_GT(results[i].prepare_ms, 0.0) << i;
  }
}

TEST(PlanConcurrency, RejectsZeroConcurrency) {
  const Graph g = gen::clique(4);
  api::PlanSpec spec;
  spec.protocols = {std::string(api::kProtocolBz)};
  spec.concurrency = 0;
  EXPECT_THROW(api::Plan(g, spec), util::CheckError);
}

TEST(PlanConcurrency, PropagatesTheFirstCellFailure) {
  const Graph g = gen::clique(4);
  api::PlanSpec spec;
  spec.protocols = {std::string(api::kProtocolBz)};
  spec.seeds = {1, 2, 3, 4};
  spec.concurrency = 2;
  spec.base.comm = api::CommPolicy::kBroadcast;  // invalid for bz
  api::Plan plan(g, spec);
  EXPECT_THROW((void)plan.run(), util::CheckError);
}

}  // namespace
}  // namespace kcore
