#include "agg/gossip.h"

#include <gtest/gtest.h>

#include <cmath>

#include "agg/termination.h"
#include "core/assignment.h"
#include "graph/generators.h"

namespace kcore::agg {
namespace {

namespace gen = kcore::graph::gen;
using graph::Graph;
using graph::NodeId;

std::vector<MaxGossipHost> make_max_hosts(const Graph& overlay,
                                          const std::vector<std::uint64_t>& v,
                                          std::uint32_t window,
                                          std::uint64_t seed) {
  std::vector<MaxGossipHost> hosts;
  for (sim::HostId h = 0; h < overlay.num_nodes(); ++h) {
    hosts.emplace_back(&overlay, h, v[h], window, seed);
  }
  return hosts;
}

TEST(MaxGossip, ConvergesToGlobalMaxOnClique) {
  const Graph overlay = gen::clique(32);
  std::vector<std::uint64_t> values(32);
  for (std::size_t i = 0; i < 32; ++i) values[i] = i * 3;
  sim::EngineConfig config;
  config.max_rounds = 10000;
  sim::Engine<MaxGossipHost> engine(make_max_hosts(overlay, values, 6, 1),
                                    config);
  const auto stats = engine.run();
  EXPECT_TRUE(stats.converged);
  for (const auto& h : engine.hosts()) {
    EXPECT_EQ(h.value(), 93U);
    EXPECT_TRUE(h.quiet());
  }
}

TEST(MaxGossip, ConvergesOnSparseOverlay) {
  const Graph overlay = gen::watts_strogatz(64, 4, 0.3, 5);
  std::vector<std::uint64_t> values(64, 1);
  values[17] = 1000;  // a single maximum must still flood everywhere
  sim::EngineConfig config;
  config.max_rounds = 10000;
  config.seed = 2;
  sim::Engine<MaxGossipHost> engine(make_max_hosts(overlay, values, 8, 3),
                                    config);
  const auto stats = engine.run();
  EXPECT_TRUE(stats.converged);
  for (const auto& h : engine.hosts()) EXPECT_EQ(h.value(), 1000U);
}

TEST(MaxGossip, LogarithmicScaling) {
  // §3.3 / [6]: epidemic aggregation converges in O(log H) rounds. The
  // convergence round should grow far slower than linearly in H.
  auto rounds_for = [](NodeId n) {
    const Graph overlay = gen::clique(n);
    std::vector<std::uint64_t> values(n, 0);
    values[0] = 42;
    GossipTerminationConfig config;
    config.quiet_window = 6;
    config.seed = 7;
    const auto result = gossip_termination(overlay, values, config);
    EXPECT_TRUE(result.converged) << "n=" << n;
    return result.rounds_to_converge;
  };
  const auto r16 = rounds_for(16);
  const auto r256 = rounds_for(256);
  EXPECT_LE(r256, 4 * std::max<std::uint64_t>(r16, 1));
  EXPECT_LE(r256, 40U);  // ~log2(256)=8 plus gossip slack
}

TEST(PushSum, MassConservationEveryRound) {
  const Graph overlay = gen::clique(20);
  std::vector<PushSumHost> hosts;
  double expected_value_mass = 0.0;
  for (sim::HostId h = 0; h < 20; ++h) {
    const double v = static_cast<double>(h * h);
    expected_value_mass += v;
    hosts.emplace_back(&overlay, h, v, 1e-9, 10, 11);
  }
  sim::EngineConfig config;
  config.max_rounds = 500;
  sim::Engine<PushSumHost> engine(std::move(hosts), config);
  engine.run([&](std::uint64_t round, const std::vector<PushSumHost>& hs) {
    double value_mass = 0.0;
    double weight_mass = 0.0;
    for (const auto& h : hs) {
      value_mass += h.value();
      weight_mass += h.weight();
    }
    // Mass in flight is excluded from host state, so host mass can dip
    // below the total but never exceed it.
    EXPECT_LE(value_mass, expected_value_mass + 1e-6) << "round " << round;
    EXPECT_LE(weight_mass, 20.0 + 1e-9) << "round " << round;
  });
}

TEST(PushSum, ConvergesToAverage) {
  const Graph overlay = gen::clique(24);
  std::vector<PushSumHost> hosts;
  double sum = 0.0;
  for (sim::HostId h = 0; h < 24; ++h) {
    const double v = static_cast<double>((h * 13) % 7);
    sum += v;
    hosts.emplace_back(&overlay, h, v, 1e-7, 12, 13);
  }
  const double average = sum / 24.0;
  sim::EngineConfig config;
  config.max_rounds = 5000;
  sim::Engine<PushSumHost> engine(std::move(hosts), config);
  const auto stats = engine.run();
  EXPECT_TRUE(stats.converged);
  for (const auto& h : engine.hosts()) {
    EXPECT_NEAR(h.estimate(), average, 0.05);
  }
}

TEST(HostOverlay, MatchesNeighborHRelation) {
  // Path 0-1-2-3 with modulo-2 assignment: hosts {0,1} are adjacent
  // because edges (0,1), (1,2), (2,3) all cross the partition.
  const Graph g = gen::chain(4);
  const auto owner =
      core::assign_nodes(4, 2, core::AssignmentPolicy::kModulo);
  const Graph overlay = build_host_overlay(g, owner, 2);
  EXPECT_EQ(overlay.num_nodes(), 2U);
  EXPECT_EQ(overlay.num_edges(), 1U);
  EXPECT_TRUE(overlay.has_edge(0, 1));
}

TEST(HostOverlay, BlockAssignmentOnChainIsAPathOfHosts) {
  const Graph g = gen::chain(40);
  const auto owner =
      core::assign_nodes(40, 4, core::AssignmentPolicy::kBlock);
  const Graph overlay = build_host_overlay(g, owner, 4);
  // Blocks only touch adjacent blocks: host overlay is itself a chain.
  EXPECT_EQ(overlay.num_edges(), 3U);
  EXPECT_TRUE(overlay.has_edge(0, 1));
  EXPECT_TRUE(overlay.has_edge(1, 2));
  EXPECT_TRUE(overlay.has_edge(2, 3));
  EXPECT_FALSE(overlay.has_edge(0, 3));
}

TEST(GossipTermination, DetectsTerminationRound) {
  const Graph overlay = gen::erdos_renyi_gnm(50, 200, 15);
  std::vector<std::uint64_t> last_active(50, 3);
  last_active[20] = 17;  // global last-activity round
  GossipTerminationConfig config;
  config.quiet_window = 5;
  const auto result = gossip_termination(overlay, last_active, config);
  EXPECT_TRUE(result.converged);
  EXPECT_GT(result.rounds_to_converge, 0U);
  EXPECT_EQ(result.rounds_to_detect,
            result.rounds_to_converge + config.quiet_window);
  EXPECT_GT(result.control_messages, 0U);
}

TEST(GossipTermination, DisconnectedOverlayCannotConverge) {
  // Two components: the max lives in one; the other can never learn it.
  const std::array<NodeId, 2> sizes{10, 10};
  const Graph overlay = gen::disjoint_cliques(sizes);
  std::vector<std::uint64_t> last_active(20, 1);
  last_active[0] = 50;  // max confined to the first clique
  GossipTerminationConfig config;
  config.quiet_window = 4;
  config.max_rounds = 500;
  const auto result = gossip_termination(overlay, last_active, config);
  EXPECT_FALSE(result.converged);
}

TEST(GossipTermination, WiderQuietWindowCostsMoreMessages) {
  // The confirmation window trades safety for cost: both of these are
  // wide enough to converge, but the wider one keeps gossiping longer.
  const Graph overlay = gen::clique(24);
  std::vector<std::uint64_t> last_active(24, 2);
  last_active[5] = 9;
  GossipTerminationConfig narrow;
  narrow.quiet_window = 6;
  GossipTerminationConfig wide;
  wide.quiet_window = 24;
  const auto a = gossip_termination(overlay, last_active, narrow);
  const auto b = gossip_termination(overlay, last_active, wide);
  EXPECT_TRUE(a.converged);
  EXPECT_TRUE(b.converged);
  EXPECT_LT(a.control_messages, b.control_messages);
}

TEST(GossipTermination, TooNarrowWindowCanTerminatePrematurely) {
  // With a 1-round window hosts go quiet before the maximum has flooded
  // the overlay — the detector parameter is a real safety knob.
  const Graph overlay = gen::cycle(40);  // slow-mixing overlay
  std::vector<std::uint64_t> last_active(40, 1);
  last_active[0] = 99;
  GossipTerminationConfig config;
  config.quiet_window = 1;
  const auto result = gossip_termination(overlay, last_active, config);
  EXPECT_FALSE(result.converged);
}

TEST(GossipTermination, TrivialSingleHost) {
  const Graph overlay = Graph::from_edges(1, {});
  const auto result = gossip_termination(overlay, {5}, {});
  // One host already knows the max at round... the first observed round.
  EXPECT_TRUE(result.converged);
}

}  // namespace
}  // namespace kcore::agg
