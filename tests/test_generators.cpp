#include "graph/generators.h"

#include <gtest/gtest.h>

#include <array>

#include "graph/stats.h"
#include "util/check.h"

namespace kcore::graph::gen {
namespace {

TEST(Chain, Structure) {
  const Graph g = chain(5);
  EXPECT_EQ(g.num_nodes(), 5U);
  EXPECT_EQ(g.num_edges(), 4U);
  EXPECT_EQ(g.degree(0), 1U);
  EXPECT_EQ(g.degree(2), 2U);
  EXPECT_EQ(g.degree(4), 1U);
}

TEST(Chain, SingleNode) {
  const Graph g = chain(1);
  EXPECT_EQ(g.num_nodes(), 1U);
  EXPECT_EQ(g.num_edges(), 0U);
}

TEST(Cycle, Structure) {
  const Graph g = cycle(6);
  EXPECT_EQ(g.num_edges(), 6U);
  for (NodeId u = 0; u < 6; ++u) EXPECT_EQ(g.degree(u), 2U);
  EXPECT_TRUE(g.has_edge(5, 0));
  EXPECT_THROW(cycle(2), util::CheckError);
}

TEST(Clique, Structure) {
  const Graph g = clique(7);
  EXPECT_EQ(g.num_edges(), 21U);
  for (NodeId u = 0; u < 7; ++u) EXPECT_EQ(g.degree(u), 6U);
}

TEST(Star, Structure) {
  const Graph g = star(9);
  EXPECT_EQ(g.num_edges(), 8U);
  EXPECT_EQ(g.degree(0), 8U);
  for (NodeId u = 1; u < 9; ++u) EXPECT_EQ(g.degree(u), 1U);
}

TEST(CompleteBipartite, Structure) {
  const Graph g = complete_bipartite(3, 4);
  EXPECT_EQ(g.num_nodes(), 7U);
  EXPECT_EQ(g.num_edges(), 12U);
  for (NodeId u = 0; u < 3; ++u) EXPECT_EQ(g.degree(u), 4U);
  for (NodeId u = 3; u < 7; ++u) EXPECT_EQ(g.degree(u), 3U);
  EXPECT_FALSE(g.has_edge(0, 1));  // no intra-side edges
  EXPECT_FALSE(g.has_edge(3, 4));
}

TEST(GridGen, Structure) {
  const Graph g = grid(3, 4);
  EXPECT_EQ(g.num_nodes(), 12U);
  // 3 rows x 3 horizontal + 2 x 4 vertical = 9 + 8.
  EXPECT_EQ(g.num_edges(), 17U);
  EXPECT_EQ(g.degree(0), 2U);   // corner
  EXPECT_EQ(g.degree(5), 4U);   // interior (row 1, col 1)
}

TEST(Circulant, RegularDegrees) {
  const std::array<NodeId, 2> offsets{1, 3};
  const Graph g = circulant(10, offsets);
  for (NodeId u = 0; u < 10; ++u) EXPECT_EQ(g.degree(u), 4U);
}

TEST(RingLattice, ExactlyRegular) {
  for (const NodeId d : {2U, 4U, 6U, 10U}) {
    const Graph g = ring_lattice(41, d);
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
      ASSERT_EQ(g.degree(u), d) << "d=" << d << " u=" << u;
    }
  }
  EXPECT_THROW(ring_lattice(10, 3), util::CheckError);   // odd degree
  EXPECT_THROW(ring_lattice(4, 4), util::CheckError);    // degree >= n
}

TEST(DisjointCliques, SizesAndIsolation) {
  const std::array<NodeId, 3> sizes{3, 1, 4};
  const Graph g = disjoint_cliques(sizes);
  EXPECT_EQ(g.num_nodes(), 8U);
  EXPECT_EQ(g.num_edges(), 3U + 0U + 6U);
  EXPECT_EQ(g.degree(3), 0U);             // the singleton
  EXPECT_FALSE(g.has_edge(0, 4));         // across cliques
  EXPECT_TRUE(g.has_edge(4, 7));
}

TEST(MontresorWorstCase, PaperDegreeProfile) {
  // "All nodes have degree 3, apart from the hub which has degree N-2 and
  // node 1 which has degree 2."
  for (const NodeId n : {5U, 8U, 12U, 33U}) {
    const Graph g = montresor_worst_case(n);
    EXPECT_EQ(g.num_nodes(), n);
    EXPECT_EQ(g.degree(n - 1), n - 2) << "hub, n=" << n;
    EXPECT_EQ(g.degree(0), 2U) << "node 1, n=" << n;
    for (NodeId u = 1; u + 1 < n; ++u) {
      EXPECT_EQ(g.degree(u), 3U) << "node " << u + 1 << ", n=" << n;
    }
  }
  EXPECT_THROW(montresor_worst_case(4), util::CheckError);
}

TEST(MontresorWorstCase, DiameterIsThree) {
  for (const NodeId n : {12U, 24U, 48U}) {
    EXPECT_EQ(exact_diameter(montresor_worst_case(n)), 3U) << "n=" << n;
  }
}

TEST(ErdosRenyi, ExactEdgeCount) {
  const Graph g = erdos_renyi_gnm(100, 400, 5);
  EXPECT_EQ(g.num_nodes(), 100U);
  EXPECT_EQ(g.num_edges(), 400U);
}

TEST(ErdosRenyi, DeterministicBySeed) {
  EXPECT_EQ(erdos_renyi_gnm(50, 100, 9), erdos_renyi_gnm(50, 100, 9));
  EXPECT_NE(erdos_renyi_gnm(50, 100, 9), erdos_renyi_gnm(50, 100, 10));
}

TEST(ErdosRenyi, RejectsTooManyEdges) {
  EXPECT_THROW(erdos_renyi_gnm(4, 7, 1), util::CheckError);
  EXPECT_NO_THROW(erdos_renyi_gnm(4, 6, 1));  // complete graph OK
}

TEST(BarabasiAlbert, SizesAndMinDegree) {
  const Graph g = barabasi_albert(500, 3, 21);
  EXPECT_EQ(g.num_nodes(), 500U);
  // Every non-seed node attaches with >= 3 edges (dedup can only merge
  // multi-selections, which we forbid), so min degree >= 3.
  EXPECT_GE(g.min_degree(), 3U);
  // Preferential attachment must produce a hub well above the minimum.
  EXPECT_GT(g.max_degree(), 20U);
}

TEST(BarabasiAlbert, TreeModeHasLeaves) {
  const Graph g = barabasi_albert(300, 1, 23);
  EXPECT_EQ(g.num_edges(), 299U + 0U);  // clique seed (2 nodes, 1 edge) + 298
  EXPECT_EQ(g.min_degree(), 1U);
}

TEST(Rmat, SizeAndSkew) {
  RmatParams p;
  p.scale = 10;  // 1024 nodes
  p.edge_factor = 8.0;
  const Graph g = rmat(p, 31);
  EXPECT_EQ(g.num_nodes(), 1024U);
  // Duplicates collapse, so edges < edge_factor * n but in the ballpark.
  EXPECT_GT(g.num_edges(), 4000U);
  EXPECT_LE(g.num_edges(), 8192U);
  // Skewed degree distribution: hub much larger than average.
  EXPECT_GT(g.max_degree(), 4 * static_cast<NodeId>(g.average_degree()));
}

TEST(Rmat, RejectsBadProbabilities) {
  RmatParams p;
  p.a = 0.9;
  p.b = 0.5;  // sums to > 1 with c, d
  EXPECT_THROW(rmat(p, 1), util::CheckError);
}

TEST(WattsStrogatz, DegreesPreservedInExpectation) {
  const Graph g = watts_strogatz(400, 6, 0.1, 41);
  EXPECT_EQ(g.num_nodes(), 400U);
  // Rewiring keeps edge count except for rare collision-skips.
  EXPECT_GE(g.num_edges(), 1150U);
  EXPECT_LE(g.num_edges(), 1200U);
  EXPECT_NEAR(g.average_degree(), 6.0, 0.3);
}

TEST(WattsStrogatz, BetaZeroIsRingLattice) {
  EXPECT_EQ(watts_strogatz(50, 4, 0.0, 1), ring_lattice(50, 4));
}

TEST(RandomRegular, ExactlyRegularForModestDegree) {
  for (const NodeId d : {2U, 3U, 4U, 7U}) {
    const Graph g = random_regular(100, d, 51);
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
      ASSERT_EQ(g.degree(u), d) << "d=" << d;
    }
  }
}

TEST(RandomRegular, RejectsOddSum) {
  EXPECT_THROW(random_regular(5, 3, 1), util::CheckError);  // n*d odd
}

TEST(Affiliation, ProducesCliquishGraph) {
  const Graph g = affiliation(300, 60, 2, 61);
  EXPECT_EQ(g.num_nodes(), 300U);
  EXPECT_GT(g.num_edges(), 300U);  // groups of ~10 -> dense
}

TEST(DisjointUnionGen, OffsetsParts) {
  const std::array<Graph, 2> parts{clique(3), chain(4)};
  const Graph g = disjoint_union(parts);
  EXPECT_EQ(g.num_nodes(), 7U);
  EXPECT_EQ(g.num_edges(), 3U + 3U);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(3, 4));
  EXPECT_FALSE(g.has_edge(2, 3));
}

TEST(AddRandomEdges, AddsRequestedCount) {
  const Graph base = chain(100);
  const Graph g = add_random_edges(base, 50, 71);
  EXPECT_EQ(g.num_edges(), base.num_edges() + 50);
  EXPECT_EQ(g.num_nodes(), base.num_nodes());
}

TEST(AttachPaths, AddsTendrils) {
  const Graph base = clique(10);
  const Graph g = attach_paths(base, 3, 20, 81);
  EXPECT_EQ(g.num_nodes(), 10U + 60U);
  EXPECT_EQ(g.num_edges(), base.num_edges() + 60U);
  // Tendril nodes are degree <= 2.
  for (NodeId u = 10; u < g.num_nodes(); ++u) {
    EXPECT_LE(g.degree(u), 2U);
    EXPECT_GE(g.degree(u), 1U);
  }
}

TEST(PlantDenseCore, RaisesMinDegreeOfMembers) {
  const Graph base = chain(200);
  const Graph g = plant_dense_core(base, 50, 8, 91);
  EXPECT_EQ(g.num_nodes(), 200U);
  // 50 nodes receive a ring-lattice overlay of degree 8.
  NodeId with_high_degree = 0;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    if (g.degree(u) >= 8) ++with_high_degree;
  }
  EXPECT_GE(with_high_degree, 50U);
  EXPECT_THROW(plant_dense_core(base, 10, 10, 1), util::CheckError);
  EXPECT_THROW(plant_dense_core(base, 10, 3, 1), util::CheckError);
}

TEST(RelabelRandom, PreservesStructure) {
  const Graph base = erdos_renyi_gnm(100, 300, 13);
  const Graph g = relabel_random(base, 101);
  EXPECT_EQ(g.num_nodes(), base.num_nodes());
  EXPECT_EQ(g.num_edges(), base.num_edges());
  // Degree multiset preserved.
  std::vector<NodeId> d1;
  std::vector<NodeId> d2;
  for (NodeId u = 0; u < 100; ++u) {
    d1.push_back(base.degree(u));
    d2.push_back(g.degree(u));
  }
  std::sort(d1.begin(), d1.end());
  std::sort(d2.begin(), d2.end());
  EXPECT_EQ(d1, d2);
}

TEST(ConnectComponents, MakesGraphConnected) {
  const std::array<NodeId, 4> sizes{5, 5, 5, 5};
  const Graph base = disjoint_cliques(sizes);
  EXPECT_EQ(connected_components(base).num_components, 4U);
  const Graph g = connect_components(base, 111);
  EXPECT_EQ(connected_components(g).num_components, 1U);
  EXPECT_EQ(g.num_edges(), base.num_edges() + 3U);
}

TEST(ConnectComponents, NoopWhenConnected) {
  const Graph base = cycle(10);
  EXPECT_EQ(connect_components(base, 1), base);
}

}  // namespace
}  // namespace kcore::graph::gen
