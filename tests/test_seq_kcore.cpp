#include "seq/kcore_seq.h"

#include <gtest/gtest.h>

#include <array>

#include "graph/generators.h"

namespace kcore::seq {
namespace {

namespace gen = kcore::graph::gen;
using graph::Graph;
using graph::NodeId;

// ---------------------------------------------------------------------------
// Families with analytically known coreness
// ---------------------------------------------------------------------------

void expect_uniform_coreness(const Graph& g, NodeId expected) {
  const auto c = coreness_bz(g);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    ASSERT_EQ(c[u], expected) << "node " << u;
  }
}

TEST(CorenessBZ, IsolatedNodesAreZero) {
  const Graph g = Graph::from_edges(3, std::vector<graph::Edge>{});
  expect_uniform_coreness(g, 0);
}

TEST(CorenessBZ, ChainIsOne) { expect_uniform_coreness(gen::chain(20), 1); }

TEST(CorenessBZ, StarIsOne) { expect_uniform_coreness(gen::star(15), 1); }

TEST(CorenessBZ, AnyTreeIsOne) {
  // BA with attachment 1 generates a random tree.
  expect_uniform_coreness(gen::barabasi_albert(200, 1, 3), 1);
}

TEST(CorenessBZ, CycleIsTwo) { expect_uniform_coreness(gen::cycle(17), 2); }

TEST(CorenessBZ, CliqueIsNMinusOne) {
  expect_uniform_coreness(gen::clique(9), 8);
}

TEST(CorenessBZ, CompleteBipartiteIsMinSide) {
  expect_uniform_coreness(gen::complete_bipartite(3, 8), 3);
  expect_uniform_coreness(gen::complete_bipartite(5, 5), 5);
  expect_uniform_coreness(gen::complete_bipartite(1, 9), 1);
}

TEST(CorenessBZ, GridIsTwo) {
  expect_uniform_coreness(gen::grid(6, 8), 2);
}

TEST(CorenessBZ, RegularGraphIsDegree) {
  for (const NodeId d : {2U, 4U, 6U}) {
    expect_uniform_coreness(gen::ring_lattice(40, d), d);
  }
  expect_uniform_coreness(gen::random_regular(60, 5, 7), 5);
}

TEST(CorenessBZ, DisjointCliquesHaveHeterogeneousCoreness) {
  const std::array<NodeId, 4> sizes{2, 3, 5, 9};
  const Graph g = gen::disjoint_cliques(sizes);
  const auto c = coreness_bz(g);
  NodeId base = 0;
  for (const NodeId s : sizes) {
    for (NodeId i = 0; i < s; ++i) {
      ASSERT_EQ(c[base + i], s - 1) << "clique size " << s;
    }
    base += s;
  }
}

TEST(CorenessBZ, PaperFigure2Example) {
  // The §3.1.1 example: path 1-2-3-4-5-6 with chords making nodes 2..5
  // degree 3; converges to coreness 2 for 2,3,4,5 and 1 for 1,6.
  graph::GraphBuilder b(6);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(2, 3);
  b.add_edge(3, 4);
  b.add_edge(4, 5);
  b.add_edge(1, 3);
  b.add_edge(2, 4);
  const Graph g = b.build();
  ASSERT_EQ(g.degree(0), 1U);
  ASSERT_EQ(g.degree(1), 3U);
  ASSERT_EQ(g.degree(2), 3U);
  ASSERT_EQ(g.degree(3), 3U);
  ASSERT_EQ(g.degree(4), 3U);
  ASSERT_EQ(g.degree(5), 1U);
  const auto c = coreness_bz(g);
  EXPECT_EQ(c, (std::vector<NodeId>{1, 2, 2, 2, 2, 1}));
}

TEST(CorenessBZ, KitePlusTail) {
  // K4 with a path of two nodes hanging off: clique nodes have coreness 3,
  // the tail has coreness 1.
  graph::GraphBuilder b(6);
  for (NodeId i = 0; i < 4; ++i) {
    for (NodeId j = i + 1; j < 4; ++j) b.add_edge(i, j);
  }
  b.add_edge(3, 4);
  b.add_edge(4, 5);
  const auto c = coreness_bz(b.build());
  EXPECT_EQ(c, (std::vector<NodeId>{3, 3, 3, 3, 1, 1}));
}

// ---------------------------------------------------------------------------
// Differential testing: BZ vs naive peeling on random graphs
// ---------------------------------------------------------------------------

struct RandomGraphCase {
  const char* name;
  Graph (*make)(std::uint64_t seed);
};

Graph make_er_sparse(std::uint64_t s) {
  return gen::erdos_renyi_gnm(300, 450, s);
}
Graph make_er_dense(std::uint64_t s) {
  return gen::erdos_renyi_gnm(150, 2000, s);
}
Graph make_ba(std::uint64_t s) { return gen::barabasi_albert(250, 4, s); }
Graph make_rmat(std::uint64_t s) {
  gen::RmatParams p;
  p.scale = 8;
  p.edge_factor = 6.0;
  return gen::rmat(p, s);
}
Graph make_ws(std::uint64_t s) { return gen::watts_strogatz(200, 6, 0.2, s); }
Graph make_affiliation(std::uint64_t s) {
  return gen::affiliation(200, 50, 2, s);
}
Graph make_planted(std::uint64_t s) {
  return gen::plant_dense_core(gen::erdos_renyi_gnm(300, 500, s), 40, 10,
                               s + 1);
}

class CorenessDifferentialTest
    : public ::testing::TestWithParam<RandomGraphCase> {};

TEST_P(CorenessDifferentialTest, BZMatchesPeelingOracle) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const Graph g = GetParam().make(seed);
    const auto bz = coreness_bz(g);
    const auto oracle = coreness_peeling(g);
    ASSERT_EQ(bz, oracle) << GetParam().name << " seed " << seed;
  }
}

TEST_P(CorenessDifferentialTest, BZSatisfiesLocalityTheorem) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const Graph g = GetParam().make(seed);
    EXPECT_TRUE(satisfies_locality(g, coreness_bz(g)))
        << GetParam().name << " seed " << seed;
  }
}

TEST_P(CorenessDifferentialTest, CorenessBoundedByDegree) {
  const Graph g = GetParam().make(99);
  const auto c = coreness_bz(g);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    EXPECT_LE(c[u], g.degree(u));
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomGraphs, CorenessDifferentialTest,
    ::testing::Values(RandomGraphCase{"er_sparse", make_er_sparse},
                      RandomGraphCase{"er_dense", make_er_dense},
                      RandomGraphCase{"ba", make_ba},
                      RandomGraphCase{"rmat", make_rmat},
                      RandomGraphCase{"ws", make_ws},
                      RandomGraphCase{"affiliation", make_affiliation},
                      RandomGraphCase{"planted", make_planted}),
    [](const auto& suite_info) { return std::string(suite_info.param.name); });

// ---------------------------------------------------------------------------
// Locality verifier rejects wrong vectors
// ---------------------------------------------------------------------------

TEST(Locality, RejectsPerturbedVector) {
  const Graph g = gen::erdos_renyi_gnm(100, 300, 3);
  auto c = coreness_bz(g);
  ASSERT_TRUE(satisfies_locality(g, c));
  c[10] += 1;
  EXPECT_FALSE(satisfies_locality(g, c));
}

TEST(Locality, RejectsWrongSize) {
  const Graph g = gen::cycle(5);
  EXPECT_FALSE(satisfies_locality(g, std::vector<NodeId>{1, 2}));
}

TEST(Locality, RejectsCorenessAboveDegree) {
  const Graph g = gen::chain(4);
  EXPECT_FALSE(satisfies_locality(g, std::vector<NodeId>{2, 2, 2, 2}));
}

// ---------------------------------------------------------------------------
// Summary, membership, subgraph, degeneracy order
// ---------------------------------------------------------------------------

TEST(Summary, ShellSizesAndAverages) {
  const std::array<NodeId, 2> sizes{3, 5};  // coreness 2 (x3) and 4 (x5)
  const auto c = coreness_bz(gen::disjoint_cliques(sizes));
  const auto s = summarize_coreness(c);
  EXPECT_EQ(s.k_max, 4U);
  ASSERT_EQ(s.shell_sizes.size(), 5U);
  EXPECT_EQ(s.shell_sizes[2], 3U);
  EXPECT_EQ(s.shell_sizes[4], 5U);
  EXPECT_EQ(s.shell_sizes[0], 0U);
  EXPECT_NEAR(s.k_avg, (2.0 * 3 + 4.0 * 5) / 8.0, 1e-12);
}

TEST(Summary, EmptyVector) {
  const auto s = summarize_coreness({});
  EXPECT_EQ(s.k_max, 0U);
  EXPECT_TRUE(s.shell_sizes.empty());
}

TEST(Membership, ThresholdSemantics) {
  const std::vector<NodeId> c{0, 1, 2, 3};
  const auto m = kcore_membership(c, 2);
  EXPECT_EQ(m, (std::vector<bool>{false, false, true, true}));
}

TEST(CoreSubgraphExtraction, KeepsOnlyCoreNodesAndEdges) {
  // K4 + tail: 3-core is exactly the K4.
  graph::GraphBuilder b(6);
  for (NodeId i = 0; i < 4; ++i) {
    for (NodeId j = i + 1; j < 4; ++j) b.add_edge(i, j);
  }
  b.add_edge(3, 4);
  b.add_edge(4, 5);
  const Graph g = b.build();
  const auto c = coreness_bz(g);
  const auto sub = kcore_subgraph(g, c, 3);
  EXPECT_EQ(sub.graph.num_nodes(), 4U);
  EXPECT_EQ(sub.graph.num_edges(), 6U);
  EXPECT_EQ(sub.original_of_dense.size(), 4U);
  EXPECT_EQ(sub.dense_of_original[5], graph::kInvalidNode);
  // Every kept node maps back consistently.
  for (NodeId dense = 0; dense < 4; ++dense) {
    EXPECT_EQ(sub.dense_of_original[sub.original_of_dense[dense]], dense);
  }
}

TEST(CoreSubgraphExtraction, KZeroIsWholeGraph) {
  const Graph g = gen::chain(5);
  const auto sub = kcore_subgraph(g, coreness_bz(g), 0);
  EXPECT_EQ(sub.graph.num_nodes(), g.num_nodes());
  EXPECT_EQ(sub.graph.num_edges(), g.num_edges());
}

TEST(CoreSubgraphExtraction, CoreIsActuallyACore) {
  // Definition 1: every node of the k-core subgraph has degree >= k in it.
  const Graph g = gen::barabasi_albert(300, 3, 13);
  const auto c = coreness_bz(g);
  const auto kmax = summarize_coreness(c).k_max;
  for (NodeId k = 1; k <= kmax; ++k) {
    const auto sub = kcore_subgraph(g, c, k);
    for (NodeId u = 0; u < sub.graph.num_nodes(); ++u) {
      ASSERT_GE(sub.graph.degree(u), k) << "k=" << k;
    }
  }
}

TEST(DegeneracyOrder, IsPermutationWithMonotoneCoreness) {
  const Graph g = gen::barabasi_albert(200, 3, 17);
  const auto order = degeneracy_order(g);
  const auto c = coreness_bz(g);
  ASSERT_EQ(order.size(), g.num_nodes());
  std::vector<bool> seen(g.num_nodes(), false);
  NodeId running_max = 0;
  for (const NodeId u : order) {
    ASSERT_FALSE(seen[u]);
    seen[u] = true;
    // Coreness along a degeneracy order is non-decreasing in max-so-far.
    running_max = std::max(running_max, c[u]);
    EXPECT_EQ(c[u], running_max == c[u] ? c[u] : c[u]);
  }
  // Peeling property: each node has < coreness+1 neighbors later in order
  // ... equivalently, counting only later neighbors, degree <= coreness.
  std::vector<NodeId> position(g.num_nodes());
  for (NodeId i = 0; i < order.size(); ++i) position[order[i]] = i;
  for (const NodeId u : order) {
    NodeId later = 0;
    for (const NodeId v : g.neighbors(u)) {
      if (position[v] > position[u]) ++later;
    }
    EXPECT_LE(later, c[u]) << "node " << u;
  }
}

}  // namespace
}  // namespace kcore::seq
