// Unit tests for the src/par building blocks: the fork-join round loop,
// the double-buffered mailbox matrix, and the par::Engine's exact parity
// with sim::Engine under synchronous delivery.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "core/assignment.h"
#include "core/one_to_many.h"
#include "graph/generators.h"
#include "par/engine.h"
#include "par/mailbox.h"
#include "par/round_loop.h"

namespace kcore {
namespace {

// --- run_round_loop ---------------------------------------------------------

TEST(RoundLoop, EveryWorkerRunsEveryRound) {
  for (const unsigned workers : {1u, 2u, 5u}) {
    std::vector<std::uint64_t> rounds_seen(workers, 0);
    std::uint64_t completions = 0;
    par::run_round_loop(
        workers,
        [&](unsigned w, std::uint64_t round) {
          // Each worker sees rounds 1, 2, 3, ... in order.
          EXPECT_EQ(round, rounds_seen[w] + 1);
          rounds_seen[w] = round;
        },
        [&](std::uint64_t round) {
          ++completions;
          EXPECT_EQ(round, completions);
          // Completion runs after every worker finished the round.
          for (const auto seen : rounds_seen) EXPECT_EQ(seen, round);
          return round < 7;
        });
    EXPECT_EQ(completions, 7u);
    for (const auto seen : rounds_seen) EXPECT_EQ(seen, 7u);
  }
}

TEST(RoundLoop, CompletionIsSingleThreaded) {
  // If two completions ever overlapped, the plain ++ would race and TSan
  // (see the CI job) would flag it; the counter check catches lost
  // updates even without instrumentation.
  constexpr unsigned kWorkers = 4;
  std::atomic<int> in_completion{0};
  std::uint64_t total = 0;
  par::run_round_loop(
      kWorkers, [](unsigned, std::uint64_t) {},
      [&](std::uint64_t round) {
        EXPECT_EQ(in_completion.fetch_add(1), 0);
        ++total;
        EXPECT_EQ(in_completion.fetch_sub(1), 1);
        return round < 50;
      });
  EXPECT_EQ(total, 50u);
}

TEST(RoundLoop, BodyExceptionPropagatesWithoutDeadlock) {
  for (const unsigned workers : {1u, 3u}) {
    EXPECT_THROW(
        par::run_round_loop(
            workers,
            [&](unsigned w, std::uint64_t round) {
              if (w == 0 && round == 3) {
                throw std::runtime_error("boom");
              }
            },
            [](std::uint64_t) { return true; }),
        std::runtime_error);
  }
}

TEST(RoundLoop, CompletionExceptionPropagates) {
  EXPECT_THROW(par::run_round_loop(
                   2, [](unsigned, std::uint64_t) {},
                   [](std::uint64_t) -> bool {
                     throw std::runtime_error("completion boom");
                   }),
               std::runtime_error);
}

// --- MailboxMatrix ----------------------------------------------------------

TEST(Mailbox, WriteSideBecomesNextRoundsReadSide) {
  par::MailboxMatrix<int> mail(3);
  for (std::uint64_t round = 1; round <= 4; ++round) {
    mail.write_side(0, 2, round).push_back(static_cast<int>(round));
  }
  // What round r wrote with parity p is what round r+1 reads.
  EXPECT_EQ(mail.read_side(0, 2, 2), (std::vector<int>{1, 3}));
  EXPECT_EQ(mail.read_side(0, 2, 3), (std::vector<int>{2, 4}));
  // Slots are per-(sender, receiver): nothing leaked anywhere else.
  EXPECT_TRUE(mail.read_side(2, 0, 2).empty());
  EXPECT_TRUE(mail.read_side(0, 1, 2).empty());
}

// --- par::Engine vs sim::Engine ---------------------------------------------

/// Build the one-to-many hosts for `g` exactly as the runners do.
std::vector<core::OneToManyHost> make_hosts(
    const graph::Graph& g, const std::vector<sim::HostId>& owner,
    sim::HostId num_hosts, core::CommPolicy policy) {
  std::vector<core::OneToManyHost> hosts;
  hosts.reserve(num_hosts);
  for (sim::HostId h = 0; h < num_hosts; ++h) {
    hosts.emplace_back(&g, &owner, h, policy);
  }
  return hosts;
}

TEST(ParEngine, TrafficBitIdenticalToSynchronousSimulator) {
  // Same hosts, same protocol, two engines: the real-thread engine must
  // reproduce the synchronous simulator's statistics EXACTLY — that is
  // the "same model, now on real cores" guarantee of par/engine.h.
  const graph::Graph g = graph::gen::barabasi_albert(1200, 3, 17);
  constexpr sim::HostId kHosts = 12;
  const auto owner = core::assign_nodes(g.num_nodes(), kHosts,
                                        core::AssignmentPolicy::kModulo);
  for (const auto policy :
       {core::CommPolicy::kPointToPoint, core::CommPolicy::kBroadcast}) {
    sim::EngineConfig sim_config;
    sim_config.mode = sim::DeliveryMode::kSynchronous;
    sim::Engine<core::OneToManyHost> reference(
        make_hosts(g, owner, kHosts, policy), sim_config);
    const auto expected = reference.run();

    for (const unsigned threads : {1u, 3u}) {
      par::EngineConfig par_config;
      par_config.threads = threads;
      par::Engine<core::OneToManyHost> engine(
          make_hosts(g, owner, kHosts, policy), par_config);
      const auto actual = engine.run();

      EXPECT_EQ(actual.total_messages, expected.total_messages);
      EXPECT_EQ(actual.execution_time, expected.execution_time);
      EXPECT_EQ(actual.rounds_executed, expected.rounds_executed);
      EXPECT_EQ(actual.converged, expected.converged);
      EXPECT_EQ(actual.sent_by_host, expected.sent_by_host);

      // And the host end states agree node by node.
      std::vector<graph::NodeId> a(g.num_nodes(), 0), b(g.num_nodes(), 0);
      for (const auto& h : reference.hosts()) h.snapshot_into(a);
      for (const auto& h : engine.hosts()) h.snapshot_into(b);
      EXPECT_EQ(a, b);
    }
  }
}

TEST(ParEngine, RespectsRoundCap) {
  const graph::Graph g = graph::gen::montresor_worst_case(256);
  const auto owner = core::assign_nodes(g.num_nodes(), 8,
                                        core::AssignmentPolicy::kModulo);
  par::EngineConfig config;
  config.threads = 2;
  config.max_rounds = 3;  // far too few for the worst-case family
  par::Engine<core::OneToManyHost> engine(
      make_hosts(g, owner, 8, core::CommPolicy::kPointToPoint), config);
  const auto stats = engine.run();
  EXPECT_FALSE(stats.converged);
  EXPECT_EQ(stats.rounds_executed, 3u);
}

TEST(ParEngine, ClampsWorkersToHostCount) {
  const graph::Graph g = graph::gen::cycle(6);
  const auto owner = core::assign_nodes(g.num_nodes(), 2,
                                        core::AssignmentPolicy::kModulo);
  par::EngineConfig config;
  config.threads = 16;
  par::Engine<core::OneToManyHost> engine(
      make_hosts(g, owner, 2, core::CommPolicy::kPointToPoint), config);
  EXPECT_EQ(engine.threads_used(), 2u);
  EXPECT_TRUE(engine.run().converged);
}

}  // namespace
}  // namespace kcore
