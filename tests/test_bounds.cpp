// §4.2/§4.3: executable verification of the complexity results.
#include "core/bounds.h"

#include <gtest/gtest.h>

#include "core/one_to_one.h"
#include "graph/generators.h"
#include "graph/stats.h"
#include "seq/kcore_seq.h"

namespace kcore::core {
namespace {

namespace gen = kcore::graph::gen;
using graph::Graph;
using graph::NodeId;

OneToOneResult run_analysis_model(const Graph& g) {
  // The §4 analysis model: synchronous rounds, no optimizations.
  OneToOneConfig config;
  config.mode = sim::DeliveryMode::kSynchronous;
  config.targeted_send = false;
  auto result = run_one_to_one(g, config);
  EXPECT_TRUE(result.traffic.converged);
  return result;
}

TEST(Bounds, ValuesOnKnownGraph) {
  // Star with 5 leaves: degrees {5,1,1,1,1,1}, coreness 1 everywhere.
  const Graph g = gen::star(6);
  const auto b = compute_bounds(g, seq::coreness_bz(g));
  EXPECT_EQ(b.theorem4_rounds, 1U + (5 - 1));       // only hub has error
  EXPECT_EQ(b.theorem5_rounds, 6U);
  EXPECT_EQ(b.corollary1_rounds, 6U - 5U + 1U);     // K = 5 leaves
  // Σd² = 25 + 5 = 30; 2M = 10.
  EXPECT_EQ(b.corollary2_messages, 20U);
  EXPECT_EQ(b.best_round_bound(), 2U);
}

TEST(Bounds, RejectsMismatchedCoreness) {
  const Graph g = gen::chain(4);
  EXPECT_THROW((void)compute_bounds(g, std::vector<NodeId>{1, 1}),
               util::CheckError);
  EXPECT_THROW((void)compute_bounds(g, std::vector<NodeId>{9, 9, 9, 9}),
               util::CheckError);
}

// ---------------------------------------------------------------------------
// The Figure 3 worst case: exactly N-1 rounds, diameter 3
// ---------------------------------------------------------------------------

class WorstCaseRounds : public ::testing::TestWithParam<NodeId> {};

TEST_P(WorstCaseRounds, TakesExactlyNMinusOneRounds) {
  const NodeId n = GetParam();
  const Graph g = gen::montresor_worst_case(n);
  const auto result = run_analysis_model(g);
  // §4's execution time counts through the final no-effect delivery round
  // (footnote to Theorem 5) — that is rounds_executed for a converged run.
  EXPECT_EQ(result.traffic.rounds_executed, n - 1);
  // Coreness is 2 everywhere (node 1 has degree 2 and both neighbors in
  // the 2-core), matching "nodes of minimal degree attain the correct
  // coreness at the first round".
  EXPECT_EQ(result.coreness, seq::coreness_bz(g));
}

TEST_P(WorstCaseRounds, DiameterStaysConstant) {
  // §4.2: "convergence time increases linearly with N but the diameter is
  // 3, i.e. a constant regardless of N". (For the very smallest instances
  // the hub shortcut still reaches N-3 in two hops, hence <= 3.)
  const NodeId n = GetParam();
  const auto diameter = graph::exact_diameter(gen::montresor_worst_case(n));
  if (n >= 8) {
    EXPECT_EQ(diameter, 3U);
  } else {
    EXPECT_LE(diameter, 3U);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, WorstCaseRounds,
                         ::testing::Values(6, 8, 12, 20, 33, 64, 100));

// ---------------------------------------------------------------------------
// Chains: ~N/2 rounds (§4.2: "a linear chain of size N requires ceil(N/2)")
// ---------------------------------------------------------------------------

class ChainRounds : public ::testing::TestWithParam<NodeId> {};

TEST_P(ChainRounds, TakesHalfNRounds) {
  const NodeId n = GetParam();
  const auto result = run_analysis_model(gen::chain(n));
  // ceil(N/2) counts the rounds carrying traffic (the last estimate change
  // happens in round ceil(N/2); §4.2 quotes the convergence round).
  EXPECT_EQ(result.traffic.execution_time, (n + 1) / 2);
}

INSTANTIATE_TEST_SUITE_P(Sizes, ChainRounds,
                         ::testing::Values(2, 3, 6, 7, 20, 21, 50));

// ---------------------------------------------------------------------------
// All four bounds hold on arbitrary graphs under the analysis model
// ---------------------------------------------------------------------------

struct BoundCase {
  const char* name;
  Graph (*make)(std::uint64_t seed);
};

Graph bc_er(std::uint64_t s) { return gen::erdos_renyi_gnm(150, 350, s); }
Graph bc_ba(std::uint64_t s) { return gen::barabasi_albert(120, 3, s); }
Graph bc_ws(std::uint64_t s) { return gen::watts_strogatz(100, 4, 0.3, s); }
Graph bc_grid(std::uint64_t) { return gen::grid(10, 12); }
Graph bc_worst(std::uint64_t) { return gen::montresor_worst_case(40); }
Graph bc_star(std::uint64_t) { return gen::star(60); }
Graph bc_cliques(std::uint64_t) {
  const std::array<NodeId, 3> sizes{5, 10, 20};
  return gen::disjoint_cliques(sizes);
}

class BoundsHold : public ::testing::TestWithParam<BoundCase> {};

TEST_P(BoundsHold, ExecutionTimeAndMessagesWithinBounds) {
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    const Graph g = GetParam().make(seed);
    const auto result = run_analysis_model(g);
    const auto bounds = compute_bounds(g, result.coreness);
    // Metric subtlety (see bounds.h): Theorem 4 and Corollary 1 bound the
    // rounds that carry traffic (T, = execution_time); Theorem 5's N also
    // covers the final no-effect delivery round (T+1, = rounds_executed).
    // Star graphs make both distinctions tight.
    EXPECT_LE(result.traffic.execution_time, bounds.theorem4_rounds)
        << GetParam().name;
    EXPECT_LE(result.traffic.execution_time, bounds.corollary1_rounds)
        << GetParam().name;
    EXPECT_LE(result.traffic.rounds_executed, bounds.theorem5_rounds)
        << GetParam().name;
    EXPECT_LE(result.traffic.total_messages, bounds.corollary2_messages)
        << GetParam().name;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Graphs, BoundsHold,
    ::testing::Values(BoundCase{"er", bc_er}, BoundCase{"ba", bc_ba},
                      BoundCase{"ws", bc_ws}, BoundCase{"grid", bc_grid},
                      BoundCase{"worst", bc_worst},
                      BoundCase{"star", bc_star},
                      BoundCase{"cliques", bc_cliques}),
    [](const auto& suite_info) { return std::string(suite_info.param.name); });

TEST(BoundsTightness, WorstCaseSitsNearCorollary1) {
  // For the Fig. 3 family: K = 1 (only node 1 has degree 2), so
  // Corollary 1 gives N; the measured N-1 shows the bound is near-tight.
  const NodeId n = 30;
  const Graph g = gen::montresor_worst_case(n);
  const auto result = run_analysis_model(g);
  const auto bounds = compute_bounds(g, result.coreness);
  EXPECT_EQ(bounds.corollary1_rounds, n);  // K = 1
  EXPECT_EQ(result.traffic.rounds_executed, n - 1);
}

}  // namespace
}  // namespace kcore::core
