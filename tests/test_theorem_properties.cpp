// Executable checks of the paper's proof machinery (§4), beyond the
// headline bounds:
//  * Theorem 5 proof, observation (i):  every node of minimal degree has
//    the correct coreness from round 1 (its estimate = its degree =
//    its coreness);
//  * observation (iii): A(r) ⊆ A(r+1) — once a node's estimate is
//    correct it stays correct (follows from safety + monotonicity, but
//    we check the set inclusion directly on traces);
//  * §4.2 worst-case schedule: at most one node changes its estimate per
//    round, apart from the two final double-change rounds;
//  * Definition 1 maximality: no node outside the k-core has k neighbors
//    inside it (otherwise the core would not be maximal).
#include <gtest/gtest.h>

#include "core/one_to_one.h"
#include "graph/generators.h"
#include "graph/stats.h"
#include "seq/kcore_seq.h"

namespace kcore::core {
namespace {

namespace gen = kcore::graph::gen;
using graph::Graph;
using graph::NodeId;

struct TraceCase {
  const char* name;
  Graph (*make)(std::uint64_t seed);
};

Graph tc_er(std::uint64_t s) { return gen::erdos_renyi_gnm(150, 400, s); }
Graph tc_ba(std::uint64_t s) { return gen::barabasi_albert(120, 3, s); }
Graph tc_grid(std::uint64_t) { return gen::grid(9, 11); }
Graph tc_worst(std::uint64_t) { return gen::montresor_worst_case(30); }
Graph tc_star(std::uint64_t) { return gen::star(40); }

class TheoremTrace : public ::testing::TestWithParam<TraceCase> {};

TEST_P(TheoremTrace, MinimalDegreeNodesCorrectFromRoundOne) {
  const Graph g = GetParam().make(7);
  const auto truth = seq::coreness_bz(g);
  const auto min_degree = graph::degree_summary(g).min;
  bool checked_round_one = false;
  OneToOneConfig config;
  config.mode = sim::DeliveryMode::kSynchronous;
  config.targeted_send = false;
  const auto result = run_one_to_one(
      g, config, [&](std::uint64_t round, std::span<const NodeId> est) {
        if (round != 1) return;
        checked_round_one = true;
        for (NodeId u = 0; u < g.num_nodes(); ++u) {
          if (g.degree(u) == min_degree) {
            // Observation (i): minimal-degree nodes are in A(1).
            ASSERT_EQ(est[u], truth[u]) << GetParam().name << " node " << u;
          }
        }
      });
  ASSERT_TRUE(checked_round_one);
  ASSERT_TRUE(result.traffic.converged);
}

TEST_P(TheoremTrace, CorrectSetOnlyGrows) {
  const Graph g = GetParam().make(11);
  const auto truth = seq::coreness_bz(g);
  std::vector<bool> was_correct(g.num_nodes(), false);
  OneToOneConfig config;
  config.seed = 5;
  const auto result = run_one_to_one(
      g, config, [&](std::uint64_t round, std::span<const NodeId> est) {
        for (NodeId u = 0; u < g.num_nodes(); ++u) {
          const bool correct = est[u] == truth[u];
          // Observation (iii): A(r) ⊆ A(r+1).
          if (was_correct[u]) {
            ASSERT_TRUE(correct)
                << GetParam().name << " node " << u << " regressed at round "
                << round;
          }
          was_correct[u] = correct;
        }
      });
  ASSERT_TRUE(result.traffic.converged);
}

INSTANTIATE_TEST_SUITE_P(
    Graphs, TheoremTrace,
    ::testing::Values(TraceCase{"er", tc_er}, TraceCase{"ba", tc_ba},
                      TraceCase{"grid", tc_grid},
                      TraceCase{"worst", tc_worst},
                      TraceCase{"star", tc_star}),
    [](const auto& suite_info) { return std::string(suite_info.param.name); });

TEST(WorstCaseSchedule, AtMostOneChangePerRoundExceptFinale) {
  // §4.2: "during each round apart from the last two, at most one node
  // has changed its estimate" on the Figure 3 graph.
  const NodeId n = 20;
  const Graph g = gen::montresor_worst_case(n);
  std::vector<NodeId> previous;
  std::vector<std::size_t> changes_per_round;
  OneToOneConfig config;
  config.mode = sim::DeliveryMode::kSynchronous;
  config.targeted_send = false;
  const auto result = run_one_to_one(
      g, config, [&](std::uint64_t, std::span<const NodeId> est) {
        if (!previous.empty()) {
          std::size_t changed = 0;
          for (NodeId u = 0; u < n; ++u) {
            if (est[u] != previous[u]) ++changed;
          }
          changes_per_round.push_back(changed);
        }
        previous.assign(est.begin(), est.end());
      });
  ASSERT_TRUE(result.traffic.converged);
  // The observer misses round 1 deltas (initialization), which is fine:
  // estimates equal degrees there. Besides the chain propagation (one
  // change per round), only three rounds see a second change: the hub's
  // early drop to 3 (round 2) and the paper's "last two" rounds.
  std::size_t multi_change_rounds = 0;
  for (std::size_t r = 0; r < changes_per_round.size(); ++r) {
    if (changes_per_round[r] > 1) ++multi_change_rounds;
    EXPECT_LE(changes_per_round[r], 2U) << "round " << r + 2;
  }
  EXPECT_LE(multi_change_rounds, 3U);
}

TEST(Maximality, OutsidersLackKNeighborsInCore) {
  // Definition 1 maximality, checked structurally: if a node outside the
  // k-core had >= k neighbors inside, the core would not be maximal.
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    const Graph g = gen::plant_dense_core(
        gen::erdos_renyi_gnm(200, 400, seed), 40, 8, seed + 1);
    const auto coreness = seq::coreness_bz(g);
    const auto kmax = seq::summarize_coreness(coreness).k_max;
    for (NodeId k = 1; k <= kmax; ++k) {
      for (NodeId u = 0; u < g.num_nodes(); ++u) {
        if (coreness[u] >= k) continue;
        NodeId inside = 0;
        for (const NodeId v : g.neighbors(u)) {
          if (coreness[v] >= k) ++inside;
        }
        ASSERT_LT(inside, k) << "node " << u << " violates maximality of "
                             << k << "-core (seed " << seed << ")";
      }
    }
  }
}

TEST(Concentricity, CoresAreNested) {
  // "by definition cores are concentric" (§1): the (k+1)-core is a
  // subgraph of the k-core — trivial on coreness vectors, but checked on
  // the extracted subgraphs to validate kcore_subgraph.
  const Graph g = gen::barabasi_albert(200, 4, 3);
  const auto coreness = seq::coreness_bz(g);
  const auto kmax = seq::summarize_coreness(coreness).k_max;
  std::size_t prev_size = g.num_nodes() + 1;
  for (NodeId k = 0; k <= kmax; ++k) {
    const auto sub = seq::kcore_subgraph(g, coreness, k);
    EXPECT_LE(sub.graph.num_nodes(), prev_size);
    prev_size = sub.graph.num_nodes();
    EXPECT_GT(sub.graph.num_nodes(), 0U);
  }
}

}  // namespace
}  // namespace kcore::core
