// Unit + stress tests for the async runtime's building blocks: the
// Chase–Lev steal deque (push/pop/steal races, growth), the in-queue flag
// protocol (no lost wakeups under forced re-activation), and the
// concurrent quiescence detector (never declares termination while work
// is outstanding). The graph-level correctness sweep lives in
// tests/test_async_property.cpp; here the scheduler is hammered directly.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <random>
#include <thread>
#include <vector>

#include "core/termination.h"
#include "par/async_engine.h"
#include "par/steal_deque.h"

namespace kcore {
namespace {

// ---------------------------------------------------------------------------
// StealDeque
// ---------------------------------------------------------------------------

TEST(StealDeque, OwnerPopsLifo) {
  par::StealDeque<std::uint32_t> deque;
  for (std::uint32_t v = 1; v <= 5; ++v) deque.push(v);
  std::uint32_t out = 0;
  for (std::uint32_t expected = 5; expected >= 1; --expected) {
    ASSERT_TRUE(deque.pop(out));
    EXPECT_EQ(out, expected);
  }
  EXPECT_FALSE(deque.pop(out));
}

TEST(StealDeque, ThievesStealFifoFromTheTop) {
  par::StealDeque<std::uint32_t> deque;
  deque.push(1);
  deque.push(2);
  deque.push(3);
  std::uint32_t out = 0;
  ASSERT_TRUE(deque.steal(out));
  EXPECT_EQ(out, 1u);  // oldest first
  ASSERT_TRUE(deque.pop(out));
  EXPECT_EQ(out, 3u);  // owner still LIFO
  ASSERT_TRUE(deque.steal(out));
  EXPECT_EQ(out, 2u);
  EXPECT_FALSE(deque.steal(out));
  EXPECT_FALSE(deque.pop(out));
}

TEST(StealDeque, GrowthPreservesEveryElement) {
  par::StealDeque<std::uint32_t> deque(2);
  const std::uint32_t n = 1000;
  for (std::uint32_t v = 0; v < n; ++v) deque.push(v);
  EXPECT_GE(deque.capacity(), n);
  std::uint32_t out = 0;
  for (std::uint32_t v = n; v-- > 0;) {
    ASSERT_TRUE(deque.pop(out));
    EXPECT_EQ(out, v);
  }
  EXPECT_FALSE(deque.pop(out));
}

/// The core race: one owner pushing and popping at the bottom while
/// several thieves hammer the top. Every pushed value must be consumed
/// exactly once, across any interleaving.
TEST(StealDequeStress, OwnerAndThievesConsumeEachValueExactlyOnce) {
  constexpr std::uint32_t kValues = 50000;
  constexpr unsigned kThieves = 4;
  par::StealDeque<std::uint32_t> deque(4);  // force growth under fire

  std::vector<std::atomic<std::uint32_t>> times_seen(kValues);
  for (auto& seen : times_seen) seen.store(0, std::memory_order_relaxed);
  std::atomic<std::uint32_t> consumed{0};

  auto consume = [&](std::uint32_t value) {
    times_seen[value].fetch_add(1, std::memory_order_relaxed);
    consumed.fetch_add(1, std::memory_order_relaxed);
  };

  std::vector<std::thread> thieves;
  for (unsigned t = 0; t < kThieves; ++t) {
    thieves.emplace_back([&] {
      std::uint32_t out = 0;
      while (consumed.load(std::memory_order_relaxed) < kValues) {
        if (deque.steal(out)) {
          consume(out);
        } else {
          std::this_thread::yield();
        }
      }
    });
  }

  // Owner: bursts of pushes interleaved with pops, then drain.
  std::mt19937_64 rng(42);
  std::uint32_t next = 0;
  std::uint32_t out = 0;
  while (next < kValues) {
    const std::uint32_t burst =
        std::min<std::uint32_t>(1 + rng() % 64, kValues - next);
    for (std::uint32_t i = 0; i < burst; ++i) deque.push(next++);
    if (rng() % 2 == 0 && deque.pop(out)) consume(out);
  }
  while (consumed.load(std::memory_order_relaxed) < kValues) {
    if (deque.pop(out)) consume(out);
  }
  for (auto& thief : thieves) thief.join();

  EXPECT_EQ(consumed.load(), kValues);
  for (std::uint32_t v = 0; v < kValues; ++v) {
    ASSERT_EQ(times_seen[v].load(), 1u) << "value " << v;
  }
}

// ---------------------------------------------------------------------------
// QuiescenceDetector
// ---------------------------------------------------------------------------

TEST(QuiescenceDetector, CountsOutstandingWorkAndConfirmsAtZero) {
  core::QuiescenceDetector detector;
  detector.add(3);
  EXPECT_EQ(detector.outstanding(), 3);
  EXPECT_FALSE(detector.try_confirm());
  detector.finish();
  detector.finish();
  EXPECT_FALSE(detector.try_confirm());
  EXPECT_FALSE(detector.done());
  detector.finish();
  EXPECT_TRUE(detector.try_confirm());
  EXPECT_TRUE(detector.done());
  EXPECT_GE(detector.passes(), 1u);
  // Sticky, and idempotent across repeat calls.
  EXPECT_TRUE(detector.try_confirm());
}

/// Workers retire pre-added units and occasionally spawn a child unit
/// mid-flight (add before the parent's finish — the engine's accounting
/// discipline). The detector must never confirm while any unit remains.
TEST(QuiescenceDetectorStress, NeverConfirmsWhileUnitsRemain) {
  constexpr unsigned kWorkers = 4;
  constexpr std::uint64_t kUnitsPerWorker = 20000;
  core::QuiescenceDetector detector;
  detector.add(kWorkers * kUnitsPerWorker);
  // Units not yet fully retired; decremented BEFORE the matching finish()
  // so remaining == 0 is guaranteed by the time the detector can fire.
  std::atomic<std::int64_t> remaining{kWorkers * kUnitsPerWorker};

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> premature{0};
  std::thread observer([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      if (detector.try_confirm() &&
          remaining.load(std::memory_order_seq_cst) != 0) {
        premature.fetch_add(1, std::memory_order_relaxed);
      }
      std::this_thread::yield();
    }
  });

  std::vector<std::thread> workers;
  for (unsigned w = 0; w < kWorkers; ++w) {
    workers.emplace_back([&, w] {
      std::mt19937_64 rng(w);
      std::uint64_t pending = kUnitsPerWorker;  // my un-retired units
      while (pending > 0) {
        if (rng() % 8 == 0) {
          // Spawn a child inside the current unit's lifetime.
          detector.add();
          remaining.fetch_add(1, std::memory_order_relaxed);
          ++pending;
        }
        EXPECT_FALSE(detector.done());  // my unit is still outstanding
        remaining.fetch_sub(1, std::memory_order_seq_cst);
        detector.finish();
        --pending;
      }
    });
  }
  for (auto& worker : workers) worker.join();
  // Give the observer a chance to see the final quiescent state.
  while (!detector.try_confirm()) std::this_thread::yield();
  stop.store(true, std::memory_order_relaxed);
  observer.join();

  EXPECT_EQ(premature.load(), 0u);
  EXPECT_TRUE(detector.done());
  EXPECT_EQ(detector.outstanding(), 0);
}

// ---------------------------------------------------------------------------
// AsyncWorklist — the in-queue flag protocol
// ---------------------------------------------------------------------------

TEST(AsyncWorklist, ScheduleDeduplicatesWhileFlagged) {
  par::AsyncWorklist worklist(4, 1);
  worklist.seed(2, 0);
  EXPECT_TRUE(worklist.flagged(2));
  // Already scheduled: the 0->1 exchange loses, nothing is enqueued.
  EXPECT_FALSE(worklist.schedule(2, 0));
  EXPECT_EQ(worklist.acquire(0), 2u);
  EXPECT_EQ(worklist.acquire(0), par::AsyncWorklist::kNone);
  worklist.begin(2);
  EXPECT_FALSE(worklist.flagged(2));
  // After the clear, a re-activation enqueues again.
  EXPECT_TRUE(worklist.schedule(2, 0));
  EXPECT_EQ(worklist.acquire(0), 2u);
  worklist.begin(2);
  worklist.finish();
  worklist.finish();
  EXPECT_TRUE(worklist.try_confirm());
  EXPECT_EQ(worklist.total_enqueues(), 2u);
}

TEST(AsyncWorklist, ForcedReactivationIsNeverLost) {
  // Deterministic single-worker re-enqueue chain: re-activate the item
  // mid-processing 1000 times; every activation must be processed.
  constexpr std::uint64_t kReactivations = 1000;
  par::AsyncWorklist worklist(1, 1);
  worklist.seed(0, 0);
  std::uint64_t processed = 0;
  for (;;) {
    const std::uint32_t item = worklist.acquire(0);
    if (item == par::AsyncWorklist::kNone) break;
    worklist.begin(item);
    ++processed;
    if (processed <= kReactivations) {
      ASSERT_TRUE(worklist.schedule(0, 0)) << "wakeup lost at " << processed;
    }
    worklist.finish();
  }
  EXPECT_EQ(processed, kReactivations + 1);
  EXPECT_TRUE(worklist.try_confirm());
}

/// The full protocol under contention: workers acquire, re-activate
/// random items while "processing" (budget-bounded so the run terminates),
/// and retire. Safety: the detector never fires mid-processing, and at
/// the end every enqueue was processed exactly once — the no-lost-wakeup
/// and no-double-pop guarantees in one equation.
TEST(AsyncWorklistStress, EveryEnqueueIsProcessedExactlyOnce) {
  constexpr std::uint32_t kItems = 256;
  constexpr unsigned kWorkers = 4;
  constexpr std::int64_t kReactivationBudget = 200000;

  par::AsyncWorklist worklist(kItems, kWorkers);
  for (std::uint32_t item = 0; item < kItems; ++item) {
    worklist.seed(item, item % kWorkers);
  }
  std::atomic<std::int64_t> budget{kReactivationBudget};
  std::vector<std::uint64_t> begins(kWorkers, 0);

  auto worker_fn = [&](unsigned w) {
    std::mt19937_64 rng(w * 7919 + 1);
    std::uint64_t mine = 0;
    while (!worklist.done()) {
      const std::uint32_t item = worklist.acquire(w);
      if (item == par::AsyncWorklist::kNone) {
        if (worklist.try_confirm()) break;
        std::this_thread::yield();
        continue;
      }
      worklist.begin(item);
      ++mine;
      // The detector must not have declared quiescence: this unit is
      // outstanding until finish().
      EXPECT_FALSE(worklist.done());
      // Forced re-activation storm, including self-re-activation — the
      // schedule-while-processing race the flag protocol exists for.
      const unsigned wakes = rng() % 3;
      for (unsigned i = 0; i < wakes; ++i) {
        if (budget.fetch_sub(1, std::memory_order_relaxed) <= 0) break;
        const auto target = static_cast<std::uint32_t>(rng() % kItems);
        (void)worklist.schedule(target, w);
      }
      worklist.finish();
    }
    begins[w] = mine;
  };

  std::vector<std::thread> workers;
  for (unsigned w = 1; w < kWorkers; ++w) workers.emplace_back(worker_fn, w);
  worker_fn(0);
  for (auto& worker : workers) worker.join();

  ASSERT_TRUE(worklist.done());
  std::uint64_t total_begins = 0;
  for (const auto count : begins) total_begins += count;
  // Exactly-once: every successful enqueue (seeds + re-activations) was
  // begun once; no activation lost, none double-consumed.
  EXPECT_EQ(total_begins, worklist.total_enqueues());
  EXPECT_GT(worklist.total_enqueues(), static_cast<std::uint64_t>(kItems));
  for (std::uint32_t item = 0; item < kItems; ++item) {
    EXPECT_FALSE(worklist.flagged(item)) << "item " << item;
  }
  EXPECT_GE(worklist.detector().passes(), 1u);
}

}  // namespace
}  // namespace kcore
