// Grand cross-algorithm equivalence: every implementation in the repo —
// the two sequential baselines, the one-to-one protocol in both delivery
// modes, the one-to-many protocol under several host counts, the BSP
// (Pregel) port, and the dynamic maintenance structure — must produce the
// identical decomposition on every dataset profile and every deterministic
// family. This is the repo's strongest end-to-end safety net.
#include <gtest/gtest.h>

#include "core/dynamic.h"
#include "core/one_to_many.h"
#include "core/one_to_one.h"
#include "core/pregel_kcore.h"
#include "eval/datasets.h"
#include "graph/generators.h"
#include "seq/kcore_seq.h"

namespace kcore {
namespace {

using graph::Graph;
using graph::NodeId;

void expect_all_algorithms_agree(const Graph& g, const std::string& label) {
  const auto truth = seq::coreness_bz(g);
  ASSERT_EQ(seq::coreness_peeling(g), truth) << label << ": peeling";
  ASSERT_TRUE(seq::satisfies_locality(g, truth)) << label << ": locality";

  {
    core::OneToOneConfig config;
    config.mode = sim::DeliveryMode::kSynchronous;
    const auto result = core::run_one_to_one(g, config);
    ASSERT_TRUE(result.traffic.converged) << label;
    ASSERT_EQ(result.coreness, truth) << label << ": one-to-one sync";
  }
  {
    core::OneToOneConfig config;
    config.mode = sim::DeliveryMode::kCycleRandomOrder;
    config.seed = 99;
    const auto result = core::run_one_to_one(g, config);
    ASSERT_EQ(result.coreness, truth) << label << ": one-to-one cycle";
  }
  for (const sim::HostId hosts : {1U, 5U, 32U}) {
    core::OneToManyConfig config;
    config.num_hosts = hosts;
    const auto result = core::run_one_to_many(g, config);
    ASSERT_EQ(result.coreness, truth)
        << label << ": one-to-many h=" << hosts;
  }
  {
    const auto result = core::run_pregel_kcore(g, 8);
    ASSERT_EQ(result.coreness, truth) << label << ": bsp";
  }
  {
    const core::DynamicKCore dyn(g);
    ASSERT_EQ(dyn.coreness(), truth) << label << ": dynamic";
  }
}

class ProfileEquivalence : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ProfileEquivalence, AllAlgorithmsAgreeOnProfile) {
  const auto& spec = eval::dataset_registry()[GetParam()];
  const Graph g = spec.build(0.02, 21);
  expect_all_algorithms_agree(g, spec.name);
}

INSTANTIATE_TEST_SUITE_P(AllProfiles, ProfileEquivalence,
                         ::testing::Range<std::size_t>(0, 9),
                         [](const auto& suite_info) {
                           std::string name =
                               eval::dataset_registry()[suite_info.param].name;
                           for (auto& ch : name) {
                             if (ch == '-') ch = '_';
                           }
                           return name;
                         });

TEST(FamilyEquivalence, DeterministicFamilies) {
  namespace gen = graph::gen;
  expect_all_algorithms_agree(gen::chain(25), "chain");
  expect_all_algorithms_agree(gen::cycle(18), "cycle");
  expect_all_algorithms_agree(gen::clique(11), "clique");
  expect_all_algorithms_agree(gen::star(30), "star");
  expect_all_algorithms_agree(gen::complete_bipartite(4, 7), "bipartite");
  expect_all_algorithms_agree(gen::grid(6, 9), "grid");
  expect_all_algorithms_agree(gen::ring_lattice(24, 6), "ring-lattice");
  expect_all_algorithms_agree(gen::montresor_worst_case(17), "worst-case");
}

TEST(FamilyEquivalence, AwkwardShapes) {
  namespace gen = graph::gen;
  // Isolated nodes, multiple components, tendrils and a planted core in
  // one graph.
  const std::array<NodeId, 3> sizes{1, 6, 14};
  Graph g = gen::disjoint_cliques(sizes);
  g = gen::attach_paths(g, 2, 9, 3);
  g = gen::plant_dense_core(g, 10, 4, 4);
  expect_all_algorithms_agree(g, "franken-graph");
}

}  // namespace
}  // namespace kcore
