#include "graph/graph.h"

#include <gtest/gtest.h>

#include <vector>

#include "util/check.h"

namespace kcore::graph {
namespace {

TEST(Graph, EmptyGraph) {
  Graph g;
  EXPECT_EQ(g.num_nodes(), 0U);
  EXPECT_EQ(g.num_edges(), 0U);
  EXPECT_EQ(g.num_arcs(), 0U);
  EXPECT_EQ(g.min_degree(), 0U);
  EXPECT_EQ(g.max_degree(), 0U);
  EXPECT_EQ(g.average_degree(), 0.0);
}

TEST(Graph, Triangle) {
  const std::vector<Edge> edges{{0, 1}, {1, 2}, {2, 0}};
  const Graph g = Graph::from_edges(3, edges);
  EXPECT_EQ(g.num_nodes(), 3U);
  EXPECT_EQ(g.num_edges(), 3U);
  EXPECT_EQ(g.num_arcs(), 6U);
  for (NodeId u = 0; u < 3; ++u) EXPECT_EQ(g.degree(u), 2U);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_TRUE(g.has_edge(2, 0));
}

TEST(Graph, NeighborsAreSorted) {
  const std::vector<Edge> edges{{2, 0}, {2, 3}, {2, 1}, {2, 4}};
  const Graph g = Graph::from_edges(5, edges);
  const auto nbrs = g.neighbors(2);
  ASSERT_EQ(nbrs.size(), 4U);
  for (std::size_t i = 1; i < nbrs.size(); ++i) {
    EXPECT_LT(nbrs[i - 1], nbrs[i]);
  }
}

TEST(Graph, SelfLoopsDropped) {
  const std::vector<Edge> edges{{0, 0}, {0, 1}, {1, 1}};
  const Graph g = Graph::from_edges(2, edges);
  EXPECT_EQ(g.num_edges(), 1U);
  EXPECT_EQ(g.degree(0), 1U);
  EXPECT_EQ(g.degree(1), 1U);
  EXPECT_FALSE(g.has_edge(0, 0));
}

TEST(Graph, DuplicateEdgesCollapsed) {
  const std::vector<Edge> edges{{0, 1}, {1, 0}, {0, 1}, {0, 1}};
  const Graph g = Graph::from_edges(2, edges);
  EXPECT_EQ(g.num_edges(), 1U);
  EXPECT_EQ(g.degree(0), 1U);
}

TEST(Graph, IsolatedNodesAllowed) {
  const std::vector<Edge> edges{{0, 1}};
  const Graph g = Graph::from_edges(5, edges);
  EXPECT_EQ(g.num_nodes(), 5U);
  EXPECT_EQ(g.degree(4), 0U);
  EXPECT_TRUE(g.neighbors(4).empty());
  EXPECT_EQ(g.min_degree(), 0U);
  EXPECT_EQ(g.max_degree(), 1U);
}

TEST(Graph, FromEdgesRejectsOutOfRange) {
  const std::vector<Edge> edges{{0, 5}};
  EXPECT_THROW(Graph::from_edges(3, edges), util::CheckError);
}

TEST(Graph, HasEdgeNegativeCases) {
  const std::vector<Edge> edges{{0, 1}, {1, 2}};
  const Graph g = Graph::from_edges(4, edges);
  EXPECT_FALSE(g.has_edge(0, 2));
  EXPECT_FALSE(g.has_edge(0, 3));
  EXPECT_FALSE(g.has_edge(3, 0));
}

TEST(Graph, AverageDegree) {
  // Path on 4 nodes: degrees 1,2,2,1 -> avg 1.5.
  const std::vector<Edge> edges{{0, 1}, {1, 2}, {2, 3}};
  const Graph g = Graph::from_edges(4, edges);
  EXPECT_DOUBLE_EQ(g.average_degree(), 1.5);
}

TEST(Graph, EqualityIsStructural) {
  const std::vector<Edge> e1{{0, 1}, {1, 2}};
  const std::vector<Edge> e2{{1, 2}, {1, 0}};  // same set, different input
  EXPECT_EQ(Graph::from_edges(3, e1), Graph::from_edges(3, e2));
  const std::vector<Edge> e3{{0, 2}, {1, 2}};
  EXPECT_NE(Graph::from_edges(3, e1), Graph::from_edges(3, e3));
}

TEST(GraphBuilder, GrowsOnDemand) {
  GraphBuilder b;
  EXPECT_EQ(b.num_nodes(), 0U);
  b.add_edge(3, 7);
  EXPECT_EQ(b.num_nodes(), 8U);
  b.ensure_node(12);
  EXPECT_EQ(b.num_nodes(), 13U);
  const Graph g = b.build();
  EXPECT_EQ(g.num_nodes(), 13U);
  EXPECT_EQ(g.num_edges(), 1U);
}

TEST(GraphBuilder, BuildLeavesBuilderReusable) {
  GraphBuilder b(3);
  b.add_edge(0, 1);
  EXPECT_EQ(b.num_edges_added(), 1U);
  const Graph g1 = b.build();
  EXPECT_EQ(g1.num_edges(), 1U);
  EXPECT_EQ(b.num_edges_added(), 0U);  // edges consumed
}

TEST(GraphBuilder, LargeStarDegrees) {
  constexpr NodeId kLeaves = 10000;
  GraphBuilder b(kLeaves + 1);
  for (NodeId i = 1; i <= kLeaves; ++i) b.add_edge(0, i);
  const Graph g = b.build();
  EXPECT_EQ(g.degree(0), kLeaves);
  EXPECT_EQ(g.num_edges(), kLeaves);
  EXPECT_EQ(g.max_degree(), kLeaves);
  EXPECT_EQ(g.min_degree(), 1U);
}

}  // namespace
}  // namespace kcore::graph
