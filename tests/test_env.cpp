#include "util/env.h"

#include <gtest/gtest.h>

#include <cstdlib>

#include "util/check.h"

namespace kcore::util {
namespace {

class EnvTest : public ::testing::Test {
 protected:
  void set(const char* name, const char* value) {
    ::setenv(name, value, 1);
    names_.push_back(name);
  }
  void TearDown() override {
    for (const auto& n : names_) ::unsetenv(n.c_str());
  }
  std::vector<std::string> names_;
};

TEST_F(EnvTest, StringUnsetIsNullopt) {
  EXPECT_FALSE(env_string("KCORE_TEST_UNSET_XYZ").has_value());
}

TEST_F(EnvTest, StringEmptyIsNullopt) {
  set("KCORE_TEST_EMPTY", "");
  EXPECT_FALSE(env_string("KCORE_TEST_EMPTY").has_value());
}

TEST_F(EnvTest, StringRoundtrip) {
  set("KCORE_TEST_STR", "hello");
  EXPECT_EQ(env_string("KCORE_TEST_STR").value(), "hello");
}

TEST_F(EnvTest, IntFallbackAndParse) {
  EXPECT_EQ(env_int("KCORE_TEST_UNSET_XYZ", 7), 7);
  set("KCORE_TEST_INT", "-42");
  EXPECT_EQ(env_int("KCORE_TEST_INT", 0), -42);
}

TEST_F(EnvTest, IntRejectsGarbage) {
  set("KCORE_TEST_BADINT", "12abc");
  EXPECT_THROW(env_int("KCORE_TEST_BADINT", 0), CheckError);
  set("KCORE_TEST_BADINT2", "abc");
  EXPECT_THROW(env_int("KCORE_TEST_BADINT2", 0), CheckError);
}

TEST_F(EnvTest, DoubleFallbackAndParse) {
  EXPECT_EQ(env_double("KCORE_TEST_UNSET_XYZ", 1.5), 1.5);
  set("KCORE_TEST_DBL", "0.25");
  EXPECT_EQ(env_double("KCORE_TEST_DBL", 0.0), 0.25);
}

TEST_F(EnvTest, DoubleRejectsGarbage) {
  set("KCORE_TEST_BADDBL", "1.5x");
  EXPECT_THROW(env_double("KCORE_TEST_BADDBL", 0.0), CheckError);
}

TEST_F(EnvTest, BoolVariants) {
  EXPECT_TRUE(env_bool("KCORE_TEST_UNSET_XYZ", true));
  EXPECT_FALSE(env_bool("KCORE_TEST_UNSET_XYZ", false));
  for (const char* truthy : {"1", "true", "TRUE", "Yes", "on"}) {
    set("KCORE_TEST_BOOL", truthy);
    EXPECT_TRUE(env_bool("KCORE_TEST_BOOL", false)) << truthy;
  }
  for (const char* falsy : {"0", "false", "No", "OFF"}) {
    set("KCORE_TEST_BOOL", falsy);
    EXPECT_FALSE(env_bool("KCORE_TEST_BOOL", true)) << falsy;
  }
}

TEST_F(EnvTest, BoolRejectsGarbage) {
  set("KCORE_TEST_BADBOOL", "maybe");
  EXPECT_THROW(env_bool("KCORE_TEST_BADBOOL", false), CheckError);
}

}  // namespace
}  // namespace kcore::util
