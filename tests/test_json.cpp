// util::JsonWriter — escaping, comma placement, nesting, number
// formatting. The writer backs every JSON emitter in the repo (Chrome
// traces, `kcore --json`, the bench result files), so its output
// contract is pinned byte-for-byte here.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <functional>
#include <limits>
#include <sstream>
#include <string>

#include "util/check.h"
#include "util/json.h"

namespace kcore {
namespace {

using util::JsonWriter;

std::string compact(const std::function<void(JsonWriter&)>& body) {
  std::ostringstream os;
  JsonWriter w(os);
  body(w);
  EXPECT_TRUE(w.complete());
  std::string s = os.str();
  // The writer terminates a top-level value with '\n'; strip it so the
  // expectations below read as pure JSON.
  if (!s.empty() && s.back() == '\n') s.pop_back();
  return s;
}

// --- escaping ---------------------------------------------------------------

TEST(JsonEscape, PassesPlainTextThrough) {
  EXPECT_EQ(util::json_escape("hello world"), "hello world");
  EXPECT_EQ(util::json_escape(""), "");
}

TEST(JsonEscape, EscapesQuotesAndBackslashes) {
  EXPECT_EQ(util::json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(util::json_escape("a\\b"), "a\\\\b");
}

TEST(JsonEscape, EscapesNamedControlCharacters) {
  EXPECT_EQ(util::json_escape("\b\f\n\r\t"), "\\b\\f\\n\\r\\t");
}

TEST(JsonEscape, EscapesOtherControlCharactersAsUnicode) {
  EXPECT_EQ(util::json_escape(std::string(1, '\x01')), "\\u0001");
  EXPECT_EQ(util::json_escape(std::string(1, '\x1f')), "\\u001f");
}

TEST(JsonEscape, LeavesUtf8Alone) {
  // Multi-byte sequences are > 0x7f bytes — must pass through untouched.
  EXPECT_EQ(util::json_escape("k\xc3\xa4rnel"), "k\xc3\xa4rnel");
}

// --- writer: structure ------------------------------------------------------

TEST(JsonWriter, EmptyObjectAndArray) {
  EXPECT_EQ(compact([](JsonWriter& w) { w.begin_object().end_object(); }),
            "{}");
  EXPECT_EQ(compact([](JsonWriter& w) { w.begin_array().end_array(); }),
            "[]");
}

TEST(JsonWriter, CommaPlacementInObjectsAndArrays) {
  const std::string out = compact([](JsonWriter& w) {
    w.begin_object();
    w.member("a", std::uint64_t{1});
    w.member("b", std::uint64_t{2});
    w.key("c").begin_array();
    w.value(std::uint64_t{1});
    w.value(std::uint64_t{2});
    w.value(std::uint64_t{3});
    w.end_array();
    w.end_object();
  });
  EXPECT_EQ(out, R"({"a":1,"b":2,"c":[1,2,3]})");
}

TEST(JsonWriter, NestedStructures) {
  const std::string out = compact([](JsonWriter& w) {
    w.begin_array();
    w.begin_object();
    w.key("inner").begin_array();
    w.begin_object();
    w.member("x", true);
    w.end_object();
    w.end_array();
    w.end_object();
    w.null();
    w.end_array();
  });
  EXPECT_EQ(out, R"([{"inner":[{"x":true}]},null])");
}

TEST(JsonWriter, KeysAreEscaped) {
  const std::string out = compact([](JsonWriter& w) {
    w.begin_object();
    w.member("we\"ird\n", "va\\lue");
    w.end_object();
  });
  EXPECT_EQ(out, "{\"we\\\"ird\\n\":\"va\\\\lue\"}");
}

// --- writer: scalars --------------------------------------------------------

TEST(JsonWriter, ScalarFormats) {
  const std::string out = compact([](JsonWriter& w) {
    w.begin_array();
    w.value(true);
    w.value(false);
    w.value(std::uint64_t{18446744073709551615ULL});
    w.value(std::int64_t{-42});
    w.value("s");
    w.null();
    w.end_array();
  });
  EXPECT_EQ(out, R"([true,false,18446744073709551615,-42,"s",null])");
}

TEST(JsonWriter, FixedPrecisionDoubles) {
  const std::string out = compact([](JsonWriter& w) {
    w.begin_array();
    w.value(1.23456, 2);
    w.value(0.0, 1);
    w.value(-3.5, 3);
    w.end_array();
  });
  EXPECT_EQ(out, "[1.23,0.0,-3.500]");
}

TEST(JsonWriter, RoundTripDoubles) {
  const std::string out =
      compact([](JsonWriter& w) { w.value(0.5); });
  EXPECT_EQ(out, "0.5");
}

TEST(JsonWriter, NonFiniteDoublesBecomeNull) {
  const std::string out = compact([](JsonWriter& w) {
    w.begin_array();
    w.value(std::numeric_limits<double>::quiet_NaN());
    w.value(std::numeric_limits<double>::infinity());
    w.value(-std::numeric_limits<double>::infinity());
    w.end_array();
  });
  EXPECT_EQ(out, "[null,null,null]");
}

// --- writer: pretty printing ------------------------------------------------

TEST(JsonWriter, IndentedOutput) {
  std::ostringstream os;
  JsonWriter w(os, 2);
  w.begin_object();
  w.member("a", std::uint64_t{1});
  w.key("b").begin_array();
  w.value(std::uint64_t{2});
  w.end_array();
  w.end_object();
  EXPECT_EQ(os.str(),
            "{\n  \"a\": 1,\n  \"b\": [\n    2\n  ]\n}\n");
}

// --- writer: misuse is checked ----------------------------------------------

TEST(JsonWriter, MisuseThrowsCheckError) {
  {
    std::ostringstream os;
    JsonWriter w(os);
    w.begin_object();
    // A bare value inside an object (no key first) is a programming
    // error.
    EXPECT_THROW(w.value(std::uint64_t{1}), util::CheckError);
  }
  {
    std::ostringstream os;
    JsonWriter w(os);
    w.begin_array();
    EXPECT_THROW(w.end_object(), util::CheckError);
  }
  {
    std::ostringstream os;
    JsonWriter w(os);
    w.value("done");
    // Two top-level values.
    EXPECT_THROW(w.value("again"), util::CheckError);
  }
}

}  // namespace
}  // namespace kcore
