#include "bsp/pregel.h"

#include <gtest/gtest.h>

#include "bsp/programs.h"
#include "core/assignment.h"
#include "core/pregel_kcore.h"
#include "graph/generators.h"
#include "graph/stats.h"
#include "seq/kcore_seq.h"

namespace kcore::bsp {
namespace {

namespace gen = kcore::graph::gen;
using graph::Graph;
using graph::NodeId;

template <typename Program>
PregelEngine<Program> make_engine(const Graph& g, WorkerId workers,
                                  Program p = Program{}) {
  auto owner = core::assign_nodes(g.num_nodes(), workers,
                                  core::AssignmentPolicy::kModulo);
  return PregelEngine<Program>(&g, std::move(owner), workers, p);
}

// ---------------------------------------------------------------------------
// Framework semantics via the stock programs
// ---------------------------------------------------------------------------

TEST(Pregel, MinLabelFindsComponents) {
  const std::array<NodeId, 3> sizes{4, 6, 3};
  const Graph g = gen::disjoint_cliques(sizes);
  auto engine = make_engine<MinLabelProgram>(g, 4);
  const auto stats = engine.run();
  EXPECT_TRUE(stats.converged);
  const auto truth = graph::connected_components(g);
  // Same partition: labels agree iff components agree.
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      EXPECT_EQ(engine.values()[u].label == engine.values()[v].label,
                truth.component_of[u] == truth.component_of[v]);
    }
  }
}

TEST(Pregel, MinLabelSuperstepsTrackDiameter) {
  const Graph g = gen::chain(40);
  auto engine = make_engine<MinLabelProgram>(g, 4);
  const auto stats = engine.run();
  EXPECT_TRUE(stats.converged);
  // Label 0 floods 39 hops: supersteps ~ diameter + constant.
  EXPECT_GE(stats.supersteps, 39U);
  EXPECT_LE(stats.supersteps, 45U);
}

TEST(Pregel, HopDistanceMatchesBfs) {
  const Graph g = gen::erdos_renyi_gnm(200, 500, 3);
  HopDistanceProgram program;
  program.source = 7;
  auto engine = make_engine<HopDistanceProgram>(g, 8, program);
  EXPECT_TRUE(engine.run().converged);
  const auto truth = graph::bfs_distances(g, 7);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    EXPECT_EQ(engine.values()[u].distance, truth[u]) << "node " << u;
  }
}

TEST(Pregel, HaltedVerticesStayHaltedWithoutMessages) {
  const Graph g = gen::clique(5);
  auto engine = make_engine<NeighborDegreeSumProgram>(g, 2);
  const auto stats = engine.run();
  EXPECT_TRUE(stats.converged);
  // init sends degrees; compute sums them once; then silence.
  for (NodeId u = 0; u < 5; ++u) {
    EXPECT_EQ(engine.values()[u].sum, 4U * 4U);
  }
  EXPECT_EQ(stats.supersteps, 2U);
}

TEST(Pregel, CombinerReducesDeliveriesNotResults) {
  const Graph g = gen::barabasi_albert(300, 3, 5);
  auto engine = make_engine<MinLabelProgram>(g, 4);
  const auto stats = engine.run();
  EXPECT_TRUE(stats.converged);
  // Emissions counted pre-combining must dominate deliveries.
  EXPECT_GT(stats.messages_emitted, stats.messages_delivered);
  EXPECT_LE(stats.messages_cross_worker, stats.messages_delivered);
}

TEST(Pregel, SuperstepCapStopsDivergentPrograms) {
  // MinLabel on a chain needs ~N supersteps; cap far below that.
  const Graph g = gen::chain(100);
  auto engine = make_engine<MinLabelProgram>(g, 2);
  const auto stats = engine.run(5);
  EXPECT_FALSE(stats.converged);
  EXPECT_EQ(stats.supersteps, 5U);
}

TEST(Pregel, RejectsMismatchedOwnerVector) {
  const Graph g = gen::clique(4);
  std::vector<WorkerId> owner(2, 0);  // wrong size
  EXPECT_THROW(PregelEngine<MinLabelProgram>(&g, owner, 1),
               util::CheckError);
}

// ---------------------------------------------------------------------------
// The k-core port
// ---------------------------------------------------------------------------

class PregelKCore : public ::testing::TestWithParam<WorkerId> {};

TEST_P(PregelKCore, MatchesSequentialBaseline) {
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    const Graph g = gen::erdos_renyi_gnm(250, 600, seed);
    const auto result = core::run_pregel_kcore(g, GetParam());
    EXPECT_TRUE(result.stats.converged);
    EXPECT_EQ(result.coreness, seq::coreness_bz(g)) << "seed " << seed;
  }
}

TEST_P(PregelKCore, DeterministicFamilies) {
  for (const Graph& g :
       {gen::chain(30), gen::clique(10), gen::grid(7, 8),
        gen::montresor_worst_case(20), gen::star(25)}) {
    const auto result = core::run_pregel_kcore(g, GetParam());
    EXPECT_TRUE(result.stats.converged);
    EXPECT_EQ(result.coreness, seq::coreness_bz(g));
  }
}

INSTANTIATE_TEST_SUITE_P(Workers, PregelKCore,
                         ::testing::Values(1, 2, 8, 64));

TEST(PregelKCoreTraffic, TargetedSendSavesEmissions) {
  const Graph g = gen::barabasi_albert(400, 4, 9);
  const auto plain = core::run_pregel_kcore(g, 8, /*targeted_send=*/false);
  const auto opt = core::run_pregel_kcore(g, 8, /*targeted_send=*/true);
  EXPECT_EQ(plain.coreness, opt.coreness);
  EXPECT_LT(opt.stats.messages_emitted, plain.stats.messages_emitted);
}

TEST(PregelKCoreTraffic, SuperstepsMatchSynchronousProtocol) {
  // BSP supersteps correspond to synchronous protocol rounds: the Figure 3
  // worst case must exhibit the same linear behaviour.
  const NodeId n = 24;
  const auto result = core::run_pregel_kcore(gen::montresor_worst_case(n), 4,
                                             /*targeted_send=*/false);
  EXPECT_TRUE(result.stats.converged);
  EXPECT_GE(result.stats.supersteps, n - 2);
  EXPECT_LE(result.stats.supersteps, n + 1);
}

TEST(PregelKCoreTraffic, CrossWorkerTrafficShrinksWithFewerWorkers) {
  const Graph g = gen::erdos_renyi_gnm(300, 900, 11);
  const auto one = core::run_pregel_kcore(g, 1);
  const auto many = core::run_pregel_kcore(g, 64);
  EXPECT_EQ(one.stats.messages_cross_worker, 0U);
  EXPECT_GT(many.stats.messages_cross_worker, 0U);
  EXPECT_EQ(one.coreness, many.coreness);
}

}  // namespace
}  // namespace kcore::bsp
