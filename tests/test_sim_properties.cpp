// Channel-level properties of the simulation engine: per-channel FIFO
// order (§2: "Hosts communicate through reliable channels"), exactly-once
// delivery without fault injection, and at-least-once under duplication.
#include <gtest/gtest.h>

#include "sim/engine.h"

namespace kcore::sim {
namespace {

/// Host 0 sends an increasing sequence to host 1 over several rounds;
/// host 1 records arrival order.
struct SequenceHost {
  using Message = int;
  int to_send = 0;
  int per_round = 3;
  int limit = 30;
  std::vector<int> received;

  void on_message(HostId, const Message& m) { received.push_back(m); }
  void on_round(Context<Message>& ctx) {
    if (ctx.self() != 0) return;
    for (int i = 0; i < per_round && to_send < limit; ++i) {
      ctx.send(1, to_send++);
    }
  }
};

TEST(EngineFifo, PerChannelOrderPreservedSynchronous) {
  EngineConfig config;
  config.mode = DeliveryMode::kSynchronous;
  Engine<SequenceHost> engine(std::vector<SequenceHost>(2), config);
  engine.run();
  const auto& received = engine.hosts()[1].received;
  ASSERT_EQ(received.size(), 30U);
  for (int i = 0; i < 30; ++i) EXPECT_EQ(received[i], i);
}

TEST(EngineFifo, PerChannelOrderPreservedCycleMode) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    EngineConfig config;
    config.mode = DeliveryMode::kCycleRandomOrder;
    config.seed = seed;
    Engine<SequenceHost> engine(std::vector<SequenceHost>(2), config);
    engine.run();
    const auto& received = engine.hosts()[1].received;
    ASSERT_EQ(received.size(), 30U) << "seed " << seed;
    for (int i = 0; i < 30; ++i) {
      ASSERT_EQ(received[i], i) << "seed " << seed;
    }
  }
}

TEST(EngineFifo, ExactlyOnceWithoutFaults) {
  EngineConfig config;
  config.mode = DeliveryMode::kSynchronous;
  Engine<SequenceHost> engine(std::vector<SequenceHost>(2), config);
  const auto stats = engine.run();
  EXPECT_EQ(stats.total_messages, 30U);
  EXPECT_EQ(engine.hosts()[1].received.size(), 30U);
}

TEST(EngineFifo, DelayedMessagesAllArrive) {
  EngineConfig config;
  config.mode = DeliveryMode::kSynchronous;
  config.faults.max_extra_delay = 4;
  config.seed = 7;
  Engine<SequenceHost> engine(std::vector<SequenceHost>(2), config);
  engine.run();
  auto received = engine.hosts()[1].received;
  ASSERT_EQ(received.size(), 30U);  // reliable: nothing lost
  std::sort(received.begin(), received.end());
  for (int i = 0; i < 30; ++i) EXPECT_EQ(received[i], i);
}

TEST(EngineFifo, DuplicationNeverLoses) {
  EngineConfig config;
  config.mode = DeliveryMode::kSynchronous;
  config.faults.duplicate_probability = 0.4;
  config.seed = 9;
  Engine<SequenceHost> engine(std::vector<SequenceHost>(2), config);
  engine.run();
  const auto& received = engine.hosts()[1].received;
  EXPECT_GE(received.size(), 30U);
  // Every value arrives at least once.
  for (int i = 0; i < 30; ++i) {
    EXPECT_NE(std::find(received.begin(), received.end(), i),
              received.end())
        << "value " << i;
  }
}

/// Every host sends one message to every other host each round for a few
/// rounds — stress the send-buffer reuse across hosts within a round.
struct AllToAllHost {
  using Message = std::pair<HostId, int>;
  int rounds_left = 3;
  std::vector<Message> received;

  void on_message(HostId, const Message& m) { received.push_back(m); }
  void on_round(Context<Message>& ctx) {
    if (rounds_left == 0) return;
    --rounds_left;
    for (HostId h = 0; h < 5; ++h) {
      if (h != ctx.self()) ctx.send(h, {ctx.self(), rounds_left});
    }
  }
};

TEST(EngineFifo, AllToAllDeliversEverything) {
  EngineConfig config;
  config.mode = DeliveryMode::kSynchronous;
  Engine<AllToAllHost> engine(std::vector<AllToAllHost>(5), config);
  const auto stats = engine.run();
  EXPECT_TRUE(stats.converged);
  EXPECT_EQ(stats.total_messages, 5U * 4U * 3U);
  for (const auto& host : engine.hosts()) {
    ASSERT_EQ(host.received.size(), 4U * 3U);
    // Per-sender FIFO: the round counter from each sender must descend.
    for (HostId sender = 0; sender < 5; ++sender) {
      int prev = 3;
      for (const auto& [from, value] : host.received) {
        if (from != sender) continue;
        EXPECT_LT(value, prev);
        prev = value;
      }
    }
  }
}

}  // namespace
}  // namespace kcore::sim
