// The chk model checker's own test suite: memory-model litmus programs
// (the model must allow exactly the weak behaviors it claims to), the
// vector-clock race checker, scheduler determinism/replay, and the core
// lock-free primitives (StealDeque, PriorityPool, AsyncWorklist +
// QuiescenceDetector, MailboxMatrix) instantiated over chk::ModelSync and
// driven under exhaustive and PCT schedules. The seeded memory-order
// MUTANTS — proving each annotated ordering is load-bearing — live in
// tests/test_chk_mutants.cpp.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "chk/chk.h"
#include "core/run_options.h"
#include "core/termination.h"
#include "par/async_worklist.h"
#include "par/mailbox.h"
#include "par/priority_pool.h"
#include "par/steal_deque.h"

namespace kcore {
namespace {

using ModelDeque = par::StealDeque<int, chk::ModelSync>;
using ModelPool = par::PriorityPool<std::uint32_t, chk::ModelSync>;
using ModelWorklist = par::BasicAsyncWorklist<chk::ModelSync>;

chk::Options exhaustive(unsigned preemptions = 2,
                        std::uint64_t max_execs = 200000) {
  chk::Options opt;
  opt.mode = chk::Mode::kExhaustive;
  opt.preemption_bound = preemptions;
  opt.max_executions = max_execs;
  opt.max_steps = 2000;
  return opt;
}

chk::Options pct(std::uint64_t executions, std::uint64_t seed = 1) {
  chk::Options opt;
  opt.mode = chk::Mode::kPct;
  opt.executions = executions;
  opt.seed = seed;
  opt.max_steps = 4000;
  return opt;
}

// ---------------------------------------------------------------------------
// Memory-model litmus programs
// ---------------------------------------------------------------------------

chk::Program message_passing(std::memory_order store_order,
                             std::memory_order load_order) {
  auto data = std::make_shared<chk::ModelAtomic<int>>(0, "mp.data");
  auto flag = std::make_shared<chk::ModelAtomic<int>>(0, "mp.flag");
  chk::Program p;
  p.threads.push_back([=] {
    data->store(42, std::memory_order_relaxed, "mp.write_data");
    flag->store(1, store_order, "mp.write_flag");
  });
  p.threads.push_back([=] {
    if (flag->load(load_order, "mp.read_flag") == 1) {
      chk::require(
          data->load(std::memory_order_relaxed, "mp.read_data") == 42,
          "message passing: acquire reader saw the flag but stale data");
    }
  });
  return p;
}

TEST(ChkLitmus, MessagePassingReleaseAcquireHolds) {
  const chk::Outcome out = chk::explore(exhaustive(3), [] {
    return message_passing(std::memory_order_release,
                           std::memory_order_acquire);
  });
  EXPECT_FALSE(out.violation) << out.what;
  EXPECT_TRUE(out.exhausted) << "state space unexpectedly large: "
                             << out.executions << " executions";
}

TEST(ChkLitmus, MessagePassingRelaxedIsBroken) {
  // The model must be WEAK enough to produce the stale read once the
  // release/acquire pair is gone — otherwise the mutation harness proves
  // nothing.
  const chk::Outcome out = chk::explore(exhaustive(3), [] {
    return message_passing(std::memory_order_relaxed,
                           std::memory_order_relaxed);
  });
  EXPECT_TRUE(out.violation);
  EXPECT_NE(out.what.find("stale data"), std::string::npos) << out.what;
}

TEST(ChkLitmus, ReleaseFenceUpgradesRelaxedStore) {
  // Variant the deque's push path depends on: relaxed store AFTER a
  // release fence publishes everything before the fence.
  const chk::Outcome out = chk::explore(exhaustive(3), [] {
    auto data = std::make_shared<chk::ModelAtomic<int>>(0, "fence.data");
    auto flag = std::make_shared<chk::ModelAtomic<int>>(0, "fence.flag");
    chk::Program p;
    p.threads.push_back([=] {
      data->store(7, std::memory_order_relaxed, "fence.write_data");
      chk::ModelSync::fence(std::memory_order_release, "fence.release");
      flag->store(1, std::memory_order_relaxed, "fence.write_flag");
    });
    p.threads.push_back([=] {
      if (flag->load(std::memory_order_acquire, "fence.read_flag") == 1) {
        chk::require(
            data->load(std::memory_order_relaxed, "fence.read_data") == 7,
            "release fence: reader saw flag but stale data");
      }
    });
    return p;
  });
  EXPECT_FALSE(out.violation) << out.what;
  EXPECT_TRUE(out.exhausted);
}

chk::Program store_buffering(std::memory_order order,
                             std::shared_ptr<std::array<int, 2>> results) {
  auto x = std::make_shared<chk::ModelAtomic<int>>(0, "sb.x");
  auto y = std::make_shared<chk::ModelAtomic<int>>(0, "sb.y");
  chk::Program p;
  p.threads.push_back([=] {
    x->store(1, order, "sb.write_x");
    (*results)[0] = y->load(order, "sb.read_y");
  });
  p.threads.push_back([=] {
    y->store(1, order, "sb.write_y");
    (*results)[1] = x->load(order, "sb.read_x");
  });
  p.finally = [=] {
    chk::require((*results)[0] == 1 || (*results)[1] == 1,
                 "store buffering: both threads read 0 (SC violated)");
  };
  return p;
}

TEST(ChkLitmus, StoreBufferingSeqCstExcludesBothZero) {
  // Dekker's core: under seq_cst at least one thread must see the other's
  // store. This is what the deque's pop/steal seq_cst fences buy.
  const chk::Outcome out = chk::explore(exhaustive(3), [] {
    return store_buffering(std::memory_order_seq_cst,
                           std::make_shared<std::array<int, 2>>());
  });
  EXPECT_FALSE(out.violation) << out.what;
  EXPECT_TRUE(out.exhausted);
}

TEST(ChkLitmus, StoreBufferingAcquireReleaseAllowsBothZero) {
  // Release/acquire is NOT enough for Dekker — the model must reach the
  // r0 == r1 == 0 execution (each load reading the coherence-allowed
  // initial store), or the seq_cst mutants in the deque would be
  // undetectable.
  const chk::Outcome out = chk::explore(exhaustive(3), [] {
    auto results = std::make_shared<std::array<int, 2>>();
    auto x = std::make_shared<chk::ModelAtomic<int>>(0, "sb.x");
    auto y = std::make_shared<chk::ModelAtomic<int>>(0, "sb.y");
    chk::Program p;
    p.threads.push_back([=] {
      x->store(1, std::memory_order_release, "sb.write_x");
      (*results)[0] = y->load(std::memory_order_acquire, "sb.read_y");
    });
    p.threads.push_back([=] {
      y->store(1, std::memory_order_release, "sb.write_y");
      (*results)[1] = x->load(std::memory_order_acquire, "sb.read_x");
    });
    p.finally = [=] {
      chk::require((*results)[0] == 1 || (*results)[1] == 1,
                   "store buffering: both threads read 0 (SC violated)");
    };
    return p;
  });
  EXPECT_TRUE(out.violation) << "model failed to produce the store-buffering "
                                "weak behavior in "
                             << out.executions << " executions";
}

// ---------------------------------------------------------------------------
// Plain-access race checker
// ---------------------------------------------------------------------------

TEST(ChkRace, UnorderedPlainWritesAreFlaggedOnEverySchedule) {
  // The values are "benign" (both write the same guard) — the vector-clock
  // checker must flag the missing ordering anyway.
  const chk::Outcome out = chk::explore(exhaustive(1, 100), [] {
    auto guard = std::make_shared<chk::ModelSync::PlainGuard>();
    chk::Program p;
    p.threads.push_back([=] { guard->note_write("race.t1"); });
    p.threads.push_back([=] { guard->note_write("race.t2"); });
    return p;
  });
  EXPECT_TRUE(out.violation);
  EXPECT_NE(out.what.find("data race"), std::string::npos) << out.what;
}

TEST(ChkRace, ReleaseAcquireOrderedPlainAccessesAreClean) {
  const chk::Outcome out = chk::explore(exhaustive(3), [] {
    auto guard = std::make_shared<chk::ModelSync::PlainGuard>();
    auto flag = std::make_shared<chk::ModelAtomic<int>>(0, "race.flag");
    chk::Program p;
    p.threads.push_back([=] {
      guard->note_write("race.writer");
      flag->store(1, std::memory_order_release, "race.publish");
    });
    p.threads.push_back([=] {
      if (flag->load(std::memory_order_acquire, "race.observe") == 1) {
        guard->note_read("race.reader");
      }
    });
    return p;
  });
  EXPECT_FALSE(out.violation) << out.what;
  EXPECT_TRUE(out.exhausted);
}

// ---------------------------------------------------------------------------
// Scheduler: determinism, replay, mutation-hit accounting
// ---------------------------------------------------------------------------

TEST(ChkSched, SameSeedSameOutcome) {
  const auto make = [] {
    return message_passing(std::memory_order_relaxed,
                           std::memory_order_relaxed);
  };
  const chk::Outcome first = chk::explore(pct(300, 7), make);
  const chk::Outcome second = chk::explore(pct(300, 7), make);
  ASSERT_TRUE(first.violation);
  EXPECT_EQ(first.replay_seed, second.replay_seed);
  EXPECT_EQ(first.executions, second.executions);
  EXPECT_EQ(first.what, second.what);
}

TEST(ChkSched, ReplaySeedReproducesTheViolationInOneExecution) {
  const auto make = [] {
    return message_passing(std::memory_order_relaxed,
                           std::memory_order_relaxed);
  };
  const chk::Options opt = pct(500, 11);
  const chk::Outcome found = chk::explore(opt, make);
  ASSERT_TRUE(found.violation) << "PCT failed to find the relaxed-MP bug";
  const chk::Outcome replayed = chk::replay(opt, found.replay_seed, make);
  ASSERT_TRUE(replayed.violation);
  EXPECT_EQ(replayed.executions, 1u);
  EXPECT_EQ(replayed.what, found.what);
}

TEST(ChkSched, UnmatchedMutationSiteReportsZeroHits) {
  chk::Options opt = exhaustive(1, 50);
  opt.mutations.push_back(chk::Mutation::weaken("no.such.site"));
  opt.mutations.push_back(chk::Mutation::weaken("mp.write_flag"));
  const chk::Outcome out = chk::explore(opt, [] {
    return message_passing(std::memory_order_release,
                           std::memory_order_acquire);
  });
  EXPECT_EQ(out.mutation_hits.at("no.such.site"), 0u);
  EXPECT_GT(out.mutation_hits.at("mp.write_flag"), 0u);
}

// ---------------------------------------------------------------------------
// StealDeque under the model
// ---------------------------------------------------------------------------

struct HandoutLog {
  std::array<int, 8> count{};  // per value; indices 1..n used
  int invalid = 0;
  void take(int value, int max_value) {
    if (value < 1 || value > max_value) {
      ++invalid;
    } else {
      ++count[static_cast<unsigned>(value)];
    }
  }
};

TEST(ChkDeque, ExactlyOnceUnderOwnerPopVsThiefExhaustive) {
  const chk::Outcome out = chk::explore(exhaustive(2), [] {
    auto dq = std::make_shared<ModelDeque>(4);
    auto log = std::make_shared<HandoutLog>();
    chk::Program p;
    p.threads.push_back([=] {  // owner
      dq->push(1);
      dq->push(2);
      int v = 0;
      if (dq->pop(v)) log->take(v, 2);
      if (dq->pop(v)) log->take(v, 2);
    });
    p.threads.push_back([=] {  // thief
      int v = 0;
      if (dq->steal(v)) log->take(v, 2);
      if (dq->steal(v)) log->take(v, 2);
    });
    p.finally = [=] {
      chk::require(log->invalid == 0, "deque handed out a garbage value");
      chk::require(log->count[1] == 1 && log->count[2] == 1,
                   "deque lost or duplicated an element");
    };
    return p;
  });
  EXPECT_FALSE(out.violation) << out.what << "\n" << out.trace;
  EXPECT_TRUE(out.exhausted) << out.executions << " executions";
}

TEST(ChkDeque, ExactlyOnceUnderTwoThievesPct) {
  const chk::Outcome out = chk::explore(pct(300, 3), [] {
    auto dq = std::make_shared<ModelDeque>(4);
    auto log = std::make_shared<HandoutLog>();
    chk::Program p;
    p.threads.push_back([=] {  // owner
      dq->push(1);
      dq->push(2);
      dq->push(3);
      int v = 0;
      if (dq->pop(v)) log->take(v, 3);
      if (dq->pop(v)) log->take(v, 3);
    });
    for (int thief = 0; thief < 2; ++thief) {
      p.threads.push_back([=] {
        int v = 0;
        if (dq->steal(v)) log->take(v, 3);
        if (dq->steal(v)) log->take(v, 3);
      });
    }
    p.finally = [=] {
      chk::require(log->invalid == 0, "deque handed out a garbage value");
      for (int value = 1; value <= 3; ++value) {
        chk::require(log->count[static_cast<unsigned>(value)] <= 1,
                     "deque handed an element out twice");
      }
    };
    return p;
  });
  EXPECT_FALSE(out.violation) << out.what << "\n" << out.trace;
}

TEST(ChkDeque, GrowUnderFireKeepsElementsVisible) {
  // capacity_hint 2 forces a grow on the third push while a thief races.
  const chk::Outcome out = chk::explore(exhaustive(2), [] {
    auto dq = std::make_shared<ModelDeque>(2);
    auto log = std::make_shared<HandoutLog>();
    chk::Program p;
    p.threads.push_back([=] {  // owner: third push grows the ring
      dq->push(1);
      dq->push(2);
      dq->push(3);
    });
    p.threads.push_back([=] {  // thief
      int v = 0;
      if (dq->steal(v)) log->take(v, 3);
      if (dq->steal(v)) log->take(v, 3);
    });
    p.finally = [=] {
      chk::require(log->invalid == 0,
                   "thief read garbage from a grown ring");
      int drained = 0;
      int v = 0;
      while (dq->pop(v)) {
        log->take(v, 3);
        ++drained;
        chk::require(drained <= 3, "deque duplicated elements after grow");
      }
      for (int value = 1; value <= 3; ++value) {
        chk::require(log->count[static_cast<unsigned>(value)] == 1,
                     "deque lost or duplicated an element across grow");
      }
    };
    return p;
  });
  EXPECT_FALSE(out.violation) << out.what << "\n" << out.trace;
  EXPECT_TRUE(out.exhausted) << out.executions << " executions";
}

// ---------------------------------------------------------------------------
// PriorityPool under the model
// ---------------------------------------------------------------------------

TEST(ChkPool, ExactlyOnceAndHintSupersetUnderSteal) {
  const chk::Outcome out = chk::explore(exhaustive(2), [] {
    auto pool = std::make_shared<ModelPool>(2, 4, par::PopOrder::kAscending);
    auto log = std::make_shared<HandoutLog>();
    chk::Program p;
    p.threads.push_back([=] {  // lane-0 owner
      std::uint64_t probes = 0;
      pool->push(1, 0, 0);
      pool->push(2, 3, 0);
      std::uint32_t v = 0;
      if (pool->pop_own(v, 0, probes)) log->take(static_cast<int>(v), 2);
      if (pool->pop_own(v, 0, probes)) log->take(static_cast<int>(v), 2);
      // Superset invariant, owner side: after pop_own retired a bucket's
      // bit, the owner's own lane must really be empty there. The hint
      // may over-approximate (stale set bits) but never under-approximate.
      const std::uint64_t hint = pool->hint_bitmap(0);
      for (std::uint32_t b = 0; b < 4; ++b) {
        if ((hint & (1ULL << b)) == 0) {
          chk::require(pool->bucket_size_estimate(0, b) <= 0,
                       "hint bit clear while the bucket holds work");
        }
      }
    });
    p.threads.push_back([=] {  // lane-1 worker: dry own lane, steals
      std::uint64_t probes = 0;
      std::uint32_t v = 0;
      if (pool->steal(v, 1, probes)) log->take(static_cast<int>(v), 2);
    });
    p.finally = [=] {
      chk::require(log->invalid == 0, "pool handed out a garbage value");
      for (int value = 1; value <= 2; ++value) {
        chk::require(log->count[static_cast<unsigned>(value)] <= 1,
                     "pool handed an element out twice");
      }
      // Global superset check at quiescence.
      for (unsigned w = 0; w < 2; ++w) {
        const std::uint64_t hint = pool->hint_bitmap(w);
        for (std::uint32_t b = 0; b < 4; ++b) {
          if ((hint & (1ULL << b)) == 0) {
            chk::require(pool->bucket_size_estimate(w, b) <= 0,
                         "hint bit clear while the bucket holds work");
          }
        }
      }
    };
    return p;
  });
  EXPECT_FALSE(out.violation) << out.what << "\n" << out.trace;
  EXPECT_TRUE(out.exhausted) << out.executions << " executions";
}

// ---------------------------------------------------------------------------
// AsyncWorklist + QuiescenceDetector under the model
// ---------------------------------------------------------------------------

// A two-item relaxation chain: worker threads drain the worklist with the
// engine's own acquire/begin/process/finish discipline. Item 0's relaxation
// writes x and wakes item 1; item 1's relaxation requires it SEES that
// write — the no-lost-wakeup/visibility contract of the in-queue-flag
// handshake. The detector must only confirm when everything retired.
chk::Program worklist_chain(std::shared_ptr<std::array<int, 2>> begins) {
  auto wl = std::make_shared<ModelWorklist>(2, 2, core::SchedPolicy::kLifo);
  auto x = std::make_shared<chk::ModelAtomic<int>>(0, "chain.x");
  wl->seed(0, 0);
  begins->fill(0);
  chk::Program p;
  const auto worker = [=](unsigned w) {
    return [=] {
      while (!wl->done()) {
        const std::uint32_t u = wl->acquire(w);
        if (u == ModelWorklist::kNone) {
          if (wl->try_confirm()) break;
          chk::yield();
          continue;
        }
        wl->begin(u);
        ++(*begins)[u];
        if (u == 0) {
          x->store(1, std::memory_order_relaxed, "chain.write_x");
          wl->schedule(1, w);
        } else {
          chk::require(
              x->load(std::memory_order_relaxed, "chain.read_x") == 1,
              "lost-wakeup handshake: item 1 ran without seeing x=1");
        }
        wl->finish();
      }
    };
  };
  p.threads.push_back(worker(0));
  p.threads.push_back(worker(1));
  p.finally = [=] {
    chk::require(wl->done(), "workers exited without confirmed quiescence");
    chk::require(wl->detector().outstanding() == 0,
                 "detector confirmed with outstanding work");
    chk::require((*begins)[0] == 1 && (*begins)[1] == 1,
                 "exactly-once: begins != enqueues");
    chk::require(wl->total_enqueues() == 2,
                 "flag protocol enqueued an item twice");
  };
  return p;
}

TEST(ChkWorklist, ChainHandshakeAndQuiescenceExhaustive) {
  chk::Options opt = exhaustive(2);
  opt.max_steps = 600;  // generous: worker loops re-poll after yields
  const chk::Outcome out =
      chk::explore(opt, [] { return worklist_chain(
                       std::make_shared<std::array<int, 2>>()); });
  EXPECT_FALSE(out.violation) << out.what << "\n" << out.trace;
}

TEST(ChkWorklist, ChainHandshakeAndQuiescencePct) {
  const chk::Outcome out =
      chk::explore(pct(300, 5), [] { return worklist_chain(
                       std::make_shared<std::array<int, 2>>()); });
  EXPECT_FALSE(out.violation) << out.what << "\n" << out.trace;
  EXPECT_GT(out.executions - out.bounded, 0u)
      << "every execution hit the step bound — raise max_steps";
}

// ---------------------------------------------------------------------------
// MailboxMatrix round protocol under the model
// ---------------------------------------------------------------------------

TEST(ChkMailbox, BarrieredRoundsAreRaceFree) {
  // Correct use: writers touch round r, readers drain round r^1, and a
  // modeled release/acquire barrier separates rounds.
  const chk::Outcome out = chk::explore(exhaustive(2), [] {
    auto mb = std::make_shared<par::MailboxMatrix<int, chk::ModelSync>>(2);
    auto arrived = std::make_shared<chk::ModelAtomic<int>>(0, "mb.arrived");
    chk::Program p;
    p.threads.push_back([=] {
      mb->write_side(0, 1, 0).push_back(7);
      arrived->fetch_add(1, std::memory_order_acq_rel, "mb.barrier.enter");
    });
    p.threads.push_back([=] {
      mb->write_side(1, 0, 0).push_back(9);
      arrived->fetch_add(1, std::memory_order_acq_rel, "mb.barrier.enter");
      while (arrived->load(std::memory_order_acquire, "mb.barrier.spin") <
             2) {
        chk::yield();
      }
      // Past the barrier: round 1 reads drain what round 0 wrote.
      (void)mb->read_side(1, 0, 1);
      (void)mb->read_side(0, 1, 1);
    });
    return p;
  });
  EXPECT_FALSE(out.violation) << out.what << "\n" << out.trace;
}

TEST(ChkMailbox, SameRoundWriteVsDrainIsARace) {
  // Broken protocol: a drain of the SAME round a writer is filling. The
  // race checker must flag it even though the vector contents could look
  // fine on this schedule.
  const chk::Outcome out = chk::explore(exhaustive(2, 5000), [] {
    auto mb = std::make_shared<par::MailboxMatrix<int, chk::ModelSync>>(2);
    chk::Program p;
    p.threads.push_back([=] { mb->write_side(0, 1, 0).push_back(7); });
    p.threads.push_back([=] { (void)mb->read_side(0, 1, 1); });
    return p;
  });
  EXPECT_TRUE(out.violation);
  EXPECT_NE(out.what.find("data race"), std::string::npos) << out.what;
}

}  // namespace
}  // namespace kcore
