// Additional one-to-many corner cases: degenerate partitions, more hosts
// than nodes, empty hosts, faults under both communication policies, and
// interplay between assignment and communication policy.
#include <gtest/gtest.h>

#include "core/one_to_many.h"
#include "graph/generators.h"
#include "seq/kcore_seq.h"

namespace kcore::core {
namespace {

namespace gen = kcore::graph::gen;
using graph::Graph;
using graph::NodeId;

TEST(OneToManyEdge, MoreHostsThanNodes) {
  const Graph g = gen::clique(6);
  OneToManyConfig config;
  config.num_hosts = 20;  // 14 hosts own nothing
  const auto result = run_one_to_many(g, config);
  ASSERT_TRUE(result.traffic.converged);
  EXPECT_EQ(result.coreness, seq::coreness_bz(g));
}

TEST(OneToManyEdge, TwoNodeGraph) {
  const Graph g = Graph::from_edges(2, std::vector<graph::Edge>{{0, 1}});
  for (const auto comm :
       {CommPolicy::kBroadcast, CommPolicy::kPointToPoint}) {
    OneToManyConfig config;
    config.num_hosts = 2;
    config.comm = comm;
    const auto result = run_one_to_many(g, config);
    EXPECT_EQ(result.coreness, (std::vector<NodeId>{1, 1}));
  }
}

TEST(OneToManyEdge, AllNodesOnOneHostOfMany) {
  // Block assignment with more hosts than blocks leaves hosts empty, and
  // with 1 node per host boundary effects appear; both must be harmless.
  const Graph g = gen::cycle(7);
  OneToManyConfig config;
  config.num_hosts = 7;
  config.assignment = AssignmentPolicy::kBlock;
  const auto result = run_one_to_many(g, config);
  EXPECT_EQ(result.coreness, seq::coreness_bz(g));
}

TEST(OneToManyEdge, FaultsUnderBroadcastPolicy) {
  const Graph g = gen::barabasi_albert(150, 3, 3);
  OneToManyConfig config;
  config.num_hosts = 8;
  config.comm = CommPolicy::kBroadcast;
  config.faults.max_extra_delay = 3;
  config.faults.duplicate_probability = 0.3;
  const auto result = run_one_to_many(g, config);
  ASSERT_TRUE(result.traffic.converged);
  EXPECT_EQ(result.coreness, seq::coreness_bz(g));
}

TEST(OneToManyEdge, SynchronousModeAllPolicies) {
  const Graph g = gen::grid(6, 7);
  const auto truth = seq::coreness_bz(g);
  for (const auto comm :
       {CommPolicy::kBroadcast, CommPolicy::kPointToPoint}) {
    for (const auto assignment :
         {AssignmentPolicy::kModulo, AssignmentPolicy::kBlock,
          AssignmentPolicy::kRandom, AssignmentPolicy::kHash}) {
      OneToManyConfig config;
      config.num_hosts = 6;
      config.comm = comm;
      config.assignment = assignment;
      config.mode = sim::DeliveryMode::kSynchronous;
      const auto result = run_one_to_many(g, config);
      ASSERT_EQ(result.coreness, truth)
          << to_string(comm) << "/" << to_string(assignment);
    }
  }
}

TEST(OneToManyEdge, BlockOnChainShipsFewEstimates) {
  // Block assignment of a chain: only the 3 host boundaries ship
  // estimates; overhead per node must be tiny compared with modulo, where
  // every single edge crosses hosts.
  const Graph g = gen::chain(400);
  OneToManyConfig block;
  block.num_hosts = 4;
  block.assignment = AssignmentPolicy::kBlock;
  block.comm = CommPolicy::kPointToPoint;
  OneToManyConfig modulo = block;
  modulo.assignment = AssignmentPolicy::kModulo;
  const auto rb = run_one_to_many(g, block);
  const auto rm = run_one_to_many(g, modulo);
  EXPECT_EQ(rb.coreness, rm.coreness);
  EXPECT_LT(rb.estimates_shipped_total * 10, rm.estimates_shipped_total);
}

TEST(OneToManyEdge, LastSendRoundsBoundedByExecution) {
  const Graph g = gen::erdos_renyi_gnm(200, 500, 5);
  OneToManyConfig config;
  config.num_hosts = 8;
  const auto result = run_one_to_many(g, config);
  for (const auto r : result.last_send_round_by_host) {
    EXPECT_LE(r, result.traffic.execution_time);
  }
  const auto max_last =
      *std::max_element(result.last_send_round_by_host.begin(),
                        result.last_send_round_by_host.end());
  EXPECT_EQ(max_last, result.traffic.execution_time);
}

TEST(OneToManyEdge, EmptyGraphOfIsolatedNodes) {
  const Graph g = Graph::from_edges(9, {});
  OneToManyConfig config;
  config.num_hosts = 3;
  const auto result = run_one_to_many(g, config);
  EXPECT_TRUE(result.traffic.converged);
  EXPECT_EQ(result.coreness, std::vector<NodeId>(9, 0));
  EXPECT_EQ(result.traffic.total_messages, 0U);
}

}  // namespace
}  // namespace kcore::core
